// Figure 5(a): real-attack replay (Storm zombie, num-distinct-connections),
// per-user (FP, detection) operating points — homogeneous vs full
// diversity. Regenerates: diversity pins false positives near the design
// point with spread detection rates, while the monoculture pins detection
// and scatters FP over orders of magnitude (its heaviest users flood IT).
#include "bench/common.hpp"

#include <algorithm>

#include "util/ascii_chart.hpp"

int main(int argc, char** argv) {
  using namespace monohids;
  auto flags =
      bench::standard_flags("Figure 5(a): Storm replay, homogeneous vs full diversity");
  flags.add_int("storm-seed", 1007, "seed for the Storm zombie generator");
  if (!flags.parse(argc, argv)) return 0;
  const auto scenario = bench::scenario_from_flags(flags);

  bench::banner("Figure 5(a): Storm-zombie replay (feature: num-distinct-connections)",
                "diversity bounds FP (~1%) with varied detection; homogeneous "
                "scatters FP over decades with detection pinned near one level");

  trace::StormConfig storm;
  storm.seed = static_cast<std::uint64_t>(flags.get_int("storm-seed"));
  const auto result = sim::storm_replay(scenario, storm);

  // policies: [0] homogeneous, [1] full diversity.
  std::vector<util::Series> series;
  for (std::size_t p : {std::size_t{0}, std::size_t{1}}) {
    util::Series s{result.policy_names[p], {}, {}};
    for (const auto& o : result.outcomes[p]) {
      // clamp zero FP onto the left edge of the log axis, like the paper's
      // 10^-4 axis floor
      s.x.push_back(std::max(o.fp_rate, 1e-4));
      s.y.push_back(o.detection_rate);
    }
    series.push_back(std::move(s));
  }
  util::ChartOptions options;
  options.height = 22;
  options.x_scale = util::Scale::Log10;
  options.x_label = "false positive rate (log scale)";
  options.y_label = "1 - false negative (detection rate)";
  options.y_min = 0.0;
  options.y_max = 1.0;
  std::cout << util::render_scatter(series, options);

  util::TextTable table({"policy", "median FP", "max FP", "median detection",
                         "users with det>0.5"});
  table.set_alignment({util::Align::Left, util::Align::Right, util::Align::Right,
                       util::Align::Right, util::Align::Right});
  for (std::size_t p : {std::size_t{0}, std::size_t{1}}) {
    std::vector<double> fp, det;
    std::size_t good = 0;
    for (const auto& o : result.outcomes[p]) {
      fp.push_back(o.fp_rate);
      det.push_back(o.detection_rate);
      if (o.detection_rate > 0.5) ++good;
    }
    std::sort(fp.begin(), fp.end());
    std::sort(det.begin(), det.end());
    table.add_row({result.policy_names[p], util::fixed(fp[fp.size() / 2], 4),
                   util::fixed(fp.back(), 4), util::fixed(det[det.size() / 2], 3),
                   std::to_string(good)});
  }
  std::cout << '\n' << table.render();

  std::cout << "\ncsv:policy,user,fp,detection\n";
  for (std::size_t p : {std::size_t{0}, std::size_t{1}}) {
    for (std::size_t u = 0; u < result.outcomes[p].size(); ++u) {
      std::cout << result.policy_names[p] << ',' << u << ','
                << result.outcomes[p][u].fp_rate << ','
                << result.outcomes[p][u].detection_rate << '\n';
    }
  }
  return 0;
}
