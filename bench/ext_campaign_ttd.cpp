// Extension: ramped-campaign time-to-detection.
//
// The paper measures how much constant-rate traffic an attacker can hide;
// a patient botmaster ramps up instead. This driver launches the same ramp
// on every host and reports, per policy, how long the campaign runs before
// each host's detector fires and how much traffic it exfiltrates first —
// the operational cost of the monoculture in attacker-minutes.
#include "bench/common.hpp"

#include <algorithm>

#include "hids/campaign.hpp"
#include "stats/boxplot.hpp"
#include "util/ascii_chart.hpp"

int main(int argc, char** argv) {
  using namespace monohids;
  auto flags = bench::standard_flags("Extension: campaign time-to-detection");
  flags.add_double("initial", 5.0, "first-bin attack volume");
  flags.add_double("slope", 5.0, "per-bin attack growth");
  if (!flags.parse(argc, argv)) return 0;
  const auto scenario = bench::scenario_from_flags(flags);
  const auto feature = bench::feature_from_flags(flags);

  bench::banner("Extension: time-to-detection of a ramping campaign",
                "diversity catches the ramp while it is still small; the "
                "monoculture gives it a long free run");

  const auto train = hids::week_distributions(scenario.matrices, feature, 0);
  const hids::PercentileHeuristic p99(0.99);

  // The campaign rides on every host's week-2 traffic, starting Tuesday 10:00.
  std::vector<std::vector<double>> test_bins;
  test_bins.reserve(scenario.user_count());
  for (std::uint32_t u = 0; u < scenario.user_count(); ++u) {
    const auto slice = scenario.matrices[u].of(feature).week_slice(1);
    test_bins.emplace_back(slice.begin(), slice.end());
  }
  hids::Campaign campaign;
  campaign.start_bin = 1 * 96 + 40;  // Tuesday 10:00 in 15-minute bins
  campaign.initial = flags.get_double("initial");
  campaign.slope = flags.get_double("slope");

  util::TextTable table({"policy", "median bins to detection", "p90 bins", "undetected",
                         "median volume exfiltrated"});
  table.set_alignment({util::Align::Left, util::Align::Right, util::Align::Right,
                       util::Align::Right, util::Align::Right});
  std::vector<util::LabelledBox> boxes;

  for (const auto& grouper : sim::canonical_groupers()) {
    const auto assignment = hids::assign_thresholds(train, *grouper, p99);
    const auto outcomes =
        hids::campaign_outcomes(test_bins, assignment.threshold_of_user, campaign);

    std::vector<double> ttd, volume;
    std::size_t undetected = 0;
    for (const auto& o : outcomes) {
      if (o.detected()) {
        ttd.push_back(static_cast<double>(*o.bins_to_detection));
        volume.push_back(o.volume_before_detection);
      } else {
        ++undetected;
      }
    }
    std::sort(ttd.begin(), ttd.end());
    std::sort(volume.begin(), volume.end());
    table.add_row({grouper->name(),
                   ttd.empty() ? "-" : util::fixed(ttd[ttd.size() / 2], 0),
                   ttd.empty() ? "-" : util::fixed(ttd[ttd.size() * 9 / 10], 0),
                   std::to_string(undetected),
                   volume.empty() ? "-" : util::fixed(volume[volume.size() / 2], 0)});
    if (!ttd.empty()) boxes.push_back({grouper->name(), stats::box_stats(ttd)});
  }

  util::ChartOptions options;
  options.x_label = "bins (15 min each) the campaign ran before detection";
  std::cout << util::render_boxplot(boxes, options) << '\n' << table.render();

  std::cout << "\nreading: each extra undetected bin is another window of attack\n"
               "traffic leaving the enterprise. The monoculture's inflated\n"
               "thresholds buy the botmaster hours; per-host thresholds cut the\n"
               "free run to minutes on most hosts.\n";
  return 0;
}
