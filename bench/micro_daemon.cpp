// Microbench: the live capture-to-alarm daemon (hids::Daemon).
//
// Three headline rows, emitted via --json for the committed BENCH_daemon.json
// trajectory and gated in CI bench-smoke:
//
//   1. inline_drain — the pure processing path: packets/sec through
//      order-filter -> flow table -> extractor -> bin scan -> learner with
//      no queue in the way. Deterministic; this is the gated floor.
//   2. saturate_offer — a producer thread offer()ing at full speed against
//      the bounded queue: sustained packets/sec up to the first dropped
//      batch, plus total drops (the backpressure story).
//   3. storm_ttd — a Storm zombie switched on mid-stream after the daemon
//      has trained on clean weeks: wall position of the first alert past
//      infection start, in simulated minutes (time-to-detection).
//
// The bench is self-verifying: the daemon's alarm set is recomputed with the
// batch pipeline (extract_features + nearest-rank week-k thresholds) and any
// divergence exits non-zero — a perf number from a wrong daemon is worthless.
#include <algorithm>
#include <cmath>
#include <thread>

#include "bench/common.hpp"
#include "hids/daemon.hpp"
#include "stats/quantile.hpp"
#include "trace/generator.hpp"
#include "trace/population.hpp"
#include "trace/storm.hpp"

namespace {

using namespace monohids;

std::vector<net::PacketRecord> user_trace(const trace::UserProfile& user,
                                          util::Duration horizon) {
  const trace::TraceGenerator generator{trace::GeneratorConfig{}};
  return generator.generate_packets(user, 0, horizon);
}

/// Merges a one-week Storm zombie (shifted to start at `storm_begin`) into a
/// clean trace, keeping time order.
std::vector<net::PacketRecord> infect(std::vector<net::PacketRecord> clean,
                                      net::Ipv4Address zombie_addr,
                                      util::Timestamp storm_begin) {
  trace::StormConfig storm;
  auto zombie = trace::generate_storm_packets(storm, zombie_addr, 0, util::kMicrosPerWeek);
  for (net::PacketRecord& p : zombie) p.timestamp += storm_begin;
  clean.insert(clean.end(), zombie.begin(), zombie.end());
  std::stable_sort(clean.begin(), clean.end(),
                   [](const net::PacketRecord& a, const net::PacketRecord& b) {
                     return a.timestamp < b.timestamp;
                   });
  return clean;
}

hids::DaemonConfig daemon_config(const trace::UserProfile& user, util::BinGrid grid,
                                 util::Duration horizon) {
  hids::DaemonConfig config;
  config.monitored = user.address;
  config.user_id = user.user_id;
  config.pipeline.grid = grid;
  config.pipeline.horizon = horizon;
  return config;
}

/// Feeds `packets` through a daemon in `batch`-sized slices via on_batch.
hids::DaemonResult run_daemon(const hids::DaemonConfig& config,
                              std::span<const net::PacketRecord> packets,
                              std::size_t batch) {
  hids::Daemon daemon(config);
  for (std::size_t off = 0; off < packets.size(); off += batch) {
    daemon.on_batch(packets.subspan(off, std::min(batch, packets.size() - off)));
  }
  return daemon.finish();
}

/// The batch-pipeline ground truth the daemon must reproduce bit for bit:
/// extract_features over the whole trace, week-k nearest-rank thresholds
/// applied to week k+1, alarms where value > threshold. Returns the alarm
/// set as (feature index, bin) pairs in scan order.
std::vector<std::pair<std::size_t, std::uint64_t>> batch_alarms(
    const hids::DaemonConfig& config, std::span<const net::PacketRecord> packets) {
  const auto result = features::extract_features(config.monitored, packets, config.pipeline);
  const std::uint64_t bins_per_week = util::kMicrosPerWeek / config.pipeline.grid.width();
  const std::uint64_t total_bins =
      result.matrix.of(features::FeatureKind::TcpConnections).values().size();

  std::vector<std::pair<std::size_t, std::uint64_t>> alarms;
  for (std::uint64_t bin = bins_per_week; bin < total_bins; ++bin) {
    const std::uint32_t week = static_cast<std::uint32_t>(bin / bins_per_week);
    for (std::size_t i = 0; i < features::kFeatureCount; ++i) {
      const auto& series = result.matrix.of(features::kAllFeatures[i]);
      const double threshold =
          stats::quantile_nearest_rank(series.week_slice(week - 1), config.percentile);
      if (series.values()[bin] > threshold) alarms.emplace_back(i, bin);
    }
  }
  // Scan order is bin-major; rebuild it (the loop above is bin-major already
  // but alarms within a bin must follow feature order, which it does).
  return alarms;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = bench::standard_flags("live daemon: drain throughput, backpressure, storm TTD");
  flags.add_int("user", 7, "user id to monitor");
  flags.add_int("batch", 4096, "ingest batch size in packets");
  flags.add_int("queue", 8, "bounded queue capacity for the saturation row");
  flags.add_int("storm-week", 2, "week the Storm zombie switches on");
  flags.add_double("min-pkts-per-sec", 0.0, "gate: fail if inline drain falls below");
  flags.add_double("ttd-max-minutes", 0.0, "gate: fail if storm TTD exceeds (0 = off)");
  if (!flags.parse(argc, argv)) return 0;

  bench::PhaseTimings timings;
  bench::echo_standard_config(timings, flags);
  bench::banner("micro: live daemon",
                "behavioral per-host detection can run as an online agent");

  const auto weeks = static_cast<std::uint32_t>(std::max<long long>(2, flags.get_int("weeks")));
  const auto batch = static_cast<std::size_t>(std::max<long long>(1, flags.get_int("batch")));
  const auto grid =
      util::BinGrid::minutes(static_cast<std::uint64_t>(flags.get_int("bin-minutes")));
  const auto horizon = static_cast<util::Duration>(weeks) * util::kMicrosPerWeek;

  trace::PopulationConfig pop;
  pop.user_count = static_cast<std::uint32_t>(flags.get_int("users"));
  pop.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  const auto users = trace::generate_population(pop);
  const trace::UserProfile& user =
      users[static_cast<std::size_t>(flags.get_int("user")) % users.size()];

  const auto clean = timings.time_setup("trace_build", [&] { return user_trace(user, horizon); });
  timings.config("trace_packets", static_cast<std::int64_t>(clean.size()));
  timings.config("batch", static_cast<std::int64_t>(batch));

  hids::DaemonConfig config = daemon_config(user, grid, horizon);

  // --- Row 1: inline drain (deterministic; the gated pkts/s floor). -------
  config.deliver_inline = true;
  double drain_ms = 0.0;
  hids::DaemonResult drain = [&] {
    const auto start = std::chrono::steady_clock::now();
    auto result = run_daemon(config, clean, batch);
    drain_ms = std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                         start)
                   .count();
    return result;
  }();
  timings.record("inline_drain", drain_ms);
  const double drain_pps =
      static_cast<double>(drain.stats.packets_ingested) / (drain_ms / 1000.0);
  timings.config("drain_pkts_per_sec", static_cast<std::int64_t>(drain_pps));
  std::cout << "inline drain: " << drain.stats.packets_ingested << " pkts in "
            << util::fixed(drain_ms, 1) << " ms = " << util::fixed(drain_pps / 1e6, 2)
            << " Mpkt/s, " << drain.stats.bins_completed << " bins, "
            << drain.alerts.size() << " alerts\n";

  // Differential check: the drain run must match the batch pipeline exactly.
  const auto expected = batch_alarms(config, clean);
  bool identical = expected.size() == drain.alerts.size();
  for (std::size_t i = 0; identical && i < expected.size(); ++i) {
    identical = expected[i].first == features::index_of(drain.alerts[i].feature) &&
                expected[i].second == drain.alerts[i].bin;
  }
  if (!identical) {
    std::cerr << "FAIL: daemon alarm set diverged from the batch pipeline ("
              << drain.alerts.size() << " vs " << expected.size() << " alarms)\n";
    return 1;
  }
  std::cout << "differential check: " << expected.size()
            << " alarms bit-identical to the batch pipeline\n";

  // --- Row 2: saturation via offer() against the bounded queue. -----------
  config.deliver_inline = false;
  config.queue_capacity = static_cast<std::size_t>(std::max<long long>(1, flags.get_int("queue")));
  std::uint64_t offered_before_drop = 0;
  double first_drop_ms = 0.0;
  double saturate_ms = 0.0;
  hids::DaemonResult saturate = [&] {
    hids::Daemon daemon(config);
    const auto start = std::chrono::steady_clock::now();
    std::uint64_t offered = 0;
    bool dropped = false;
    for (std::size_t off = 0; off < clean.size(); off += batch) {
      const std::size_t n = std::min(batch, clean.size() - off);
      const bool ok = daemon.offer(std::span<const net::PacketRecord>(clean.data() + off, n));
      if (ok) offered += n;
      if (!ok && !dropped) {
        dropped = true;
        offered_before_drop = offered;
        first_drop_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - start)
                            .count();
      }
    }
    if (!dropped) {
      offered_before_drop = offered;
      first_drop_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    }
    auto result = daemon.finish();
    saturate_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
            .count();
    return result;
  }();
  timings.record("saturate_offer", saturate_ms);
  const double sustained_pps =
      first_drop_ms > 0.0 ? static_cast<double>(offered_before_drop) / (first_drop_ms / 1000.0)
                          : 0.0;
  timings.config("sustained_pkts_per_sec", static_cast<std::int64_t>(sustained_pps));
  timings.config("dropped_batches", static_cast<std::int64_t>(saturate.stats.batches_dropped));
  timings.config("queue_peak", static_cast<std::int64_t>(saturate.stats.queue_peak));
  std::cout << "saturation (queue=" << config.queue_capacity << "): "
            << util::fixed(sustained_pps / 1e6, 2) << " Mpkt/s sustained to first drop, "
            << saturate.stats.batches_dropped << " batches dropped, queue peak "
            << saturate.stats.queue_peak << '\n';

  // --- Row 3: Storm time-to-detection, injected mid-stream. ---------------
  const auto storm_week = static_cast<std::uint32_t>(
      std::clamp<long long>(flags.get_int("storm-week"), 1, weeks - 1));
  const auto storm_begin = static_cast<util::Timestamp>(storm_week) * util::kMicrosPerWeek;
  const auto infected =
      timings.time_setup("storm_build", [&] { return infect(clean, user.address, storm_begin); });

  config.deliver_inline = true;
  double ttd_run_ms = 0.0;
  hids::DaemonResult storm_run = [&] {
    const auto start = std::chrono::steady_clock::now();
    auto result = run_daemon(config, infected, batch);
    ttd_run_ms = std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                           start)
                     .count();
    return result;
  }();
  timings.record("storm_drain", ttd_run_ms);

  double ttd_minutes = -1.0;
  for (const hids::Alert& alert : storm_run.alerts) {
    if (alert.bin_start >= storm_begin) {
      ttd_minutes = static_cast<double>(alert.bin_start - storm_begin) /
                    static_cast<double>(util::kMicrosPerMinute);
      break;
    }
  }
  timings.config("storm_week", static_cast<std::int64_t>(storm_week));
  timings.config("storm_ttd_minutes", util::fixed(ttd_minutes, 1));
  std::cout << "storm TTD: zombie on at week " << storm_week << ", first alert after "
            << util::fixed(ttd_minutes, 1) << " simulated minutes ("
            << storm_run.alerts.size() << " alerts total)\n";

  timings.write_if_requested(flags, "micro_daemon");
  bench::write_metrics_if_requested(flags);

  // --- Gates (CI bench-smoke). ---------------------------------------------
  const double min_pps = flags.get_double("min-pkts-per-sec");
  if (min_pps > 0.0 && drain_pps < min_pps) {
    std::cerr << "FAIL: inline drain " << util::fixed(drain_pps, 0) << " pkts/s below floor "
              << util::fixed(min_pps, 0) << '\n';
    return 1;
  }
  const double ttd_max = flags.get_double("ttd-max-minutes");
  if (ttd_max > 0.0 && (ttd_minutes < 0.0 || ttd_minutes > ttd_max)) {
    std::cerr << "FAIL: storm TTD " << util::fixed(ttd_minutes, 1)
              << " min outside gate (max " << util::fixed(ttd_max, 1) << ")\n";
    return 1;
  }
  return 0;
}
