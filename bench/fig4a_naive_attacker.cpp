// Figure 4(a): fraction of users whose HIDS raises an alarm vs the per-bin
// size of a naive additive attack, per policy. Regenerates: diversity and
// partial diversity detect stealthy attacks (sizes ~1-100 connections per
// window) that hide completely under the monoculture's pooled threshold.
#include "bench/common.hpp"

#include "util/ascii_chart.hpp"

int main(int argc, char** argv) {
  using namespace monohids;
  auto flags = bench::standard_flags("Figure 4(a): naive-attacker detection curves");
  flags.add_int("size-steps", 50, "attack-size grid resolution");
  if (!flags.parse(argc, argv)) return 0;
  const auto scenario = bench::scenario_from_flags(flags);

  bench::banner("Figure 4(a): detection vs naive attack size",
                "diversity >90% on moderate attacks while homogeneous lags; "
                "light/medium users catch the stealthy 1-100 range");

  const auto result =
      sim::naive_attack_curves(scenario, bench::feature_from_flags(flags),
                               static_cast<std::uint32_t>(flags.get_int("size-steps")));

  std::vector<util::Series> series;
  for (std::size_t p = 0; p < result.policy_names.size(); ++p) {
    series.push_back({result.policy_names[p], result.sizes, result.detection[p]});
  }
  util::ChartOptions options;
  options.x_scale = util::Scale::Log10;
  options.x_label = "attack size (per 15-min window, log scale)";
  options.y_label = "fraction of users raising alarms";
  options.y_min = 0.0;
  options.y_max = 1.0;
  std::cout << util::render_line_chart(series, options);

  // The paper's reading-off point: detection at attack size ~100.
  std::size_t idx100 = 0;
  while (idx100 + 1 < result.sizes.size() && result.sizes[idx100] < 100.0) ++idx100;
  util::TextTable table({"policy", "detection @ size~100", "detection @ max"});
  table.set_alignment({util::Align::Left, util::Align::Right, util::Align::Right});
  for (std::size_t p = 0; p < result.policy_names.size(); ++p) {
    table.add_row({result.policy_names[p], util::fixed(result.detection[p][idx100], 2),
                   util::fixed(result.detection[p].back(), 2)});
  }
  std::cout << '\n' << table.render();

  std::cout << "\ncsv:size";
  for (const auto& name : result.policy_names) std::cout << ',' << name;
  std::cout << '\n';
  for (std::size_t i = 0; i < result.sizes.size(); ++i) {
    std::cout << result.sizes[i];
    for (std::size_t p = 0; p < result.policy_names.size(); ++p) {
      std::cout << ',' << result.detection[p][i];
    }
    std::cout << '\n';
  }
  return 0;
}
