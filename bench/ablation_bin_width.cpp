// Ablation (§5): feature bin width. The paper aggregated counts in both
// 5- and 15-minute bins and reports that "the conclusions hold for the
// shorter binning interval as well"; this driver re-runs the headline
// comparisons at both widths.
#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace monohids;
  auto flags = bench::standard_flags("Ablation: 5- vs 15-minute feature bins");
  flags.add_double("w", 0.4, "utility weight for evaluation");
  if (!flags.parse(argc, argv)) return 0;
  const double w = flags.get_double("w");

  bench::banner("Ablation: bin width (paper used 15-minute bins, checked 5)",
                "tail diversity and the policy ordering survive the bin width");

  util::TextTable table({"bin width", "policy", "q99 spread (decades)", "mean utility",
                         "alarms/wk"});
  table.set_alignment({util::Align::Left, util::Align::Left, util::Align::Right,
                       util::Align::Right, util::Align::Right});

  for (std::int64_t minutes : {15LL, 5LL}) {
    sim::ScenarioConfig config;
    config.set_users(static_cast<std::uint32_t>(flags.get_int("users")));
    config.set_seed(static_cast<std::uint64_t>(flags.get_int("seed")));
    config.set_weeks(static_cast<std::uint32_t>(flags.get_int("weeks")));
    config.generator.grid = util::BinGrid::minutes(static_cast<std::uint64_t>(minutes));
    const auto scenario = sim::build_scenario(config);
    const auto feature = bench::feature_from_flags(flags);

    const auto diversity = sim::tail_diversity(scenario, feature, 0);
    const auto rounds = sim::canonical_rounds();
    const auto attack =
        sim::make_attack_model(scenario, feature, rounds.front().train_week);
    const hids::UtilityHeuristic heuristic(w);

    for (const auto& grouper : sim::canonical_groupers()) {
      const auto outcome = hids::evaluate_rounds(scenario.matrices, feature, rounds,
                                                 *grouper, heuristic, attack);
      table.add_row({std::to_string(minutes) + " min", outcome.policy_name,
                     util::fixed(diversity.spread_decades, 2),
                     util::fixed(outcome.mean_utility(w), 4),
                     std::to_string(outcome.total_false_alarms())});
    }
  }
  std::cout << table.render()
            << "\nshape to check: decades of spread and the diversity > homogeneous\n"
               "utility ordering appear at both bin widths.\n";
  return 0;
}
