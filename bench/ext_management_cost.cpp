// Extension: the management costs IT operators actually weighed.
//
// The paper's survey says operators favor the monoculture because auditing
// one configuration is easy, and view full diversity as "high management
// overhead" — without being able to quantify it. This driver puts numbers
// on both axes: reporting bandwidth (the centralized policies pull every
// host's distribution to the console) and distinct configurations to audit,
// and shows that compact quantile summaries shrink the bandwidth ~40x while
// moving the pooled thresholds by well under a percent.
#include "bench/common.hpp"

#include <cmath>

#include "hids/summary_shipping.hpp"
#include "sim/management_cost.hpp"

int main(int argc, char** argv) {
  using namespace monohids;
  auto flags = bench::standard_flags("Extension: management costs of each policy");
  flags.add_int("summary-points", 128, "quantile grid size for compact shipping");
  if (!flags.parse(argc, argv)) return 0;
  const auto scenario = bench::scenario_from_flags(flags);
  const auto feature = bench::feature_from_flags(flags);

  bench::banner("Extension: management-cost accounting (paper §6 discussion)",
                "the monoculture's 'cheap management' is reporting bandwidth plus "
                "one config; diversity is zero traffic but n configs");

  // 1. Cost table for both reporting modes.
  sim::ManagementCostConfig cost_config;
  cost_config.users = scenario.user_count();
  cost_config.bins_per_week = static_cast<std::uint32_t>(
      util::kMicrosPerWeek / scenario.config.generator.grid.width());
  cost_config.summary_points = static_cast<std::size_t>(flags.get_int("summary-points"));

  util::TextTable table({"policy", "reporting", "uplink/week", "downlink/week",
                         "configs to audit"});
  table.set_alignment({util::Align::Left, util::Align::Left, util::Align::Right,
                       util::Align::Right, util::Align::Right});
  auto human = [](std::uint64_t bytes) {
    if (bytes >= 1024 * 1024) {
      return util::fixed(static_cast<double>(bytes) / (1024.0 * 1024.0), 1) + " MiB";
    }
    if (bytes >= 1024) {
      return util::fixed(static_cast<double>(bytes) / 1024.0, 1) + " KiB";
    }
    return std::to_string(bytes) + " B";
  };
  for (sim::ReportingMode mode :
       {sim::ReportingMode::FullDistribution, sim::ReportingMode::QuantileSummary}) {
    for (const auto& cost : sim::management_costs(cost_config, mode)) {
      table.add_row({cost.policy, std::string(sim::name_of(cost.reporting)),
                     human(cost.uplink_bytes_per_week),
                     human(cost.downlink_bytes_per_week),
                     std::to_string(cost.distinct_configurations)});
    }
  }
  std::cout << table.render();

  // 2. What compact shipping costs in threshold accuracy: pooled 99th
  //    percentile from summaries vs from raw data, for the homogeneous pool
  //    and for each 8-partial group.
  const auto train = hids::week_distributions(scenario.matrices, feature, 0);
  std::vector<hids::QuantileSummary> summaries;
  summaries.reserve(train.size());
  for (const auto& d : train) {
    summaries.push_back(
        hids::QuantileSummary::from_samples(d.samples(), cost_config.summary_points));
  }

  const auto exact_pool = stats::EmpiricalDistribution::merge(train);
  const auto summary_pool = hids::pooled_from_summaries(summaries);
  const double exact_t = exact_pool.quantile(0.99);
  const double summary_t = summary_pool.quantile(0.99);

  std::cout << "\npooled 99th-percentile threshold (" << features::name_of(feature)
            << "):\n  from raw distributions: " << util::fixed(exact_t, 1)
            << "\n  from " << cost_config.summary_points
            << "-point summaries: " << util::fixed(summary_t, 1) << "  (error "
            << util::fixed(100.0 * std::abs(summary_t - exact_t) / exact_t, 2) << "%)\n";

  const double full_bytes = static_cast<double>(cost_config.bins_per_week) * 8;
  const double summary_bytes =
      static_cast<double>(cost_config.summary_points) * 8 + 8;
  std::cout << "\nbandwidth reduction per host-feature: " << util::fixed(full_bytes / 1024, 1)
            << " KiB -> " << util::fixed(summary_bytes / 1024, 1) << " KiB ("
            << util::fixed(full_bytes / summary_bytes, 1) << "x smaller)\n"
            << "\nreading: compact summaries make the centralized policies' reporting\n"
               "cost negligible, removing the operators' bandwidth argument; the real\n"
               "trade-off that remains is configurations-to-audit, which partial\n"
               "diversity caps at the group count.\n";
  return 0;
}
