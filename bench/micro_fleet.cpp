// Microbenchmark + budget gate for fleet mode (sim::FleetScenario).
//
// Builds the sharded, sketch-backed fleet pipeline at --users hosts, runs
// the paper's three policies (homogeneous / knee-partial / full diversity)
// end to end on the compact state, and reports wall time per phase, the
// compact store and pooled-sketch footprints, and process peak RSS. This is
// the headline "million-host" binary: the exact pipeline needs
// users × weeks × 672 × 8 B of resident arenas, fleet mode needs
// users × weeks × grid_points × 4 B plus one shard of full matrices.
//
// Gates (each off unless its flag is set):
//   --max-rss-mib N       fail when peak RSS exceeds N MiB
//   --verify-exact        also run the exact Scenario pipeline and fail when
//                         any policy's mean utility diverges by more than
//                         --max-utility-err (default: the config's
//                         utility_error_bound()). Only feasible at small
//                         --users; the exact build is the 27 GB/1M path the
//                         fleet exists to avoid.
#include <cmath>
#include <iostream>

#include "bench/common.hpp"
#include "hids/grouping.hpp"
#include "hids/heuristics.hpp"
#include "sim/analysis_cache.hpp"
#include "sim/fleet.hpp"

namespace {

using namespace monohids;

struct PolicyRow {
  const char* name;
  const hids::Grouper* grouper;
  double fleet_utility = 0.0;
  double exact_utility = 0.0;
  std::uint64_t alarms = 0;
};

}  // namespace

int main(int argc, char** argv) {
  auto flags = bench::standard_flags(
      "Fleet mode: sharded, sketch-backed scenario pipeline at 100k-1M hosts");
  flags.add_int("shard-size", 4096, "users generated and reduced per resident shard");
  flags.add_int("grid-points", 24, "per-(user,feature,week) quantile grid points");
  flags.add_double("eps", 1.0 / 48.0, "per-user GK sketch rank error");
  flags.add_int("attack-steps", 32, "attack model sweep steps");
  flags.add_bool("verify-exact", false,
                 "also run the exact pipeline and gate the utility error");
  flags.add_double("max-utility-err", 0.0,
                   "with --verify-exact: fail above this |mean utility| error "
                   "(0 = the config's utility_error_bound())");
  flags.add_double("max-rss-mib", 0.0, "fail when peak RSS exceeds this (0 = no gate)");
  // Fleet mode defaults to the v2 counter-mode contract (FleetConfig's own
  // default); --scenario-version 1 rebuilds serial-draw fleet artifacts.
  flags.set_default_int("scenario-version", 2);
  if (!flags.parse(argc, argv)) return 0;

  bench::PhaseTimings timings;
  bench::echo_standard_config(timings, flags);

  sim::FleetConfig config;
  config.set_users(static_cast<std::uint32_t>(flags.get_int("users")));
  config.set_seed(static_cast<std::uint64_t>(flags.get_int("seed")));
  config.set_weeks(static_cast<std::uint32_t>(flags.get_int("weeks")));
  config.base.generator.grid =
      util::BinGrid::minutes(static_cast<std::uint64_t>(flags.get_int("bin-minutes")));
  config.shard_size = static_cast<std::uint32_t>(flags.get_int("shard-size"));
  config.grid_points = static_cast<std::uint32_t>(flags.get_int("grid-points"));
  config.sketch_epsilon = flags.get_double("eps");
  config.base.generator.scenario_version = bench::scenario_version_from_flags(flags);
  MONOHIDS_EXPECT(config.base.generator.weeks >= 2,
                  "fleet bench needs >= 2 weeks (train week 0, test week 1)");
  if (flags.get_bool("verbose")) util::set_log_level(util::LogLevel::Info);

  timings.config("shard_size", flags.get_int("shard-size"));
  timings.config("grid_points", flags.get_int("grid-points"));
  timings.config("eps", util::fixed(config.sketch_epsilon, 5));
  timings.config("utility_error_bound", util::fixed(config.utility_error_bound(), 5));

  bench::banner("micro_fleet",
                "a million-host fleet builds and evaluates in bounded memory; "
                "sketch utilities stay within the documented error bound");
  std::cout << "# users=" << flags.get_int("users")
            << " shard-size=" << flags.get_int("shard-size")
            << " grid-points=" << flags.get_int("grid-points")
            << " eps=" << util::fixed(config.sketch_epsilon, 5)
            << " weeks=" << flags.get_int("weeks") << '\n';

  const auto fleet =
      timings.time("fleet_build", [&] { return sim::build_fleet_scenario(config); });

  const auto feature = bench::feature_from_flags(flags);
  const auto steps = static_cast<std::uint32_t>(flags.get_int("attack-steps"));
  const auto attack =
      timings.time("attack_model", [&] { return fleet.analysis().attack_model(feature, 0, steps); });

  const hids::HomogeneousGrouper homogeneous;
  const hids::KneePartialGrouper partial;
  const hids::FullDiversityGrouper full;
  const hids::UtilityHeuristic heuristic(0.5);
  const double w = 0.5;
  PolicyRow rows[] = {
      {"homogeneous", &homogeneous},
      {"knee-partial", &partial},
      {"full-diversity", &full},
  };

  timings.time("evaluation", [&] {
    for (PolicyRow& row : rows) {
      const auto outcome = sim::evaluate_fleet_policy(fleet, feature, {0, 1},
                                                      *row.grouper, heuristic, *attack);
      row.fleet_utility = outcome.mean_utility(w);
      for (const auto& user : outcome.users) row.alarms += user.weekly_false_alarms;
    }
  });

  // Optional exact differential: same policies through the stock pipeline.
  double max_utility_err = 0.0;
  const bool verify = flags.get_bool("verify-exact");
  if (verify) {
    timings.time("exact_verify", [&] {
      const sim::Scenario exact = sim::build_scenario(config.base);
      const auto train = exact.analysis().week(feature, 0);
      const auto test = exact.analysis().week(feature, 1);
      for (PolicyRow& row : rows) {
        const auto outcome =
            hids::evaluate_policy(*train, *test, *row.grouper, heuristic, *attack);
        row.exact_utility = outcome.mean_utility(w);
        max_utility_err =
            std::max(max_utility_err, std::abs(row.fleet_utility - row.exact_utility));
      }
    });
    timings.config("max_utility_err", util::fixed(max_utility_err, 5));
  }

  const double store_mib = static_cast<double>(fleet.store_bytes()) / (1024.0 * 1024.0);
  const double pooled_mib =
      static_cast<double>(fleet.pooled_sketch_bytes()) / (1024.0 * 1024.0);
  const double rss_mib = static_cast<double>(util::peak_rss_kib()) / 1024.0;
  timings.config("store_mib", util::fixed(store_mib, 2));
  timings.config("pooled_sketch_mib", util::fixed(pooled_mib, 3));

  util::TextTable table({"measurement", "value"});
  table.set_alignment({util::Align::Left, util::Align::Right});
  table.add_row({"hosts", std::to_string(fleet.user_count())});
  table.add_row({"shards", std::to_string((fleet.user_count() + config.shard_size - 1) /
                                          config.shard_size)});
  table.add_row({"compact store (MiB)", util::fixed(store_mib, 2)});
  table.add_row({"pooled sketches (MiB)", util::fixed(pooled_mib, 3)});
  table.add_row({"peak RSS (MiB)", util::fixed(rss_mib, 1)});
  table.add_row({"utility error bound", util::fixed(config.utility_error_bound(), 4)});
  for (const PolicyRow& row : rows) {
    table.add_row({std::string(row.name) + ": mean utility",
                   util::fixed(row.fleet_utility, 4)});
    table.add_row({std::string(row.name) + ": weekly console alarms",
                   std::to_string(row.alarms)});
    if (verify) {
      table.add_row({std::string(row.name) + ": exact mean utility",
                     util::fixed(row.exact_utility, 4)});
    }
  }
  if (verify) table.add_row({"max |fleet - exact| utility", util::fixed(max_utility_err, 5)});
  std::cout << table.render();

  timings.write_if_requested(flags, "micro_fleet");
  bench::write_metrics_if_requested(flags);

  bool failed = false;
  if (!(rows[2].fleet_utility > rows[1].fleet_utility &&
        rows[1].fleet_utility > rows[0].fleet_utility)) {
    std::cerr << "FAIL: policy ranking (full > partial > homogeneous) violated\n";
    failed = true;
  }
  const double rss_budget = flags.get_double("max-rss-mib");
  if (rss_budget > 0.0 && rss_mib > rss_budget) {
    std::cerr << "FAIL: peak RSS " << util::fixed(rss_mib, 1) << " MiB exceeds the "
              << util::fixed(rss_budget, 1) << " MiB budget\n";
    failed = true;
  }
  if (verify) {
    const double err_budget = flags.get_double("max-utility-err") > 0.0
                                  ? flags.get_double("max-utility-err")
                                  : config.utility_error_bound();
    if (max_utility_err > err_budget) {
      std::cerr << "FAIL: utility error " << util::fixed(max_utility_err, 5)
                << " exceeds the " << util::fixed(err_budget, 5) << " bound\n";
      failed = true;
    }
  }
  return failed ? 1 : 0;
}
