// Table 2: identities of the ten lowest-threshold ("best") users per alarm
// type under the full-diversity and partial-diversity policies, and the
// overlap between the TCP and UDP lists. Regenerates the paper's point that
// the best detectors for one attack type are not the best for another.
#include "bench/common.hpp"

#include <sstream>

int main(int argc, char** argv) {
  using namespace monohids;
  auto flags = bench::standard_flags("Table 2: best users per alarm type");
  flags.add_int("count", 10, "how many best users to list");
  if (!flags.parse(argc, argv)) return 0;
  const auto scenario = bench::scenario_from_flags(flags);
  const auto count = static_cast<std::size_t>(flags.get_int("count"));

  bench::banner("Table 2: best users per alarm type",
                "TCP and UDP sentinel lists share only ~2 users (diversity) / "
                "~4 users (partial diversity)");

  auto render_ids = [](const std::vector<std::uint32_t>& ids) {
    std::ostringstream os;
    os << '(';
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (i > 0) os << ", ";
      os << ids[i];
    }
    os << ')';
    return os.str();
  };

  const auto udp = sim::best_users_experiment(scenario,
                                              features::FeatureKind::UdpConnections, 0,
                                              count);
  const auto tcp = sim::best_users_experiment(scenario,
                                              features::FeatureKind::TcpConnections, 0,
                                              count);

  util::TextTable table({"Feature", "Full Diversity (best users)",
                         "Partial Diversity (best users)"});
  table.add_row({"number UDP connections", render_ids(udp.full_diversity),
                 render_ids(udp.partial_diversity)});
  table.add_row({"number TCP connections", render_ids(tcp.full_diversity),
                 render_ids(tcp.partial_diversity)});
  std::cout << table.render();

  std::cout << "\noverlap across features (|TCP-list ∩ UDP-list|):\n"
            << "  full diversity:    "
            << hids::overlap_count(tcp.full_diversity, udp.full_diversity) << " of "
            << count << "   (paper: 2)\n"
            << "  partial diversity: "
            << hids::overlap_count(tcp.partial_diversity, udp.partial_diversity) << " of "
            << count << "   (paper: 4)\n";
  return 0;
}
