// Microbenchmark for the streaming ingest engine.
//
// Measures packet->feature pipeline throughput: the seed batch pipeline
// (map-based ReferenceFlowTable, per-packet event drains) vs the streaming
// engine (open-addressing flow table, adaptive scan/wheel expiry, zero-alloc
// event consumption), verifying both produce bit-identical FeatureMatrix and
// FlowTableStats.
//
// The headline (floor-gated) workload is a synthetic busy enterprise host:
// hundreds of new flows per second from ephemeral source ports, so tens of
// thousands of flows are live at once — the conntrack-scale regime the slot
// arena and timing wheel are built for, where the seed's per-flow node
// allocations and full-map expiry rescans dominate. The trace generator's
// session model is also measured, but reported informationally: its tuple
// space is small enough that flows get reused and only ~10^2 are ever live,
// so both tables stay cache-resident and the shared extractor cost bounds
// the achievable ratio.
//
// Also measured: the zero-materialization path (generating packets straight
// into an IngestSession vs materializing the full trace first). With --rss
// it instead forks one child per configuration and reports peak RSS
// (ru_maxrss), demonstrating that streamed ingest memory stays bounded by
// the batch size while the materialized path grows with trace length.
#include <algorithm>
#include <chrono>
#include <cstring>
#include <iostream>

#include "bench/common.hpp"
#include "net/flow_table_ref.hpp"
#include "stats/sampling.hpp"
#include "trace/generator.hpp"
#include "util/rng.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>
#define MONOHIDS_HAS_FORK_RSS 1
#endif

namespace {

using namespace monohids;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

trace::UserProfile busy_user(std::uint64_t seed) {
  trace::PopulationConfig pop;
  pop.user_count = 1;
  pop.seed = seed;
  auto users = trace::generate_population(pop);
  // One busy workstation: x20 session rates, as in micro_substrate.
  for (auto& rate : users[0].session_rate_per_hour) rate *= 20.0;
  return users[0];
}

/// Synthetic busy enterprise host: `rate` new flows per second for `seconds`
/// seconds, each from a fresh ephemeral source port (1024..65535, wrapping).
/// 70% TCP (SYN / SYN-ACK / ACK, 60% FIN-closed after ~300 ms, the rest
/// abandoned to idle out), 30% two-packet UDP lookups. Destinations span a
/// /16 so the distinct-IP feature works too. Abandoned and long-lived flows
/// accumulate: at 300 flows/s with the default 5-minute TCP idle timeout,
/// tens of thousands of flows are live at once.
std::vector<net::PacketRecord> synth_host_packets(net::Ipv4Address host, double rate,
                                                  double seconds, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  const auto flow_count = static_cast<std::uint64_t>(rate * seconds);
  std::vector<net::PacketRecord> all;
  all.reserve(static_cast<std::size_t>(flow_count) * 5);
  std::uint16_t ephemeral = 1024;
  const int start_jitter = static_cast<int>(1e6 / rate) + 1;
  for (std::uint64_t f = 0; f < flow_count; ++f) {
    const auto start = static_cast<util::Timestamp>(static_cast<double>(f) / rate * 1e6) +
                       stats::sample_uniform_int(rng, 0, start_jitter);
    const bool tcp = rng.uniform01() < 0.7;
    const net::Ipv4Address dst(
        (93u << 24) + static_cast<std::uint32_t>(stats::sample_uniform_int(rng, 0, 65535)));
    const std::uint16_t sport = ephemeral;
    ephemeral = ephemeral == 65535 ? 1024 : ephemeral + 1;
    const std::uint16_t dport = tcp ? (rng.uniform01() < 0.4 ? 80 : 443) : 53;
    const net::FiveTuple tuple{host, dst, sport, dport,
                               tcp ? net::Protocol::Tcp : net::Protocol::Udp};
    net::PacketRecord out;
    out.tuple = tuple;
    net::PacketRecord back;
    back.tuple = tuple.reversed();
    if (tcp) {
      out.timestamp = start;
      out.tcp_flags = net::TcpFlags::Syn;
      all.push_back(out);
      back.timestamp = start + 200;
      back.tcp_flags = net::TcpFlags::Syn | net::TcpFlags::Ack;
      all.push_back(back);
      out.timestamp = start + 400;
      out.tcp_flags = net::TcpFlags::Ack;
      all.push_back(out);
      if (rng.uniform01() < 0.6) {
        out.timestamp = start + 300'000;
        out.tcp_flags = net::TcpFlags::Fin | net::TcpFlags::Ack;
        all.push_back(out);
        back.timestamp = start + 300'200;
        back.tcp_flags = net::TcpFlags::Fin | net::TcpFlags::Ack;
        all.push_back(back);
      }
    } else {
      out.timestamp = start;
      all.push_back(out);
      back.timestamp = start + 5'000;
      all.push_back(back);
    }
  }
  std::sort(all.begin(), all.end(),
            [](const auto& a, const auto& b) { return a.timestamp < b.timestamp; });
  return all;
}

/// FNV-1a 64 over the raw bit patterns of a result's feature values and flow
/// stats. Printed with the report so separate binaries (e.g. MONOHIDS_OBS=ON
/// vs OFF builds) can assert bit-identical outputs by comparing one line.
std::uint64_t fnv1a_result(std::uint64_t hash, const features::PipelineResult& result) {
  constexpr std::uint64_t kPrime = 1099511628211ULL;
  const auto mix = [&hash](std::uint64_t bits) {
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (bits >> (8 * byte)) & 0xFF;
      hash *= kPrime;
    }
  };
  for (features::FeatureKind f : features::kAllFeatures) {
    for (double v : result.matrix.of(f).values()) {
      std::uint64_t bits = 0;
      static_assert(sizeof(bits) == sizeof(v));
      std::memcpy(&bits, &v, sizeof(bits));
      mix(bits);
    }
  }
  const net::FlowTableStats& s = result.flow_stats;
  for (std::uint64_t field : {s.packets_processed, s.flows_created, s.flows_ended_fin,
                              s.flows_ended_rst, s.flows_ended_timeout, s.flows_ended_flush,
                              s.syn_packets, s.max_live_flows}) {
    mix(field);
  }
  return hash;
}

bool identical(const features::PipelineResult& a, const features::PipelineResult& b) {
  if (!(a.flow_stats == b.flow_stats)) return false;
  for (features::FeatureKind f : features::kAllFeatures) {
    const auto av = a.matrix.of(f).values();
    const auto bv = b.matrix.of(f).values();
    if (av.size() != bv.size() || !std::equal(av.begin(), av.end(), bv.begin())) return false;
  }
  return true;
}

/// Best-of-N wall time for fn() -> PipelineResult; result from the last run.
template <typename Fn>
features::PipelineResult best_of(int repeat, double& best_ms, Fn&& fn) {
  features::PipelineResult result;
  best_ms = 1e300;
  for (int r = 0; r < repeat; ++r) {
    const auto start = Clock::now();
    result = fn();
    best_ms = std::min(best_ms, ms_since(start));
  }
  return result;
}

/// One reference-vs-streaming comparison over a materialized packet span.
struct Comparison {
  double reference_ms = 0.0;
  double streaming_ms = 0.0;
  std::uint64_t peak_live = 0;
  bool match = false;

  [[nodiscard]] double speedup() const {
    return streaming_ms > 0.0 ? reference_ms / streaming_ms : 0.0;
  }
};

Comparison compare(net::Ipv4Address monitored, std::span<const net::PacketRecord> packets,
                   int repeat, features::PipelineResult* streaming_out = nullptr) {
  features::PipelineConfig pipeline;
  pipeline.horizon = packets.back().timestamp + 1;
  Comparison c;
  const auto reference = best_of(repeat, c.reference_ms, [&] {
    return features::extract_features_reference(monitored, packets, pipeline);
  });
  auto streaming = best_of(repeat, c.streaming_ms, [&] {
    return features::extract_features(monitored, packets, pipeline);
  });
  c.peak_live = streaming.flow_stats.max_live_flows;
  c.match = identical(reference, streaming);
  if (streaming_out != nullptr) *streaming_out = std::move(streaming);
  return c;
}

#ifdef MONOHIDS_HAS_FORK_RSS
/// Runs fn() in a forked child and returns its peak RSS in KiB (-1 on error).
template <typename Fn>
long forked_peak_rss_kib(Fn&& fn) {
  const pid_t pid = fork();
  if (pid < 0) return -1;
  if (pid == 0) {
    fn();
    _exit(0);
  }
  int status = 0;
  struct rusage usage{};
  if (wait4(pid, &status, 0, &usage) < 0) return -1;
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) return -1;
#if defined(__APPLE__)
  return static_cast<long>(usage.ru_maxrss / 1024);  // bytes on macOS
#else
  return static_cast<long>(usage.ru_maxrss);  // KiB on Linux
#endif
}

int run_rss_demo(const util::CliFlags& flags) {
  bench::banner("micro_ingest --rss",
                "streamed ingest peak RSS is bounded by the batch size; the "
                "materialized batch path grows with trace length");
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  const trace::UserProfile user = busy_user(seed);

  util::TextTable table({"trace", "batch path peak RSS (MiB)", "streamed peak RSS (MiB)"});
  table.set_alignment({util::Align::Left, util::Align::Right, util::Align::Right});
  for (const util::Duration days : {util::Duration{1}, util::Duration{4}}) {
    trace::GeneratorConfig config;
    config.weeks = 1;
    const util::Timestamp end = days * util::kMicrosPerDay;
    features::PipelineConfig pipeline;
    pipeline.horizon = end;

    const long batch_kib = forked_peak_rss_kib([&] {
      const trace::TraceGenerator gen(config);
      const auto packets = gen.generate_packets(user, 0, end);
      const auto result = features::extract_features(user.address, packets, pipeline);
      if (result.flow_stats.packets_processed == 0) _exit(1);
    });
    const long stream_kib = forked_peak_rss_kib([&] {
      const trace::TraceGenerator gen(config);
      features::IngestSession session(user.address, pipeline);
      gen.generate_packets_streamed(user, 0, end, session);
      const auto result = session.finish();
      if (result.flow_stats.packets_processed == 0) _exit(1);
    });
    if (batch_kib < 0 || stream_kib < 0) {
      std::cerr << "FAIL: could not measure a forked child\n";
      return 1;
    }
    table.add_row({std::to_string(days) + " day(s), busy user",
                   util::fixed(static_cast<double>(batch_kib) / 1024.0, 1),
                   util::fixed(static_cast<double>(stream_kib) / 1024.0, 1)});
  }
  std::cout << table.render();
  return 0;
}
#endif  // MONOHIDS_HAS_FORK_RSS

}  // namespace

int main(int argc, char** argv) {
  auto flags = bench::standard_flags(
      "Microbenchmark: streaming ingest engine vs the seed batch pipeline");
  flags.add_int("packets", 2'000'000, "approximate packet count for the generator workload");
  flags.add_int("flow-rate", 500, "synthetic workload: new flows per second");
  flags.add_int("flow-seconds", 1200, "synthetic workload: span in seconds");
  flags.add_int("repeat", 3, "repetitions per measurement (best-of)");
  flags.add_double("min-speedup", 2.0,
                   "fail (exit 1) if the synthetic-workload speedup falls below this");
  flags.add_bool("rss", false, "measure forked peak-RSS of batch vs streamed ingest");
  if (!flags.parse(argc, argv)) return 0;

#ifdef MONOHIDS_HAS_FORK_RSS
  if (flags.get_bool("rss")) return run_rss_demo(flags);
#else
  if (flags.get_bool("rss")) {
    std::cerr << "--rss requires a POSIX platform\n";
    return 1;
  }
#endif

  bench::PhaseTimings timings;
  bench::echo_standard_config(timings, flags);
  timings.config("packets", flags.get_int("packets"));
  timings.config("flow_rate", flags.get_int("flow-rate"));
  timings.config("flow_seconds", flags.get_int("flow-seconds"));
  timings.config("repeat", flags.get_int("repeat"));

  bench::banner("micro_ingest",
                "streaming ingest engine sustains >= --min-speedup x the seed batch "
                "pipeline's packet rate with bit-identical outputs");

  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  const auto target = static_cast<std::size_t>(flags.get_int("packets"));
  const auto flow_rate = static_cast<double>(flags.get_int("flow-rate"));
  const auto flow_seconds = static_cast<double>(flags.get_int("flow-seconds"));
  const int repeat = std::max<int>(1, static_cast<int>(flags.get_int("repeat")));

  // --- (a) headline: synthetic busy enterprise host -----------------------
  const auto host = net::Ipv4Address::parse("10.0.0.1");
  const auto synth_start = Clock::now();
  const auto synth_packets = synth_host_packets(host, flow_rate, flow_seconds, seed);
  timings.record("materialize_synth", ms_since(synth_start));

  features::PipelineResult synth_result;
  const Comparison synth = compare(host, synth_packets, repeat, &synth_result);
  timings.record("synth_reference", synth.reference_ms);
  timings.record("synth_streaming", synth.streaming_ms);

  // --- (b) informational: generator busy-user trace -----------------------
  const auto materialize_start = Clock::now();
  const std::vector<net::PacketRecord> gen_packets = [&] {
    trace::GeneratorConfig config;
    config.weeks = 1;
    const trace::TraceGenerator gen(config);
    // One busy day, duplicated end-to-end until `target` packets.
    auto packets = gen.generate_packets(busy_user(seed), 0, util::kMicrosPerDay);
    while (packets.size() < target && packets.size() > 100) {
      auto more = packets;
      const util::Timestamp shift = packets.back().timestamp + 1;
      for (auto& p : more) p.timestamp += shift;
      packets.insert(packets.end(), more.begin(), more.end());
    }
    return packets;
  }();
  timings.record("materialize_trace", ms_since(materialize_start));
  const net::Ipv4Address monitored = busy_user(seed).address;

  features::PipelineResult generator_result;
  const Comparison generator = compare(monitored, gen_packets, repeat, &generator_result);
  timings.record("generator_reference", generator.reference_ms);
  timings.record("generator_streaming", generator.streaming_ms);

  // --- (c) zero-materialization: generator streamed straight into ingest --
  trace::GeneratorConfig gen_config;
  gen_config.weeks = 1;
  const trace::TraceGenerator trace_gen(gen_config);
  const trace::UserProfile user = busy_user(seed);
  features::PipelineConfig day_pipeline;
  day_pipeline.horizon = util::kMicrosPerDay;

  const auto batch_gen_start = Clock::now();
  const auto day_packets = trace_gen.generate_packets(user, 0, util::kMicrosPerDay);
  const auto batch_day = features::extract_features(monitored, day_packets, day_pipeline);
  const double batch_gen_ms = ms_since(batch_gen_start);
  timings.record("generate_then_extract", batch_gen_ms);

  const auto stream_gen_start = Clock::now();
  features::IngestSession session(monitored, day_pipeline);
  trace_gen.generate_packets_streamed(user, 0, util::kMicrosPerDay, session);
  const auto streamed_day = session.finish();
  const double stream_gen_ms = ms_since(stream_gen_start);
  timings.record("generate_streamed", stream_gen_ms);

  const bool day_matches = identical(batch_day, streamed_day);
  const bool all_match = synth.match && generator.match && day_matches;

  const double synth_ref_mpps =
      static_cast<double>(synth_packets.size()) / (synth.reference_ms * 1000.0);
  const double synth_stream_mpps =
      static_cast<double>(synth_packets.size()) / (synth.streaming_ms * 1000.0);

  util::TextTable table({"measurement", "value"});
  table.set_alignment({util::Align::Left, util::Align::Right});
  table.add_row({"enterprise host: packets", std::to_string(synth_packets.size())});
  table.add_row({"enterprise host: peak live flows", std::to_string(synth.peak_live)});
  table.add_row({"enterprise host: seed batch pipeline (ms)",
                 util::fixed(synth.reference_ms, 1)});
  table.add_row({"enterprise host: streaming engine (ms)",
                 util::fixed(synth.streaming_ms, 1)});
  table.add_row({"enterprise host: seed batch pipeline (Mpkts/s)",
                 util::fixed(synth_ref_mpps, 2)});
  table.add_row({"enterprise host: streaming engine (Mpkts/s)",
                 util::fixed(synth_stream_mpps, 2)});
  table.add_row({"enterprise host: speedup (floor-gated)",
                 util::fixed(synth.speedup(), 2) + "x"});
  table.add_row({"generator trace: packets", std::to_string(gen_packets.size())});
  table.add_row({"generator trace: peak live flows", std::to_string(generator.peak_live)});
  table.add_row({"generator trace: seed batch pipeline (ms)",
                 util::fixed(generator.reference_ms, 1)});
  table.add_row({"generator trace: streaming engine (ms)",
                 util::fixed(generator.streaming_ms, 1)});
  table.add_row({"generator trace: speedup (informational)",
                 util::fixed(generator.speedup(), 2) + "x"});
  table.add_row({"one busy day, materialize+extract (ms)", util::fixed(batch_gen_ms, 1)});
  table.add_row({"one busy day, streamed ingest (ms)", util::fixed(stream_gen_ms, 1)});
  table.add_row({"streaming == batch outputs", all_match ? "yes" : "NO"});
  std::cout << table.render();

  // One digest over every streaming-path output; build-flavor comparisons
  // (scripts/check_obs_overhead.sh) grep this line.
  std::uint64_t digest = 14695981039346656037ULL;  // FNV-1a offset basis
  digest = fnv1a_result(digest, synth_result);
  digest = fnv1a_result(digest, generator_result);
  digest = fnv1a_result(digest, streamed_day);
  char digest_hex[32];
  std::snprintf(digest_hex, sizeof(digest_hex), "%016llx",
                static_cast<unsigned long long>(digest));
  std::cout << "# output digest: " << digest_hex << '\n';

  timings.record("verify", 0.0);
  timings.write_if_requested(flags, "micro_ingest");
  bench::write_metrics_if_requested(flags);

  if (!all_match) {
    std::cerr << "FAIL: streaming and batch pipelines diverged\n";
    return 1;
  }
  const double floor = flags.get_double("min-speedup");
  if (synth.speedup() < floor) {
    std::cerr << "FAIL: enterprise-host pipeline speedup " << synth.speedup()
              << "x below the " << floor << "x floor\n";
    return 1;
  }
  return 0;
}
