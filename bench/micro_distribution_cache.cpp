// Microbenchmark for the zero-copy distribution cache (sim::AnalysisCache).
//
// Measures (a) cold vs warm week_distributions queries — the warm path must
// be >= 5x faster since it returns a shared arena instead of re-sorting
// every user's week slice — and (b) the end-to-end wall time of the
// alarm_rates + utility_boxplots + weight_sweep suite with the cache
// bypassed (the pre-cache pipeline) vs enabled, verifying along the way
// that both paths produce bit-identical experiment outputs.
#include <chrono>
#include <cmath>
#include <limits>

#include "bench/common.hpp"
#include "sim/analysis_cache.hpp"

namespace {

using namespace monohids;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

struct SuiteResult {
  sim::AlarmRateResult alarms;
  sim::UtilityComparisonResult utilities;
  sim::WeightSweepResult sweep;
};

SuiteResult run_suite(const sim::Scenario& scenario, features::FeatureKind feature) {
  SuiteResult result;
  result.alarms = sim::alarm_rates(scenario, feature);
  result.utilities = sim::utility_boxplots(scenario, feature, 0.4);
  result.sweep = sim::weight_sweep(scenario, feature);
  return result;
}

bool identical(const SuiteResult& a, const SuiteResult& b) {
  return a.alarms.alarms == b.alarms.alarms &&
         a.alarms.heuristic_names == b.alarms.heuristic_names &&
         a.utilities.utilities == b.utilities.utilities &&
         a.sweep.mean_utility == b.sweep.mean_utility && a.sweep.weights == b.sweep.weights;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = bench::standard_flags(
      "Microbenchmark: zero-copy distribution cache & memoized evaluation pipeline");
  flags.add_int("repeat", 12,
                "repeated week_distributions queries per measurement (alarm_rates "
                "issues 12 per feature)");
  if (!flags.parse(argc, argv)) return 0;
  bench::PhaseTimings timings;
  const auto scenario = bench::scenario_from_flags(flags, timings);
  const auto feature = bench::feature_from_flags(flags);
  const auto repeat = static_cast<std::size_t>(flags.get_int("repeat"));
  timings.config("repeat", flags.get_int("repeat"));

  bench::banner("micro_distribution_cache",
                "warm cache queries >= 5x faster than rebuilding; suite wall time "
                "drops with bit-identical outputs");

  // --- (a) cold vs warm distribution queries ------------------------------
  auto& cache = scenario.analysis();
  const auto cold_start = Clock::now();
  (void)cache.week(feature, 0);
  const double cold_ms = ms_since(cold_start);
  timings.record("week_query_cold", cold_ms);

  const auto uncached_start = Clock::now();
  for (std::size_t i = 0; i < repeat; ++i) {
    (void)hids::week_distributions(scenario.matrices, feature, 0);
  }
  const double uncached_ms = ms_since(uncached_start);
  timings.record("week_queries_uncached", uncached_ms);

  const auto warm_start = Clock::now();
  for (std::size_t i = 0; i < repeat; ++i) {
    (void)cache.week(feature, 0);
  }
  const double warm_ms = ms_since(warm_start);
  timings.record("week_queries_warm", warm_ms);

  const double query_speedup = warm_ms > 0.0 ? uncached_ms / warm_ms
                                             : std::numeric_limits<double>::infinity();

  // --- (b) end-to-end figure suite: bypassed vs cached --------------------
  cache.clear();
  cache.set_bypass(true);
  const auto bypass_start = Clock::now();
  const auto uncached_suite = run_suite(scenario, feature);
  const double suite_uncached_ms = ms_since(bypass_start);
  timings.record("suite_uncached", suite_uncached_ms);

  cache.set_bypass(false);
  cache.clear();
  const auto cached_start = Clock::now();
  const auto cached_suite = run_suite(scenario, feature);
  const double suite_cached_ms = ms_since(cached_start);
  timings.record("suite_cached", suite_cached_ms);

  const bool outputs_match = identical(uncached_suite, cached_suite);
  const auto counters = cache.counters();
  const double suite_speedup =
      suite_cached_ms > 0.0 ? suite_uncached_ms / suite_cached_ms : 0.0;

  util::TextTable table({"measurement", "value"});
  table.set_alignment({util::Align::Left, util::Align::Right});
  table.add_row({"week query, cold build (ms)", util::fixed(cold_ms, 3)});
  table.add_row({"week queries x" + std::to_string(repeat) + ", uncached (ms)",
                 util::fixed(uncached_ms, 3)});
  table.add_row({"week queries x" + std::to_string(repeat) + ", warm cache (ms)",
                 util::fixed(warm_ms, 3)});
  table.add_row({"warm query speedup", util::fixed(query_speedup, 1) + "x"});
  table.add_row({"suite (alarm_rates+boxplots+sweep), uncached (ms)",
                 util::fixed(suite_uncached_ms, 1)});
  table.add_row({"suite (alarm_rates+boxplots+sweep), cached (ms)",
                 util::fixed(suite_cached_ms, 1)});
  table.add_row({"suite speedup", util::fixed(suite_speedup, 2) + "x"});
  table.add_row({"cache hits / misses", std::to_string(counters.hits) + " / " +
                                            std::to_string(counters.misses)});
  table.add_row({"cached == uncached outputs", outputs_match ? "yes" : "NO"});
  std::cout << table.render();

  timings.write_if_requested(flags, "micro_distribution_cache");
  bench::write_metrics_if_requested(flags);

  if (!outputs_match) {
    std::cerr << "FAIL: cached and uncached suites diverged\n";
    return 1;
  }
  if (query_speedup < 5.0) {
    std::cerr << "FAIL: warm query speedup " << query_speedup << "x below the 5x target\n";
    return 1;
  }
  return 0;
}
