// Figure 1 (a-f): per-user 99th/99.9th-percentile thresholds for all six
// features, users ordered by tail value. Regenerates the paper's headline
// observation: thresholds span decades, with a heavy-user knee at the top
// ~15% and DNS the narrowest feature.
#include "bench/common.hpp"

#include "stats/ks.hpp"
#include "util/ascii_chart.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace monohids;
  auto flags = bench::standard_flags(
      "Figure 1: tail diversity of per-user anomaly-detection thresholds");
  if (!flags.parse(argc, argv)) return 0;
  const auto scenario = bench::scenario_from_flags(flags);

  bench::banner("Figure 1: tail diversity across features",
                "threshold spread of 3-4 decades for most features, ~2 for DNS; "
                "top 10-15% of users form a heavy knee");

  util::TextTable summary(
      {"feature", "min p99", "median p99", "p85 p99", "max p99", "decades"});
  summary.set_alignment({util::Align::Left, util::Align::Right, util::Align::Right,
                         util::Align::Right, util::Align::Right, util::Align::Right});

  for (features::FeatureKind f : features::kAllFeatures) {
    const auto result = sim::tail_diversity(scenario, f, 0);
    const auto n = result.p99_sorted.size();

    summary.add_row({std::string(features::name_of(f)),
                     util::fixed(result.p99_sorted.front(), 0),
                     util::fixed(result.p99_sorted[n / 2], 0),
                     util::fixed(result.p99_sorted[static_cast<std::size_t>(0.85 * n)], 0),
                     util::fixed(result.p99_sorted.back(), 0),
                     util::fixed(result.spread_decades, 2)});

    // Per-feature panel: sorted thresholds on a log axis (the paper's plot).
    util::Series p99{"99th percentile", {}, {}};
    util::Series p999{"99.9th percentile", {}, {}};
    for (std::size_t u = 0; u < n; ++u) {
      p99.x.push_back(static_cast<double>(u));
      p99.y.push_back(result.p99_sorted[u]);
      p999.x.push_back(static_cast<double>(u));
      p999.y.push_back(result.p999_sorted[u]);
    }
    util::ChartOptions options;
    options.height = 14;
    options.y_scale = util::Scale::Log10;
    options.x_label = "user (sorted by tail)";
    options.y_label = std::string(features::name_of(f)) + " threshold (log scale)";
    std::cout << '\n' << util::render_line_chart({p99, p999}, options);
  }

  std::cout << "\nSummary (per-user 99th-percentile thresholds, week 1):\n"
            << summary.render();

  // Formal diversity check: Kolmogorov-Smirnov distance between random user
  // pairs. D near 0 would mean users are statistically interchangeable (a
  // true monoculture); large D quantifies the paper's "tremendous natural
  // diversity".
  {
    const auto users = hids::week_distributions(
        scenario.matrices, bench::feature_from_flags(flags), 0);
    util::Xoshiro256 rng(1234);
    std::vector<double> distances;
    for (int pair = 0; pair < 300; ++pair) {
      const auto a = static_cast<std::size_t>(rng() % users.size());
      auto b = static_cast<std::size_t>(rng() % users.size());
      if (a == b) b = (b + 1) % users.size();
      distances.push_back(stats::ks_statistic(users[a], users[b]));
    }
    std::sort(distances.begin(), distances.end());
    std::cout << "\npairwise KS distance (" << flags.get_string("feature")
              << ", 300 random pairs): median="
              << util::fixed(distances[distances.size() / 2], 2)
              << " p10=" << util::fixed(distances[distances.size() / 10], 2)
              << " p90=" << util::fixed(distances[distances.size() * 9 / 10], 2)
              << "\n(0 = interchangeable users, 1 = disjoint behavior)\n";
  }

  // CSV block for external plotting.
  std::cout << "\ncsv:feature,user_rank,p99,p999\n";
  for (features::FeatureKind f : features::kAllFeatures) {
    const auto result = sim::tail_diversity(scenario, f, 0);
    for (std::size_t u = 0; u < result.p99_sorted.size(); ++u) {
      std::cout << features::name_of(f) << ',' << u << ',' << result.p99_sorted[u] << ','
                << result.p999_sorted[u] << '\n';
    }
  }
  return 0;
}
