// Ablation (deployment): on-host streaming threshold learning. The
// full-diversity policy computes thresholds "all done locally"; a real
// agent would use bounded-memory quantile estimators rather than buffering
// a week of bins. This driver quantifies what P² and Greenwald-Khanna cost
// in threshold accuracy and realized FP against the exact learner — and
// what they save in memory.
#include "bench/common.hpp"

#include <algorithm>
#include <cmath>

#include "hids/online_learner.hpp"

int main(int argc, char** argv) {
  using namespace monohids;
  auto flags = bench::standard_flags("Ablation: streaming on-host threshold learning");
  flags.add_double("gk-epsilon", 0.005, "Greenwald-Khanna rank-error bound");
  if (!flags.parse(argc, argv)) return 0;
  const auto scenario = bench::scenario_from_flags(flags);
  const auto feature = bench::feature_from_flags(flags);

  bench::banner("Ablation: streaming threshold learners (full-diversity deployment)",
                "bounded-memory estimators should reproduce the exact per-host "
                "thresholds and FP behavior");

  const auto test = hids::week_distributions(scenario.matrices, feature, 1);

  util::TextTable table({"estimator", "median |T error| (rel)", "p95 |T error| (rel)",
                         "mean realized FP", "mean memory/host"});
  table.set_alignment({util::Align::Left, util::Align::Right, util::Align::Right,
                       util::Align::Right, util::Align::Right});

  for (hids::EstimatorKind kind :
       {hids::EstimatorKind::Exact, hids::EstimatorKind::P2, hids::EstimatorKind::Gk}) {
    std::vector<double> rel_errors;
    double fp_sum = 0;
    double memory_sum = 0;
    for (std::uint32_t u = 0; u < scenario.user_count(); ++u) {
      const auto train_bins = scenario.matrices[u].of(feature).week_slice(0);

      hids::OnlineThresholdLearner learner(0.99, kind, flags.get_double("gk-epsilon"));
      learner.observe_series(feature, train_bins);
      const double streamed_t = learner.threshold(feature);

      const stats::EmpiricalDistribution train(
          std::vector<double>(train_bins.begin(), train_bins.end()));
      const double exact_t = train.quantile(0.99);

      rel_errors.push_back(std::abs(streamed_t - exact_t) / std::max(1.0, exact_t));
      fp_sum += test[u].exceedance(streamed_t);
      memory_sum += static_cast<double>(learner.memory_footprint_bytes());
    }
    std::sort(rel_errors.begin(), rel_errors.end());
    const auto n = scenario.user_count();
    table.add_row({std::string(name_of(kind)),
                   util::fixed(rel_errors[n / 2] * 100, 2) + "%",
                   util::fixed(rel_errors[n * 95 / 100] * 100, 2) + "%",
                   util::fixed(fp_sum / n * 100, 3) + "%",
                   util::fixed(memory_sum / n / 1024.0, 1) + " KiB"});
  }
  std::cout << table.render()
            << "\nreading: GK tracks the exact learner's realized FP closely; P2's\n"
               "five-marker interpolation biases thresholds low on heavy-tailed\n"
               "streams (its FP overshoots). At one week of 15-minute bins (672\n"
               "samples) exact buffering is still cheap — the streaming estimators\n"
               "pay off on 5-minute bins, multi-week windows, or sub-bin event\n"
               "streams, where GK memory stays logarithmic.\n";
  return 0;
}
