// Ablation (§5 / future work #1): alternative grouping methods for the
// partial-diversity policy — the paper's knee heuristic vs k-means vs
// equal-frequency buckets — plus the k-means silhouette analysis behind the
// paper's "no natural holes" remark.
#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace monohids;
  auto flags = bench::standard_flags("Ablation: grouping methods for partial diversity");
  if (!flags.parse(argc, argv)) return 0;
  const auto scenario = bench::scenario_from_flags(flags);

  bench::banner("Ablation: grouping methods (paper future work #1)",
                "partial-diversity benefits should hold across grouping methods; "
                "k-means finds no natural clusters in the population");

  const auto result = sim::grouping_ablation(scenario, bench::feature_from_flags(flags));

  util::TextTable table({"grouper", "mean utility (w=0.4)", "weekly false alarms"});
  table.set_alignment({util::Align::Left, util::Align::Right, util::Align::Right});
  for (std::size_t g = 0; g < result.grouper_names.size(); ++g) {
    table.add_row({result.grouper_names[g], util::fixed(result.mean_utility[g], 4),
                   util::fixed(result.weekly_alarms[g], 0)});
  }
  std::cout << table.render();

  std::cout << "\nk-means silhouette over log10(per-user 99th percentile):\n";
  util::TextTable silhouettes({"k", "mean silhouette"});
  silhouettes.set_alignment({util::Align::Right, util::Align::Right});
  for (std::size_t i = 0; i < result.silhouette_k.size(); ++i) {
    silhouettes.add_row({std::to_string(result.silhouette_k[i]),
                         util::fixed(result.silhouettes[i], 3)});
  }
  std::cout << silhouettes.render()
            << "\nsilhouettes stay mediocre at every k: the population sweeps through\n"
               "the whole threshold range with no natural holes, as the paper found\n"
               "when its k-means attempt 'did not prove very meaningful'.\n";
  return 0;
}
