// Ablation: joint (all-six-features) alarm behavior.
//
// The paper evaluates one feature at a time, but a deployed behavioral HIDS
// watches all six concurrently and pages on any exceedance. This driver
// measures the user-felt JOINT false-positive rate per policy, and the
// coincidence factor (how much feature alarms co-fire within bins) that
// decides whether six detectors cost six times the alarms or much less.
#include "bench/common.hpp"

#include <algorithm>

#include "sim/enterprise.hpp"

int main(int argc, char** argv) {
  using namespace monohids;
  auto flags = bench::standard_flags("Ablation: joint multi-feature alarm rates");
  if (!flags.parse(argc, argv)) return 0;
  const auto scenario = bench::scenario_from_flags(flags);

  bench::banner("Ablation: all six detectors at once",
                "the user-felt FP rate is the joint rate; correlated features "
                "co-fire, so six detectors cost much less than 6x one");

  const hids::PercentileHeuristic p99(0.99);
  util::TextTable table({"policy", "median joint FP", "p90 joint FP",
                         "median sum-of-marginals", "median coincidence"});
  table.set_alignment({util::Align::Left, util::Align::Right, util::Align::Right,
                       util::Align::Right, util::Align::Right});

  for (const auto& grouper : sim::canonical_groupers()) {
    const auto assignments = sim::assign_all_features(scenario, 0, *grouper, p99);

    std::vector<double> joint, marginals, coincidence;
    for (std::uint32_t u = 0; u < scenario.user_count(); ++u) {
      std::array<double, features::kFeatureCount> thresholds{};
      for (features::FeatureKind f : features::kAllFeatures) {
        thresholds[features::index_of(f)] =
            assignments[features::index_of(f)].threshold_of_user[u];
      }
      const auto outcome = hids::joint_alarm_rate(scenario.matrices[u], 1, thresholds);
      joint.push_back(outcome.joint_fp_rate);
      marginals.push_back(outcome.sum_of_marginals);
      if (outcome.joint_fp_rate > 0) coincidence.push_back(outcome.coincidence_factor());
    }
    auto quantile = [](std::vector<double>& v, double q) {
      std::sort(v.begin(), v.end());
      return v[static_cast<std::size_t>(q * static_cast<double>(v.size() - 1))];
    };
    table.add_row({grouper->name(), util::fixed(quantile(joint, 0.5) * 100, 2) + "%",
                   util::fixed(quantile(joint, 0.9) * 100, 2) + "%",
                   util::fixed(quantile(marginals, 0.5) * 100, 2) + "%",
                   coincidence.empty()
                       ? "-"
                       : util::fixed(quantile(coincidence, 0.5), 2) + "x"});
  }
  std::cout << table.render();

  std::cout << "\nreading: under full diversity every feature targets 1% FP, so six\n"
               "independent detectors would page 6% of bins — but bursty bins raise\n"
               "several counters at once (the coincidence factor), so the joint rate\n"
               "stays well below the sum. Under the monoculture most hosts' joint\n"
               "rate is ~0 (blind detectors co-fire on nothing).\n";
  return 0;
}
