// Substrate microbenchmarks (google-benchmark): throughput of the pieces a
// production deployment would care about — the flow table, the feature
// pipeline, quantile estimation (exact vs streaming), threshold assignment
// and the trace generators.
#include <benchmark/benchmark.h>

#include "features/pipeline.hpp"
#include "hids/evaluator.hpp"
#include "sim/scenario.hpp"
#include "stats/gk_sketch.hpp"
#include "stats/kernels.hpp"
#include "stats/p2_quantile.hpp"
#include "stats/quantile.hpp"
#include "trace/generator.hpp"
#include "trace/population.hpp"
#include "trace/storm.hpp"

namespace {

using namespace monohids;

std::vector<net::PacketRecord> benchmark_packets(std::size_t target) {
  trace::PopulationConfig pop;
  pop.user_count = 1;
  trace::GeneratorConfig config;
  config.weeks = 1;
  const trace::TraceGenerator gen(config);
  auto users = trace::generate_population(pop);
  // Scale one busy user until the day produces enough packets.
  for (auto& rate : users[0].session_rate_per_hour) rate *= 20.0;
  auto packets = gen.generate_packets(users[0], 0, util::kMicrosPerDay);
  while (packets.size() < target && packets.size() > 100) {
    auto more = packets;
    for (auto& p : more) p.timestamp += packets.back().timestamp + 1;
    packets.insert(packets.end(), more.begin(), more.end());
  }
  return packets;
}

void BM_FlowTableProcess(benchmark::State& state) {
  const auto packets = benchmark_packets(200'000);
  const auto monitored = packets.front().tuple.src_ip;
  for (auto _ : state) {
    net::FlowTable table(monitored);
    for (const auto& p : packets) {
      table.process(p);
      benchmark::DoNotOptimize(table.active_flows());
    }
    state.counters["packets"] = static_cast<double>(packets.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * packets.size()));
}
BENCHMARK(BM_FlowTableProcess)->Unit(benchmark::kMillisecond);

void BM_FeaturePipeline(benchmark::State& state) {
  const auto packets = benchmark_packets(200'000);
  const auto monitored = packets.front().tuple.src_ip;
  features::PipelineConfig config;
  config.horizon = 8 * util::kMicrosPerWeek;
  for (auto _ : state) {
    const auto result = features::extract_features(monitored, packets, config);
    benchmark::DoNotOptimize(result.flow_stats.packets_processed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * packets.size()));
}
BENCHMARK(BM_FeaturePipeline)->Unit(benchmark::kMillisecond);

void BM_ExactQuantile(benchmark::State& state) {
  util::Xoshiro256 rng(5);
  std::vector<double> samples;
  const auto n = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < n; ++i) samples.push_back(rng.uniform01() * 1e6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::quantile_nearest_rank(samples, 0.99));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * n));
}
BENCHMARK(BM_ExactQuantile)->Arg(672)->Arg(672 * 5)->Arg(100000);

void BM_P2Quantile(benchmark::State& state) {
  util::Xoshiro256 rng(6);
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> samples;
  for (std::size_t i = 0; i < n; ++i) samples.push_back(rng.uniform01() * 1e6);
  for (auto _ : state) {
    stats::P2Quantile sketch(0.99);
    for (double v : samples) sketch.add(v);
    benchmark::DoNotOptimize(sketch.value());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * n));
}
BENCHMARK(BM_P2Quantile)->Arg(672 * 5)->Arg(100000);

void BM_GkSketch(benchmark::State& state) {
  util::Xoshiro256 rng(7);
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> samples;
  for (std::size_t i = 0; i < n; ++i) samples.push_back(rng.uniform01() * 1e6);
  for (auto _ : state) {
    stats::GkSketch sketch(0.01);
    for (double v : samples) sketch.add(v);
    benchmark::DoNotOptimize(sketch.quantile(0.99));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * n));
}
BENCHMARK(BM_GkSketch)->Arg(672 * 5)->Arg(100000);

void BM_BinLevelGeneration(benchmark::State& state) {
  trace::PopulationConfig pop;
  pop.user_count = static_cast<std::uint32_t>(state.range(0));
  const auto users = trace::generate_population(pop);
  const trace::TraceGenerator gen{trace::GeneratorConfig{}};
  for (auto _ : state) {
    for (const auto& u : users) {
      benchmark::DoNotOptimize(gen.generate_features(u));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * users.size()));
}
BENCHMARK(BM_BinLevelGeneration)->Arg(10)->Arg(50)->Unit(benchmark::kMillisecond);

void BM_ThresholdAssignment(benchmark::State& state) {
  sim::ScenarioConfig config;
  config.set_users(static_cast<std::uint32_t>(state.range(0)));
  config.set_weeks(1);
  const auto scenario = sim::build_scenario(config);
  const auto train = hids::week_distributions(scenario.matrices,
                                              features::FeatureKind::TcpConnections, 0);
  const hids::PercentileHeuristic p99(0.99);
  const hids::KneePartialGrouper grouper;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hids::assign_thresholds(train, grouper, p99));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * train.size()));
}
BENCHMARK(BM_ThresholdAssignment)->Arg(50)->Arg(350)->Unit(benchmark::kMillisecond);

void BM_StormGeneration(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace::generate_storm_features({}));
  }
}
BENCHMARK(BM_StormGeneration)->Unit(benchmark::kMillisecond);

// --- stats::kernels rows ----------------------------------------------------
// Arg(0): scalar back-end; Arg(1): dispatched (best available) back-end.
// Count-valued arenas mirror real traffic features (heavy ties).

std::vector<double> kernel_arena(std::size_t n) {
  util::Xoshiro256 rng(7);
  std::vector<double> arena(n);
  for (double& v : arena) v = static_cast<double>(rng() % 400);
  std::sort(arena.begin(), arena.end());
  return arena;
}

const stats::kernels::Ops& kernel_backend(std::int64_t arg) {
  return arg == 0 ? *stats::kernels::ops_for(stats::kernels::Backend::Scalar)
                  : stats::kernels::active();
}

void BM_KernelRankSortedSweep(benchmark::State& state) {
  const auto arena = kernel_arena(30'000);
  util::Xoshiro256 rng(11);
  std::vector<double> queries(4000);
  for (double& q : queries) q = rng.uniform01() * 420.0 - 10.0;
  std::sort(queries.begin(), queries.end());
  std::vector<std::uint32_t> ranks(queries.size());
  const auto& ops = kernel_backend(state.range(0));
  state.SetLabel(ops.name);
  for (auto _ : state) {
    ops.rank_sorted(arena, queries, 0.0, ranks.data());
    benchmark::DoNotOptimize(ranks.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * queries.size()));
}
BENCHMARK(BM_KernelRankSortedSweep)->Arg(0)->Arg(1);

void BM_KernelRankUnsortedBatch(benchmark::State& state) {
  const auto arena = kernel_arena(30'000);
  util::Xoshiro256 rng(13);
  std::vector<double> queries(4000);
  for (double& q : queries) q = rng.uniform01() * 420.0 - 10.0;
  std::vector<std::uint32_t> ranks(queries.size());
  const auto& ops = kernel_backend(state.range(0));
  state.SetLabel(ops.name);
  for (auto _ : state) {
    ops.rank_unsorted(arena, queries, 0.0, ranks.data());
    benchmark::DoNotOptimize(ranks.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * queries.size()));
}
BENCHMARK(BM_KernelRankUnsortedBatch)->Arg(0)->Arg(1);

void BM_KernelRankGrid(benchmark::State& state) {
  const auto arena = kernel_arena(10'000);
  util::Xoshiro256 rng(17);
  std::vector<double> thresholds(600);
  for (double& t : thresholds) t = rng.uniform01() * 400.0;
  std::sort(thresholds.begin(), thresholds.end());
  std::vector<double> sizes(64);
  for (std::size_t i = 0; i < sizes.size(); ++i) sizes[i] = static_cast<double>(i + 1);
  std::vector<std::uint32_t> ranks(thresholds.size() * sizes.size());
  const auto& ops = kernel_backend(state.range(0));
  state.SetLabel(ops.name);
  for (auto _ : state) {
    ops.rank_grid(arena, thresholds, sizes, ranks.data());
    benchmark::DoNotOptimize(ranks.data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * ranks.size()));
}
BENCHMARK(BM_KernelRankGrid)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_KernelCountExceed(benchmark::State& state) {
  util::Xoshiro256 rng(19);
  std::vector<double> bins(100'000);
  for (double& v : bins) v = static_cast<double>(rng() % 50);
  const auto& ops = kernel_backend(state.range(0));
  state.SetLabel(ops.name);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops.count_exceed(bins, 40.0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * bins.size()));
}
BENCHMARK(BM_KernelCountExceed)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
