// ROC view of the monoculture problem.
//
// Not a paper figure, but the cleanest way to see the paper's thesis in
// detector terms: each host has its own ROC curve for a given attack model,
// and a heuristic picks one point per *configuration*. The monoculture
// forces one threshold onto every curve, landing light users in the blind
// corner and heavy users in the noisy one; per-host thresholds land each
// user near their own curve's knee.
#include "bench/common.hpp"

#include "hids/roc.hpp"
#include "util/ascii_chart.hpp"

int main(int argc, char** argv) {
  using namespace monohids;
  auto flags = bench::standard_flags("ROC operating points under each policy");
  if (!flags.parse(argc, argv)) return 0;
  const auto scenario = bench::scenario_from_flags(flags);
  const auto feature = bench::feature_from_flags(flags);

  bench::banner("ROC operating points: why one threshold cannot fit all",
                "a shared threshold lands at wildly different points of each "
                "host's own ROC curve");

  const auto train = hids::week_distributions(scenario.matrices, feature, 0);
  const auto attack = sim::make_attack_model(scenario, feature, 0);

  // Representative hosts: light (p10), median, heavy (p90) by training q99.
  std::vector<std::pair<double, std::uint32_t>> ranked;
  for (std::uint32_t u = 0; u < scenario.user_count(); ++u) {
    ranked.emplace_back(train[u].quantile(0.99), u);
  }
  std::sort(ranked.begin(), ranked.end());
  const std::uint32_t light = ranked[ranked.size() / 10].second;
  const std::uint32_t median = ranked[ranked.size() / 2].second;
  const std::uint32_t heavy = ranked[ranked.size() * 9 / 10].second;

  const hids::PercentileHeuristic p99(0.99);
  const auto homog = hids::assign_thresholds(train, hids::HomogeneousGrouper{}, p99);

  std::vector<util::Series> curves;
  util::TextTable table({"host", "own q99", "AUC", "own-threshold (FP, TP)",
                         "pooled-threshold (FP, TP)"});
  table.set_alignment({util::Align::Left, util::Align::Right, util::Align::Right,
                       util::Align::Right, util::Align::Right});

  const auto describe = [&](const char* label, std::uint32_t u) {
    const auto curve = hids::roc_curve(train[u], attack);
    util::Series s{std::string(label), {}, {}};
    for (const auto& p : curve) {
      s.x.push_back(p.fp_rate);
      s.y.push_back(p.tp_rate);
    }
    curves.push_back(std::move(s));

    const double own_t = train[u].quantile(0.99);
    const double pooled_t = homog.threshold_of_user[u];
    const auto point = [&](double t) {
      const double fp = train[u].exceedance(t);
      const double tp = 1.0 - attack.mean_fn(train[u], t);
      return "(" + util::fixed(fp, 3) + ", " + util::fixed(tp, 2) + ")";
    };
    table.add_row({label, util::fixed(own_t, 0),
                   util::fixed(hids::roc_auc(curve), 3), point(own_t), point(pooled_t)});
  };
  describe("light host (p10)", light);
  describe("median host", median);
  describe("heavy host (p90)", heavy);

  util::ChartOptions options;
  options.x_label = "false positive rate";
  options.y_label = "true positive rate (vs the attack sweep)";
  options.y_min = 0.0;
  options.y_max = 1.0;
  std::cout << util::render_line_chart(curves, options) << '\n' << table.render();

  std::cout << "\nreading: per-host thresholds put every host near its own knee "
               "(FP ~0.01,\nhigh TP). The pooled threshold drags light and median "
               "hosts to the ROC\norigin — zero false positives because the "
               "detector never fires at all.\n";
  return 0;
}
