// Thread-scaling microbenchmarks (google-benchmark): the parallel engine's
// speedup trajectory on the two hot layers it shards — per-user scenario
// generation and the evaluator's policy sweep. Each benchmark runs at
// 1/2/4/hardware threads; the "speedup" counter is serial time over this
// run's time, so on an N-core machine the threads=N row should approach N
// (and the threads=1 row pins the no-regression-in-serial contract).
#include <benchmark/benchmark.h>

#include <chrono>

#include "hids/evaluator.hpp"
#include "sim/scenario.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace monohids;

sim::ScenarioConfig scaling_config(unsigned threads) {
  sim::ScenarioConfig config;
  config.set_users(24);
  config.set_weeks(2);
  config.set_seed(1234);
  config.threads = threads;
  return config;
}

/// Wall-clock of one serial run, measured once and cached, so every
/// threaded row can report its speedup against the same baseline.
template <typename Fn>
double serial_baseline_seconds(Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(stop - start).count();
}

void BM_ScenarioBuildThreads(benchmark::State& state) {
  const auto threads = static_cast<unsigned>(state.range(0));
  static const double serial_seconds = serial_baseline_seconds(
      [] { benchmark::DoNotOptimize(sim::build_scenario(scaling_config(1))); });

  double run_seconds = 0.0;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    const auto scenario = sim::build_scenario(scaling_config(threads));
    const auto stop = std::chrono::steady_clock::now();
    run_seconds = std::chrono::duration<double>(stop - start).count();
    benchmark::DoNotOptimize(scenario.matrices.size());
  }
  state.counters["threads"] = threads;
  if (run_seconds > 0.0) state.counters["speedup"] = serial_seconds / run_seconds;
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * 24));
}

void BM_EvaluationSweepThreads(benchmark::State& state) {
  const auto threads = static_cast<unsigned>(state.range(0));
  static const auto scenario = sim::build_scenario(scaling_config(0));
  static const std::vector<hids::EvaluationRound> rounds{{0, 1}};

  hids::AttackModel attack;
  for (double s = 1.0; s <= 65536.0; s *= 2.0) attack.sizes.push_back(s);
  const hids::PercentileHeuristic p99(0.99);
  const hids::KneePartialGrouper grouper;

  auto sweep = [&](unsigned t) {
    return hids::evaluate_rounds(scenario.matrices,
                                 features::FeatureKind::TcpConnections, rounds,
                                 grouper, p99, attack, t);
  };
  static const double serial_seconds =
      serial_baseline_seconds([&] { benchmark::DoNotOptimize(sweep(1)); });

  double run_seconds = 0.0;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    const auto outcome = sweep(threads);
    const auto stop = std::chrono::steady_clock::now();
    run_seconds = std::chrono::duration<double>(stop - start).count();
    benchmark::DoNotOptimize(outcome.users.size());
  }
  state.counters["threads"] = threads;
  if (run_seconds > 0.0) state.counters["speedup"] = serial_seconds / run_seconds;
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * scenario.user_count()));
}

void thread_args(benchmark::internal::Benchmark* bench) {
  bench->Arg(1)->Arg(2)->Arg(4);
  const unsigned hw = monohids::util::default_thread_count();
  if (hw > 4) bench->Arg(static_cast<int>(hw));
}

BENCHMARK(BM_ScenarioBuildThreads)->Apply(thread_args)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EvaluationSweepThreads)->Apply(thread_args)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
