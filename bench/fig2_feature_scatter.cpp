// Figure 2: per-user 99th percentile of num-TCP-connections (x) vs
// num-UDP-connections (y). Regenerates the paper's observation that users
// occupy different corners — some TCP-heavy-but-UDP-light, some the reverse
// — so different users are best suited to detecting different attacks.
#include "bench/common.hpp"

#include <algorithm>

#include "util/ascii_chart.hpp"

int main(int argc, char** argv) {
  using namespace monohids;
  auto flags = bench::standard_flags("Figure 2: cross-feature fringe comparison");
  flags.add_string("feature-y", "num-UDP-connections", "feature on the y axis");
  if (!flags.parse(argc, argv)) return 0;
  const auto scenario = bench::scenario_from_flags(flags);

  const auto fx = bench::feature_from_flags(flags);
  const auto fy = features::parse_feature(flags.get_string("feature-y"));

  bench::banner("Figure 2: per-user fringe comparison of two features",
                "users populate opposite corners: heavy in one feature, light in "
                "the other");

  const auto scatter = sim::feature_scatter(scenario, fx, fy, 0);

  util::Series points{"one user", scatter.x, scatter.y};
  util::ChartOptions options;
  options.height = 22;
  options.x_scale = util::Scale::Log10;
  options.y_scale = util::Scale::Log10;
  options.x_label = std::string(features::name_of(fx)) + " (99 %tile)";
  options.y_label = std::string(features::name_of(fy)) + " (99 %tile, log scales)";
  std::cout << util::render_scatter({points}, options);

  // Quantify the corners the paper points at.
  auto median_of = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  const double mx = median_of(scatter.x);
  const double my = median_of(scatter.y);
  std::size_t x_heavy_y_light = 0, y_heavy_x_light = 0;
  for (std::size_t u = 0; u < scatter.x.size(); ++u) {
    if (scatter.x[u] > 3 * mx && scatter.y[u] < my) ++x_heavy_y_light;
    if (scatter.y[u] > 3 * my && scatter.x[u] < mx) ++y_heavy_x_light;
  }
  std::cout << "\nmedians: x=" << mx << " y=" << my << '\n'
            << "corner users (x>3*median_x, y<median_y): " << x_heavy_y_light << '\n'
            << "corner users (y>3*median_y, x<median_x): " << y_heavy_x_light << '\n';

  std::cout << "\ncsv:user,p99_x,p99_y\n";
  for (std::size_t u = 0; u < scatter.x.size(); ++u) {
    std::cout << u << ',' << scatter.x[u] << ',' << scatter.y[u] << '\n';
  }
  return 0;
}
