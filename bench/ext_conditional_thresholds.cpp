// Extension: time-conditioned thresholds (per-user, per-time-of-day).
//
// The paper diversifies thresholds across USERS; user traffic is just as
// diverse across HOURS. A single per-host threshold must clear the busy
// work-hour peak, handing night-time bots all that headroom. Conditioning
// on work/off hours spends the same 1% FP budget twice as effectively: this
// driver measures night-attack detection and FP for both detectors under
// the full-diversity policy.
#include "bench/common.hpp"

#include <algorithm>

#include "hids/conditional.hpp"
#include "util/ascii_chart.hpp"

int main(int argc, char** argv) {
  using namespace monohids;
  auto flags = bench::standard_flags("Extension: time-conditioned per-host thresholds");
  if (!flags.parse(argc, argv)) return 0;
  const auto scenario = bench::scenario_from_flags(flags);
  const auto feature = bench::feature_from_flags(flags);

  bench::banner("Extension: per-(user, time-of-day) thresholds",
                "conditioning on work/off hours strips the headroom night-time "
                "bots hide in, at the same false-positive budget");

  const std::size_t bins_per_week = static_cast<std::size_t>(
      util::kMicrosPerWeek / scenario.config.generator.grid.width());

  // Sweep night-attack sizes; compare population detection for single vs
  // conditional per-host thresholds (both learned on week 1, tested week 2).
  const auto sweep = hids::log_attack_sweep(1.0, 2000.0, 24);
  std::vector<double> single_curve(sweep.sizes.size(), 0.0);
  std::vector<double> conditional_curve(sweep.sizes.size(), 0.0);
  double single_fp = 0.0, conditional_fp = 0.0;
  double night_headroom_single = 0.0, night_headroom_conditional = 0.0;

  for (std::uint32_t u = 0; u < scenario.user_count(); ++u) {
    const auto& series = scenario.matrices[u].of(feature);
    // Train on week 1 bins only.
    features::BinnedSeries train_week(scenario.config.generator.grid,
                                      util::kMicrosPerWeek);
    for (std::size_t b = 0; b < bins_per_week; ++b) train_week.set(b, series.at(b));

    const auto conditional = hids::ConditionalDetector::learn(train_week, 0.99);
    const auto train_slice = series.week_slice(0);
    const stats::EmpiricalDistribution train_dist(
        std::vector<double>(train_slice.begin(), train_slice.end()));
    const double single_t = train_dist.quantile(0.99);
    const hids::ConditionalDetector single(single_t, single_t);

    single_fp += single.alarm_rate(series, bins_per_week, 2 * bins_per_week);
    conditional_fp += conditional.alarm_rate(series, bins_per_week, 2 * bins_per_week);
    night_headroom_single += std::max(0.0, single_t);
    night_headroom_conditional +=
        std::max(0.0, conditional.threshold(hids::DaySlot::OffHours));

    for (std::size_t i = 0; i < sweep.sizes.size(); ++i) {
      single_curve[i] += single.detection_rate(series, bins_per_week, 2 * bins_per_week,
                                               hids::DaySlot::OffHours, sweep.sizes[i]);
      conditional_curve[i] +=
          conditional.detection_rate(series, bins_per_week, 2 * bins_per_week,
                                     hids::DaySlot::OffHours, sweep.sizes[i]);
    }
  }
  const auto n = static_cast<double>(scenario.user_count());
  for (auto& v : single_curve) v /= n;
  for (auto& v : conditional_curve) v /= n;

  util::Series s1{"single per-host threshold", sweep.sizes, single_curve};
  util::Series s2{"work/off-hours conditional", sweep.sizes, conditional_curve};
  util::ChartOptions options;
  options.x_scale = util::Scale::Log10;
  options.x_label = "night-time attack size per window (log scale)";
  options.y_label = "population detection rate";
  options.y_min = 0.0;
  options.y_max = 1.0;
  std::cout << util::render_line_chart({s1, s2}, options);

  util::TextTable table({"detector", "test-week FP", "mean off-hours threshold"});
  table.set_alignment({util::Align::Left, util::Align::Right, util::Align::Right});
  table.add_row({"single per-host", util::fixed(single_fp / n * 100, 3) + "%",
                 util::fixed(night_headroom_single / n, 1)});
  table.add_row({"conditional", util::fixed(conditional_fp / n * 100, 3) + "%",
                 util::fixed(night_headroom_conditional / n, 1)});
  std::cout << '\n' << table.render();

  std::size_t idx = 0;
  while (idx + 1 < sweep.sizes.size() && sweep.sizes[idx] < 30.0) ++idx;
  std::cout << "\nnight attack of ~30 connections/window: single-threshold detection "
            << util::fixed(single_curve[idx], 2) << ", conditional "
            << util::fixed(conditional_curve[idx], 2)
            << "\nreading: the conditional detector's off-hours bar sits far below "
               "the\nall-hours one, so nocturnal bots lose their hiding room while "
               "the\nfalse-positive budget stays comparable.\n";
  return 0;
}
