// Ablation (§6.1 note): week-over-week threshold instability. The paper
// observed that a threshold at the training week's 99th percentile "did not
// always reflect a 1% false positive rate in the next week"; this driver
// quantifies how far each user's realized FP lands from the 1% target.
#include "bench/common.hpp"

#include <algorithm>

#include "util/ascii_chart.hpp"

int main(int argc, char** argv) {
  using namespace monohids;
  auto flags = bench::standard_flags("Ablation: threshold drift week over week");
  if (!flags.parse(argc, argv)) return 0;
  const auto scenario = bench::scenario_from_flags(flags);

  bench::banner("Ablation: 99th-percentile threshold stability (paper §6.1)",
                "training-week thresholds do NOT deliver a 1% FP rate next week");

  const auto result = sim::threshold_drift(scenario, bench::feature_from_flags(flags));

  std::vector<double> sorted = result.realized_fp;
  std::sort(sorted.begin(), sorted.end());

  util::Series curve{"realized FP (users sorted)", {}, {}};
  for (std::size_t u = 0; u < sorted.size(); ++u) {
    curve.x.push_back(static_cast<double>(u));
    curve.y.push_back(std::max(sorted[u], 1e-4));
  }
  util::Series target{"1% target", {0.0, static_cast<double>(sorted.size() - 1)},
                      {0.01, 0.01}};
  util::ChartOptions options;
  options.y_scale = util::Scale::Log10;
  options.x_label = "user (sorted by realized FP)";
  options.y_label = "realized FP in test week (log scale)";
  std::cout << util::render_line_chart({curve, target}, options);

  std::size_t above = 0, below = 0;
  for (double fp : result.realized_fp) {
    if (fp > 0.02) ++above;
    if (fp < 0.005) ++below;
  }
  std::cout << "\nmedian realized FP: " << util::fixed(result.median_realized_fp * 100, 2)
            << "%  (target 1%)\n"
            << "users within [0.5%, 2%]: "
            << util::fixed(result.fraction_within_2x * 100, 1) << "%\n"
            << "users above 2%: " << above << ", users below 0.5%: " << below << '\n';
  return 0;
}
