// Figure 4(b): hidden traffic achievable by a resourceful (mimicry)
// attacker who knows P(g) and targets 90% evasion, per policy. Regenerates:
// the monoculture's inflated thresholds leave the attacker several times
// the head-room the diversity policies allow (paper: homogeneous median
// ~310 connections/window, about 3x the diversity policies').
#include "bench/common.hpp"

#include <algorithm>

#include "stats/boxplot.hpp"
#include "util/ascii_chart.hpp"

int main(int argc, char** argv) {
  using namespace monohids;
  auto flags = bench::standard_flags("Figure 4(b): mimicry attacker's hidden volume");
  flags.add_double("evasion", 0.9, "attacker's target evasion probability");
  if (!flags.parse(argc, argv)) return 0;
  const auto scenario = bench::scenario_from_flags(flags);

  bench::banner("Figure 4(b): hidden traffic of a resourceful attacker",
                "median hidden volume under the monoculture is several times the "
                "diversity policies'");

  const auto result = sim::resourceful_attack(scenario, bench::feature_from_flags(flags),
                                              flags.get_double("evasion"));

  std::vector<util::LabelledBox> boxes;
  util::TextTable table({"policy", "q1", "median", "q3", "max"});
  table.set_alignment({util::Align::Left, util::Align::Right, util::Align::Right,
                       util::Align::Right, util::Align::Right});
  for (std::size_t p = 0; p < result.policy_names.size(); ++p) {
    const auto stats = stats::box_stats(result.hidden_volumes[p]);
    boxes.push_back({result.policy_names[p], stats});
    table.add_row({result.policy_names[p], util::fixed(stats.q1, 0),
                   util::fixed(stats.median, 0), util::fixed(stats.q3, 0),
                   util::fixed(*std::max_element(result.hidden_volumes[p].begin(),
                                                 result.hidden_volumes[p].end()),
                               0)});
  }
  util::ChartOptions options;
  options.x_label =
      "hidden traffic per window at " + util::fixed(flags.get_double("evasion"), 2) +
      " evasion probability";
  std::cout << util::render_boxplot(boxes, options) << '\n' << table.render();

  auto median_of = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  const double ratio = median_of(result.hidden_volumes[0]) /
                       std::max(1.0, median_of(result.hidden_volumes[1]));
  std::cout << "\nhomogeneous / full-diversity median hidden volume: "
            << util::fixed(ratio, 1) << "x   (paper: ~3x)\n";
  return 0;
}
