// Shared scaffolding for the per-figure bench binaries: uniform CLI flags
// (population size, seed, bin width, feature), scenario construction, a
// header that records the exact parameters each run regenerated its
// table/figure with, and an opt-in JSON timing emitter (--json <path>) so
// per-phase wall times can be tracked as a perf trajectory across PRs.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "sim/experiments.hpp"
#include "trace/generator.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/rss.hpp"
#include "util/table.hpp"

namespace monohids::bench {

/// Registers the flags every experiment binary shares.
inline util::CliFlags standard_flags(std::string summary) {
  util::CliFlags flags(std::move(summary));
  flags.add_int("users", 350, "population size (paper: 350)");
  flags.add_int("seed", 42, "master seed for the synthetic enterprise");
  flags.add_int("weeks", 5, "trace horizon in weeks (paper: 5)");
  flags.add_int("bin-minutes", 15, "feature bin width in minutes (paper: 15 or 5)");
  flags.add_string("feature", "num-TCP-connections", "feature to analyze");
  flags.add_int("scenario-version", 1,
                "trace draw contract: 1 = serial-stream seed contract, "
                "2 = counter-mode (bin-parallel) contract");
  flags.add_bool("verbose", false, "enable info logging");
  flags.add_string("json", "",
                   "write per-phase wall times + config echo as JSON to this path");
  flags.add_string("metrics-json", "",
                   "write a process metrics snapshot (obs registry + recent "
                   "spans) as JSON to this path on exit");
  return flags;
}

/// Writes the global obs registry snapshot to the --metrics-json path;
/// no-op when the flag is unset. Works in MONOHIDS_OBS=OFF builds too (the
/// document is then empty with "enabled": false), so scripted sweeps can
/// pass the flag unconditionally.
inline void write_metrics_if_requested(const util::CliFlags& flags) {
  const std::string& path = flags.get_string("metrics-json");
  if (path.empty()) return;
  obs::write_global_json(path);
  std::cout << "# metrics written to " << path << '\n';
}

/// Wall-clock phase recorder behind the --json flag. Instrumented binaries
/// record named phases (milliseconds) plus a config echo and call
/// write_if_requested() before exiting; without --json it is a no-op
/// beyond the cheap clock reads.
class PhaseTimings {
 public:
  void config(std::string key, std::string value) {
    config_.emplace_back(std::move(key), std::move(value));
  }
  void config(std::string key, std::int64_t value) {
    config(std::move(key), std::to_string(value));
  }

  void record(std::string phase, double millis) {
    phases_.emplace_back(std::move(phase), millis);
  }

  /// Records a phase under the separate setup section: work a binary must
  /// do before measuring (scenario synthesis, warm-up) but whose cost is
  /// not the quantity the bench tracks. Setup phases are emitted in their
  /// own JSON array and excluded from total_ms, so the committed perf
  /// trajectory follows the measured suites, not the fixture build.
  void record_setup(std::string phase, double millis) {
    setup_.emplace_back(std::move(phase), millis);
  }

  /// Times fn() with a steady clock and records it under `phase`.
  template <typename Fn>
  auto time(std::string phase, Fn&& fn) {
    const auto start = std::chrono::steady_clock::now();
    if constexpr (std::is_void_v<decltype(fn())>) {
      fn();
      record(std::move(phase), elapsed_ms(start));
    } else {
      auto result = fn();
      record(std::move(phase), elapsed_ms(start));
      return result;
    }
  }

  /// time() into the setup section.
  template <typename Fn>
  auto time_setup(std::string phase, Fn&& fn) {
    const auto start = std::chrono::steady_clock::now();
    if constexpr (std::is_void_v<decltype(fn())>) {
      fn();
      record_setup(std::move(phase), elapsed_ms(start));
    } else {
      auto result = fn();
      record_setup(std::move(phase), elapsed_ms(start));
      return result;
    }
  }

  /// Measured time only (setup excluded).
  [[nodiscard]] double total_ms() const {
    double total = 0.0;
    for (const auto& [name, ms] : phases_) total += ms;
    return total;
  }

  [[nodiscard]] double setup_ms() const {
    double total = 0.0;
    for (const auto& [name, ms] : setup_) total += ms;
    return total;
  }

  [[nodiscard]] std::string to_json(std::string_view binary) const {
    std::string out = "{\n  \"binary\": \"" + escape(binary) + "\",\n  \"config\": {";
    for (std::size_t i = 0; i < config_.size(); ++i) {
      out += (i == 0 ? "" : ", ");
      out += '"' + escape(config_[i].first) + "\": \"" + escape(config_[i].second) + '"';
    }
    out += "},\n";
    if (!setup_.empty()) {
      out += "  \"setup\": [\n";
      for (std::size_t i = 0; i < setup_.size(); ++i) {
        out += "    {\"name\": \"" + escape(setup_[i].first) +
               "\", \"ms\": " + format_ms(setup_[i].second) + '}';
        out += (i + 1 < setup_.size() ? ",\n" : "\n");
      }
      out += "  ],\n  \"setup_ms\": " + format_ms(setup_ms()) + ",\n";
    }
    out += "  \"phases\": [\n";
    for (std::size_t i = 0; i < phases_.size(); ++i) {
      out += "    {\"name\": \"" + escape(phases_[i].first) +
             "\", \"ms\": " + format_ms(phases_[i].second) + '}';
      out += (i + 1 < phases_.size() ? ",\n" : "\n");
    }
    out += "  ],\n  \"total_ms\": " + format_ms(total_ms()) +
           ",\n  \"peak_rss_kib\": " + std::to_string(util::peak_rss_kib()) + "\n}\n";
    return out;
  }

  /// Writes the JSON document to the --json path; no-op when unset.
  void write_if_requested(const util::CliFlags& flags, std::string_view binary) const {
    const std::string& path = flags.get_string("json");
    if (path.empty()) return;
    std::ofstream out(path);
    MONOHIDS_ENSURE(out.good(), "cannot open --json output path");
    out << to_json(binary);
    MONOHIDS_ENSURE(out.good(), "failed writing --json output");
    std::cout << "# timings written to " << path << '\n';
  }

 private:
  static double elapsed_ms(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                     start)
        .count();
  }

  static std::string format_ms(double ms) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.3f", ms);
    return buffer;
  }

  static std::string escape(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    for (char c : raw) {
      if (c == '"' || c == '\\') out += '\\';
      if (c == '\n') {
        out += "\\n";
        continue;
      }
      out += c;
    }
    return out;
  }

  std::vector<std::pair<std::string, std::string>> config_;
  std::vector<std::pair<std::string, double>> setup_;
  std::vector<std::pair<std::string, double>> phases_;
};

/// The --scenario-version flag as a trace::ScenarioVersion (validated).
inline trace::ScenarioVersion scenario_version_from_flags(const util::CliFlags& flags) {
  const std::int64_t v = flags.get_int("scenario-version");
  MONOHIDS_ENSURE(v == 1 || v == 2, "--scenario-version must be 1 or 2");
  return v == 2 ? trace::ScenarioVersion::V2 : trace::ScenarioVersion::V1;
}

/// The generation mode a flag set resolves to, for the config echo: which
/// implementation generate_features will actually run.
inline std::string generation_mode_from_flags(const util::CliFlags& flags) {
  if (scenario_version_from_flags(flags) == trace::ScenarioVersion::V2) return "v2-tiled";
  return trace::batched_generation_enabled() ? "v1-batched" : "v1-reference";
}

/// Copies the standard scenario flags into a timing record's config echo.
/// scenario_version + generation_mode distinguish v1/v2 runs in the
/// committed BENCH_*.json trajectories.
inline void echo_standard_config(PhaseTimings& timings, const util::CliFlags& flags) {
  timings.config("users", flags.get_int("users"));
  timings.config("seed", flags.get_int("seed"));
  timings.config("weeks", flags.get_int("weeks"));
  timings.config("bin_minutes", flags.get_int("bin-minutes"));
  timings.config("feature", flags.get_string("feature"));
  timings.config("scenario_version", flags.get_int("scenario-version"));
  timings.config("generation_mode", generation_mode_from_flags(flags));
}

/// Builds the scenario a parsed flag set describes, echoing the parameters.
inline sim::Scenario scenario_from_flags(const util::CliFlags& flags) {
  if (flags.get_bool("verbose")) util::set_log_level(util::LogLevel::Info);
  sim::ScenarioConfig config;
  config.set_users(static_cast<std::uint32_t>(flags.get_int("users")));
  config.set_seed(static_cast<std::uint64_t>(flags.get_int("seed")));
  config.set_weeks(static_cast<std::uint32_t>(flags.get_int("weeks")));
  config.generator.grid =
      util::BinGrid::minutes(static_cast<std::uint64_t>(flags.get_int("bin-minutes")));
  config.generator.scenario_version = scenario_version_from_flags(flags);

  std::cout << "# users=" << flags.get_int("users") << " seed=" << flags.get_int("seed")
            << " weeks=" << flags.get_int("weeks")
            << " bin-minutes=" << flags.get_int("bin-minutes")
            << " scenario-version=" << flags.get_int("scenario-version") << '\n';
  return sim::build_scenario(config);
}

/// scenario_from_flags with the build recorded as a "scenario_build" phase.
inline sim::Scenario scenario_from_flags(const util::CliFlags& flags,
                                         PhaseTimings& timings) {
  echo_standard_config(timings, flags);
  return timings.time("scenario_build", [&] { return scenario_from_flags(flags); });
}

/// scenario_from_flags for benches where the scenario is a fixture, not the
/// measurement: the build lands in the JSON "setup" section and stays out
/// of total_ms.
inline sim::Scenario scenario_setup_from_flags(const util::CliFlags& flags,
                                               PhaseTimings& timings) {
  echo_standard_config(timings, flags);
  return timings.time_setup("scenario_build", [&] { return scenario_from_flags(flags); });
}

inline features::FeatureKind feature_from_flags(const util::CliFlags& flags) {
  return features::parse_feature(flags.get_string("feature"));
}

/// Prints the standard experiment banner.
inline void banner(std::string_view figure, std::string_view claim) {
  std::cout << "=== " << figure << " ===\n# paper claim: " << claim << "\n";
}

}  // namespace monohids::bench
