// Shared scaffolding for the per-figure bench binaries: uniform CLI flags
// (population size, seed, bin width, feature), scenario construction, and a
// header that records the exact parameters each run regenerated its
// table/figure with.
#pragma once

#include <iostream>
#include <string>

#include "sim/experiments.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

namespace monohids::bench {

/// Registers the flags every experiment binary shares.
inline util::CliFlags standard_flags(std::string summary) {
  util::CliFlags flags(std::move(summary));
  flags.add_int("users", 350, "population size (paper: 350)");
  flags.add_int("seed", 42, "master seed for the synthetic enterprise");
  flags.add_int("weeks", 5, "trace horizon in weeks (paper: 5)");
  flags.add_int("bin-minutes", 15, "feature bin width in minutes (paper: 15 or 5)");
  flags.add_string("feature", "num-TCP-connections", "feature to analyze");
  flags.add_bool("verbose", false, "enable info logging");
  return flags;
}

/// Builds the scenario a parsed flag set describes, echoing the parameters.
inline sim::Scenario scenario_from_flags(const util::CliFlags& flags) {
  if (flags.get_bool("verbose")) util::set_log_level(util::LogLevel::Info);
  sim::ScenarioConfig config;
  config.set_users(static_cast<std::uint32_t>(flags.get_int("users")));
  config.set_seed(static_cast<std::uint64_t>(flags.get_int("seed")));
  config.set_weeks(static_cast<std::uint32_t>(flags.get_int("weeks")));
  config.generator.grid =
      util::BinGrid::minutes(static_cast<std::uint64_t>(flags.get_int("bin-minutes")));

  std::cout << "# users=" << flags.get_int("users") << " seed=" << flags.get_int("seed")
            << " weeks=" << flags.get_int("weeks")
            << " bin-minutes=" << flags.get_int("bin-minutes") << '\n';
  return sim::build_scenario(config);
}

inline features::FeatureKind feature_from_flags(const util::CliFlags& flags) {
  return features::parse_feature(flags.get_string("feature"));
}

/// Prints the standard experiment banner.
inline void banner(std::string_view figure, std::string_view claim) {
  std::cout << "=== " << figure << " ===\n# paper claim: " << claim << "\n";
}

}  // namespace monohids::bench
