// Extension (paper §7, future work #3): collaborative detection. The
// lowest-threshold "sentinel" hosts broadcast their detections; an attack
// counts as caught when a quorum of sentinels alarm. This driver compares
// population-mean solo detection against the quorum scheme over the naive
// attack sweep.
#include "bench/common.hpp"

#include "util/ascii_chart.hpp"

int main(int argc, char** argv) {
  using namespace monohids;
  auto flags = bench::standard_flags("Extension: collaborative sentinel detection");
  flags.add_int("sentinels", 10, "number of lowest-threshold sentinel hosts");
  flags.add_int("quorum", 2, "sentinel alarms required to call a detection");
  if (!flags.parse(argc, argv)) return 0;
  const auto scenario = bench::scenario_from_flags(flags);

  bench::banner("Extension: collaborative detection (paper future work #3)",
                "different users are sensitive to different attacks; sentinels "
                "sharing alarms dominate solo detection");

  hids::CollaborativeConfig config;
  config.sentinel_count = static_cast<std::size_t>(flags.get_int("sentinels"));
  config.quorum = static_cast<std::uint32_t>(flags.get_int("quorum"));

  const auto curve = sim::collaboration_experiment(
      scenario, bench::feature_from_flags(flags), config, 40);

  util::Series solo{"solo (population mean)", curve.sizes, curve.solo};
  util::Series collab{"sentinel quorum", curve.sizes, curve.collaborative};
  util::ChartOptions options;
  options.x_scale = util::Scale::Log10;
  options.x_label = "attack size per window (log scale)";
  options.y_label = "detection probability";
  options.y_min = 0.0;
  options.y_max = 1.0;
  std::cout << util::render_line_chart({solo, collab}, options);

  // Smallest attack size each scheme detects with >= 90% probability.
  auto first_reliable = [&](const std::vector<double>& detection) -> double {
    for (std::size_t i = 0; i < detection.size(); ++i) {
      if (detection[i] >= 0.9) return curve.sizes[i];
    }
    return -1.0;
  };
  std::cout << "\nsmallest attack detected with >=90% probability:\n"
            << "  solo:             " << util::fixed(first_reliable(curve.solo), 0) << '\n'
            << "  sentinel quorum:  " << util::fixed(first_reliable(curve.collaborative), 0)
            << '\n';
  return 0;
}
