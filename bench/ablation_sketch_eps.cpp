// Ablation: fleet-mode accuracy vs memory across (sketch eps, grid points).
//
// Builds the exact pipeline once at --users, then sweeps the fleet pipeline
// over sketch_epsilon × grid_points, reporting for each cell the compact
// footprint (store + pooled sketches), the documented utility error bound
// eps_total = 2 * (eps + 1/(m-1)), and the measured max |mean utility|
// error across the three paper policies. Exits nonzero when any cell's
// measured error exceeds its own bound — the empirical check that the bound
// quoted in docs/API_TOUR.md is honest.
#include <cmath>
#include <iostream>
#include <vector>

#include "bench/common.hpp"
#include "hids/grouping.hpp"
#include "hids/heuristics.hpp"
#include "sim/analysis_cache.hpp"
#include "sim/fleet.hpp"

namespace {

using namespace monohids;

}  // namespace

int main(int argc, char** argv) {
  auto flags = bench::standard_flags(
      "Ablation: fleet sketch accuracy vs memory across (eps, grid points)");
  flags.add_int("shard-size", 128, "users per resident shard during the sweep");
  if (!flags.parse(argc, argv)) return 0;

  bench::PhaseTimings timings;
  bench::echo_standard_config(timings, flags);
  timings.config("shard_size", flags.get_int("shard-size"));

  sim::ScenarioConfig base;
  base.set_users(static_cast<std::uint32_t>(flags.get_int("users")));
  base.set_seed(static_cast<std::uint64_t>(flags.get_int("seed")));
  base.set_weeks(static_cast<std::uint32_t>(flags.get_int("weeks")));
  base.generator.grid =
      util::BinGrid::minutes(static_cast<std::uint64_t>(flags.get_int("bin-minutes")));
  MONOHIDS_EXPECT(base.generator.weeks >= 2,
                  "sketch ablation needs >= 2 weeks (train week 0, test week 1)");
  if (flags.get_bool("verbose")) util::set_log_level(util::LogLevel::Info);

  bench::banner("ablation_sketch_eps",
                "utility error from the sketch-backed fleet state tracks the "
                "documented 2*(eps + 1/(m-1)) bound as memory shrinks");
  std::cout << "# users=" << flags.get_int("users") << " seed=" << flags.get_int("seed")
            << " weeks=" << flags.get_int("weeks") << '\n';

  const auto feature = bench::feature_from_flags(flags);
  const hids::HomogeneousGrouper homogeneous;
  const hids::KneePartialGrouper partial;
  const hids::FullDiversityGrouper full;
  const hids::Grouper* groupers[] = {&homogeneous, &partial, &full};
  const hids::UtilityHeuristic heuristic(0.5);
  const double w = 0.5;

  // Exact references, one per policy, computed once.
  const sim::Scenario exact = timings.time_setup(
      "exact_scenario_build", [&] { return sim::build_scenario(base); });
  const auto attack = exact.analysis().attack_model(feature, 0, 32);
  double exact_utility[3] = {};
  timings.time_setup("exact_evaluation", [&] {
    const auto train = exact.analysis().week(feature, 0);
    const auto test = exact.analysis().week(feature, 1);
    for (int g = 0; g < 3; ++g) {
      exact_utility[g] =
          hids::evaluate_policy(*train, *test, *groupers[g], heuristic, *attack)
              .mean_utility(w);
    }
  });

  const double eps_values[] = {1.0 / 12.0, 1.0 / 24.0, 1.0 / 48.0, 1.0 / 96.0};
  const std::uint32_t grid_values[] = {8, 16, 24, 48};

  util::TextTable table(
      {"eps", "grid m", "store (KiB)", "pooled (KiB)", "bound", "max |dU|", "ok"});
  table.set_alignment({util::Align::Right, util::Align::Right, util::Align::Right,
                       util::Align::Right, util::Align::Right, util::Align::Right,
                       util::Align::Left});
  bool all_within = true;
  for (const double eps : eps_values) {
    for (const std::uint32_t m : grid_values) {
      sim::FleetConfig config;
      config.base = base;
      config.shard_size = static_cast<std::uint32_t>(flags.get_int("shard-size"));
      config.sketch_epsilon = eps;
      config.grid_points = m;

      const std::string cell =
          "eps=" + std::string(util::fixed(eps, 4)) + "_m=" + std::to_string(m);
      const auto fleet =
          timings.time("fleet_" + cell, [&] { return sim::build_fleet_scenario(config); });

      double max_err = 0.0;
      for (int g = 0; g < 3; ++g) {
        const auto outcome = sim::evaluate_fleet_policy(fleet, feature, {0, 1},
                                                        *groupers[g], heuristic, *attack);
        max_err = std::max(max_err, std::abs(outcome.mean_utility(w) - exact_utility[g]));
      }

      const double bound = config.utility_error_bound();
      const bool within = max_err <= bound;
      all_within = all_within && within;
      table.add_row({util::fixed(eps, 4), std::to_string(m),
                     util::fixed(static_cast<double>(fleet.store_bytes()) / 1024.0, 1),
                     util::fixed(static_cast<double>(fleet.pooled_sketch_bytes()) / 1024.0, 1),
                     util::fixed(bound, 4), util::fixed(max_err, 4),
                     within ? "yes" : "NO"});
    }
  }
  std::cout << table.render();

  timings.write_if_requested(flags, "ablation_sketch_eps");
  bench::write_metrics_if_requested(flags);

  if (!all_within) {
    std::cerr << "FAIL: a sweep cell's measured utility error exceeded its bound\n";
    return 1;
  }
  return 0;
}
