// Ablation (§4): threshold-selection heuristics. The paper states its
// findings "hold across different threshold heuristics"; this driver
// evaluates percentile / mean+k*sigma / F-measure / utility heuristics under
// each grouping policy and checks the diversity-beats-monoculture ordering
// survives every one of them.
#include "bench/common.hpp"

#include <memory>

int main(int argc, char** argv) {
  using namespace monohids;
  auto flags = bench::standard_flags("Ablation: threshold heuristics");
  flags.add_double("w", 0.4, "utility weight for evaluation");
  if (!flags.parse(argc, argv)) return 0;
  const auto scenario = bench::scenario_from_flags(flags);
  const auto feature = bench::feature_from_flags(flags);
  const double w = flags.get_double("w");

  bench::banner("Ablation: threshold-selection heuristics (paper §4)",
                "the diversity-over-monoculture finding holds across heuristics");

  const auto rounds = sim::canonical_rounds();
  const auto attack = sim::make_attack_model(scenario, feature, rounds.front().train_week);

  std::vector<std::unique_ptr<hids::ThresholdHeuristic>> heuristics;
  heuristics.push_back(std::make_unique<hids::PercentileHeuristic>(0.99));
  heuristics.push_back(std::make_unique<hids::PercentileHeuristic>(0.999));
  heuristics.push_back(std::make_unique<hids::MeanSigmaHeuristic>(3.0));
  heuristics.push_back(std::make_unique<hids::FMeasureHeuristic>());
  heuristics.push_back(std::make_unique<hids::UtilityHeuristic>(w));

  util::TextTable table({"heuristic", "policy", "mean FP", "mean detection",
                         "mean utility", "alarms/wk"});
  table.set_alignment({util::Align::Left, util::Align::Left, util::Align::Right,
                       util::Align::Right, util::Align::Right, util::Align::Right});

  std::size_t diversity_wins = 0;
  for (const auto& heuristic : heuristics) {
    double homog_utility = 0, full_utility = 0;
    for (const auto& grouper : sim::canonical_groupers()) {
      const auto outcome = hids::evaluate_rounds(scenario.matrices, feature, rounds,
                                                 *grouper, *heuristic, attack);
      double fp = 0, fn = 0;
      for (const auto& u : outcome.users) {
        fp += u.fp_rate;
        fn += u.fn_rate;
      }
      const auto n = static_cast<double>(outcome.users.size());
      table.add_row({heuristic->name(), outcome.policy_name, util::fixed(fp / n, 4),
                     util::fixed(1.0 - fn / n, 3),
                     util::fixed(outcome.mean_utility(w), 4),
                     std::to_string(outcome.total_false_alarms())});
      if (outcome.policy_name == "homogeneous") homog_utility = outcome.mean_utility(w);
      if (outcome.policy_name == "full-diversity") full_utility = outcome.mean_utility(w);
    }
    if (full_utility >= homog_utility) ++diversity_wins;
  }
  std::cout << table.render();
  std::cout << "\nheuristics where full diversity >= homogeneous on mean utility: "
            << diversity_wins << " of " << heuristics.size() << '\n';
  return 0;
}
