// Microbenchmark for the batched trace-synthesis pipeline (scenario_build).
//
// scenario_build — rendering every user's six feature series — dominates
// the wall time of every figure binary. This bench A/Bs the preserved seed
// per-(bin, app) path against the batched pipeline (precomputed diurnal/
// episode rate tables, prepared Poisson rows, integer-threshold footprint
// tables, SoA staging through the dispatched widen kernel) on the same
// population, verifying the Scenario contents are BIT-identical via an
// FNV-1a digest over the raw bin bytes. Exits nonzero when the digest
// diverges or the speedup lands below --min-speedup.
//
// Speedup context for the default 350-user x 5-week scenario: both v1 paths
// must consume the identical ~180M-draw engine stream serially per user
// (the bit-identity contract pins draw order), which floors the batched
// path at ~250 ms of pure RNG stepping on a ~2 GHz core — about 2.2x below
// the seed path's ~1.9 s all by itself. The measured ~3x is therefore most
// of what draw-order-preserving batching can reach; see API_TOUR.md §13.
//
// The v2 counter-mode contract (API_TOUR.md §16) is the answer to that
// floor: per-(user, bin) Philox streams remove the serial dependency, so
// the bench also times the v2 renderer on the same population, verifies the
// bin-tile partition does not change a byte of output, and gates the v2
// speedup over the batched v1 path with --min-speedup-v2.
#include <chrono>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>

#include "bench/common.hpp"
#include "sim/scenario.hpp"
#include "stats/kernels.hpp"
#include "trace/generator.hpp"
#include "trace/population.hpp"

namespace {

using namespace monohids;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

/// FNV-1a over the raw bin storage of every series of every matrix: any
/// single-bit divergence between the render paths changes the digest.
std::uint64_t digest_matrices(const std::vector<features::FeatureMatrix>& matrices) {
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](const void* data, std::size_t bytes) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < bytes; ++i) {
      h ^= p[i];
      h *= 1099511628211ULL;
    }
  };
  for (const auto& m : matrices) {
    for (const auto& series : m.series) {
      const auto values = series.values();
      mix(values.data(), values.size() * sizeof(double));
    }
  }
  return h;
}

sim::ScenarioConfig config_from_flags(const util::CliFlags& flags) {
  sim::ScenarioConfig config;
  config.set_users(static_cast<std::uint32_t>(flags.get_int("users")));
  config.set_seed(static_cast<std::uint64_t>(flags.get_int("seed")));
  config.set_weeks(static_cast<std::uint32_t>(flags.get_int("weeks")));
  config.generator.grid =
      util::BinGrid::minutes(static_cast<std::uint64_t>(flags.get_int("bin-minutes")));
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = bench::standard_flags(
      "Microbenchmark: batched trace synthesis vs the per-(bin, app) seed path");
  flags.add_double("min-speedup", 2.5,
                   "fail when the per-user generation speedup is below this");
  flags.add_double("min-speedup-v2", 2.0,
                   "fail when the v2 counter-mode speedup over the batched "
                   "v1 path is below this");
  flags.add_int("repeat", 2, "timed passes per mode (the minimum is reported)");
  if (!flags.parse(argc, argv)) return 0;
  bench::PhaseTimings timings;
  bench::echo_standard_config(timings, flags);
  const double min_speedup = flags.get_double("min-speedup");
  const double min_speedup_v2 = flags.get_double("min-speedup-v2");
  const auto repeat = std::max<std::int64_t>(1, flags.get_int("repeat"));
  timings.config("min_speedup", util::fixed(min_speedup, 2));
  timings.config("min_speedup_v2", util::fixed(min_speedup_v2, 2));
  timings.config("simd_backend",
                 std::string(stats::kernels::backend_name(stats::kernels::active_backend())));

  bench::banner("micro_scenario",
                "batched trace synthesis renders bit-identical Scenarios >= " +
                    std::string(util::fixed(min_speedup, 1)) +
                    "x faster than the per-(bin, app) seed path");

  const sim::ScenarioConfig config = config_from_flags(flags);
  std::cout << "# users=" << flags.get_int("users") << " seed=" << flags.get_int("seed")
            << " weeks=" << flags.get_int("weeks")
            << " bin-minutes=" << flags.get_int("bin-minutes") << '\n';

  // --- (a) per-user generation A/B on a fixed population ------------------
  const auto users = trace::generate_population(config.population);
  const trace::TraceGenerator generator(config.generator);

  const auto render_all = [&](bool batched) {
    trace::ScopedGenerationMode mode(batched);
    std::vector<features::FeatureMatrix> matrices;
    matrices.reserve(users.size());
    for (const auto& u : users) matrices.push_back(generator.generate_features(u));
    return matrices;
  };

  // Warm-up pass absorbs one-time costs (footprint-table construction,
  // allocator growth) outside the measured A/B pair.
  std::uint64_t batched_digest = digest_matrices(render_all(true));

  double reference_ms = std::numeric_limits<double>::infinity();
  double batched_ms = std::numeric_limits<double>::infinity();
  std::uint64_t reference_digest = 0;
  for (std::int64_t r = 0; r < repeat; ++r) {
    auto start = Clock::now();
    const auto reference = render_all(false);
    reference_ms = std::min(reference_ms, ms_since(start));
    reference_digest = digest_matrices(reference);

    start = Clock::now();
    const auto batched = render_all(true);
    batched_ms = std::min(batched_ms, ms_since(start));
    batched_digest = digest_matrices(batched);
  }
  timings.record("features_reference", reference_ms);
  timings.record("features_batched", batched_ms);

  const bool digests_match = reference_digest == batched_digest;
  const double speedup = batched_ms > 0.0 ? reference_ms / batched_ms
                                          : std::numeric_limits<double>::infinity();

  // --- (a') the v2 counter-mode contract on the same population -----------
  // Different draw contract, so no digest comparison against v1; instead
  // the bench pins the v2 invariance claim cheaply (bin-tile partition must
  // not change a single byte) and gates the speedup over the v1 batched
  // path — the serial-draw floor the contract change exists to break.
  sim::ScenarioConfig v2_config = config;
  v2_config.generator.scenario_version = trace::ScenarioVersion::V2;
  const trace::TraceGenerator v2_generator(v2_config.generator);
  const auto render_all_v2 = [&] {
    std::vector<features::FeatureMatrix> matrices;
    matrices.reserve(users.size());
    for (const auto& u : users) matrices.push_back(v2_generator.generate_features(u));
    return matrices;
  };

  std::uint64_t v2_digest = digest_matrices(render_all_v2());  // warm-up
  double v2_ms = std::numeric_limits<double>::infinity();
  for (std::int64_t r = 0; r < repeat; ++r) {
    const auto start = Clock::now();
    const auto v2 = render_all_v2();
    v2_ms = std::min(v2_ms, ms_since(start));
    v2_digest = digest_matrices(v2);
  }
  timings.record("features_v2", v2_ms);
  const double v2_speedup = v2_ms > 0.0 ? batched_ms / v2_ms
                                        : std::numeric_limits<double>::infinity();

  bool v2_tile_invariant = true;
  {
    auto tiled_config = v2_config;
    tiled_config.generator.v2_bin_tile = 97;  // deliberately bin-count-hostile
    const trace::TraceGenerator tiled(tiled_config.generator);
    std::vector<features::FeatureMatrix> matrices;
    matrices.reserve(users.size());
    for (const auto& u : users) matrices.push_back(tiled.generate_features(u));
    v2_tile_invariant = digest_matrices(matrices) == v2_digest;
  }

  // --- (b) the headline: end-to-end scenario_build -------------------------
  double build_reference_ms = 0.0, build_batched_ms = 0.0;
  std::uint64_t build_reference_digest = 0, build_batched_digest = 0;
  {
    trace::ScopedGenerationMode mode(false);
    const auto start = Clock::now();
    const auto scenario = sim::build_scenario(config);
    build_reference_ms = ms_since(start);
    build_reference_digest = digest_matrices(scenario.matrices);
  }
  {
    trace::ScopedGenerationMode mode(true);
    const auto start = Clock::now();
    const auto scenario = sim::build_scenario(config);
    build_batched_ms = ms_since(start);
    build_batched_digest = digest_matrices(scenario.matrices);
  }
  timings.record("scenario_build_reference", build_reference_ms);
  timings.record("scenario_build", build_batched_ms);
  const bool build_digests_match = build_reference_digest == build_batched_digest;

  double build_v2_ms = 0.0;
  {
    const auto start = Clock::now();
    const auto scenario = sim::build_scenario(v2_config);
    build_v2_ms = ms_since(start);
  }
  timings.record("scenario_build_v2", build_v2_ms);

  util::TextTable table({"measurement", "value"});
  table.set_alignment({util::Align::Left, util::Align::Right});
  table.add_row({"SIMD back-end (dispatched)",
                 std::string(stats::kernels::backend_name(stats::kernels::active_backend()))});
  table.add_row({"per-user generation, seed path (ms)", util::fixed(reference_ms, 1)});
  table.add_row({"per-user generation, batched (ms)", util::fixed(batched_ms, 1)});
  table.add_row({"generation speedup", util::fixed(speedup, 2) + "x"});
  table.add_row({"scenario_build, seed path (ms)", util::fixed(build_reference_ms, 1)});
  table.add_row({"scenario_build, batched (ms)", util::fixed(build_batched_ms, 1)});
  table.add_row({"batched == seed Scenario bytes",
                 digests_match && build_digests_match ? "yes" : "NO"});
  table.add_row({"digest", std::to_string(batched_digest % 100000)});
  table.add_row({"per-user generation, v2 counter-mode (ms)", util::fixed(v2_ms, 1)});
  table.add_row({"v2 speedup over batched", util::fixed(v2_speedup, 2) + "x"});
  table.add_row({"scenario_build, v2 (ms)", util::fixed(build_v2_ms, 1)});
  table.add_row({"v2 tile-partition invariant", v2_tile_invariant ? "yes" : "NO"});
  table.add_row({"v2 digest", std::to_string(v2_digest % 100000)});
  std::cout << table.render();

  timings.write_if_requested(flags, "micro_scenario");
  bench::write_metrics_if_requested(flags);

  if (!digests_match || !build_digests_match) {
    std::cerr << "FAIL: batched and seed generation diverged\n";
    return 1;
  }
  if (speedup < min_speedup) {
    std::cerr << "FAIL: generation speedup " << speedup << "x below the " << min_speedup
              << "x target\n";
    return 1;
  }
  if (!v2_tile_invariant) {
    std::cerr << "FAIL: v2 digest changed under a different bin-tile partition\n";
    return 1;
  }
  if (v2_speedup < min_speedup_v2) {
    std::cerr << "FAIL: v2 speedup " << v2_speedup << "x over the batched path is below "
              << "the " << min_speedup_v2 << "x target\n";
    return 1;
  }
  return 0;
}
