// Figure 3(a): boxplots of per-host utility under the utility-optimal
// threshold heuristic (w = 0.4) for the three grouping policies.
// Regenerates: diversity policies give most hosts a better FP/FN balance
// than the monoculture; 8-partial tracks full diversity closely.
#include "bench/common.hpp"

#include "stats/boxplot.hpp"
#include "util/ascii_chart.hpp"

int main(int argc, char** argv) {
  using namespace monohids;
  auto flags = bench::standard_flags("Figure 3(a): per-host utility boxplots");
  flags.add_double("w", 0.4, "utility weight on false negatives");
  if (!flags.parse(argc, argv)) return 0;
  bench::PhaseTimings timings;
  const auto scenario = bench::scenario_from_flags(flags, timings);
  const double w = flags.get_double("w");

  bench::banner("Figure 3(a): end-host utility distribution per policy",
                "diversity utility exceeds homogeneous for the vast majority of "
                "users; 8-partial close to full diversity");

  const auto result = timings.time("utility_boxplots", [&] {
    return sim::utility_boxplots(scenario, bench::feature_from_flags(flags), w);
  });

  std::vector<util::LabelledBox> boxes;
  util::TextTable table({"policy", "q1", "median", "q3", "mean"});
  table.set_alignment({util::Align::Left, util::Align::Right, util::Align::Right,
                       util::Align::Right, util::Align::Right});
  for (std::size_t p = 0; p < result.policy_names.size(); ++p) {
    const auto stats = stats::box_stats(result.utilities[p]);
    boxes.push_back({result.policy_names[p], stats});
    double mean = 0;
    for (double u : result.utilities[p]) mean += u;
    mean /= static_cast<double>(result.utilities[p].size());
    table.add_row({result.policy_names[p], util::fixed(stats.q1, 3),
                   util::fixed(stats.median, 3), util::fixed(stats.q3, 3),
                   util::fixed(mean, 3)});
  }

  util::ChartOptions options;
  options.x_label = "per-host utility  U = 1 - [w*FN + (1-w)*FP],  w = " +
                    util::fixed(w, 2);
  std::cout << util::render_boxplot(boxes, options) << '\n' << table.render();

  std::cout << "\ncsv:policy,user,utility\n";
  for (std::size_t p = 0; p < result.policy_names.size(); ++p) {
    for (std::size_t u = 0; u < result.utilities[p].size(); ++u) {
      std::cout << result.policy_names[p] << ',' << u << ',' << result.utilities[p][u]
                << '\n';
    }
  }
  timings.write_if_requested(flags, "fig3a_utility_boxplots");
  bench::write_metrics_if_requested(flags);
  return 0;
}
