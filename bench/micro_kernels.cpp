// Microbenchmark for the batched SIMD evaluation kernels (stats::kernels).
//
// Measures (a) the end-to-end analysis wall time of the figure-3a +
// figure-4b suite (utility_boxplots + resourceful_attack) with batching
// disabled — the seed's per-call binary-search pipeline — vs enabled on the
// dispatched back-end, verifying bit-identical outputs along the way, and
// (b) raw kernel rows: an ascending threshold sweep answered by per-call
// std::upper_bound vs one merge-scan, and an unsorted rank batch on the
// scalar vs dispatched back-end. Exits nonzero when outputs diverge or the
// suite speedup lands below --min-speedup (default 3x).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <limits>

#include "bench/common.hpp"
#include "hids/heuristics.hpp"
#include "sim/analysis_cache.hpp"
#include "stats/kernels.hpp"
#include "util/rng.hpp"

namespace {

using namespace monohids;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

struct SuiteResult {
  sim::UtilityComparisonResult utilities;
  sim::ResourcefulAttackResult mimicry;
};

SuiteResult run_suite(const sim::Scenario& scenario, features::FeatureKind feature,
                      double* boxplots_ms = nullptr, double* mimicry_ms = nullptr) {
  SuiteResult result;
  auto start = Clock::now();
  result.utilities = sim::utility_boxplots(scenario, feature, 0.4);
  if (boxplots_ms != nullptr) *boxplots_ms = ms_since(start);
  start = Clock::now();
  result.mimicry = sim::resourceful_attack(scenario, feature);
  if (mimicry_ms != nullptr) *mimicry_ms = ms_since(start);
  return result;
}

bool identical(const SuiteResult& a, const SuiteResult& b) {
  return a.utilities.policy_names == b.utilities.policy_names &&
         a.utilities.utilities == b.utilities.utilities &&
         a.mimicry.policy_names == b.mimicry.policy_names &&
         a.mimicry.hidden_volumes == b.mimicry.hidden_volumes;
}

/// Runs the suite on a cleared cache so both modes rebuild every
/// distribution, threshold and curve from scratch.
double timed_suite(const sim::Scenario& scenario, features::FeatureKind feature,
                   bool batching, SuiteResult& out, double* boxplots_ms = nullptr,
                   double* mimicry_ms = nullptr) {
  stats::kernels::ScopedBatchMode mode(batching);
  auto& cache = scenario.analysis();
  cache.clear();
  const auto start = Clock::now();
  out = run_suite(scenario, feature, boxplots_ms, mimicry_ms);
  return ms_since(start);
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = bench::standard_flags(
      "Microbenchmark: batched SIMD evaluation kernels vs per-call binary searches");
  flags.add_double("min-speedup", 3.0,
                   "fail when the batched fig3a+fig4b suite speedup is below this");
  flags.add_int("kernel-samples", 30000, "arena size for the raw kernel rows");
  flags.add_int("kernel-queries", 4000, "query batch size for the raw kernel rows");
  flags.add_int("kernel-repeat", 50, "repetitions of each raw kernel row");
  if (!flags.parse(argc, argv)) return 0;
  bench::PhaseTimings timings;
  // The scenario is a fixture here: synthesizing it dominated total_ms and
  // drowned the kernel trajectory, so it goes to the setup section.
  const auto scenario = bench::scenario_setup_from_flags(flags, timings);
  const auto feature = bench::feature_from_flags(flags);
  const double min_speedup = flags.get_double("min-speedup");
  timings.config("min_speedup", util::fixed(min_speedup, 2));
  timings.config("simd_backend",
                 std::string(stats::kernels::backend_name(stats::kernels::active_backend())));

  bench::banner("micro_kernels",
                "batched rank/exceedance kernels keep outputs bit-identical while the "
                "fig3a+fig4b analysis suite runs >= " +
                    std::string(util::fixed(min_speedup, 1)) + "x faster");

  // --- (a) end-to-end analysis suite: per-call seed path vs batched -------
  SuiteResult seed_result, batched_result;
  // Warm-up pass absorbs one-time costs (thread pool spin-up, allocator)
  // outside the measured A/B pair.
  (void)timed_suite(scenario, feature, true, batched_result);
  double seed_boxplots_ms = 0.0, seed_mimicry_ms = 0.0;
  const double suite_seed_ms =
      timed_suite(scenario, feature, false, seed_result, &seed_boxplots_ms, &seed_mimicry_ms);
  timings.record("suite_seed_percall", suite_seed_ms);
  timings.record("suite_seed_fig3a", seed_boxplots_ms);
  timings.record("suite_seed_fig4b", seed_mimicry_ms);
  double batched_boxplots_ms = 0.0, batched_mimicry_ms = 0.0;
  const double suite_batched_ms = timed_suite(scenario, feature, true, batched_result,
                                              &batched_boxplots_ms, &batched_mimicry_ms);
  timings.record("suite_batched", suite_batched_ms);
  timings.record("suite_batched_fig3a", batched_boxplots_ms);
  timings.record("suite_batched_fig4b", batched_mimicry_ms);

  const bool outputs_match = identical(seed_result, batched_result);
  const double suite_speedup = suite_batched_ms > 0.0
                                   ? suite_seed_ms / suite_batched_ms
                                   : std::numeric_limits<double>::infinity();

  // --- (b) raw kernel rows ------------------------------------------------
  const auto n = static_cast<std::size_t>(flags.get_int("kernel-samples"));
  const auto t = static_cast<std::size_t>(flags.get_int("kernel-queries"));
  const auto repeat = static_cast<std::size_t>(flags.get_int("kernel-repeat"));
  util::Xoshiro256 rng(42);
  std::vector<double> arena(n);
  for (double& v : arena) v = static_cast<double>(rng() % 400);
  std::sort(arena.begin(), arena.end());
  std::vector<double> sorted_queries(t), unsorted_queries(t);
  for (double& q : unsorted_queries) q = rng.uniform01() * 420.0 - 10.0;
  sorted_queries = unsorted_queries;
  std::sort(sorted_queries.begin(), sorted_queries.end());
  std::vector<std::uint32_t> ranks(t);

  const auto& scalar = *stats::kernels::ops_for(stats::kernels::Backend::Scalar);
  const auto& dispatched = stats::kernels::active();

  std::uint64_t checksum = 0;
  const auto percall_start = Clock::now();
  for (std::size_t r = 0; r < repeat; ++r) {
    for (std::size_t j = 0; j < t; ++j) {
      ranks[j] = static_cast<std::uint32_t>(
          std::upper_bound(arena.begin(), arena.end(), sorted_queries[j]) - arena.begin());
    }
    checksum += ranks[t / 2];
  }
  const double percall_ms = ms_since(percall_start);
  timings.record("kernel_sorted_percall_upper_bound", percall_ms);

  const auto sweep_start = Clock::now();
  for (std::size_t r = 0; r < repeat; ++r) {
    dispatched.rank_sorted(arena, sorted_queries, 0.0, ranks.data());
    checksum += ranks[t / 2];
  }
  const double sweep_ms = ms_since(sweep_start);
  timings.record("kernel_sorted_merge_scan", sweep_ms);

  const auto unsorted_scalar_start = Clock::now();
  for (std::size_t r = 0; r < repeat; ++r) {
    scalar.rank_unsorted(arena, unsorted_queries, 0.0, ranks.data());
    checksum += ranks[t / 2];
  }
  const double unsorted_scalar_ms = ms_since(unsorted_scalar_start);
  timings.record("kernel_unsorted_scalar", unsorted_scalar_ms);

  const auto unsorted_simd_start = Clock::now();
  for (std::size_t r = 0; r < repeat; ++r) {
    dispatched.rank_unsorted(arena, unsorted_queries, 0.0, ranks.data());
    checksum += ranks[t / 2];
  }
  const double unsorted_simd_ms = ms_since(unsorted_simd_start);
  timings.record("kernel_unsorted_dispatched", unsorted_simd_ms);

  // Rank-table row: integer-count arenas (every traffic feature) answer the
  // same unsorted batch with O(1) cumulative-table loads.
  std::vector<std::uint32_t> cum;
  const bool table_ok = stats::kernels::build_rank_table(arena, cum);
  double table_ms = 0.0;
  if (table_ok) {
    const auto n32 = static_cast<std::uint32_t>(arena.size());
    const auto table_start = Clock::now();
    for (std::size_t r = 0; r < repeat; ++r) {
      for (std::size_t j = 0; j < t; ++j) {
        ranks[j] = stats::kernels::rank_from_table(cum, n32, unsorted_queries[j]);
      }
      checksum += ranks[t / 2];
    }
    table_ms = ms_since(table_start);
    timings.record("kernel_unsorted_rank_table", table_ms);
  }

  const double sweep_speedup =
      sweep_ms > 0.0 ? percall_ms / sweep_ms : std::numeric_limits<double>::infinity();
  const double unsorted_speedup = unsorted_simd_ms > 0.0
                                      ? unsorted_scalar_ms / unsorted_simd_ms
                                      : std::numeric_limits<double>::infinity();

  util::TextTable table({"measurement", "value"});
  table.set_alignment({util::Align::Left, util::Align::Right});
  table.add_row({"SIMD back-end (dispatched)",
                 std::string(stats::kernels::backend_name(stats::kernels::active_backend()))});
  table.add_row({"suite (fig3a+fig4b), per-call seed path (ms)",
                 util::fixed(suite_seed_ms, 1)});
  table.add_row({"suite (fig3a+fig4b), batched kernels (ms)",
                 util::fixed(suite_batched_ms, 1)});
  table.add_row({"suite speedup", util::fixed(suite_speedup, 2) + "x"});
  table.add_row({"batched == per-call outputs", outputs_match ? "yes" : "NO"});
  table.add_row({"rank sweep x" + std::to_string(repeat) + ", per-call upper_bound (ms)",
                 util::fixed(percall_ms, 3)});
  table.add_row({"rank sweep x" + std::to_string(repeat) + ", merge-scan (ms)",
                 util::fixed(sweep_ms, 3)});
  table.add_row({"sorted-sweep speedup", util::fixed(sweep_speedup, 1) + "x"});
  table.add_row({"unsorted batch x" + std::to_string(repeat) + ", scalar (ms)",
                 util::fixed(unsorted_scalar_ms, 3)});
  table.add_row({"unsorted batch x" + std::to_string(repeat) + ", dispatched (ms)",
                 util::fixed(unsorted_simd_ms, 3)});
  table.add_row({"unsorted-batch speedup", util::fixed(unsorted_speedup, 2) + "x"});
  if (table_ok) {
    const double table_speedup = table_ms > 0.0 ? unsorted_scalar_ms / table_ms
                                                : std::numeric_limits<double>::infinity();
    table.add_row({"unsorted batch x" + std::to_string(repeat) + ", rank table (ms)",
                   util::fixed(table_ms, 3)});
    table.add_row({"rank-table speedup vs scalar", util::fixed(table_speedup, 1) + "x"});
  }
  table.add_row({"checksum", std::to_string(checksum % 1000)});
  std::cout << table.render();

  timings.write_if_requested(flags, "micro_kernels");
  bench::write_metrics_if_requested(flags);

  if (!outputs_match) {
    std::cerr << "FAIL: batched and per-call suites diverged\n";
    return 1;
  }
  if (suite_speedup < min_speedup) {
    std::cerr << "FAIL: suite speedup " << suite_speedup << "x below the "
              << min_speedup << "x target\n";
    return 1;
  }
  return 0;
}
