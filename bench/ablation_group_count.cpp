// Ablation (§5): number of partial-diversity groups. The paper "studied
// settings in which users were grouped into 2, 3, 5 and 8 groups" and found
// 8 groups performed closest to full diversity; this driver sweeps group
// counts (knee-split and equal-frequency variants) between the homogeneous
// (1 group) and full-diversity (n groups) endpoints.
#include "bench/common.hpp"

#include <memory>

int main(int argc, char** argv) {
  using namespace monohids;
  auto flags = bench::standard_flags("Ablation: partial-diversity group count");
  flags.add_double("w", 0.4, "utility weight for evaluation");
  if (!flags.parse(argc, argv)) return 0;
  const auto scenario = bench::scenario_from_flags(flags);
  const auto feature = bench::feature_from_flags(flags);
  const double w = flags.get_double("w");

  bench::banner("Ablation: group count for partial diversity (paper §5)",
                "more groups -> closer to full diversity; 8 groups was the "
                "paper's best setting");

  const auto rounds = sim::canonical_rounds();
  const auto attack = sim::make_attack_model(scenario, feature, rounds.front().train_week);
  const hids::UtilityHeuristic heuristic(w);

  struct Config {
    std::string label;
    std::unique_ptr<hids::Grouper> grouper;
  };
  std::vector<Config> configs;
  configs.push_back({"1 (homogeneous)", std::make_unique<hids::HomogeneousGrouper>()});
  configs.push_back({"2 (knee 1+1)",
                     std::make_unique<hids::KneePartialGrouper>(0.15, 1, 1)});
  configs.push_back({"3 (knee 1+2)",
                     std::make_unique<hids::KneePartialGrouper>(0.15, 1, 2)});
  configs.push_back({"5 (knee 2+3)",
                     std::make_unique<hids::KneePartialGrouper>(0.15, 2, 3)});
  configs.push_back({"8 (knee 4+4, the paper's)",
                     std::make_unique<hids::KneePartialGrouper>(0.15, 4, 4)});
  configs.push_back({"8 (equal frequency)",
                     std::make_unique<hids::EqualFrequencyGrouper>(8)});
  configs.push_back({"16 (knee 8+8)",
                     std::make_unique<hids::KneePartialGrouper>(0.15, 8, 8)});
  configs.push_back({"n (full diversity)", std::make_unique<hids::FullDiversityGrouper>()});

  // Full diversity is the reference everything should converge to.
  const auto reference = hids::evaluate_rounds(scenario.matrices, feature, rounds,
                                               hids::FullDiversityGrouper{}, heuristic,
                                               attack);
  const double reference_utility = reference.mean_utility(w);

  util::TextTable table({"groups", "mean utility", "gap to full diversity", "alarms/wk"});
  table.set_alignment({util::Align::Left, util::Align::Right, util::Align::Right,
                       util::Align::Right});
  for (const auto& config : configs) {
    const auto outcome = hids::evaluate_rounds(scenario.matrices, feature, rounds,
                                               *config.grouper, heuristic, attack);
    table.add_row({config.label, util::fixed(outcome.mean_utility(w), 4),
                   util::fixed(reference_utility - outcome.mean_utility(w), 4),
                   std::to_string(outcome.total_false_alarms())});
  }
  std::cout << table.render()
            << "\nshape to check: the utility gap to full diversity shrinks "
               "monotonically-ish\nas groups are added, and is already small by 8 "
               "groups.\n";
  return 0;
}
