// Figure 3(b): system utility (average across users) as the FN weight w
// sweeps 0.1..0.9, per policy. Regenerates: the policies' curves diverge as
// w grows — the more IT cares about missed detections, the bigger the
// benefit of diversity over the monoculture.
#include "bench/common.hpp"

#include "util/ascii_chart.hpp"

int main(int argc, char** argv) {
  using namespace monohids;
  auto flags = bench::standard_flags("Figure 3(b): average utility vs FN weight");
  flags.add_bool("reoptimize", false,
                 "re-run the utility-optimal heuristic per w instead of fixing the "
                 "99th-percentile operating point");
  if (!flags.parse(argc, argv)) return 0;
  bench::PhaseTimings timings;
  const auto scenario = bench::scenario_from_flags(flags, timings);

  bench::banner("Figure 3(b): average utility vs weight w",
                "homogeneous and diversity curves diverge as w grows; diversity "
                "stays on top");

  const auto result = timings.time("weight_sweep", [&] {
    return sim::weight_sweep(scenario, bench::feature_from_flags(flags), {},
                             flags.get_bool("reoptimize"));
  });

  std::vector<util::Series> series;
  for (std::size_t p = 0; p < result.policy_names.size(); ++p) {
    series.push_back(
        {result.policy_names[p], result.weights, result.mean_utility[p]});
  }
  util::ChartOptions options;
  options.x_label = "weight w (importance of false negatives)";
  options.y_label = "average utility across users";
  std::cout << util::render_line_chart(series, options);

  util::TextTable table({"w", "homogeneous", "full-diversity", "8-partial",
                         "gap (full - homog)"});
  table.set_alignment({util::Align::Right, util::Align::Right, util::Align::Right,
                       util::Align::Right, util::Align::Right});
  for (std::size_t i = 0; i < result.weights.size(); ++i) {
    table.add_row({util::fixed(result.weights[i], 1),
                   util::fixed(result.mean_utility[0][i], 3),
                   util::fixed(result.mean_utility[1][i], 3),
                   util::fixed(result.mean_utility[2][i], 3),
                   util::fixed(result.mean_utility[1][i] - result.mean_utility[0][i], 3)});
  }
  std::cout << '\n' << table.render();
  timings.write_if_requested(flags, "fig3b_weight_sweep");
  bench::write_metrics_if_requested(flags);
  return 0;
}
