// Figure 5(b): the same Storm replay, full diversity vs 8-level partial
// diversity. Regenerates: partial diversity keeps false positives bounded
// to a narrow range while detection performance stays close to full
// diversity — the compromise the paper recommends to IT departments.
#include "bench/common.hpp"

#include <algorithm>
#include <cmath>

#include "util/ascii_chart.hpp"

int main(int argc, char** argv) {
  using namespace monohids;
  auto flags =
      bench::standard_flags("Figure 5(b): Storm replay, full diversity vs 8-partial");
  flags.add_int("storm-seed", 1007, "seed for the Storm zombie generator");
  if (!flags.parse(argc, argv)) return 0;
  const auto scenario = bench::scenario_from_flags(flags);

  bench::banner("Figure 5(b): Storm-zombie replay, diversity vs 8-partial",
                "8-partial bounds FP to a narrow range; detection largely matches "
                "full diversity");

  trace::StormConfig storm;
  storm.seed = static_cast<std::uint64_t>(flags.get_int("storm-seed"));
  const auto result = sim::storm_replay(scenario, storm);

  // policies: [1] full diversity, [2] 8-partial.
  std::vector<util::Series> series;
  for (std::size_t p : {std::size_t{2}, std::size_t{1}}) {
    util::Series s{result.policy_names[p], {}, {}};
    for (const auto& o : result.outcomes[p]) {
      s.x.push_back(std::max(o.fp_rate, 1e-4));
      s.y.push_back(o.detection_rate);
    }
    series.push_back(std::move(s));
  }
  util::ChartOptions options;
  options.height = 22;
  options.x_scale = util::Scale::Log10;
  options.x_label = "false positive rate (log scale)";
  options.y_label = "1 - false negative (detection rate)";
  options.y_min = 0.0;
  options.y_max = 1.0;
  std::cout << util::render_scatter(series, options);

  util::TextTable table(
      {"policy", "FP p10", "FP p90", "FP spread (decades)", "mean detection"});
  table.set_alignment({util::Align::Left, util::Align::Right, util::Align::Right,
                       util::Align::Right, util::Align::Right});
  for (std::size_t p : {std::size_t{1}, std::size_t{2}}) {
    std::vector<double> fp;
    double det = 0;
    for (const auto& o : result.outcomes[p]) {
      fp.push_back(std::max(o.fp_rate, 1e-4));
      det += o.detection_rate;
    }
    std::sort(fp.begin(), fp.end());
    const double p10 = fp[fp.size() / 10];
    const double p90 = fp[fp.size() * 9 / 10];
    table.add_row({result.policy_names[p], util::fixed(p10, 4), util::fixed(p90, 4),
                   util::fixed(std::log10(p90 / p10), 2),
                   util::fixed(det / static_cast<double>(result.outcomes[p].size()), 3)});
  }
  std::cout << '\n' << table.render();
  return 0;
}
