// Table 3: average number of false alarms arriving at the central IT
// operation center per week, per (threshold heuristic x grouping policy).
// Regenerates the ordering: the monoculture floods the console; diversity
// policies roughly halve the volume (paper: 1594 / 892 / 482 for the 99th
// percentile heuristic, 3536 / 1194 / 2328 for utility w=0.4).
#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace monohids;
  auto flags = bench::standard_flags("Table 3: weekly false alarms at the IT console");
  flags.add_double("w", 0.4, "utility-heuristic weight");
  if (!flags.parse(argc, argv)) return 0;
  bench::PhaseTimings timings;
  const auto scenario = bench::scenario_from_flags(flags, timings);

  bench::banner("Table 3: mean false alarms per week at the central console",
                "homogeneous worst under both heuristics; diversity policies cut "
                "the volume roughly in half");

  const auto result = timings.time("alarm_rates", [&] {
    return sim::alarm_rates(scenario, bench::feature_from_flags(flags),
                            flags.get_double("w"));
  });

  util::TextTable table({"Threshold Heuristic", "Homogeneous", "Full Diversity",
                         "Partial Diversity"});
  table.set_alignment({util::Align::Left, util::Align::Right, util::Align::Right,
                       util::Align::Right});
  for (std::size_t h = 0; h < result.heuristic_names.size(); ++h) {
    table.add_row({result.heuristic_names[h], util::fixed(result.alarms[h][0], 0),
                   util::fixed(result.alarms[h][1], 0),
                   util::fixed(result.alarms[h][2], 0)});
  }
  std::cout << table.render();

  std::cout << "\npaper reference (350 users):\n"
               "  99th-percentile : 1594 / 892 / 482\n"
               "  utility, w=0.4  : 3536 / 1194 / 2328\n"
               "shape to check: homogeneous column dominates both rows.\n";

  const double per_user = result.alarms[0][1] /
                          static_cast<double>(scenario.user_count());
  std::cout << "full diversity, 99th pct: ~" << util::fixed(per_user, 1)
            << " alarms per user per week (paper: ~3)\n";
  timings.write_if_requested(flags, "table3_alarm_rates");
  bench::write_metrics_if_requested(flags);
  return 0;
}
