// Fault injection against the live daemon: truncated captures mid-packet,
// corrupt record headers, and out-of-order timestamps must surface as
// diagnosed errors or documented skip counts — never a crash, a hang, or a
// silently wrong feature matrix. Extends the trace-reader error-path suite
// (tests/trace/test_io_errors.cpp) through the daemon's recovery path.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <vector>

#include "hids/daemon.hpp"
#include "trace/generator.hpp"
#include "trace/population.hpp"
#include "util/error.hpp"

namespace monohids::hids {
namespace {

const trace::UserProfile& fixture_user() {
  static const auto users = [] {
    trace::PopulationConfig pop;
    pop.user_count = 10;
    pop.seed = 777;
    return trace::generate_population(pop);
  }();
  return users[1];
}

/// One quiet day of traffic: small enough for byte surgery, real enough to
/// produce flows through every feature.
const std::vector<net::PacketRecord>& day_packets() {
  static const auto packets = [] {
    const trace::TraceGenerator generator{trace::GeneratorConfig{}};
    return generator.generate_packets(fixture_user(), 0, util::kMicrosPerDay);
  }();
  return packets;
}

DaemonConfig fixture_config() {
  DaemonConfig config;
  config.monitored = fixture_user().address;
  config.user_id = fixture_user().user_id;
  config.pipeline.horizon = util::kMicrosPerWeek;
  config.deliver_inline = true;
  return config;
}

std::string pcap_of(const std::vector<net::PacketRecord>& packets) {
  std::ostringstream out;
  trace::write_pcap(out, packets);
  return out.str();
}

std::uint32_t u32_le_at(const std::string& bytes, std::size_t offset) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[offset])) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[offset + 1])) << 8) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[offset + 2])) << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[offset + 3])) << 24);
}

/// Byte offset of record `n` (0-based) in a classic pcap byte string.
std::size_t record_offset(const std::string& bytes, std::size_t n) {
  std::size_t at = 24;
  for (std::size_t i = 0; i < n; ++i) at += 16 + u32_le_at(bytes, at + 8);
  return at;
}

TEST(DaemonFaults, TruncatedCaptureMidPacketSalvagesEveryIntactPacket) {
  const std::string bytes = pcap_of(day_packets());
  // Cut inside the body of the record two-thirds in.
  const std::size_t cut_record = (day_packets().size() * 2) / 3;
  const std::size_t cut = record_offset(bytes, cut_record) + 16 + 5;
  ASSERT_LT(cut, bytes.size());

  Daemon daemon(fixture_config());
  std::istringstream in(bytes.substr(0, cut));
  const trace::PcapReadResult imported = daemon.consume_pcap(in);
  EXPECT_EQ(imported.packet_count, cut_record);
  EXPECT_NE(imported.stream_error.find("truncated pcap record"), std::string::npos)
      << "actual: " << imported.stream_error;

  const DaemonStats stats = daemon.stats();
  EXPECT_EQ(stats.input_errors, 1u);
  EXPECT_EQ(stats.last_input_error, imported.stream_error);

  // The salvaged run must equal a clean run over the intact prefix — a
  // fault truncates coverage, it never corrupts what was already parsed.
  const DaemonResult salvaged = daemon.finish();
  Daemon reference_daemon(fixture_config());
  reference_daemon.on_batch(std::span<const net::PacketRecord>(day_packets().data(),
                                                               cut_record));
  const DaemonResult reference = reference_daemon.finish();
  EXPECT_EQ(salvaged.stats.packets_ingested, reference.stats.packets_ingested);
  for (features::FeatureKind f : features::kAllFeatures) {
    const auto a = salvaged.pipeline.matrix.of(f).values();
    const auto b = reference.pipeline.matrix.of(f).values();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i], b[i]) << features::name_of(f) << " bin " << i;
    }
  }
}

TEST(DaemonFaults, CorruptRecordHeaderIsDiagnosedNotTrusted) {
  std::string bytes = pcap_of(day_packets());
  // Claim a 256 MiB record a few packets in: the daemon must stop with a
  // diagnostic instead of allocating off the hostile length field.
  const std::size_t at = record_offset(bytes, 5) + 8;
  bytes[at + 0] = 0x00;
  bytes[at + 1] = 0x00;
  bytes[at + 2] = 0x00;
  bytes[at + 3] = 0x10;

  Daemon daemon(fixture_config());
  std::istringstream in(bytes);
  const trace::PcapReadResult imported = daemon.consume_pcap(in);
  EXPECT_EQ(imported.packet_count, 5u);
  EXPECT_NE(imported.stream_error.find("implausible pcap record length"),
            std::string::npos)
      << "actual: " << imported.stream_error;
  EXPECT_EQ(daemon.stats().input_errors, 1u);
  const DaemonResult result = daemon.finish();
  EXPECT_EQ(result.stats.packets_ingested, 5u);
}

TEST(DaemonFaults, MalformedGlobalHeaderStillThrows) {
  std::string bytes = pcap_of(day_packets());
  bytes[0] = 0x00;  // break the magic: nothing recoverable was captured
  Daemon daemon(fixture_config());
  std::istringstream in(bytes);
  EXPECT_THROW((void)daemon.consume_pcap(in), InputError);
  EXPECT_EQ(daemon.stats().input_errors, 0u);
  const DaemonResult result = daemon.finish();
  EXPECT_EQ(result.stats.packets_ingested, 0u);
}

TEST(DaemonFaults, FaultCountsAccumulateAcrossCaptures) {
  const std::string bytes = pcap_of(day_packets());
  Daemon daemon(fixture_config());
  for (int i = 0; i < 2; ++i) {
    std::istringstream in(bytes.substr(0, bytes.size() - 3));
    (void)daemon.consume_pcap(in);
  }
  const DaemonStats stats = daemon.stats();
  EXPECT_EQ(stats.input_errors, 2u);
  EXPECT_FALSE(stats.last_input_error.empty());
  (void)daemon.finish();
}

TEST(DaemonFaults, OutOfOrderTimestampsAreSkippedAndCounted) {
  // Replay a slice, then splice three stale packets (rewound timestamps)
  // into the stream: the daemon must skip exactly those, count them, and
  // produce the same matrix as the clean sequence.
  std::vector<net::PacketRecord> clean(day_packets().begin(),
                                       day_packets().begin() + 2000);
  std::vector<net::PacketRecord> disordered = clean;
  net::PacketRecord stale = clean[100];
  stale.timestamp = clean[500].timestamp / 2;
  disordered.insert(disordered.begin() + 1500, 3, stale);

  DaemonConfig config = fixture_config();
  Daemon daemon(config);
  daemon.on_batch(disordered);
  const DaemonResult result = daemon.finish();
  EXPECT_EQ(result.stats.packets_out_of_order, 3u);
  EXPECT_EQ(result.stats.packets_ingested, clean.size());

  Daemon reference_daemon(config);
  reference_daemon.on_batch(clean);
  const DaemonResult reference = reference_daemon.finish();
  for (features::FeatureKind f : features::kAllFeatures) {
    const auto a = result.pipeline.matrix.of(f).values();
    const auto b = reference.pipeline.matrix.of(f).values();
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i], b[i]) << features::name_of(f) << " bin " << i;
    }
  }
}

TEST(DaemonFaults, RegressionAcrossBatchBoundariesIsAlsoCaught) {
  const auto& packets = day_packets();
  ASSERT_GT(packets.size(), 3000u);
  const std::span<const net::PacketRecord> all(packets.data(), 3000);
  Daemon daemon(fixture_config());
  daemon.on_batch(all.subspan(1000, 2000));  // later slice first
  daemon.on_batch(all.subspan(0, 1000));     // whole earlier slice regresses
  const DaemonResult result = daemon.finish();
  EXPECT_EQ(result.stats.packets_ingested + result.stats.packets_out_of_order, 3000u);
  EXPECT_GE(result.stats.packets_out_of_order, 1000u - 1);
}

}  // namespace
}  // namespace monohids::hids
