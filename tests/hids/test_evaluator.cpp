#include "hids/evaluator.hpp"

#include <gtest/gtest.h>

#include "trace/generator.hpp"
#include "trace/population.hpp"
#include "util/error.hpp"

namespace monohids::hids {
namespace {

using features::FeatureKind;
using stats::EmpiricalDistribution;

std::vector<EmpiricalDistribution> population_at(std::vector<double> levels) {
  std::vector<EmpiricalDistribution> users;
  for (double level : levels) users.emplace_back(std::vector<double>(100, level));
  return users;
}

TEST(Evaluator, PerUserOperatingPoints) {
  // Users at constant levels 10 and 1000, thresholds from full diversity:
  // zero FP in a stationary test week; FN depends on attack sweep vs level.
  const auto train = population_at({10, 1000});
  const auto test = population_at({10, 1000});
  AttackModel attack;
  attack.sizes = {5.0, 2000.0};
  const PercentileHeuristic p99(0.99);
  const auto outcome = evaluate_policy(train, test, FullDiversityGrouper{}, p99, attack);

  ASSERT_EQ(outcome.users.size(), 2u);
  EXPECT_EQ(outcome.policy_name, "full-diversity");
  // constant traffic == threshold, alarms require strictly-above
  EXPECT_DOUBLE_EQ(outcome.users[0].fp_rate, 0.0);
  // user 0 (T=10): size-5 attack hides (10+5<=... wait 15 > 10) — detected;
  // both sizes exceed the threshold, so FN = 0.
  EXPECT_DOUBLE_EQ(outcome.users[0].fn_rate, 0.0);
  // user 1 (T=1000): size-5 hides (1005 <= 1000 is false)... also detected.
  // Constant-level users detect any additive attack; use the utility check.
  EXPECT_DOUBLE_EQ(outcome.users[1].utility(0.4), 1.0);
}

TEST(Evaluator, HomogeneousThresholdBlindsLightUsers) {
  const auto train = population_at({10, 10000});
  const auto test = population_at({10, 10000});
  AttackModel attack;
  attack.sizes = {100.0};  // stealthy vs the pooled threshold
  const PercentileHeuristic p99(0.99);

  const auto homog = evaluate_policy(train, test, HomogeneousGrouper{}, p99, attack);
  const auto full = evaluate_policy(train, test, FullDiversityGrouper{}, p99, attack);

  // Pooled threshold = 10000: the light user misses the attack entirely.
  EXPECT_DOUBLE_EQ(homog.users[0].fn_rate, 1.0);
  EXPECT_DOUBLE_EQ(homog.users[0].detection_rate(), 0.0);
  // With a personal threshold the same user catches it always.
  EXPECT_DOUBLE_EQ(full.users[0].fn_rate, 0.0);
}

TEST(Evaluator, WeeklyAlarmsScaleWithFpRate) {
  // Train at level 10; test week runs hotter, so every bin alarms.
  const auto train = population_at({10});
  const auto test = population_at({20});
  AttackModel attack;
  attack.sizes = {1.0};
  const PercentileHeuristic p99(0.99);
  const auto outcome = evaluate_policy(train, test, FullDiversityGrouper{}, p99, attack);
  EXPECT_DOUBLE_EQ(outcome.users[0].fp_rate, 1.0);
  EXPECT_EQ(outcome.users[0].weekly_false_alarms, 100u);
  EXPECT_EQ(outcome.total_false_alarms(), 100u);
}

TEST(Evaluator, UtilitiesAggregateAcrossUsers) {
  const auto train = population_at({10, 20, 30});
  const auto test = train;
  AttackModel attack;
  attack.sizes = {100.0};
  const PercentileHeuristic p99(0.99);
  const auto outcome = evaluate_policy(train, test, FullDiversityGrouper{}, p99, attack);
  const auto utilities = outcome.utilities(0.4);
  ASSERT_EQ(utilities.size(), 3u);
  double mean = 0;
  for (double u : utilities) mean += u;
  EXPECT_NEAR(outcome.mean_utility(0.4), mean / 3.0, 1e-12);
}

TEST(Evaluator, MismatchedPopulationsAreAnError) {
  const auto train = population_at({10});
  const auto test = population_at({10, 20});
  AttackModel attack;
  attack.sizes = {1.0};
  const PercentileHeuristic p99(0.99);
  EXPECT_THROW((void)evaluate_policy(train, test, FullDiversityGrouper{}, p99, attack),
               PreconditionError);
}

TEST(Evaluator, WeekDistributionsSliceTheMatrices) {
  trace::PopulationConfig pop;
  pop.user_count = 4;
  pop.weeks = 2;
  trace::GeneratorConfig gen_config;
  gen_config.weeks = 2;
  const trace::TraceGenerator gen(gen_config);
  std::vector<features::FeatureMatrix> matrices;
  for (const auto& u : trace::generate_population(pop)) {
    matrices.push_back(gen.generate_features(u));
  }
  const auto week0 = week_distributions(matrices, FeatureKind::TcpConnections, 0);
  const auto week1 = week_distributions(matrices, FeatureKind::TcpConnections, 1);
  ASSERT_EQ(week0.size(), 4u);
  EXPECT_EQ(week0[0].size(), 672u);
  EXPECT_EQ(week1[0].size(), 672u);
  EXPECT_THROW((void)week_distributions(matrices, FeatureKind::TcpConnections, 2),
               PreconditionError);
}

TEST(Evaluator, RoundsAverageOutcomes) {
  trace::PopulationConfig pop;
  pop.user_count = 6;
  pop.weeks = 4;
  trace::GeneratorConfig gen_config;
  gen_config.weeks = 4;
  const trace::TraceGenerator gen(gen_config);
  std::vector<features::FeatureMatrix> matrices;
  for (const auto& u : trace::generate_population(pop)) {
    matrices.push_back(gen.generate_features(u));
  }
  const auto attack = linear_attack_sweep(100.0, 8);
  const PercentileHeuristic p99(0.99);
  const std::vector<EvaluationRound> rounds{{0, 1}, {2, 3}};
  const auto merged = evaluate_rounds(matrices, FeatureKind::TcpConnections, rounds,
                                      FullDiversityGrouper{}, p99, attack);
  ASSERT_EQ(merged.users.size(), 6u);
  for (const auto& u : merged.users) {
    EXPECT_GE(u.fp_rate, 0.0);
    EXPECT_LE(u.fp_rate, 1.0);
    EXPECT_GE(u.fn_rate, 0.0);
    EXPECT_LE(u.fn_rate, 1.0);
  }
}

TEST(Evaluator, NoRoundsIsAnError) {
  std::vector<features::FeatureMatrix> matrices;
  const auto attack = linear_attack_sweep(10.0, 2);
  const PercentileHeuristic p99(0.99);
  EXPECT_THROW((void)evaluate_rounds(matrices, FeatureKind::TcpConnections, {},
                                     FullDiversityGrouper{}, p99, attack),
               PreconditionError);
}

TEST(Replay, CountsDetectionOnlyOnAttackedBins) {
  const std::vector<double> benign{0, 0, 10, 0};
  const std::vector<double> attack{0, 5, 5, 100};
  // threshold 8: bin1 0+5<=8 missed; bin2 10+5>8 detected; bin3 0+100>8
  // detected -> detection 2/3. FP: benign>8 only at bin2 -> 1/4.
  const auto outcome = evaluate_replay(benign, attack, 8.0);
  EXPECT_DOUBLE_EQ(outcome.detection_rate, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(outcome.fp_rate, 0.25);
}

TEST(Replay, NoAttackedBinsGivesZeroDetection) {
  const std::vector<double> benign{1, 2, 3};
  const std::vector<double> attack{0, 0, 0};
  EXPECT_DOUBLE_EQ(evaluate_replay(benign, attack, 10.0).detection_rate, 0.0);
}

TEST(Replay, MismatchedShapesAreAnError) {
  const std::vector<double> benign{1, 2};
  const std::vector<double> attack{1};
  EXPECT_THROW((void)evaluate_replay(benign, attack, 1.0), PreconditionError);
}

}  // namespace
}  // namespace monohids::hids
