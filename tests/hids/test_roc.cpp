#include "hids/roc.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace monohids::hids {
namespace {

using stats::EmpiricalDistribution;

EmpiricalDistribution uniform(double lo, double hi, int n = 4000) {
  util::Xoshiro256 rng(31);
  std::vector<double> v;
  for (int i = 0; i < n; ++i) v.push_back(lo + rng.uniform01() * (hi - lo));
  return EmpiricalDistribution(std::move(v));
}

TEST(Roc, CurveIsMonotoneFromNeverAlarmToAlwaysAlarm) {
  const auto benign = uniform(0, 100);
  const auto attack = linear_attack_sweep(100.0, 10);
  const auto curve = roc_curve(benign, attack);
  ASSERT_GE(curve.size(), 2u);
  double prev_fp = -1, prev_tp = -1;
  for (const auto& p : curve) {
    EXPECT_GE(p.fp_rate, prev_fp);
    EXPECT_GE(p.tp_rate, prev_tp - 1e-12);
    prev_fp = p.fp_rate;
    prev_tp = p.tp_rate;
  }
  EXPECT_DOUBLE_EQ(curve.front().fp_rate, 0.0);  // sentinel threshold
  EXPECT_NEAR(curve.back().fp_rate, 1.0, 1e-3);
}

TEST(Roc, DetectorDominatesChanceOnSeparableProblem) {
  // Attacks comparable to the traffic scale: better than random guessing.
  const auto benign = uniform(0, 100);
  const auto attack = linear_attack_sweep(200.0, 20);
  const double auc = roc_auc(roc_curve(benign, attack));
  EXPECT_GT(auc, 0.7);
  EXPECT_LE(auc, 1.0 + 1e-12);
}

TEST(Roc, TinyAttacksAreNearChance) {
  // Attacks far below traffic noise: AUC approaches 0.5.
  const auto benign = uniform(0, 10000);
  const auto attack = linear_attack_sweep(10.0, 10);
  const double auc = roc_auc(roc_curve(benign, attack));
  EXPECT_NEAR(auc, 0.5, 0.08);
}

TEST(Roc, HugeAttacksAreNearPerfect) {
  const auto benign = uniform(0, 10);
  AttackModel attack;
  attack.sizes = {1000.0};
  const double auc = roc_auc(roc_curve(benign, attack));
  EXPECT_GT(auc, 0.99);
}

TEST(Roc, ClosestToPerfectPicksABalancedPoint) {
  const auto benign = uniform(0, 100);
  const auto attack = linear_attack_sweep(150.0, 15);
  const auto curve = roc_curve(benign, attack);
  const auto best = closest_to_perfect(curve);
  // Must beat the extreme endpoints on distance to (0, 1).
  const auto d = [](const RocPoint& p) {
    return p.fp_rate * p.fp_rate + (1 - p.tp_rate) * (1 - p.tp_rate);
  };
  EXPECT_LE(d(best), d(curve.front()));
  EXPECT_LE(d(best), d(curve.back()));
  EXPECT_GT(best.tp_rate, 0.5);
  EXPECT_LT(best.fp_rate, 0.5);
}

TEST(Roc, EmptyInputsAreErrors) {
  const auto benign = uniform(0, 10, 10);
  const AttackModel empty;
  EXPECT_THROW((void)roc_curve(benign, empty), PreconditionError);
  EXPECT_THROW((void)roc_auc({}), PreconditionError);
  EXPECT_THROW((void)closest_to_perfect({}), PreconditionError);
}

}  // namespace
}  // namespace monohids::hids
