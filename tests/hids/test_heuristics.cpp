#include "hids/heuristics.hpp"

#include <gtest/gtest.h>

#include "stats/classification.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace monohids::hids {
namespace {

using stats::EmpiricalDistribution;

EmpiricalDistribution uniform_0_100(int n = 10000) {
  util::Xoshiro256 rng(71);
  std::vector<double> v;
  v.reserve(n);
  for (int i = 0; i < n; ++i) v.push_back(rng.uniform01() * 100.0);
  return EmpiricalDistribution(std::move(v));
}

TEST(Percentile, ThresholdCapsTrainingFalsePositives) {
  const auto g = uniform_0_100();
  const PercentileHeuristic h(0.99);
  const double t = h.compute(g, nullptr);
  EXPECT_LE(g.exceedance(t), 0.01 + 1e-12);
  EXPECT_NEAR(t, 99.0, 1.0);
}

TEST(Percentile, NameAndAccessors) {
  const PercentileHeuristic h(0.999);
  EXPECT_EQ(h.name(), "percentile-99.9");
  EXPECT_DOUBLE_EQ(h.percentile(), 0.999);
}

TEST(Percentile, InvalidProbabilityIsAnError) {
  EXPECT_THROW(PercentileHeuristic(0.0), PreconditionError);
  EXPECT_THROW(PercentileHeuristic(1.0), PreconditionError);
}

TEST(MeanSigma, MatchesFormula) {
  const EmpiricalDistribution g({2, 4, 4, 4, 5, 5, 7, 9});  // mean 5, sigma 2
  const MeanSigmaHeuristic h(3.0);
  EXPECT_DOUBLE_EQ(h.compute(g, nullptr), 11.0);
}

TEST(MeanSigma, ZeroSigmaGivesMean) {
  const EmpiricalDistribution g({1, 2, 3});
  const MeanSigmaHeuristic h(0.0);
  EXPECT_DOUBLE_EQ(h.compute(g, nullptr), 2.0);
}

TEST(FnAwareHeuristics, RequireAttackModel) {
  const auto g = uniform_0_100(100);
  EXPECT_THROW((void)FMeasureHeuristic{}.compute(g, nullptr), PreconditionError);
  EXPECT_THROW((void)UtilityHeuristic{0.4}.compute(g, nullptr), PreconditionError);
}

TEST(Utility, PickedThresholdMaximizesUtilityOverCandidates) {
  const auto g = uniform_0_100(2000);
  const auto attack = linear_attack_sweep(100.0, 20);
  const UtilityHeuristic h(0.4);
  const double best_t = h.compute(g, &attack);
  const double best_u =
      stats::utility(attack.mean_fn(g, best_t), g.exceedance(best_t), 0.4);
  for (double t : candidate_thresholds(g)) {
    const double u = stats::utility(attack.mean_fn(g, t), g.exceedance(t), 0.4);
    ASSERT_LE(u, best_u + 1e-12);
  }
}

TEST(Utility, HighFnWeightPushesThresholdDown) {
  const auto g = uniform_0_100(2000);
  const auto attack = linear_attack_sweep(100.0, 20);
  const double t_fp_focused = UtilityHeuristic(0.1).compute(g, &attack);
  const double t_fn_focused = UtilityHeuristic(0.9).compute(g, &attack);
  EXPECT_LT(t_fn_focused, t_fp_focused);
}

TEST(Utility, InvalidWeightIsAnError) {
  EXPECT_THROW(UtilityHeuristic(-0.1), PreconditionError);
  EXPECT_THROW(UtilityHeuristic(1.1), PreconditionError);
}

TEST(FMeasure, BalancesPrecisionAndRecall) {
  const auto g = uniform_0_100(2000);
  const auto attack = linear_attack_sweep(100.0, 20);
  const FMeasureHeuristic h;
  const double t = h.compute(g, &attack);
  // F-measure optimum should be an interior threshold: neither "alarm on
  // everything" nor "alarm on nothing".
  EXPECT_GT(t, g.min());
  EXPECT_LT(t, g.max());
}

TEST(Candidates, CoverUniqueValuesPlusSentinel) {
  const EmpiricalDistribution g({1, 1, 2, 3, 3, 3});
  const auto candidates = candidate_thresholds(g);
  ASSERT_EQ(candidates.size(), 4u);  // 1, 2, 3, max+1
  EXPECT_DOUBLE_EQ(candidates[0], 1.0);
  EXPECT_DOUBLE_EQ(candidates[3], 4.0);
}

TEST(Candidates, SentinelThresholdNeverAlarms) {
  const EmpiricalDistribution g({5, 6, 7});
  const auto candidates = candidate_thresholds(g);
  EXPECT_DOUBLE_EQ(g.exceedance(candidates.back()), 0.0);
}

TEST(Heuristics, PolymorphicUseThroughBasePointer) {
  const auto g = uniform_0_100(500);
  const auto attack = linear_attack_sweep(100.0, 10);
  std::vector<std::unique_ptr<ThresholdHeuristic>> heuristics;
  heuristics.push_back(std::make_unique<PercentileHeuristic>(0.99));
  heuristics.push_back(std::make_unique<MeanSigmaHeuristic>(3.0));
  heuristics.push_back(std::make_unique<FMeasureHeuristic>());
  heuristics.push_back(std::make_unique<UtilityHeuristic>(0.4));
  for (const auto& h : heuristics) {
    EXPECT_FALSE(h->name().empty());
    EXPECT_GE(h->compute(g, &attack), 0.0);
  }
}

}  // namespace
}  // namespace monohids::hids
