#include "hids/attacker.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace monohids::hids {
namespace {

using stats::EmpiricalDistribution;

EmpiricalDistribution uniform(double lo, double hi, int n = 5000, std::uint64_t seed = 81) {
  util::Xoshiro256 rng(seed);
  std::vector<double> v;
  for (int i = 0; i < n; ++i) v.push_back(lo + rng.uniform01() * (hi - lo));
  return EmpiricalDistribution(std::move(v));
}

TEST(NaiveAttacker, DetectionProbabilityIsExceedanceOfShiftedTraffic) {
  const EmpiricalDistribution g({0, 10, 20, 30});
  // threshold 25, attack 10: detected when g + 10 > 25 <=> g > 15 -> {20,30}
  EXPECT_DOUBLE_EQ(naive_detection_probability(g, 25.0, 10.0), 0.5);
}

TEST(NaiveAttacker, HugeAttackAlwaysDetected) {
  const auto g = uniform(0, 100);
  EXPECT_DOUBLE_EQ(naive_detection_probability(g, 150.0, 1000.0), 1.0);
}

TEST(NaiveAttacker, ZeroAttackDetectionEqualsFalsePositiveRate) {
  const auto g = uniform(0, 100);
  const double t = g.quantile(0.99);
  EXPECT_DOUBLE_EQ(naive_detection_probability(g, t, 0.0), g.exceedance(t));
}

TEST(NaiveAttacker, CurveIsMonotoneInAttackSize) {
  std::vector<EmpiricalDistribution> users{uniform(0, 50, 2000, 1),
                                           uniform(0, 500, 2000, 2),
                                           uniform(0, 5000, 2000, 3)};
  std::vector<double> thresholds;
  for (const auto& u : users) thresholds.push_back(u.quantile(0.99));
  const std::vector<double> sizes{1, 10, 100, 1000, 10000};
  const auto curve = naive_detection_curve(users, thresholds, sizes);
  ASSERT_EQ(curve.size(), sizes.size());
  for (std::size_t i = 1; i < curve.size(); ++i) EXPECT_GE(curve[i], curve[i - 1]);
  EXPECT_NEAR(curve.back(), 1.0, 1e-9);
}

TEST(NaiveAttacker, LightUsersCatchStealthyAttacks) {
  // The paper's point: a small attack stands out on a light user's HIDS but
  // hides under a heavy/pooled threshold.
  const auto light = uniform(0, 10);
  const auto heavy = uniform(0, 10000);
  const double t_light = light.quantile(0.99);
  const double t_heavy = heavy.quantile(0.99);
  const double stealthy = 50.0;
  EXPECT_GT(naive_detection_probability(light, t_light, stealthy), 0.99);
  EXPECT_LT(naive_detection_probability(heavy, t_heavy, stealthy), 0.05);
}

TEST(NaiveAttacker, MismatchedInputsAreErrors) {
  std::vector<EmpiricalDistribution> users{uniform(0, 10)};
  std::vector<double> thresholds{1.0, 2.0};
  const std::vector<double> sizes{1.0};
  EXPECT_THROW((void)naive_detection_curve(users, thresholds, sizes), PreconditionError);
}

TEST(ResourcefulAttacker, HiddenVolumeRespectsEvasionTarget) {
  const auto g = uniform(0, 100);
  const double t = g.quantile(0.99);
  const ResourcefulAttacker attacker{0.9};
  const double b = attacker.hidden_volume(g, t);
  EXPECT_GT(b, 0.0);
  EXPECT_GE(ResourcefulAttacker::realized_evasion(g, t, b), 0.9);
}

TEST(ResourcefulAttacker, MoreCautiousAttackerHidesLess) {
  const auto g = uniform(0, 100);
  const double t = g.quantile(0.99);
  const double bold = ResourcefulAttacker{0.5}.hidden_volume(g, t);
  const double cautious = ResourcefulAttacker{0.99}.hidden_volume(g, t);
  EXPECT_GT(bold, cautious);
}

TEST(ResourcefulAttacker, InflatedThresholdGivesMoreRoom) {
  // The monoculture's gift to the attacker: a pooled threshold far above
  // the user's own traffic leaves a large hidable volume.
  const auto g = uniform(0, 100);
  const double personal = g.quantile(0.99);
  const double pooled = 5000.0;
  const ResourcefulAttacker attacker{0.9};
  EXPECT_GT(attacker.hidden_volume(g, pooled),
            10.0 * attacker.hidden_volume(g, personal));
}

TEST(ResourcefulAttacker, BatchMatchesIndividual) {
  std::vector<EmpiricalDistribution> users{uniform(0, 10, 1000, 5),
                                           uniform(0, 1000, 1000, 6)};
  std::vector<double> thresholds{users[0].quantile(0.99), users[1].quantile(0.99)};
  const ResourcefulAttacker attacker{0.9};
  const auto volumes = attacker.hidden_volumes(users, thresholds);
  ASSERT_EQ(volumes.size(), 2u);
  EXPECT_DOUBLE_EQ(volumes[0], attacker.hidden_volume(users[0], thresholds[0]));
  EXPECT_DOUBLE_EQ(volumes[1], attacker.hidden_volume(users[1], thresholds[1]));
}

TEST(ResourcefulAttacker, StaleProfileRisksDetection) {
  // Attacker profiles week 1; the user's behavior shifts down in week 2 so
  // the same hidden volume now pokes above typical traffic more often.
  const auto profile_week = uniform(50, 150, 5000, 7);
  const auto test_week = uniform(0, 100, 5000, 8);
  const double t = profile_week.quantile(0.99);
  const ResourcefulAttacker attacker{0.9};
  const double b = attacker.hidden_volume(profile_week, t);
  const double planned = ResourcefulAttacker::realized_evasion(profile_week, t, b);
  const double realized = ResourcefulAttacker::realized_evasion(test_week, t, b);
  EXPECT_GE(planned, 0.9);
  EXPECT_GT(realized, planned);  // lighter week: even safer for the attacker
}

TEST(ResourcefulAttacker, InvalidEvasionTargetIsAnError) {
  const auto g = uniform(0, 10);
  EXPECT_THROW((void)ResourcefulAttacker{0.0}.hidden_volume(g, 5.0), PreconditionError);
  EXPECT_THROW((void)ResourcefulAttacker{1.5}.hidden_volume(g, 5.0), PreconditionError);
}

}  // namespace
}  // namespace monohids::hids
