#include "hids/summary_shipping.hpp"

#include <gtest/gtest.h>

#include "stats/sampling.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace monohids::hids {
namespace {

std::vector<double> lognormal_samples(int n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  const stats::LogNormalSampler sampler(2.0, 1.2);
  std::vector<double> v;
  v.reserve(n);
  for (int i = 0; i < n; ++i) v.push_back(sampler.sample(rng));
  return v;
}

TEST(QuantileSummary, PreservesExtremesAndCount) {
  const std::vector<double> samples{5, 1, 9, 3, 7};
  const auto summary = QuantileSummary::from_samples(samples, 5);
  EXPECT_EQ(summary.sample_count(), 5u);
  EXPECT_EQ(summary.point_count(), 5u);
  EXPECT_DOUBLE_EQ(summary.values().front(), 1.0);
  EXPECT_DOUBLE_EQ(summary.values().back(), 9.0);
}

TEST(QuantileSummary, GridIsTailDensified) {
  // Half the grid covers [0, 0.9]; the rest resolves the tail.
  EXPECT_DOUBLE_EQ(QuantileSummary::grid_probability(0, 128), 0.0);
  EXPECT_DOUBLE_EQ(QuantileSummary::grid_probability(64, 128), 0.9);
  EXPECT_DOUBLE_EQ(QuantileSummary::grid_probability(127, 128), 1.0);
  // Tail spacing is ~5x finer than a uniform grid's.
  const double tail_step = QuantileSummary::grid_probability(100, 128) -
                           QuantileSummary::grid_probability(99, 128);
  EXPECT_LT(tail_step, 1.0 / 127.0 / 4.0);
  // Monotone over the whole grid.
  for (std::size_t i = 1; i < 128; ++i) {
    EXPECT_GT(QuantileSummary::grid_probability(i, 128),
              QuantileSummary::grid_probability(i - 1, 128));
  }
}

TEST(QuantileSummary, WireBytesMatchGridSize) {
  const auto samples = lognormal_samples(672, 1);
  const auto summary = QuantileSummary::from_samples(samples, 128);
  EXPECT_EQ(summary.wire_bytes(), 128 * sizeof(double) + sizeof(std::uint64_t));
  EXPECT_LT(summary.wire_bytes(), 672 * sizeof(double) / 4);
}

TEST(QuantileSummary, ReconstructionPreservesQuantiles) {
  const auto samples = lognormal_samples(672, 2);
  const auto summary = QuantileSummary::from_samples(samples, 128);
  const auto rebuilt = summary.reconstruct(672);
  const stats::EmpiricalDistribution original(samples);
  const stats::EmpiricalDistribution restored(rebuilt);
  for (double q : {0.5, 0.9, 0.99}) {
    EXPECT_NEAR(restored.quantile(q), original.quantile(q),
                0.05 * original.quantile(q) + 1e-9)
        << "q=" << q;
  }
}

TEST(QuantileSummary, InvalidInputsAreErrors) {
  EXPECT_THROW((void)QuantileSummary::from_samples({}, 8), PreconditionError);
  const std::vector<double> one{1.0};
  EXPECT_THROW((void)QuantileSummary::from_samples(one, 3), PreconditionError);
  const QuantileSummary empty;
  EXPECT_THROW((void)empty.reconstruct(10), PreconditionError);
}

TEST(PooledSummaries, MatchesRawPoolingOnHeterogeneousHosts) {
  // The monoculture's central computation: pooled 99th percentile from
  // compact summaries must track pooling the raw data, including when one
  // heavy host dominates the tail.
  std::vector<std::vector<double>> raw;
  raw.push_back(lognormal_samples(672, 3));                 // light
  raw.push_back(lognormal_samples(672, 4));                 // light
  auto heavy = lognormal_samples(672, 5);
  for (double& v : heavy) v *= 40.0;                        // heavy host
  raw.push_back(heavy);

  std::vector<stats::EmpiricalDistribution> dists;
  std::vector<QuantileSummary> summaries;
  for (const auto& samples : raw) {
    dists.emplace_back(samples);
    summaries.push_back(QuantileSummary::from_samples(samples, 128));
  }
  const auto exact = stats::EmpiricalDistribution::merge(dists);
  const auto approx = pooled_from_summaries(summaries);
  for (double q : {0.5, 0.9}) {
    EXPECT_NEAR(approx.quantile(q), exact.quantile(q), 0.06 * exact.quantile(q))
        << "q=" << q;
  }
  // The extreme tail of a sigma=1.2 lognormal x40 moves fast between grid
  // points; 128 points bound the q99 error to ~10%.
  EXPECT_NEAR(approx.quantile(0.99), exact.quantile(0.99),
              0.10 * exact.quantile(0.99));
}

TEST(PooledSummaries, SampleCountsCarryWeight) {
  // A host with 10x the evidence must pull the pooled median toward itself.
  std::vector<QuantileSummary> summaries;
  summaries.push_back(
      QuantileSummary::from_samples(std::vector<double>(1000, 100.0), 8));
  summaries.push_back(QuantileSummary::from_samples(std::vector<double>(100, 1.0), 8));
  // (constant-valued hosts: reconstruction is exact regardless of grid)
  const auto pooled = pooled_from_summaries(summaries);
  EXPECT_DOUBLE_EQ(pooled.quantile(0.5), 100.0);
}

TEST(PooledSummaries, EmptyInputIsAnError) {
  EXPECT_THROW((void)pooled_from_summaries({}), PreconditionError);
}

}  // namespace
}  // namespace monohids::hids
