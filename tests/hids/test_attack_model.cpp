#include "hids/attack_model.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/error.hpp"

namespace monohids::hids {
namespace {

using stats::EmpiricalDistribution;

TEST(AttackModel, LinearSweepCoversRange) {
  const auto model = linear_attack_sweep(100.0, 10);
  ASSERT_EQ(model.sizes.size(), 10u);
  EXPECT_DOUBLE_EQ(model.sizes.front(), 10.0);
  EXPECT_DOUBLE_EQ(model.sizes.back(), 100.0);
  EXPECT_TRUE(std::is_sorted(model.sizes.begin(), model.sizes.end()));
}

TEST(AttackModel, LogSweepEmphasizesStealthySizes) {
  const auto model = log_attack_sweep(1.0, 1000.0, 30);
  ASSERT_EQ(model.sizes.size(), 30u);
  EXPECT_DOUBLE_EQ(model.sizes.front(), 1.0);
  EXPECT_NEAR(model.sizes.back(), 1000.0, 1e-9);
  // At least half the grid points lie below sqrt(min*max).
  const auto below = std::count_if(model.sizes.begin(), model.sizes.end(),
                                   [](double s) { return s < 31.7; });
  EXPECT_GE(below, 14);
}

TEST(AttackModel, InvalidSweepsAreErrors) {
  EXPECT_THROW((void)linear_attack_sweep(0.0, 10), PreconditionError);
  EXPECT_THROW((void)linear_attack_sweep(10.0, 1), PreconditionError);
  EXPECT_THROW((void)log_attack_sweep(0.0, 10.0, 5), PreconditionError);
  EXPECT_THROW((void)log_attack_sweep(10.0, 5.0, 5), PreconditionError);
}

TEST(AttackModel, MeanFnAveragesMissProbabilities) {
  const EmpiricalDistribution g({0.0, 0.0, 0.0, 0.0});  // silent host
  AttackModel model;
  model.sizes = {5.0, 15.0};
  // threshold 10: size-5 attack always missed (0+5 <= 10), size-15 always
  // detected -> mean FN = 0.5
  EXPECT_DOUBLE_EQ(model.mean_fn(g, 10.0), 0.5);
}

TEST(AttackModel, MeanFnZeroWhenEverythingDetected) {
  const EmpiricalDistribution g({100.0});
  AttackModel model;
  model.sizes = {1.0};
  EXPECT_DOUBLE_EQ(model.mean_fn(g, 50.0), 0.0);  // 100+1 > 50 always
}

TEST(AttackModel, MeanFnOneWhenThresholdUnreachable) {
  const EmpiricalDistribution g({1.0, 2.0});
  AttackModel model;
  model.sizes = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(model.mean_fn(g, 1000.0), 1.0);
}

TEST(AttackModel, MeanFnMonotoneInThreshold) {
  const EmpiricalDistribution g({1, 5, 10, 20, 50});
  const auto model = linear_attack_sweep(60.0, 20);
  double prev = -1.0;
  for (double t : {0.0, 10.0, 30.0, 80.0, 200.0}) {
    const double fn = model.mean_fn(g, t);
    EXPECT_GE(fn, prev);
    prev = fn;
  }
}

TEST(AttackModel, EmptyModelIsAnError) {
  const EmpiricalDistribution g({1.0});
  const AttackModel empty;
  EXPECT_THROW((void)empty.mean_fn(g, 1.0), PreconditionError);
}

TEST(AttackModel, MaxObservedValueScansAllUsers) {
  std::vector<EmpiricalDistribution> users;
  users.emplace_back(std::vector<double>{1.0, 2.0});
  users.emplace_back(std::vector<double>{500.0});
  users.emplace_back(std::vector<double>{3.0});
  EXPECT_DOUBLE_EQ(max_observed_value(users), 500.0);
}

TEST(AttackModel, AllSilentUsersAreAnError) {
  std::vector<EmpiricalDistribution> users;
  users.emplace_back(std::vector<double>{0.0, 0.0});
  EXPECT_THROW((void)max_observed_value(users), PreconditionError);
}

}  // namespace
}  // namespace monohids::hids
