#include "hids/campaign.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace monohids::hids {
namespace {

TEST(Campaign, VolumeRampsAndCaps) {
  const Campaign c{0, 10.0, 5.0, 22.0};
  EXPECT_DOUBLE_EQ(c.volume_at(0), 10.0);
  EXPECT_DOUBLE_EQ(c.volume_at(1), 15.0);
  EXPECT_DOUBLE_EQ(c.volume_at(2), 20.0);
  EXPECT_DOUBLE_EQ(c.volume_at(3), 22.0);  // capped
  EXPECT_DOUBLE_EQ(c.volume_at(100), 22.0);
}

TEST(Campaign, DetectionWhenRampCrossesThreshold) {
  // silent host, threshold 10, ramp 2 + 3k: bins carry 2, 5, 8, 11 -> the
  // fourth bin (k=3) alarms; volume before = 2+5+8.
  const std::vector<double> benign(100, 0.0);
  const Campaign c{0, 2.0, 3.0, 1e18};
  const auto outcome = time_to_detection(benign, 10.0, c);
  ASSERT_TRUE(outcome.detected());
  EXPECT_EQ(*outcome.bins_to_detection, 3u);
  EXPECT_DOUBLE_EQ(outcome.volume_before_detection, 15.0);
}

TEST(Campaign, UserTrafficAcceleratesDetection) {
  // The same ramp is caught earlier on a busier host: g + b crosses sooner.
  std::vector<double> busy(100, 6.0);
  const Campaign c{0, 2.0, 3.0, 1e18};
  const auto outcome = time_to_detection(busy, 10.0, c);
  ASSERT_TRUE(outcome.detected());
  EXPECT_EQ(*outcome.bins_to_detection, 1u);  // 6+5 > 10
}

TEST(Campaign, CappedRampCanEvadeForever) {
  // Peak below the threshold headroom: never detected.
  const std::vector<double> benign(50, 0.0);
  const Campaign c{0, 1.0, 1.0, 5.0};
  const auto outcome = time_to_detection(benign, 10.0, c);
  EXPECT_FALSE(outcome.detected());
  // 1+2+3+4 + 46*5 = 240
  EXPECT_DOUBLE_EQ(outcome.volume_before_detection, 240.0);
}

TEST(Campaign, StartBinOffsetsTheRamp) {
  std::vector<double> benign(20, 0.0);
  benign[3] = 100.0;  // a benign burst BEFORE the campaign must not count
  const Campaign c{10, 50.0, 0.0, 1e18};
  const auto outcome = time_to_detection(benign, 40.0, c);
  ASSERT_TRUE(outcome.detected());
  EXPECT_EQ(*outcome.bins_to_detection, 0u);
}

TEST(Campaign, InvalidInputsAreErrors) {
  const std::vector<double> benign(10, 0.0);
  EXPECT_THROW((void)time_to_detection(benign, 1.0, Campaign{10, 1.0, 1.0, 1e18}),
               PreconditionError);
  EXPECT_THROW((void)time_to_detection(benign, 1.0, Campaign{0, -1.0, 1.0, 1e18}),
               PreconditionError);
  EXPECT_THROW((void)time_to_detection(benign, 1.0, Campaign{0, 5.0, 1.0, 2.0}),
               PreconditionError);
}

TEST(Campaign, PopulationOutcomes) {
  const std::vector<std::vector<double>> users{std::vector<double>(50, 0.0),
                                               std::vector<double>(50, 90.0)};
  const std::vector<double> thresholds{100.0, 100.0};
  const Campaign c{0, 5.0, 5.0, 1e18};
  const auto outcomes = campaign_outcomes(users, thresholds, c);
  ASSERT_EQ(outcomes.size(), 2u);
  // Light host: volume(k) = 5+5k must strictly exceed 100 -> k = 20.
  // Busy host: 90 + volume(k) > 100 needs volume > 10 -> k = 2.
  EXPECT_EQ(*outcomes[0].bins_to_detection, 20u);
  EXPECT_EQ(*outcomes[1].bins_to_detection, 2u);
  // The light host let far more total volume through first.
  EXPECT_GT(outcomes[0].volume_before_detection, outcomes[1].volume_before_detection);
}

TEST(Campaign, MismatchedPopulationIsAnError) {
  const std::vector<std::vector<double>> users{std::vector<double>(10, 0.0)};
  const std::vector<double> thresholds{1.0, 2.0};
  EXPECT_THROW((void)campaign_outcomes(users, thresholds, Campaign{}), PreconditionError);
}

}  // namespace
}  // namespace monohids::hids
