#include "hids/detector.hpp"

#include <gtest/gtest.h>

namespace monohids::hids {
namespace {

using features::BinnedSeries;
using features::FeatureKind;
using features::FeatureMatrix;
using util::BinGrid;
using util::kMicrosPerWeek;

TEST(ThresholdDetector, AlarmsStrictlyAboveThreshold) {
  const ThresholdDetector d(10.0);
  EXPECT_FALSE(d.alarms(9.9));
  EXPECT_FALSE(d.alarms(10.0));  // g + b > T is strict
  EXPECT_TRUE(d.alarms(10.1));
}

TEST(ThresholdDetector, CountsAlarmsOverSeries) {
  const ThresholdDetector d(5.0);
  const std::vector<double> bins{1, 6, 5, 7, 0, 100};
  EXPECT_EQ(d.count_alarms(bins), 3u);
  EXPECT_DOUBLE_EQ(d.alarm_rate(bins), 0.5);
}

TEST(ThresholdDetector, EmptySliceHasZeroRate) {
  const ThresholdDetector d(5.0);
  EXPECT_DOUBLE_EQ(d.alarm_rate({}), 0.0);
}

TEST(ThresholdDetector, ThresholdIsMutable) {
  ThresholdDetector d(5.0);
  d.set_threshold(50.0);
  EXPECT_DOUBLE_EQ(d.threshold(), 50.0);
  EXPECT_FALSE(d.alarms(10.0));
}

FeatureMatrix one_week_matrix() {
  FeatureMatrix m;
  for (auto& s : m.series) s = BinnedSeries(BinGrid::minutes(15), kMicrosPerWeek);
  return m;
}

TEST(HostHids, ScanEmitsAlertsForAlarmingBins) {
  HostHids hids(7);
  hids.configure(FeatureKind::TcpConnections, 10.0);
  hids.configure(FeatureKind::UdpConnections, 1e18);  // never alarms

  FeatureMatrix observed = one_week_matrix();
  observed.of(FeatureKind::TcpConnections).set(3, 50.0);
  observed.of(FeatureKind::TcpConnections).set(5, 11.0);
  observed.of(FeatureKind::UdpConnections).set(3, 1000.0);

  std::vector<Alert> alerts;
  const auto emitted = hids.scan(observed, [&](const Alert& a) { alerts.push_back(a); });
  EXPECT_EQ(emitted, 2u);
  ASSERT_EQ(alerts.size(), 2u);
  EXPECT_EQ(alerts[0].user_id, 7u);
  EXPECT_EQ(alerts[0].feature, FeatureKind::TcpConnections);
  EXPECT_EQ(alerts[0].bin, 3u);
  EXPECT_DOUBLE_EQ(alerts[0].observed, 50.0);
  EXPECT_DOUBLE_EQ(alerts[0].threshold, 10.0);
  EXPECT_EQ(alerts[1].bin, 5u);
}

TEST(HostHids, AlertsLeaveInTimeOrder) {
  HostHids hids(1);
  hids.configure(FeatureKind::TcpConnections, 0.5);
  hids.configure(FeatureKind::UdpConnections, 0.5);
  FeatureMatrix observed = one_week_matrix();
  observed.of(FeatureKind::UdpConnections).set(2, 1.0);
  observed.of(FeatureKind::TcpConnections).set(1, 1.0);
  observed.of(FeatureKind::TcpConnections).set(4, 1.0);

  std::vector<util::Timestamp> times;
  hids.scan(observed, [&](const Alert& a) { times.push_back(a.bin_start); });
  ASSERT_EQ(times.size(), 3u);
  EXPECT_TRUE(std::is_sorted(times.begin(), times.end()));
}

TEST(HostHids, DefaultThresholdZeroAlarmsOnAnyTraffic) {
  HostHids hids(0);
  FeatureMatrix observed = one_week_matrix();
  observed.of(FeatureKind::DnsConnections).set(0, 0.5);
  std::size_t count = 0;
  hids.scan(observed, [&](const Alert&) { ++count; });
  EXPECT_EQ(count, 1u);
}

TEST(HostHids, DetectorAccessor) {
  HostHids hids(0);
  hids.configure(FeatureKind::TcpSyn, 123.0);
  EXPECT_DOUBLE_EQ(hids.detector(FeatureKind::TcpSyn).threshold(), 123.0);
}

}  // namespace
}  // namespace monohids::hids
