#include "hids/console.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace monohids::hids {
namespace {

using features::FeatureKind;
using util::kMicrosPerWeek;

AlertBatch batch_of(std::uint32_t user, std::initializer_list<util::Timestamp> times,
                    FeatureKind feature = FeatureKind::TcpConnections) {
  AlertBatch b;
  b.user_id = user;
  for (util::Timestamp t : times) {
    Alert a;
    a.user_id = user;
    a.bin_start = t;
    a.feature = feature;
    b.alerts.push_back(a);
  }
  return b;
}

TEST(Console, AccountsPerUserWeekAndFeature) {
  CentralConsole console(10, 2);
  console.ingest(batch_of(3, {0, 100, kMicrosPerWeek + 5}));
  console.ingest(batch_of(4, {50}, FeatureKind::UdpConnections));

  EXPECT_EQ(console.total_alerts(), 4u);
  EXPECT_EQ(console.total_batches(), 2u);
  EXPECT_EQ(console.alerts_of_user(3), 3u);
  EXPECT_EQ(console.alerts_of_user(4), 1u);
  EXPECT_EQ(console.alerts_of_user(0), 0u);
  EXPECT_EQ(console.alerts_in_week(0), 3u);
  EXPECT_EQ(console.alerts_in_week(1), 1u);
  EXPECT_EQ(console.alerts_of_feature(FeatureKind::TcpConnections), 3u);
  EXPECT_EQ(console.alerts_of_feature(FeatureKind::UdpConnections), 1u);
}

TEST(Console, MeanAlertsPerWeek) {
  CentralConsole console(5, 4);
  console.ingest(batch_of(0, {0, 1, 2, 3}));
  EXPECT_DOUBLE_EQ(console.mean_alerts_per_week(), 1.0);
}

TEST(Console, NoisiestUsersSortedDescending) {
  CentralConsole console(5, 1);
  console.ingest(batch_of(2, {0}));
  console.ingest(batch_of(1, {0, 1, 2}));
  console.ingest(batch_of(4, {0, 1}));
  const auto noisy = console.noisiest_users(2);
  ASSERT_EQ(noisy.size(), 2u);
  EXPECT_EQ(noisy[0].first, 1u);
  EXPECT_EQ(noisy[0].second, 3u);
  EXPECT_EQ(noisy[1].first, 4u);
}

TEST(Console, RejectsUnknownUsers) {
  CentralConsole console(3, 1);
  EXPECT_THROW(console.ingest(batch_of(3, {0})), PreconditionError);
  EXPECT_THROW((void)console.alerts_of_user(3), PreconditionError);
  EXPECT_THROW((void)console.alerts_in_week(1), PreconditionError);
}

TEST(Console, RejectsMixedUserBatches) {
  CentralConsole console(5, 1);
  AlertBatch mixed = batch_of(1, {0});
  mixed.alerts.push_back(Alert{2, FeatureKind::TcpConnections, 0, 0, 0.0, 0.0});
  EXPECT_THROW(console.ingest(mixed), PreconditionError);
}

TEST(Console, AlertsPastHorizonCountInTotalsOnly) {
  CentralConsole console(2, 1);
  console.ingest(batch_of(0, {3 * kMicrosPerWeek}));
  EXPECT_EQ(console.total_alerts(), 1u);
  EXPECT_EQ(console.alerts_in_week(0), 0u);
}

TEST(Console, InvalidConstructionIsAnError) {
  EXPECT_THROW(CentralConsole(0, 1), PreconditionError);
  EXPECT_THROW(CentralConsole(1, 0), PreconditionError);
}

}  // namespace
}  // namespace monohids::hids
