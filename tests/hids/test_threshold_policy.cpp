#include "hids/threshold_policy.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace monohids::hids {
namespace {

using stats::EmpiricalDistribution;

std::vector<EmpiricalDistribution> population_at(std::vector<double> levels) {
  std::vector<EmpiricalDistribution> users;
  for (double level : levels) users.emplace_back(std::vector<double>(100, level));
  return users;
}

TEST(AssignThresholds, FullDiversityGivesPersonalThresholds) {
  const auto users = population_at({10, 100, 1000});
  const PercentileHeuristic p99(0.99);
  const auto a = assign_thresholds(users, FullDiversityGrouper{}, p99);
  EXPECT_DOUBLE_EQ(a.threshold(0), 10.0);
  EXPECT_DOUBLE_EQ(a.threshold(1), 100.0);
  EXPECT_DOUBLE_EQ(a.threshold(2), 1000.0);
}

TEST(AssignThresholds, HomogeneousGivesOneSharedThreshold) {
  const auto users = population_at({10, 100, 1000});
  const PercentileHeuristic p99(0.99);
  const auto a = assign_thresholds(users, HomogeneousGrouper{}, p99);
  EXPECT_EQ(a.threshold_of_group.size(), 1u);
  for (std::uint32_t u = 0; u < 3; ++u) {
    EXPECT_DOUBLE_EQ(a.threshold(u), a.threshold_of_group[0]);
  }
  // The pooled 99th percentile of {10x100, 100x100, 1000x100} is 1000: the
  // heavy user drags everyone's threshold up — the monoculture effect.
  EXPECT_DOUBLE_EQ(a.threshold_of_group[0], 1000.0);
}

TEST(AssignThresholds, GroupMembersShareTheGroupThreshold) {
  std::vector<double> levels;
  for (int i = 1; i <= 40; ++i) levels.push_back(i * 10.0);
  const auto users = population_at(std::move(levels));
  const PercentileHeuristic p99(0.99);
  const auto a = assign_thresholds(users, KneePartialGrouper{}, p99);
  for (std::size_t u = 0; u < users.size(); ++u) {
    EXPECT_DOUBLE_EQ(a.threshold_of_user[u],
                     a.threshold_of_group[a.groups.group_of_user[u]]);
  }
}

TEST(AssignThresholds, PartialThresholdsLieBetweenExtremePolicies) {
  std::vector<double> levels;
  for (int i = 1; i <= 100; ++i) levels.push_back(static_cast<double>(i * i));
  const auto users = population_at(std::move(levels));
  const PercentileHeuristic p99(0.99);
  const auto full = assign_thresholds(users, FullDiversityGrouper{}, p99);
  const auto homog = assign_thresholds(users, HomogeneousGrouper{}, p99);
  const auto partial = assign_thresholds(users, KneePartialGrouper{}, p99);
  // For the lightest user: personal <= group <= global.
  EXPECT_LE(full.threshold(0), partial.threshold(0));
  EXPECT_LE(partial.threshold(0), homog.threshold(0));
}

TEST(AssignThresholds, ForwardsAttackModelToHeuristic) {
  const auto users = population_at({10, 20});
  const UtilityHeuristic h(0.5);
  AttackModel attack;
  attack.sizes = {5.0, 50.0};
  const auto a = assign_thresholds(users, FullDiversityGrouper{}, h, &attack);
  EXPECT_EQ(a.threshold_of_user.size(), 2u);
  // Without the model the FN-aware heuristic must throw.
  EXPECT_THROW((void)assign_thresholds(users, FullDiversityGrouper{}, h), PreconditionError);
}

TEST(AssignThresholds, EmptyPopulationIsAnError) {
  const std::vector<EmpiricalDistribution> empty;
  const PercentileHeuristic p99(0.99);
  EXPECT_THROW((void)assign_thresholds(empty, HomogeneousGrouper{}, p99),
               PreconditionError);
}

TEST(BestUsers, ReturnsLowestThresholdsFirst) {
  const auto users = population_at({50, 10, 30, 20, 40});
  const PercentileHeuristic p99(0.99);
  const auto a = assign_thresholds(users, FullDiversityGrouper{}, p99);
  const auto best = best_users(a, 3);
  ASSERT_EQ(best.size(), 3u);
  EXPECT_EQ(best[0], 1u);  // level 10
  EXPECT_EQ(best[1], 3u);  // level 20
  EXPECT_EQ(best[2], 2u);  // level 30
}

TEST(BestUsers, CountClampedToPopulation) {
  const auto users = population_at({1, 2});
  const PercentileHeuristic p99(0.99);
  const auto a = assign_thresholds(users, FullDiversityGrouper{}, p99);
  EXPECT_EQ(best_users(a, 10).size(), 2u);
}

TEST(BestUsers, TiesBreakByUserId) {
  const auto users = population_at({5, 5, 5});
  const PercentileHeuristic p99(0.99);
  const auto a = assign_thresholds(users, FullDiversityGrouper{}, p99);
  const auto best = best_users(a, 3);
  EXPECT_EQ(best[0], 0u);
  EXPECT_EQ(best[1], 1u);
  EXPECT_EQ(best[2], 2u);
}

}  // namespace
}  // namespace monohids::hids
