#include <gtest/gtest.h>

#include "hids/evaluator.hpp"
#include "util/error.hpp"

namespace monohids::hids {
namespace {

using features::BinnedSeries;
using features::FeatureKind;
using features::FeatureMatrix;
using util::BinGrid;
using util::kMicrosPerWeek;

FeatureMatrix one_week_matrix() {
  FeatureMatrix m;
  for (auto& s : m.series) s = BinnedSeries(BinGrid::minutes(15), kMicrosPerWeek);
  return m;
}

std::array<double, features::kFeatureCount> uniform_thresholds(double t) {
  std::array<double, features::kFeatureCount> out{};
  out.fill(t);
  return out;
}

TEST(JointAlarms, SingleFeatureFiringMatchesMarginal) {
  FeatureMatrix m = one_week_matrix();
  m.of(FeatureKind::TcpConnections).set(3, 100.0);
  const auto outcome = joint_alarm_rate(m, 0, uniform_thresholds(50.0));
  EXPECT_DOUBLE_EQ(outcome.joint_fp_rate, 1.0 / 672.0);
  EXPECT_DOUBLE_EQ(outcome.per_feature[features::index_of(FeatureKind::TcpConnections)],
                   1.0 / 672.0);
  EXPECT_DOUBLE_EQ(outcome.sum_of_marginals, 1.0 / 672.0);
  EXPECT_DOUBLE_EQ(outcome.coincidence_factor(), 1.0);
}

TEST(JointAlarms, CoFiringFeaturesDeduplicate) {
  // Two features exceed in the SAME bin: joint counts it once.
  FeatureMatrix m = one_week_matrix();
  m.of(FeatureKind::TcpConnections).set(5, 100.0);
  m.of(FeatureKind::TcpSyn).set(5, 100.0);
  const auto outcome = joint_alarm_rate(m, 0, uniform_thresholds(50.0));
  EXPECT_DOUBLE_EQ(outcome.joint_fp_rate, 1.0 / 672.0);
  EXPECT_DOUBLE_EQ(outcome.sum_of_marginals, 2.0 / 672.0);
  EXPECT_DOUBLE_EQ(outcome.coincidence_factor(), 2.0);
}

TEST(JointAlarms, DisjointFeaturesAddUp) {
  FeatureMatrix m = one_week_matrix();
  m.of(FeatureKind::TcpConnections).set(1, 100.0);
  m.of(FeatureKind::UdpConnections).set(2, 100.0);
  const auto outcome = joint_alarm_rate(m, 0, uniform_thresholds(50.0));
  EXPECT_DOUBLE_EQ(outcome.joint_fp_rate, 2.0 / 672.0);
  EXPECT_DOUBLE_EQ(outcome.coincidence_factor(), 1.0);
}

TEST(JointAlarms, JointBoundedByMarginals) {
  // Property: max(marginal) <= joint <= sum(marginals).
  FeatureMatrix m = one_week_matrix();
  // synthetic correlated traffic: bursts raise several features at once
  for (std::size_t b = 0; b < 672; b += 7) {
    m.of(FeatureKind::TcpConnections).set(b, static_cast<double>(b % 90));
    m.of(FeatureKind::TcpSyn).set(b, static_cast<double>(b % 90) * 1.1);
    m.of(FeatureKind::DnsConnections).set(b, static_cast<double>(b % 40));
  }
  const auto outcome = joint_alarm_rate(m, 0, uniform_thresholds(60.0));
  double max_marginal = 0;
  for (double p : outcome.per_feature) max_marginal = std::max(max_marginal, p);
  EXPECT_GE(outcome.joint_fp_rate, max_marginal);
  EXPECT_LE(outcome.joint_fp_rate, outcome.sum_of_marginals + 1e-12);
}

TEST(JointAlarms, WeekSelectionRespected) {
  FeatureMatrix m;
  for (auto& s : m.series) s = BinnedSeries(BinGrid::minutes(15), 2 * kMicrosPerWeek);
  m.of(FeatureKind::TcpConnections).set(672 + 3, 100.0);  // week 1 only
  const auto week0 = joint_alarm_rate(m, 0, uniform_thresholds(50.0));
  const auto week1 = joint_alarm_rate(m, 1, uniform_thresholds(50.0));
  EXPECT_DOUBLE_EQ(week0.joint_fp_rate, 0.0);
  EXPECT_GT(week1.joint_fp_rate, 0.0);
}

TEST(JointAlarms, WeekOutsideHorizonIsAnError) {
  const FeatureMatrix m = one_week_matrix();
  EXPECT_THROW((void)joint_alarm_rate(m, 1, uniform_thresholds(1.0)), PreconditionError);
}

}  // namespace
}  // namespace monohids::hids
