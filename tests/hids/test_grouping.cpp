#include "hids/grouping.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace monohids::hids {
namespace {

using stats::EmpiricalDistribution;

/// Population whose p99 values are exactly `levels` (constant traffic).
std::vector<EmpiricalDistribution> population_at(std::vector<double> levels) {
  std::vector<EmpiricalDistribution> users;
  for (double level : levels) {
    users.emplace_back(std::vector<double>(100, level));
  }
  return users;
}

std::vector<EmpiricalDistribution> spread_population(std::size_t n = 100) {
  std::vector<double> levels;
  for (std::size_t i = 1; i <= n; ++i) levels.push_back(static_cast<double>(i * i));
  return population_at(std::move(levels));
}

void check_partition(const GroupAssignment& a, std::size_t users) {
  ASSERT_EQ(a.group_of_user.size(), users);
  const auto members = a.members();
  ASSERT_EQ(members.size(), a.group_count);
  std::size_t total = 0;
  for (const auto& m : members) {
    EXPECT_FALSE(m.empty());  // no empty groups
    total += m.size();
  }
  EXPECT_EQ(total, users);
}

TEST(Homogeneous, OneGroupForEveryone) {
  const auto users = spread_population(50);
  const auto a = HomogeneousGrouper{}.assign(users);
  EXPECT_EQ(a.group_count, 1u);
  check_partition(a, 50);
}

TEST(FullDiversity, OneGroupPerUser) {
  const auto users = spread_population(50);
  const auto a = FullDiversityGrouper{}.assign(users);
  EXPECT_EQ(a.group_count, 50u);
  check_partition(a, 50);
  std::set<std::uint32_t> groups(a.group_of_user.begin(), a.group_of_user.end());
  EXPECT_EQ(groups.size(), 50u);
}

TEST(KneePartial, DefaultIsEightGroups) {
  const auto users = spread_population(200);
  const KneePartialGrouper grouper;
  EXPECT_EQ(grouper.name(), "8-partial");
  const auto a = grouper.assign(users);
  EXPECT_EQ(a.group_count, 8u);
  check_partition(a, 200);
}

TEST(KneePartial, TopFractionIsolatedFromBottom) {
  const auto users = spread_population(100);
  const auto a = KneePartialGrouper(0.15, 4, 4).assign(users);
  // Users are built in ascending p99 order; the top 15 users must not share
  // a group with any of the bottom 85.
  std::set<std::uint32_t> bottom_groups, top_groups;
  for (std::size_t u = 0; u < 85; ++u) bottom_groups.insert(a.group_of_user[u]);
  for (std::size_t u = 85; u < 100; ++u) top_groups.insert(a.group_of_user[u]);
  for (std::uint32_t g : top_groups) EXPECT_FALSE(bottom_groups.contains(g));
  EXPECT_EQ(bottom_groups.size(), 4u);
  EXPECT_EQ(top_groups.size(), 4u);
}

TEST(KneePartial, GroupsAreContiguousInThresholdOrder) {
  const auto users = spread_population(80);
  const auto a = KneePartialGrouper().assign(users);
  // Ascending users: group ids must be non-decreasing.
  for (std::size_t u = 1; u < 80; ++u) {
    EXPECT_GE(a.group_of_user[u], a.group_of_user[u - 1]);
  }
}

TEST(KneePartial, TinyPopulationStillPartitions) {
  const auto users = spread_population(5);
  const auto a = KneePartialGrouper().assign(users);
  check_partition(a, 5);
  EXPECT_LE(a.group_count, 5u);
}

TEST(KneePartial, InvalidParametersAreErrors) {
  EXPECT_THROW(KneePartialGrouper(0.0, 4, 4), PreconditionError);
  EXPECT_THROW(KneePartialGrouper(1.0, 4, 4), PreconditionError);
  EXPECT_THROW(KneePartialGrouper(0.15, 0, 4), PreconditionError);
  EXPECT_THROW(KneePartialGrouper(0.15, 4, 4, 1.5), PreconditionError);
}

TEST(KMeansGrouper, ProducesKGroups) {
  const auto users = spread_population(60);
  const KMeansGrouper grouper(5);
  EXPECT_EQ(grouper.name(), "kmeans-5");
  const auto a = grouper.assign(users);
  EXPECT_EQ(a.group_count, 5u);
  check_partition(a, 60);
}

TEST(KMeansGrouper, SeparatedLevelsClusterTogether) {
  // Two well-separated bands must map to internally-consistent clusters.
  std::vector<double> levels;
  for (int i = 0; i < 20; ++i) levels.push_back(10.0 + i * 0.01);
  for (int i = 0; i < 20; ++i) levels.push_back(100000.0 + i);
  const auto users = population_at(std::move(levels));
  const auto a = KMeansGrouper(2).assign(users);
  std::set<std::uint32_t> low, high;
  for (int u = 0; u < 20; ++u) low.insert(a.group_of_user[u]);
  for (int u = 20; u < 40; ++u) high.insert(a.group_of_user[u]);
  EXPECT_EQ(low.size(), 1u);
  EXPECT_EQ(high.size(), 1u);
  EXPECT_NE(*low.begin(), *high.begin());
}

TEST(KMeansGrouper, FewerUsersThanClustersIsAnError) {
  const auto users = spread_population(3);
  EXPECT_THROW((void)KMeansGrouper(5).assign(users), PreconditionError);
}

TEST(EqualFrequency, BalancedGroupSizes) {
  const auto users = spread_population(80);
  const auto a = EqualFrequencyGrouper(8).assign(users);
  EXPECT_EQ(a.group_count, 8u);
  for (const auto& m : a.members()) EXPECT_EQ(m.size(), 10u);
}

TEST(EqualFrequency, UnevenPopulationStaysBalancedWithinOne) {
  const auto users = spread_population(83);
  const auto a = EqualFrequencyGrouper(8).assign(users);
  for (const auto& m : a.members()) {
    EXPECT_GE(m.size(), 10u);
    EXPECT_LE(m.size(), 11u);
  }
}

TEST(Groupers, EmptyPopulationIsAnError) {
  const std::vector<EmpiricalDistribution> empty;
  EXPECT_THROW((void)HomogeneousGrouper{}.assign(empty), PreconditionError);
  EXPECT_THROW((void)FullDiversityGrouper{}.assign(empty), PreconditionError);
  EXPECT_THROW((void)KneePartialGrouper{}.assign(empty), PreconditionError);
}

TEST(Groupers, TiedThresholdsStillPartition) {
  const auto users = population_at(std::vector<double>(30, 5.0));
  const KneePartialGrouper knee;
  const EqualFrequencyGrouper equal(4);
  for (const Grouper* g : {static_cast<const Grouper*>(&knee),
                           static_cast<const Grouper*>(&equal)}) {
    check_partition(g->assign(users), 30);
  }
}

}  // namespace
}  // namespace monohids::hids
