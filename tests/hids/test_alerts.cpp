#include "hids/alerts.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace monohids::hids {
namespace {

using util::kMicrosPerHour;

Alert alert_at(std::uint32_t user, util::Timestamp t) {
  Alert a;
  a.user_id = user;
  a.bin_start = t;
  return a;
}

TEST(AlertBatcher, HoldsAlertsUntilIntervalBoundary) {
  std::vector<AlertBatch> batches;
  AlertBatcher batcher(1, kMicrosPerHour, [&](const AlertBatch& b) { batches.push_back(b); });
  batcher.submit(alert_at(1, 0));
  batcher.submit(alert_at(1, kMicrosPerHour / 2));
  EXPECT_TRUE(batches.empty());
  EXPECT_EQ(batcher.pending(), 2u);

  batcher.submit(alert_at(1, kMicrosPerHour + 1));  // crosses the boundary
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].alerts.size(), 2u);
  EXPECT_EQ(batches[0].flushed_at, kMicrosPerHour);
  EXPECT_EQ(batcher.pending(), 1u);
}

TEST(AlertBatcher, QuietPeriodsProduceNoEmptyBatches) {
  std::vector<AlertBatch> batches;
  AlertBatcher batcher(1, kMicrosPerHour, [&](const AlertBatch& b) { batches.push_back(b); });
  batcher.submit(alert_at(1, 10 * kMicrosPerHour));  // long silence first
  EXPECT_TRUE(batches.empty());  // nothing pending during the quiet hours
}

TEST(AlertBatcher, ManualFlushDrainsPending) {
  std::vector<AlertBatch> batches;
  AlertBatcher batcher(1, kMicrosPerHour, [&](const AlertBatch& b) { batches.push_back(b); });
  batcher.submit(alert_at(1, 100));
  batcher.flush(200);
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].flushed_at, 200u);
  EXPECT_EQ(batcher.pending(), 0u);
  EXPECT_EQ(batcher.batches_sent(), 1u);

  batcher.flush(300);  // nothing pending: no batch
  EXPECT_EQ(batches.size(), 1u);
}

TEST(AlertBatcher, RejectsAlertsFromOtherHosts) {
  AlertBatcher batcher(1, kMicrosPerHour, [](const AlertBatch&) {});
  EXPECT_THROW(batcher.submit(alert_at(2, 0)), PreconditionError);
}

TEST(AlertBatcher, InvalidConstructionIsAnError) {
  EXPECT_THROW(AlertBatcher(1, 0, [](const AlertBatch&) {}), PreconditionError);
  EXPECT_THROW(AlertBatcher(1, kMicrosPerHour, nullptr), PreconditionError);
}

TEST(AlertBatcher, BatchCarriesUserId) {
  std::vector<AlertBatch> batches;
  AlertBatcher batcher(42, kMicrosPerHour,
                       [&](const AlertBatch& b) { batches.push_back(b); });
  batcher.submit(alert_at(42, 0));
  batcher.flush(1);
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].user_id, 42u);
}

TEST(AlertBatcher, MultipleBoundariesFlushInOrder) {
  std::vector<AlertBatch> batches;
  AlertBatcher batcher(1, kMicrosPerHour, [&](const AlertBatch& b) { batches.push_back(b); });
  batcher.submit(alert_at(1, 0));
  batcher.submit(alert_at(1, 3 * kMicrosPerHour + 5));
  batcher.submit(alert_at(1, 5 * kMicrosPerHour + 5));
  batcher.flush(6 * kMicrosPerHour);
  ASSERT_EQ(batches.size(), 3u);
  EXPECT_LT(batches[0].flushed_at, batches[1].flushed_at);
  EXPECT_LT(batches[1].flushed_at, batches[2].flushed_at);
}

}  // namespace
}  // namespace monohids::hids
