#include "hids/rolling_learner.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace monohids::hids {
namespace {

RollingLearnerConfig small_config() {
  RollingLearnerConfig config;
  config.window_bins = 100;
  config.warmup_bins = 10;
  config.percentile = 0.9;
  return config;
}

TEST(RollingLearner, NeverAlarmsDuringWarmup) {
  RollingThresholdLearner learner(small_config());
  for (int i = 0; i < 9; ++i) {
    EXPECT_FALSE(learner.observe(1e9));  // even absurd traffic: still learning
  }
  EXPECT_TRUE(std::isinf(learner.threshold()));
}

TEST(RollingLearner, LearnsTheWindowPercentile) {
  RollingLearnerConfig config = small_config();
  config.exclude_alarms = false;  // ascending feed would otherwise self-censor
  RollingThresholdLearner learner(config);
  for (int i = 1; i <= 100; ++i) learner.observe(static_cast<double>(i));
  // 90th percentile of 1..100 = 90.
  EXPECT_DOUBLE_EQ(learner.threshold(), 90.0);
}

TEST(RollingLearner, WindowSlidesAndForgets) {
  RollingLearnerConfig config = small_config();
  config.exclude_alarms = false;
  RollingThresholdLearner learner(config);
  for (int i = 0; i < 100; ++i) learner.observe(10.0);
  EXPECT_DOUBLE_EQ(learner.threshold(), 10.0);
  // A regime change: after 100 more bins at the new level the old data is
  // fully forgotten.
  for (int i = 0; i < 100; ++i) learner.observe(50.0);
  EXPECT_DOUBLE_EQ(learner.threshold(), 50.0);
  EXPECT_EQ(learner.window_size(), 100u);
}

TEST(RollingLearner, AlarmsAgainstThePreUpdateThreshold) {
  RollingLearnerConfig config = small_config();
  config.exclude_alarms = false;
  RollingThresholdLearner learner(config);
  for (int i = 0; i < 50; ++i) learner.observe(10.0);
  EXPECT_TRUE(learner.observe(100.0));
  EXPECT_FALSE(learner.observe(5.0));
  EXPECT_EQ(learner.alarms(), 1u);
  EXPECT_EQ(learner.observed(), 52u);
}

TEST(RollingLearner, PoisoningGuardResistsRampCampaign) {
  // An attacker ramps traffic hoping the detector learns to accept it.
  // With the guard, alarming bins never enter the window, so the threshold
  // stays anchored to genuine behavior and the ramp keeps alarming.
  RollingLearnerConfig guarded = small_config();
  guarded.exclude_alarms = true;
  RollingLearnerConfig naive = small_config();
  naive.exclude_alarms = false;

  RollingThresholdLearner with_guard(guarded);
  RollingThresholdLearner without_guard(naive);
  util::Xoshiro256 rng(3);
  for (int i = 0; i < 100; ++i) {
    const double benign = 8.0 + 4.0 * rng.uniform01();
    with_guard.observe(benign);
    without_guard.observe(benign);
  }
  // Stepped plateaus: raise the level, hold long enough for a naive
  // sliding window to absorb it, raise again. (A continuous ramp would
  // always outrun a lagging quantile; plateaus are how real poisoning
  // works.)
  double attack = 15.0;
  std::uint64_t guard_alarms = 0, naive_alarms = 0;
  for (int step = 0; step < 5; ++step) {
    for (int i = 0; i < 120; ++i) {
      const double benign = 8.0 + 4.0 * rng.uniform01();
      if (with_guard.observe(benign + attack)) ++guard_alarms;
      if (without_guard.observe(benign + attack)) ++naive_alarms;
    }
    attack *= 1.5;
  }
  // The guarded learner keeps firing through every plateau; the naive one
  // absorbs each level within ~a tenth of its window and goes quiet.
  EXPECT_GT(guard_alarms, 550u);
  EXPECT_LT(naive_alarms, guard_alarms / 2);
  // And the naive learner's threshold has been dragged far above benign.
  EXPECT_GT(without_guard.threshold(), 3.0 * with_guard.threshold());
}

TEST(RollingLearner, InvalidConfigsAreErrors) {
  RollingLearnerConfig config;
  config.window_bins = 0;
  EXPECT_THROW(RollingThresholdLearner{config}, PreconditionError);
  config = RollingLearnerConfig{};
  config.percentile = 1.0;
  EXPECT_THROW(RollingThresholdLearner{config}, PreconditionError);
  config = RollingLearnerConfig{};
  config.warmup_bins = 0;
  EXPECT_THROW(RollingThresholdLearner{config}, PreconditionError);
}

TEST(RollingLearner, StationaryTrafficYieldsTargetAlarmRate) {
  RollingLearnerConfig config;
  config.window_bins = 672;
  config.warmup_bins = 96;
  config.percentile = 0.99;
  config.exclude_alarms = false;
  RollingThresholdLearner learner(config);
  util::Xoshiro256 rng(9);
  std::uint64_t alarms = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (learner.observe(rng.uniform01() * 100.0)) ++alarms;
  }
  const double rate = static_cast<double>(alarms) / n;
  EXPECT_GT(rate, 0.004);
  EXPECT_LT(rate, 0.02);
}

}  // namespace
}  // namespace monohids::hids
