// Concurrency stress for the live daemon, run under ThreadSanitizer in CI
// (gtest filter 'DaemonStress*'). Exercises the shared surfaces while the
// worker updates learners and crosses week rollovers: stats()/threshold()/
// current_week() scrapes, global metrics-registry snapshots and Prometheus
// rendering, offer() from competing producers. The assertions are
// conservation laws (every offered packet is ingested, skipped, or dropped)
// — the point of the test is the interleaving TSan observes.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>
#include <vector>

#include "hids/daemon.hpp"
#include "obs/export.hpp"
#include "trace/generator.hpp"
#include "trace/population.hpp"

namespace monohids::hids {
namespace {

constexpr std::uint32_t kWeeks = 2;

const trace::UserProfile& fixture_user() {
  static const auto users = [] {
    trace::PopulationConfig pop;
    pop.user_count = 6;
    pop.seed = 31337;
    return trace::generate_population(pop);
  }();
  return users[2];
}

const std::vector<net::PacketRecord>& fixture_packets() {
  static const auto packets = [] {
    const trace::TraceGenerator generator{trace::GeneratorConfig{}};
    return generator.generate_packets(fixture_user(), 0,
                                      kWeeks * util::kMicrosPerWeek);
  }();
  return packets;
}

DaemonConfig fixture_config() {
  DaemonConfig config;
  config.monitored = fixture_user().address;
  config.user_id = fixture_user().user_id;
  config.pipeline.horizon = kWeeks * util::kMicrosPerWeek;
  return config;
}

TEST(DaemonStress, ScrapersRaceTheWorkerAcrossAWeekRollover) {
  DaemonConfig config = fixture_config();
  config.queue_capacity = 4;  // small queue: the producer blocks and retries
  Daemon daemon(config);

  std::atomic<bool> done{false};
  std::vector<std::thread> scrapers;
  // Scraper 1: daemon state surfaces (stats snapshot, live thresholds,
  // current week) while the worker mutates them under its own lock.
  scrapers.emplace_back([&] {
    std::uint64_t sink = 0;
    while (!done.load(std::memory_order_acquire)) {
      const DaemonStats stats = daemon.stats();
      sink += stats.bins_completed + stats.alerts_emitted;
      for (features::FeatureKind f : features::kAllFeatures) {
        sink += daemon.threshold(f) > 0.0 ? 1 : 0;
      }
      sink += daemon.current_week();
    }
    EXPECT_GE(sink, 0u);
  });
  // Scraper 2: the ops surface — global registry snapshot + Prometheus
  // rendering racing the worker's counter/gauge/histogram writes.
  scrapers.emplace_back([&] {
    std::size_t rendered = 0;
    while (!done.load(std::memory_order_acquire)) {
      std::ostringstream out;
      obs::write_global_prometheus(out);
      rendered += out.str().size();
    }
    EXPECT_GT(rendered, 0u);
  });

  // Producer: blocking lossless feed in small batches so the stream crosses
  // the week-0 -> week-1 rollover many scrapes in.
  const auto& packets = fixture_packets();
  constexpr std::size_t kBatch = 2048;
  for (std::size_t off = 0; off < packets.size(); off += kBatch) {
    daemon.on_batch(std::span<const net::PacketRecord>(
        packets.data() + off, std::min(kBatch, packets.size() - off)));
  }
  const DaemonResult result = daemon.finish();
  done.store(true, std::memory_order_release);
  for (std::thread& t : scrapers) t.join();

  EXPECT_EQ(result.stats.packets_ingested, packets.size());
  EXPECT_GE(result.stats.rollovers, 1u) << "stream must cross a week rollover";
  EXPECT_EQ(result.stats.batches_dropped, 0u);
}

TEST(DaemonStress, CompetingProducersObeyPacketConservation) {
  DaemonConfig config = fixture_config();
  config.queue_capacity = 2;  // force drops under contention
  Daemon daemon(config);

  const auto& packets = fixture_packets();
  const std::size_t half = packets.size() / 2;
  std::atomic<std::uint64_t> offered{0};

  // Two producers offer()ing interleaved slices: cross-thread interleaving
  // produces timestamp regressions (skipped, counted) and queue-full drops
  // (counted). Nothing may be lost untracked and nothing may crash.
  auto produce = [&](std::size_t begin, std::size_t end) {
    constexpr std::size_t kBatch = 1024;
    for (std::size_t off = begin; off < end; off += kBatch) {
      const std::size_t n = std::min(kBatch, end - off);
      if (daemon.offer(std::span<const net::PacketRecord>(packets.data() + off, n))) {
        offered.fetch_add(n, std::memory_order_relaxed);
      }
    }
  };
  std::thread a(produce, std::size_t{0}, half);
  std::thread b(produce, half, packets.size());
  a.join();
  b.join();

  const DaemonResult result = daemon.finish();
  EXPECT_EQ(result.stats.packets_ingested + result.stats.packets_out_of_order,
            offered.load());
  EXPECT_EQ(result.stats.packets_ingested + result.stats.packets_out_of_order +
                result.stats.packets_dropped,
            packets.size());
}

}  // namespace
}  // namespace monohids::hids
