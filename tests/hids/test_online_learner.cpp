#include "hids/online_learner.hpp"

#include <gtest/gtest.h>

#include "stats/empirical.hpp"
#include "stats/sampling.hpp"
#include "util/error.hpp"

namespace monohids::hids {
namespace {

using features::FeatureKind;

TEST(OnlineLearner, NamesAndAccessors) {
  const OnlineThresholdLearner learner(0.99, EstimatorKind::P2);
  EXPECT_EQ(name_of(EstimatorKind::Exact), "exact");
  EXPECT_EQ(name_of(EstimatorKind::P2), "p2");
  EXPECT_EQ(name_of(EstimatorKind::Gk), "gk");
  EXPECT_EQ(learner.kind(), EstimatorKind::P2);
  EXPECT_DOUBLE_EQ(learner.percentile(), 0.99);
}

TEST(OnlineLearner, InvalidPercentileIsAnError) {
  EXPECT_THROW(OnlineThresholdLearner(0.0, EstimatorKind::Exact), PreconditionError);
  EXPECT_THROW(OnlineThresholdLearner(1.0, EstimatorKind::Exact), PreconditionError);
}

TEST(OnlineLearner, ThresholdBeforeObservationIsAnError) {
  const OnlineThresholdLearner learner(0.99, EstimatorKind::Exact);
  EXPECT_THROW((void)learner.threshold(FeatureKind::TcpConnections), PreconditionError);
}

TEST(OnlineLearner, FeaturesAreIndependentStreams) {
  OnlineThresholdLearner learner(0.5, EstimatorKind::Exact);
  for (int i = 1; i <= 100; ++i) {
    learner.observe(FeatureKind::TcpConnections, i);
  }
  learner.observe(FeatureKind::UdpConnections, 7.0);
  EXPECT_EQ(learner.observations(FeatureKind::TcpConnections), 100u);
  EXPECT_EQ(learner.observations(FeatureKind::UdpConnections), 1u);
  EXPECT_DOUBLE_EQ(learner.threshold(FeatureKind::TcpConnections), 50.0);
  EXPECT_DOUBLE_EQ(learner.threshold(FeatureKind::UdpConnections), 7.0);
  EXPECT_THROW((void)learner.threshold(FeatureKind::DnsConnections), PreconditionError);
}

class OnlineLearnerAccuracy : public ::testing::TestWithParam<EstimatorKind> {};

TEST_P(OnlineLearnerAccuracy, MatchesExactQuantileOnHeavyTailedStream) {
  const EstimatorKind kind = GetParam();
  util::Xoshiro256 rng(77);
  const stats::LogNormalSampler sampler(2.5, 1.0);

  OnlineThresholdLearner streaming(0.99, kind, 0.002);
  OnlineThresholdLearner reference(0.99, EstimatorKind::Exact);
  for (int i = 0; i < 20000; ++i) {
    const double v = sampler.sample(rng);
    streaming.observe(FeatureKind::TcpConnections, v);
    reference.observe(FeatureKind::TcpConnections, v);
  }
  const double exact = reference.threshold(FeatureKind::TcpConnections);
  const double estimate = streaming.threshold(FeatureKind::TcpConnections);
  EXPECT_NEAR(estimate, exact, 0.12 * exact) << name_of(kind);
}

INSTANTIATE_TEST_SUITE_P(Estimators, OnlineLearnerAccuracy,
                         ::testing::Values(EstimatorKind::Exact, EstimatorKind::P2,
                                           EstimatorKind::Gk),
                         [](const ::testing::TestParamInfo<EstimatorKind>& info) {
                           return std::string(name_of(info.param));
                         });

TEST(OnlineLearner, StreamingMemoryStaysBounded) {
  OnlineThresholdLearner exact(0.99, EstimatorKind::Exact);
  OnlineThresholdLearner p2(0.99, EstimatorKind::P2);
  OnlineThresholdLearner gk(0.99, EstimatorKind::Gk, 0.01);
  util::Xoshiro256 rng(78);
  for (int i = 0; i < 50000; ++i) {
    const double v = rng.uniform01() * 1000;
    for (features::FeatureKind f : features::kAllFeatures) {
      exact.observe(f, v);
      p2.observe(f, v);
      gk.observe(f, v);
    }
  }
  // Exact buffers everything; the streaming estimators stay tiny.
  EXPECT_GT(exact.memory_footprint_bytes(), 6u * 50000u * sizeof(double) / 2);
  EXPECT_LT(p2.memory_footprint_bytes(), 4096u);
  EXPECT_LT(gk.memory_footprint_bytes(), 200u * 1024u);
  EXPECT_LT(gk.memory_footprint_bytes(), exact.memory_footprint_bytes() / 10);
}

TEST(OnlineLearner, ObserveSeriesMatchesLoop) {
  const std::vector<double> bins{1, 5, 2, 9, 4, 7};
  OnlineThresholdLearner a(0.5, EstimatorKind::Exact);
  OnlineThresholdLearner b(0.5, EstimatorKind::Exact);
  a.observe_series(FeatureKind::TcpSyn, bins);
  for (double v : bins) b.observe(FeatureKind::TcpSyn, v);
  EXPECT_DOUBLE_EQ(a.threshold(FeatureKind::TcpSyn), b.threshold(FeatureKind::TcpSyn));
}

TEST(OnlineLearner, ExactMatchesOfflinePercentileHeuristic) {
  // The streaming learner with the exact estimator must agree with the
  // batch path used by assign_thresholds.
  util::Xoshiro256 rng(79);
  std::vector<double> bins;
  for (int i = 0; i < 672; ++i) bins.push_back(rng.uniform01() * 500);
  OnlineThresholdLearner learner(0.99, EstimatorKind::Exact);
  learner.observe_series(FeatureKind::HttpConnections, bins);
  const stats::EmpiricalDistribution d(bins);
  EXPECT_DOUBLE_EQ(learner.threshold(FeatureKind::HttpConnections), d.quantile(0.99));
}

}  // namespace
}  // namespace monohids::hids
