#include "hids/collaborative.hpp"

#include "hids/attacker.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace monohids::hids {
namespace {

using stats::EmpiricalDistribution;

TEST(Overlap, CountsIntersection) {
  const std::vector<std::uint32_t> a{1, 2, 3, 4};
  const std::vector<std::uint32_t> b{3, 4, 5, 6};
  EXPECT_EQ(overlap_count(a, b), 2u);
  EXPECT_EQ(overlap_count(a, a), 4u);
  EXPECT_EQ(overlap_count(a, {}), 0u);
}

std::vector<EmpiricalDistribution> uniform_users(std::vector<double> maxima) {
  util::Xoshiro256 rng(91);
  std::vector<EmpiricalDistribution> users;
  for (double hi : maxima) {
    std::vector<double> v;
    for (int i = 0; i < 2000; ++i) v.push_back(rng.uniform01() * hi);
    users.emplace_back(std::move(v));
  }
  return users;
}

TEST(Collaborative, QuorumOfOneMatchesBestSentinel) {
  auto users = uniform_users({10, 100, 1000, 10000});
  std::vector<double> thresholds;
  for (const auto& u : users) thresholds.push_back(u.quantile(0.99));
  CollaborativeConfig config;
  config.sentinel_count = 1;
  config.quorum = 1;
  const double size = 50.0;
  // The single sentinel is the lowest-threshold user (index 0).
  const double expected = naive_detection_probability(users[0], thresholds[0], size);
  EXPECT_NEAR(collaborative_detection_probability(users, thresholds, config, size),
              expected, 1e-12);
}

TEST(Collaborative, MatchesBruteForcePoissonBinomial) {
  // 3 sentinels with known per-sentinel probabilities; quorum 2.
  auto users = uniform_users({10, 20, 40});
  std::vector<double> thresholds;
  std::vector<double> p;
  for (const auto& u : users) {
    thresholds.push_back(u.quantile(0.99));
    p.push_back(naive_detection_probability(u, u.quantile(0.99), 15.0));
  }
  const double brute = p[0] * p[1] * (1 - p[2]) + p[0] * p[2] * (1 - p[1]) +
                       p[1] * p[2] * (1 - p[0]) + p[0] * p[1] * p[2];
  CollaborativeConfig config;
  config.sentinel_count = 3;
  config.quorum = 2;
  EXPECT_NEAR(collaborative_detection_probability(users, thresholds, config, 15.0), brute,
              1e-12);
}

TEST(Collaborative, SentinelsBeatSoloDetectionForStealthyAttacks) {
  // Population dominated by heavy users; sentinels are the light minority.
  std::vector<double> maxima{5, 8, 12};
  for (int i = 0; i < 30; ++i) maxima.push_back(5000.0);
  auto users = uniform_users(std::move(maxima));
  std::vector<double> thresholds;
  for (const auto& u : users) thresholds.push_back(u.quantile(0.99));

  CollaborativeConfig config;
  config.sentinel_count = 3;
  config.quorum = 2;
  const std::vector<double> sizes{30.0, 100.0};
  const auto curve = collaborative_curve(users, thresholds, config, sizes);
  ASSERT_EQ(curve.collaborative.size(), 2u);
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    EXPECT_GT(curve.collaborative[i], curve.solo[i] * 3.0);
    EXPECT_GT(curve.collaborative[i], 0.95);
  }
}

TEST(Collaborative, HigherQuorumIsStricter) {
  auto users = uniform_users({10, 20, 30, 40, 50});
  std::vector<double> thresholds;
  for (const auto& u : users) thresholds.push_back(u.quantile(0.99));
  const double size = 25.0;
  double prev = 1.1;
  for (std::uint32_t quorum : {1u, 2u, 3u, 4u}) {
    CollaborativeConfig config;
    config.sentinel_count = 4;
    config.quorum = quorum;
    const double d = collaborative_detection_probability(users, thresholds, config, size);
    EXPECT_LE(d, prev + 1e-12);
    prev = d;
  }
}

TEST(Collaborative, InvalidConfigsAreErrors) {
  auto users = uniform_users({10, 20});
  std::vector<double> thresholds{1.0, 2.0};
  CollaborativeConfig config;
  config.sentinel_count = 1;
  config.quorum = 2;  // quorum larger than pool
  EXPECT_THROW(
      (void)collaborative_detection_probability(users, thresholds, config, 1.0),
      PreconditionError);
  config.quorum = 0;
  EXPECT_THROW(
      (void)collaborative_detection_probability(users, thresholds, config, 1.0),
      PreconditionError);
}

TEST(Collaborative, CurveEchoesSizes) {
  auto users = uniform_users({10, 100});
  std::vector<double> thresholds;
  for (const auto& u : users) thresholds.push_back(u.quantile(0.99));
  CollaborativeConfig config;
  config.sentinel_count = 2;
  config.quorum = 1;
  const std::vector<double> sizes{1, 5, 25};
  const auto curve = collaborative_curve(users, thresholds, config, sizes);
  EXPECT_EQ(curve.sizes, sizes);
  EXPECT_EQ(curve.solo.size(), 3u);
}

}  // namespace
}  // namespace monohids::hids
