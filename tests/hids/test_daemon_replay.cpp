// Differential replay: the live daemon must be bit-identical to the batch
// pipeline. Same trace through hids::Daemon (any batch partition, inline or
// worker thread, any queue depth) and through extract_features + nearest-rank
// week-k thresholds must yield byte-equal feature matrices, thresholds,
// alarm sets, and flow stats. This is the contract that makes the online
// agent trustworthy: a perf-motivated incremental path that drifts from the
// evaluated batch methodology is a different detector, not a faster one.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "hids/daemon.hpp"
#include "stats/quantile.hpp"
#include "trace/generator.hpp"
#include "trace/population.hpp"
#include "util/error.hpp"

namespace monohids::hids {
namespace {

constexpr std::uint32_t kWeeks = 2;

const trace::UserProfile& fixture_user() {
  static const auto users = [] {
    trace::PopulationConfig pop;
    pop.user_count = 10;
    pop.seed = 4242;
    return trace::generate_population(pop);
  }();
  return users[3];
}

const std::vector<net::PacketRecord>& fixture_packets() {
  static const auto packets = [] {
    const trace::TraceGenerator generator{trace::GeneratorConfig{}};
    return generator.generate_packets(fixture_user(), 0,
                                      kWeeks * util::kMicrosPerWeek);
  }();
  return packets;
}

DaemonConfig fixture_config() {
  DaemonConfig config;
  config.monitored = fixture_user().address;
  config.user_id = fixture_user().user_id;
  config.pipeline.horizon = kWeeks * util::kMicrosPerWeek;
  return config;
}

DaemonResult run_daemon(DaemonConfig config, std::span<const net::PacketRecord> packets,
                        std::size_t batch) {
  Daemon daemon(config);
  for (std::size_t off = 0; off < packets.size(); off += batch) {
    daemon.on_batch(packets.subspan(off, std::min(batch, packets.size() - off)));
  }
  return daemon.finish();
}

void expect_same_matrix(const features::FeatureMatrix& a, const features::FeatureMatrix& b) {
  for (features::FeatureKind f : features::kAllFeatures) {
    const auto va = a.of(f).values();
    const auto vb = b.of(f).values();
    ASSERT_EQ(va.size(), vb.size()) << features::name_of(f);
    for (std::size_t i = 0; i < va.size(); ++i) {
      ASSERT_EQ(va[i], vb[i]) << features::name_of(f) << " bin " << i;
    }
  }
}

void expect_same_alerts(const std::vector<Alert>& a, const std::vector<Alert>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].user_id, b[i].user_id) << "alert " << i;
    EXPECT_EQ(a[i].feature, b[i].feature) << "alert " << i;
    EXPECT_EQ(a[i].bin, b[i].bin) << "alert " << i;
    EXPECT_EQ(a[i].bin_start, b[i].bin_start) << "alert " << i;
    EXPECT_EQ(a[i].observed, b[i].observed) << "alert " << i;
    EXPECT_EQ(a[i].threshold, b[i].threshold) << "alert " << i;
  }
}

TEST(DaemonReplay, InlineDaemonIsBitIdenticalToTheBatchPipeline) {
  DaemonConfig config = fixture_config();
  config.deliver_inline = true;
  const DaemonResult live = run_daemon(config, fixture_packets(), 4096);

  const auto batch =
      features::extract_features(config.monitored, fixture_packets(), config.pipeline);
  expect_same_matrix(live.pipeline.matrix, batch.matrix);
  EXPECT_EQ(live.pipeline.flow_stats.flows_created, batch.flow_stats.flows_created);
  EXPECT_EQ(live.pipeline.flow_stats.syn_packets, batch.flow_stats.syn_packets);
  EXPECT_EQ(live.pipeline.flow_stats.flows_ended_flush, batch.flow_stats.flows_ended_flush);

  // Thresholds: rollover w trains on week w-1 exactly like the batch
  // nearest-rank quantile over the same week slice — equal as doubles.
  const std::uint64_t bins_per_week =
      util::kMicrosPerWeek / config.pipeline.grid.width();
  ASSERT_EQ(live.rollovers.size(), kWeeks - 1);
  for (const ThresholdUpdate& update : live.rollovers) {
    ASSERT_GE(update.week, 1u);
    for (std::size_t i = 0; i < features::kFeatureCount; ++i) {
      const auto slice =
          batch.matrix.of(features::kAllFeatures[i]).week_slice(update.week - 1);
      EXPECT_EQ(update.thresholds[i],
                stats::quantile_nearest_rank(slice, config.percentile))
          << "week " << update.week << " " << features::name_of(features::kAllFeatures[i]);
    }
  }

  // Alarm set: recompute from the batch matrix with the batch thresholds.
  std::vector<Alert> expected;
  const std::uint64_t total_bins =
      batch.matrix.of(features::FeatureKind::TcpConnections).values().size();
  for (std::uint64_t bin = bins_per_week; bin < total_bins; ++bin) {
    const auto week = static_cast<std::uint32_t>(bin / bins_per_week);
    for (std::size_t i = 0; i < features::kFeatureCount; ++i) {
      const auto& series = batch.matrix.of(features::kAllFeatures[i]);
      const double threshold =
          stats::quantile_nearest_rank(series.week_slice(week - 1), config.percentile);
      if (series.values()[bin] > threshold) {
        Alert alert;
        alert.user_id = config.user_id;
        alert.feature = features::kAllFeatures[i];
        alert.bin = bin;
        alert.bin_start = config.pipeline.grid.bin_start(bin);
        alert.observed = series.values()[bin];
        alert.threshold = threshold;
        expected.push_back(alert);
      }
    }
  }
  ASSERT_FALSE(expected.empty()) << "fixture produced no alarms; test is vacuous";
  expect_same_alerts(live.alerts, expected);
}

TEST(DaemonReplay, BatchPartitionDoesNotChangeTheResult) {
  DaemonConfig config = fixture_config();
  config.deliver_inline = true;
  const DaemonResult reference = run_daemon(config, fixture_packets(), 4096);

  for (const std::size_t batch : {std::size_t{137}, std::size_t{65536},
                                  fixture_packets().size()}) {
    SCOPED_TRACE("batch=" + std::to_string(batch));
    const DaemonResult other = run_daemon(config, fixture_packets(), batch);
    expect_same_matrix(other.pipeline.matrix, reference.pipeline.matrix);
    expect_same_alerts(other.alerts, reference.alerts);
    EXPECT_EQ(other.stats.packets_ingested, reference.stats.packets_ingested);
    EXPECT_EQ(other.stats.bins_completed, reference.stats.bins_completed);
    EXPECT_EQ(other.stats.rollovers, reference.stats.rollovers);
  }
}

TEST(DaemonReplay, WorkerThreadAndQueueDepthDoNotChangeTheResult) {
  DaemonConfig inline_config = fixture_config();
  inline_config.deliver_inline = true;
  const DaemonResult reference = run_daemon(inline_config, fixture_packets(), 4096);

  for (const std::size_t capacity : {std::size_t{1}, std::size_t{4}, std::size_t{64}}) {
    SCOPED_TRACE("queue=" + std::to_string(capacity));
    DaemonConfig config = fixture_config();
    config.deliver_inline = false;
    config.queue_capacity = capacity;
    const DaemonResult other = run_daemon(config, fixture_packets(), 4096);
    expect_same_matrix(other.pipeline.matrix, reference.pipeline.matrix);
    expect_same_alerts(other.alerts, reference.alerts);
    EXPECT_EQ(other.stats.batches_dropped, 0u) << "on_batch is lossless";
    EXPECT_EQ(other.stats.packets_ingested, reference.stats.packets_ingested);
  }
}

TEST(DaemonReplay, ConsoleAccountingMatchesTheEmittedAlerts) {
  DaemonConfig config = fixture_config();
  config.deliver_inline = true;
  const DaemonResult result = run_daemon(config, fixture_packets(), 4096);
  EXPECT_EQ(result.console.total_alerts(), result.alerts.size());
  EXPECT_EQ(result.console.alerts_of_user(config.user_id), result.alerts.size());
  std::uint64_t by_week = 0;
  for (std::uint32_t w = 0; w <= kWeeks; ++w) by_week += result.console.alerts_in_week(w);
  EXPECT_EQ(by_week, result.alerts.size());
  EXPECT_GT(result.console.total_batches(), 0u);
}

TEST(DaemonReplay, LifecycleMisuseIsRejected) {
  DaemonConfig config = fixture_config();
  config.deliver_inline = true;
  Daemon daemon(config);
  daemon.on_batch(std::span<const net::PacketRecord>(fixture_packets().data(), 1000));
  (void)daemon.finish();
  EXPECT_THROW((void)daemon.finish(), PreconditionError);
  EXPECT_THROW(
      daemon.on_batch(std::span<const net::PacketRecord>(fixture_packets().data(), 10)),
      PreconditionError);
}

TEST(DaemonReplay, PausedDaemonDropsOffersDeterministically) {
  DaemonConfig config = fixture_config();
  config.deliver_inline = false;
  config.start_paused = true;
  config.queue_capacity = 2;
  Daemon daemon(config);

  const auto& packets = fixture_packets();
  const std::span<const net::PacketRecord> batch(packets.data(), 500);
  EXPECT_TRUE(daemon.offer(batch));
  EXPECT_TRUE(daemon.offer(batch.subspan(0, 300)));
  EXPECT_FALSE(daemon.offer(batch)) << "queue full: third offer must drop";

  const DaemonStats mid = daemon.stats();
  EXPECT_EQ(mid.batches_enqueued, 2u);
  EXPECT_EQ(mid.batches_dropped, 1u);
  EXPECT_EQ(mid.packets_dropped, 500u);
  EXPECT_EQ(mid.queue_peak, 2u);

  daemon.resume();
  const DaemonResult result = daemon.finish();
  // The two accepted batches repeat the same 500/300-packet prefix; the
  // repeat rewinds time, so its packets are skipped as out-of-order (all
  // except any sharing the boundary timestamp), never silently ingested.
  EXPECT_EQ(result.stats.packets_ingested + result.stats.packets_out_of_order, 800u);
  EXPECT_GE(result.stats.packets_ingested, 500u);
}

}  // namespace
}  // namespace monohids::hids
