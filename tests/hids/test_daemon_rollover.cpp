// Week-rollover regression: the daemon's incrementally re-derived thresholds
// after N simulated weeks must match the batch-derived thresholds on the
// same training window — nearest-rank quantiles over whole week slices for
// WeeklyRollover, the sliding-window quantile for Rolling mode. Also pins
// the warm-up contract (week 0 never alarms) and the strict value>threshold
// alarm predicate.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <deque>
#include <vector>

#include "hids/daemon.hpp"
#include "stats/quantile.hpp"
#include "trace/generator.hpp"
#include "trace/population.hpp"

namespace monohids::hids {
namespace {

constexpr std::uint32_t kWeeks = 4;

const trace::UserProfile& fixture_user() {
  static const auto users = [] {
    trace::PopulationConfig pop;
    pop.user_count = 10;
    pop.seed = 99;
    return trace::generate_population(pop);
  }();
  return users[5];
}

const std::vector<net::PacketRecord>& fixture_packets() {
  static const auto packets = [] {
    const trace::TraceGenerator generator{trace::GeneratorConfig{}};
    return generator.generate_packets(fixture_user(), 0,
                                      kWeeks * util::kMicrosPerWeek);
  }();
  return packets;
}

DaemonConfig fixture_config() {
  DaemonConfig config;
  config.monitored = fixture_user().address;
  config.user_id = fixture_user().user_id;
  config.pipeline.horizon = kWeeks * util::kMicrosPerWeek;
  config.deliver_inline = true;
  return config;
}

DaemonResult run(const DaemonConfig& config) {
  Daemon daemon(config);
  const auto& packets = fixture_packets();
  constexpr std::size_t kBatch = 8192;
  for (std::size_t off = 0; off < packets.size(); off += kBatch) {
    daemon.on_batch(std::span<const net::PacketRecord>(
        packets.data() + off, std::min(kBatch, packets.size() - off)));
  }
  return daemon.finish();
}

TEST(DaemonRollover, EveryWeeklyThresholdMatchesTheBatchQuantile) {
  const DaemonConfig config = fixture_config();
  const DaemonResult result = run(config);
  const auto batch =
      features::extract_features(config.monitored, fixture_packets(), config.pipeline);

  ASSERT_EQ(result.rollovers.size(), kWeeks - 1);
  for (std::uint32_t w = 1; w < kWeeks; ++w) {
    const ThresholdUpdate& update = result.rollovers[w - 1];
    EXPECT_EQ(update.week, w);
    for (std::size_t i = 0; i < features::kFeatureCount; ++i) {
      const auto slice = batch.matrix.of(features::kAllFeatures[i]).week_slice(w - 1);
      EXPECT_EQ(update.thresholds[i],
                stats::quantile_nearest_rank(slice, config.percentile))
          << "week " << w << " " << features::name_of(features::kAllFeatures[i]);
    }
  }
  EXPECT_EQ(result.stats.rollovers, kWeeks - 1);
}

TEST(DaemonRollover, WarmupWeekNeverAlarms) {
  const DaemonConfig config = fixture_config();
  const DaemonResult result = run(config);
  const std::uint64_t bins_per_week =
      util::kMicrosPerWeek / config.pipeline.grid.width();
  for (const Alert& alert : result.alerts) {
    EXPECT_GE(alert.bin, bins_per_week) << "alarm during the warm-up week";
    EXPECT_GT(alert.observed, alert.threshold) << "alarm predicate must be strict >";
    EXPECT_TRUE(std::isfinite(alert.threshold));
  }
}

TEST(DaemonRollover, LiveThresholdSurfaceTracksTheLatestRollover) {
  const DaemonConfig config = fixture_config();
  Daemon daemon(config);
  // Warm-up: before any rollover the scrape surface reports +infinity.
  for (features::FeatureKind f : features::kAllFeatures) {
    EXPECT_TRUE(std::isinf(daemon.threshold(f)));
  }
  const auto& packets = fixture_packets();
  daemon.on_batch(packets);
  EXPECT_EQ(daemon.current_week(), kWeeks - 1);
  const DaemonResult result = daemon.finish();
  ASSERT_EQ(result.rollovers.size(), kWeeks - 1);
}

TEST(DaemonRollover, RollingThresholdAfterNWeeksMatchesTheBatchWindow) {
  DaemonConfig config = fixture_config();
  config.mode = ThresholdMode::Rolling;
  config.rolling.exclude_alarms = false;  // pure sliding window: independent math
  Daemon daemon(config);
  daemon.on_batch(fixture_packets());
  (void)daemon.finish();  // scans every trailing bin through the learner
  const auto batch =
      features::extract_features(config.monitored, fixture_packets(), config.pipeline);

  // After N weeks the live threshold surface must equal the nearest-rank
  // quantile of the last window_bins bins of the batch series — the
  // batch-derived value on the identical window.
  const auto total_bins =
      batch.matrix.of(features::FeatureKind::TcpConnections).values().size();
  ASSERT_GE(total_bins, config.rolling.window_bins);
  for (std::size_t i = 0; i < features::kFeatureCount; ++i) {
    const auto series = batch.matrix.of(features::kAllFeatures[i]).values();
    const std::vector<double> window(
        series.end() - static_cast<std::ptrdiff_t>(config.rolling.window_bins),
        series.end());
    const double expected =
        stats::quantile_nearest_rank(window, config.rolling.percentile);
    EXPECT_EQ(daemon.threshold(features::kAllFeatures[i]), expected)
        << features::name_of(features::kAllFeatures[i]);
  }
}

TEST(DaemonRollover, StreamingEstimatorsStayCloseToExact) {
  // P2 and GK replace the exact buffer for memory-bounded deployments; they
  // are approximations, so this is a sanity envelope, not bit-identity.
  const DaemonConfig exact = fixture_config();
  const DaemonResult exact_result = run(exact);

  for (const EstimatorKind kind : {EstimatorKind::P2, EstimatorKind::Gk}) {
    SCOPED_TRACE(name_of(kind));
    DaemonConfig config = fixture_config();
    config.estimator = kind;
    const DaemonResult result = run(config);
    ASSERT_EQ(result.rollovers.size(), exact_result.rollovers.size());
    for (std::size_t w = 0; w < result.rollovers.size(); ++w) {
      for (std::size_t i = 0; i < features::kFeatureCount; ++i) {
        const double approx = result.rollovers[w].thresholds[i];
        const double truth = exact_result.rollovers[w].thresholds[i];
        EXPECT_TRUE(std::isfinite(approx));
        EXPECT_NEAR(approx, truth, std::max(5.0, 0.25 * std::abs(truth)))
            << "week " << result.rollovers[w].week;
      }
    }
  }
}

}  // namespace
}  // namespace monohids::hids
