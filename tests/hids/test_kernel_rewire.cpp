// Batch-on vs batch-off identity for every consumer rewired onto the
// stats::kernels layer. The batching toggle swaps whole code paths (merge
// scans, grid passes, counting sorts) for the seed's per-call loops, so
// bitwise-equal results here are the contract that keeps AnalysisCache
// memoization valid: a cached artifact must not depend on which path — or
// which SIMD back-end — produced it. Every check runs once per available
// back-end, forced in-process.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "hids/attack_model.hpp"
#include "hids/attacker.hpp"
#include "hids/detector.hpp"
#include "hids/evaluator.hpp"
#include "hids/heuristics.hpp"
#include "hids/roc.hpp"
#include "stats/empirical.hpp"
#include "stats/kernels.hpp"
#include "util/rng.hpp"

namespace monohids::hids {
namespace {

namespace kernels = stats::kernels;
using kernels::Backend;
using stats::EmpiricalDistribution;

std::vector<Backend> available_backends() {
  std::vector<Backend> out;
  for (Backend b : {Backend::Scalar, Backend::Avx2, Backend::Neon}) {
    if (kernels::backend_available(b)) out.push_back(b);
  }
  return out;
}

class DispatchGuard {
 public:
  DispatchGuard() : batching_(kernels::batching_enabled()) {}
  ~DispatchGuard() {
    kernels::reset_backend();
    kernels::set_batching_enabled(batching_);
  }

 private:
  bool batching_;
};

/// Count-like traffic samples (small integers, heavy ties) — the regime the
/// counting fast paths trigger on, same as real bin counts.
std::vector<double> count_samples(std::uint64_t seed, std::size_t n) {
  util::Xoshiro256 rng(seed);
  std::vector<double> v(n);
  for (double& x : v) x = static_cast<double>(rng() % 60);
  return v;
}

/// Continuous samples — exercises the comparison-sort / heap-merge fallback
/// alongside the batched rank kernels.
std::vector<double> continuous_samples(std::uint64_t seed, std::size_t n) {
  util::Xoshiro256 rng(seed);
  std::vector<double> v(n);
  for (double& x : v) x = rng.uniform01() * 80.0;
  return v;
}

/// Runs `compute` once with batching off (the seed path) and once per
/// available back-end with batching on, asserting bitwise-equal results.
template <typename Fn>
void expect_path_identity(Fn&& compute, const char* what) {
  DispatchGuard guard;
  kernels::set_batching_enabled(false);
  const auto reference = compute();
  kernels::set_batching_enabled(true);
  for (Backend b : available_backends()) {
    ASSERT_TRUE(kernels::force_backend(b));
    const auto batched = compute();
    EXPECT_EQ(batched, reference)
        << what << " diverges on " << kernels::backend_name(b);
  }
}

TEST(KernelRewire, ArenaSortIsBitIdentical) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    expect_path_identity(
        [&] {
          EmpiricalDistribution d(count_samples(seed, 700));
          return std::vector<double>(d.samples().begin(), d.samples().end());
        },
        "EmpiricalDistribution counting sort");
    expect_path_identity(
        [&] {
          EmpiricalDistribution d(continuous_samples(seed, 700));
          return std::vector<double>(d.samples().begin(), d.samples().end());
        },
        "EmpiricalDistribution comparison sort");
  }
}

TEST(KernelRewire, PooledMergeIsBitIdentical) {
  expect_path_identity(
      [] {
        std::vector<EmpiricalDistribution> parts;
        for (std::uint64_t s = 0; s < 6; ++s) {
          parts.emplace_back(count_samples(100 + s, 300));
        }
        const EmpiricalDistribution pooled = EmpiricalDistribution::merge(parts);
        return std::vector<double>(pooled.samples().begin(), pooled.samples().end());
      },
      "pooled counting merge");
}

TEST(KernelRewire, MeanFnIsBitIdentical) {
  const EmpiricalDistribution g(count_samples(7, 2000));
  const AttackModel attack = linear_attack_sweep(60.0, 64);
  expect_path_identity(
      [&] {
        std::vector<double> out;
        for (double t : {0.0, 7.0, 13.5, 40.0, 59.0, 61.0}) {
          out.push_back(attack.mean_fn(g, t));
        }
        return out;
      },
      "AttackModel::mean_fn");
}

TEST(KernelRewire, MeanFnBatchMatchesPerCallSeedPath) {
  DispatchGuard guard;
  const EmpiricalDistribution g(continuous_samples(8, 1500));
  const AttackModel attack = linear_attack_sweep(80.0, 64);
  const auto thresholds = candidate_thresholds(g);

  kernels::set_batching_enabled(false);
  std::vector<double> reference;
  reference.reserve(thresholds.size());
  for (double t : thresholds) reference.push_back(attack.mean_fn(g, t));

  kernels::set_batching_enabled(true);
  for (Backend b : available_backends()) {
    ASSERT_TRUE(kernels::force_backend(b));
    std::vector<double> batched(thresholds.size());
    attack.mean_fn_batch(g, thresholds, batched);
    EXPECT_EQ(batched, reference) << "mean_fn_batch on " << kernels::backend_name(b);
  }
}

TEST(KernelRewire, OptimizingHeuristicsPickTheSameThreshold) {
  const EmpiricalDistribution g(count_samples(11, 3000));
  const AttackModel attack = linear_attack_sweep(60.0, 64);
  const FMeasureHeuristic fmeasure;
  const UtilityHeuristic utility(0.5);
  expect_path_identity([&] { return fmeasure.compute(g, &attack); },
                       "FMeasureHeuristic");
  expect_path_identity([&] { return utility.compute(g, &attack); },
                       "UtilityHeuristic");
}

TEST(KernelRewire, RocCurveIsBitIdentical) {
  const EmpiricalDistribution g(count_samples(13, 2500));
  const AttackModel attack = linear_attack_sweep(60.0, 32);
  expect_path_identity(
      [&] {
        std::vector<double> flat;
        for (const RocPoint& p : roc_curve(g, attack)) {
          flat.push_back(p.threshold);
          flat.push_back(p.fp_rate);
          flat.push_back(p.tp_rate);
        }
        return flat;
      },
      "roc_curve");
}

TEST(KernelRewire, NaiveDetectionCurveIsBitIdentical) {
  std::vector<EmpiricalDistribution> users;
  std::vector<double> thresholds;
  for (std::uint64_t u = 0; u < 12; ++u) {
    users.emplace_back(count_samples(200 + u, 800));
    thresholds.push_back(users.back().quantile(0.95));
  }
  const AttackModel attack = linear_attack_sweep(60.0, 64);
  expect_path_identity(
      [&] { return naive_detection_curve(users, thresholds, attack.sizes, 2); },
      "naive_detection_curve");
}

TEST(KernelRewire, ReplayOutcomeIsBitIdentical) {
  util::Xoshiro256 rng(17);
  std::vector<double> benign(4000), attack(4000);
  for (std::size_t i = 0; i < benign.size(); ++i) {
    benign[i] = static_cast<double>(rng() % 40);
    attack[i] = (rng() % 4 == 0) ? static_cast<double>(1 + rng() % 20) : 0.0;
  }
  expect_path_identity(
      [&] {
        const ReplayOutcome out = evaluate_replay(benign, attack, 30.0);
        return std::vector<double>{out.fp_rate, out.detection_rate};
      },
      "evaluate_replay");
}

TEST(KernelRewire, JointAlarmRateIsBitIdentical) {
  features::FeatureMatrix m;
  util::Xoshiro256 rng(19);
  for (auto& s : m.series) {
    s = features::BinnedSeries(util::BinGrid::minutes(15), util::kMicrosPerWeek);
    for (std::size_t b = 0; b < s.bin_count(); ++b) {
      s.set(b, static_cast<double>(rng() % 25));
    }
  }
  std::array<double, features::kFeatureCount> thresholds{};
  for (auto& t : thresholds) t = static_cast<double>(10 + rng() % 10);
  expect_path_identity(
      [&] {
        const JointAlarmOutcome out = joint_alarm_rate(m, 0, thresholds);
        std::vector<double> flat{out.joint_fp_rate, out.sum_of_marginals};
        flat.insert(flat.end(), out.per_feature.begin(), out.per_feature.end());
        return flat;
      },
      "joint_alarm_rate");
}

TEST(KernelRewire, DetectorAlarmCountIsBitIdentical) {
  util::Xoshiro256 rng(23);
  std::vector<double> bins(5000);
  for (double& v : bins) v = static_cast<double>(rng() % 50);
  const ThresholdDetector det(37.0);
  expect_path_identity([&] { return det.count_alarms(bins); },
                       "ThresholdDetector::count_alarms");
}

}  // namespace
}  // namespace monohids::hids
