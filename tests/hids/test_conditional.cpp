#include "hids/conditional.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace monohids::hids {
namespace {

using features::BinnedSeries;
using util::BinGrid;
using util::kMicrosPerDay;
using util::kMicrosPerHour;
using util::kMicrosPerWeek;

TEST(DaySlot, WorkHoursAreWeekdayDaytime) {
  // Monday 10:00
  EXPECT_EQ(slot_of(10 * kMicrosPerHour), DaySlot::WorkHours);
  // Monday 03:00
  EXPECT_EQ(slot_of(3 * kMicrosPerHour), DaySlot::OffHours);
  // Monday 19:00 (boundary: off)
  EXPECT_EQ(slot_of(19 * kMicrosPerHour), DaySlot::OffHours);
  // Monday 08:00 (boundary: work)
  EXPECT_EQ(slot_of(8 * kMicrosPerHour), DaySlot::WorkHours);
  // Saturday noon
  EXPECT_EQ(slot_of(5 * kMicrosPerDay + 12 * kMicrosPerHour), DaySlot::OffHours);
}

/// A week with 100s during work hours and 2s off-hours.
BinnedSeries day_night_series() {
  BinnedSeries s(BinGrid::minutes(15), kMicrosPerWeek);
  for (std::size_t b = 0; b < s.bin_count(); ++b) {
    const auto t = s.grid().bin_start(b);
    s.set(b, slot_of(t) == DaySlot::WorkHours ? 100.0 : 2.0);
  }
  return s;
}

TEST(ConditionalDetector, LearnsPerSlotThresholds) {
  const auto detector = ConditionalDetector::learn(day_night_series(), 0.99);
  EXPECT_DOUBLE_EQ(detector.threshold(DaySlot::WorkHours), 100.0);
  EXPECT_DOUBLE_EQ(detector.threshold(DaySlot::OffHours), 2.0);
}

TEST(ConditionalDetector, NightAttacksFaceTheNightBar) {
  const auto series = day_night_series();
  const auto detector = ConditionalDetector::learn(series, 0.99);
  // A size-50 attack at night: 2 + 50 > 2 -> always detected conditionally.
  EXPECT_DOUBLE_EQ(
      detector.detection_rate(series, 0, series.bin_count(), DaySlot::OffHours, 50.0),
      1.0);
  // The same attack against a single all-hours 99th-pct threshold (=100)
  // would hide completely: 2 + 50 < 100.
  {
    std::size_t detected = 0, attacked = 0;
    for (std::size_t b = 0; b < series.bin_count(); ++b) {
      if (slot_of(series.grid().bin_start(b)) != DaySlot::OffHours) continue;
      ++attacked;
      if (series.at(b) + 50.0 > 100.0) ++detected;
    }
    EXPECT_EQ(detected, 0u);
    EXPECT_GT(attacked, 0u);
  }
}

TEST(ConditionalDetector, BenignTrafficDoesNotAlarm) {
  const auto series = day_night_series();
  const auto detector = ConditionalDetector::learn(series, 0.99);
  EXPECT_DOUBLE_EQ(detector.alarm_rate(series, 0, series.bin_count()), 0.0);
}

TEST(ConditionalDetector, AlarmRateCountsSlotAwareExceedances) {
  auto series = day_night_series();
  const auto detector = ConditionalDetector::learn(series, 0.99);
  // Inject one night burst and one day burst above their slot bars.
  series.set(8, 10.0);    // Monday 02:00: above the 2.0 night bar
  series.set(40, 150.0);  // Monday 10:00: above the 100.0 day bar
  const double rate = detector.alarm_rate(series, 0, series.bin_count());
  EXPECT_NEAR(rate, 2.0 / static_cast<double>(series.bin_count()), 1e-12);
}

TEST(ConditionalDetector, ExplicitThresholds) {
  const ConditionalDetector detector(100.0, 5.0);
  EXPECT_TRUE(detector.alarms(3 * kMicrosPerHour, 6.0));    // night, above 5
  EXPECT_FALSE(detector.alarms(10 * kMicrosPerHour, 6.0));  // day, below 100
}

TEST(ConditionalDetector, InvalidRangesAreErrors) {
  const auto series = day_night_series();
  const auto detector = ConditionalDetector::learn(series, 0.99);
  EXPECT_THROW((void)detector.alarm_rate(series, 10, 10), PreconditionError);
  EXPECT_THROW((void)detector.alarm_rate(series, 0, series.bin_count() + 1),
               PreconditionError);
  EXPECT_THROW((void)ConditionalDetector::learn(series, 1.0), PreconditionError);
}

}  // namespace
}  // namespace monohids::hids
