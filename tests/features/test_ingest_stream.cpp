// Streaming-ingest differential tests: pushing a trace through IngestSession
// in any batch partition must be byte-identical to the seed batch pipeline
// (extract_features_reference) — same FeatureMatrix, same FlowTableStats.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "features/pipeline.hpp"
#include "stats/sampling.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace monohids::features {
namespace {

const net::Ipv4Address kHost = net::Ipv4Address::parse("10.0.0.1");

net::PacketRecord random_packet(util::Xoshiro256& rng, util::Timestamp at) {
  net::PacketRecord p;
  p.timestamp = at;
  const bool outbound = rng.uniform01() < 0.7;
  const net::Ipv4Address peer(static_cast<std::uint32_t>(
      (93u << 24) + stats::sample_uniform_int(rng, 0, 60)));
  const auto sport = static_cast<std::uint16_t>(stats::sample_uniform_int(rng, 1024, 1100));
  const auto dport = static_cast<std::uint16_t>(stats::sample_uniform_int(rng, 1, 8));
  p.tuple = outbound
                ? net::FiveTuple{kHost, peer, sport, dport, net::Protocol::Tcp}
                : net::FiveTuple{peer, kHost, sport, dport, net::Protocol::Tcp};
  const double proto = rng.uniform01();
  if (proto < 0.3) p.tuple.protocol = net::Protocol::Udp;
  if (p.tuple.protocol == net::Protocol::Tcp) {
    const double roll = rng.uniform01();
    if (roll < 0.35) {
      p.tcp_flags = net::TcpFlags::Syn;
    } else if (roll < 0.45) {
      p.tcp_flags = net::TcpFlags::Syn | net::TcpFlags::Ack;
    } else if (roll < 0.7) {
      p.tcp_flags = net::TcpFlags::Ack;
    } else if (roll < 0.85) {
      p.tcp_flags = net::TcpFlags::Fin | net::TcpFlags::Ack;
    } else {
      p.tcp_flags = net::TcpFlags::Rst;
    }
  }
  return p;
}

/// Random time-ordered trace across several bins, with idle gaps so timeout
/// sweeps fire mid-trace.
std::vector<net::PacketRecord> random_trace(std::uint64_t seed, int packets,
                                            util::Duration horizon) {
  util::Xoshiro256 rng(seed);
  std::vector<net::PacketRecord> trace;
  util::Timestamp now = 0;
  for (int i = 0; i < packets; ++i) {
    now += stats::sample_uniform_int(rng, 0, 2 * util::kMicrosPerSecond);
    if (rng.uniform01() < 0.01) now += 7 * util::kMicrosPerMinute;  // idle gap
    if (now >= horizon) break;
    trace.push_back(random_packet(rng, now));
  }
  return trace;
}

void expect_matrix_eq(const FeatureMatrix& got, const FeatureMatrix& expected) {
  for (FeatureKind f : kAllFeatures) {
    const auto g = got.of(f).values();
    const auto e = expected.of(f).values();
    ASSERT_EQ(g.size(), e.size());
    for (std::size_t b = 0; b < e.size(); ++b) {
      ASSERT_EQ(g[b], e[b]) << name_of(f) << " bin " << b;
    }
  }
}

PipelineConfig small_config() {
  PipelineConfig config;
  config.grid = util::BinGrid::minutes(15);
  config.horizon = 2 * util::kMicrosPerHour;
  config.flow_config.sweep_interval = util::kMicrosPerSecond;
  return config;
}

class IngestStreamDifferential : public ::testing::TestWithParam<std::uint64_t> {};

// 250 seeds x 4 batch partitions = 1000 random batch-vs-stream traces.
TEST_P(IngestStreamDifferential, AnyBatchPartitionMatchesReference) {
  const std::uint64_t seed = GetParam();
  const PipelineConfig config = small_config();
  const std::vector<net::PacketRecord> trace =
      random_trace(seed, seed % 11 == 0 ? 4000 : 600, config.horizon);

  const PipelineResult expected = extract_features_reference(kHost, trace, config);

  util::Xoshiro256 rng(seed ^ 0x9e3779b97f4a7c15ULL);
  for (const std::size_t batch : {std::size_t{1}, std::size_t{7}, std::size_t{64},
                                  std::size_t{stats::sample_uniform_int(rng, 2, 500)}}) {
    IngestSession session(kHost, config);
    std::size_t at = 0;
    while (at < trace.size()) {
      const std::size_t n = std::min(batch, trace.size() - at);
      session.on_batch(std::span<const net::PacketRecord>(trace).subspan(at, n));
      at += n;
    }
    const PipelineResult got = session.finish();
    expect_matrix_eq(got.matrix, expected.matrix);
    ASSERT_EQ(got.flow_stats, expected.flow_stats) << "batch size " << batch;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IngestStreamDifferential,
                         ::testing::Range<std::uint64_t>(1, 251));

TEST(IngestStream, OneShotExtractMatchesReference) {
  const PipelineConfig config = small_config();
  const std::vector<net::PacketRecord> trace = random_trace(7, 2000, config.horizon);
  const PipelineResult expected = extract_features_reference(kHost, trace, config);
  const PipelineResult got = extract_features(kHost, trace, config);
  expect_matrix_eq(got.matrix, expected.matrix);
  EXPECT_EQ(got.flow_stats, expected.flow_stats);
}

// Flush edge: a flow still open in the horizon's closing microsecond (and one
// past it) must be flushed identically by both paths.
TEST(IngestStream, FlushEdgeBinsMatchReference) {
  const PipelineConfig config = small_config();
  std::vector<net::PacketRecord> trace;
  net::PacketRecord p;
  p.tuple = {kHost, net::Ipv4Address::parse("93.0.0.9"), 50000, 80, net::Protocol::Tcp};
  p.tcp_flags = net::TcpFlags::Syn;
  p.timestamp = 0;
  trace.push_back(p);
  p.tcp_flags = net::TcpFlags::Ack;
  p.timestamp = config.horizon - 1;  // last bin's closing microsecond
  trace.push_back(p);
  p.tuple.src_port = 50001;
  p.tcp_flags = net::TcpFlags::Syn;
  p.timestamp = config.horizon - 1;
  trace.push_back(p);

  const PipelineResult expected = extract_features_reference(kHost, trace, config);
  IngestSession session(kHost, config);
  for (const auto& packet : trace) session.push(packet);
  const PipelineResult got = session.finish();
  expect_matrix_eq(got.matrix, expected.matrix);
  EXPECT_EQ(got.flow_stats, expected.flow_stats);
  // The first flow idled out when the closing-microsecond packets swept the
  // table; the SYN flow opened there is the one the flush must close.
  EXPECT_EQ(got.flow_stats.flows_ended_timeout, 1u);
  EXPECT_EQ(got.flow_stats.flows_ended_flush, 1u);
}

// Idle-timeout edge: a long silent gap mid-trace must expire flows in the
// same sweep in both paths even when the gap spans many sweep intervals.
TEST(IngestStream, IdleTimeoutAcrossLongGapMatchesReference) {
  const PipelineConfig config = small_config();
  std::vector<net::PacketRecord> trace;
  for (std::uint16_t i = 0; i < 20; ++i) {
    net::PacketRecord p;
    p.tuple = {kHost, net::Ipv4Address::parse("93.0.0.9"),
               static_cast<std::uint16_t>(50000 + i), 53, net::Protocol::Udp};
    p.timestamp = i;
    trace.push_back(p);
  }
  net::PacketRecord late;
  late.tuple = {kHost, net::Ipv4Address::parse("93.0.0.10"), 51000, 80, net::Protocol::Tcp};
  late.tcp_flags = net::TcpFlags::Syn;
  late.timestamp = util::kMicrosPerHour;  // all UDP flows long expired
  trace.push_back(late);

  const PipelineResult expected = extract_features_reference(kHost, trace, config);
  IngestSession session(kHost, config);
  session.on_batch(trace);
  const PipelineResult got = session.finish();
  expect_matrix_eq(got.matrix, expected.matrix);
  EXPECT_EQ(got.flow_stats, expected.flow_stats);
  EXPECT_EQ(got.flow_stats.flows_ended_timeout, 20u);
}

TEST(IngestStream, PushAfterFinishThrows) {
  IngestSession session(kHost, small_config());
  net::PacketRecord p;
  p.tuple = {kHost, net::Ipv4Address::parse("93.0.0.9"), 50000, 80, net::Protocol::Tcp};
  p.tcp_flags = net::TcpFlags::Syn;
  session.push(p);
  (void)session.finish();
  EXPECT_THROW(session.push(p), PreconditionError);
  EXPECT_THROW((void)session.finish(), PreconditionError);
}

// BatchingAdapter must forward every pushed packet, in order, in bounded
// batches.
TEST(IngestStream, BatchingAdapterBoundsAndPreservesOrder) {
  struct Collect final : PacketSink {
    std::vector<net::PacketRecord> all;
    std::size_t max_seen = 0;
    void on_batch(std::span<const net::PacketRecord> batch) override {
      max_seen = std::max(max_seen, batch.size());
      all.insert(all.end(), batch.begin(), batch.end());
    }
  } sink;

  BatchingAdapter batches(sink, 16);
  std::vector<net::PacketRecord> trace = random_trace(3, 1000, util::kMicrosPerWeek);
  for (const auto& p : trace) batches.push(p);
  EXPECT_EQ(batches.finish(), trace.size());
  EXPECT_LE(sink.max_seen, 16u);
  ASSERT_EQ(sink.all.size(), trace.size());
  EXPECT_TRUE(std::equal(trace.begin(), trace.end(), sink.all.begin()));
}

}  // namespace
}  // namespace monohids::features
