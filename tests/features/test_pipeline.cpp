// End-to-end: hand-built packet streams through connection tracking and
// feature extraction. This is the fidelity bar for the whole substrate: the
// counts that come out must equal what a human counts by hand.
#include "features/pipeline.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace monohids::features {
namespace {

using net::FiveTuple;
using net::Ipv4Address;
using net::PacketRecord;
using net::Protocol;
using net::TcpFlags;
using util::kMicrosPerMinute;

const Ipv4Address kHost = Ipv4Address::parse("10.0.0.1");

/// Appends a complete TCP connection (handshake + FIN close) to `out`.
void add_tcp_connection(std::vector<PacketRecord>& out, util::Timestamp t,
                        const char* dst, std::uint16_t sport, std::uint16_t dport) {
  const FiveTuple f{kHost, Ipv4Address::parse(dst), sport, dport, Protocol::Tcp};
  out.push_back({t, f, TcpFlags::Syn, 0});
  out.push_back({t + 10, f.reversed(), TcpFlags::Syn | TcpFlags::Ack, 0});
  out.push_back({t + 20, f, TcpFlags::Ack, 0});
  out.push_back({t + 30, f, TcpFlags::Fin | TcpFlags::Ack, 0});
  out.push_back({t + 40, f.reversed(), TcpFlags::Fin | TcpFlags::Ack, 0});
}

void add_dns_lookup(std::vector<PacketRecord>& out, util::Timestamp t,
                    std::uint16_t sport) {
  const FiveTuple f{kHost, Ipv4Address::parse("10.10.255.2"), sport, 53, Protocol::Udp};
  out.push_back({t, f, TcpFlags::None, 64});
  out.push_back({t + 10, f.reversed(), TcpFlags::None, 128});
}

PipelineConfig one_week_config() {
  PipelineConfig config;
  config.horizon = util::kMicrosPerWeek;
  return config;
}

TEST(Pipeline, HandCountedScenario) {
  std::vector<PacketRecord> packets;
  // Bin 0: two HTTP connections to distinct servers, one HTTPS to the first
  // server, two DNS lookups (same resolver).
  add_tcp_connection(packets, 1000, "93.0.0.1", 50001, 80);
  add_tcp_connection(packets, 2000, "93.0.0.2", 50002, 80);
  add_tcp_connection(packets, 3000, "93.0.0.1", 50003, 443);
  add_dns_lookup(packets, 100, 50004);
  add_dns_lookup(packets, 200, 50005);
  // Bin 1: one UDP probe to a peer.
  const FiveTuple p2p{kHost, Ipv4Address::parse("78.0.0.1"), 50006, 20000, Protocol::Udp};
  packets.push_back({15 * kMicrosPerMinute + 100, p2p, TcpFlags::None, 25});
  std::sort(packets.begin(), packets.end());

  const auto result = extract_features(kHost, packets, one_week_config());
  const FeatureMatrix& m = result.matrix;

  EXPECT_DOUBLE_EQ(m.of(FeatureKind::TcpConnections).at(0), 3.0);
  EXPECT_DOUBLE_EQ(m.of(FeatureKind::HttpConnections).at(0), 2.0);
  EXPECT_DOUBLE_EQ(m.of(FeatureKind::TcpSyn).at(0), 3.0);
  EXPECT_DOUBLE_EQ(m.of(FeatureKind::DnsConnections).at(0), 2.0);
  EXPECT_DOUBLE_EQ(m.of(FeatureKind::UdpConnections).at(0), 2.0);
  // distinct: 93.0.0.1, 93.0.0.2, resolver
  EXPECT_DOUBLE_EQ(m.of(FeatureKind::DistinctConnections).at(0), 3.0);

  EXPECT_DOUBLE_EQ(m.of(FeatureKind::UdpConnections).at(1), 1.0);
  EXPECT_DOUBLE_EQ(m.of(FeatureKind::DistinctConnections).at(1), 1.0);

  EXPECT_EQ(result.flow_stats.flows_created, 6u);
  EXPECT_EQ(result.flow_stats.flows_ended_fin, 3u);
}

TEST(Pipeline, InboundTrafficDoesNotCount) {
  std::vector<PacketRecord> packets;
  const FiveTuple inbound{Ipv4Address::parse("93.0.0.9"), kHost, 40000, 445, Protocol::Tcp};
  packets.push_back({1000, inbound, TcpFlags::Syn, 0});
  packets.push_back({1100, inbound.reversed(), TcpFlags::Syn | TcpFlags::Ack, 0});

  const auto result = extract_features(kHost, packets, one_week_config());
  for (FeatureKind f : kAllFeatures) {
    EXPECT_DOUBLE_EQ(result.matrix.of(f).at(0), 0.0) << name_of(f);
  }
}

TEST(Pipeline, SynRetransmissionsInflateOnlySynCount) {
  std::vector<PacketRecord> packets;
  const FiveTuple f{kHost, Ipv4Address::parse("93.0.0.1"), 50001, 80, Protocol::Tcp};
  packets.push_back({1000, f, TcpFlags::Syn, 0});
  packets.push_back({3'001'000, f, TcpFlags::Syn, 0});
  packets.push_back({6'001'000, f, TcpFlags::Syn, 0});

  const auto result = extract_features(kHost, packets, one_week_config());
  EXPECT_DOUBLE_EQ(result.matrix.of(FeatureKind::TcpSyn).at(0), 3.0);
  EXPECT_DOUBLE_EQ(result.matrix.of(FeatureKind::TcpConnections).at(0), 1.0);
}

TEST(Pipeline, EmptyTraceYieldsAllZeros) {
  const auto result = extract_features(kHost, {}, one_week_config());
  for (FeatureKind f : kAllFeatures) {
    const auto& series = result.matrix.of(f);
    for (std::size_t b = 0; b < series.bin_count(); ++b) {
      ASSERT_DOUBLE_EQ(series.at(b), 0.0);
    }
  }
}

TEST(Pipeline, LongLivedUdpFlowCountsOncePerTimeout) {
  // A chatty UDP flow with packets every second stays one flow; after a
  // quiet period longer than the idle timeout it counts as a new one.
  std::vector<PacketRecord> packets;
  const FiveTuple f{kHost, Ipv4Address::parse("78.0.0.1"), 50001, 20000, Protocol::Udp};
  for (int i = 0; i < 30; ++i) {
    packets.push_back({static_cast<util::Timestamp>(i) * util::kMicrosPerSecond, f,
                       TcpFlags::None, 25});
  }
  packets.push_back({20 * kMicrosPerMinute, f, TcpFlags::None, 25});

  const auto result = extract_features(kHost, packets, one_week_config());
  EXPECT_DOUBLE_EQ(result.matrix.of(FeatureKind::UdpConnections).at(0), 1.0);
  EXPECT_DOUBLE_EQ(result.matrix.of(FeatureKind::UdpConnections).at(1), 1.0);
}

TEST(Pipeline, FlowInFinalBinIsAccepted) {
  // Regression: the end-of-trace flush used to happen at horizon - 1, so a
  // flow whose packets landed in the horizon's closing microsecond (or just
  // past it) made the flow table's clock run backwards and threw. The flush
  // must happen at the last observed timestamp when that is later.
  std::vector<PacketRecord> packets;
  const FiveTuple f{kHost, Ipv4Address::parse("93.0.0.1"), 50001, 80, Protocol::Tcp};
  const util::Timestamp horizon = util::kMicrosPerWeek;
  packets.push_back({horizon - 10, f, TcpFlags::Syn, 0});
  packets.push_back({horizon - 1, f.reversed(), TcpFlags::Syn | TcpFlags::Ack, 0});

  PipelineConfig config = one_week_config();
  const auto result = extract_features(kHost, packets, config);
  const std::size_t last_bin = result.matrix.of(FeatureKind::TcpConnections).bin_count() - 1;
  EXPECT_DOUBLE_EQ(result.matrix.of(FeatureKind::TcpConnections).at(last_bin), 1.0);
  EXPECT_EQ(result.flow_stats.flows_created, 1u);
  EXPECT_EQ(result.flow_stats.flows_ended_flush, 1u);

  // A straggler past the horizon must not throw either: the flush clock
  // follows the last observed packet.
  packets.push_back({horizon + 5, f, TcpFlags::Ack, 0});
  EXPECT_NO_THROW((void)extract_features(kHost, packets, config));
}

TEST(Pipeline, FlushStatsSeparateFromTimeouts) {
  // One flow idles out mid-trace, one is still live at EOF; the stats must
  // tell them apart rather than lumping both into "timeout".
  std::vector<PacketRecord> packets;
  const FiveTuple early{kHost, Ipv4Address::parse("78.0.0.1"), 50001, 20000,
                        Protocol::Udp};
  const FiveTuple late{kHost, Ipv4Address::parse("78.0.0.2"), 50002, 20000,
                       Protocol::Udp};
  packets.push_back({0, early, TcpFlags::None, 25});
  packets.push_back({30 * kMicrosPerMinute, late, TcpFlags::None, 25});

  const auto result = extract_features(kHost, packets, one_week_config());
  EXPECT_EQ(result.flow_stats.flows_created, 2u);
  EXPECT_EQ(result.flow_stats.flows_ended_timeout, 1u);
  EXPECT_EQ(result.flow_stats.flows_ended_flush, 1u);
}

TEST(Pipeline, FiveMinuteBinning) {
  PipelineConfig config = one_week_config();
  config.grid = util::BinGrid::minutes(5);
  std::vector<PacketRecord> packets;
  add_tcp_connection(packets, 6 * kMicrosPerMinute, "93.0.0.1", 50001, 80);
  const auto result = extract_features(kHost, packets, config);
  EXPECT_DOUBLE_EQ(result.matrix.of(FeatureKind::TcpConnections).at(1), 1.0);
  EXPECT_DOUBLE_EQ(result.matrix.of(FeatureKind::TcpConnections).at(0), 0.0);
}

}  // namespace
}  // namespace monohids::features
