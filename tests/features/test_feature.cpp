#include "features/feature.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/error.hpp"

namespace monohids::features {
namespace {

TEST(Feature, TableOneHasSixFeatures) {
  EXPECT_EQ(kFeatureCount, 6u);
  EXPECT_EQ(kAllFeatures.size(), 6u);
}

TEST(Feature, IndicesAreDenseAndUnique) {
  std::set<std::size_t> indices;
  for (FeatureKind f : kAllFeatures) indices.insert(index_of(f));
  EXPECT_EQ(indices.size(), kFeatureCount);
  EXPECT_EQ(*indices.begin(), 0u);
  EXPECT_EQ(*indices.rbegin(), kFeatureCount - 1);
}

TEST(Feature, NamesMatchTableOne) {
  EXPECT_EQ(name_of(FeatureKind::DnsConnections), "num-DNS-connections");
  EXPECT_EQ(name_of(FeatureKind::TcpConnections), "num-TCP-connections");
  EXPECT_EQ(name_of(FeatureKind::TcpSyn), "num-TCP-SYN");
  EXPECT_EQ(name_of(FeatureKind::HttpConnections), "num-HTTP-connections");
  EXPECT_EQ(name_of(FeatureKind::DistinctConnections), "num-distinct-connections");
  EXPECT_EQ(name_of(FeatureKind::UdpConnections), "num-UDP-connections");
}

TEST(Feature, AnomalyAndProductColumns) {
  EXPECT_EQ(anomaly_of(FeatureKind::DnsConnections), "Botnet C&C");
  EXPECT_EQ(products_of(FeatureKind::DnsConnections), "Damballa");
  EXPECT_EQ(anomaly_of(FeatureKind::HttpConnections), "Clickfraud, DDoS");
  for (FeatureKind f : kAllFeatures) {
    EXPECT_FALSE(anomaly_of(f).empty());
    EXPECT_FALSE(products_of(f).empty());
  }
}

TEST(Feature, ParseInvertsName) {
  for (FeatureKind f : kAllFeatures) {
    EXPECT_EQ(parse_feature(name_of(f)), f);
  }
}

TEST(Feature, ParseRejectsUnknownNames) {
  EXPECT_THROW((void)parse_feature("num-ICMP-connections"), InputError);
  EXPECT_THROW((void)parse_feature(""), InputError);
}

}  // namespace
}  // namespace monohids::features
