#include "features/time_series.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace monohids::features {
namespace {

using util::BinGrid;
using util::kMicrosPerMinute;
using util::kMicrosPerWeek;

TEST(BinnedSeries, ZeroInitialized) {
  const BinnedSeries s(BinGrid::minutes(15), kMicrosPerWeek);
  EXPECT_EQ(s.bin_count(), 672u);
  for (std::size_t b = 0; b < s.bin_count(); ++b) EXPECT_DOUBLE_EQ(s.at(b), 0.0);
}

TEST(BinnedSeries, AddAtAccumulates) {
  BinnedSeries s(BinGrid::minutes(15), kMicrosPerWeek);
  s.add_at(0);
  s.add_at(14 * kMicrosPerMinute);          // same bin
  s.add_at(15 * kMicrosPerMinute, 2.5);     // next bin
  EXPECT_DOUBLE_EQ(s.at(0), 2.0);
  EXPECT_DOUBLE_EQ(s.at(1), 2.5);
}

TEST(BinnedSeries, AddBeyondHorizonIsAnError) {
  BinnedSeries s(BinGrid::minutes(15), kMicrosPerWeek);
  EXPECT_THROW(s.add_at(kMicrosPerWeek), PreconditionError);
}

TEST(BinnedSeries, SetAndGetBounds) {
  BinnedSeries s(BinGrid::minutes(15), kMicrosPerWeek);
  s.set(671, 7.0);
  EXPECT_DOUBLE_EQ(s.at(671), 7.0);
  EXPECT_THROW(s.set(672, 1.0), PreconditionError);
  EXPECT_THROW((void)s.at(672), PreconditionError);
}

TEST(BinnedSeries, WeekSlices) {
  const BinnedSeries s(BinGrid::minutes(15), 3 * kMicrosPerWeek);
  EXPECT_EQ(s.week_count(), 3u);
  EXPECT_EQ(s.week_slice(0).size(), 672u);
  EXPECT_EQ(s.week_slice(2).size(), 672u);
  EXPECT_TRUE(s.week_slice(3).empty());
}

TEST(BinnedSeries, WeekSliceViewsCorrectRegion) {
  BinnedSeries s(BinGrid::minutes(15), 2 * kMicrosPerWeek);
  s.set(672, 42.0);  // first bin of week 1
  const auto slice = s.week_slice(1);
  ASSERT_FALSE(slice.empty());
  EXPECT_DOUBLE_EQ(slice[0], 42.0);
}

TEST(BinnedSeries, PartialLastWeek) {
  const BinnedSeries s(BinGrid::minutes(15), kMicrosPerWeek + 10 * 15 * kMicrosPerMinute);
  EXPECT_EQ(s.week_slice(1).size(), 10u);
}

TEST(BinnedSeries, AdditionIsElementwise) {
  BinnedSeries a(BinGrid::minutes(15), kMicrosPerWeek);
  BinnedSeries b(BinGrid::minutes(15), kMicrosPerWeek);
  a.set(5, 10.0);
  b.set(5, 3.0);
  b.set(6, 1.0);
  const BinnedSeries sum = a + b;
  EXPECT_DOUBLE_EQ(sum.at(5), 13.0);
  EXPECT_DOUBLE_EQ(sum.at(6), 1.0);
  EXPECT_DOUBLE_EQ(sum.at(7), 0.0);
}

TEST(BinnedSeries, AdditionShapeMismatchIsAnError) {
  BinnedSeries a(BinGrid::minutes(15), kMicrosPerWeek);
  BinnedSeries b(BinGrid::minutes(5), kMicrosPerWeek);
  EXPECT_THROW((void)(a + b), PreconditionError);
}

TEST(BinnedSeries, FiveMinuteGrid) {
  const BinnedSeries s(BinGrid::minutes(5), kMicrosPerWeek);
  EXPECT_EQ(s.bin_count(), 2016u);
}

TEST(FeatureMatrix, OfAccessesPerFeatureSeries) {
  FeatureMatrix m;
  for (auto& s : m.series) s = BinnedSeries(BinGrid::minutes(15), kMicrosPerWeek);
  m.of(FeatureKind::TcpSyn).set(0, 9.0);
  EXPECT_DOUBLE_EQ(m.of(FeatureKind::TcpSyn).at(0), 9.0);
  EXPECT_DOUBLE_EQ(m.of(FeatureKind::TcpConnections).at(0), 0.0);
}

}  // namespace
}  // namespace monohids::features
