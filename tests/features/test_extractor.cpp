#include "features/extractor.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace monohids::features {
namespace {

using net::FiveTuple;
using net::FlowEvent;
using net::FlowEventKind;
using net::Ipv4Address;
using net::PacketRecord;
using net::Protocol;
using net::TcpFlags;
using util::BinGrid;
using util::kMicrosPerMinute;
using util::kMicrosPerWeek;

const Ipv4Address kHost = Ipv4Address::parse("10.0.0.1");

FlowEvent start_event(util::Timestamp t, Protocol proto, std::uint16_t dport,
                      const char* dst = "93.0.0.1", bool local = true) {
  FlowEvent e;
  e.timestamp = t;
  e.tuple = FiveTuple{kHost, Ipv4Address::parse(dst), 50000, dport, proto};
  e.kind = FlowEventKind::Start;
  e.initiated_by_monitored_host = local;
  return e;
}

FeatureExtractor make_extractor() {
  return FeatureExtractor(BinGrid::minutes(15), kMicrosPerWeek);
}

TEST(Extractor, TcpStartCountsTcpConnections) {
  auto ex = make_extractor();
  ex.on_flow_event(start_event(0, Protocol::Tcp, 5222));
  ex.finish();
  EXPECT_DOUBLE_EQ(ex.matrix().of(FeatureKind::TcpConnections).at(0), 1.0);
  EXPECT_DOUBLE_EQ(ex.matrix().of(FeatureKind::UdpConnections).at(0), 0.0);
  EXPECT_DOUBLE_EQ(ex.matrix().of(FeatureKind::HttpConnections).at(0), 0.0);
}

TEST(Extractor, HttpCountsBothHttpAndTcp) {
  auto ex = make_extractor();
  ex.on_flow_event(start_event(0, Protocol::Tcp, 80));
  ex.finish();
  EXPECT_DOUBLE_EQ(ex.matrix().of(FeatureKind::HttpConnections).at(0), 1.0);
  EXPECT_DOUBLE_EQ(ex.matrix().of(FeatureKind::TcpConnections).at(0), 1.0);
}

TEST(Extractor, HttpsIsTcpButNotHttp) {
  auto ex = make_extractor();
  ex.on_flow_event(start_event(0, Protocol::Tcp, 443));
  ex.finish();
  EXPECT_DOUBLE_EQ(ex.matrix().of(FeatureKind::HttpConnections).at(0), 0.0);
  EXPECT_DOUBLE_EQ(ex.matrix().of(FeatureKind::TcpConnections).at(0), 1.0);
}

TEST(Extractor, DnsOverUdpCountsDnsAndUdp) {
  auto ex = make_extractor();
  ex.on_flow_event(start_event(0, Protocol::Udp, 53));
  ex.finish();
  EXPECT_DOUBLE_EQ(ex.matrix().of(FeatureKind::DnsConnections).at(0), 1.0);
  EXPECT_DOUBLE_EQ(ex.matrix().of(FeatureKind::UdpConnections).at(0), 1.0);
}

TEST(Extractor, RemoteInitiatedFlowsAreIgnored) {
  // "per source basis": only outbound-initiated activity counts.
  auto ex = make_extractor();
  ex.on_flow_event(start_event(0, Protocol::Tcp, 80, "93.0.0.1", /*local=*/false));
  ex.finish();
  EXPECT_DOUBLE_EQ(ex.matrix().of(FeatureKind::TcpConnections).at(0), 0.0);
}

TEST(Extractor, EndEventsAreIgnored) {
  auto ex = make_extractor();
  FlowEvent e = start_event(0, Protocol::Tcp, 80);
  e.kind = FlowEventKind::End;
  ex.on_flow_event(e);
  ex.finish();
  EXPECT_DOUBLE_EQ(ex.matrix().of(FeatureKind::TcpConnections).at(0), 0.0);
}

TEST(Extractor, OutboundSynPacketsCounted) {
  auto ex = make_extractor();
  const FiveTuple t{kHost, Ipv4Address::parse("93.0.0.1"), 50000, 80, Protocol::Tcp};
  ex.on_packet(PacketRecord{0, t, TcpFlags::Syn, 0}, kHost);
  ex.on_packet(PacketRecord{10, t, TcpFlags::Syn, 0}, kHost);  // retransmit counts
  ex.on_packet(PacketRecord{20, t.reversed(), TcpFlags::Syn | TcpFlags::Ack, 0}, kHost);
  ex.on_packet(PacketRecord{30, t, TcpFlags::Ack, 0}, kHost);
  ex.finish();
  EXPECT_DOUBLE_EQ(ex.matrix().of(FeatureKind::TcpSyn).at(0), 2.0);
}

TEST(Extractor, DistinctDestinationsPerBin) {
  auto ex = make_extractor();
  ex.on_flow_event(start_event(0, Protocol::Tcp, 80, "93.0.0.1"));
  ex.on_flow_event(start_event(10, Protocol::Tcp, 80, "93.0.0.1"));  // repeat
  ex.on_flow_event(start_event(20, Protocol::Tcp, 80, "93.0.0.2"));
  ex.on_flow_event(start_event(30, Protocol::Udp, 53, "10.10.255.2"));
  ex.finish();
  EXPECT_DOUBLE_EQ(ex.matrix().of(FeatureKind::DistinctConnections).at(0), 3.0);
}

TEST(Extractor, DistinctResetsEachBin) {
  auto ex = make_extractor();
  ex.on_flow_event(start_event(0, Protocol::Tcp, 80, "93.0.0.1"));
  ex.on_flow_event(start_event(15 * kMicrosPerMinute, Protocol::Tcp, 80, "93.0.0.1"));
  ex.finish();
  EXPECT_DOUBLE_EQ(ex.matrix().of(FeatureKind::DistinctConnections).at(0), 1.0);
  EXPECT_DOUBLE_EQ(ex.matrix().of(FeatureKind::DistinctConnections).at(1), 1.0);
}

TEST(Extractor, DistinctSurvivesBinGaps) {
  auto ex = make_extractor();
  ex.on_flow_event(start_event(0, Protocol::Tcp, 80, "93.0.0.1"));
  // long silence, then a different bin far later
  ex.on_flow_event(start_event(100 * 15 * kMicrosPerMinute, Protocol::Tcp, 80, "93.0.0.9"));
  ex.finish();
  EXPECT_DOUBLE_EQ(ex.matrix().of(FeatureKind::DistinctConnections).at(0), 1.0);
  EXPECT_DOUBLE_EQ(ex.matrix().of(FeatureKind::DistinctConnections).at(100), 1.0);
}

TEST(Extractor, UseAfterFinishIsAnError) {
  auto ex = make_extractor();
  ex.finish();
  EXPECT_THROW(ex.on_flow_event(start_event(0, Protocol::Tcp, 80)), PreconditionError);
}

TEST(Extractor, FinishIsIdempotent) {
  auto ex = make_extractor();
  ex.on_flow_event(start_event(0, Protocol::Tcp, 80));
  ex.finish();
  ex.finish();
  EXPECT_DOUBLE_EQ(ex.matrix().of(FeatureKind::DistinctConnections).at(0), 1.0);
}

}  // namespace
}  // namespace monohids::features
