// Differential suite for the fleet-mode GkSketch surface: from_sorted(),
// merge(), quantile_batch(), and serialize()/deserialize(). The oracle is
// the same as test_gk_differential.cpp — the fully-sorted pooled sample and
// a rank-space check — because the GK contract is a rank guarantee. Merge
// is exercised over left-folds and balanced trees of seeded shard streams
// to pin that the ε-rank guarantee survives any merge shape the fleet
// console uses.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "stats/gk_sketch.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace monohids::stats {
namespace {

double rank_error(const std::vector<double>& sorted, double answer, double q) {
  const auto lo = std::lower_bound(sorted.begin(), sorted.end(), answer) - sorted.begin();
  const auto hi = std::upper_bound(sorted.begin(), sorted.end(), answer) - sorted.begin();
  const double target = std::ceil(q * static_cast<double>(sorted.size()));
  if (target < static_cast<double>(lo)) return static_cast<double>(lo) - target;
  if (target > static_cast<double>(hi)) return target - static_cast<double>(hi);
  return 0.0;
}

std::string fill_case(std::uint64_t case_index, util::Xoshiro256& rng,
                      std::vector<double>& out) {
  switch (case_index % 5) {
    case 0:
      for (double& v : out) v = rng.uniform01();
      return "uniform";
    case 1:
      // Small-integer bin counts: the shape fleet sketches actually hold.
      for (double& v : out) v = static_cast<double>(rng() % 40);
      return "bin-counts";
    case 2:
      for (double& v : out) v = static_cast<double>(rng() % 3);
      return "three-values";
    case 3:
      for (double& v : out) v = std::exp(3.0 * rng.uniform01());
      return "exp-skew";
    case 4:
      for (double& v : out) v = 7.0;
      return "constant";
    default:
      return "unreachable";
  }
}

const std::vector<double> kQuantiles = {0.0,  0.05, 0.25, 0.5,
                                        0.75, 0.9,  0.95, 0.99, 1.0};

TEST(GkFromSorted, MatchesTheRankGuaranteeAndTightensTuples) {
  for (std::uint64_t case_index = 0; case_index < 40; ++case_index) {
    util::Xoshiro256 rng(util::derive_seed(777, "gk-from-sorted", case_index));
    const std::size_t n = 50 + static_cast<std::size_t>(rng() % 8000);
    std::vector<double> samples(n);
    const std::string shape = fill_case(case_index, rng, samples);
    std::sort(samples.begin(), samples.end());

    const double epsilon = (case_index % 2 == 0) ? 1.0 / 48.0 : 0.01;
    const GkSketch sketch = GkSketch::from_sorted(samples, epsilon);
    ASSERT_EQ(sketch.count(), n);

    const double allowed = epsilon * static_cast<double>(n);
    for (double q : kQuantiles) {
      const double err = rank_error(samples, sketch.quantile(q), q);
      ASSERT_LE(err, allowed) << "case " << case_index << " (" << shape << "), n=" << n
                              << ", q=" << q;
    }
    // Space: compress() must have collapsed the run-length tuples into the
    // O((1/eps)·log(eps·n)) band (same loose guard as the add() suite).
    if (static_cast<double>(n) * epsilon > 32.0) {
      EXPECT_LT(static_cast<double>(sketch.tuple_count()),
                8.0 * std::log2(epsilon * static_cast<double>(n) + 2.0) / epsilon + 64.0);
    }
  }
}

TEST(GkFromSorted, RejectsDescendingAndNonFiniteInput) {
  const std::vector<double> descending = {3.0, 2.0, 1.0};
  EXPECT_THROW(GkSketch::from_sorted(descending, 0.05), PreconditionError);
  const std::vector<double> with_nan = {1.0, std::nan(""), 2.0};
  EXPECT_THROW(GkSketch::from_sorted(with_nan, 0.05), PreconditionError);
  EXPECT_EQ(GkSketch::from_sorted({}, 0.05).count(), 0u);
}

TEST(GkMerge, LeftFoldOverShardsKeepsTheRankGuarantee) {
  // The fleet console's exact shape: per-shard from_sorted() summaries
  // folded left-to-right into one pooled sketch, vs the exact pooled sort.
  for (std::uint64_t case_index = 0; case_index < 60; ++case_index) {
    util::Xoshiro256 rng(util::derive_seed(777, "gk-merge-fold", case_index));
    const std::size_t shard_count = 2 + case_index % 7;
    const double epsilon = (case_index % 2 == 0) ? 1.0 / 48.0 : 0.02;

    GkSketch pooled(epsilon);
    std::vector<double> all;
    for (std::size_t s = 0; s < shard_count; ++s) {
      const std::size_t n = 20 + static_cast<std::size_t>(rng() % 3000);
      std::vector<double> shard(n);
      fill_case(case_index + s, rng, shard);
      std::sort(shard.begin(), shard.end());
      all.insert(all.end(), shard.begin(), shard.end());
      pooled.merge(GkSketch::from_sorted(shard, epsilon));
    }
    std::sort(all.begin(), all.end());
    ASSERT_EQ(pooled.count(), all.size());

    const double allowed = epsilon * static_cast<double>(all.size());
    for (double q : kQuantiles) {
      const double err = rank_error(all, pooled.quantile(q), q);
      ASSERT_LE(err, allowed)
          << "case " << case_index << ", shards=" << shard_count << ", q=" << q
          << ": pooled sketch answered " << pooled.quantile(q) << " with rank error "
          << err;
    }
  }
}

TEST(GkMerge, BalancedTreeFoldKeepsTheRankGuarantee) {
  for (std::uint64_t case_index = 0; case_index < 20; ++case_index) {
    util::Xoshiro256 rng(util::derive_seed(777, "gk-merge-tree", case_index));
    const double epsilon = 1.0 / 48.0;

    std::vector<GkSketch> level;
    std::vector<double> all;
    for (std::size_t s = 0; s < 8; ++s) {
      const std::size_t n = 20 + static_cast<std::size_t>(rng() % 2000);
      std::vector<double> shard(n);
      fill_case(case_index + s, rng, shard);
      std::sort(shard.begin(), shard.end());
      all.insert(all.end(), shard.begin(), shard.end());
      level.push_back(GkSketch::from_sorted(shard, epsilon));
    }
    while (level.size() > 1) {
      std::vector<GkSketch> next;
      for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
        level[i].merge(level[i + 1]);
        next.push_back(std::move(level[i]));
      }
      level = std::move(next);
    }
    std::sort(all.begin(), all.end());
    ASSERT_EQ(level.front().count(), all.size());

    const double allowed = epsilon * static_cast<double>(all.size());
    for (double q : kQuantiles) {
      ASSERT_LE(rank_error(all, level.front().quantile(q), q), allowed)
          << "case " << case_index << ", q=" << q;
    }
  }
}

TEST(GkMerge, EmptyAndMismatchedEpsilonEdges) {
  GkSketch a(0.05);
  GkSketch b(0.05);
  a.merge(b);  // empty into empty
  EXPECT_EQ(a.count(), 0u);

  const std::vector<double> vals = {1.0, 2.0, 3.0};
  b = GkSketch::from_sorted(vals, 0.05);
  a.merge(b);  // non-empty into empty adopts the other summary
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.quantile(0.5), b.quantile(0.5));

  GkSketch empty(0.05);
  a.merge(empty);  // empty into non-empty is a no-op
  EXPECT_EQ(a.count(), 3u);

  GkSketch other_eps(0.1);
  EXPECT_THROW(a.merge(other_eps), PreconditionError);
}

TEST(GkQuantileBatch, MatchesPerCallQuantileBitForBit) {
  for (std::uint64_t case_index = 0; case_index < 30; ++case_index) {
    util::Xoshiro256 rng(util::derive_seed(777, "gk-batch", case_index));
    const std::size_t n = 30 + static_cast<std::size_t>(rng() % 6000);
    std::vector<double> samples(n);
    fill_case(case_index, rng, samples);

    const double epsilon = 1.0 / 48.0;
    GkSketch sketch(epsilon);
    if (case_index % 2 == 0) {
      std::sort(samples.begin(), samples.end());
      sketch = GkSketch::from_sorted(samples, epsilon);
    } else {
      for (double v : samples) sketch.add(v);
    }

    // Dense ascending grid including the exact endpoints — the fleet's
    // per-user quantile-row shape.
    std::vector<double> qs;
    for (std::size_t j = 0; j <= 96; ++j) qs.push_back(static_cast<double>(j) / 96.0);
    std::vector<double> batch(qs.size());
    sketch.quantile_batch(qs, batch);
    for (std::size_t j = 0; j < qs.size(); ++j) {
      ASSERT_EQ(batch[j], sketch.quantile(qs[j]))
          << "case " << case_index << ", q=" << qs[j];
    }
  }
}

TEST(GkQuantileBatch, RejectsBadBatches) {
  const std::vector<double> vals = {1.0, 2.0, 3.0};
  const GkSketch sketch = GkSketch::from_sorted(vals, 0.05);
  std::vector<double> out(2);
  const std::vector<double> descending = {0.9, 0.1};
  EXPECT_THROW(sketch.quantile_batch(descending, out), PreconditionError);
  const std::vector<double> out_of_range = {0.5, 1.5};
  EXPECT_THROW(sketch.quantile_batch(out_of_range, out), PreconditionError);
  std::vector<double> wrong_size(3);
  EXPECT_THROW(sketch.quantile_batch(descending, wrong_size), PreconditionError);
  const GkSketch empty(0.05);
  const std::vector<double> one = {0.5};
  std::vector<double> one_out(1);
  EXPECT_THROW(empty.quantile_batch(one, one_out), PreconditionError);
}

TEST(GkSerde, RoundTripAnswersEveryQueryIdentically) {
  for (std::uint64_t case_index = 0; case_index < 20; ++case_index) {
    util::Xoshiro256 rng(util::derive_seed(777, "gk-serde", case_index));
    const std::size_t n = 10 + static_cast<std::size_t>(rng() % 4000);
    std::vector<double> samples(n);
    fill_case(case_index, rng, samples);
    GkSketch sketch(0.02);
    for (double v : samples) sketch.add(v);

    std::stringstream buffer;
    sketch.serialize(buffer);
    const GkSketch restored = GkSketch::deserialize(buffer);
    ASSERT_EQ(restored.count(), sketch.count());
    ASSERT_EQ(restored.tuple_count(), sketch.tuple_count());
    ASSERT_EQ(restored.epsilon(), sketch.epsilon());
    for (double q : kQuantiles) ASSERT_EQ(restored.quantile(q), sketch.quantile(q));

    // A restored sketch must stay a live summary: merging into it works.
    GkSketch target = GkSketch::deserialize(*(buffer.seekg(0), &buffer));
    target.merge(sketch);
    EXPECT_EQ(target.count(), 2 * n);
  }
}

TEST(GkSerde, RejectsCorruptImages) {
  const std::vector<double> vals = {1.0, 2.0, 2.0, 3.0, 9.0};
  GkSketch sketch = GkSketch::from_sorted(vals, 0.1);

  {  // bad magic
    std::stringstream buffer;
    sketch.serialize(buffer);
    std::string image = buffer.str();
    image[0] = static_cast<char>(~image[0]);
    std::stringstream corrupt(image);
    EXPECT_THROW(GkSketch::deserialize(corrupt), InputError);
  }
  {  // truncated mid-tuple
    std::stringstream buffer;
    sketch.serialize(buffer);
    std::stringstream truncated(buffer.str().substr(0, buffer.str().size() - 7));
    EXPECT_THROW(GkSketch::deserialize(truncated), InputError);
  }
  {  // rank bookkeeping that does not sum to n
    std::stringstream buffer;
    sketch.serialize(buffer);
    std::string image = buffer.str();
    // n lives right after magic (4) + epsilon (8); inflate it.
    image[12] = static_cast<char>(image[12] + 1);
    std::stringstream corrupt(image);
    EXPECT_THROW(GkSketch::deserialize(corrupt), InputError);
  }
  {  // empty stream
    std::stringstream empty;
    EXPECT_THROW(GkSketch::deserialize(empty), InputError);
  }
}

}  // namespace
}  // namespace monohids::stats
