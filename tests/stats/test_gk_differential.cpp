// Randomized differential test: GkSketch vs exact quantiles on 200 seeded
// distributions. The GK paper's contract is a *rank* guarantee — the value
// returned for quantile q has rank within ε·n of ceil(q·n) — so the oracle
// is the fully-sorted sample, and the check is on ranks, never on values
// (heavy-tailed draws make value-space comparisons meaningless). Shapes are
// drawn from the generator's own repertoire (uniform, log-normal, Pareto,
// few-distinct-values, sorted/reversed/constant streams) so the sketch sees
// both smooth CDFs and the pathological ties it must break by rank.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "stats/gk_sketch.hpp"
#include "stats/quantile.hpp"
#include "stats/sampling.hpp"
#include "util/rng.hpp"

namespace monohids::stats {
namespace {

/// Rank distance of `answer` from the target rank ceil(q*n), measured
/// against the sorted reference; 0 when the target rank falls inside the
/// answer's tie range [lower_bound, upper_bound].
double rank_error(const std::vector<double>& sorted, double answer, double q) {
  const auto lo = std::lower_bound(sorted.begin(), sorted.end(), answer) - sorted.begin();
  const auto hi = std::upper_bound(sorted.begin(), sorted.end(), answer) - sorted.begin();
  const double target = std::ceil(q * static_cast<double>(sorted.size()));
  if (target < static_cast<double>(lo)) return static_cast<double>(lo) - target;
  if (target > static_cast<double>(hi)) return target - static_cast<double>(hi);
  return 0.0;
}

/// One of eight stream shapes, chosen by case index; returns its name for
/// failure messages.
std::string fill_case(std::uint64_t case_index, util::Xoshiro256& rng,
                      std::vector<double>& out) {
  switch (case_index % 8) {
    case 0:
      for (double& v : out) v = rng.uniform01();
      return "uniform";
    case 1: {
      const LogNormalSampler lognormal(0.0, 1.5);
      for (double& v : out) v = lognormal.sample(rng);
      return "lognormal";
    }
    case 2: {
      const ParetoSampler pareto(1.0, 1.2);
      for (double& v : out) v = pareto.sample(rng);
      return "pareto";
    }
    case 3:
      // Few distinct values: massive ties, the classic GK edge case.
      for (double& v : out) v = static_cast<double>(rng() % 5);
      return "five-values";
    case 4:
      for (std::size_t i = 0; i < out.size(); ++i) out[i] = static_cast<double>(i);
      return "sorted-ascending";
    case 5:
      for (std::size_t i = 0; i < out.size(); ++i) {
        out[i] = static_cast<double>(out.size() - i);
      }
      return "sorted-descending";
    case 6:
      for (double& v : out) v = 42.0;
      return "constant";
    case 7:
      // Mixture with outliers: mostly small, occasional huge spikes.
      for (double& v : out) {
        v = (rng() % 100 == 0) ? 1e9 * rng.uniform01() : rng.uniform01();
      }
      return "spiky-mixture";
    default:
      return "unreachable";
  }
}

TEST(GkDifferential, TwoHundredSeededDistributionsMeetTheRankGuarantee) {
  constexpr std::uint64_t kCases = 200;
  const std::vector<double> epsilons = {0.001, 0.01, 0.05, 0.1};
  const std::vector<double> quantiles = {0.0,  0.01, 0.05, 0.25, 0.5,
                                         0.75, 0.9,  0.95, 0.99, 1.0};

  for (std::uint64_t case_index = 0; case_index < kCases; ++case_index) {
    util::Xoshiro256 rng(util::derive_seed(4242, "gk-differential", case_index));
    // Sizes sweep two orders of magnitude so compression triggers at the
    // larger ones and stays trivial at the smaller.
    const std::size_t n = 100 + static_cast<std::size_t>(rng() % 20000);
    std::vector<double> samples(n);
    const std::string shape = fill_case(case_index, rng, samples);

    const double epsilon = epsilons[case_index % epsilons.size()];
    GkSketch sketch(epsilon);
    for (double v : samples) sketch.add(v);
    ASSERT_EQ(sketch.count(), n);

    std::vector<double> sorted = samples;
    std::sort(sorted.begin(), sorted.end());
    const double allowed = epsilon * static_cast<double>(n);

    for (double q : quantiles) {
      const double answer = sketch.quantile(q);
      const double err = rank_error(sorted, answer, q);
      ASSERT_LE(err, allowed)
          << "case " << case_index << " (" << shape << "), n=" << n
          << ", epsilon=" << epsilon << ", q=" << q << ": sketch answered " << answer
          << " with rank error " << err;
      // Cross-check the oracle itself: the exact nearest-rank quantile has
      // zero rank error by construction.
      ASSERT_EQ(rank_error(sorted, quantile_nearest_rank_sorted(sorted, q), q), 0.0);
    }

    // The space bound is the point of the sketch: tuples must stay well
    // below n once n outgrows the 1/epsilon regime (loose 8x guard so the
    // test pins the asymptotic behavior without chasing constants).
    if (static_cast<double>(n) * epsilon > 32.0) {
      EXPECT_LT(static_cast<double>(sketch.tuple_count()),
                8.0 * std::log2(epsilon * static_cast<double>(n) + 2.0) / epsilon + 64.0)
          << "case " << case_index << " (" << shape << "), n=" << n
          << ", epsilon=" << epsilon;
    }
  }
}

}  // namespace
}  // namespace monohids::stats
