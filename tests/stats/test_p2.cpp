#include "stats/p2_quantile.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "stats/quantile.hpp"
#include "stats/sampling.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace monohids::stats {
namespace {

TEST(P2, InvalidProbabilityIsAnError) {
  EXPECT_THROW(P2Quantile(0.0), PreconditionError);
  EXPECT_THROW(P2Quantile(1.0), PreconditionError);
}

TEST(P2, ExactForFewerThanFiveSamples) {
  P2Quantile p(0.5);
  p.add(3.0);
  EXPECT_DOUBLE_EQ(p.value(), 3.0);
  p.add(1.0);
  p.add(2.0);
  // median of {1,2,3} via nearest rank = 2
  EXPECT_DOUBLE_EQ(p.value(), 2.0);
}

TEST(P2, EmptyEstimateIsAnError) {
  const P2Quantile p(0.9);
  EXPECT_THROW((void)p.value(), PreconditionError);
}

TEST(P2, TracksCount) {
  P2Quantile p(0.9);
  for (int i = 0; i < 100; ++i) p.add(i);
  EXPECT_EQ(p.count(), 100u);
}

struct P2Case {
  double probability;
  double tolerance_relative;  // vs the exact quantile's value
};

class P2Accuracy : public ::testing::TestWithParam<P2Case> {};

TEST_P(P2Accuracy, UniformStream) {
  const auto [prob, tol] = GetParam();
  util::Xoshiro256 rng(21);
  P2Quantile sketch(prob);
  std::vector<double> all;
  for (int i = 0; i < 50000; ++i) {
    const double x = rng.uniform01() * 1000.0;
    sketch.add(x);
    all.push_back(x);
  }
  const double exact = quantile_nearest_rank(all, prob);
  EXPECT_NEAR(sketch.value(), exact, tol * 1000.0);
}

TEST_P(P2Accuracy, LogNormalStream) {
  const auto [prob, tol] = GetParam();
  util::Xoshiro256 rng(22);
  const LogNormalSampler sampler(2.0, 1.0);
  P2Quantile sketch(prob);
  std::vector<double> all;
  for (int i = 0; i < 50000; ++i) {
    const double x = sampler.sample(rng);
    sketch.add(x);
    all.push_back(x);
  }
  const double exact = quantile_nearest_rank(all, prob);
  // relative tolerance for the heavy-tailed case
  EXPECT_NEAR(sketch.value(), exact, std::max(1.0, 4.0 * tol * exact));
}

INSTANTIATE_TEST_SUITE_P(Quantiles, P2Accuracy,
                         ::testing::Values(P2Case{0.5, 0.01}, P2Case{0.9, 0.01},
                                           P2Case{0.95, 0.01}, P2Case{0.99, 0.015}));

TEST(P2, MonotoneEstimatesForSortedInput) {
  // Feeding an increasing ramp: the estimate must stay within data range.
  P2Quantile p(0.99);
  for (int i = 1; i <= 10000; ++i) p.add(static_cast<double>(i));
  EXPECT_GT(p.value(), 9000.0);
  EXPECT_LE(p.value(), 10000.0);
}

TEST(P2, ConstantStream) {
  P2Quantile p(0.9);
  for (int i = 0; i < 1000; ++i) p.add(7.0);
  EXPECT_DOUBLE_EQ(p.value(), 7.0);
}

TEST(P2, NonFiniteIsAnError) {
  P2Quantile p(0.9);
  EXPECT_THROW(p.add(std::nan("")), PreconditionError);
}

TEST(P2, ExactAtTheFourSampleBoundary) {
  // Four samples still answer exactly; the fifth initializes the markers.
  P2Quantile p(0.5);
  std::vector<double> all{8.0, 2.0, 6.0, 4.0};
  for (double x : all) p.add(x);
  EXPECT_DOUBLE_EQ(p.value(), quantile_nearest_rank(all, 0.5));
  p.add(5.0);
  all.push_back(5.0);
  EXPECT_EQ(p.count(), 5u);
  // With exactly five samples the marker heights are the samples
  // themselves, so the estimate must still fall inside the data range.
  EXPECT_GE(p.value(), 2.0);
  EXPECT_LE(p.value(), 8.0);
}

TEST(P2, DuplicateHeavyStreamStaysNearExactQuantile) {
  // Long runs of equal values stress the marker-adjustment division; the
  // paper's bin counts are small integers, so ties dominate real streams.
  util::Xoshiro256 rng(31);
  P2Quantile sketch(0.95);
  std::vector<double> all;
  for (int i = 0; i < 20000; ++i) {
    const double x = std::floor(rng.uniform01() * 8.0);  // values in {0..7}
    sketch.add(x);
    all.push_back(x);
  }
  const double exact = quantile_interpolated(all, 0.95);
  EXPECT_NEAR(sketch.value(), exact, 1.0);  // within one discrete level
  EXPECT_GE(sketch.value(), 0.0);
  EXPECT_LE(sketch.value(), 7.0);
}

TEST(P2, MonotoneStreamsTrackInterpolatedQuantile) {
  // Sorted input is the adversarial ordering for streaming estimators:
  // early markers see only the low (or high) tail. Both directions must
  // stay close to the exact interpolated quantile.
  std::vector<double> ascending, descending;
  for (int i = 1; i <= 20000; ++i) ascending.push_back(static_cast<double>(i));
  descending.assign(ascending.rbegin(), ascending.rend());

  for (const auto& stream : {ascending, descending}) {
    P2Quantile sketch(0.9);
    for (double x : stream) sketch.add(x);
    const double exact = quantile_interpolated(stream, 0.9);
    EXPECT_NEAR(sketch.value(), exact, 0.02 * 20000.0);
  }
}

}  // namespace
}  // namespace monohids::stats
