#include "stats/empirical.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace monohids::stats {
namespace {

EmpiricalDistribution dist(std::vector<double> v) {
  return EmpiricalDistribution(std::move(v));
}

TEST(Empirical, BasicStatistics) {
  const auto d = dist({4, 1, 3, 2});
  EXPECT_EQ(d.size(), 4u);
  EXPECT_DOUBLE_EQ(d.min(), 1.0);
  EXPECT_DOUBLE_EQ(d.max(), 4.0);
  EXPECT_DOUBLE_EQ(d.mean(), 2.5);
  EXPECT_DOUBLE_EQ(d.variance(), 1.25);
  EXPECT_DOUBLE_EQ(d.stddev(), std::sqrt(1.25));
}

TEST(Empirical, SamplesAreSorted) {
  const auto d = dist({3, 1, 2});
  const auto s = d.samples();
  EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
}

TEST(Empirical, NonFiniteSamplesAreAnError) {
  EXPECT_THROW(dist({1.0, std::numeric_limits<double>::infinity()}), PreconditionError);
  EXPECT_THROW(dist({std::nan("")}), PreconditionError);
}

TEST(Empirical, EmptyQueriesAreErrors) {
  const EmpiricalDistribution d;
  EXPECT_TRUE(d.empty());
  EXPECT_THROW((void)d.min(), PreconditionError);
  EXPECT_THROW((void)d.mean(), PreconditionError);
  EXPECT_THROW((void)d.cdf(0.0), PreconditionError);
}

TEST(Empirical, CdfCountsInclusively) {
  const auto d = dist({1, 2, 2, 3});
  EXPECT_DOUBLE_EQ(d.cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf(1.0), 0.25);
  EXPECT_DOUBLE_EQ(d.cdf(2.0), 0.75);
  EXPECT_DOUBLE_EQ(d.cdf(3.0), 1.0);
  EXPECT_DOUBLE_EQ(d.cdf(99.0), 1.0);
}

TEST(Empirical, ExceedanceIsComplementOfCdf) {
  const auto d = dist({1, 2, 3, 4});
  for (double x : {0.0, 1.5, 2.0, 4.0, 5.0}) {
    EXPECT_DOUBLE_EQ(d.exceedance(x), 1.0 - d.cdf(x));
  }
}

TEST(Empirical, ExceedanceIsTheDetectorFalsePositiveRate) {
  // A threshold at the 99th percentile leaves at most 1% strictly above.
  util::Xoshiro256 rng(5);
  std::vector<double> v;
  for (int i = 0; i < 10000; ++i) v.push_back(rng.uniform01() * 1000.0);
  const auto d = dist(std::move(v));
  EXPECT_LE(d.exceedance(d.quantile(0.99)), 0.01 + 1e-9);
}

TEST(Empirical, ShiftedCdfMatchesManualShift) {
  const auto d = dist({10, 20, 30});
  // P(X + 5 <= 20) = P(X <= 15) = 1/3
  EXPECT_DOUBLE_EQ(d.shifted_cdf(5.0, 20.0), 1.0 / 3.0);
  // P(X + 25 <= 20) = P(X <= -5) = 0
  EXPECT_DOUBLE_EQ(d.shifted_cdf(25.0, 20.0), 0.0);
}

TEST(Empirical, MaxHiddenShiftSatisfiesEvasionTarget) {
  util::Xoshiro256 rng(9);
  std::vector<double> v;
  for (int i = 0; i < 5000; ++i) v.push_back(rng.uniform01() * 100.0);
  const auto d = dist(std::move(v));
  const double t = d.quantile(0.99);
  const double b = d.max_hidden_shift(t, 0.9);
  EXPECT_GT(b, 0.0);
  // The attack must evade with at least the target probability...
  EXPECT_GE(d.shifted_cdf(b, t), 0.9);
  // ...and adding a bit more volume must break the guarantee (maximality).
  EXPECT_LT(d.shifted_cdf(b + 1.0, t), 0.9);
}

TEST(Empirical, MaxHiddenShiftZeroWhenThresholdTooTight) {
  const auto d = dist({10, 20, 30});
  // Threshold below the 90th-percentile value: no room at all.
  EXPECT_DOUBLE_EQ(d.max_hidden_shift(5.0, 0.9), 0.0);
}

TEST(Empirical, MergePoolsAllSamples) {
  const std::vector<EmpiricalDistribution> parts{dist({1, 2}), dist({3}), dist({4, 5, 6})};
  const auto merged = EmpiricalDistribution::merge(parts);
  EXPECT_EQ(merged.size(), 6u);
  EXPECT_DOUBLE_EQ(merged.min(), 1.0);
  EXPECT_DOUBLE_EQ(merged.max(), 6.0);
  EXPECT_DOUBLE_EQ(merged.mean(), 3.5);
}

TEST(Empirical, MergedQuantileDominatedByHeavyPart) {
  // The homogeneous-policy effect: one heavy user drags the pooled
  // threshold far above the light users' personal ones.
  std::vector<double> light(990, 1.0);
  std::vector<double> heavy(10, 1000.0);
  const std::vector<EmpiricalDistribution> parts{dist(std::move(light)),
                                                 dist(std::move(heavy))};
  const auto merged = EmpiricalDistribution::merge(parts);
  EXPECT_DOUBLE_EQ(merged.quantile(0.99), 1.0);
  EXPECT_DOUBLE_EQ(merged.quantile(0.995), 1000.0);
}

TEST(Empirical, MergeOfNothingIsEmpty) {
  const std::vector<EmpiricalDistribution> none;
  EXPECT_TRUE(EmpiricalDistribution::merge(none).empty());
}

TEST(Empirical, MergeSkipsEmptyParts) {
  const std::vector<EmpiricalDistribution> parts{EmpiricalDistribution{}, dist({2, 1}),
                                                 EmpiricalDistribution{}};
  const auto merged = EmpiricalDistribution::merge(parts);
  EXPECT_EQ(merged.size(), 2u);
  EXPECT_DOUBLE_EQ(merged.min(), 1.0);
  EXPECT_DOUBLE_EQ(merged.max(), 2.0);
}

TEST(Empirical, MergeKeepsSamplesSortedWithDuplicates) {
  const std::vector<EmpiricalDistribution> parts{dist({5, 1, 5}), dist({3, 5, 1})};
  const auto merged = EmpiricalDistribution::merge(parts);
  ASSERT_EQ(merged.size(), 6u);
  const auto s = merged.samples();
  EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
  EXPECT_EQ(std::count(s.begin(), s.end(), 5.0), 3);
  // Pooled queries agree with a flat rebuild from the concatenated samples.
  const auto flat = dist({5, 1, 5, 3, 5, 1});
  for (double q : {0.25, 0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(merged.quantile(q), flat.quantile(q));
    EXPECT_DOUBLE_EQ(merged.quantile_interpolated(q), flat.quantile_interpolated(q));
  }
  EXPECT_DOUBLE_EQ(merged.cdf(3.0), flat.cdf(3.0));
}

TEST(Empirical, MergeIsOrderInsensitive) {
  const std::vector<EmpiricalDistribution> ab{dist({1, 4}), dist({2, 3})};
  const std::vector<EmpiricalDistribution> ba{dist({2, 3}), dist({1, 4})};
  const auto m1 = EmpiricalDistribution::merge(ab);
  const auto m2 = EmpiricalDistribution::merge(ba);
  const auto s1 = m1.samples();
  const auto s2 = m2.samples();
  ASSERT_TRUE(std::equal(s1.begin(), s1.end(), s2.begin(), s2.end()));
}

TEST(Empirical, QuantileMatchesNearestRankDefinition) {
  const auto d = dist({1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(d.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.99), 5.0);
  EXPECT_DOUBLE_EQ(d.quantile_interpolated(0.5), 3.0);
}

TEST(Empirical, CopySharesSortedArena) {
  const auto original = dist({3, 1, 2});
  const auto copy = original;  // zero-copy: pointer + span, not samples
  EXPECT_EQ(copy.samples().data(), original.samples().data());
  EXPECT_TRUE(copy.owns_samples());
}

TEST(Empirical, FromSortedMatchesSortingConstructor) {
  const auto sorted = EmpiricalDistribution::from_sorted({1, 2, 2, 7});
  const auto resorted = dist({7, 2, 1, 2});
  const auto a = sorted.samples();
  const auto b = resorted.samples();
  ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
  EXPECT_DOUBLE_EQ(sorted.quantile(0.5), resorted.quantile(0.5));
}

TEST(Empirical, ViewOfSortedAnswersOwningQueries) {
  const std::vector<double> buffer{1, 2, 2, 5, 9};
  const auto view = EmpiricalDistribution::view_of_sorted(buffer);
  const auto owning = dist({9, 5, 2, 2, 1});
  EXPECT_FALSE(view.owns_samples());
  EXPECT_EQ(view.samples().data(), buffer.data());
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(view.quantile(q), owning.quantile(q));
  }
  for (double x : {0.0, 2.0, 5.5, 9.0}) {
    EXPECT_DOUBLE_EQ(view.cdf(x), owning.cdf(x));
    EXPECT_DOUBLE_EQ(view.exceedance(x), owning.exceedance(x));
  }
  EXPECT_DOUBLE_EQ(view.mean(), owning.mean());
  EXPECT_DOUBLE_EQ(view.max_hidden_shift(5.0, 0.8), owning.max_hidden_shift(5.0, 0.8));
}

TEST(Empirical, MergeSortedSpansMatchesMergeOnRandomizedInputs) {
  util::Xoshiro256 rng(12345);
  std::vector<double> buffer;
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t part_count = 1 + static_cast<std::size_t>(rng.uniform01() * 7.0);
    std::vector<EmpiricalDistribution> parts;
    for (std::size_t p = 0; p < part_count; ++p) {
      const auto n = static_cast<std::size_t>(rng.uniform01() * 40.0);
      std::vector<double> samples;
      samples.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        // Coarse grid forces cross-part duplicates, the k-way merge's
        // interesting case.
        samples.push_back(std::floor(rng.uniform01() * 20.0));
      }
      parts.emplace_back(std::move(samples));
    }
    std::vector<std::span<const double>> spans;
    for (const auto& p : parts) spans.push_back(p.samples());
    merge_sorted_spans(spans, buffer);  // buffer deliberately reused across trials

    const auto reference = EmpiricalDistribution::merge(parts);
    const auto expected = reference.samples();
    ASSERT_EQ(buffer.size(), expected.size()) << "trial " << trial;
    ASSERT_TRUE(std::equal(buffer.begin(), buffer.end(), expected.begin(), expected.end()))
        << "trial " << trial;

    // And merge() itself equals concatenate-then-sort.
    std::vector<double> concat;
    for (const auto& p : parts) {
      const auto s = p.samples();
      concat.insert(concat.end(), s.begin(), s.end());
    }
    const auto flat_dist = EmpiricalDistribution(std::move(concat));
    const auto flat = flat_dist.samples();
    ASSERT_TRUE(std::equal(flat.begin(), flat.end(), expected.begin(), expected.end()))
        << "trial " << trial;
  }
}

TEST(Empirical, MergeSortedSpansHandlesEmptyParts) {
  std::vector<double> buffer{99, 98};  // stale contents must be cleared
  merge_sorted_spans({}, buffer);
  EXPECT_TRUE(buffer.empty());

  const std::vector<double> a{1, 3};
  const std::vector<double> empty;
  const std::vector<std::span<const double>> spans{a, empty, a};
  merge_sorted_spans(spans, buffer);
  EXPECT_EQ(buffer, (std::vector<double>{1, 1, 3, 3}));
}

}  // namespace
}  // namespace monohids::stats
