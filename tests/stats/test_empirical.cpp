#include "stats/empirical.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace monohids::stats {
namespace {

EmpiricalDistribution dist(std::vector<double> v) {
  return EmpiricalDistribution(std::move(v));
}

TEST(Empirical, BasicStatistics) {
  const auto d = dist({4, 1, 3, 2});
  EXPECT_EQ(d.size(), 4u);
  EXPECT_DOUBLE_EQ(d.min(), 1.0);
  EXPECT_DOUBLE_EQ(d.max(), 4.0);
  EXPECT_DOUBLE_EQ(d.mean(), 2.5);
  EXPECT_DOUBLE_EQ(d.variance(), 1.25);
  EXPECT_DOUBLE_EQ(d.stddev(), std::sqrt(1.25));
}

TEST(Empirical, SamplesAreSorted) {
  const auto d = dist({3, 1, 2});
  const auto s = d.samples();
  EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
}

TEST(Empirical, NonFiniteSamplesAreAnError) {
  EXPECT_THROW(dist({1.0, std::numeric_limits<double>::infinity()}), PreconditionError);
  EXPECT_THROW(dist({std::nan("")}), PreconditionError);
}

TEST(Empirical, EmptyQueriesAreErrors) {
  const EmpiricalDistribution d;
  EXPECT_TRUE(d.empty());
  EXPECT_THROW((void)d.min(), PreconditionError);
  EXPECT_THROW((void)d.mean(), PreconditionError);
  EXPECT_THROW((void)d.cdf(0.0), PreconditionError);
}

TEST(Empirical, CdfCountsInclusively) {
  const auto d = dist({1, 2, 2, 3});
  EXPECT_DOUBLE_EQ(d.cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf(1.0), 0.25);
  EXPECT_DOUBLE_EQ(d.cdf(2.0), 0.75);
  EXPECT_DOUBLE_EQ(d.cdf(3.0), 1.0);
  EXPECT_DOUBLE_EQ(d.cdf(99.0), 1.0);
}

TEST(Empirical, ExceedanceIsComplementOfCdf) {
  const auto d = dist({1, 2, 3, 4});
  for (double x : {0.0, 1.5, 2.0, 4.0, 5.0}) {
    EXPECT_DOUBLE_EQ(d.exceedance(x), 1.0 - d.cdf(x));
  }
}

TEST(Empirical, ExceedanceIsTheDetectorFalsePositiveRate) {
  // A threshold at the 99th percentile leaves at most 1% strictly above.
  util::Xoshiro256 rng(5);
  std::vector<double> v;
  for (int i = 0; i < 10000; ++i) v.push_back(rng.uniform01() * 1000.0);
  const auto d = dist(std::move(v));
  EXPECT_LE(d.exceedance(d.quantile(0.99)), 0.01 + 1e-9);
}

TEST(Empirical, ShiftedCdfMatchesManualShift) {
  const auto d = dist({10, 20, 30});
  // P(X + 5 <= 20) = P(X <= 15) = 1/3
  EXPECT_DOUBLE_EQ(d.shifted_cdf(5.0, 20.0), 1.0 / 3.0);
  // P(X + 25 <= 20) = P(X <= -5) = 0
  EXPECT_DOUBLE_EQ(d.shifted_cdf(25.0, 20.0), 0.0);
}

TEST(Empirical, MaxHiddenShiftSatisfiesEvasionTarget) {
  util::Xoshiro256 rng(9);
  std::vector<double> v;
  for (int i = 0; i < 5000; ++i) v.push_back(rng.uniform01() * 100.0);
  const auto d = dist(std::move(v));
  const double t = d.quantile(0.99);
  const double b = d.max_hidden_shift(t, 0.9);
  EXPECT_GT(b, 0.0);
  // The attack must evade with at least the target probability...
  EXPECT_GE(d.shifted_cdf(b, t), 0.9);
  // ...and adding a bit more volume must break the guarantee (maximality).
  EXPECT_LT(d.shifted_cdf(b + 1.0, t), 0.9);
}

TEST(Empirical, MaxHiddenShiftZeroWhenThresholdTooTight) {
  const auto d = dist({10, 20, 30});
  // Threshold below the 90th-percentile value: no room at all.
  EXPECT_DOUBLE_EQ(d.max_hidden_shift(5.0, 0.9), 0.0);
}

TEST(Empirical, MergePoolsAllSamples) {
  const std::vector<EmpiricalDistribution> parts{dist({1, 2}), dist({3}), dist({4, 5, 6})};
  const auto merged = EmpiricalDistribution::merge(parts);
  EXPECT_EQ(merged.size(), 6u);
  EXPECT_DOUBLE_EQ(merged.min(), 1.0);
  EXPECT_DOUBLE_EQ(merged.max(), 6.0);
  EXPECT_DOUBLE_EQ(merged.mean(), 3.5);
}

TEST(Empirical, MergedQuantileDominatedByHeavyPart) {
  // The homogeneous-policy effect: one heavy user drags the pooled
  // threshold far above the light users' personal ones.
  std::vector<double> light(990, 1.0);
  std::vector<double> heavy(10, 1000.0);
  const std::vector<EmpiricalDistribution> parts{dist(std::move(light)),
                                                 dist(std::move(heavy))};
  const auto merged = EmpiricalDistribution::merge(parts);
  EXPECT_DOUBLE_EQ(merged.quantile(0.99), 1.0);
  EXPECT_DOUBLE_EQ(merged.quantile(0.995), 1000.0);
}

TEST(Empirical, MergeOfNothingIsEmpty) {
  const std::vector<EmpiricalDistribution> none;
  EXPECT_TRUE(EmpiricalDistribution::merge(none).empty());
}

TEST(Empirical, MergeSkipsEmptyParts) {
  const std::vector<EmpiricalDistribution> parts{EmpiricalDistribution{}, dist({2, 1}),
                                                 EmpiricalDistribution{}};
  const auto merged = EmpiricalDistribution::merge(parts);
  EXPECT_EQ(merged.size(), 2u);
  EXPECT_DOUBLE_EQ(merged.min(), 1.0);
  EXPECT_DOUBLE_EQ(merged.max(), 2.0);
}

TEST(Empirical, MergeKeepsSamplesSortedWithDuplicates) {
  const std::vector<EmpiricalDistribution> parts{dist({5, 1, 5}), dist({3, 5, 1})};
  const auto merged = EmpiricalDistribution::merge(parts);
  ASSERT_EQ(merged.size(), 6u);
  const auto s = merged.samples();
  EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
  EXPECT_EQ(std::count(s.begin(), s.end(), 5.0), 3);
  // Pooled queries agree with a flat rebuild from the concatenated samples.
  const auto flat = dist({5, 1, 5, 3, 5, 1});
  for (double q : {0.25, 0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(merged.quantile(q), flat.quantile(q));
    EXPECT_DOUBLE_EQ(merged.quantile_interpolated(q), flat.quantile_interpolated(q));
  }
  EXPECT_DOUBLE_EQ(merged.cdf(3.0), flat.cdf(3.0));
}

TEST(Empirical, MergeIsOrderInsensitive) {
  const std::vector<EmpiricalDistribution> ab{dist({1, 4}), dist({2, 3})};
  const std::vector<EmpiricalDistribution> ba{dist({2, 3}), dist({1, 4})};
  const auto m1 = EmpiricalDistribution::merge(ab);
  const auto m2 = EmpiricalDistribution::merge(ba);
  const auto s1 = m1.samples();
  const auto s2 = m2.samples();
  ASSERT_TRUE(std::equal(s1.begin(), s1.end(), s2.begin(), s2.end()));
}

TEST(Empirical, QuantileMatchesNearestRankDefinition) {
  const auto d = dist({1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(d.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.99), 5.0);
  EXPECT_DOUBLE_EQ(d.quantile_interpolated(0.5), 3.0);
}

}  // namespace
}  // namespace monohids::stats
