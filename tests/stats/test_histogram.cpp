#include "stats/histogram.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace monohids::stats {
namespace {

TEST(LinearHistogram, CountsFallIntoCorrectBins) {
  LinearHistogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.99);
  h.add(5.0);
  EXPECT_EQ(h.count_at(0), 1u);
  EXPECT_EQ(h.count_at(9), 1u);
  EXPECT_EQ(h.count_at(5), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(LinearHistogram, UnderflowAndOverflow) {
  LinearHistogram h(0.0, 10.0, 5);
  h.add(-1.0);
  h.add(10.0);  // hi is exclusive
  h.add(100.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(LinearHistogram, WeightedAdd) {
  LinearHistogram h(0.0, 10.0, 2);
  h.add(1.0, 7);
  EXPECT_EQ(h.count_at(0), 7u);
}

TEST(LinearHistogram, BinEdges) {
  LinearHistogram h(0.0, 10.0, 4);
  const auto [lo, hi] = h.bin_edges(1);
  EXPECT_DOUBLE_EQ(lo, 2.5);
  EXPECT_DOUBLE_EQ(hi, 5.0);
}

TEST(LinearHistogram, QuantileApproximatesExact) {
  util::Xoshiro256 rng(4);
  LinearHistogram h(0.0, 1.0, 200);
  for (int i = 0; i < 50000; ++i) h.add(rng.uniform01());
  EXPECT_NEAR(h.quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(h.quantile(0.9), 0.9, 0.02);
  EXPECT_NEAR(h.quantile(0.99), 0.99, 0.02);
}

TEST(LinearHistogram, EmptyQuantileIsAnError) {
  LinearHistogram h(0.0, 1.0, 4);
  EXPECT_THROW((void)h.quantile(0.5), PreconditionError);
}

TEST(LinearHistogram, InvalidConstructionIsAnError) {
  EXPECT_THROW(LinearHistogram(1.0, 1.0, 4), PreconditionError);
  EXPECT_THROW(LinearHistogram(0.0, 1.0, 0), PreconditionError);
}

TEST(LogHistogram, SpansDecades) {
  LogHistogram h(1.0, 10000.0, 10);  // 4 decades, 40 bins
  EXPECT_EQ(h.bin_count(), 40u);
  h.add(1.5);
  h.add(150.0);
  h.add(9999.0);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.overflow(), 0u);
}

TEST(LogHistogram, NonPositiveValuesCountedSeparately) {
  LogHistogram h(1.0, 100.0, 5);
  h.add(0.0);
  h.add(-3.0);
  h.add(0.5);  // below lo
  EXPECT_EQ(h.zero_or_negative(), 3u);
}

TEST(LogHistogram, QuantileAcrossDecades) {
  // Heavy-tailed data: most mass at small values, a few huge ones.
  LogHistogram h(1.0, 100000.0, 20);
  for (int i = 0; i < 990; ++i) h.add(10.0);
  for (int i = 0; i < 10; ++i) h.add(50000.0);
  EXPECT_NEAR(h.quantile(0.5), 10.0, 2.0);
  EXPECT_GT(h.quantile(0.995), 10000.0);
}

TEST(LogHistogram, ZeroMassMapsToZeroQuantile) {
  LogHistogram h(1.0, 100.0, 5);
  for (int i = 0; i < 99; ++i) h.add(0.0);
  h.add(50.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(LogHistogram, InvalidRangeIsAnError) {
  EXPECT_THROW(LogHistogram(0.0, 10.0, 4), PreconditionError);
  EXPECT_THROW(LogHistogram(10.0, 1.0, 4), PreconditionError);
}

}  // namespace
}  // namespace monohids::stats
