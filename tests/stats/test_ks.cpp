#include "stats/ks.hpp"

#include <gtest/gtest.h>

#include "stats/sampling.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace monohids::stats {
namespace {

TEST(Ks, IdenticalSamplesHaveZeroDistance) {
  const std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(ks_statistic(v, v), 0.0);
}

TEST(Ks, DisjointSupportsApproachOne) {
  const std::vector<double> lo{1, 2, 3};
  const std::vector<double> hi{100, 200, 300};
  EXPECT_DOUBLE_EQ(ks_statistic(lo, hi), 1.0);
}

TEST(Ks, KnownHandComputedValue) {
  // F_a steps at 1,2,3,4 (quarters); F_b steps at 3,4,5,6.
  // At x=2: F_a=0.5, F_b=0 -> D = 0.5.
  const std::vector<double> a{1, 2, 3, 4};
  const std::vector<double> b{3, 4, 5, 6};
  EXPECT_DOUBLE_EQ(ks_statistic(a, b), 0.5);
}

TEST(Ks, SymmetricInArguments) {
  util::Xoshiro256 rng(1);
  std::vector<double> a, b;
  for (int i = 0; i < 500; ++i) a.push_back(rng.uniform01());
  for (int i = 0; i < 300; ++i) b.push_back(rng.uniform01() * 2);
  EXPECT_DOUBLE_EQ(ks_statistic(a, b), ks_statistic(b, a));
}

TEST(Ks, SameDistributionSamplesAreClose) {
  util::Xoshiro256 rng(2);
  std::vector<double> a, b;
  for (int i = 0; i < 5000; ++i) a.push_back(rng.uniform01());
  for (int i = 0; i < 5000; ++i) b.push_back(rng.uniform01());
  EXPECT_LT(ks_statistic(a, b), 0.05);
}

TEST(Ks, ScaleShiftIsDetected) {
  // Same shape, 3x scale: D of uniform(0,1) vs uniform(0,3) is 2/3.
  util::Xoshiro256 rng(3);
  std::vector<double> a, b;
  for (int i = 0; i < 20000; ++i) a.push_back(rng.uniform01());
  for (int i = 0; i < 20000; ++i) b.push_back(rng.uniform01() * 3);
  EXPECT_NEAR(ks_statistic(a, b), 2.0 / 3.0, 0.02);
}

TEST(Ks, BoundedInUnitInterval) {
  util::Xoshiro256 rng(4);
  const LogNormalSampler s1(0.0, 1.0), s2(2.0, 0.5);
  std::vector<double> a, b;
  for (int i = 0; i < 1000; ++i) {
    a.push_back(s1.sample(rng));
    b.push_back(s2.sample(rng));
  }
  const double d = ks_statistic(a, b);
  EXPECT_GE(d, 0.0);
  EXPECT_LE(d, 1.0);
}

TEST(Ks, TiesHandled) {
  const std::vector<double> a{1, 1, 1, 2};
  const std::vector<double> b{1, 2, 2, 2};
  // At x=1: F_a=0.75, F_b=0.25 -> D=0.5.
  EXPECT_DOUBLE_EQ(ks_statistic(a, b), 0.5);
}

TEST(Ks, EmptySampleIsAnError) {
  const std::vector<double> v{1.0};
  EXPECT_THROW((void)ks_statistic(v, {}), PreconditionError);
  EXPECT_THROW((void)ks_statistic({}, v), PreconditionError);
}

}  // namespace
}  // namespace monohids::stats
