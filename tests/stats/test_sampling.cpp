#include "stats/sampling.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/error.hpp"

namespace monohids::stats {
namespace {

TEST(LogNormal, MedianAndMeanFormulas) {
  const LogNormalSampler s(1.0, 0.5);
  EXPECT_DOUBLE_EQ(s.median(), std::exp(1.0));
  EXPECT_DOUBLE_EQ(s.mean(), std::exp(1.0 + 0.125));
}

TEST(LogNormal, EmpiricalMomentsMatch) {
  util::Xoshiro256 rng(41);
  const LogNormalSampler s(0.5, 0.4);
  double acc = 0.0;
  std::vector<double> values;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = s.sample(rng);
    EXPECT_GT(v, 0.0);
    acc += v;
    values.push_back(v);
  }
  EXPECT_NEAR(acc / n, s.mean(), s.mean() * 0.02);
  std::nth_element(values.begin(), values.begin() + n / 2, values.end());
  EXPECT_NEAR(values[n / 2], s.median(), s.median() * 0.02);
}

TEST(Pareto, InvalidParametersAreErrors) {
  EXPECT_THROW(ParetoSampler(0.0, 1.0), PreconditionError);
  EXPECT_THROW(ParetoSampler(1.0, 0.0), PreconditionError);
}

TEST(Pareto, SamplesRespectScaleFloor) {
  util::Xoshiro256 rng(43);
  const ParetoSampler s(2.0, 1.5);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(s.sample(rng), 2.0);
}

TEST(Pareto, TailExponentMatches) {
  // P(X > 2*xm) should be 2^-alpha.
  util::Xoshiro256 rng(44);
  const double alpha = 1.5;
  const ParetoSampler s(1.0, alpha);
  int exceed = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (s.sample(rng) > 2.0) ++exceed;
  }
  EXPECT_NEAR(static_cast<double>(exceed) / n, std::pow(2.0, -alpha), 0.01);
}

TEST(Zipf, RanksAreOneBasedAndBounded) {
  util::Xoshiro256 rng(45);
  const ZipfSampler s(50, 1.0);
  for (int i = 0; i < 10000; ++i) {
    const auto r = s.sample(rng);
    EXPECT_GE(r, 1u);
    EXPECT_LE(r, 50u);
  }
}

TEST(Zipf, HeadIsMorePopularThanTail) {
  util::Xoshiro256 rng(46);
  const ZipfSampler s(100, 1.2);
  int head = 0, tail = 0;
  for (int i = 0; i < 50000; ++i) {
    const auto r = s.sample(rng);
    if (r <= 5) ++head;
    if (r > 50) ++tail;
  }
  EXPECT_GT(head, tail * 2);
}

TEST(Zipf, ZeroExponentIsUniform) {
  util::Xoshiro256 rng(47);
  const ZipfSampler s(10, 0.0);
  std::vector<int> counts(11, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[s.sample(rng)];
  for (int r = 1; r <= 10; ++r) {
    EXPECT_NEAR(static_cast<double>(counts[r]) / n, 0.1, 0.01);
  }
}

TEST(Poisson, ZeroMeanIsAlwaysZero) {
  util::Xoshiro256 rng(48);
  EXPECT_EQ(sample_poisson(rng, 0.0), 0u);
}

class PoissonMoments : public ::testing::TestWithParam<double> {};

TEST_P(PoissonMoments, MeanAndVarianceMatch) {
  const double mean = GetParam();
  util::Xoshiro256 rng(49);
  double acc = 0.0, acc2 = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double k = static_cast<double>(sample_poisson(rng, mean));
    acc += k;
    acc2 += k * k;
  }
  const double m = acc / n;
  const double var = acc2 / n - m * m;
  EXPECT_NEAR(m, mean, std::max(0.05, mean * 0.03));
  EXPECT_NEAR(var, mean, std::max(0.1, mean * 0.06));
}

// Spans the inversion (< 30) and normal-approximation (>= 30) regimes.
INSTANTIATE_TEST_SUITE_P(Means, PoissonMoments,
                         ::testing::Values(0.1, 1.0, 5.0, 20.0, 50.0, 200.0));

TEST(Exponential, MeanIsInverseRate) {
  util::Xoshiro256 rng(50);
  double acc = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) acc += sample_exponential(rng, 4.0);
  EXPECT_NEAR(acc / n, 0.25, 0.01);
}

TEST(Exponential, InvalidRateIsAnError) {
  util::Xoshiro256 rng(51);
  EXPECT_THROW((void)sample_exponential(rng, 0.0), PreconditionError);
}

TEST(UniformInt, StaysInRangeAndCoversIt) {
  util::Xoshiro256 rng(52);
  std::vector<int> seen(6, 0);
  for (int i = 0; i < 10000; ++i) {
    const auto v = sample_uniform_int(rng, 10, 15);
    ASSERT_GE(v, 10u);
    ASSERT_LE(v, 15u);
    ++seen[v - 10];
  }
  for (int c : seen) EXPECT_GT(c, 0);
}

TEST(UniformInt, DegenerateRange) {
  util::Xoshiro256 rng(53);
  EXPECT_EQ(sample_uniform_int(rng, 7, 7), 7u);
}

TEST(UniformInt, InvertedRangeIsAnError) {
  util::Xoshiro256 rng(54);
  EXPECT_THROW((void)sample_uniform_int(rng, 5, 4), PreconditionError);
}

TEST(StandardNormal, MomentsMatch) {
  util::Xoshiro256 rng(55);
  double acc = 0.0, acc2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double z = sample_standard_normal(rng);
    acc += z;
    acc2 += z * z;
  }
  EXPECT_NEAR(acc / n, 0.0, 0.01);
  EXPECT_NEAR(acc2 / n, 1.0, 0.02);
}

}  // namespace
}  // namespace monohids::stats
