#include "stats/sampling.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/error.hpp"

namespace monohids::stats {
namespace {

TEST(LogNormal, MedianAndMeanFormulas) {
  const LogNormalSampler s(1.0, 0.5);
  EXPECT_DOUBLE_EQ(s.median(), std::exp(1.0));
  EXPECT_DOUBLE_EQ(s.mean(), std::exp(1.0 + 0.125));
}

TEST(LogNormal, EmpiricalMomentsMatch) {
  util::Xoshiro256 rng(41);
  const LogNormalSampler s(0.5, 0.4);
  double acc = 0.0;
  std::vector<double> values;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = s.sample(rng);
    EXPECT_GT(v, 0.0);
    acc += v;
    values.push_back(v);
  }
  EXPECT_NEAR(acc / n, s.mean(), s.mean() * 0.02);
  std::nth_element(values.begin(), values.begin() + n / 2, values.end());
  EXPECT_NEAR(values[n / 2], s.median(), s.median() * 0.02);
}

TEST(Pareto, InvalidParametersAreErrors) {
  EXPECT_THROW(ParetoSampler(0.0, 1.0), PreconditionError);
  EXPECT_THROW(ParetoSampler(1.0, 0.0), PreconditionError);
}

TEST(Pareto, SamplesRespectScaleFloor) {
  util::Xoshiro256 rng(43);
  const ParetoSampler s(2.0, 1.5);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(s.sample(rng), 2.0);
}

TEST(Pareto, TailExponentMatches) {
  // P(X > 2*xm) should be 2^-alpha.
  util::Xoshiro256 rng(44);
  const double alpha = 1.5;
  const ParetoSampler s(1.0, alpha);
  int exceed = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (s.sample(rng) > 2.0) ++exceed;
  }
  EXPECT_NEAR(static_cast<double>(exceed) / n, std::pow(2.0, -alpha), 0.01);
}

TEST(Zipf, RanksAreOneBasedAndBounded) {
  util::Xoshiro256 rng(45);
  const ZipfSampler s(50, 1.0);
  for (int i = 0; i < 10000; ++i) {
    const auto r = s.sample(rng);
    EXPECT_GE(r, 1u);
    EXPECT_LE(r, 50u);
  }
}

TEST(Zipf, HeadIsMorePopularThanTail) {
  util::Xoshiro256 rng(46);
  const ZipfSampler s(100, 1.2);
  int head = 0, tail = 0;
  for (int i = 0; i < 50000; ++i) {
    const auto r = s.sample(rng);
    if (r <= 5) ++head;
    if (r > 50) ++tail;
  }
  EXPECT_GT(head, tail * 2);
}

TEST(Zipf, ZeroExponentIsUniform) {
  util::Xoshiro256 rng(47);
  const ZipfSampler s(10, 0.0);
  std::vector<int> counts(11, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[s.sample(rng)];
  for (int r = 1; r <= 10; ++r) {
    EXPECT_NEAR(static_cast<double>(counts[r]) / n, 0.1, 0.01);
  }
}

TEST(Poisson, ZeroMeanIsAlwaysZero) {
  util::Xoshiro256 rng(48);
  EXPECT_EQ(sample_poisson(rng, 0.0), 0u);
}

class PoissonMoments : public ::testing::TestWithParam<double> {};

TEST_P(PoissonMoments, MeanAndVarianceMatch) {
  const double mean = GetParam();
  util::Xoshiro256 rng(49);
  double acc = 0.0, acc2 = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double k = static_cast<double>(sample_poisson(rng, mean));
    acc += k;
    acc2 += k * k;
  }
  const double m = acc / n;
  const double var = acc2 / n - m * m;
  EXPECT_NEAR(m, mean, std::max(0.05, mean * 0.03));
  EXPECT_NEAR(var, mean, std::max(0.1, mean * 0.06));
}

// Spans the inversion (< 30) and normal-approximation (>= 30) regimes.
INSTANTIATE_TEST_SUITE_P(Means, PoissonMoments,
                         ::testing::Values(0.1, 1.0, 5.0, 20.0, 50.0, 200.0));

TEST(Exponential, MeanIsInverseRate) {
  util::Xoshiro256 rng(50);
  double acc = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) acc += sample_exponential(rng, 4.0);
  EXPECT_NEAR(acc / n, 0.25, 0.01);
}

TEST(Exponential, InvalidRateIsAnError) {
  util::Xoshiro256 rng(51);
  EXPECT_THROW((void)sample_exponential(rng, 0.0), PreconditionError);
}

TEST(UniformInt, StaysInRangeAndCoversIt) {
  util::Xoshiro256 rng(52);
  std::vector<int> seen(6, 0);
  for (int i = 0; i < 10000; ++i) {
    const auto v = sample_uniform_int(rng, 10, 15);
    ASSERT_GE(v, 10u);
    ASSERT_LE(v, 15u);
    ++seen[v - 10];
  }
  for (int c : seen) EXPECT_GT(c, 0);
}

TEST(UniformInt, DegenerateRange) {
  util::Xoshiro256 rng(53);
  EXPECT_EQ(sample_uniform_int(rng, 7, 7), 7u);
}

TEST(UniformInt, InvertedRangeIsAnError) {
  util::Xoshiro256 rng(54);
  EXPECT_THROW((void)sample_uniform_int(rng, 5, 4), PreconditionError);
}

TEST(BatchSampling, PoissonPreparedMatchesPerCallDrawForDraw) {
  // The batch API's core contract: sample_poisson_prepared consumes exactly
  // the draws sample_poisson would, in the same order, with the same
  // results — across all three regimes (zero mean, Knuth inversion, normal
  // approximation) and interleaved arbitrarily.
  const std::vector<double> means = {0.0,  0.01, 0.6,  3.7, 29.999, 30.0,
                                     85.5, 0.0,  12.0, 400.0, 1e-9,  29.0};
  std::vector<batch::PoissonRow> rows(means.size());
  batch::prepare_poisson_rows(means, rows);

  util::Xoshiro256 per_call(321);
  util::Xoshiro256 prepared(321);
  for (int round = 0; round < 2000; ++round) {
    const std::size_t i = static_cast<std::size_t>(round) % means.size();
    ASSERT_EQ(sample_poisson(per_call, means[i]),
              batch::sample_poisson_prepared(prepared, rows[i]))
        << "round " << round;
  }
  // Same engine position afterwards == same total draw count.
  EXPECT_EQ(per_call(), prepared());
}

TEST(BatchSampling, UniformAndExponentialBatchesMatchPerCall) {
  util::Xoshiro256 a(77), b(77);
  std::vector<double> uniforms(257);
  batch::sample_uniform01_batch(a, uniforms);
  for (double u : uniforms) ASSERT_EQ(u, b.uniform01());

  std::vector<double> exps(131);
  batch::sample_exponential_batch(a, 0.05, exps);
  for (double e : exps) ASSERT_EQ(e, sample_exponential(b, 0.05));
  EXPECT_EQ(a(), b());
}

TEST(BatchSampling, BernoulliThresholdIsExactAtTheBoundary) {
  // (to_unit(m) < p) must equal (m < threshold) for EVERY draw word, which
  // reduces to exactness on the two words either side of the threshold.
  util::Xoshiro256 rng(99);
  std::vector<double> ps = {0.03, 0.2, 0.3, 0.45, 0.5, 1e-17, 1.0 - 1e-16};
  for (int i = 0; i < 200; ++i) ps.push_back(rng.uniform01());
  for (double p : ps) {
    const std::uint64_t t = batch::bernoulli_threshold(p);
    if (t > 0) {
      ASSERT_LT(batch::to_unit(t - 1), p) << p;
    }
    if (t < (std::uint64_t{1} << 53)) {
      ASSERT_GE(batch::to_unit(t), p) << p;
    }
  }
  EXPECT_EQ(batch::bernoulli_threshold(0.0), 0u);
  EXPECT_EQ(batch::bernoulli_threshold(1.0), std::uint64_t{1} << 53);
}

TEST(BatchSampling, KnuthZeroThresholdMatchesLoopEntry) {
  // Knuth inversion returns 0 iff the first uniform is <= exp(-mean);
  // the threshold must reproduce that decision exactly on raw words.
  util::Xoshiro256 rng(100);
  for (int i = 0; i < 200; ++i) {
    const double mean = rng.uniform01() * 29.99;
    const double limit = std::exp(-mean);
    const std::uint64_t t = batch::knuth_zero_threshold(limit);
    ASSERT_GE(t, 1u);
    ASSERT_LE(batch::to_unit(t - 1), limit) << mean;
    if (t <= (std::uint64_t{1} << 53)) {
      ASSERT_GT(batch::to_unit(t), limit) << mean;
    }
  }
}

TEST(BatchSampling, ParetoCountTableMatchesPowFormula) {
  // The table must reproduce min(floor(1/u^(1/shape)), cap) — the
  // pareto_count draw in trace/apps.cpp — for random words, for words
  // adjacent to every boundary, and identically via count and count_fast.
  struct Case {
    double shape;
    std::uint32_t cap;
  };
  for (const Case c : {Case{2.6, 40}, Case{1.55, 600}, Case{2.1, 100}, Case{0.8, 5}}) {
    const batch::ParetoCountTable table(c.shape, c.cap);
    const auto direct = [&](std::uint64_t m) {
      double u = batch::to_unit(m);
      if (u <= 0.0) u = 0x1.0p-53;
      const double v = 1.0 / std::pow(u, 1.0 / c.shape);
      return static_cast<std::uint32_t>(std::min<double>(v, c.cap));
    };
    util::Xoshiro256 rng(c.cap);
    for (int i = 0; i < 20000; ++i) {
      const std::uint64_t m = rng() >> 11;
      ASSERT_EQ(table.count(m), direct(m)) << m;
      ASSERT_EQ(table.count_fast(m), direct(m)) << m;
    }
    for (std::uint32_t k = 1; k < c.cap; ++k) {
      for (const std::uint64_t m :
           {table.boundary(k - 1), table.boundary(k - 1) + 1,
            table.boundary(k - 1) == 0 ? std::uint64_t{0} : table.boundary(k - 1) - 1}) {
        ASSERT_EQ(table.count(m), direct(m)) << m;
        ASSERT_EQ(table.count_fast(m), direct(m)) << m;
      }
    }
  }
}

TEST(BatchSampling, PreparedRowsRejectBadInput) {
  std::vector<double> means = {1.0, -0.5};
  std::vector<batch::PoissonRow> rows(2);
  EXPECT_THROW(batch::prepare_poisson_rows(means, rows), PreconditionError);
  std::vector<batch::PoissonRow> too_small(1);
  means[1] = 0.5;
  EXPECT_THROW(batch::prepare_poisson_rows(means, too_small), PreconditionError);
}

TEST(StandardNormal, MomentsMatch) {
  util::Xoshiro256 rng(55);
  double acc = 0.0, acc2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double z = sample_standard_normal(rng);
    acc += z;
    acc2 += z * z;
  }
  EXPECT_NEAR(acc / n, 0.0, 0.01);
  EXPECT_NEAR(acc2 / n, 1.0, 0.02);
}

}  // namespace
}  // namespace monohids::stats
