// Distribution tests for the v2 (32-bit, one-word-per-draw) sampling grain:
// exp_neg12 as a contract function, the exact inversion core, the
// one-word Poisson draw in both regimes, and the merged-draw CDF tables
// (PoissonSumCdf, BinomialCdf) against directly computed reference pmfs.
// These primitives ARE the v2 scenario draw contract (API_TOUR.md §16) —
// a behavioral change here silently regenerates every v2 artifact, so the
// suite pins semantics, not just plausibility.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

#include "stats/sampling.hpp"
#include "util/rng.hpp"

namespace monohids::stats {
namespace {

using batch::kCdfRowLen;
using batch::kNormalCutoff32;

TEST(ExpNeg12, TracksStdExpToContractPrecision) {
  // The documented bound is 1e-8 relative (degree-7 Horner truncation at
  // the ln2/2 reduction edge measures ~7e-9 worst case over a dense
  // 1.2M-point sweep); sweep the full domain densely.
  for (int i = 0; i <= 12000; ++i) {
    const double m = i / 1000.0;
    if (m >= kNormalCutoff32) break;
    const double got = batch::exp_neg12(m);
    const double want = std::exp(-m);
    ASSERT_NEAR(got, want, 1e-8 * want) << "m=" << m;
  }
  EXPECT_EQ(batch::exp_neg12(0.0), 1.0);
}

TEST(ExpNeg12, IsAPureFunctionOfItsArgument) {
  // Contract: identical doubles in, identical doubles out, every call.
  // (The SIMD count kernels mirror the same fma chain; this is the scalar
  // anchor they are differentially tested against.)
  for (const double m : {0.0, 0.3, 1.0, 2.718281828, 7.5, 11.999}) {
    EXPECT_EQ(batch::exp_neg12(m), batch::exp_neg12(m));
  }
}

TEST(PoissonInvCore, MatchesADirectCdfInversion) {
  // k(u) must be the smallest k with CDF(k) >= u, computed independently
  // here with long-double accumulation.
  for (const double mean : {0.05, 0.7, 3.0, 9.5, 11.9}) {
    const double p0 = batch::exp_neg12(mean);
    util::Philox4x32 rng(util::derive_seed(1, "inv-core", 0), 0);
    for (int i = 0; i < 20000; ++i) {
      const double u = rng.uniform01();
      long double pk = std::exp(-static_cast<long double>(mean));
      long double cum = pk;
      std::uint64_t want = 0;
      while (u > static_cast<double>(cum) && want + 1 < 256) {
        ++want;
        pk *= mean / static_cast<long double>(want);
        cum += pk;
      }
      ASSERT_EQ(batch::poisson_inv_core(u, mean, p0), want)
          << "mean=" << mean << " u=" << u;
    }
  }
}

TEST(SamplePoissonWord32, MomentsMatchInBothRegimes) {
  // Below the cutoff the draw is exact inversion; above it the one-word
  // inverse-CDF normal with continuity correction. Both must land the
  // Poisson mean and variance within sampling error.
  for (const double mean : {0.5, 4.0, 11.0, 20.0, 300.0}) {
    const double limit = mean < kNormalCutoff32 ? batch::exp_neg12(mean) : 0.0;
    util::Philox4x32 rng(util::derive_seed(2, "word32", 0), 0);
    const int n = 200000;
    double sum = 0.0, sum2 = 0.0;
    for (int i = 0; i < n; ++i) {
      const auto k =
          static_cast<double>(batch::sample_poisson_word32(rng(), mean, limit));
      sum += k;
      sum2 += k * k;
    }
    const double got_mean = sum / n;
    const double got_var = sum2 / n - got_mean * got_mean;
    EXPECT_NEAR(got_mean, mean, 5.0 * std::sqrt(mean / n) + 0.05) << "mean=" << mean;
    EXPECT_NEAR(got_var, mean, 0.05 * mean + 0.2) << "mean=" << mean;
  }
  EXPECT_EQ(batch::sample_poisson_word32(0x12345678u, 0.0, 1.0), 0u);
}

TEST(CdfRowScan, ThresholdSemanticsAreStrictlyGreater) {
  // k = #{j : w > t_j}: a word exactly equal to a threshold does NOT clear
  // it, and the 2^32-1 sentinel is never cleared by any word.
  std::array<std::uint32_t, kCdfRowLen> row;
  row.fill(0xffffffffu);
  row[0] = 1000;
  row[1] = 2000;
  row[2] = 3000;
  EXPECT_EQ(batch::cdf_row_scan(row.data(), 0), 0u);
  EXPECT_EQ(batch::cdf_row_scan(row.data(), 1000), 0u);
  EXPECT_EQ(batch::cdf_row_scan(row.data(), 1001), 1u);
  EXPECT_EQ(batch::cdf_row_scan(row.data(), 2000), 1u);
  EXPECT_EQ(batch::cdf_row_scan(row.data(), 3001), 3u);
  EXPECT_EQ(batch::cdf_row_scan(row.data(), 0xffffffffu), 3u);
}

TEST(PoissonSumCdf, TabulatedRowsInvertTheExactPoissonCdf) {
  // Row s must reproduce inverse-CDF sampling of Poisson(s * mean_step):
  // for every stat below the cap and a sweep of words, the scan count
  // equals an independent long-double CDF inversion of u = w / 2^32.
  const double mean_step = 0.37;
  const std::uint32_t cap = 30;  // caps below kNormalCutoff32 / mean_step
  const batch::PoissonSumCdf table(mean_step, cap);
  ASSERT_EQ(table.stat_cap(), cap);
  util::Philox4x32 rng(util::derive_seed(3, "poisson-sum", 0), 0);
  for (std::uint32_t stat = 0; stat < cap; ++stat) {
    const long double mean = static_cast<long double>(mean_step) * stat;
    for (int i = 0; i < 2000; ++i) {
      const std::uint32_t w = rng();
      const double u = static_cast<double>(w) * 0x1.0p-32;
      long double pk = std::exp(-mean);
      long double cum = pk;
      std::uint64_t want = 0;
      while (u > static_cast<double>(cum) && want + 1 < kCdfRowLen) {
        ++want;
        pk *= mean / static_cast<long double>(want);
        cum += pk;
      }
      ASSERT_EQ(table.sample(w, stat), want) << "stat=" << stat << " w=" << w;
    }
  }
}

TEST(PoissonSumCdf, PastTheCapUsesTheNormalRegime) {
  const double mean_step = 0.5;
  const batch::PoissonSumCdf table(mean_step, 8);
  // stat 100 -> mean 50: moments within sampling error of Poisson(50).
  util::Philox4x32 rng(util::derive_seed(3, "poisson-sum", 1), 0);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(table.sample(rng(), 100));
  EXPECT_NEAR(sum / n, 50.0, 0.3);
}

TEST(BinomialCdf, TabulatedRowsInvertTheExactBinomialCdf) {
  const double p = 0.23;
  const batch::BinomialCdf table(p);
  ASSERT_GT(table.n_cap(), 2u);
  EXPECT_EQ(table.p(), p);
  util::Philox4x32 rng(util::derive_seed(4, "binomial", 0), 0);
  for (std::uint64_t n = 0; n < table.n_cap(); ++n) {
    for (int i = 0; i < 2000; ++i) {
      const std::uint32_t w = rng();
      const double u = static_cast<double>(w) * 0x1.0p-32;
      // Independent CDF inversion with long-double pmf recursion.
      long double pmf = std::pow(1.0L - static_cast<long double>(p),
                                 static_cast<long double>(n));
      long double cum = pmf;
      std::uint64_t want = 0;
      while (u > static_cast<double>(cum) && want < n) {
        pmf *= (static_cast<long double>(n - want) / (want + 1)) *
               (static_cast<long double>(p) / (1.0L - p));
        ++want;
        cum += pmf;
      }
      ASSERT_EQ(table.sample(w, n), want) << "n=" << n << " w=" << w;
    }
  }
  EXPECT_EQ(table.sample(0xffffffffu, 0), 0u);
}

TEST(BinomialCdf, NormalRegimeStaysInRangeWithRightMoments) {
  const double p = 0.4;
  const batch::BinomialCdf table(p);
  const std::uint64_t n = table.n_cap() + 200;
  util::Philox4x32 rng(util::derive_seed(4, "binomial", 1), 0);
  const int draws = 100000;
  double sum = 0.0;
  for (int i = 0; i < draws; ++i) {
    const std::uint64_t k = table.sample(rng(), n);
    ASSERT_LE(k, n);
    sum += static_cast<double>(k);
  }
  EXPECT_NEAR(sum / draws, p * static_cast<double>(n), 0.5);
}

TEST(ParetoCountTable, ThirtyTwoBitGrainMatchesThePowFormula) {
  // The v2 grain: u = w * 2^-32 with the u <= 0 guard still at 2^-53 (word
  // 0 maps to the cap). Same exactness contract as the 53-bit table.
  for (const double shape : {2.6, 1.55}) {
    const std::uint32_t cap = 80;
    const batch::ParetoCountTable table(shape, cap, 32);
    const auto direct = [&](std::uint64_t w) {
      double u = static_cast<double>(w) * 0x1.0p-32;
      if (u <= 0.0) u = 0x1.0p-53;
      const double v = 1.0 / std::pow(u, 1.0 / shape);
      return static_cast<std::uint32_t>(std::min<double>(v, cap));
    };
    util::Philox4x32 rng(util::derive_seed(5, "pareto32", 0), 0);
    for (int i = 0; i < 20000; ++i) {
      const std::uint32_t w = rng();
      ASSERT_EQ(table.count(w), direct(w)) << w;
      ASSERT_EQ(table.count_fast(w), direct(w)) << w;
    }
    for (std::uint32_t k = 1; k < cap; ++k) {
      for (const std::uint64_t w :
           {table.boundary(k - 1), table.boundary(k - 1) + 1,
            table.boundary(k - 1) == 0 ? std::uint64_t{0} : table.boundary(k - 1) - 1}) {
        ASSERT_EQ(table.count(w), direct(w)) << w;
      }
    }
    EXPECT_EQ(table.count(0), cap);
  }
}

}  // namespace
}  // namespace monohids::stats
