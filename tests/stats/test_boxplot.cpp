#include "stats/boxplot.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace monohids::stats {
namespace {

TEST(BoxStats, QuartilesOfSimpleSample) {
  const std::vector<double> v{1, 2, 3, 4, 5};
  const auto s = box_stats(v);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.q1, 2.0);
  EXPECT_DOUBLE_EQ(s.q3, 4.0);
  EXPECT_DOUBLE_EQ(s.whisker_low, 1.0);
  EXPECT_DOUBLE_EQ(s.whisker_high, 5.0);
  EXPECT_EQ(s.outliers, 0u);
}

TEST(BoxStats, OutliersBeyondTukeyFences) {
  std::vector<double> v{10, 11, 12, 13, 14, 15, 16, 17, 18, 19};
  v.push_back(100.0);  // far outlier
  v.push_back(-50.0);
  const auto s = box_stats(v);
  EXPECT_EQ(s.outliers, 2u);
  // whiskers stop at the most extreme non-outlier samples
  EXPECT_DOUBLE_EQ(s.whisker_low, 10.0);
  EXPECT_DOUBLE_EQ(s.whisker_high, 19.0);
}

TEST(BoxStats, SingleSample) {
  const std::vector<double> v{7.0};
  const auto s = box_stats(v);
  EXPECT_DOUBLE_EQ(s.median, 7.0);
  EXPECT_DOUBLE_EQ(s.q1, 7.0);
  EXPECT_DOUBLE_EQ(s.whisker_high, 7.0);
  EXPECT_EQ(s.outliers, 0u);
}

TEST(BoxStats, ConstantSample) {
  const std::vector<double> v(50, 3.3);
  const auto s = box_stats(v);
  EXPECT_DOUBLE_EQ(s.q1, 3.3);
  EXPECT_DOUBLE_EQ(s.q3, 3.3);
  EXPECT_EQ(s.outliers, 0u);
}

TEST(BoxStats, EmptySampleIsAnError) {
  EXPECT_THROW((void)box_stats(std::vector<double>{}), PreconditionError);
}

TEST(BoxStats, UnsortedInputHandled) {
  const std::vector<double> v{5, 1, 4, 2, 3};
  const auto s = box_stats(v);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
}

TEST(BoxStats, InvariantOrdering) {
  const std::vector<double> v{3, 7, 1, 9, 2, 8, 4, 6, 5, 100};
  const auto s = box_stats(v);
  EXPECT_LE(s.whisker_low, s.q1);
  EXPECT_LE(s.q1, s.median);
  EXPECT_LE(s.median, s.q3);
  EXPECT_LE(s.q3, s.whisker_high);
}

}  // namespace
}  // namespace monohids::stats
