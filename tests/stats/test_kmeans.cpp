#include "stats/kmeans.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/error.hpp"

namespace monohids::stats {
namespace {

std::vector<std::vector<double>> well_separated_clusters(util::Xoshiro256& rng) {
  std::vector<std::vector<double>> points;
  for (double center : {0.0, 100.0, 200.0}) {
    for (int i = 0; i < 30; ++i) {
      points.push_back({center + rng.uniform01(), center - rng.uniform01()});
    }
  }
  return points;
}

TEST(KMeans, RecoversWellSeparatedClusters) {
  util::Xoshiro256 rng(61);
  const auto points = well_separated_clusters(rng);
  const auto result = kmeans(points, 3, rng);
  EXPECT_TRUE(result.converged);
  // Each original block of 30 must be in a single cluster.
  for (int block = 0; block < 3; ++block) {
    std::set<std::uint32_t> ids;
    for (int i = 0; i < 30; ++i) ids.insert(result.assignment[block * 30 + i]);
    EXPECT_EQ(ids.size(), 1u) << "block " << block << " split across clusters";
  }
  EXPECT_LT(result.inertia, 90 * 2.0);  // within-cluster spread is < 1 per dim
}

TEST(KMeans, SeparatedClustersHaveHighSilhouette) {
  util::Xoshiro256 rng(62);
  const auto points = well_separated_clusters(rng);
  const auto result = kmeans(points, 3, rng);
  EXPECT_GT(mean_silhouette(points, result.assignment, 3), 0.9);
}

TEST(KMeans, UniformDataHasLowSilhouette) {
  // The paper's §5 finding: no natural holes -> clustering is not meaningful.
  util::Xoshiro256 rng(63);
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 200; ++i) points.push_back({rng.uniform01() * 100.0});
  const auto result = kmeans(points, 5, rng);
  EXPECT_LT(mean_silhouette(points, result.assignment, 5), 0.65);
}

TEST(KMeans, KOnePutsEverythingTogether) {
  util::Xoshiro256 rng(64);
  std::vector<std::vector<double>> points{{1.0}, {2.0}, {3.0}};
  const auto result = kmeans(points, 1, rng);
  for (auto a : result.assignment) EXPECT_EQ(a, 0u);
  EXPECT_NEAR(result.centroids[0][0], 2.0, 1e-9);
}

TEST(KMeans, InertiaDecreasesWithMoreClusters) {
  util::Xoshiro256 rng(65);
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 100; ++i) points.push_back({rng.uniform01() * 10.0});
  double prev = 1e18;
  for (std::uint32_t k : {1u, 2u, 4u, 8u}) {
    util::Xoshiro256 local(65);
    const auto result = kmeans(points, k, local);
    EXPECT_LE(result.inertia, prev + 1e-9);
    prev = result.inertia;
  }
}

TEST(KMeans, FewerPointsThanClustersIsAnError) {
  util::Xoshiro256 rng(66);
  std::vector<std::vector<double>> points{{1.0}, {2.0}};
  EXPECT_THROW((void)kmeans(points, 3, rng), PreconditionError);
}

TEST(KMeans, MixedDimensionsAreAnError) {
  util::Xoshiro256 rng(67);
  std::vector<std::vector<double>> points{{1.0}, {2.0, 3.0}};
  EXPECT_THROW((void)kmeans(points, 1, rng), PreconditionError);
}

TEST(KMeans, DuplicatePointsDoNotCrash) {
  util::Xoshiro256 rng(68);
  std::vector<std::vector<double>> points(20, {5.0});
  const auto result = kmeans(points, 3, rng);
  EXPECT_EQ(result.assignment.size(), 20u);
  EXPECT_NEAR(result.inertia, 0.0, 1e-12);
}

TEST(Silhouette, RequiresValidArguments) {
  std::vector<std::vector<double>> points{{1.0}, {2.0}};
  std::vector<std::uint32_t> assignment{0, 1};
  EXPECT_THROW((void)mean_silhouette(points, assignment, 1), PreconditionError);
  std::vector<std::uint32_t> bad{0, 5};
  EXPECT_THROW((void)mean_silhouette(points, bad, 2), PreconditionError);
}

TEST(Silhouette, PerfectSeparationApproachesOne) {
  std::vector<std::vector<double>> points{{0.0}, {0.1}, {100.0}, {100.1}};
  std::vector<std::uint32_t> assignment{0, 0, 1, 1};
  EXPECT_GT(mean_silhouette(points, assignment, 2), 0.99);
}

}  // namespace
}  // namespace monohids::stats
