#include "stats/classification.hpp"

#include <gtest/gtest.h>

namespace monohids::stats {
namespace {

ConfusionCounts counts(std::uint64_t tp, std::uint64_t fp, std::uint64_t tn,
                       std::uint64_t fn) {
  return ConfusionCounts{tp, fp, tn, fn};
}

TEST(Classification, RatesFromCounts) {
  const auto c = counts(40, 5, 95, 10);
  EXPECT_DOUBLE_EQ(false_positive_rate(c), 0.05);
  EXPECT_DOUBLE_EQ(false_negative_rate(c), 0.2);
  EXPECT_DOUBLE_EQ(recall(c), 0.8);
  EXPECT_DOUBLE_EQ(precision(c), 40.0 / 45.0);
}

TEST(Classification, FMeasureIsHarmonicMean) {
  const auto c = counts(50, 50, 0, 50);
  // precision = 0.5, recall = 0.5 -> F = 0.5
  EXPECT_DOUBLE_EQ(f_measure(c), 0.5);
}

TEST(Classification, DegenerateDenominatorsYieldZero) {
  const ConfusionCounts empty;
  EXPECT_DOUBLE_EQ(false_positive_rate(empty), 0.0);
  EXPECT_DOUBLE_EQ(false_negative_rate(empty), 0.0);
  EXPECT_DOUBLE_EQ(precision(empty), 0.0);
  EXPECT_DOUBLE_EQ(recall(empty), 0.0);
  EXPECT_DOUBLE_EQ(f_measure(empty), 0.0);
}

TEST(Classification, PerfectDetector) {
  const auto c = counts(100, 0, 900, 0);
  EXPECT_DOUBLE_EQ(f_measure(c), 1.0);
  EXPECT_DOUBLE_EQ(utility(false_negative_rate(c), false_positive_rate(c), 0.4), 1.0);
}

TEST(Classification, AccumulationOperator) {
  auto a = counts(1, 2, 3, 4);
  const auto b = counts(10, 20, 30, 40);
  a += b;
  EXPECT_EQ(a.true_positives, 11u);
  EXPECT_EQ(a.false_positives, 22u);
  EXPECT_EQ(a.true_negatives, 33u);
  EXPECT_EQ(a.false_negatives, 44u);
  EXPECT_EQ(a.total(), 110u);
}

TEST(Utility, MatchesPaperFormula) {
  // U = 1 - [w FN + (1-w) FP]
  EXPECT_DOUBLE_EQ(utility(0.0, 0.0, 0.4), 1.0);
  EXPECT_DOUBLE_EQ(utility(1.0, 1.0, 0.4), 0.0);
  EXPECT_DOUBLE_EQ(utility(0.5, 0.1, 0.4), 1.0 - (0.4 * 0.5 + 0.6 * 0.1));
}

TEST(Utility, WeightInterpolatesBetweenRates) {
  // w = 1 ignores FP entirely; w = 0 ignores FN.
  EXPECT_DOUBLE_EQ(utility(0.3, 0.9, 1.0), 0.7);
  EXPECT_DOUBLE_EQ(utility(0.3, 0.9, 0.0), 1.0 - 0.9);
}

TEST(Utility, HigherFnHurtsMoreAsWGrows) {
  const double low_w = utility(0.5, 0.0, 0.2);
  const double high_w = utility(0.5, 0.0, 0.8);
  EXPECT_GT(low_w, high_w);
}

}  // namespace
}  // namespace monohids::stats
