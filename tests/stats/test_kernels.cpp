// Unit tests for the batched SIMD kernel layer: dispatch-table behavior,
// the tie-handling contract at exact sample values (alarms fire strictly
// above the threshold, so rank queries are upper bounds), degenerate arenas,
// and the counting sort/merge fast paths. Cross-back-end bit-identity over
// randomized inputs lives in test_kernels_differential.cpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "stats/empirical.hpp"
#include "stats/kernels.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace monohids::stats {
namespace {

using kernels::Backend;

/// Restores startup dispatch and batching mode however a test exits.
class DispatchGuard {
 public:
  DispatchGuard() : batching_(kernels::batching_enabled()) {}
  ~DispatchGuard() {
    kernels::reset_backend();
    kernels::set_batching_enabled(batching_);
  }

 private:
  bool batching_;
};

std::vector<Backend> available_backends() {
  std::vector<Backend> out;
  for (Backend b : {Backend::Scalar, Backend::Avx2, Backend::Neon}) {
    if (kernels::backend_available(b)) out.push_back(b);
  }
  return out;
}

TEST(KernelDispatch, ScalarIsAlwaysAvailable) {
  EXPECT_TRUE(kernels::backend_available(Backend::Scalar));
  ASSERT_NE(kernels::ops_for(Backend::Scalar), nullptr);
  EXPECT_STREQ(kernels::ops_for(Backend::Scalar)->name, "scalar");
}

TEST(KernelDispatch, ActiveTableIsOneOfTheAvailableBackends) {
  const kernels::Ops& ops = kernels::active();
  bool found = false;
  for (Backend b : available_backends()) {
    if (&ops == kernels::ops_for(b)) found = true;
  }
  EXPECT_TRUE(found) << "active() returned a table not reachable via ops_for";
  EXPECT_TRUE(kernels::backend_available(kernels::active_backend()));
}

TEST(KernelDispatch, ForceBackendSwitchesAndResetRestores) {
  DispatchGuard guard;
  for (Backend b : available_backends()) {
    ASSERT_TRUE(kernels::force_backend(b)) << kernels::backend_name(b);
    EXPECT_EQ(kernels::active_backend(), b);
    EXPECT_EQ(&kernels::active(), kernels::ops_for(b));
  }
  kernels::reset_backend();
  EXPECT_TRUE(kernels::backend_available(kernels::active_backend()));
}

TEST(KernelDispatch, ForcingUnavailableBackendFailsWithoutSideEffects) {
  DispatchGuard guard;
  const Backend before = kernels::active_backend();
  for (Backend b : {Backend::Avx2, Backend::Neon}) {
    if (kernels::backend_available(b)) continue;
    EXPECT_FALSE(kernels::force_backend(b));
    EXPECT_EQ(kernels::active_backend(), before);
  }
}

TEST(KernelDispatch, BackendNamesMatchTables) {
  EXPECT_EQ(kernels::backend_name(Backend::Scalar), "scalar");
  EXPECT_EQ(kernels::backend_name(Backend::Avx2), "avx2");
  EXPECT_EQ(kernels::backend_name(Backend::Neon), "neon");
  for (Backend b : available_backends()) {
    EXPECT_EQ(std::string(kernels::ops_for(b)->name), kernels::backend_name(b));
  }
}

TEST(KernelDispatch, ScopedBatchModeRestores) {
  const bool before = kernels::batching_enabled();
  {
    kernels::ScopedBatchMode off(false);
    EXPECT_FALSE(kernels::batching_enabled());
    {
      kernels::ScopedBatchMode on(true);
      EXPECT_TRUE(kernels::batching_enabled());
    }
    EXPECT_FALSE(kernels::batching_enabled());
  }
  EXPECT_EQ(kernels::batching_enabled(), before);
}

// --- Tie handling -----------------------------------------------------------
//
// The paper's alarm condition is strict (g > T, detector.hpp), so a rank
// query at an exact sample value must count that value as *not* alarming:
// rank(q) = #{v <= q} includes every tied sample, and exceedance(q) counts
// only strictly greater ones. A duplicated sample pinned exactly on the
// query is the regression case.

TEST(KernelTieHandling, RankAtExactSampleValueCountsAllTies) {
  DispatchGuard guard;
  const std::vector<double> arena{1.0, 2.0, 2.0, 2.0, 3.0, 3.0, 5.0};
  const std::vector<double> queries{0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  const std::vector<std::uint32_t> expected{0, 1, 4, 6, 6, 7, 7};
  for (Backend b : available_backends()) {
    ASSERT_TRUE(kernels::force_backend(b));
    const kernels::Ops& ops = kernels::active();
    std::vector<std::uint32_t> sorted_out(queries.size(), 0xffffffffu);
    std::vector<std::uint32_t> unsorted_out(queries.size(), 0xffffffffu);
    ops.rank_sorted(arena, queries, 0.0, sorted_out.data());
    ops.rank_unsorted(arena, queries, 0.0, unsorted_out.data());
    EXPECT_EQ(sorted_out, expected) << "rank_sorted on " << kernels::backend_name(b);
    EXPECT_EQ(unsorted_out, expected) << "rank_unsorted on " << kernels::backend_name(b);
  }
}

TEST(KernelTieHandling, ExceedanceBatchMatchesStrictAlarmAtThresholdOnSample) {
  const EmpiricalDistribution dist(std::vector<double>{4.0, 7.0, 7.0, 7.0, 9.0});
  // Thresholded exactly on the tied value: only the 9.0 bin alarms.
  std::vector<double> xs{7.0};
  std::vector<double> out{-1.0};
  dist.exceedance_batch(xs, out);
  EXPECT_DOUBLE_EQ(out[0], dist.exceedance(7.0));
  EXPECT_DOUBLE_EQ(out[0], 1.0 / 5.0);
}

TEST(KernelTieHandling, CountExceedIsStrictAtThreshold) {
  DispatchGuard guard;
  const std::vector<double> bins{3.0, 5.0, 5.0, 5.0, 5.5, 8.0};
  for (Backend b : available_backends()) {
    ASSERT_TRUE(kernels::force_backend(b));
    EXPECT_EQ(kernels::active().count_exceed(bins, 5.0), 2u)
        << kernels::backend_name(b);
  }
}

TEST(KernelTieHandling, ReplayDetectIsStrictAtThreshold) {
  DispatchGuard guard;
  // benign + attack lands exactly on the threshold in bin 1: no detection.
  const std::vector<double> benign{6.0, 3.0, 4.0, 5.0};
  const std::vector<double> attack{0.0, 2.0, 3.0, 0.0};
  for (Backend b : available_backends()) {
    ASSERT_TRUE(kernels::force_backend(b));
    std::uint64_t benign_alarms = 99, attacked = 99, detected = 99;
    kernels::active().replay_detect(benign, attack, 5.0, benign_alarms, attacked,
                                    detected);
    EXPECT_EQ(benign_alarms, 1u) << kernels::backend_name(b);  // only 6.0
    EXPECT_EQ(attacked, 2u) << kernels::backend_name(b);
    EXPECT_EQ(detected, 1u) << kernels::backend_name(b);  // 4+3 > 5, not 3+2
  }
}

// --- Degenerate arenas ------------------------------------------------------

TEST(KernelEdgeCases, EmptyArenaRanksAreZero) {
  DispatchGuard guard;
  const std::span<const double> empty;
  const std::vector<double> queries{-1.0, 0.0, 1.0};
  for (Backend b : available_backends()) {
    ASSERT_TRUE(kernels::force_backend(b));
    const kernels::Ops& ops = kernels::active();
    std::vector<std::uint32_t> out(queries.size(), 0xffffffffu);
    ops.rank_sorted(empty, queries, 0.0, out.data());
    EXPECT_EQ(out, (std::vector<std::uint32_t>{0, 0, 0})) << kernels::backend_name(b);
    std::fill(out.begin(), out.end(), 0xffffffffu);
    ops.rank_unsorted(empty, queries, 0.0, out.data());
    EXPECT_EQ(out, (std::vector<std::uint32_t>{0, 0, 0})) << kernels::backend_name(b);
    std::vector<std::uint32_t> grid(queries.size() * 2, 0xffffffffu);
    const std::vector<double> sizes{1.0, 2.0};
    ops.rank_grid(empty, queries, sizes, grid.data());
    EXPECT_EQ(grid, std::vector<std::uint32_t>(6, 0)) << kernels::backend_name(b);
    EXPECT_EQ(ops.count_exceed(empty, 0.0), 0u);
  }
}

TEST(KernelEdgeCases, SingleSampleArena) {
  DispatchGuard guard;
  const std::vector<double> arena{2.0};
  const std::vector<double> queries{1.0, 2.0, 3.0};
  const std::vector<std::uint32_t> expected{0, 1, 1};
  for (Backend b : available_backends()) {
    ASSERT_TRUE(kernels::force_backend(b));
    const kernels::Ops& ops = kernels::active();
    std::vector<std::uint32_t> out(3, 0xffffffffu);
    ops.rank_sorted(arena, queries, 0.0, out.data());
    EXPECT_EQ(out, expected) << kernels::backend_name(b);
    std::fill(out.begin(), out.end(), 0xffffffffu);
    ops.rank_unsorted(arena, queries, 0.0, out.data());
    EXPECT_EQ(out, expected) << kernels::backend_name(b);
  }
}

TEST(KernelEdgeCases, CdfBatchOnEmptyDistributionThrows) {
  const EmpiricalDistribution d;
  std::vector<double> xs{1.0};
  std::vector<double> out(1);
  EXPECT_THROW(d.cdf_batch(xs, out), PreconditionError);
  EXPECT_THROW(d.exceedance_batch(xs, out), PreconditionError);
}

TEST(KernelEdgeCases, RankGridMatchesPerSizeQueries) {
  DispatchGuard guard;
  const std::vector<double> arena{0.0, 1.0, 1.0, 2.0, 4.0, 4.0, 4.0, 7.0, 9.0};
  const std::vector<double> thresholds{0.0, 1.0, 2.0, 4.5, 7.0, 10.0};
  const std::vector<double> sizes{0.5, 1.0, 3.0};
  const std::size_t T = thresholds.size();
  for (Backend b : available_backends()) {
    ASSERT_TRUE(kernels::force_backend(b));
    const kernels::Ops& ops = kernels::active();
    std::vector<std::uint32_t> grid(T * sizes.size(), 0xffffffffu);
    ops.rank_grid(arena, thresholds, sizes, grid.data());
    for (std::size_t s = 0; s < sizes.size(); ++s) {
      std::vector<std::uint32_t> row(T, 0xffffffffu);
      ops.rank_sorted(arena, thresholds, sizes[s], row.data());
      for (std::size_t j = 0; j < T; ++j) {
        EXPECT_EQ(grid[s * T + j], row[j])
            << kernels::backend_name(b) << " size " << sizes[s] << " threshold "
            << thresholds[j];
      }
    }
  }
}

// --- Counting sort / merge fast paths --------------------------------------

TEST(KernelCountingPaths, SortCountsMatchesStdSort) {
  std::vector<double> data;
  for (int i = 0; i < 300; ++i) data.push_back(static_cast<double>((i * 37) % 11));
  std::vector<double> expected = data;
  std::sort(expected.begin(), expected.end());
  ASSERT_TRUE(kernels::sort_counts(data));
  EXPECT_EQ(data, expected);
}

TEST(KernelCountingPaths, SortCountsRejectsNonCountData) {
  const std::vector<double> base(100, 1.0);
  {
    std::vector<double> v = base;
    v[40] = -1.0;
    const std::vector<double> untouched = v;
    EXPECT_FALSE(kernels::sort_counts(v));
    EXPECT_EQ(v, untouched);  // a rejected buffer is left exactly as given
  }
  {
    std::vector<double> v = base;
    v[40] = 2.5;
    EXPECT_FALSE(kernels::sort_counts(v));
  }
  {
    std::vector<double> v = base;
    v[40] = 70000.0;
    EXPECT_FALSE(kernels::sort_counts(v));
  }
  {
    std::vector<double> v = base;
    v[40] = -0.0;  // bitwise-distinct from the +0.0 a counting emit produces
    EXPECT_FALSE(kernels::sort_counts(v));
  }
  {
    std::vector<double> tiny(10, 1.0);  // below the crossover, std::sort wins
    EXPECT_FALSE(kernels::sort_counts(tiny));
  }
}

TEST(KernelCountingPaths, CountingMergeMatchesHeapMerge) {
  std::vector<std::vector<double>> parts_storage;
  for (int p = 0; p < 5; ++p) {
    std::vector<double> part;
    for (int i = 0; i < 100; ++i) {
      part.push_back(static_cast<double>((i * (p + 3)) % 23));
    }
    std::sort(part.begin(), part.end());
    parts_storage.push_back(std::move(part));
  }
  std::vector<std::span<const double>> parts(parts_storage.begin(), parts_storage.end());

  std::vector<double> counted;
  ASSERT_TRUE(kernels::counting_merge(parts, counted));

  std::vector<double> heap_merged;
  {
    kernels::ScopedBatchMode off(false);
    merge_sorted_spans(parts, heap_merged);
  }
  EXPECT_EQ(counted, heap_merged);
}

TEST(KernelCountingPaths, CountingMergeRejectsNonCountData) {
  std::vector<double> a(200, 1.0);
  std::vector<double> b(200, 2.5);  // fractional part
  std::vector<std::span<const double>> parts{a, b};
  std::vector<double> out;
  EXPECT_FALSE(kernels::counting_merge(parts, out));

  std::vector<double> tiny_a{1.0}, tiny_b{2.0};  // below the crossover
  std::vector<std::span<const double>> tiny{tiny_a, tiny_b};
  EXPECT_FALSE(kernels::counting_merge(tiny, out));
}

TEST(KernelRankTable, MatchesUpperBoundIncludingTiesAndOutOfRange) {
  std::vector<double> arena;
  for (int i = 0; i < 40; ++i) {
    arena.push_back(0.0);
    arena.push_back(3.0);
    arena.push_back(3.0);
    arena.push_back(static_cast<double>(i % 7));
  }
  std::sort(arena.begin(), arena.end());

  std::vector<std::uint32_t> cum;
  ASSERT_TRUE(kernels::build_rank_table(arena, cum));
  const auto n = static_cast<std::uint32_t>(arena.size());

  const std::vector<double> queries = {-10.0, -0.5,  0.0, 0.5, 2.999, 3.0,
                                       3.5,   6.0,   6.5, 7.0, 1e9};
  for (double q : queries) {
    const auto expected = static_cast<std::uint32_t>(
        std::upper_bound(arena.begin(), arena.end(), q) - arena.begin());
    EXPECT_EQ(kernels::rank_from_table(cum, n, q), expected) << "q=" << q;
  }
  // NaN queries rank below every count (upper_bound on NaN is unspecified,
  // so the table pins the answer instead of comparing against it).
  EXPECT_EQ(kernels::rank_from_table(cum, n, std::numeric_limits<double>::quiet_NaN()),
            0u);
}

TEST(KernelRankTable, RejectsNonCountData) {
  std::vector<std::uint32_t> cum;

  std::vector<double> fractional(100, 1.5);
  EXPECT_FALSE(kernels::build_rank_table(fractional, cum));
  EXPECT_TRUE(cum.empty());

  std::vector<double> negative(100, 2.0);
  negative.front() = -1.0;
  EXPECT_FALSE(kernels::build_rank_table(negative, cum));

  std::vector<double> oversized(100, 70000.0);
  EXPECT_FALSE(kernels::build_rank_table(oversized, cum));

  std::vector<double> tiny(16, 1.0);  // below the crossover
  EXPECT_FALSE(kernels::build_rank_table(tiny, cum));

  std::vector<double> negative_zero(100, 0.0);
  negative_zero.front() = -0.0;
  EXPECT_FALSE(kernels::build_rank_table(negative_zero, cum));
}

TEST(KernelRankTable, EmpiricalDistributionBuildsAndUsesTable) {
  DispatchGuard guard;
  kernels::set_batching_enabled(true);
  std::vector<double> samples;
  for (int i = 0; i < 200; ++i) samples.push_back(static_cast<double>(i % 13));

  const EmpiricalDistribution dist{std::vector<double>(samples)};
  ASSERT_FALSE(dist.rank_table().empty());

  const std::vector<double> queries = {-1.0, 0.0, 4.0, 4.5, 12.0, 13.0};
  std::vector<double> batched(queries.size());
  dist.cdf_batch(queries, batched);
  for (std::size_t j = 0; j < queries.size(); ++j) {
    EXPECT_EQ(batched[j], dist.cdf(queries[j])) << "q=" << queries[j];
  }

  // Built with batching disabled, the table is skipped entirely.
  kernels::set_batching_enabled(false);
  const EmpiricalDistribution seed{std::vector<double>(samples)};
  EXPECT_TRUE(seed.rank_table().empty());
}

TEST(KernelWiden, WidenU32IsExactOnEveryBackend) {
  // widen_u32 feeds the batched trace generator's SoA staging buffers into
  // feature series; it must be an exact conversion on every back-end
  // (values < 2^31 always fit the 53-bit mantissa) including awkward tails.
  util::Xoshiro256 rng(7);
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{2}, std::size_t{3},
                        std::size_t{17}, std::size_t{1024}, std::size_t{1031}}) {
    std::vector<std::uint32_t> values(n);
    for (auto& v : values) v = static_cast<std::uint32_t>(rng() >> 33);  // < 2^31
    if (n > 2) {
      values[0] = 0;
      values[1] = (1u << 31) - 1;
    }
    for (Backend b : available_backends()) {
      std::vector<double> out(n, -1.0);
      kernels::ops_for(b)->widen_u32(values, out.data());
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(out[i], static_cast<double>(values[i]))
            << kernels::backend_name(b) << " i=" << i;
      }
    }
  }
}

TEST(KernelRankTable, ViewBuildsTableOnlyWhenRequested) {
  DispatchGuard guard;
  kernels::set_batching_enabled(true);
  std::vector<double> sorted(128);
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    sorted[i] = static_cast<double>(i / 4);
  }
  EXPECT_TRUE(EmpiricalDistribution::view_of_sorted(sorted).rank_table().empty());
  const auto view = EmpiricalDistribution::view_of_sorted(sorted, /*with_rank_table=*/true);
  ASSERT_FALSE(view.rank_table().empty());
  EXPECT_EQ(view.rank_table().back(), static_cast<std::uint32_t>(sorted.size()));
}

}  // namespace
}  // namespace monohids::stats
