#include "stats/gk_sketch.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "stats/sampling.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace monohids::stats {
namespace {

TEST(Gk, InvalidEpsilonIsAnError) {
  EXPECT_THROW(GkSketch(0.0), PreconditionError);
  EXPECT_THROW(GkSketch(0.5), PreconditionError);
}

TEST(Gk, EmptyQuantileIsAnError) {
  const GkSketch sketch(0.01);
  EXPECT_THROW((void)sketch.quantile(0.5), PreconditionError);
}

/// Rank error of the sketch answer vs the sorted reference.
double rank_error(const std::vector<double>& sorted, double answer, double q) {
  const auto lo = std::lower_bound(sorted.begin(), sorted.end(), answer) - sorted.begin();
  const auto hi = std::upper_bound(sorted.begin(), sorted.end(), answer) - sorted.begin();
  const double target = std::ceil(q * static_cast<double>(sorted.size()));
  if (target < static_cast<double>(lo)) return static_cast<double>(lo) - target;
  if (target > static_cast<double>(hi)) return target - static_cast<double>(hi);
  return 0.0;
}

struct GkCase {
  double epsilon;
  std::uint64_t n;
};

class GkGuarantee : public ::testing::TestWithParam<GkCase> {};

TEST_P(GkGuarantee, RankErrorWithinEpsilonN) {
  const auto [eps, n] = GetParam();
  util::Xoshiro256 rng(31);
  GkSketch sketch(eps);
  std::vector<double> all;
  all.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    const double x = rng.uniform01() * 1e6;
    sketch.add(x);
    all.push_back(x);
  }
  std::sort(all.begin(), all.end());
  for (double q : {0.01, 0.1, 0.5, 0.9, 0.99, 0.999}) {
    const double answer = sketch.quantile(q);
    EXPECT_LE(rank_error(all, answer, q), 2.0 * eps * static_cast<double>(n) + 1.0)
        << "q=" << q << " eps=" << eps << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Configs, GkGuarantee,
                         ::testing::Values(GkCase{0.01, 10000}, GkCase{0.005, 20000},
                                           GkCase{0.05, 5000}, GkCase{0.02, 50000}));

TEST(Gk, CompressesWellBelowStreamSize) {
  util::Xoshiro256 rng(33);
  GkSketch sketch(0.01);
  const std::uint64_t n = 100000;
  for (std::uint64_t i = 0; i < n; ++i) sketch.add(rng.uniform01());
  EXPECT_EQ(sketch.count(), n);
  // Theory: O((1/eps) log(eps n)); generous practical bound.
  EXPECT_LT(sketch.tuple_count(), 2000u);
}

TEST(Gk, HandlesSortedAndReversedStreams) {
  for (bool reversed : {false, true}) {
    GkSketch sketch(0.02);
    for (int i = 0; i < 10000; ++i) {
      sketch.add(reversed ? 10000.0 - i : static_cast<double>(i));
    }
    const double median = sketch.quantile(0.5);
    EXPECT_NEAR(median, 5000.0, 2.0 * 0.02 * 10000.0 + 1);
  }
}

TEST(Gk, ExtremeQuantilesPinToRange) {
  GkSketch sketch(0.01);
  for (int i = 1; i <= 1000; ++i) sketch.add(static_cast<double>(i));
  EXPECT_GE(sketch.quantile(0.0), 1.0);
  EXPECT_LE(sketch.quantile(1.0), 1000.0);
}

TEST(Gk, HeavyTailedStream) {
  util::Xoshiro256 rng(35);
  const ParetoSampler pareto(1.0, 1.2);
  GkSketch sketch(0.01);
  std::vector<double> all;
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    const double x = pareto.sample(rng);
    sketch.add(x);
    all.push_back(x);
  }
  std::sort(all.begin(), all.end());
  const double answer = sketch.quantile(0.99);
  EXPECT_LE(rank_error(all, answer, 0.99), 2.0 * 0.01 * n + 1.0);
}

}  // namespace
}  // namespace monohids::stats
