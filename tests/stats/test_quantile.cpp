#include "stats/quantile.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace monohids::stats {
namespace {

TEST(NearestRank, KnownValues) {
  const std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(quantile_nearest_rank_sorted(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile_nearest_rank_sorted(v, 0.1), 1.0);
  EXPECT_DOUBLE_EQ(quantile_nearest_rank_sorted(v, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(quantile_nearest_rank_sorted(v, 0.99), 10.0);
  EXPECT_DOUBLE_EQ(quantile_nearest_rank_sorted(v, 1.0), 10.0);
}

TEST(NearestRank, ReturnsObservedValueOnly) {
  const std::vector<double> v{10, 20, 30};
  for (double q : {0.1, 0.4, 0.51, 0.9, 0.99}) {
    const double result = quantile_nearest_rank_sorted(v, q);
    EXPECT_TRUE(result == 10 || result == 20 || result == 30);
  }
}

TEST(NearestRank, SingleElement) {
  const std::vector<double> v{42};
  EXPECT_DOUBLE_EQ(quantile_nearest_rank_sorted(v, 0.5), 42.0);
}

TEST(Interpolated, MatchesKnownType7Values) {
  const std::vector<double> v{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(quantile_interpolated_sorted(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile_interpolated_sorted(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile_interpolated_sorted(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile_interpolated_sorted(v, 1.0 / 3.0), 2.0);
}

TEST(Quantile, EmptySampleIsAnError) {
  const std::vector<double> empty;
  EXPECT_THROW((void)quantile_nearest_rank_sorted(empty, 0.5), PreconditionError);
  EXPECT_THROW((void)quantile_interpolated_sorted(empty, 0.5), PreconditionError);
}

TEST(Quantile, OutOfRangeProbabilityIsAnError) {
  const std::vector<double> v{1.0};
  EXPECT_THROW((void)quantile_nearest_rank_sorted(v, -0.1), PreconditionError);
  EXPECT_THROW((void)quantile_nearest_rank_sorted(v, 1.1), PreconditionError);
}

TEST(Quantile, UnsortedConvenienceSorts) {
  const std::vector<double> v{5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(quantile_nearest_rank(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile_interpolated(v, 0.5), 3.0);
}

TEST(Quantile, BatchMatchesIndividual) {
  std::vector<double> v;
  util::Xoshiro256 rng(3);
  for (int i = 0; i < 500; ++i) v.push_back(rng.uniform01() * 100);
  const std::vector<double> probs{0.1, 0.5, 0.9, 0.99};
  const auto batch = quantiles_nearest_rank(v, probs);
  ASSERT_EQ(batch.size(), probs.size());
  for (std::size_t i = 0; i < probs.size(); ++i) {
    EXPECT_DOUBLE_EQ(batch[i], quantile_nearest_rank(v, probs[i]));
  }
}

// Property: the nearest-rank quantile q has at least ceil(q*n) samples <= it.
class QuantileProperty : public ::testing::TestWithParam<double> {};

TEST_P(QuantileProperty, RankGuarantee) {
  util::Xoshiro256 rng(17);
  std::vector<double> v;
  for (int i = 0; i < 1000; ++i) v.push_back(rng.uniform01() * 50.0);
  std::sort(v.begin(), v.end());
  const double q = GetParam();
  const double value = quantile_nearest_rank_sorted(v, q);
  const auto at_or_below = static_cast<std::size_t>(
      std::upper_bound(v.begin(), v.end(), value) - v.begin());
  EXPECT_GE(at_or_below, static_cast<std::size_t>(std::ceil(q * 1000)));
}

INSTANTIATE_TEST_SUITE_P(Probabilities, QuantileProperty,
                         ::testing::Values(0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99,
                                           0.999));

// Property: interpolated quantile is monotone in q and bounded by extremes.
TEST(QuantileProperty, InterpolatedMonotone) {
  util::Xoshiro256 rng(23);
  std::vector<double> v;
  for (int i = 0; i < 300; ++i) v.push_back(rng.uniform01());
  std::sort(v.begin(), v.end());
  double prev = v.front();
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double cur = quantile_interpolated_sorted(v, q);
    EXPECT_GE(cur, prev);
    EXPECT_GE(cur, v.front());
    EXPECT_LE(cur, v.back());
    prev = cur;
  }
}

}  // namespace
}  // namespace monohids::stats
