// Randomized differential suite for the SIMD kernel layer: every available
// back-end, forced in-process, must produce bit-identical results to the
// scalar reference on the same inputs. Ranks and counts are integers, so
// "bit-identical" here is literal equality — any divergence is a kernel bug,
// not numerical noise. 500+ seeded cases sweep arena shapes (uniform,
// heavy-tailed, few-distinct-values/massive ties, empty, single-sample,
// extreme magnitudes) crossed with sorted and unsorted query batches whose
// values are deliberately pinned onto arena samples to stress tie handling.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "stats/kernels.hpp"
#include "stats/sampling.hpp"
#include "util/rng.hpp"

namespace monohids::stats {
namespace {

using kernels::Backend;

constexpr std::uint64_t kCases = 520;

std::vector<Backend> simd_backends() {
  std::vector<Backend> out;
  for (Backend b : {Backend::Avx2, Backend::Neon}) {
    if (kernels::backend_available(b)) out.push_back(b);
  }
  return out;
}

/// Draws one arena shape; returns its name for failure messages. Arenas are
/// returned sorted (the kernels' contract).
std::string fill_arena(std::uint64_t case_index, util::Xoshiro256& rng,
                       std::vector<double>& out) {
  const std::size_t n = case_index % 7 == 0   ? 0
                        : case_index % 7 == 1 ? 1
                                              : 1 + rng() % 3000;
  out.resize(n);
  std::string name;
  switch (case_index % 6) {
    case 0:
      for (double& v : out) v = rng.uniform01() * 100.0;
      name = "uniform";
      break;
    case 1: {
      const LogNormalSampler lognormal(0.0, 2.0);
      for (double& v : out) v = lognormal.sample(rng);
      name = "lognormal";
      break;
    }
    case 2:
      // Few distinct values: the tie regime every traffic-count feature
      // lives in, and the case where upper-bound vs lower-bound confusion
      // shows up immediately.
      for (double& v : out) v = static_cast<double>(rng() % 5);
      name = "five-values";
      break;
    case 3:
      for (double& v : out) v = static_cast<double>(rng() % 200);
      name = "counts";
      break;
    case 4:
      // Extreme magnitudes: denormal-adjacent and huge values in one arena.
      for (std::size_t i = 0; i < out.size(); ++i) {
        out[i] = (i % 2 == 0) ? rng.uniform01() * 1e-300 : rng.uniform01() * 1e300;
      }
      name = "extremes";
      break;
    default:
      out.assign(out.size(), 42.0);
      name = "constant";
      break;
  }
  std::sort(out.begin(), out.end());
  return name;
}

/// Query batch: half fresh random values, half pinned exactly onto arena
/// samples (ties). Sorted for even cases, shuffled for odd ones.
std::vector<double> make_queries(const std::vector<double>& arena, std::uint64_t case_index,
                                 util::Xoshiro256& rng, bool& sorted) {
  const std::size_t t = 1 + rng() % 300;
  std::vector<double> xs(t);
  for (double& q : xs) {
    if (!arena.empty() && rng() % 2 == 0) {
      q = arena[rng() % arena.size()];
    } else {
      q = (rng.uniform01() - 0.25) * 150.0;
    }
  }
  sorted = case_index % 2 == 0;
  if (sorted) {
    std::sort(xs.begin(), xs.end());
  } else {
    for (std::size_t i = xs.size(); i > 1; --i) std::swap(xs[i - 1], xs[rng() % i]);
  }
  return xs;
}

TEST(KernelDifferential, AllBackendsBitIdenticalToScalar) {
  const auto simd = simd_backends();
  if (simd.empty()) GTEST_SKIP() << "no SIMD back-end available on this host";
  const kernels::Ops& scalar = *kernels::ops_for(Backend::Scalar);

  std::uint64_t executed = 0;
  for (std::uint64_t c = 0; c < kCases; ++c) {
    util::Xoshiro256 rng(0x5eed0000 + c);
    std::vector<double> arena;
    const std::string arena_name = fill_arena(c, rng, arena);
    bool sorted = false;
    const std::vector<double> xs = make_queries(arena, c, rng, sorted);
    // Zero shift on every third case keeps the pinned queries exactly tied
    // to arena samples (nonzero shifts would perturb them off the ties).
    const double shift = (c % 3 == 0) ? 0.0 : (rng.uniform01() - 0.5) * 10.0;
    const std::string label =
        "case " + std::to_string(c) + " (" + arena_name + ", n=" +
        std::to_string(arena.size()) + ", t=" + std::to_string(xs.size()) +
        (sorted ? ", sorted)" : ", unsorted)");

    // Scalar reference answers.
    std::vector<std::uint32_t> ref(xs.size());
    if (sorted) {
      scalar.rank_sorted(arena, xs, shift, ref.data());
    } else {
      scalar.rank_unsorted(arena, xs, shift, ref.data());
    }
    const double threshold = xs[c % xs.size()];
    const std::uint64_t ref_exceed = scalar.count_exceed(xs, threshold);

    // Grid reference (sorted query batches double as ascending thresholds).
    std::vector<double> sizes(1 + rng() % 40);
    for (double& s : sizes) s = rng.uniform01() * 20.0;
    std::vector<std::uint32_t> ref_grid;
    if (sorted) {
      ref_grid.resize(xs.size() * sizes.size());
      scalar.rank_grid(arena, xs, sizes, ref_grid.data());
    }

    for (Backend b : simd) {
      const kernels::Ops& ops = *kernels::ops_for(b);
      std::vector<std::uint32_t> got(xs.size(), 0xffffffffu);
      if (sorted) {
        ops.rank_sorted(arena, xs, shift, got.data());
      } else {
        ops.rank_unsorted(arena, xs, shift, got.data());
      }
      ASSERT_EQ(got, ref) << label << " on " << kernels::backend_name(b);
      ASSERT_EQ(ops.count_exceed(xs, threshold), ref_exceed)
          << label << " count_exceed on " << kernels::backend_name(b);
      if (sorted) {
        std::vector<std::uint32_t> grid(ref_grid.size(), 0xffffffffu);
        ops.rank_grid(arena, xs, sizes, grid.data());
        ASSERT_EQ(grid, ref_grid) << label << " rank_grid on "
                                  << kernels::backend_name(b);
      }
    }
    ++executed;
  }
  EXPECT_GE(executed, 500u);
}

TEST(KernelDifferential, ReplayAndJointKernelsBitIdenticalToScalar) {
  const auto simd = simd_backends();
  if (simd.empty()) GTEST_SKIP() << "no SIMD back-end available on this host";
  const kernels::Ops& scalar = *kernels::ops_for(Backend::Scalar);

  for (std::uint64_t c = 0; c < 200; ++c) {
    util::Xoshiro256 rng(0xab5eed + c);
    const std::size_t bins = 1 + rng() % 2000;
    std::vector<double> benign(bins), attack(bins);
    for (std::size_t i = 0; i < bins; ++i) {
      benign[i] = static_cast<double>(rng() % 30);
      attack[i] = (rng() % 3 == 0) ? static_cast<double>(rng() % 10) : 0.0;
    }
    const double threshold = static_cast<double>(rng() % 25);

    std::uint64_t ref_ba = 0, ref_ab = 0, ref_d = 0;
    scalar.replay_detect(benign, attack, threshold, ref_ba, ref_ab, ref_d);

    constexpr std::size_t kFeatures = 4;
    std::vector<std::vector<double>> series(kFeatures);
    std::vector<std::span<const double>> slices;
    std::vector<double> thresholds;
    for (std::size_t f = 0; f < kFeatures; ++f) {
      series[f].resize(bins);
      for (double& v : series[f]) v = static_cast<double>(rng() % 20);
      slices.push_back(series[f]);
      thresholds.push_back(static_cast<double>(rng() % 15));
    }
    std::vector<std::uint64_t> ref_marginal(kFeatures, 0);
    std::uint64_t ref_joint = 0;
    scalar.joint_exceed(slices.data(), thresholds.data(), kFeatures, bins,
                        ref_marginal.data(), ref_joint);

    for (Backend b : simd) {
      const kernels::Ops& ops = *kernels::ops_for(b);
      std::uint64_t ba = 99, ab = 99, d = 99;
      ops.replay_detect(benign, attack, threshold, ba, ab, d);
      ASSERT_EQ(ba, ref_ba) << "case " << c << " on " << kernels::backend_name(b);
      ASSERT_EQ(ab, ref_ab) << "case " << c << " on " << kernels::backend_name(b);
      ASSERT_EQ(d, ref_d) << "case " << c << " on " << kernels::backend_name(b);

      std::vector<std::uint64_t> marginal(kFeatures, 99);
      std::uint64_t joint = 99;
      ops.joint_exceed(slices.data(), thresholds.data(), kFeatures, bins,
                       marginal.data(), joint);
      ASSERT_EQ(marginal, ref_marginal) << "case " << c << " on "
                                        << kernels::backend_name(b);
      ASSERT_EQ(joint, ref_joint) << "case " << c << " on " << kernels::backend_name(b);
    }
  }
}

}  // namespace
}  // namespace monohids::stats
