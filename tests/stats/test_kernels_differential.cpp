// Randomized differential suite for the SIMD kernel layer: every available
// back-end, forced in-process, must produce bit-identical results to the
// scalar reference on the same inputs. Ranks and counts are integers, so
// "bit-identical" here is literal equality — any divergence is a kernel bug,
// not numerical noise. 500+ seeded cases sweep arena shapes (uniform,
// heavy-tailed, few-distinct-values/massive ties, empty, single-sample,
// extreme magnitudes) crossed with sorted and unsorted query batches whose
// values are deliberately pinned onto arena samples to stress tie handling.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "stats/kernels.hpp"
#include "stats/sampling.hpp"
#include "util/rng.hpp"

namespace monohids::stats {
namespace {

using kernels::Backend;

constexpr std::uint64_t kCases = 520;

std::vector<Backend> simd_backends() {
  std::vector<Backend> out;
  for (Backend b : {Backend::Avx2, Backend::Neon}) {
    if (kernels::backend_available(b)) out.push_back(b);
  }
  return out;
}

/// Draws one arena shape; returns its name for failure messages. Arenas are
/// returned sorted (the kernels' contract).
std::string fill_arena(std::uint64_t case_index, util::Xoshiro256& rng,
                       std::vector<double>& out) {
  const std::size_t n = case_index % 7 == 0   ? 0
                        : case_index % 7 == 1 ? 1
                                              : 1 + rng() % 3000;
  out.resize(n);
  std::string name;
  switch (case_index % 6) {
    case 0:
      for (double& v : out) v = rng.uniform01() * 100.0;
      name = "uniform";
      break;
    case 1: {
      const LogNormalSampler lognormal(0.0, 2.0);
      for (double& v : out) v = lognormal.sample(rng);
      name = "lognormal";
      break;
    }
    case 2:
      // Few distinct values: the tie regime every traffic-count feature
      // lives in, and the case where upper-bound vs lower-bound confusion
      // shows up immediately.
      for (double& v : out) v = static_cast<double>(rng() % 5);
      name = "five-values";
      break;
    case 3:
      for (double& v : out) v = static_cast<double>(rng() % 200);
      name = "counts";
      break;
    case 4:
      // Extreme magnitudes: denormal-adjacent and huge values in one arena.
      for (std::size_t i = 0; i < out.size(); ++i) {
        out[i] = (i % 2 == 0) ? rng.uniform01() * 1e-300 : rng.uniform01() * 1e300;
      }
      name = "extremes";
      break;
    default:
      out.assign(out.size(), 42.0);
      name = "constant";
      break;
  }
  std::sort(out.begin(), out.end());
  return name;
}

/// Query batch: half fresh random values, half pinned exactly onto arena
/// samples (ties). Sorted for even cases, shuffled for odd ones.
std::vector<double> make_queries(const std::vector<double>& arena, std::uint64_t case_index,
                                 util::Xoshiro256& rng, bool& sorted) {
  const std::size_t t = 1 + rng() % 300;
  std::vector<double> xs(t);
  for (double& q : xs) {
    if (!arena.empty() && rng() % 2 == 0) {
      q = arena[rng() % arena.size()];
    } else {
      q = (rng.uniform01() - 0.25) * 150.0;
    }
  }
  sorted = case_index % 2 == 0;
  if (sorted) {
    std::sort(xs.begin(), xs.end());
  } else {
    for (std::size_t i = xs.size(); i > 1; --i) std::swap(xs[i - 1], xs[rng() % i]);
  }
  return xs;
}

TEST(KernelDifferential, AllBackendsBitIdenticalToScalar) {
  const auto simd = simd_backends();
  if (simd.empty()) GTEST_SKIP() << "no SIMD back-end available on this host";
  const kernels::Ops& scalar = *kernels::ops_for(Backend::Scalar);

  std::uint64_t executed = 0;
  for (std::uint64_t c = 0; c < kCases; ++c) {
    util::Xoshiro256 rng(0x5eed0000 + c);
    std::vector<double> arena;
    const std::string arena_name = fill_arena(c, rng, arena);
    bool sorted = false;
    const std::vector<double> xs = make_queries(arena, c, rng, sorted);
    // Zero shift on every third case keeps the pinned queries exactly tied
    // to arena samples (nonzero shifts would perturb them off the ties).
    const double shift = (c % 3 == 0) ? 0.0 : (rng.uniform01() - 0.5) * 10.0;
    const std::string label =
        "case " + std::to_string(c) + " (" + arena_name + ", n=" +
        std::to_string(arena.size()) + ", t=" + std::to_string(xs.size()) +
        (sorted ? ", sorted)" : ", unsorted)");

    // Scalar reference answers.
    std::vector<std::uint32_t> ref(xs.size());
    if (sorted) {
      scalar.rank_sorted(arena, xs, shift, ref.data());
    } else {
      scalar.rank_unsorted(arena, xs, shift, ref.data());
    }
    const double threshold = xs[c % xs.size()];
    const std::uint64_t ref_exceed = scalar.count_exceed(xs, threshold);

    // Grid reference (sorted query batches double as ascending thresholds).
    std::vector<double> sizes(1 + rng() % 40);
    for (double& s : sizes) s = rng.uniform01() * 20.0;
    std::vector<std::uint32_t> ref_grid;
    if (sorted) {
      ref_grid.resize(xs.size() * sizes.size());
      scalar.rank_grid(arena, xs, sizes, ref_grid.data());
    }

    for (Backend b : simd) {
      const kernels::Ops& ops = *kernels::ops_for(b);
      std::vector<std::uint32_t> got(xs.size(), 0xffffffffu);
      if (sorted) {
        ops.rank_sorted(arena, xs, shift, got.data());
      } else {
        ops.rank_unsorted(arena, xs, shift, got.data());
      }
      ASSERT_EQ(got, ref) << label << " on " << kernels::backend_name(b);
      ASSERT_EQ(ops.count_exceed(xs, threshold), ref_exceed)
          << label << " count_exceed on " << kernels::backend_name(b);
      if (sorted) {
        std::vector<std::uint32_t> grid(ref_grid.size(), 0xffffffffu);
        ops.rank_grid(arena, xs, sizes, grid.data());
        ASSERT_EQ(grid, ref_grid) << label << " rank_grid on "
                                  << kernels::backend_name(b);
      }
    }
    ++executed;
  }
  EXPECT_GE(executed, 500u);
}

TEST(KernelDifferential, ReplayAndJointKernelsBitIdenticalToScalar) {
  const auto simd = simd_backends();
  if (simd.empty()) GTEST_SKIP() << "no SIMD back-end available on this host";
  const kernels::Ops& scalar = *kernels::ops_for(Backend::Scalar);

  for (std::uint64_t c = 0; c < 200; ++c) {
    util::Xoshiro256 rng(0xab5eed + c);
    const std::size_t bins = 1 + rng() % 2000;
    std::vector<double> benign(bins), attack(bins);
    for (std::size_t i = 0; i < bins; ++i) {
      benign[i] = static_cast<double>(rng() % 30);
      attack[i] = (rng() % 3 == 0) ? static_cast<double>(rng() % 10) : 0.0;
    }
    const double threshold = static_cast<double>(rng() % 25);

    std::uint64_t ref_ba = 0, ref_ab = 0, ref_d = 0;
    scalar.replay_detect(benign, attack, threshold, ref_ba, ref_ab, ref_d);

    constexpr std::size_t kFeatures = 4;
    std::vector<std::vector<double>> series(kFeatures);
    std::vector<std::span<const double>> slices;
    std::vector<double> thresholds;
    for (std::size_t f = 0; f < kFeatures; ++f) {
      series[f].resize(bins);
      for (double& v : series[f]) v = static_cast<double>(rng() % 20);
      slices.push_back(series[f]);
      thresholds.push_back(static_cast<double>(rng() % 15));
    }
    std::vector<std::uint64_t> ref_marginal(kFeatures, 0);
    std::uint64_t ref_joint = 0;
    scalar.joint_exceed(slices.data(), thresholds.data(), kFeatures, bins,
                        ref_marginal.data(), ref_joint);

    for (Backend b : simd) {
      const kernels::Ops& ops = *kernels::ops_for(b);
      std::uint64_t ba = 99, ab = 99, d = 99;
      ops.replay_detect(benign, attack, threshold, ba, ab, d);
      ASSERT_EQ(ba, ref_ba) << "case " << c << " on " << kernels::backend_name(b);
      ASSERT_EQ(ab, ref_ab) << "case " << c << " on " << kernels::backend_name(b);
      ASSERT_EQ(d, ref_d) << "case " << c << " on " << kernels::backend_name(b);

      std::vector<std::uint64_t> marginal(kFeatures, 99);
      std::uint64_t joint = 99;
      ops.joint_exceed(slices.data(), thresholds.data(), kFeatures, bins,
                       marginal.data(), joint);
      ASSERT_EQ(marginal, ref_marginal) << "case " << c << " on "
                                        << kernels::backend_name(b);
      ASSERT_EQ(joint, ref_joint) << "case " << c << " on " << kernels::backend_name(b);
    }
  }
}

TEST(KernelDifferential, PhiloxFillBitIdenticalToTheSerialEngine) {
  // The bulk counter-mode generator on every back-end must reproduce
  // util::Philox4x32 word for word — the v2 scenario contract's
  // SIMD-invariance rests on this, so the check is literal equality over
  // keys/streams/offsets including non-multiple-of-4 block counts.
  const auto simd = simd_backends();
  const kernels::Ops& scalar = *kernels::ops_for(Backend::Scalar);
  for (std::uint64_t c = 0; c < 50; ++c) {
    util::Xoshiro256 rng(0x9e37 + c);
    const std::uint64_t key = rng();
    const std::uint64_t stream = rng() % 4096;
    const std::uint64_t first_block = rng() % 1000;
    const std::size_t blocks = 1 + rng() % 70;

    util::Philox4x32 engine(key, stream);
    engine.seek(first_block * 4);
    std::vector<std::uint32_t> ref(blocks * 4);
    for (auto& w : ref) w = engine();

    std::vector<std::uint32_t> got(blocks * 4, 0xdeadbeefu);
    scalar.philox_fill(key, stream, first_block, got.data(), blocks);
    ASSERT_EQ(got, ref) << "case " << c << " on scalar";
    for (Backend b : simd) {
      std::fill(got.begin(), got.end(), 0xdeadbeefu);
      kernels::ops_for(b)->philox_fill(key, stream, first_block, got.data(), blocks);
      ASSERT_EQ(got, ref) << "case " << c << " on " << kernels::backend_name(b);
    }
  }
}

TEST(KernelDifferential, PoissonCountsBitIdenticalToScalar) {
  // The fused count sweep mixes four per-lane regimes: exact-zero means,
  // zero-draw shortcut lanes (word + mean clears nothing), inversion-walk
  // lanes below the normal cutoff, and heavy normal-regime lanes above it.
  // Cases deliberately pack mixed quads so the AVX2 per-lane masking and
  // the scalar funnel for heavy lanes are both exercised; counts and the
  // returned sum must match the scalar reference exactly.
  const auto simd = simd_backends();
  if (simd.empty()) GTEST_SKIP() << "no SIMD back-end available on this host";
  const kernels::Ops& scalar = *kernels::ops_for(Backend::Scalar);

  for (std::uint64_t c = 0; c < 120; ++c) {
    util::Xoshiro256 rng(0x70155a + c);
    const std::size_t n = 1 + rng() % 600;  // crosses quad boundaries freely
    std::vector<double> means(n);
    for (double& m : means) {
      switch (rng() % 6) {
        case 0: m = 0.0; break;                                   // exact zero
        case 1: m = rng.uniform01() * 0.01; break;                // shortcut-heavy
        case 2: m = rng.uniform01() * 1.0; break;                 // low inversion
        case 3: m = rng.uniform01() * 11.9; break;                // full inversion
        case 4: m = 12.0 + rng.uniform01() * 50.0; break;         // normal regime
        default: m = rng.uniform01() * 500.0; break;              // anything
      }
    }
    std::vector<std::uint32_t> words(((n + 3) / 4) * 4);
    util::Philox4x32::fill_blocks(rng(), c, 0, words.data(), (n + 3) / 4);
    words.resize(n);

    std::vector<std::uint32_t> ref(n, 0xffffffffu);
    const std::uint64_t ref_sum = scalar.poisson_counts(means.data(), words.data(),
                                                        ref.data(), n);

    for (Backend b : simd) {
      std::vector<std::uint32_t> got(n, 0xffffffffu);
      const std::uint64_t sum = kernels::ops_for(b)->poisson_counts(
          means.data(), words.data(), got.data(), n);
      ASSERT_EQ(got, ref) << "case " << c << " (n=" << n << ") on "
                          << kernels::backend_name(b);
      ASSERT_EQ(sum, ref_sum) << "case " << c << " on " << kernels::backend_name(b);
    }
  }
}

}  // namespace
}  // namespace monohids::stats
