#include "stats/moments.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace monohids::stats {
namespace {

TEST(RunningMoments, MatchesDirectComputation) {
  const std::vector<double> v{2, 4, 4, 4, 5, 5, 7, 9};
  RunningMoments m;
  for (double x : v) m.add(x);
  EXPECT_EQ(m.count(), v.size());
  EXPECT_DOUBLE_EQ(m.mean(), 5.0);
  EXPECT_DOUBLE_EQ(m.variance(), 4.0);
  EXPECT_DOUBLE_EQ(m.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(m.min(), 2.0);
  EXPECT_DOUBLE_EQ(m.max(), 9.0);
}

TEST(RunningMoments, EmptyIsZero) {
  const RunningMoments m;
  EXPECT_EQ(m.count(), 0u);
  EXPECT_DOUBLE_EQ(m.mean(), 0.0);
  EXPECT_DOUBLE_EQ(m.variance(), 0.0);
}

TEST(RunningMoments, SingleSampleHasZeroVariance) {
  RunningMoments m;
  m.add(42.0);
  EXPECT_DOUBLE_EQ(m.mean(), 42.0);
  EXPECT_DOUBLE_EQ(m.variance(), 0.0);
  EXPECT_DOUBLE_EQ(m.sample_variance(), 0.0);
}

TEST(RunningMoments, SampleVarianceUsesBesselCorrection) {
  RunningMoments m;
  m.add(1.0);
  m.add(3.0);
  EXPECT_DOUBLE_EQ(m.variance(), 1.0);         // population
  EXPECT_DOUBLE_EQ(m.sample_variance(), 2.0);  // n-1
}

TEST(RunningMoments, MergeEqualsSequential) {
  util::Xoshiro256 rng(8);
  RunningMoments whole, left, right;
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.uniform01() * 100 - 50;
    whole.add(x);
    (i < 700 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningMoments, MergeWithEmptySides) {
  RunningMoments a, b;
  a.add(1.0);
  a.add(2.0);
  RunningMoments copy = a;
  copy.merge(b);  // empty right
  EXPECT_DOUBLE_EQ(copy.mean(), 1.5);
  b.merge(a);  // empty left
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
  EXPECT_EQ(b.count(), 2u);
}

TEST(RunningMoments, NumericallyStableForLargeOffsets) {
  // Classic catastrophic-cancellation test: large mean, small variance.
  RunningMoments m;
  const double offset = 1e9;
  for (int i = 0; i < 1000; ++i) m.add(offset + (i % 2 == 0 ? 1.0 : -1.0));
  EXPECT_NEAR(m.variance(), 1.0, 1e-6);
}

}  // namespace
}  // namespace monohids::stats
