#include "util/table.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace monohids::util {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t({"policy", "alarms"});
  t.add_row({"homogeneous", "1594"});
  t.add_row({"full-diversity", "892"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| policy"), std::string::npos);
  EXPECT_NE(out.find("homogeneous"), std::string::npos);
  EXPECT_NE(out.find("892"), std::string::npos);
  // border rows: top, under header, bottom
  std::size_t plus_rows = 0;
  for (std::size_t pos = 0; (pos = out.find("+-", pos)) != std::string::npos; ++pos) {
    ++plus_rows;
  }
  EXPECT_GE(plus_rows, 3u);
}

TEST(TextTable, ColumnsPadToWidestCell) {
  TextTable t({"x"});
  t.add_row({"longer-cell"});
  const std::string out = t.render();
  // every line has the same width
  std::size_t first_len = out.find('\n');
  for (std::size_t start = 0; start < out.size();) {
    std::size_t end = out.find('\n', start);
    if (end == std::string::npos) break;
    EXPECT_EQ(end - start, first_len);
    start = end + 1;
  }
}

TEST(TextTable, RightAlignment) {
  TextTable t({"n"});
  t.set_alignment({Align::Right});
  t.add_row({"7"});
  t.add_row({"1234"});
  const std::string out = t.render();
  EXPECT_NE(out.find("|    7 |"), std::string::npos);
  EXPECT_NE(out.find("| 1234 |"), std::string::npos);
}

TEST(TextTable, MismatchedRowWidthIsAnError) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), PreconditionError);
}

TEST(TextTable, EmptyHeadersAreAnError) {
  EXPECT_THROW(TextTable({}), PreconditionError);
}

TEST(TextTable, RowCountTracksRows) {
  TextTable t({"a"});
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Fixed, FormatsDecimals) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(1.0, 3), "1.000");
  EXPECT_EQ(fixed(-0.5, 1), "-0.5");
}

}  // namespace
}  // namespace monohids::util
