#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace monohids::util {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.thread_count(), 4u);
    for (int i = 0; i < 200; ++i) {
      pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // destructor drains the queue before joining
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, SpawnsAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, OnWorkerThreadDistinguishesPoolThreads) {
  EXPECT_FALSE(ThreadPool::on_worker_thread());
  std::atomic<bool> seen_on_worker{false};
  std::atomic<bool> done{false};
  {
    ThreadPool pool(1);
    pool.submit([&] {
      seen_on_worker = ThreadPool::on_worker_thread();
      done = true;
    });
  }
  ASSERT_TRUE(done.load());
  EXPECT_TRUE(seen_on_worker.load());
  EXPECT_FALSE(ThreadPool::on_worker_thread());
}

TEST(ThreadPool, DefaultThreadCountIsPositive) {
  EXPECT_GE(default_thread_count(), 1u);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  constexpr std::size_t kCount = 5000;
  std::vector<std::atomic<int>> visits(kCount);
  parallel_for(
      kCount, [&](std::size_t i) { visits[i].fetch_add(1, std::memory_order_relaxed); },
      4);
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, ZeroCountIsANoop) {
  parallel_for(0, [](std::size_t) { FAIL() << "body must not run"; }, 4);
}

TEST(ParallelFor, SingleThreadRunsOnCallingThread) {
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(64);
  parallel_for(seen.size(), [&](std::size_t i) { seen[i] = std::this_thread::get_id(); },
               1);
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST(ParallelFor, MoreThreadsThanWork) {
  std::atomic<int> counter{0};
  parallel_for(3, [&](std::size_t) { counter.fetch_add(1); }, 16);
  EXPECT_EQ(counter.load(), 3);
}

TEST(ParallelFor, FirstExceptionPropagatesToCaller) {
  EXPECT_THROW(
      parallel_for(
          1000,
          [](std::size_t i) {
            if (i == 37) throw std::runtime_error("boom");
          },
          4),
      std::runtime_error);
  // The shared pool must stay usable after an exception.
  std::atomic<int> counter{0};
  parallel_for(100, [&](std::size_t) { counter.fetch_add(1); }, 4);
  EXPECT_EQ(counter.load(), 100);
}

TEST(ParallelFor, NestedInvocationCompletesWithoutDeadlock) {
  // A parallel_for inside a pool worker degrades to a serial inner loop;
  // the outer sweep still covers every (i, j) pair.
  constexpr std::size_t kOuter = 8, kInner = 32;
  std::vector<std::atomic<int>> visits(kOuter * kInner);
  parallel_for(
      kOuter,
      [&](std::size_t i) {
        parallel_for(
            kInner,
            [&](std::size_t j) {
              visits[i * kInner + j].fetch_add(1, std::memory_order_relaxed);
            },
            4);
      },
      4);
  for (std::size_t k = 0; k < visits.size(); ++k) {
    ASSERT_EQ(visits[k].load(), 1) << "pair " << k;
  }
}

TEST(ParallelMap, PreservesIndexOrder) {
  const auto squares = parallel_map(
      1000, [](std::size_t i) { return static_cast<int>(i * i); }, 4);
  ASSERT_EQ(squares.size(), 1000u);
  for (std::size_t i = 0; i < squares.size(); ++i) {
    ASSERT_EQ(squares[i], static_cast<int>(i * i));
  }
}

TEST(ParallelMap, SupportsMoveOnlyResults) {
  const auto boxed = parallel_map(
      100, [](std::size_t i) { return std::make_unique<int>(static_cast<int>(i)); }, 4);
  for (std::size_t i = 0; i < boxed.size(); ++i) {
    ASSERT_NE(boxed[i], nullptr);
    ASSERT_EQ(*boxed[i], static_cast<int>(i));
  }
}

TEST(ParallelMap, MatchesSerialResultForAnyThreadCount) {
  auto work = [](std::size_t i) {
    double acc = 0;
    for (std::size_t k = 1; k <= 50; ++k) acc += static_cast<double>(i * k) / (k + 1);
    return acc;
  };
  const auto serial = parallel_map(257, work, 1);
  for (unsigned threads : {2u, 3u, 8u}) {
    const auto parallel = parallel_map(257, work, threads);
    ASSERT_EQ(parallel, serial) << threads << " threads";
  }
}

}  // namespace
}  // namespace monohids::util
