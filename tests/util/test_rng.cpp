#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <set>
#include <vector>

namespace monohids::util {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro256, IsDeterministic) {
  Xoshiro256 a(99), b(99);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, Uniform01StaysInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro256, Uniform01MeanIsHalf) {
  Xoshiro256 rng(11);
  double acc = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) acc += rng.uniform01();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Xoshiro256, JumpProducesDisjointStream) {
  Xoshiro256 a(5);
  Xoshiro256 b(5);
  b.jump();
  std::set<std::uint64_t> from_a;
  for (int i = 0; i < 1000; ++i) from_a.insert(a());
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(from_a.contains(b()));
}

TEST(Xoshiro256, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Xoshiro256>);
  static_assert(std::uniform_random_bit_generator<SplitMix64>);
}

TEST(DeriveSeed, StableAcrossCalls) {
  EXPECT_EQ(derive_seed(42, "user", 7), derive_seed(42, "user", 7));
}

TEST(DeriveSeed, SensitiveToEveryInput) {
  const auto base = derive_seed(42, "user", 7);
  EXPECT_NE(base, derive_seed(43, "user", 7));
  EXPECT_NE(base, derive_seed(42, "web", 7));
  EXPECT_NE(base, derive_seed(42, "user", 8));
}

TEST(DeriveSeed, IndexNeighborsUncorrelated) {
  // Engines seeded from adjacent indices must not produce aligned output.
  Xoshiro256 a(derive_seed(1, "x", 0));
  Xoshiro256 b(derive_seed(1, "x", 1));
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro256, BitsLookBalanced) {
  // Population count over many draws should be close to 32 per word.
  Xoshiro256 rng(1234);
  double total_bits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) total_bits += std::popcount(rng());
  EXPECT_NEAR(total_bits / n, 32.0, 0.2);
}

TEST(Philox4x32, MatchesPublishedKnownAnswerVectors) {
  // The Random123 reference vectors for philox4x32-10 (Salmon et al.,
  // kat_vectors): counter/key of all zeros, all ones, and the pi digits.
  // These pin the constants, the round count, and the word order; the v2
  // scenario contract is defined in terms of exactly this function.
  using A4 = std::array<std::uint32_t, 4>;
  EXPECT_EQ(Philox4x32::block({0u, 0u, 0u, 0u}, 0u, 0u),
            (A4{0x6627e8d5u, 0xe169c58du, 0xbc57ac4cu, 0x9b00dbd8u}));
  EXPECT_EQ(Philox4x32::block({0xffffffffu, 0xffffffffu, 0xffffffffu, 0xffffffffu},
                              0xffffffffu, 0xffffffffu),
            (A4{0x408f276du, 0x41c83b0eu, 0xa20bc7c6u, 0x6d5451fdu}));
  EXPECT_EQ(Philox4x32::block({0x243f6a88u, 0x85a308d3u, 0x13198a2eu, 0x03707344u},
                              0xa4093822u, 0x299f31d0u),
            (A4{0xd16cfe09u, 0x94fdccebu, 0x5001e420u, 0x24126ea1u}));
}

TEST(Philox4x32, SeekMatchesSerialStepping) {
  // Random access is the property the v2 contract builds on: the engine
  // positioned at draw k must continue exactly like one stepped k times.
  Philox4x32 serial(0xfeedface12345678ull, 7);
  std::vector<std::uint32_t> words(64);
  for (auto& w : words) w = serial();
  for (const std::uint64_t k : {0ull, 1ull, 3ull, 4ull, 5ull, 17ull, 63ull}) {
    Philox4x32 seeked(0xfeedface12345678ull, 7);
    seeked.seek(k);
    EXPECT_EQ(seeked.draw_index(), k);
    for (std::uint64_t i = k; i < words.size(); ++i) {
      ASSERT_EQ(seeked(), words[i]) << "seek(" << k << ") word " << i;
    }
  }
}

TEST(Philox4x32, DrawIndexTracksConsumption) {
  Philox4x32 rng(42, 0);
  for (std::uint64_t i = 0; i < 13; ++i) {
    EXPECT_EQ(rng.draw_index(), i);
    (void)rng();
  }
}

TEST(Philox4x32, FillBlocksMatchesTheEngineWordForWord) {
  // The portable bulk form is the reference for the SIMD kernels and must
  // itself agree with the serial engine, including at nonzero offsets.
  const std::uint64_t key = derive_seed(42, "v2/bins", 0);
  const std::uint64_t stream = 511;
  Philox4x32 engine(key, stream);
  std::vector<std::uint32_t> serial(40 * 4);
  for (auto& w : serial) w = engine();
  std::vector<std::uint32_t> bulk(40 * 4);
  Philox4x32::fill_blocks(key, stream, 0, bulk.data(), 40);
  EXPECT_EQ(bulk, serial);
  std::vector<std::uint32_t> offset(25 * 4);
  Philox4x32::fill_blocks(key, stream, 15, offset.data(), 25);
  EXPECT_TRUE(std::equal(offset.begin(), offset.end(), serial.begin() + 15 * 4));
}

TEST(Philox4x32, Uniform01IsTheWordTimesTwoToMinus32) {
  Philox4x32 a(99, 3), b(99, 3);
  for (int i = 0; i < 100; ++i) {
    const double u = a.uniform01();
    EXPECT_EQ(u, static_cast<double>(b()) * 0x1.0p-32);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Philox4x32, MonobitBalanced) {
  // NIST-style monobit smoke on one stream: ones fraction over 32k words
  // within 4 sigma of 1/2 (sigma = 1/(2*sqrt(bits))).
  Philox4x32 rng(derive_seed(7, "quality", 0), 0);
  const int n = 32768;
  double ones = 0;
  for (int i = 0; i < n; ++i) ones += std::popcount(rng());
  const double frac = ones / (32.0 * n);
  EXPECT_NEAR(frac, 0.5, 4.0 * 0.5 / std::sqrt(32.0 * n));
}

TEST(Philox4x32, ChiSquareUniformOver16Bins) {
  // 16-bin chi-square on uniform01 draws: 15 degrees of freedom, mean 15,
  // variance 30. 50 keeps the false-positive rate ~1e-8 while still
  // catching any gross bin bias.
  Philox4x32 rng(derive_seed(7, "quality", 1), 0);
  const int n = 65536;
  std::array<int, 16> bins{};
  for (int i = 0; i < n; ++i) {
    ++bins[static_cast<std::size_t>(rng.uniform01() * 16.0)];
  }
  const double expected = n / 16.0;
  double chi2 = 0.0;
  for (const int b : bins) {
    const double d = b - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 50.0);
}

TEST(Philox4x32, AdjacentStreamsAndKeysAreUncorrelated) {
  // The v2 draw-key layout puts adjacent bins in adjacent streams of one
  // per-user key and adjacent users in sibling derived keys; neither
  // neighbor relation may leak correlation. Checked as: no equal words at
  // the same position, and the bitwise-XOR density between paired draws
  // stays near 16 of 32 bits.
  const auto check_pair = [](Philox4x32 a, Philox4x32 b) {
    int equal = 0;
    double xor_bits = 0.0;
    const int n = 4096;
    for (int i = 0; i < n; ++i) {
      const std::uint32_t wa = a(), wb = b();
      equal += wa == wb;
      xor_bits += std::popcount(wa ^ wb);
    }
    EXPECT_EQ(equal, 0);
    EXPECT_NEAR(xor_bits / n, 16.0, 0.5);
  };
  const std::uint64_t key = derive_seed(42, "v2/bins", 0);
  check_pair(Philox4x32(key, 100), Philox4x32(key, 101));
  check_pair(Philox4x32(derive_seed(42, "v2/bins", 1), 100),
             Philox4x32(derive_seed(43, "v2/bins", 1), 100));
}

}  // namespace
}  // namespace monohids::util
