#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <set>
#include <vector>

namespace monohids::util {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro256, IsDeterministic) {
  Xoshiro256 a(99), b(99);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, Uniform01StaysInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro256, Uniform01MeanIsHalf) {
  Xoshiro256 rng(11);
  double acc = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) acc += rng.uniform01();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Xoshiro256, JumpProducesDisjointStream) {
  Xoshiro256 a(5);
  Xoshiro256 b(5);
  b.jump();
  std::set<std::uint64_t> from_a;
  for (int i = 0; i < 1000; ++i) from_a.insert(a());
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(from_a.contains(b()));
}

TEST(Xoshiro256, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Xoshiro256>);
  static_assert(std::uniform_random_bit_generator<SplitMix64>);
}

TEST(DeriveSeed, StableAcrossCalls) {
  EXPECT_EQ(derive_seed(42, "user", 7), derive_seed(42, "user", 7));
}

TEST(DeriveSeed, SensitiveToEveryInput) {
  const auto base = derive_seed(42, "user", 7);
  EXPECT_NE(base, derive_seed(43, "user", 7));
  EXPECT_NE(base, derive_seed(42, "web", 7));
  EXPECT_NE(base, derive_seed(42, "user", 8));
}

TEST(DeriveSeed, IndexNeighborsUncorrelated) {
  // Engines seeded from adjacent indices must not produce aligned output.
  Xoshiro256 a(derive_seed(1, "x", 0));
  Xoshiro256 b(derive_seed(1, "x", 1));
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro256, BitsLookBalanced) {
  // Population count over many draws should be close to 32 per word.
  Xoshiro256 rng(1234);
  double total_bits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) total_bits += std::popcount(rng());
  EXPECT_NEAR(total_bits / n, 32.0, 0.2);
}

}  // namespace
}  // namespace monohids::util
