#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"

namespace monohids::util {
namespace {

TEST(CsvEscape, PlainFieldsPassThrough) {
  EXPECT_EQ(csv_escape("hello"), "hello");
  EXPECT_EQ(csv_escape(""), "");
  EXPECT_EQ(csv_escape("3.14"), "3.14");
}

TEST(CsvEscape, CommaTriggersQuoting) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
}

TEST(CsvEscape, QuotesAreDoubled) {
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvEscape, NewlinesAreQuoted) {
  EXPECT_EQ(csv_escape("a\nb"), "\"a\nb\"");
}

TEST(CsvWriter, WritesRows) {
  std::ostringstream os;
  CsvWriter w(os);
  w.write_row({"a", "b,c", "d"});
  w.write_row({"1", "2", "3"});
  EXPECT_EQ(os.str(), "a,\"b,c\",d\n1,2,3\n");
}

TEST(CsvWriter, FormatsDoublesRoundTrip) {
  const double value = 0.1234567890123;
  const std::string text = CsvWriter::format(value);
  EXPECT_NEAR(std::stod(text), value, 1e-12);
}

TEST(CsvParse, SimpleLine) {
  const auto fields = csv_parse_line("a,b,c");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "c");
}

TEST(CsvParse, EmptyFields) {
  const auto fields = csv_parse_line("a,,c,");
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[3], "");
}

TEST(CsvParse, QuotedFieldWithComma) {
  const auto fields = csv_parse_line("\"a,b\",c");
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0], "a,b");
}

TEST(CsvParse, EscapedQuote) {
  const auto fields = csv_parse_line("\"say \"\"hi\"\"\"");
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "say \"hi\"");
}

TEST(CsvParse, ToleratesTrailingCarriageReturn) {
  const auto fields = csv_parse_line("a,b\r");
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[1], "b");
}

TEST(CsvParse, UnterminatedQuoteIsAnError) {
  EXPECT_THROW(csv_parse_line("\"oops"), InputError);
}

TEST(CsvParse, MidFieldQuoteIsAnError) {
  EXPECT_THROW(csv_parse_line("ab\"c\""), InputError);
}

TEST(CsvParse, DocumentSplitsLines) {
  const auto rows = csv_parse("h1,h2\n1,2\n3,4\n");
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[2][1], "4");
}

TEST(CsvRoundTrip, EscapeThenParse) {
  const std::vector<std::string> original{"plain", "with,comma", "with \"quote\"", ""};
  std::ostringstream os;
  CsvWriter w(os);
  w.write_row(original);
  std::string line = os.str();
  line.pop_back();  // trailing newline
  EXPECT_EQ(csv_parse_line(line), original);
}

}  // namespace
}  // namespace monohids::util
