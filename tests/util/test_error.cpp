#include "util/error.hpp"

#include <gtest/gtest.h>

namespace monohids {
namespace {

TEST(Error, ExpectThrowsPreconditionErrorWithContext) {
  try {
    MONOHIDS_EXPECT(1 == 2, "impossible arithmetic");
    FAIL() << "should have thrown";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("impossible arithmetic"), std::string::npos);
    EXPECT_NE(what.find("test_error.cpp"), std::string::npos);
  }
}

TEST(Error, EnsureThrowsInputError) {
  EXPECT_THROW(MONOHIDS_ENSURE(false, "bad input"), InputError);
}

TEST(Error, PassingChecksDoNotThrow) {
  EXPECT_NO_THROW(MONOHIDS_EXPECT(true, "fine"));
  EXPECT_NO_THROW(MONOHIDS_ENSURE(2 + 2 == 4, "fine"));
}

TEST(Error, HierarchyRootsAtError) {
  // Callers can catch all library errors with one handler.
  EXPECT_THROW(
      {
        try {
          MONOHIDS_ENSURE(false, "x");
        } catch (const Error&) {
          throw;
        }
      },
      Error);
  static_assert(std::is_base_of_v<std::runtime_error, Error>);
  static_assert(std::is_base_of_v<Error, PreconditionError>);
  static_assert(std::is_base_of_v<Error, InputError>);
}

TEST(Error, ConditionOnlyEvaluatedOnce) {
  int calls = 0;
  auto check = [&] {
    ++calls;
    return true;
  };
  MONOHIDS_EXPECT(check(), "side effect");
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace monohids
