#include "util/logging.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace monohids::util {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { set_log_level(LogLevel::Warn); }
};

TEST_F(LoggingTest, LevelRoundTrips) {
  set_log_level(LogLevel::Debug);
  EXPECT_EQ(log_level(), LogLevel::Debug);
  set_log_level(LogLevel::Off);
  EXPECT_EQ(log_level(), LogLevel::Off);
}

TEST_F(LoggingTest, ParseAcceptsAllLevels) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::Debug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::Info);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::Warn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::Error);
  EXPECT_EQ(parse_log_level("off"), LogLevel::Off);
}

TEST_F(LoggingTest, ParseRejectsUnknownLevel) {
  EXPECT_THROW((void)parse_log_level("verbose"), InputError);
  EXPECT_THROW((void)parse_log_level(""), InputError);
  EXPECT_THROW((void)parse_log_level("WARN"), InputError);  // case-sensitive
}

TEST_F(LoggingTest, DisabledLevelSkipsMessageEvaluation) {
  set_log_level(LogLevel::Error);
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return "payload";
  };
  MONOHIDS_LOG(Debug, "test") << expensive();
  EXPECT_EQ(evaluations, 0);
  MONOHIDS_LOG(Error, "test") << expensive();
  EXPECT_EQ(evaluations, 1);
}

}  // namespace
}  // namespace monohids::util
