#include "util/ascii_chart.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace monohids::util {
namespace {

TEST(LineChart, RendersSeriesGlyphsAndLegend) {
  Series s{"detection", {0, 1, 2, 3}, {0.0, 0.5, 0.8, 1.0}};
  ChartOptions opt;
  const std::string out = render_line_chart({s}, opt);
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find("legend:"), std::string::npos);
  EXPECT_NE(out.find("detection"), std::string::npos);
}

TEST(LineChart, MultipleSeriesUseDistinctGlyphs) {
  Series a{"a", {0, 1}, {0.0, 1.0}};
  Series b{"b", {0, 1}, {1.0, 0.0}};
  const std::string out = render_line_chart({a, b}, {});
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find('o'), std::string::npos);
}

TEST(LineChart, LogScaleDropsNonPositiveValues) {
  Series s{"s", {0.0, 1.0, 10.0}, {-5.0, 1.0, 100.0}};
  ChartOptions opt;
  opt.x_scale = Scale::Log10;
  opt.y_scale = Scale::Log10;
  const std::string out = render_line_chart({s}, opt);
  EXPECT_NE(out.find('*'), std::string::npos);  // drew the positive points
}

TEST(LineChart, AllUndrawableYieldsPlaceholder) {
  Series s{"s", {0.0}, {-1.0}};
  ChartOptions opt;
  opt.y_scale = Scale::Log10;
  opt.x_scale = Scale::Log10;
  EXPECT_EQ(render_line_chart({s}, opt), "(no drawable points)\n");
}

TEST(LineChart, TooSmallCanvasIsAnError) {
  ChartOptions opt;
  opt.width = 2;
  EXPECT_THROW((void)render_line_chart({}, opt), PreconditionError);
}

TEST(LineChart, MismatchedXYLengthsAreAnError) {
  Series s{"s", {0, 1}, {0}};
  EXPECT_THROW((void)render_line_chart({s}, {}), PreconditionError);
}

TEST(LineChart, DegenerateSinglePointStillRenders) {
  Series s{"s", {5.0}, {5.0}};
  const std::string out = render_line_chart({s}, {});
  EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(Scatter, RendersPoints) {
  Series s{"users", {1, 2, 3}, {3, 1, 2}};
  const std::string out = render_scatter({s}, {});
  EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(Boxplot, RendersBoxAndMedian) {
  LabelledBox box{"homogeneous", {1.0, 2.0, 3.0, 4.0, 5.0, 2}};
  const std::string out = render_boxplot({box}, {});
  EXPECT_NE(out.find('#'), std::string::npos);   // median
  EXPECT_NE(out.find('='), std::string::npos);   // box body
  EXPECT_NE(out.find("outliers: 2"), std::string::npos);
  EXPECT_NE(out.find("homogeneous"), std::string::npos);
}

TEST(Boxplot, SharedAxisAlignsLabels) {
  LabelledBox a{"short", {0, 1, 2, 3, 4, 0}};
  LabelledBox b{"a-much-longer-label", {0, 1, 2, 3, 4, 0}};
  const std::string out = render_boxplot({a, b}, {});
  // Both data lines should start their '|' at the same column.
  const auto first = out.find('|');
  const auto second_line_start = out.find('\n') + 1;
  const auto second = out.find('|', second_line_start);
  EXPECT_EQ(first, second - second_line_start);
}

TEST(Boxplot, EmptyInputIsAnError) {
  EXPECT_THROW((void)render_boxplot({}, {}), PreconditionError);
}

TEST(Boxplot, LogScaleHandlesWideRanges) {
  LabelledBox box{"wide", {1.0, 10.0, 100.0, 1000.0, 10000.0, 0}};
  ChartOptions opt;
  opt.x_scale = Scale::Log10;
  const std::string out = render_boxplot({box}, opt);
  EXPECT_NE(out.find('#'), std::string::npos);
}

}  // namespace
}  // namespace monohids::util
