#include "util/cli.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace monohids::util {
namespace {

CliFlags make_flags() {
  CliFlags flags("test program");
  flags.add_int("users", 350, "population size");
  flags.add_double("weight", 0.4, "utility weight");
  flags.add_string("feature", "num-TCP-connections", "feature name");
  flags.add_bool("verbose", false, "enable logging");
  return flags;
}

std::vector<const char*> argv_of(std::initializer_list<const char*> args) {
  std::vector<const char*> v{"prog"};
  v.insert(v.end(), args.begin(), args.end());
  return v;
}

TEST(Cli, DefaultsApplyWithoutArguments) {
  auto flags = make_flags();
  auto argv = argv_of({});
  ASSERT_TRUE(flags.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(flags.get_int("users"), 350);
  EXPECT_DOUBLE_EQ(flags.get_double("weight"), 0.4);
  EXPECT_EQ(flags.get_string("feature"), "num-TCP-connections");
  EXPECT_FALSE(flags.get_bool("verbose"));
}

TEST(Cli, EqualsSyntax) {
  auto flags = make_flags();
  auto argv = argv_of({"--users=42", "--weight=0.9", "--feature=num-UDP-connections"});
  ASSERT_TRUE(flags.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(flags.get_int("users"), 42);
  EXPECT_DOUBLE_EQ(flags.get_double("weight"), 0.9);
  EXPECT_EQ(flags.get_string("feature"), "num-UDP-connections");
}

TEST(Cli, SpaceSyntax) {
  auto flags = make_flags();
  auto argv = argv_of({"--users", "17"});
  ASSERT_TRUE(flags.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(flags.get_int("users"), 17);
}

TEST(Cli, BareBooleanEnables) {
  auto flags = make_flags();
  auto argv = argv_of({"--verbose"});
  ASSERT_TRUE(flags.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_TRUE(flags.get_bool("verbose"));
}

TEST(Cli, BooleanExplicitValues) {
  auto flags = make_flags();
  auto argv = argv_of({"--verbose=true"});
  ASSERT_TRUE(flags.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_TRUE(flags.get_bool("verbose"));

  auto flags2 = make_flags();
  auto argv2 = argv_of({"--verbose=0"});
  ASSERT_TRUE(flags2.parse(static_cast<int>(argv2.size()), argv2.data()));
  EXPECT_FALSE(flags2.get_bool("verbose"));
}

TEST(Cli, NegativeNumbers) {
  CliFlags flags("t");
  flags.add_int("offset", 0, "offset");
  flags.add_double("bias", 0.0, "bias");
  auto argv = argv_of({"--offset=-5", "--bias=-2.5"});
  ASSERT_TRUE(flags.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(flags.get_int("offset"), -5);
  EXPECT_DOUBLE_EQ(flags.get_double("bias"), -2.5);
}

TEST(Cli, UnknownFlagIsAnError) {
  auto flags = make_flags();
  auto argv = argv_of({"--userz=5"});
  EXPECT_THROW((void)flags.parse(static_cast<int>(argv.size()), argv.data()), InputError);
}

TEST(Cli, MalformedIntIsAnError) {
  auto flags = make_flags();
  auto argv = argv_of({"--users=ten"});
  EXPECT_THROW((void)flags.parse(static_cast<int>(argv.size()), argv.data()), InputError);
}

TEST(Cli, MissingValueIsAnError) {
  auto flags = make_flags();
  auto argv = argv_of({"--users"});
  EXPECT_THROW((void)flags.parse(static_cast<int>(argv.size()), argv.data()), InputError);
}

TEST(Cli, PositionalArgumentIsAnError) {
  auto flags = make_flags();
  auto argv = argv_of({"extra"});
  EXPECT_THROW((void)flags.parse(static_cast<int>(argv.size()), argv.data()), InputError);
}

TEST(Cli, HelpReturnsFalse) {
  auto flags = make_flags();
  auto argv = argv_of({"--help"});
  ::testing::internal::CaptureStdout();
  EXPECT_FALSE(flags.parse(static_cast<int>(argv.size()), argv.data()));
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("test program"), std::string::npos);
  EXPECT_NE(out.find("--users"), std::string::npos);
}

TEST(Cli, WrongTypeAccessIsAProgrammerError) {
  auto flags = make_flags();
  EXPECT_THROW((void)flags.get_int("weight"), PreconditionError);
  EXPECT_THROW((void)flags.get_bool("nonexistent"), PreconditionError);
}

TEST(Cli, UsageListsDefaults) {
  auto flags = make_flags();
  const std::string usage = flags.usage("prog");
  EXPECT_NE(usage.find("default: 350"), std::string::npos);
  EXPECT_NE(usage.find("default: 0.4"), std::string::npos);
}

}  // namespace
}  // namespace monohids::util
