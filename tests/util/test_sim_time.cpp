#include "util/sim_time.hpp"

#include <gtest/gtest.h>

namespace monohids::util {
namespace {

TEST(SimTime, SecondsRoundTrip) {
  EXPECT_EQ(from_seconds(1.5), 1'500'000u);
  EXPECT_DOUBLE_EQ(to_seconds(2'500'000), 2.5);
}

TEST(SimTime, WeekOf) {
  EXPECT_EQ(week_of(0), 0u);
  EXPECT_EQ(week_of(kMicrosPerWeek - 1), 0u);
  EXPECT_EQ(week_of(kMicrosPerWeek), 1u);
  EXPECT_EQ(week_of(4 * kMicrosPerWeek + 5), 4u);
}

TEST(SimTime, DayOfWeekStartsMonday) {
  EXPECT_EQ(day_of_week(0), 0u);                      // Monday
  EXPECT_EQ(day_of_week(4 * kMicrosPerDay), 4u);      // Friday
  EXPECT_EQ(day_of_week(6 * kMicrosPerDay), 6u);      // Sunday
  EXPECT_EQ(day_of_week(7 * kMicrosPerDay), 0u);      // wraps to Monday
}

TEST(SimTime, WeekendDetection) {
  EXPECT_FALSE(is_weekend(0));
  EXPECT_FALSE(is_weekend(4 * kMicrosPerDay + kMicrosPerHour));
  EXPECT_TRUE(is_weekend(5 * kMicrosPerDay));
  EXPECT_TRUE(is_weekend(6 * kMicrosPerDay + 12 * kMicrosPerHour));
}

TEST(SimTime, HourOfDay) {
  EXPECT_DOUBLE_EQ(hour_of_day(0), 0.0);
  EXPECT_DOUBLE_EQ(hour_of_day(13 * kMicrosPerHour + 30 * kMicrosPerMinute), 13.5);
  EXPECT_DOUBLE_EQ(hour_of_day(kMicrosPerDay + kMicrosPerHour), 1.0);
}

TEST(BinGrid, FifteenMinuteBins) {
  const BinGrid grid = BinGrid::minutes(15);
  EXPECT_EQ(grid.width(), 15 * kMicrosPerMinute);
  EXPECT_EQ(grid.bin_of(0), 0u);
  EXPECT_EQ(grid.bin_of(15 * kMicrosPerMinute - 1), 0u);
  EXPECT_EQ(grid.bin_of(15 * kMicrosPerMinute), 1u);
  EXPECT_EQ(grid.bin_count(kMicrosPerWeek), 672u);
}

TEST(BinGrid, FiveMinuteBins) {
  const BinGrid grid = BinGrid::minutes(5);
  EXPECT_EQ(grid.bin_count(kMicrosPerWeek), 2016u);
}

TEST(BinGrid, BinStartInvertsBinOf) {
  const BinGrid grid = BinGrid::minutes(15);
  for (std::uint64_t b : {0ull, 1ull, 100ull, 671ull}) {
    EXPECT_EQ(grid.bin_of(grid.bin_start(b)), b);
  }
}

TEST(BinGrid, PartialBinRoundsUp) {
  const BinGrid grid = BinGrid::minutes(15);
  EXPECT_EQ(grid.bin_count(15 * kMicrosPerMinute + 1), 2u);
  EXPECT_EQ(grid.bin_count(1), 1u);
}

}  // namespace
}  // namespace monohids::util
