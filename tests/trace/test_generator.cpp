#include "trace/generator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "trace/population.hpp"
#include "util/error.hpp"

namespace monohids::trace {
namespace {

using features::FeatureKind;
using util::kMicrosPerDay;
using util::kMicrosPerWeek;

UserProfile test_user(std::uint64_t seed = 42, double intensity = 2.0) {
  PopulationConfig config;
  config.user_count = 10;
  config.seed = seed;
  auto users = generate_population(config);
  UserProfile u = users[3];
  const double scale = intensity / u.intensity;
  u.intensity = intensity;
  for (AppKind app : kAllApps) {
    u.session_rate_per_hour[index_of(app)] *= scale;
  }
  return u;
}

GeneratorConfig one_week() {
  GeneratorConfig config;
  config.weeks = 1;
  return config;
}

TEST(Generator, FeatureMatrixIsDeterministic) {
  const TraceGenerator gen(one_week());
  const UserProfile u = test_user();
  const auto a = gen.generate_features(u);
  const auto b = gen.generate_features(u);
  for (FeatureKind f : features::kAllFeatures) {
    for (std::size_t bin = 0; bin < a.of(f).bin_count(); ++bin) {
      ASSERT_DOUBLE_EQ(a.of(f).at(bin), b.of(f).at(bin));
    }
  }
}

TEST(Generator, MatrixCoversConfiguredHorizon) {
  GeneratorConfig config;
  config.weeks = 3;
  const TraceGenerator gen(config);
  const auto m = gen.generate_features(test_user());
  EXPECT_EQ(m.of(FeatureKind::TcpConnections).bin_count(), 3u * 672u);
}

TEST(Generator, TrafficFollowsDiurnalRhythm) {
  const TraceGenerator gen(one_week());
  const auto m = gen.generate_features(test_user(42, 8.0));
  const auto& tcp = m.of(FeatureKind::TcpConnections);
  // Average over work-hour bins (Tue 10:00-16:00) vs night bins (Tue 01:00-05:00).
  double work = 0, night = 0;
  int work_n = 0, night_n = 0;
  const auto grid = tcp.grid();
  for (std::size_t b = 0; b < tcp.bin_count(); ++b) {
    const auto t = grid.bin_start(b);
    if (util::day_of_week(t) != 1) continue;
    const double hour = util::hour_of_day(t);
    if (hour >= 10 && hour < 16) {
      work += tcp.at(b);
      ++work_n;
    } else if (hour >= 1 && hour < 5) {
      night += tcp.at(b);
      ++night_n;
    }
  }
  ASSERT_GT(work_n, 0);
  ASSERT_GT(night_n, 0);
  EXPECT_GT(work / work_n, 3.0 * (night / night_n + 1.0));
}

TEST(Generator, HeavierUsersProduceMoreTraffic) {
  const TraceGenerator gen(one_week());
  const auto light = gen.generate_features(test_user(42, 0.5));
  const auto heavy = gen.generate_features(test_user(42, 10.0));
  double light_total = 0, heavy_total = 0;
  for (std::size_t b = 0; b < light.of(FeatureKind::TcpConnections).bin_count(); ++b) {
    light_total += light.of(FeatureKind::TcpConnections).at(b);
    heavy_total += heavy.of(FeatureKind::TcpConnections).at(b);
  }
  EXPECT_GT(heavy_total, 5.0 * light_total);
}

TEST(Generator, PacketsAreTimeOrderedAndInRange) {
  const TraceGenerator gen(one_week());
  const auto packets = gen.generate_packets(test_user(), 0, kMicrosPerDay);
  ASSERT_FALSE(packets.empty());
  for (std::size_t i = 1; i < packets.size(); ++i) {
    ASSERT_LE(packets[i - 1].timestamp, packets[i].timestamp);
  }
  EXPECT_LT(packets.back().timestamp, kMicrosPerDay);
}

TEST(Generator, EveryPacketInvolvesTheUser) {
  const TraceGenerator gen(one_week());
  const UserProfile u = test_user();
  const auto packets = gen.generate_packets(u, 0, kMicrosPerDay / 2);
  for (const auto& p : packets) {
    ASSERT_TRUE(p.tuple.src_ip == u.address || p.tuple.dst_ip == u.address);
  }
}

TEST(Generator, WindowedGenerationSeesSameSessions) {
  // Generating [day2, day3) alone must produce the same packet count in that
  // window as generating [0, day3) and filtering (session-level determinism).
  const TraceGenerator gen(one_week());
  const UserProfile u = test_user();
  const auto window = gen.generate_packets(u, 2 * kMicrosPerDay, 3 * kMicrosPerDay);
  auto whole = gen.generate_packets(u, 0, 3 * kMicrosPerDay);
  std::erase_if(whole, [](const net::PacketRecord& p) {
    return p.timestamp < 2 * kMicrosPerDay;
  });
  // Same sessions at the same arrival times; allow tiny clipping differences
  // for sessions straddling the window edges.
  EXPECT_NEAR(static_cast<double>(window.size()), static_cast<double>(whole.size()),
              std::max(20.0, 0.02 * static_cast<double>(whole.size())));
}

TEST(Generator, InvalidRangesAreErrors) {
  const TraceGenerator gen(one_week());
  const UserProfile u = test_user();
  EXPECT_THROW((void)gen.generate_packets(u, 100, 100), PreconditionError);
  EXPECT_THROW((void)gen.generate_packets(u, 0, 2 * kMicrosPerWeek), PreconditionError);
}

TEST(Generator, PoolsAreDeterministicPerUser) {
  const TraceGenerator gen(one_week());
  const UserProfile u = test_user();
  const auto a = gen.make_pools(u);
  const auto b = gen.make_pools(u);
  ASSERT_EQ(a.web_servers.size(), b.web_servers.size());
  EXPECT_EQ(a.web_servers, b.web_servers);
  EXPECT_EQ(a.peer_pool, b.peer_pool);
  EXPECT_GE(a.web_servers.size(), 8u);
}

TEST(Generator, HorizonIsBinAligned) {
  // Default grids divide the week exactly: the horizon stays weeks * week.
  GeneratorConfig config;
  EXPECT_EQ(config.horizon(), config.weeks * kMicrosPerWeek);
  // Non-divisible grids round UP to a whole bin so the feature path (which
  // always renders whole bins) and the packet path cover the same range.
  config.weeks = 1;
  config.grid = util::BinGrid::minutes(660);
  EXPECT_EQ(config.horizon() % config.grid.width(), 0u);
  EXPECT_GE(config.horizon(), kMicrosPerWeek);
  EXPECT_LT(config.horizon(), kMicrosPerWeek + config.grid.width());
}

TEST(Generator, PacketPathCoversFinalPartialBin) {
  // 660-minute bins over one week: the 16th bin starts Sunday 21:00 and
  // runs to Monday 08:00 — past the raw one-week mark. Before the horizon
  // was bin-aligned, generate_features rendered that whole bin while the
  // packet path clipped at the raw week, so the two paths disagreed on the
  // covered range. Both must now render through the aligned horizon.
  GeneratorConfig config;
  config.weeks = 1;
  config.grid = util::BinGrid::minutes(660);
  const TraceGenerator gen(config);
  const UserProfile u = test_user(42, 8.0);

  const auto m = gen.generate_features(u);
  const std::uint64_t bins = config.grid.bin_count(config.horizon());
  EXPECT_EQ(m.of(FeatureKind::TcpConnections).bin_count(), bins);
  EXPECT_EQ(m.of(FeatureKind::TcpConnections).horizon(), config.horizon());

  const auto packets = gen.generate_packets(u, 0, config.horizon());
  ASSERT_FALSE(packets.empty());
  // Monday-morning traffic (past the raw week) proves the packet walk
  // renders the partial-bin extension instead of clipping at weeks * week.
  EXPECT_GE(packets.back().timestamp, kMicrosPerWeek);
  EXPECT_EQ(config.grid.bin_of(packets.back().timestamp), bins - 1);
}

TEST(Generator, ZeroWeeksIsAnError) {
  GeneratorConfig config;
  config.weeks = 0;
  EXPECT_THROW(TraceGenerator{config}, PreconditionError);
}

}  // namespace
}  // namespace monohids::trace
