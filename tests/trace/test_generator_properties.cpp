// Statistical properties of the trace generator at population scale: the
// modelling mechanisms DESIGN.md documents must actually show up in the
// generated data, feature by feature.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "trace/generator.hpp"
#include "trace/population.hpp"

namespace monohids::trace {
namespace {

using features::FeatureKind;

struct Corpus {
  std::vector<UserProfile> users;
  std::vector<features::FeatureMatrix> matrices;
};

const Corpus& corpus() {
  static const Corpus c = [] {
    Corpus corpus;
    PopulationConfig pop;
    pop.user_count = 120;
    pop.seed = 11;
    corpus.users = generate_population(pop);
    const TraceGenerator gen{GeneratorConfig{}};
    for (const auto& u : corpus.users) {
      corpus.matrices.push_back(gen.generate_features(u));
    }
    return corpus;
  }();
  return c;
}

double weekly_total(const features::FeatureMatrix& m, FeatureKind f, std::uint32_t week) {
  const auto slice = m.of(f).week_slice(week);
  return std::accumulate(slice.begin(), slice.end(), 0.0);
}

TEST(GeneratorProperties, WeeklyTrendShowsInPopulationTotals) {
  // The configured ~0.84/week decline must appear in aggregate TCP volume.
  double week0 = 0, week4 = 0;
  for (const auto& m : corpus().matrices) {
    week0 += weekly_total(m, FeatureKind::TcpConnections, 0);
    week4 += weekly_total(m, FeatureKind::TcpConnections, 4);
  }
  const double expected = std::pow(0.84, 4);
  const double measured = week4 / week0;
  EXPECT_NEAR(measured, expected, 0.25);
  EXPECT_LT(measured, 0.85);
}

TEST(GeneratorProperties, PerUserDriftMatchesProfileMultipliers) {
  // For a fixed user, weekly totals should track the profile's drift
  // multipliers (same app mix, different weeks).
  const auto& u = corpus().users[5];
  const auto& m = corpus().matrices[5];
  const double base = weekly_total(m, FeatureKind::TcpConnections, 0) /
                      u.drift(0, AppKind::Web);
  for (std::uint32_t w = 1; w < 5; ++w) {
    const double predicted = base * u.drift(w, AppKind::Web);
    const double actual = weekly_total(m, FeatureKind::TcpConnections, w);
    EXPECT_NEAR(actual, predicted, 0.35 * predicted) << "week " << w;
  }
}

TEST(GeneratorProperties, DeveloperArchetypeIsTcpHeavyUdpLight) {
  // Compare archetype cohorts on their TCP:UDP weekly ratio.
  double dev_ratio = 0, media_ratio = 0;
  int dev_n = 0, media_n = 0;
  for (std::size_t i = 0; i < corpus().users.size(); ++i) {
    const double tcp = weekly_total(corpus().matrices[i], FeatureKind::TcpConnections, 0);
    const double udp = weekly_total(corpus().matrices[i], FeatureKind::UdpConnections, 0);
    if (udp <= 0) continue;
    const double ratio = tcp / udp;
    if (corpus().users[i].archetype == Archetype::Developer) {
      dev_ratio += ratio;
      ++dev_n;
    } else if (corpus().users[i].archetype == Archetype::Media) {
      media_ratio += ratio;
      ++media_n;
    }
  }
  ASSERT_GT(dev_n, 0);
  ASSERT_GT(media_n, 0);
  EXPECT_GT(dev_ratio / dev_n, 3.0 * (media_ratio / media_n));
}

TEST(GeneratorProperties, ResolverCacheCompressesDnsSpread) {
  // Heavy hosts' DNS volume grows sublinearly: DNS/TCP ratio shrinks with
  // intensity.
  double light_ratio = 0, heavy_ratio = 0;
  int light_n = 0, heavy_n = 0;
  for (std::size_t i = 0; i < corpus().users.size(); ++i) {
    const double tcp = weekly_total(corpus().matrices[i], FeatureKind::TcpConnections, 0);
    const double dns = weekly_total(corpus().matrices[i], FeatureKind::DnsConnections, 0);
    if (tcp <= 0) continue;
    if (corpus().users[i].intensity < 1.5) {
      light_ratio += dns / tcp;
      ++light_n;
    } else if (corpus().users[i].intensity > 6.0) {
      heavy_ratio += dns / tcp;
      ++heavy_n;
    }
  }
  ASSERT_GT(light_n, 0);
  ASSERT_GT(heavy_n, 0);
  EXPECT_GT(light_ratio / light_n, 2.0 * (heavy_ratio / heavy_n));
}

TEST(GeneratorProperties, SynCountsDominateTcpConnections) {
  // Invariant: every connection needs at least one SYN; retransmissions can
  // only add. Holds bin by bin.
  for (int i : {0, 10, 50}) {
    const auto& m = corpus().matrices[static_cast<std::size_t>(i)];
    const auto& tcp = m.of(FeatureKind::TcpConnections);
    const auto& syn = m.of(FeatureKind::TcpSyn);
    for (std::size_t b = 0; b < tcp.bin_count(); ++b) {
      ASSERT_GE(syn.at(b), tcp.at(b)) << "user " << i << " bin " << b;
    }
  }
}

TEST(GeneratorProperties, HttpIsASubsetOfTcp) {
  for (int i : {1, 20, 77}) {
    const auto& m = corpus().matrices[static_cast<std::size_t>(i)];
    const auto& tcp = m.of(FeatureKind::TcpConnections);
    const auto& http = m.of(FeatureKind::HttpConnections);
    for (std::size_t b = 0; b < tcp.bin_count(); ++b) {
      ASSERT_LE(http.at(b), tcp.at(b));
    }
  }
}

TEST(GeneratorProperties, DistinctBoundedByConnectionAttempts) {
  // You cannot touch more distinct destinations than you made connections
  // (TCP + UDP), since every destination draw rides a connection.
  for (int i : {2, 33, 99}) {
    const auto& m = corpus().matrices[static_cast<std::size_t>(i)];
    for (std::size_t b = 0; b < m.series.front().bin_count(); ++b) {
      const double attempts = m.of(FeatureKind::TcpConnections).at(b) +
                              m.of(FeatureKind::UdpConnections).at(b);
      ASSERT_LE(m.of(FeatureKind::DistinctConnections).at(b), attempts + 1e-9);
    }
  }
}

TEST(GeneratorProperties, WeekendsAreQuieterThanWeekdays) {
  double weekday = 0, weekend = 0;
  std::size_t weekday_n = 0, weekend_n = 0;
  for (const auto& m : corpus().matrices) {
    const auto& tcp = m.of(FeatureKind::TcpConnections);
    for (std::size_t b = 0; b < 672; ++b) {
      const auto t = tcp.grid().bin_start(b);
      if (util::is_weekend(t)) {
        weekend += tcp.at(b);
        ++weekend_n;
      } else {
        weekday += tcp.at(b);
        ++weekday_n;
      }
    }
  }
  EXPECT_GT(weekday / static_cast<double>(weekday_n),
            2.0 * weekend / static_cast<double>(weekend_n));
}

}  // namespace
}  // namespace monohids::trace
