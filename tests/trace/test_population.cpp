#include "trace/population.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "util/error.hpp"

namespace monohids::trace {
namespace {

PopulationConfig small_config(std::uint32_t n = 100, std::uint64_t seed = 42) {
  PopulationConfig config;
  config.user_count = n;
  config.seed = seed;
  return config;
}

TEST(Population, DeterministicForAFixedSeed) {
  const auto a = generate_population(small_config());
  const auto b = generate_population(small_config());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].seed, b[i].seed);
    EXPECT_DOUBLE_EQ(a[i].intensity, b[i].intensity);
    EXPECT_DOUBLE_EQ(a[i].rate_of(AppKind::Web), b[i].rate_of(AppKind::Web));
  }
}

TEST(Population, DifferentSeedsDiffer) {
  const auto a = generate_population(small_config(100, 1));
  const auto b = generate_population(small_config(100, 2));
  int identical = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].intensity == b[i].intensity) ++identical;
  }
  EXPECT_EQ(identical, 0);
}

TEST(Population, UniqueAddressesAndIds) {
  const auto users = generate_population(small_config(200));
  std::set<std::uint32_t> ids, addrs;
  for (const auto& u : users) {
    ids.insert(u.user_id);
    addrs.insert(u.address.value());
  }
  EXPECT_EQ(ids.size(), 200u);
  EXPECT_EQ(addrs.size(), 200u);
}

TEST(Population, HeavyFractionApproximatelyRespected) {
  const auto users = generate_population(small_config(1000));
  const auto heavy = static_cast<double>(
      std::count_if(users.begin(), users.end(),
                    [](const UserProfile& u) { return u.heavy_class; }));
  EXPECT_NEAR(heavy / 1000.0, 0.15, 0.04);
}

TEST(Population, IntensitySpansAboutTwoDecades) {
  const auto users = generate_population(small_config(350));
  double lo = 1e18, hi = 0;
  for (const auto& u : users) {
    lo = std::min(lo, u.intensity);
    hi = std::max(hi, u.intensity);
  }
  EXPECT_GE(std::log10(hi / lo), 1.5);
  EXPECT_GE(lo, 0.3);  // even idle hosts chatter
}

TEST(Population, ExtremeHostsExistAndAreBulkHeavy) {
  const auto users = generate_population(small_config(350));
  std::vector<double> intensities;
  for (const auto& u : users) intensities.push_back(u.intensity);
  std::sort(intensities.begin(), intensities.end());
  const double median = intensities[175];
  // ~4 promoted extremes dominate the tail.
  EXPECT_GT(intensities.back(), 20.0 * median);
  // Extremes are sustained-load machines: episode amplitude reset to 1.
  const auto top = std::max_element(users.begin(), users.end(),
                                    [](const UserProfile& a, const UserProfile& b) {
                                      return a.intensity < b.intensity;
                                    });
  EXPECT_DOUBLE_EQ(top->episode_amplitude, 1.0);
}

TEST(Population, HeavyUsersAreEpisodicallyHeavy) {
  const auto users = generate_population(small_config(350));
  for (const auto& u : users) {
    if (u.heavy_class) {
      EXPECT_GE(u.episode_amplitude, 1.0);
    } else {
      EXPECT_DOUBLE_EQ(u.episode_amplitude, 1.0);
    }
  }
}

TEST(Population, AllAppRatesArePositive) {
  const auto users = generate_population(small_config(200));
  for (const auto& u : users) {
    for (AppKind app : kAllApps) {
      EXPECT_GT(u.rate_of(app), 0.0) << "user " << u.user_id << " app " << name_of(app);
    }
  }
}

TEST(Population, WeeklyDriftHasConfiguredHorizonAndTrend) {
  PopulationConfig config = small_config(50);
  config.weeks = 5;
  config.weekly_trend = 0.8;
  const auto users = generate_population(config);
  for (const auto& u : users) {
    ASSERT_EQ(u.weekly_drift.size(), 5u);
    // Past-horizon queries fall back to 1.
    EXPECT_DOUBLE_EQ(u.drift(99, AppKind::Web), 1.0);
  }
  // Mean drift should decay roughly with the trend across the population.
  double wk0 = 0, wk4 = 0;
  for (const auto& u : users) {
    wk0 += u.drift(0, AppKind::Web);
    wk4 += u.drift(4, AppKind::Web);
  }
  EXPECT_LT(wk4, wk0 * std::pow(0.8, 4) * 1.4);
}

TEST(Population, DiurnalParametersWithinModeledRanges) {
  const auto users = generate_population(small_config(200));
  for (const auto& u : users) {
    EXPECT_GE(u.diurnal.phase_hours, -2.0);
    EXPECT_LE(u.diurnal.phase_hours, 2.0);
    EXPECT_GT(u.diurnal.night_floor, 0.0);
    EXPECT_LT(u.diurnal.weekend_factor, 1.0);
  }
}

TEST(Population, EmptyPopulationIsAnError) {
  PopulationConfig config;
  config.user_count = 0;
  EXPECT_THROW((void)generate_population(config), PreconditionError);
}

TEST(Population, DestinationPoolScalesWithIntensity) {
  const auto users = generate_population(small_config(350));
  double light_total = 0, heavy_total = 0;
  int light_n = 0, heavy_n = 0;
  for (const auto& u : users) {
    if (u.intensity < 1.0) {
      light_total += u.destination_pool_size;
      ++light_n;
    } else if (u.intensity > 10.0) {
      heavy_total += u.destination_pool_size;
      ++heavy_n;
    }
  }
  ASSERT_GT(light_n, 0);
  ASSERT_GT(heavy_n, 0);
  EXPECT_GT(heavy_total / heavy_n, light_total / light_n);
}

void expect_same_profile(const UserProfile& a, const UserProfile& b) {
  EXPECT_EQ(a.user_id, b.user_id);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.address.value(), b.address.value());
  EXPECT_EQ(a.archetype, b.archetype);
  EXPECT_EQ(a.heavy_class, b.heavy_class);
  EXPECT_EQ(a.intensity, b.intensity);
  for (AppKind app : kAllApps) {
    EXPECT_EQ(a.session_rate_per_hour[index_of(app)],
              b.session_rate_per_hour[index_of(app)]);
  }
  EXPECT_EQ(a.diurnal.phase_hours, b.diurnal.phase_hours);
  EXPECT_EQ(a.diurnal.work_level, b.diurnal.work_level);
  EXPECT_EQ(a.diurnal.evening_level, b.diurnal.evening_level);
  EXPECT_EQ(a.diurnal.night_floor, b.diurnal.night_floor);
  EXPECT_EQ(a.diurnal.weekend_factor, b.diurnal.weekend_factor);
  EXPECT_EQ(a.episode_rate_per_hour, b.episode_rate_per_hour);
  EXPECT_EQ(a.episode_log_sigma, b.episode_log_sigma);
  EXPECT_EQ(a.episode_mean_minutes, b.episode_mean_minutes);
  EXPECT_EQ(a.episode_amplitude, b.episode_amplitude);
  ASSERT_EQ(a.weekly_drift.size(), b.weekly_drift.size());
  for (std::size_t w = 0; w < a.weekly_drift.size(); ++w) {
    for (AppKind app : kAllApps) {
      EXPECT_EQ(a.weekly_drift[w][index_of(app)], b.weekly_drift[w][index_of(app)]);
    }
  }
  EXPECT_EQ(a.dns_cache_hit, b.dns_cache_hit);
  EXPECT_EQ(a.destination_pool_size, b.destination_pool_size);
}

TEST(PopulationBuilder, RandomAccessBuildMatchesGeneratePopulation) {
  // The fleet contract: builder.build(id) in any order — here reverse, the
  // worst case for anything relying on sequential state — is bit-identical
  // to the batch path, including the globally-planned extreme promotions.
  const auto config = small_config(350);
  const auto batch = generate_population(config);
  const trace::PopulationBuilder builder(config);
  ASSERT_EQ(builder.user_count(), batch.size());
  for (std::uint32_t id = static_cast<std::uint32_t>(batch.size()); id-- > 0;) {
    expect_same_profile(builder.build(id), batch[id]);
  }
}

TEST(PopulationBuilder, PlansTheSameExtremeCountAsTheBatchPath) {
  const auto config = small_config(500, 7);
  const trace::PopulationBuilder builder(config);
  const auto batch = generate_population(config);
  // Extreme hosts are the ones with episode_amplitude reset to 1.0 while
  // still heavy-class with a large intensity; count them via the plan size.
  const auto expected = static_cast<std::size_t>(std::llround(
      config.extreme_fraction_of_heavy * config.heavy_fraction * config.user_count));
  EXPECT_EQ(builder.extreme_count(), expected);
  std::size_t promoted = 0;
  for (const auto& u : batch) {
    if (u.heavy_class && u.episode_amplitude == 1.0) ++promoted;
  }
  EXPECT_EQ(promoted, builder.extreme_count());
}

TEST(PopulationBuilder, RejectsOutOfRangeIds) {
  const trace::PopulationBuilder builder(small_config(10));
  EXPECT_THROW((void)builder.build(10), PreconditionError);
}

TEST(PopulationBuilder, PrefixReplayMatchesAcrossSeedsAndClassMixes) {
  // Regression for the extreme-promotion preview: the builder's planning
  // pass and build(id) must consume the intensity/heavy-boost RNG prefix
  // through the SAME function the full profile sampler uses — any drift
  // between the hand-replayed prefix and the real draw order desynchronizes
  // every draw after it. Sweep seeds and heavy/extreme mixes so both the
  // promoted and unpromoted branches are crossed with heavy and light
  // users.
  for (const std::uint64_t seed : {1ull, 77ull, 9001ull}) {
    for (const double heavy : {0.05, 0.4}) {
      auto config = small_config(120, seed);
      config.heavy_fraction = heavy;
      config.extreme_fraction_of_heavy = 0.5;
      const auto batch = generate_population(config);
      const trace::PopulationBuilder builder(config);
      for (std::uint32_t id = 0; id < config.user_count; ++id) {
        expect_same_profile(builder.build(id), batch[id]);
      }
    }
  }
}

TEST(Population, BaseRatesExposeAllApps) {
  const auto rates = base_session_rates();
  for (AppKind app : kAllApps) EXPECT_GT(rates[index_of(app)], 0.0);
  // Web must dominate P2P in the enterprise mix.
  EXPECT_GT(rates[index_of(AppKind::Web)], rates[index_of(AppKind::P2p)]);
}

}  // namespace
}  // namespace monohids::trace
