#include "trace/pcap.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "features/pipeline.hpp"
#include "trace/generator.hpp"
#include "trace/population.hpp"
#include "util/error.hpp"

namespace monohids::trace {
namespace {

using net::Ipv4Address;
using net::PacketRecord;
using net::Protocol;
using net::TcpFlags;

std::vector<PacketRecord> sample_packets() {
  const net::FiveTuple tcp{Ipv4Address::parse("10.0.0.1"), Ipv4Address::parse("93.1.2.3"),
                           50000, 443, Protocol::Tcp};
  const net::FiveTuple udp{Ipv4Address::parse("10.0.0.1"),
                           Ipv4Address::parse("10.10.255.2"), 50001, 53, Protocol::Udp};
  const net::FiveTuple icmp{Ipv4Address::parse("10.0.0.1"), Ipv4Address::parse("8.8.8.8"),
                            0, 0, Protocol::Icmp};
  return {
      {1'500'000, tcp, TcpFlags::Syn, 0},
      {1'520'000, tcp.reversed(), TcpFlags::Syn | TcpFlags::Ack, 0},
      {1'540'000, tcp, TcpFlags::Ack | TcpFlags::Psh, 400},
      {2'000'000, udp, TcpFlags::None, 64},
      {3'000'000, icmp, TcpFlags::None, 32},
  };
}

TEST(Pcap, RoundTripPreservesEverything) {
  const auto original = sample_packets();
  std::stringstream buffer;
  write_pcap(buffer, original);
  const auto result = read_pcap(buffer);

  ASSERT_EQ(result.packets.size(), original.size());
  EXPECT_EQ(result.skipped_non_ipv4, 0u);
  EXPECT_EQ(result.truncated, 0u);
  EXPECT_FALSE(result.byte_swapped);
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(result.packets[i], original[i]) << "packet " << i;
  }
}

TEST(Pcap, RoundTripOfGeneratedTraffic) {
  GeneratorConfig config;
  config.weeks = 1;
  const TraceGenerator gen(config);
  PopulationConfig pop;
  pop.user_count = 2;
  const auto users = generate_population(pop);
  const auto original = gen.generate_packets(users[1], 0, util::kMicrosPerDay / 6);
  ASSERT_FALSE(original.empty());

  std::stringstream buffer;
  write_pcap(buffer, original);
  const auto result = read_pcap(buffer);
  ASSERT_EQ(result.packets.size(), original.size());
  EXPECT_EQ(result.packets, original);
}

TEST(Pcap, ChecksumMatchesKnownVector) {
  // RFC 1071 example header (from the IPv4 checksum literature).
  const std::uint8_t header[] = {0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40,
                                 0x11, 0x00, 0x00, 0xc0, 0xa8, 0x00, 0x01, 0xc0, 0xa8,
                                 0x00, 0xc7};
  EXPECT_EQ(ipv4_header_checksum(header, sizeof(header)), 0xb861);
}

TEST(Pcap, WrittenChecksumsValidate) {
  // A header including its own checksum must sum to zero (checksum of the
  // checksummed header is 0).
  std::stringstream buffer;
  write_pcap(buffer, sample_packets());
  const std::string bytes = buffer.str();
  // first record: 24 global + 16 record header, then 14 ethernet bytes.
  const auto* ip = reinterpret_cast<const std::uint8_t*>(bytes.data()) + 24 + 16 + 14;
  EXPECT_EQ(ipv4_header_checksum(ip, 20), 0x0000);
}

TEST(Pcap, WrittenTransportChecksumsValidate) {
  // Receiver-side validation: re-summing a segment with its checksum field
  // included must fold to zero. Walk every record in the written file and
  // validate TCP/UDP with the pseudo-header, ICMP over the message alone.
  const auto packets = sample_packets();
  std::stringstream buffer;
  write_pcap(buffer, packets);
  const std::string bytes = buffer.str();
  const auto* data = reinterpret_cast<const std::uint8_t*>(bytes.data());

  std::size_t pos = 24;  // skip the global header
  for (std::size_t i = 0; i < packets.size(); ++i) {
    const net::PacketRecord& p = packets[i];
    const std::uint32_t incl_len = static_cast<std::uint32_t>(data[pos + 8]) |
                                   static_cast<std::uint32_t>(data[pos + 9]) << 8 |
                                   static_cast<std::uint32_t>(data[pos + 10]) << 16 |
                                   static_cast<std::uint32_t>(data[pos + 11]) << 24;
    const std::uint8_t* frame = data + pos + 16;
    const std::uint8_t* segment = frame + 14 + 20;  // ethernet + IPv4
    const std::size_t segment_len = incl_len - 14 - 20;

    std::uint16_t written = 0, validation = 0;
    switch (p.tuple.protocol) {
      case net::Protocol::Tcp:
        written = static_cast<std::uint16_t>(segment[16] << 8 | segment[17]);
        validation = ipv4_transport_checksum(p.tuple.src_ip, p.tuple.dst_ip, 6,
                                             segment, segment_len);
        break;
      case net::Protocol::Udp:
        written = static_cast<std::uint16_t>(segment[6] << 8 | segment[7]);
        validation = ipv4_transport_checksum(p.tuple.src_ip, p.tuple.dst_ip, 17,
                                             segment, segment_len);
        break;
      case net::Protocol::Icmp:
        written = static_cast<std::uint16_t>(segment[2] << 8 | segment[3]);
        validation = icmp_checksum(segment, segment_len);
        break;
    }
    EXPECT_NE(written, 0u) << "packet " << i << " left a zero checksum";
    EXPECT_EQ(validation, 0u) << "packet " << i << " checksum does not validate";
    pos += 16 + incl_len;
  }
  EXPECT_EQ(pos, bytes.size());
}

TEST(Pcap, TransportChecksumKnownVector) {
  // Hand-checked UDP datagram: 192.168.0.1 -> 192.168.0.199, sport 1087,
  // dport 13, length 8+5, payload "TEST\n" replaced with zeros in our writer
  // so we use an all-zero payload vector computed by hand instead.
  const std::uint8_t udp[] = {0x04, 0x3f, 0x00, 0x0d, 0x00, 0x0d, 0x00, 0x00,
                              0x00, 0x00, 0x00, 0x00, 0x00};
  const auto src = net::Ipv4Address::parse("192.168.0.1");
  const auto dst = net::Ipv4Address::parse("192.168.0.199");
  // Pseudo-header sum: c0a8 + 0001 + c0a8 + 00c7 + 0011 + 000d = 0x18236;
  // segment sum: 043f + 000d + 000d = 0x0459; total 0x1868f, folded
  // 0x868f + 1 = 0x8690 -> checksum ~0x8690 = 0x796f.
  EXPECT_EQ(ipv4_transport_checksum(src, dst, 17, udp, sizeof(udp)), 0x796f);

  // Odd-length ICMP message exercises the trailing-byte pad.
  const std::uint8_t icmp[] = {0x08, 0x00, 0x00, 0x00, 0x12};
  // Sum: 0800 + 0000 + 1200 = 0x1a00 -> checksum 0xe5ff.
  EXPECT_EQ(icmp_checksum(icmp, sizeof(icmp)), 0xe5ff);
}

TEST(Pcap, ReadsByteSwappedFiles) {
  // Write a file, then byte-swap its global and record headers by hand to
  // simulate a capture from an opposite-endian machine.
  std::stringstream buffer;
  write_pcap(buffer, {sample_packets()[0]});
  std::string bytes = buffer.str();
  auto swap32 = [&](std::size_t pos) {
    std::swap(bytes[pos], bytes[pos + 3]);
    std::swap(bytes[pos + 1], bytes[pos + 2]);
  };
  for (std::size_t pos = 0; pos < 24; pos += 4) swap32(pos);  // global header
  for (std::size_t pos = 24; pos < 40; pos += 4) swap32(pos);  // record header

  std::stringstream swapped(bytes);
  const auto result = read_pcap(swapped);
  EXPECT_TRUE(result.byte_swapped);
  ASSERT_EQ(result.packets.size(), 1u);
  EXPECT_EQ(result.packets[0], sample_packets()[0]);
}

TEST(Pcap, SkipsNonIpv4Frames) {
  std::stringstream buffer;
  write_pcap(buffer, {sample_packets()[0]});
  std::string bytes = buffer.str();
  // Corrupt the ethertype of the only frame to ARP (0x0806).
  bytes[24 + 16 + 12] = 0x08;
  bytes[24 + 16 + 13] = 0x06;
  std::stringstream corrupted(bytes);
  const auto result = read_pcap(corrupted);
  EXPECT_TRUE(result.packets.empty());
  EXPECT_EQ(result.skipped_non_ipv4, 1u);
}

TEST(Pcap, RejectsGarbageAndTruncation) {
  std::stringstream garbage("this is not a pcap file, not even close");
  EXPECT_THROW((void)read_pcap(garbage), InputError);

  std::stringstream empty("");
  EXPECT_THROW((void)read_pcap(empty), InputError);

  std::stringstream buffer;
  write_pcap(buffer, sample_packets());
  std::string bytes = buffer.str();
  bytes.resize(bytes.size() - 7);  // cut into the last record body
  std::stringstream truncated(bytes);
  EXPECT_THROW((void)read_pcap(truncated), InputError);
}

TEST(Pcap, FeaturePipelineRunsOnImportedCapture) {
  // End-to-end adoption path: synthetic trace -> pcap -> import -> features.
  GeneratorConfig config;
  config.weeks = 1;
  const TraceGenerator gen(config);
  PopulationConfig pop;
  pop.user_count = 1;
  const auto users = generate_population(pop);
  const auto packets = gen.generate_packets(users[0], 0, util::kMicrosPerDay / 12);

  std::stringstream buffer;
  write_pcap(buffer, packets);
  const auto imported = read_pcap(buffer);

  features::PipelineConfig pipeline_config;
  pipeline_config.horizon = util::kMicrosPerDay;
  const auto direct = features::extract_features(users[0].address, packets,
                                                 pipeline_config);
  const auto via_pcap = features::extract_features(users[0].address, imported.packets,
                                                   pipeline_config);
  for (features::FeatureKind f : features::kAllFeatures) {
    for (std::size_t b = 0; b < 96; ++b) {
      ASSERT_DOUBLE_EQ(via_pcap.matrix.of(f).at(b), direct.matrix.of(f).at(b))
          << features::name_of(f) << " bin " << b;
    }
  }
}

}  // namespace
}  // namespace monohids::trace
