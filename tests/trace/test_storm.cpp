#include "trace/storm.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "features/pipeline.hpp"
#include "util/error.hpp"

namespace monohids::trace {
namespace {

using features::FeatureKind;
using util::kMicrosPerDay;
using util::kMicrosPerWeek;

TEST(Storm, Deterministic) {
  const StormConfig config;
  const auto a = generate_storm_features(config);
  const auto b = generate_storm_features(config);
  for (FeatureKind f : features::kAllFeatures) {
    for (std::size_t bin = 0; bin < a.of(f).bin_count(); ++bin) {
      ASSERT_DOUBLE_EQ(a.of(f).at(bin), b.of(f).at(bin));
    }
  }
}

TEST(Storm, BotsDoNotSleep) {
  // P2P chatter keeps distinct-destination counts up around the clock —
  // unlike user traffic there is no diurnal dip.
  const auto m = generate_storm_features({});
  const auto& distinct = m.of(FeatureKind::DistinctConnections);
  const auto grid = distinct.grid();
  double night = 0, day = 0;
  int night_n = 0, day_n = 0;
  for (std::size_t b = 0; b < distinct.bin_count(); ++b) {
    const double hour = util::hour_of_day(grid.bin_start(b));
    if (hour >= 1 && hour < 5) {
      night += distinct.at(b);
      ++night_n;
    } else if (hour >= 10 && hour < 16) {
      day += distinct.at(b);
      ++day_n;
    }
  }
  EXPECT_NEAR(night / night_n, day / day_n, 0.35 * (day / day_n));
}

TEST(Storm, EveryBinHasP2pFootprint) {
  const auto m = generate_storm_features({});
  const auto& udp = m.of(FeatureKind::UdpConnections);
  std::size_t zero_bins = 0;
  for (std::size_t b = 0; b < udp.bin_count(); ++b) {
    if (udp.at(b) == 0.0) ++zero_bins;
  }
  EXPECT_LT(zero_bins, udp.bin_count() / 100);
}

TEST(Storm, SpamWavesAreBursty) {
  // TCP (SMTP relay) activity is on/off: many zero bins, some intense ones.
  const auto m = generate_storm_features({});
  const auto& tcp = m.of(FeatureKind::TcpConnections);
  std::size_t zero_bins = 0;
  double max_bin = 0;
  for (std::size_t b = 0; b < tcp.bin_count(); ++b) {
    if (tcp.at(b) == 0.0) ++zero_bins;
    max_bin = std::max(max_bin, tcp.at(b));
  }
  EXPECT_GT(zero_bins, tcp.bin_count() / 3);
  EXPECT_GT(max_bin, 50.0);
}

TEST(Storm, NoHttpFootprint) {
  const auto m = generate_storm_features({});
  const auto& http = m.of(FeatureKind::HttpConnections);
  for (std::size_t b = 0; b < http.bin_count(); ++b) {
    ASSERT_DOUBLE_EQ(http.at(b), 0.0);
  }
}

TEST(Storm, SynInflatedOverConnections) {
  const auto m = generate_storm_features({});
  double tcp = 0, syn = 0;
  for (std::size_t b = 0; b < m.of(FeatureKind::TcpConnections).bin_count(); ++b) {
    tcp += m.of(FeatureKind::TcpConnections).at(b);
    syn += m.of(FeatureKind::TcpSyn).at(b);
  }
  ASSERT_GT(tcp, 0.0);
  EXPECT_GT(syn, tcp * 1.1);  // dead MXs and scans retransmit
}

TEST(Storm, PacketsMatchFeatureScaleThroughPipeline) {
  // Render one day of zombie packets, extract features through the real
  // pipeline, and compare against the bin-level rendering of the same day.
  StormConfig config;
  const auto zombie = net::Ipv4Address::parse("10.10.0.99");
  const auto packets = generate_storm_packets(config, zombie, 0, kMicrosPerDay);
  ASSERT_FALSE(packets.empty());

  features::PipelineConfig pipeline_config;
  pipeline_config.horizon = kMicrosPerDay;
  const auto extracted = features::extract_features(zombie, packets, pipeline_config);
  const auto direct = generate_storm_features(config);

  const std::size_t day_bins = 96;
  double extracted_udp = 0, direct_udp = 0;
  for (std::size_t b = 0; b < day_bins; ++b) {
    extracted_udp += extracted.matrix.of(FeatureKind::UdpConnections).at(b);
    direct_udp += direct.of(FeatureKind::UdpConnections).at(b);
  }
  // Same stochastic process, independent draws: totals agree within 20%.
  EXPECT_NEAR(extracted_udp, direct_udp, 0.2 * direct_udp);
}

TEST(Storm, PacketsAreOrderedAndSourced) {
  const auto zombie = net::Ipv4Address::parse("10.10.0.99");
  const auto packets = generate_storm_packets({}, zombie, 0, kMicrosPerDay / 4);
  for (std::size_t i = 1; i < packets.size(); ++i) {
    ASSERT_LE(packets[i - 1].timestamp, packets[i].timestamp);
  }
  std::size_t outbound = 0;
  for (const auto& p : packets) {
    if (p.tuple.src_ip == zombie) ++outbound;
  }
  EXPECT_GT(outbound, packets.size() / 2);
}

TEST(Storm, InvalidConfigsAreErrors) {
  StormConfig config;
  config.weeks = 0;
  EXPECT_THROW((void)generate_storm_features(config), PreconditionError);
  const auto zombie = net::Ipv4Address::parse("10.10.0.99");
  EXPECT_THROW((void)generate_storm_packets({}, zombie, 100, 100), PreconditionError);
  EXPECT_THROW((void)generate_storm_packets({}, zombie, 0, 2 * kMicrosPerWeek),
               PreconditionError);
}

TEST(Storm, DistinctDestinationsAreMostlyUnique) {
  // The peer universe is huge, so distinct counts track raw probe volume.
  const auto m = generate_storm_features({});
  double udp = 0, distinct = 0;
  for (std::size_t b = 0; b < m.of(FeatureKind::UdpConnections).bin_count(); ++b) {
    udp += m.of(FeatureKind::UdpConnections).at(b);
    distinct += m.of(FeatureKind::DistinctConnections).at(b);
  }
  EXPECT_GT(distinct, 0.8 * udp);
}

}  // namespace
}  // namespace monohids::trace
