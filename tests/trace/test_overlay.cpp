#include "trace/overlay.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace monohids::trace {
namespace {

using features::BinnedSeries;
using features::FeatureKind;
using features::FeatureMatrix;
using util::BinGrid;
using util::kMicrosPerWeek;

BinnedSeries series_with(std::initializer_list<std::pair<std::size_t, double>> values,
                         util::Duration horizon = kMicrosPerWeek) {
  BinnedSeries s(BinGrid::minutes(15), horizon);
  for (auto [bin, v] : values) s.set(bin, v);
  return s;
}

TEST(Overlay, ConstantAttackFillsWindow) {
  const auto b = make_constant_attack(BinGrid::minutes(15), kMicrosPerWeek, 50.0, 10, 12);
  EXPECT_DOUBLE_EQ(b.at(9), 0.0);
  EXPECT_DOUBLE_EQ(b.at(10), 50.0);
  EXPECT_DOUBLE_EQ(b.at(12), 50.0);
  EXPECT_DOUBLE_EQ(b.at(13), 0.0);
}

TEST(Overlay, ConstantAttackValidatesWindow) {
  EXPECT_THROW((void)make_constant_attack(BinGrid::minutes(15), kMicrosPerWeek, 1.0, 5, 4),
               PreconditionError);
  EXPECT_THROW((void)make_constant_attack(BinGrid::minutes(15), kMicrosPerWeek, 1.0, 0, 10000),
               PreconditionError);
  EXPECT_THROW((void)make_constant_attack(BinGrid::minutes(15), kMicrosPerWeek, -1.0, 0, 1),
               PreconditionError);
}

TEST(Overlay, AdditionIsGPlusB) {
  const auto g = series_with({{0, 5.0}, {1, 2.0}});
  const auto b = series_with({{0, 10.0}});
  const auto observed = overlay(g, b);
  EXPECT_DOUBLE_EQ(observed.at(0), 15.0);
  EXPECT_DOUBLE_EQ(observed.at(1), 2.0);
}

TEST(Overlay, TiledRepeatsShorterAttack) {
  // user trace: 2 weeks; attack: 1 week.
  BinnedSeries user(BinGrid::minutes(15), 2 * kMicrosPerWeek);
  BinnedSeries attack(BinGrid::minutes(15), kMicrosPerWeek);
  attack.set(5, 7.0);
  const auto observed = overlay_tiled(user, attack);
  EXPECT_DOUBLE_EQ(observed.at(5), 7.0);
  EXPECT_DOUBLE_EQ(observed.at(672 + 5), 7.0);  // tiled into week 2
  EXPECT_DOUBLE_EQ(observed.at(6), 0.0);
}

TEST(Overlay, TiledMatrixAppliesAllFeatures) {
  FeatureMatrix user, attack;
  for (auto& s : user.series) s = BinnedSeries(BinGrid::minutes(15), kMicrosPerWeek);
  for (auto& s : attack.series) s = BinnedSeries(BinGrid::minutes(15), kMicrosPerWeek);
  attack.of(FeatureKind::UdpConnections).set(3, 100.0);
  user.of(FeatureKind::UdpConnections).set(3, 1.0);
  const auto observed = overlay_tiled(user, attack);
  EXPECT_DOUBLE_EQ(observed.of(FeatureKind::UdpConnections).at(3), 101.0);
  EXPECT_DOUBLE_EQ(observed.of(FeatureKind::TcpConnections).at(3), 0.0);
}

TEST(Overlay, MismatchedGridsAreAnError) {
  BinnedSeries user(BinGrid::minutes(15), kMicrosPerWeek);
  BinnedSeries attack(BinGrid::minutes(5), kMicrosPerWeek);
  EXPECT_THROW((void)overlay_tiled(user, attack), PreconditionError);
}

TEST(Overlay, AdditivityPreservesUserTraffic) {
  // The attacker only ever adds traffic: observed >= user everywhere.
  const auto g = series_with({{0, 3.0}, {7, 9.0}, {100, 1.0}});
  const auto b = make_constant_attack(BinGrid::minutes(15), kMicrosPerWeek, 20.0, 0, 671);
  const auto observed = overlay_tiled(g, b);
  for (std::size_t i = 0; i < g.bin_count(); ++i) {
    ASSERT_GE(observed.at(i), g.at(i));
  }
}

}  // namespace
}  // namespace monohids::trace
