#include "trace/trace_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "trace/generator.hpp"
#include "trace/population.hpp"
#include "util/error.hpp"

namespace monohids::trace {
namespace {

using net::Ipv4Address;
using net::PacketRecord;
using net::Protocol;
using net::TcpFlags;

std::vector<PacketRecord> sample_packets() {
  const net::FiveTuple t{Ipv4Address::parse("10.0.0.1"), Ipv4Address::parse("93.1.2.3"),
                         50000, 443, Protocol::Tcp};
  return {
      {0, t, TcpFlags::Syn, 0},
      {1000, t.reversed(), TcpFlags::Syn | TcpFlags::Ack, 0},
      {2000, t, TcpFlags::Ack | TcpFlags::Psh, 1400},
      {3000, {t.src_ip, Ipv4Address::parse("10.10.255.2"), 50001, 53, Protocol::Udp},
       TcpFlags::None, 64},
  };
}

TEST(TraceIo, BinaryRoundTrip) {
  const auto original = sample_packets();
  std::stringstream buffer;
  write_packet_trace(buffer, original);
  const auto restored = read_packet_trace(buffer);
  ASSERT_EQ(restored.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(restored[i], original[i]) << "packet " << i;
  }
}

TEST(TraceIo, BinaryRoundTripOfGeneratedTraffic) {
  GeneratorConfig config;
  config.weeks = 1;
  const TraceGenerator gen(config);
  PopulationConfig pop;
  pop.user_count = 3;
  const auto users = generate_population(pop);
  const auto original = gen.generate_packets(users[0], 0, util::kMicrosPerDay / 4);

  std::stringstream buffer;
  write_packet_trace(buffer, original);
  const auto restored = read_packet_trace(buffer);
  EXPECT_EQ(restored, original);
}

TEST(TraceIo, RejectsWrongMagic) {
  std::stringstream buffer("not a trace file at all");
  EXPECT_THROW((void)read_packet_trace(buffer), InputError);
}

TEST(TraceIo, RejectsTruncatedFile) {
  const auto original = sample_packets();
  std::stringstream buffer;
  write_packet_trace(buffer, original);
  std::string data = buffer.str();
  data.resize(data.size() / 2);
  std::stringstream truncated(data);
  EXPECT_THROW((void)read_packet_trace(truncated), InputError);
}

TEST(TraceIo, EmptyTraceRoundTrips) {
  std::stringstream buffer;
  write_packet_trace(buffer, {});
  EXPECT_TRUE(read_packet_trace(buffer).empty());
}

TEST(TraceIo, PacketCsvHasHeaderAndRows) {
  std::ostringstream os;
  write_packet_csv(os, sample_packets());
  const std::string text = os.str();
  EXPECT_NE(text.find("timestamp_us,src,dst"), std::string::npos);
  EXPECT_NE(text.find("10.0.0.1"), std::string::npos);
  EXPECT_NE(text.find("udp"), std::string::npos);
}

TEST(TraceIo, FeatureCsvRoundTrip) {
  features::FeatureMatrix m;
  const auto grid = util::BinGrid::minutes(15);
  for (auto& s : m.series) s = features::BinnedSeries(grid, util::kMicrosPerWeek);
  m.of(features::FeatureKind::TcpConnections).set(0, 42.0);
  m.of(features::FeatureKind::UdpConnections).set(671, 7.5);

  std::stringstream buffer;
  write_feature_csv(buffer, m);
  const auto restored = read_feature_csv(buffer, grid);
  EXPECT_DOUBLE_EQ(restored.of(features::FeatureKind::TcpConnections).at(0), 42.0);
  EXPECT_DOUBLE_EQ(restored.of(features::FeatureKind::UdpConnections).at(671), 7.5);
  EXPECT_EQ(restored.of(features::FeatureKind::TcpSyn).bin_count(), 672u);
}

TEST(TraceIo, PacketCsvRoundTrip) {
  const auto original = sample_packets();
  std::stringstream buffer;
  write_packet_csv(buffer, original);
  const auto restored = read_packet_csv(buffer);
  EXPECT_EQ(restored, original);
}

TEST(TraceIo, PacketCsvImportsExternalTraces) {
  // The documented import path: hand-written CSV (e.g. converted from a
  // pcap) flows straight into PacketRecords.
  std::stringstream csv(
      "timestamp_us,src,dst,sport,dport,proto,flags,payload\n"
      "1000,192.168.1.5,8.8.8.8,51000,53,udp,0,64\n"
      "2000,192.168.1.5,93.184.216.34,51001,443,tcp,2,0\n");
  const auto packets = read_packet_csv(csv);
  ASSERT_EQ(packets.size(), 2u);
  EXPECT_EQ(packets[0].tuple.dst_port, 53);
  EXPECT_EQ(packets[0].tuple.protocol, Protocol::Udp);
  EXPECT_EQ(packets[1].tuple.protocol, Protocol::Tcp);
  EXPECT_TRUE(has_flag(packets[1].tcp_flags, TcpFlags::Syn));
}

TEST(TraceIo, PacketCsvRejectsMalformedInput) {
  const auto parse = [](const std::string& text) {
    std::stringstream in(text);
    return read_packet_csv(in);
  };
  EXPECT_THROW((void)parse(""), InputError);
  EXPECT_THROW((void)parse("wrong,header\n"), InputError);
  EXPECT_THROW((void)parse("timestamp_us,src,dst,sport,dport,proto,flags,payload\n"
                           "x,1.2.3.4,5.6.7.8,1,2,tcp,0,0\n"),
               InputError);
  EXPECT_THROW((void)parse("timestamp_us,src,dst,sport,dport,proto,flags,payload\n"
                           "1,1.2.3.4,5.6.7.8,1,2,sctp,0,0\n"),
               InputError);
  EXPECT_THROW((void)parse("timestamp_us,src,dst,sport,dport,proto,flags,payload\n"
                           "1,1.2.3.4,5.6.7.8,1,2,tcp,999,0\n"),
               InputError);
}

TEST(TraceIo, FeatureCsvRejectsWrongShape) {
  std::stringstream buffer("bin_start_us,only-one-feature\n0,1\n");
  EXPECT_THROW((void)read_feature_csv(buffer, util::BinGrid::minutes(15)), InputError);
}

}  // namespace
}  // namespace monohids::trace
