// Pins the EpisodeProcess draw semantics the batched rate-table path
// depends on: half-open [start, end) expiry, no draws while an episode is
// active, exactly one idle draw per non-starting bin, the three-draw start
// sequence, and the draw-then-clamp boost bound. Every test checks the
// process against an independent mirror of its RNG stream, so any change in
// draw count or order fails here before it silently desynchronizes the
// render paths.
#include "trace/episode_process.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "stats/sampling.hpp"
#include "util/rng.hpp"
#include "util/sim_time.hpp"

namespace monohids::trace {
namespace {

constexpr double kLogMu = 0.5;
constexpr double kBinHours = 0.25;

UserProfile episodic_user(double rate_per_hour, double log_sigma = 1.0,
                          double amplitude = 1.0) {
  UserProfile u;
  u.episode_rate_per_hour = rate_per_hour;
  u.episode_log_sigma = log_sigma;
  u.episode_mean_minutes = 20.0;
  u.episode_amplitude = amplitude;
  return u;
}

/// The three-draw start sequence, mirrored: uniform start draw (consumed by
/// the caller), log-normal boost (a Box–Muller pair), exponential duration.
struct MirroredEpisode {
  double multiplier;
  util::Timestamp end;
};

MirroredEpisode mirror_start(util::Xoshiro256& mirror, const UserProfile& u,
                             util::Timestamp bin_start) {
  const stats::LogNormalSampler boost(kLogMu, u.episode_log_sigma);
  const double m = 1.0 + std::min(boost.sample(mirror), 6.0) * u.episode_amplitude;
  const double minutes =
      stats::sample_exponential(mirror, 1.0 / u.episode_mean_minutes);
  return {m, bin_start + util::from_seconds(minutes * 60.0)};
}

TEST(EpisodeProcess, ExpiryIsHalfOpenAtTheEndTimestamp) {
  // Start probability pinned at 1: the process starts an episode in every
  // idle bin, so the mirror can predict each multiplier exactly.
  const UserProfile u = episodic_user(1e9);
  EpisodeProcess ep(u, kLogMu, 77);
  util::Xoshiro256 mirror(77);

  mirror.uniform01();  // the start draw
  const MirroredEpisode first = mirror_start(mirror, u, 0);
  EXPECT_EQ(ep.step(0, kBinHours, 1.0), first.multiplier);

  // One microsecond before the end: still inside [start, end), still
  // boosted, and no draws consumed.
  EXPECT_EQ(ep.step(first.end - 1, kBinHours, 1.0), first.multiplier);

  // A bin starting exactly at the end timestamp is NOT boosted: the
  // multiplier resets first, and (with probability 1) a fresh episode
  // starts from the very next draws of the stream.
  mirror.uniform01();
  const MirroredEpisode second = mirror_start(mirror, u, first.end);
  const double stepped = ep.step(first.end, kBinHours, 1.0);
  EXPECT_EQ(stepped, second.multiplier);
  EXPECT_NE(stepped, first.multiplier);
}

TEST(EpisodeProcess, ActiveBinsConsumeNoDraws) {
  const UserProfile u = episodic_user(1e9);
  EpisodeProcess ep(u, kLogMu, 123);
  util::Xoshiro256 mirror(123);

  mirror.uniform01();
  const MirroredEpisode first = mirror_start(mirror, u, 0);
  ASSERT_EQ(ep.step(0, kBinHours, 1.0), first.multiplier);

  // Many probes inside the active window: if any consumed a draw, the
  // prediction of the follow-up episode below would diverge.
  for (int i = 1; i <= 64; ++i) {
    const util::Timestamp inside = first.end - 1 - i * 1000;
    if (inside <= 0) break;
    ASSERT_EQ(ep.step(inside, kBinHours, 1.0), first.multiplier);
  }

  mirror.uniform01();
  const MirroredEpisode second = mirror_start(mirror, u, first.end);
  EXPECT_EQ(ep.step(first.end, kBinHours, 1.0), second.multiplier);
}

TEST(EpisodeProcess, IdleBinsConsumeExactlyOneDraw) {
  // Zero activity makes the start probability 0, but each idle bin still
  // consumes its start draw. Predict the first episode after k idle bins by
  // skipping exactly k + 1 mirror draws — any other idle-draw count fails.
  const UserProfile u = episodic_user(1e9);
  for (int idle_bins : {1, 3, 17}) {
    EpisodeProcess ep(u, kLogMu, 1000 + idle_bins);
    util::Xoshiro256 mirror(1000 + idle_bins);
    for (int i = 0; i < idle_bins; ++i) {
      ASSERT_EQ(ep.step(i, kBinHours, 0.0), 1.0);
      mirror.uniform01();
    }
    mirror.uniform01();  // the successful start draw
    const MirroredEpisode next = mirror_start(mirror, u, idle_bins);
    EXPECT_EQ(ep.step(idle_bins, kBinHours, 1.0), next.multiplier);
  }
}

TEST(EpisodeProcess, BoostDrawsFirstAndClampsAfter) {
  // sigma = 4 makes the raw log-normal boost exceed the 6.0 clamp often.
  // The clamped multiplier must still consume the full Box–Muller pair, or
  // the episode that follows desynchronizes — the mirror covers both.
  const UserProfile u = episodic_user(1e9, 4.0, 2.0);
  bool clamped_at_least_once = false;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    EpisodeProcess ep(u, kLogMu, seed);
    util::Xoshiro256 mirror(seed);
    util::Timestamp bin_start = 0;
    for (int episode = 0; episode < 4; ++episode) {
      mirror.uniform01();
      const MirroredEpisode e = mirror_start(mirror, u, bin_start);
      ASSERT_EQ(ep.step(bin_start, kBinHours, 1.0), e.multiplier);
      ASSERT_LE(e.multiplier, ep.max_multiplier());
      ASSERT_GE(e.multiplier, 1.0);
      if (e.multiplier == ep.max_multiplier()) clamped_at_least_once = true;
      bin_start = e.end;  // jump straight to the half-open reset point
    }
  }
  EXPECT_TRUE(clamped_at_least_once);
}

TEST(EpisodeProcess, MaxMultiplierScalesWithAmplitude) {
  EXPECT_DOUBLE_EQ(EpisodeProcess(episodic_user(0.1), kLogMu, 1).max_multiplier(), 7.0);
  EXPECT_DOUBLE_EQ(
      EpisodeProcess(episodic_user(0.1, 1.0, 2.5), kLogMu, 1).max_multiplier(), 16.0);
}

TEST(EpisodeProcess, DifferentialWalkAgainstIndependentMirror) {
  // Full state-machine replication over a long walk with a moderate start
  // probability: every returned multiplier must match an independent
  // re-implementation of the pinned semantics, draw for draw.
  const UserProfile u = episodic_user(0.5, 2.0, 1.5);
  EpisodeProcess ep(u, kLogMu, 2026);
  util::Xoshiro256 mirror(2026);

  double multiplier = 1.0;
  util::Timestamp end = 0;
  const util::Duration width = util::kMicrosPerHour / 4;
  for (int b = 0; b < 2000; ++b) {
    const util::Timestamp bin_start = b * width;
    // activity varies bin to bin so the start probability does too
    const double activity = 0.1 + 0.9 * ((b * 7) % 10) / 10.0;
    if (bin_start >= end) multiplier = 1.0;
    const double start_probability =
        std::min(1.0, u.episode_rate_per_hour * activity * kBinHours);
    if (multiplier == 1.0 && mirror.uniform01() < start_probability) {
      const MirroredEpisode e = mirror_start(mirror, u, bin_start);
      multiplier = e.multiplier;
      end = e.end;
    }
    ASSERT_EQ(ep.step(bin_start, kBinHours, activity), multiplier) << "bin " << b;
  }
}

}  // namespace
}  // namespace monohids::trace
