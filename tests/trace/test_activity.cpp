#include "trace/activity.hpp"

#include <gtest/gtest.h>

namespace monohids::trace {
namespace {

using util::from_seconds;
using util::kMicrosPerDay;
using util::kMicrosPerHour;

util::Timestamp at(int day, double hour) {
  return day * kMicrosPerDay + static_cast<util::Timestamp>(hour * kMicrosPerHour);
}

TEST(Activity, WorkHoursAreBusierThanNight) {
  const DiurnalProfile p;
  const double work = activity_at(p, at(1, 11.0));     // Tuesday 11:00
  const double night = activity_at(p, at(1, 3.0));     // Tuesday 03:00
  EXPECT_GT(work, 5.0 * night);
}

TEST(Activity, NightFloorIsNeverZero) {
  const DiurnalProfile p;
  for (double hour = 0.0; hour < 24.0; hour += 0.25) {
    EXPECT_GE(activity_at(p, at(2, hour)), p.night_floor * 0.99);
  }
}

TEST(Activity, EveningBumpExists) {
  const DiurnalProfile p;
  const double evening = activity_at(p, at(1, 20.5));
  const double late_night = activity_at(p, at(1, 2.0));
  EXPECT_GT(evening, late_night * 3.0);
}

TEST(Activity, WeekendIsDamped) {
  const DiurnalProfile p;
  const double tuesday = activity_at(p, at(1, 11.0));
  const double saturday = activity_at(p, at(5, 11.0));
  EXPECT_NEAR(saturday, tuesday * p.weekend_factor, 1e-9);
}

TEST(Activity, PhaseShiftMovesThePeak) {
  DiurnalProfile early;
  early.phase_hours = -2.0;  // everything two hours earlier
  DiurnalProfile late;
  late.phase_hours = 2.0;
  // At 07:30 the early bird is already ramped up, the night owl is not.
  EXPECT_GT(activity_at(early, at(1, 7.5)), activity_at(late, at(1, 7.5)));
}

TEST(Activity, ContinuousAcrossMidnight) {
  const DiurnalProfile p;
  const double before = activity_at(p, at(1, 23.99));
  const double after = activity_at(p, at(2, 0.01));
  EXPECT_NEAR(before, after, 0.02);
}

TEST(Activity, WeeklyPeriodicity) {
  const DiurnalProfile p;
  for (double hour : {3.0, 11.0, 20.5}) {
    EXPECT_NEAR(activity_at(p, at(1, hour)), activity_at(p, at(8, hour)), 1e-12);
  }
}

TEST(Activity, PhaseShiftIsTimeTranslation) {
  // The whole curve — weekend damping included — must be a pure time
  // translation of the phase-0 curve. Before the weekend clock followed the
  // phase shift, a night owl's Friday evening was damped as soon as the
  // unshifted wall clock crossed into Saturday, breaking this identity at
  // the weekend edges.
  const DiurnalProfile base;
  for (double phase : {-3.0, -1.5, 2.0, 3.0}) {
    DiurnalProfile shifted = base;
    shifted.phase_hours = phase;
    const auto offset = static_cast<util::Timestamp>(phase * kMicrosPerHour);
    for (double hour = 0.0; hour < 7.0 * 24.0; hour += 0.25) {
      const util::Timestamp t = util::kMicrosPerWeek + at(0, hour);
      ASSERT_NEAR(activity_at(shifted, t), activity_at(base, t - offset), 1e-9)
          << "phase " << phase << " hour " << hour;
    }
  }
}

TEST(Activity, WeekendEdgeFollowsShiftedClockAcrossMidnight) {
  DiurnalProfile owl;
  owl.phase_hours = 2.0;
  const DiurnalProfile base;
  // Saturday 00:30 on the wall clock is Friday 22:30 on the owl's shifted
  // clock — still a weekday, so no weekend damping yet.
  EXPECT_NEAR(activity_at(owl, at(5, 0.5)), activity_at(base, at(4, 22.5)), 1e-9);
  // The owl's weekend starts two hours late (Saturday 02:00 wall clock)...
  EXPECT_NEAR(activity_at(owl, at(5, 2.5)), activity_at(base, at(5, 0.5)), 1e-9);
  // ...and ends two hours late: Monday 01:00 wall clock is still the owl's
  // Sunday 23:00, damped.
  EXPECT_NEAR(activity_at(owl, at(7, 1.0)), activity_at(base, at(6, 23.0)), 1e-9);
}

TEST(Activity, BoundedAboveByWorkPlusFloor) {
  DiurnalProfile p;
  p.work_level = 1.2;
  for (double hour = 0.0; hour < 24.0; hour += 0.1) {
    EXPECT_LE(activity_at(p, at(1, hour)), p.work_level + p.night_floor + 1e-9);
  }
}

}  // namespace
}  // namespace monohids::trace
