// Error paths of every trace reader: truncated or corrupt binary traces,
// packet/feature CSVs and pcap captures must fail with an InputError whose
// message names the problem — never crash, never allocate absurdly off an
// untrusted header field, and never silently return a truncated trace.
// Writers produce the well-formed bytes; each test then damages them.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "trace/pcap.hpp"
#include "trace/trace_io.hpp"
#include "util/error.hpp"

namespace monohids::trace {
namespace {

/// Minimal sink for the streaming readers: counts what arrives.
class CountingSink final : public features::PacketSink {
 public:
  void on_batch(std::span<const net::PacketRecord> batch) override {
    packets += batch.size();
  }
  std::uint64_t packets = 0;
};

std::vector<net::PacketRecord> sample_packets() {
  std::vector<net::PacketRecord> packets;
  for (std::uint64_t i = 0; i < 8; ++i) {
    net::PacketRecord p;
    p.timestamp = i * 1000;
    p.tuple.src_ip = net::Ipv4Address(0x0A000001);
    p.tuple.dst_ip = net::Ipv4Address(0x0A000002 + static_cast<std::uint32_t>(i));
    p.tuple.src_port = static_cast<std::uint16_t>(40000 + i);
    p.tuple.dst_port = 80;
    p.tuple.protocol = net::Protocol::Tcp;
    p.tcp_flags = net::TcpFlags::Syn;
    p.payload_bytes = 100;
    packets.push_back(p);
  }
  return packets;
}

std::string binary_trace_bytes() {
  std::ostringstream out;
  write_packet_trace(out, sample_packets());
  return out.str();
}

/// Asserts that both reader forms reject `bytes` with an InputError whose
/// message contains `diagnostic`.
void expect_binary_readers_reject(const std::string& bytes, const std::string& diagnostic) {
  {
    std::istringstream in(bytes);
    try {
      (void)read_packet_trace(in);
      FAIL() << "read_packet_trace accepted corrupt input";
    } catch (const InputError& e) {
      EXPECT_NE(std::string(e.what()).find(diagnostic), std::string::npos)
          << "actual message: " << e.what();
    }
  }
  {
    std::istringstream in(bytes);
    CountingSink sink;
    EXPECT_THROW((void)stream_packet_trace(in, sink), InputError);
  }
}

TEST(TraceIoErrors, BinaryBadMagicIsRejected) {
  std::string bytes = binary_trace_bytes();
  bytes[0] = 'X';
  expect_binary_readers_reject(bytes, "not a monohids trace file");
}

TEST(TraceIoErrors, BinaryUnsupportedVersionIsRejected) {
  std::string bytes = binary_trace_bytes();
  bytes[8] = 99;  // version field follows the 8-byte magic, little-endian
  expect_binary_readers_reject(bytes, "unsupported trace version");
}

TEST(TraceIoErrors, BinaryTruncatedHeaderIsRejected) {
  const std::string bytes = binary_trace_bytes();
  for (std::size_t keep : {0u, 4u, 9u, 15u}) {
    SCOPED_TRACE("keep=" + std::to_string(keep));
    std::istringstream in(bytes.substr(0, keep));
    EXPECT_THROW((void)read_packet_trace(in), InputError);
  }
}

TEST(TraceIoErrors, BinaryTruncatedRecordsAreRejectedNotSilentlyShortened) {
  const std::string bytes = binary_trace_bytes();
  // Cut mid-record and at a record boundary: the header still promises 8
  // records, so both cuts must throw rather than return fewer.
  expect_binary_readers_reject(bytes.substr(0, bytes.size() - 3), "truncated trace file");
  expect_binary_readers_reject(bytes.substr(0, bytes.size() - 24), "truncated trace file");
}

TEST(TraceIoErrors, BinaryCorruptGiantCountFailsFastWithoutAllocating) {
  std::string bytes = binary_trace_bytes();
  // Overwrite the count (8 bytes at offset 12) with 2^60: the reader must
  // not trust it with a reserve() — it fails at the first missing record.
  for (std::size_t i = 0; i < 8; ++i) bytes[12 + i] = 0;
  bytes[12 + 7] = 0x10;
  expect_binary_readers_reject(bytes, "truncated trace file");
}

std::string packet_csv_bytes() {
  std::ostringstream out;
  write_packet_csv(out, sample_packets());
  return out.str();
}

void expect_csv_readers_reject(const std::string& text) {
  {
    std::istringstream in(text);
    EXPECT_THROW((void)read_packet_csv(in), InputError);
  }
  {
    std::istringstream in(text);
    CountingSink sink;
    EXPECT_THROW((void)stream_packet_csv(in, sink), InputError);
  }
}

TEST(TraceIoErrors, PacketCsvEmptyAndHeaderlessInputsAreRejected) {
  expect_csv_readers_reject("");
  expect_csv_readers_reject("nonsense,header\n1,2\n");
}

TEST(TraceIoErrors, PacketCsvMalformedRowsAreRejected) {
  const std::string good = packet_csv_bytes();
  const std::string header = good.substr(0, good.find('\n') + 1);
  // Wrong field count, garbage timestamp, trailing junk after a number,
  // unknown protocol, out-of-range flags: each must throw, including from
  // the streaming reader after it already accepted earlier good rows.
  for (const std::string& bad_row :
       {std::string("1,2,3\n"),
        std::string("abc,10.0.0.1,10.0.0.2,1,2,tcp,2,0\n"),
        std::string("17x,10.0.0.1,10.0.0.2,1,2,tcp,2,0\n"),
        std::string("17,10.0.0.1,10.0.0.2,1,2,quic,2,0\n"),
        std::string("17,10.0.0.1,10.0.0.2,1,2,tcp,999,0\n")}) {
    SCOPED_TRACE("row: " + bad_row);
    expect_csv_readers_reject(header + bad_row);
    expect_csv_readers_reject(good + bad_row);
  }
}

/// streambuf whose underflow throws once the good prefix is consumed —
/// the stdlib turns that into badbit on the reading istream, which is how a
/// mid-file I/O error (disk fault, dropped NFS mount) actually presents.
class FailingAfterPrefixBuf final : public std::streambuf {
 public:
  explicit FailingAfterPrefixBuf(std::string prefix) : prefix_(std::move(prefix)) {
    setg(prefix_.data(), prefix_.data(), prefix_.data() + prefix_.size());
  }

 protected:
  int_type underflow() override { throw std::runtime_error("simulated I/O fault"); }

 private:
  std::string prefix_;
};

TEST(TraceIoErrors, PacketCsvStreamFaultIsAnErrorNotATruncatedTrace) {
  // Header plus a few complete rows, then the stream dies. The streaming
  // reader must report the fault instead of returning the prefix as if the
  // trace ended there.
  const std::string good = packet_csv_bytes();
  FailingAfterPrefixBuf buf(good);
  std::istream in(&buf);
  CountingSink sink;
  try {
    (void)stream_packet_csv(in, sink);
    FAIL() << "stream_packet_csv silently truncated on a stream fault";
  } catch (const InputError& e) {
    EXPECT_NE(std::string(e.what()).find("I/O error"), std::string::npos)
        << "actual message: " << e.what();
  }
}

TEST(TraceIoErrors, FeatureCsvStructuralProblemsAreRejected) {
  const util::BinGrid grid = util::BinGrid::minutes(15);
  for (const std::string& text :
       {std::string(""), std::string("bin_start_us,a\n"),
        std::string("bin_start_us,a,b,c,d,e,f\n"),  // header only, no data
        std::string("bin_start_us,a,b,c,d,e,f\n0,1,2,3\n")}) {
    SCOPED_TRACE("text: " + text);
    std::istringstream in(text);
    EXPECT_THROW((void)read_feature_csv(in, grid), InputError);
  }
}

TEST(TraceIoErrors, FeatureCsvMalformedValuesNameTheCell) {
  const util::BinGrid grid = util::BinGrid::minutes(15);
  for (const std::string& cell : {std::string("abc"), std::string("1.5junk"), std::string("")}) {
    SCOPED_TRACE("cell: \"" + cell + "\"");
    std::istringstream in("bin_start_us,a,b,c,d,e,f\n0,1,2," + cell + ",4,5,6\n");
    try {
      (void)read_feature_csv(in, grid);
      FAIL() << "read_feature_csv accepted malformed cell";
    } catch (const InputError& e) {
      const std::string message = e.what();
      EXPECT_NE(message.find("row 1"), std::string::npos) << "actual: " << message;
      EXPECT_NE(message.find("column 3"), std::string::npos) << "actual: " << message;
    }
  }
}

std::string pcap_bytes() {
  std::ostringstream out;
  write_pcap(out, sample_packets());
  return out.str();
}

void expect_pcap_readers_reject(const std::string& bytes, const std::string& diagnostic) {
  {
    std::istringstream in(bytes);
    try {
      (void)read_pcap(in);
      FAIL() << "read_pcap accepted corrupt input";
    } catch (const InputError& e) {
      EXPECT_NE(std::string(e.what()).find(diagnostic), std::string::npos)
          << "actual message: " << e.what();
    }
  }
  {
    std::istringstream in(bytes);
    CountingSink sink;
    EXPECT_THROW((void)stream_pcap(in, sink), InputError);
  }
}

TEST(TraceIoErrors, PcapEmptyAndBadMagicAreRejected) {
  expect_pcap_readers_reject("", "pcap stream is empty");
  std::string bytes = pcap_bytes();
  bytes[0] = 0x00;
  bytes[1] = 0x01;
  bytes[2] = 0x02;
  bytes[3] = 0x03;
  expect_pcap_readers_reject(bytes, "bad magic");
}

TEST(TraceIoErrors, PcapTruncatedGlobalHeaderIsRejected) {
  // The global header is 24 bytes; anything shorter after a valid magic is
  // a truncation, not an empty capture.
  expect_pcap_readers_reject(pcap_bytes().substr(0, 16), "truncated pcap global header");
}

TEST(TraceIoErrors, PcapTruncatedRecordHeaderAndBodyAreRejected) {
  const std::string bytes = pcap_bytes();
  // Record headers are 16 bytes at offset 24: cut inside the first record
  // header, then inside the first record body.
  expect_pcap_readers_reject(bytes.substr(0, 24 + 7), "truncated pcap record header");
  expect_pcap_readers_reject(bytes.substr(0, 24 + 16 + 10), "truncated pcap record body");
  // And mid-capture: several full records, then a cut body.
  expect_pcap_readers_reject(bytes.substr(0, bytes.size() - 5),
                             "truncated pcap record body");
}

TEST(TraceIoErrors, PcapImplausibleRecordLengthIsRejected) {
  std::string bytes = pcap_bytes();
  // incl_len lives at record offset +8; claim 256 MiB for the first record.
  const std::size_t incl_len_at = 24 + 8;
  bytes[incl_len_at + 0] = 0x00;
  bytes[incl_len_at + 1] = 0x00;
  bytes[incl_len_at + 2] = 0x00;
  bytes[incl_len_at + 3] = 0x10;
  expect_pcap_readers_reject(bytes, "implausible pcap record length");
}

std::uint32_t u32_le_at(const std::string& bytes, std::size_t offset) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[offset])) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[offset + 1])) << 8) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[offset + 2])) << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[offset + 3])) << 24);
}

TEST(TraceIoErrors, RecoveringPcapStreamSalvagesThePreFaultPrefix) {
  const std::string bytes = pcap_bytes();
  // Cut mid-body of the final record: the strict readers throw (asserted
  // above); the recovering reader must deliver the 7 intact packets and
  // carry the diagnostic instead.
  std::istringstream in(bytes.substr(0, bytes.size() - 5));
  CountingSink sink;
  const PcapReadResult result = stream_pcap_recovering(in, sink);
  EXPECT_EQ(sink.packets, 7u);
  EXPECT_EQ(result.packet_count, 7u);
  EXPECT_NE(result.stream_error.find("truncated pcap record body"), std::string::npos)
      << "actual: " << result.stream_error;
}

TEST(TraceIoErrors, RecoveringPcapStreamStopsAtACorruptRecordHeader) {
  std::string bytes = pcap_bytes();
  // Corrupt the *second* record's incl_len (first record is 16 bytes of
  // header plus its frame) to claim 256 MiB: packet 1 is salvaged, the
  // fault is diagnosed, and nothing absurd is allocated.
  const std::size_t second_record = 24 + 16 + u32_le_at(bytes, 24 + 8);
  ASSERT_LT(second_record + 16, bytes.size());
  bytes[second_record + 8] = 0x00;
  bytes[second_record + 9] = 0x00;
  bytes[second_record + 10] = 0x00;
  bytes[second_record + 11] = 0x10;
  std::istringstream in(bytes);
  CountingSink sink;
  const PcapReadResult result = stream_pcap_recovering(in, sink);
  EXPECT_EQ(sink.packets, 1u);
  EXPECT_NE(result.stream_error.find("implausible pcap record length"), std::string::npos)
      << "actual: " << result.stream_error;
}

TEST(TraceIoErrors, RecoveringPcapStreamStillThrowsOnMalformedGlobalHeader) {
  // A bad magic or truncated global header means there is nothing to
  // recover: same InputError contract as the strict readers.
  std::string bytes = pcap_bytes();
  bytes[0] = 0x00;
  {
    std::istringstream in(bytes);
    CountingSink sink;
    EXPECT_THROW((void)stream_pcap_recovering(in, sink), InputError);
  }
  {
    std::istringstream in(pcap_bytes().substr(0, 16));
    CountingSink sink;
    EXPECT_THROW((void)stream_pcap_recovering(in, sink), InputError);
  }
}

TEST(TraceIoErrors, RecoveringPcapStreamIsCleanOnIntactInput) {
  std::istringstream in(pcap_bytes());
  CountingSink sink;
  const PcapReadResult result = stream_pcap_recovering(in, sink);
  EXPECT_EQ(sink.packets, 8u);
  EXPECT_TRUE(result.stream_error.empty()) << "unexpected: " << result.stream_error;
}

TEST(TraceIoErrors, ReadersStillAcceptTheUndamagedBytes) {
  // Guard the tests above against drifting offsets: the pristine writer
  // output must round-trip through every reader.
  {
    std::istringstream in(binary_trace_bytes());
    EXPECT_EQ(read_packet_trace(in).size(), 8u);
  }
  {
    std::istringstream in(packet_csv_bytes());
    EXPECT_EQ(read_packet_csv(in).size(), 8u);
  }
  {
    std::istringstream in(pcap_bytes());
    EXPECT_EQ(read_pcap(in).packets.size(), 8u);
  }
  {
    std::istringstream in(binary_trace_bytes());
    CountingSink sink;
    EXPECT_EQ(stream_packet_trace(in, sink), 8u);
    EXPECT_EQ(sink.packets, 8u);
  }
}

}  // namespace
}  // namespace monohids::trace
