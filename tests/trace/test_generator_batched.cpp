// Differential suite for the batched feature-generation pipeline: the
// batched path must be BIT-identical to the preserved reference path for
// every profile, grid (divisible by the week or not), horizon, kernel
// back-end and thread count. Identity is checked with memcmp over the raw
// bin storage — not approximate comparison — because scenario digests,
// AnalysisCache keys and every downstream experiment depend on exact bytes.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "sim/scenario.hpp"
#include "stats/kernels.hpp"
#include "trace/generator.hpp"
#include "trace/population.hpp"

namespace monohids::trace {
namespace {

void expect_bit_identical(const features::FeatureMatrix& a,
                          const features::FeatureMatrix& b, const char* what) {
  for (std::size_t s = 0; s < a.series.size(); ++s) {
    const auto va = a.series[s].values();
    const auto vb = b.series[s].values();
    ASSERT_EQ(va.size(), vb.size()) << what << " series " << s;
    ASSERT_EQ(std::memcmp(va.data(), vb.data(), va.size() * sizeof(double)), 0)
        << what << " series " << s;
  }
}

features::FeatureMatrix render(const TraceGenerator& gen, const UserProfile& u,
                               bool batched) {
  ScopedGenerationMode mode(batched);
  return gen.generate_features(u);
}

TEST(BatchedGenerator, BitIdenticalToReferenceAcross200SeededCases) {
  // 25 users x {1, 2} weeks x 4 grid widths = 200 cases. 15- and 35-minute
  // bins divide the week (the batched path's weekly-periodic rate tables);
  // 13- and 660-minute bins do not (the generic per-bin fallback, including
  // the bin-aligned partial-horizon extension).
  PopulationConfig pc;
  pc.user_count = 25;
  pc.seed = 9001;
  pc.weeks = 2;
  const auto users = generate_population(pc);

  int cases = 0;
  for (std::uint32_t weeks : {1u, 2u}) {
    for (std::uint32_t width_minutes : {15u, 35u, 13u, 660u}) {
      GeneratorConfig config;
      config.weeks = weeks;
      config.grid = util::BinGrid::minutes(width_minutes);
      const TraceGenerator gen(config);
      for (const UserProfile& u : users) {
        const auto reference = render(gen, u, false);
        const auto batched = render(gen, u, true);
        expect_bit_identical(reference, batched, "case");
        ++cases;
      }
    }
  }
  EXPECT_EQ(cases, 200);
}

TEST(BatchedGenerator, DisabledModeUsesTheReferencePath) {
  PopulationConfig pc;
  pc.user_count = 2;
  const auto users = generate_population(pc);
  GeneratorConfig config;
  config.weeks = 1;
  const TraceGenerator gen(config);
  const auto direct = gen.generate_features_reference(users[1]);
  const auto dispatched = render(gen, users[1], false);
  expect_bit_identical(direct, dispatched, "reference dispatch");
}

TEST(BatchedGenerator, BitIdenticalAcrossKernelBackends) {
  // The widen_u32 post-processing pass goes through the dispatched SIMD
  // table; forcing the scalar back-end must not change a byte.
  PopulationConfig pc;
  pc.user_count = 3;
  const auto users = generate_population(pc);
  GeneratorConfig config;
  config.weeks = 1;
  const TraceGenerator gen(config);

  for (const UserProfile& u : users) {
    const auto native = render(gen, u, true);
    ASSERT_TRUE(stats::kernels::force_backend(stats::kernels::Backend::Scalar));
    const auto scalar = render(gen, u, true);
    stats::kernels::reset_backend();
    expect_bit_identical(native, scalar, "backend");
  }
}

TEST(BatchedGenerator, ScenarioBitIdenticalAcrossThreadCountsAndModes) {
  // build_scenario fans users across worker threads; output must not depend
  // on the thread count or the generation mode.
  sim::ScenarioConfig config;
  config.set_users(12);
  config.set_weeks(1);
  config.set_seed(4242);

  config.threads = 1;
  ScopedGenerationMode reference_mode(false);
  const auto serial_reference = sim::build_scenario(config);
  {
    ScopedGenerationMode batched_mode(true);
    config.threads = 1;
    const auto serial_batched = sim::build_scenario(config);
    config.threads = 3;
    const auto threaded_batched = sim::build_scenario(config);
    ASSERT_EQ(serial_reference.matrices.size(), serial_batched.matrices.size());
    for (std::size_t i = 0; i < serial_reference.matrices.size(); ++i) {
      expect_bit_identical(serial_reference.matrices[i], serial_batched.matrices[i],
                           "serial");
      expect_bit_identical(serial_reference.matrices[i], threaded_batched.matrices[i],
                           "threaded");
    }
  }
}

}  // namespace
}  // namespace monohids::trace
