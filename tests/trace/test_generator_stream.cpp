// Streamed trace production: generate_packets_streamed and the streaming
// trace readers must deliver the exact packet sequence of their batch
// counterparts, in bounded, time-ordered batches.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <vector>

#include "trace/generator.hpp"
#include "trace/pcap.hpp"
#include "trace/population.hpp"
#include "trace/trace_io.hpp"

namespace monohids::trace {
namespace {

struct Collect final : features::PacketSink {
  std::vector<net::PacketRecord> all;
  std::vector<std::size_t> batch_sizes;
  void on_batch(std::span<const net::PacketRecord> batch) override {
    batch_sizes.push_back(batch.size());
    all.insert(all.end(), batch.begin(), batch.end());
  }
};

UserProfile test_user(std::uint64_t seed) {
  PopulationConfig population;
  population.user_count = 1;
  population.seed = seed;
  population.weeks = 1;
  return generate_population(population)[0];
}

GeneratorConfig day_config() {
  GeneratorConfig config;
  config.weeks = 1;
  return config;
}

class GeneratorStream : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorStream, StreamedEqualsBatchPath) {
  const GeneratorConfig config = day_config();
  const TraceGenerator generator(config);
  const UserProfile user = test_user(GetParam());
  const util::Timestamp end = 2 * util::kMicrosPerDay;

  const std::vector<net::PacketRecord> batch = generator.generate_packets(user, 0, end);
  ASSERT_FALSE(batch.empty());

  for (const std::size_t max_batch : {std::size_t{1}, std::size_t{257}, std::size_t{1} << 16}) {
    Collect sink;
    generator.generate_packets_streamed(user, 0, end, sink, max_batch);
    ASSERT_EQ(sink.all.size(), batch.size()) << "max_batch " << max_batch;
    EXPECT_TRUE(std::equal(batch.begin(), batch.end(), sink.all.begin()))
        << "max_batch " << max_batch;
    for (const std::size_t n : sink.batch_sizes) ASSERT_LE(n, max_batch);
    // Batches are globally time-ordered (the ingest contract).
    for (std::size_t i = 1; i < sink.all.size(); ++i) {
      ASSERT_LE(sink.all[i - 1].timestamp, sink.all[i].timestamp);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorStream, ::testing::Values(11, 22, 33));

TEST(GeneratorStream, WindowedStreamEqualsWindowedBatch) {
  const GeneratorConfig config = day_config();
  const TraceGenerator generator(config);
  const UserProfile user = test_user(77);
  // A mid-trace window exercises the skipped-bin RNG advance and both clips.
  const util::Timestamp begin = 26 * util::kMicrosPerHour + 123;
  const util::Timestamp end = 40 * util::kMicrosPerHour + 7;

  const std::vector<net::PacketRecord> batch = generator.generate_packets(user, begin, end);
  Collect sink;
  generator.generate_packets_streamed(user, begin, end, sink, 1024);
  EXPECT_EQ(sink.all, batch);
  for (const auto& p : sink.all) {
    ASSERT_GE(p.timestamp, begin);
    ASSERT_LT(p.timestamp, end);
  }
}

TEST(TraceIoStream, BinaryStreamEqualsRead) {
  const TraceGenerator generator(day_config());
  const std::vector<net::PacketRecord> packets =
      generator.generate_packets(test_user(5), 0, util::kMicrosPerDay);

  std::stringstream buffer;
  write_packet_trace(buffer, packets);
  const std::vector<net::PacketRecord> read = read_packet_trace(buffer);

  buffer.clear();
  buffer.seekg(0);
  Collect sink;
  EXPECT_EQ(stream_packet_trace(buffer, sink, 512), packets.size());
  EXPECT_EQ(sink.all, read);
  for (const std::size_t n : sink.batch_sizes) ASSERT_LE(n, 512u);
}

TEST(TraceIoStream, CsvStreamEqualsRead) {
  const TraceGenerator generator(day_config());
  const std::vector<net::PacketRecord> packets =
      generator.generate_packets(test_user(6), 0, util::kMicrosPerDay / 4);

  std::stringstream buffer;
  write_packet_csv(buffer, packets);
  const std::string text = buffer.str();

  std::istringstream for_read(text);
  const std::vector<net::PacketRecord> read = read_packet_csv(for_read);

  std::istringstream for_stream(text);
  Collect sink;
  EXPECT_EQ(stream_packet_csv(for_stream, sink, 100), packets.size());
  EXPECT_EQ(sink.all, read);
}

TEST(PcapStream, StreamEqualsRead) {
  const TraceGenerator generator(day_config());
  const std::vector<net::PacketRecord> packets =
      generator.generate_packets(test_user(8), 0, util::kMicrosPerDay / 4);

  std::stringstream buffer;
  write_pcap(buffer, packets);
  const std::string bytes = buffer.str();

  std::istringstream for_read(bytes);
  const PcapReadResult batch = read_pcap(for_read);
  EXPECT_EQ(batch.packet_count, batch.packets.size());

  std::istringstream for_stream(bytes);
  Collect sink;
  const PcapReadResult streamed = stream_pcap(for_stream, sink, 256);
  EXPECT_TRUE(streamed.packets.empty());
  EXPECT_EQ(streamed.packet_count, batch.packet_count);
  EXPECT_EQ(streamed.skipped_non_ipv4, batch.skipped_non_ipv4);
  EXPECT_EQ(streamed.skipped_protocol, batch.skipped_protocol);
  EXPECT_EQ(streamed.truncated, batch.truncated);
  EXPECT_EQ(sink.all, batch.packets);
  for (const std::size_t n : sink.batch_sizes) ASSERT_LE(n, 256u);
}

}  // namespace
}  // namespace monohids::trace
