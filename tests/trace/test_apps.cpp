// Consistency contract: emit_session_packets(), run through the real flow
// table and extractor, must reproduce the SessionFootprint the bin-level
// generator would count. This is what licenses the fast statistical path.
#include "trace/apps.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "features/pipeline.hpp"
#include "util/rng.hpp"

namespace monohids::trace {
namespace {

using features::FeatureKind;

const net::Ipv4Address kHost = net::Ipv4Address::parse("10.10.0.1");

DestinationPools small_pools() {
  DestinationPools pools;
  pools.dns_server = net::Ipv4Address::parse("10.10.255.2");
  pools.mail_server = net::Ipv4Address::parse("10.10.255.3");
  for (int i = 0; i < 64; ++i) {
    pools.web_servers.push_back(net::Ipv4Address(0x5D000000u + i));  // 93.0.0.x
    pools.peer_pool.push_back(net::Ipv4Address(0x4E000000u + i));    // 78.0.0.x
  }
  return pools;
}

struct ExtractedCounts {
  double tcp = 0, udp = 0, dns = 0, http = 0, syn = 0;
};

/// Renders one session as packets and extracts total feature counts.
ExtractedCounts render_and_extract(AppKind kind, const SessionFootprint& footprint,
                                   util::Xoshiro256& rng) {
  std::vector<net::PacketRecord> packets;
  emit_session_packets(kind, footprint, 1000, kHost, small_pools(), rng, packets);
  std::sort(packets.begin(), packets.end());

  features::PipelineConfig config;
  config.horizon = util::kMicrosPerWeek;
  const auto result = features::extract_features(kHost, packets, config);

  ExtractedCounts counts;
  const auto total = [&](FeatureKind f) {
    double acc = 0;
    const auto& s = result.matrix.of(f);
    for (std::size_t b = 0; b < s.bin_count(); ++b) acc += s.at(b);
    return acc;
  };
  counts.tcp = total(FeatureKind::TcpConnections);
  counts.udp = total(FeatureKind::UdpConnections);
  counts.dns = total(FeatureKind::DnsConnections);
  counts.http = total(FeatureKind::HttpConnections);
  counts.syn = total(FeatureKind::TcpSyn);
  return counts;
}

class AppConsistency : public ::testing::TestWithParam<AppKind> {};

TEST_P(AppConsistency, PacketsReproduceFootprint) {
  const AppKind kind = GetParam();
  util::Xoshiro256 footprint_rng(101);
  util::Xoshiro256 packet_rng(202);
  for (int trial = 0; trial < 25; ++trial) {
    const SessionFootprint f = sample_footprint(kind, footprint_rng);
    const ExtractedCounts c = render_and_extract(kind, f, packet_rng);
    EXPECT_DOUBLE_EQ(c.tcp, f.tcp_connections) << name_of(kind) << " trial " << trial;
    EXPECT_DOUBLE_EQ(c.udp, f.udp_connections) << name_of(kind);
    EXPECT_DOUBLE_EQ(c.dns, f.dns_connections) << name_of(kind);
    EXPECT_DOUBLE_EQ(c.http, f.http_connections) << name_of(kind);
    EXPECT_DOUBLE_EQ(c.syn, f.syn_packets) << name_of(kind);
  }
}

INSTANTIATE_TEST_SUITE_P(AllApps, AppConsistency, ::testing::ValuesIn(kAllApps),
                         [](const ::testing::TestParamInfo<AppKind>& info) {
                           return std::string(name_of(info.param));
                         });

TEST(AppFootprints, WebAlwaysHasObjectsAndDns) {
  util::Xoshiro256 rng(7);
  for (int i = 0; i < 200; ++i) {
    const auto f = sample_footprint(AppKind::Web, rng);
    EXPECT_GE(f.tcp_connections, 1u);
    EXPECT_GE(f.dns_connections, 1u);
    EXPECT_GE(f.syn_packets, f.tcp_connections);  // retransmissions only add
    EXPECT_LE(f.http_connections, f.tcp_connections);
    EXPECT_EQ(f.udp_connections, f.dns_connections);
  }
}

TEST(AppFootprints, WebObjectCountsAreHeavyTailed) {
  util::Xoshiro256 rng(8);
  std::uint32_t max_objects = 0;
  double total = 0;
  const int n = 3000;
  for (int i = 0; i < n; ++i) {
    const auto f = sample_footprint(AppKind::Web, rng);
    max_objects = std::max(max_objects, f.tcp_connections);
    total += f.tcp_connections;
  }
  const double mean = total / n;
  EXPECT_GT(max_objects, mean * 8);  // tail far beyond the mean
}

TEST(AppFootprints, P2pTouchesManyDistinctPeers) {
  util::Xoshiro256 rng(9);
  for (int i = 0; i < 100; ++i) {
    const auto f = sample_footprint(AppKind::P2p, rng);
    EXPECT_EQ(f.distinct_draws, f.udp_connections);
    EXPECT_EQ(f.tcp_connections, 0u);
  }
}

TEST(AppFootprints, UpdateConcentratesOnFewDestinations) {
  util::Xoshiro256 rng(10);
  for (int i = 0; i < 100; ++i) {
    const auto f = sample_footprint(AppKind::Update, rng);
    EXPECT_GE(f.tcp_connections, 4u);
    EXPECT_LE(f.distinct_draws, 2u);
  }
}

TEST(AppFootprints, MailIsASingleConnection) {
  util::Xoshiro256 rng(11);
  for (int i = 0; i < 100; ++i) {
    const auto f = sample_footprint(AppKind::Mail, rng);
    EXPECT_EQ(f.tcp_connections, 1u);
    EXPECT_EQ(f.syn_packets, 1u);
  }
}

TEST(AppPackets, UpdateUsesAtMostTwoServers) {
  util::Xoshiro256 rng(12);
  const auto f = sample_footprint(AppKind::Update, rng);
  std::vector<net::PacketRecord> packets;
  emit_session_packets(AppKind::Update, f, 0, kHost, small_pools(), rng, packets);
  std::unordered_set<net::Ipv4Address> dsts;
  for (const auto& p : packets) {
    if (p.tuple.src_ip == kHost && p.tuple.protocol == net::Protocol::Tcp) {
      dsts.insert(p.tuple.dst_ip);
    }
  }
  EXPECT_LE(dsts.size(), 2u);
}

TEST(AppNames, AreStable) {
  EXPECT_EQ(name_of(AppKind::Web), "web");
  EXPECT_EQ(name_of(AppKind::P2p), "p2p");
  EXPECT_EQ(kAppCount, 6u);
}

}  // namespace
}  // namespace monohids::trace
