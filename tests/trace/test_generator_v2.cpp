// Determinism suite for the v2 counter-mode scenario contract: the rendered
// feature bytes must be a pure function of (config, user) — invariant to
// the bin-tile partition, the tile rendering order, and the SIMD back-end.
// Unlike the v1 differential suite (test_generator_batched.cpp) there is no
// reference implementation to diff against; the contract IS the keyed draw
// layout (API_TOUR.md §16), so the suite pins its invariances plus a
// distributional sanity check against the v1 model it replaces.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "stats/kernels.hpp"
#include "trace/generator.hpp"
#include "trace/population.hpp"

namespace monohids::trace {
namespace {

void expect_bit_identical(const features::FeatureMatrix& a,
                          const features::FeatureMatrix& b, const std::string& what) {
  ASSERT_EQ(a.series.size(), b.series.size()) << what;
  for (std::size_t s = 0; s < a.series.size(); ++s) {
    const auto va = a.series[s].values();
    const auto vb = b.series[s].values();
    ASSERT_EQ(va.size(), vb.size()) << what << " series " << s;
    ASSERT_EQ(std::memcmp(va.data(), vb.data(), va.size() * sizeof(double)), 0)
        << what << " series " << s;
  }
}

std::vector<UserProfile> small_population(std::uint32_t n, std::uint32_t weeks) {
  PopulationConfig pc;
  pc.user_count = n;
  pc.seed = 4242;
  pc.weeks = weeks;
  return generate_population(pc);
}

GeneratorConfig v2_config(std::uint32_t weeks, std::uint32_t bin_minutes) {
  GeneratorConfig config;
  config.weeks = weeks;
  config.grid = util::BinGrid::minutes(bin_minutes);
  config.scenario_version = ScenarioVersion::V2;
  return config;
}

TEST(GeneratorV2, RenderIsReproducibleAcrossGeneratorInstances) {
  const auto users = small_population(6, 2);
  const TraceGenerator a(v2_config(2, 15));
  const TraceGenerator b(v2_config(2, 15));
  for (const UserProfile& u : users) {
    expect_bit_identical(a.generate_features(u), b.generate_features(u),
                         "user " + std::to_string(u.user_id));
  }
}

TEST(GeneratorV2, BinTilePartitionDoesNotChangeAnyByte) {
  // Default tile vs bin-count-hostile tiles, on grids that divide the week
  // and grids that do not: every partition must render identical bytes,
  // because each (user, bin) owns its own keyed stream.
  const auto users = small_population(4, 2);
  for (const std::uint32_t bin_minutes : {15u, 13u}) {
    auto config = v2_config(2, bin_minutes);
    const TraceGenerator reference(config);
    std::vector<features::FeatureMatrix> expected;
    for (const UserProfile& u : users) expected.push_back(reference.generate_features(u));

    for (const std::uint32_t tile : {1u, 7u, 97u, 672u, 100000u}) {
      config.v2_bin_tile = tile;
      const TraceGenerator tiled(config);
      for (std::size_t i = 0; i < users.size(); ++i) {
        expect_bit_identical(tiled.generate_features(users[i]), expected[i],
                             "tile " + std::to_string(tile) + " bin-minutes " +
                                 std::to_string(bin_minutes) + " user " +
                                 std::to_string(i));
      }
    }
  }
}

TEST(GeneratorV2, OutOfOrderTileRenderMatchesGenerateFeatures) {
  // Tiles rendered directly through the parallel entry point, deliberately
  // back to front, must assemble the same matrix generate_features builds.
  const auto users = small_population(3, 1);
  const auto config = v2_config(1, 15);
  const TraceGenerator generator(config);
  const std::uint64_t bins = generator.config().grid.bin_count(generator.config().horizon());
  const std::uint64_t tile = 101;
  for (const UserProfile& u : users) {
    const auto expected = generator.generate_features(u);
    features::FeatureMatrix matrix;
    for (auto& series : matrix.series) {
      series = features::BinnedSeries(generator.config().grid,
                                      generator.config().horizon());
    }
    std::vector<std::pair<std::uint64_t, std::uint64_t>> tiles;
    for (std::uint64_t begin = 0; begin < bins; begin += tile) {
      tiles.emplace_back(begin, std::min(begin + tile, bins));
    }
    for (auto it = tiles.rbegin(); it != tiles.rend(); ++it) {
      generator.render_features_v2_tile(u, it->first, it->second, matrix);
    }
    expect_bit_identical(matrix, expected, "user " + std::to_string(u.user_id));
  }
}

TEST(GeneratorV2, EveryAvailableBackendRendersIdenticalBytes) {
  // The SIMD-invariance leg of the v2 determinism gate, in-process: force
  // each available back-end and compare raw bytes against the scalar
  // render. (The counter words are pure integer functions everywhere; the
  // count resolution pipeline is fixed-order fma/IEEE ops by contract.)
  namespace kernels = stats::kernels;
  std::vector<kernels::Backend> simd;
  for (kernels::Backend b : {kernels::Backend::Avx2, kernels::Backend::Neon}) {
    if (kernels::backend_available(b)) simd.push_back(b);
  }
  if (simd.empty()) GTEST_SKIP() << "no SIMD back-end available on this host";

  const auto users = small_population(4, 2);
  const TraceGenerator generator(v2_config(2, 15));

  ASSERT_TRUE(kernels::force_backend(kernels::Backend::Scalar));
  std::vector<features::FeatureMatrix> expected;
  for (const UserProfile& u : users) expected.push_back(generator.generate_features(u));

  for (kernels::Backend b : simd) {
    ASSERT_TRUE(kernels::force_backend(b));
    for (std::size_t i = 0; i < users.size(); ++i) {
      expect_bit_identical(generator.generate_features(users[i]), expected[i],
                           std::string("backend ") + std::string(kernels::backend_name(b)) +
                               " user " + std::to_string(i));
    }
  }
  kernels::reset_backend();
}

TEST(GeneratorV2, AggregateVolumeTracksTheV1Model) {
  // v2 redraws every count under a different contract, so bytes differ
  // from v1 by design — but it samples the same behavioral model, so the
  // population-aggregate per-feature totals must land in the same range.
  // Deterministic seeds: this pins the distributional equivalence once.
  const auto users = small_population(12, 2);
  auto config = v2_config(2, 15);
  const TraceGenerator v2(config);
  config.scenario_version = ScenarioVersion::V1;
  const TraceGenerator v1(config);

  std::vector<double> v1_total, v2_total;
  for (const UserProfile& u : users) {
    const auto m1 = v1.generate_features(u);
    const auto m2 = v2.generate_features(u);
    if (v1_total.empty()) {
      v1_total.assign(m1.series.size(), 0.0);
      v2_total.assign(m2.series.size(), 0.0);
    }
    for (std::size_t s = 0; s < m1.series.size(); ++s) {
      for (const double v : m1.series[s].values()) v1_total[s] += v;
      for (const double v : m2.series[s].values()) v2_total[s] += v;
    }
  }
  for (std::size_t s = 0; s < v1_total.size(); ++s) {
    ASSERT_GT(v1_total[s], 0.0) << "series " << s;
    ASSERT_GT(v2_total[s], 0.0) << "series " << s;
    const double ratio = v2_total[s] / v1_total[s];
    EXPECT_GT(ratio, 0.75) << "series " << s;
    EXPECT_LT(ratio, 1.30) << "series " << s;
  }
}

}  // namespace
}  // namespace monohids::trace
