// Full-scale integration tests: every headline claim of the paper, at the
// paper's population size (350 users, 15-minute bins, multi-week traces).
// These are the acceptance tests of the reproduction — if one fails, a
// figure or table no longer reproduces.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "sim/experiments.hpp"

namespace monohids::sim {
namespace {

using features::FeatureKind;

const Scenario& paper_scenario() {
  static const Scenario scenario = [] {
    ScenarioConfig config;  // defaults: 350 users, 5 weeks, seed 42
    return build_scenario(config);
  }();
  return scenario;
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

// ---------------------------------------------------------------- Figure 1
TEST(Figure1, TailThresholdsSpanDecades) {
  // "the range of diversity varies by 3 to 4 orders of magnitude for 5 of
  // the 6 features ... number of DNS connections varies only across two"
  double min_spread = 99.0, max_spread = 0.0;
  for (FeatureKind f : features::kAllFeatures) {
    const auto result = tail_diversity(paper_scenario(), f, 0);
    EXPECT_GE(result.spread_decades, 1.4) << features::name_of(f);
    min_spread = std::min(min_spread, result.spread_decades);
    max_spread = std::max(max_spread, result.spread_decades);
  }
  EXPECT_GE(max_spread, 2.4);
  // DNS is the tightest feature.
  const auto dns = tail_diversity(paper_scenario(), FeatureKind::DnsConnections, 0);
  EXPECT_NEAR(dns.spread_decades, min_spread, 0.7);
}

TEST(Figure1, HeavyUserKneeExists) {
  // Roughly the top 10-15% of users are "very heavy with respect to all
  // others": the p85 -> max ratio dwarfs the p50 -> p85 ratio.
  const auto result = tail_diversity(paper_scenario(), FeatureKind::TcpConnections, 0);
  const auto n = result.p99_sorted.size();
  const double p50 = result.p99_sorted[n / 2];
  const double p85 = result.p99_sorted[static_cast<std::size_t>(0.85 * n)];
  const double top = result.p99_sorted.back();
  EXPECT_GT(top / p85, p85 / p50);
}

// ---------------------------------------------------------------- Figure 2
TEST(Figure2, CrossFeatureRolesExist) {
  // "users at the extreme lower right ... 'light' in UDP but 'heavy' in TCP"
  const auto scatter = feature_scatter(paper_scenario(), FeatureKind::TcpConnections,
                                       FeatureKind::UdpConnections, 0);
  const double tcp_median = median(scatter.x);
  const double udp_median = median(scatter.y);
  bool tcp_heavy_udp_light = false, udp_heavy_tcp_light = false;
  for (std::size_t u = 0; u < scatter.x.size(); ++u) {
    if (scatter.x[u] > 3 * tcp_median && scatter.y[u] < udp_median) {
      tcp_heavy_udp_light = true;
    }
    if (scatter.y[u] > 3 * udp_median && scatter.x[u] < tcp_median) {
      udp_heavy_tcp_light = true;
    }
  }
  EXPECT_TRUE(tcp_heavy_udp_light);
  EXPECT_TRUE(udp_heavy_tcp_light);
}

// ----------------------------------------------------------------- Table 2
TEST(Table2, BestUsersBarelyOverlapAcrossFeatures) {
  const auto tcp = best_users_experiment(paper_scenario(), FeatureKind::TcpConnections, 0);
  const auto udp = best_users_experiment(paper_scenario(), FeatureKind::UdpConnections, 0);
  // Paper: 2 common users under full diversity, 4 under partial diversity.
  EXPECT_LE(hids::overlap_count(tcp.full_diversity, udp.full_diversity), 5u);
  EXPECT_LE(hids::overlap_count(tcp.partial_diversity, udp.partial_diversity), 7u);
}

// ------------------------------------------------------------- Figure 3(a)
TEST(Figure3a, DiversityUtilityBeatsMonocultureForMostUsers) {
  const auto result = utility_boxplots(paper_scenario(), FeatureKind::TcpConnections, 0.4);
  const double homog_median = median(result.utilities[0]);
  const double full_median = median(result.utilities[1]);
  const double partial_median = median(result.utilities[2]);
  EXPECT_GT(full_median, homog_median);
  // Partial diversity performs "almost as well as" full diversity.
  EXPECT_NEAR(partial_median, full_median, 0.02);
}

// ------------------------------------------------------------- Figure 3(b)
TEST(Figure3b, DiversityGainGrowsWithFnWeight) {
  const auto result = weight_sweep(paper_scenario(), FeatureKind::TcpConnections,
                                   {0.1, 0.3, 0.5, 0.7, 0.9});
  const auto& homog = result.mean_utility[0];
  const auto& full = result.mean_utility[1];
  const auto& partial = result.mean_utility[2];
  // Gap grows monotonically with w...
  for (std::size_t i = 1; i < homog.size(); ++i) {
    EXPECT_GE(full[i] - homog[i], full[i - 1] - homog[i - 1] - 1e-9);
  }
  // ...and is small at w=0.1 but substantial at w=0.9.
  EXPECT_LT(full[0] - homog[0], 0.05);
  EXPECT_GT(full[4] - homog[4], 0.08);
  // Partial diversity tracks full diversity closely at every w.
  for (std::size_t i = 0; i < partial.size(); ++i) {
    EXPECT_NEAR(partial[i], full[i], 0.03);
  }
}

// ----------------------------------------------------------------- Table 3
TEST(Table3, MonocultureFloodsTheConsole) {
  const auto result = alarm_rates(paper_scenario(), FeatureKind::TcpConnections);
  // row 0: 99th percentile heuristic — homogeneous > full-diversity and
  // homogeneous > 8-partial (paper: 1594 vs 892 vs 482).
  const auto& percentile_row = result.alarms[0];
  EXPECT_GT(percentile_row[0], percentile_row[1]);
  EXPECT_GT(percentile_row[0], percentile_row[2]);
  // Partial diversity also cuts alarms relative to the monoculture.
  EXPECT_LT(percentile_row[2], percentile_row[0]);
  // row 1: utility heuristic — the monoculture is the worst there too
  // (paper: 3536 vs 1194 vs 2328).
  const auto& utility_row = result.alarms[1];
  EXPECT_GT(utility_row[0], utility_row[1]);
}

TEST(Table3, AlarmVolumesArePlausible) {
  // 350 users, 672 bins/week, ~1%-tail detectors: hundreds to a few
  // thousand alarms per week, not zero and not everything.
  const auto result = alarm_rates(paper_scenario(), FeatureKind::TcpConnections);
  for (const auto& row : result.alarms) {
    for (double alarms : row) {
      EXPECT_GT(alarms, 100.0);
      EXPECT_LT(alarms, 30000.0);
    }
  }
}

// ------------------------------------------------------------- Figure 4(a)
TEST(Figure4a, DiversityCatchesStealthyAttacks) {
  const auto result = naive_attack_curves(paper_scenario(), FeatureKind::TcpConnections, 40);
  const auto& sizes = result.sizes;
  const auto& homog = result.detection[0];
  const auto& full = result.detection[1];
  const auto& partial = result.detection[2];

  // In the stealthy band (sizes within the typical user range), diversity
  // detects dramatically more often than the monoculture.
  double homog_auc = 0, full_auc = 0, partial_auc = 0;
  std::size_t stealthy_points = 0;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    if (sizes[i] > 100.0) break;
    homog_auc += homog[i];
    full_auc += full[i];
    partial_auc += partial[i];
    ++stealthy_points;
  }
  ASSERT_GT(stealthy_points, 5u);
  EXPECT_GT(full_auc, 3.0 * homog_auc);
  EXPECT_GT(partial_auc, 3.0 * homog_auc);

  // Everyone catches the giant attacks in the end.
  EXPECT_GT(homog.back(), 0.95);
  EXPECT_GT(full.back(), 0.95);
}

// ------------------------------------------------------------- Figure 4(b)
TEST(Figure4b, DiversityShrinksMimicryRoom) {
  const auto result = resourceful_attack(paper_scenario(), FeatureKind::TcpConnections);
  const double homog_median = median(result.hidden_volumes[0]);
  const double full_median = median(result.hidden_volumes[1]);
  const double partial_median = median(result.hidden_volumes[2]);
  // Paper: the homogeneous median hidden volume is several times the
  // diversity policies' (~3x in their data).
  EXPECT_GT(homog_median, 3.0 * full_median);
  EXPECT_GT(homog_median, 3.0 * partial_median);
  EXPECT_NEAR(partial_median, full_median, 0.8 * full_median);
}

// ---------------------------------------------------------------- Figure 5
TEST(Figure5, StormReplayContrast) {
  const auto result = storm_replay(paper_scenario());
  const auto& homog = result.outcomes[0];
  const auto& full = result.outcomes[1];
  const auto& partial = result.outcomes[2];

  // Diversity pins the false-positive rate near the 1% design point...
  std::vector<double> full_fp, homog_fp;
  for (const auto& o : full) full_fp.push_back(o.fp_rate);
  for (const auto& o : homog) homog_fp.push_back(o.fp_rate);
  EXPECT_LT(median(full_fp), 0.03);
  // ...while the monoculture's FP rates scatter: most users are silent but
  // the noisiest ones dwarf the diversity policy's worst case.
  const double homog_max_fp = *std::max_element(homog_fp.begin(), homog_fp.end());
  const double full_max_fp = *std::max_element(full_fp.begin(), full_fp.end());
  EXPECT_GT(homog_max_fp, 2.0 * full_max_fp);

  // Overall, more users detect the zombie under diversity.
  double full_det = 0, homog_det = 0, partial_det = 0;
  for (std::size_t u = 0; u < full.size(); ++u) {
    full_det += full[u].detection_rate;
    homog_det += homog[u].detection_rate;
    partial_det += partial[u].detection_rate;
  }
  EXPECT_GT(full_det, homog_det);
  // Partial diversity's detection stays close to full diversity's.
  EXPECT_NEAR(partial_det / full.size(), full_det / full.size(), 0.1);
}

// ---------------------------------------------------- §5 grouping notes
TEST(Section5, KMeansFindsNoNaturalClusters) {
  const auto result = grouping_ablation(paper_scenario(), FeatureKind::TcpConnections);
  // "there wasn't a natural separation ... no natural holes": silhouettes
  // stay mediocre for every k the paper tried.
  for (std::size_t i = 0; i < result.silhouettes.size(); ++i) {
    EXPECT_LT(result.silhouettes[i], 0.75) << "k=" << result.silhouette_k[i];
  }
}

// --------------------------------------------------- §6.1 threshold drift
TEST(Section61, ThresholdsAreNotStableWeekToWeek) {
  const auto result = threshold_drift(paper_scenario(), FeatureKind::TcpConnections);
  // "selecting a threshold based on the 99th percentile did not always
  // reflect a 1% false positive rate in the next week"
  std::size_t off_target = 0;
  for (double fp : result.realized_fp) {
    if (fp < 0.005 || fp > 0.02) ++off_target;
  }
  EXPECT_GT(off_target, result.realized_fp.size() / 4);
}

}  // namespace
}  // namespace monohids::sim
