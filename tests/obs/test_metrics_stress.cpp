// Concurrency stress for the observability layer and the analysis cache:
// scrapes racing mutation. These tests exist for the TSan CI job — their
// assertions are deliberately coarse (totals conserved, no torn samples);
// the real verdict is the race detector's. Iteration counts are sized to
// finish in seconds under TSan's ~10x slowdown.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "sim/analysis_cache.hpp"
#include "sim/scenario.hpp"

namespace monohids {
namespace {

TEST(MetricsStress, ConcurrentScrapeAndMutation) {
  if constexpr (!obs::kEnabled) {
    GTEST_SKIP() << "observability compiled out (MONOHIDS_OBS=OFF)";
  }
  obs::MetricsRegistry registry;
  obs::Counter counter = registry.counter("stress.counter");
  obs::Gauge gauge = registry.gauge("stress.gauge");
  obs::Histogram hist = registry.histogram("stress.hist", {1.0, 4.0, 16.0});

  constexpr int kWriters = 4;
  constexpr int kScrapers = 2;
  constexpr int kOpsPerWriter = 20000;
  std::atomic<bool> stop{false};

  std::vector<std::thread> threads;
  threads.reserve(kWriters + kScrapers + 1);
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([counter, gauge, hist, w]() mutable {
      for (int i = 0; i < kOpsPerWriter; ++i) {
        counter.inc();
        gauge.add(1);
        hist.observe(static_cast<double>((i + w) % 32));
        gauge.sub(1);
      }
    });
  }
  for (int s = 0; s < kScrapers; ++s) {
    threads.emplace_back([&registry, &stop] {
      std::uint64_t last = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const obs::MetricsSnapshot snap = registry.snapshot();
        const std::uint64_t now = snap.counter_value("stress.counter");
        // Monotone within one scraper: a scrape may lag writers but can
        // never run a counter backwards or surface a torn value.
        EXPECT_GE(now, last);
        EXPECT_LE(now,
                  static_cast<std::uint64_t>(kWriters) * kOpsPerWriter);
        last = now;
        const obs::HistogramSample* h = snap.histogram("stress.hist");
        ASSERT_NE(h, nullptr);
        std::uint64_t bucket_total = 0;
        for (std::uint64_t c : h->counts) bucket_total += c;
        EXPECT_EQ(bucket_total, h->count);
      }
    });
  }
  // One exporter thread: rendering while writers mutate must be safe too.
  threads.emplace_back([&registry, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      const std::string doc = obs::to_json(registry.snapshot());
      EXPECT_FALSE(doc.empty());
    }
  });

  for (int w = 0; w < kWriters; ++w) threads[static_cast<std::size_t>(w)].join();
  stop.store(true, std::memory_order_release);
  for (std::size_t t = kWriters; t < threads.size(); ++t) threads[t].join();

  const obs::MetricsSnapshot final_snap = registry.snapshot();
  EXPECT_EQ(final_snap.counter_value("stress.counter"),
            static_cast<std::uint64_t>(kWriters) * kOpsPerWriter);
  EXPECT_EQ(final_snap.gauge_value("stress.gauge"), 0);
  const obs::HistogramSample* h = final_snap.histogram("stress.hist");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, static_cast<std::uint64_t>(kWriters) * kOpsPerWriter);
}

TEST(MetricsStress, RegistrationRacesLookup) {
  if constexpr (!obs::kEnabled) {
    GTEST_SKIP() << "observability compiled out (MONOHIDS_OBS=OFF)";
  }
  obs::MetricsRegistry registry;
  constexpr int kThreads = 6;
  constexpr int kNames = 32;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < kNames; ++i) {
        obs::Counter c = registry.counter("race.counter." + std::to_string(i));
        c.inc();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const obs::MetricsSnapshot snap = registry.snapshot();
  for (int i = 0; i < kNames; ++i) {
    EXPECT_EQ(snap.counter_value("race.counter." + std::to_string(i)),
              static_cast<std::uint64_t>(kThreads));
  }
}

TEST(MetricsStress, TraceRingWritersRaceCollectors) {
  if constexpr (!obs::kEnabled) {
    GTEST_SKIP() << "observability compiled out (MONOHIDS_OBS=OFF)";
  }
  obs::TraceRing ring(64);
  constexpr int kWriters = 4;
  constexpr int kSpansPerWriter = 20000;
  static const char* const kNames[kWriters] = {"ring.a", "ring.b", "ring.c", "ring.d"};
  std::atomic<bool> stop{false};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&ring, w] {
      for (int i = 0; i < kSpansPerWriter; ++i) {
        ring.record(kNames[w], static_cast<std::uint64_t>(i), static_cast<std::uint64_t>(w));
      }
    });
  }
  threads.emplace_back([&ring, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      for (const obs::SpanSample& span : ring.collect()) {
        // A collected span is never torn: its fields must agree with the
        // writer that produced its name.
        bool known = false;
        for (int w = 0; w < kWriters; ++w) {
          if (span.name == kNames[w]) {
            known = true;
            EXPECT_EQ(span.duration_us, static_cast<std::uint64_t>(w));
            EXPECT_LT(span.start_us, static_cast<std::uint64_t>(kSpansPerWriter));
          }
        }
        EXPECT_TRUE(known) << "collected span with unknown name";
      }
    }
  });
  threads.emplace_back([&ring, &stop] {
    while (!stop.load(std::memory_order_acquire)) ring.clear();
  });

  for (int w = 0; w < kWriters; ++w) threads[static_cast<std::size_t>(w)].join();
  stop.store(true, std::memory_order_release);
  for (std::size_t t = kWriters; t < threads.size(); ++t) threads[t].join();
  EXPECT_EQ(ring.recorded(), static_cast<std::uint64_t>(kWriters) * kSpansPerWriter);
}

TEST(AnalysisCacheStress, LookupsRaceScrapesAndClears) {
  // Small scenario: the point is contention on the cache's lock and promise
  // machinery while the obs scrape path runs concurrently, not sim scale.
  sim::ScenarioConfig config;
  config.set_users(8);
  config.set_weeks(2);
  config.set_seed(99);
  const sim::Scenario scenario = sim::build_scenario(config);
  sim::AnalysisCache cache(scenario.matrices);

  constexpr int kLookupThreads = 4;
  constexpr int kRounds = 40;
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;

  for (int t = 0; t < kLookupThreads; ++t) {
    threads.emplace_back([&cache, t] {
      const auto feature =
          features::kAllFeatures[static_cast<std::size_t>(t) % features::kFeatureCount];
      for (int round = 0; round < kRounds; ++round) {
        const auto week = cache.week(feature, static_cast<std::uint32_t>(round % 2),
                                     /*threads=*/1);
        ASSERT_EQ(week->size(), 8u);
        const auto attack = cache.attack_model(feature, 0, /*steps=*/8, /*threads=*/1);
        ASSERT_FALSE(attack->sizes.empty());
      }
    });
  }
  // Scraper: cache counters + the global obs registry (cache.* series).
  threads.emplace_back([&cache, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      const auto counters = cache.counters();
      EXPECT_GE(counters.misses + counters.hits, 0u);
      const obs::MetricsSnapshot snap = obs::MetricsRegistry::global().snapshot();
      EXPECT_GE(snap.counter_value("cache.misses_total"), 0u);
    }
  });
  // Invalidator: clear() must be safe against in-flight lookups.
  threads.emplace_back([&cache, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      cache.clear();
      std::this_thread::yield();
    }
  });

  for (int t = 0; t < kLookupThreads; ++t) threads[static_cast<std::size_t>(t)].join();
  stop.store(true, std::memory_order_release);
  for (std::size_t t = kLookupThreads; t < threads.size(); ++t) threads[t].join();

  const auto counters = cache.counters();
  EXPECT_GE(counters.misses, 1u);
}

}  // namespace
}  // namespace monohids
