// obs::MetricsRegistry / TraceRing / exporters: registration semantics,
// shard aggregation, handle inertness, snapshot helpers, bucket math, ring
// wraparound and the two export formats. Every test that needs live metrics
// skips itself in a -DMONOHIDS_OBS=OFF build (the suite must stay green in
// both flavors); the OFF-specific contracts get their own tests below.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace monohids::obs {
namespace {

#define SKIP_WHEN_OBS_OFF()                                         \
  if constexpr (!kEnabled) {                                        \
    GTEST_SKIP() << "observability compiled out (MONOHIDS_OBS=OFF)"; \
  }

TEST(MetricsRegistry, CounterAccumulatesIntoSnapshot) {
  SKIP_WHEN_OBS_OFF();
  MetricsRegistry registry;
  Counter c = registry.counter("test.counter");
  EXPECT_FALSE(c.is_null());
  c.inc();
  c.add(41);
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter_value("test.counter"), 42u);
}

TEST(MetricsRegistry, RegistrationIsIdempotent) {
  SKIP_WHEN_OBS_OFF();
  MetricsRegistry registry;
  Counter a = registry.counter("same.name");
  Counter b = registry.counter("same.name");
  a.add(2);
  b.add(3);
  // Same name -> same underlying metric, and only one sample row.
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter_value("same.name"), 5u);
  EXPECT_EQ(snap.counters.size(), 1u);
}

TEST(MetricsRegistry, KindMismatchThrows) {
  SKIP_WHEN_OBS_OFF();
  MetricsRegistry registry;
  (void)registry.counter("kinded.metric");
  EXPECT_THROW((void)registry.gauge("kinded.metric"), std::logic_error);
  EXPECT_THROW((void)registry.histogram("kinded.metric", {1.0}), std::logic_error);
}

TEST(MetricsRegistry, DefaultHandlesAreInert) {
  // Holds in both build flavors: un-registered handles must be safe no-ops.
  Counter c;
  Gauge g;
  Histogram h;
  EXPECT_TRUE(c.is_null());
  EXPECT_TRUE(g.is_null());
  EXPECT_TRUE(h.is_null());
  c.add(7);
  g.set(7);
  g.add(1);
  h.observe(7.0);
}

TEST(MetricsRegistry, GaugeTracksValueAndHighWater) {
  SKIP_WHEN_OBS_OFF();
  MetricsRegistry registry;
  Gauge g = registry.gauge("test.gauge");
  g.set(5);
  g.add(10);  // 15 — the peak
  g.sub(12);  // 3
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.gauge_value("test.gauge"), 3);
  EXPECT_EQ(snap.gauge_value("test.gauge.max"), 15);
}

TEST(MetricsRegistry, HistogramBucketsCountsAndSum) {
  SKIP_WHEN_OBS_OFF();
  MetricsRegistry registry;
  Histogram h = registry.histogram("test.hist", {1.0, 2.0, 4.0});
  for (double v : {0.5, 1.5, 1.5, 3.0, 100.0}) h.observe(v);

  const MetricsSnapshot snap = registry.snapshot();
  const HistogramSample* sample = snap.histogram("test.hist");
  ASSERT_NE(sample, nullptr);
  ASSERT_EQ(sample->bounds.size(), 3u);
  ASSERT_EQ(sample->counts.size(), 4u);  // bounds + implicit +inf bucket
  EXPECT_EQ(sample->counts[0], 1u);      // <= 1
  EXPECT_EQ(sample->counts[1], 2u);      // (1, 2]
  EXPECT_EQ(sample->counts[2], 1u);      // (2, 4]
  EXPECT_EQ(sample->counts[3], 1u);      // +inf
  EXPECT_EQ(sample->count, 5u);
  EXPECT_DOUBLE_EQ(sample->sum, 0.5 + 1.5 + 1.5 + 3.0 + 100.0);

  // Quantiles are bucket-interpolated: exact values are not promised, but
  // they must be monotone in q and inside the populated bucket range.
  const double p25 = sample->approx_quantile(0.25);
  const double p50 = sample->approx_quantile(0.50);
  const double p99 = sample->approx_quantile(0.99);
  EXPECT_LE(p25, p50);
  EXPECT_LE(p50, p99);
  EXPECT_GE(p25, 0.0);
  EXPECT_GE(p99, 4.0);  // the top observation lives in the overflow bucket
}

TEST(MetricsRegistry, HistogramReRegistrationKeepsOriginalBounds) {
  SKIP_WHEN_OBS_OFF();
  MetricsRegistry registry;
  (void)registry.histogram("agreed.hist", {1.0, 2.0});
  Histogram again = registry.histogram("agreed.hist", {10.0, 20.0, 30.0});
  again.observe(1.5);
  const HistogramSample* sample = registry.snapshot().histogram("agreed.hist");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->bounds, (BucketBounds{1.0, 2.0}));
}

TEST(MetricsRegistry, SnapshotSumsShardsAcrossThreads) {
  SKIP_WHEN_OBS_OFF();
  MetricsRegistry registry;
  Counter c = registry.counter("threads.counter");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c]() mutable {
      for (int i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(registry.snapshot().counter_value("threads.counter"),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsRegistry, ResetZeroesValuesButKeepsHandles) {
  SKIP_WHEN_OBS_OFF();
  MetricsRegistry registry;
  Counter c = registry.counter("reset.counter");
  Histogram h = registry.histogram("reset.hist", {1.0});
  c.add(10);
  h.observe(0.5);
  registry.reset();
  EXPECT_EQ(registry.snapshot().counter_value("reset.counter"), 0u);
  EXPECT_EQ(registry.snapshot().histogram("reset.hist")->count, 0u);
  c.add(3);  // outstanding handles still feed the same (zeroed) metric
  h.observe(0.5);
  EXPECT_EQ(registry.snapshot().counter_value("reset.counter"), 3u);
  EXPECT_EQ(registry.snapshot().histogram("reset.hist")->count, 1u);
}

TEST(MetricsSnapshot, LookupHelpersHandleAbsentNames) {
  MetricsSnapshot empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.counter_value("nope"), 0u);
  EXPECT_EQ(empty.gauge_value("nope"), 0);
  EXPECT_EQ(empty.histogram("nope"), nullptr);
}

TEST(BucketPresets, AreAscendingAndNonEmpty) {
  for (const BucketBounds& bounds :
       {latency_buckets_ms(), latency_buckets_us(), pow2_buckets(10)}) {
    ASSERT_FALSE(bounds.empty());
    for (std::size_t i = 1; i < bounds.size(); ++i) {
      EXPECT_LT(bounds[i - 1], bounds[i]);
    }
  }
  EXPECT_EQ(pow2_buckets(4), (BucketBounds{1.0, 2.0, 4.0, 8.0}));
}

TEST(TraceRing, RecordsAndCollects) {
  SKIP_WHEN_OBS_OFF();
  TraceRing ring(8);
  ring.record("unit.span", 100, 25);
  const auto spans = ring.collect();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "unit.span");
  EXPECT_EQ(spans[0].start_us, 100u);
  EXPECT_EQ(spans[0].duration_us, 25u);
}

TEST(TraceRing, WrapsAroundKeepingTheMostRecentWindow) {
  SKIP_WHEN_OBS_OFF();
  TraceRing ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  for (std::uint64_t i = 0; i < 10; ++i) ring.record("wrap.span", i, 1);
  EXPECT_EQ(ring.recorded(), 10u);
  const auto spans = ring.collect();
  ASSERT_EQ(spans.size(), 4u);
  // Oldest-first within the retained window: the last 4 of the 10 records.
  for (std::size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].start_us, 6 + i);
  }
  ring.clear();
  EXPECT_TRUE(ring.collect().empty());
}

TEST(TraceRing, CapacityRoundsUpToPowerOfTwo) {
  SKIP_WHEN_OBS_OFF();
  EXPECT_EQ(TraceRing(3).capacity(), 4u);
  EXPECT_EQ(TraceRing(5).capacity(), 8u);
}

TEST(ScopedTimer, RecordsSpanAndObservesHistogram) {
  SKIP_WHEN_OBS_OFF();
  MetricsRegistry registry;
  Histogram h = registry.histogram("timer.ms", latency_buckets_ms());
  const std::uint64_t before = TraceRing::global().recorded();
  {
    const ScopedTimer timer("test.scoped_timer", h);
    EXPECT_GE(timer.elapsed_us(), 0u);
  }
  EXPECT_EQ(TraceRing::global().recorded(), before + 1);
  EXPECT_EQ(registry.snapshot().histogram("timer.ms")->count, 1u);
  bool found = false;
  for (const SpanSample& span : TraceRing::global().collect()) {
    if (span.name == "test.scoped_timer") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(NowUs, IsMonotone) {
  const std::uint64_t a = now_us();
  const std::uint64_t b = now_us();
  EXPECT_LE(a, b);
}

TEST(Export, JsonCarriesCountersGaugesHistogramsAndSpans) {
  SKIP_WHEN_OBS_OFF();
  MetricsRegistry registry;
  registry.counter("json.counter").add(7);
  registry.gauge("json.gauge").set(-3);
  registry.histogram("json.hist", {1.0, 2.0}).observe(1.5);
  const std::vector<SpanSample> spans = {{"json.span", 1, 10, 5, 0}};

  const std::string doc = to_json(registry.snapshot(), spans);
  EXPECT_NE(doc.find("\"enabled\": true"), std::string::npos);
  EXPECT_NE(doc.find("\"json.counter\": 7"), std::string::npos);
  EXPECT_NE(doc.find("\"json.gauge\": -3"), std::string::npos);
  EXPECT_NE(doc.find("\"json.hist\""), std::string::npos);
  EXPECT_NE(doc.find("\"count\": 1"), std::string::npos);
  EXPECT_NE(doc.find("\"json.span\""), std::string::npos);
  EXPECT_NE(doc.find("\"duration_us\": 5"), std::string::npos);
}

TEST(Export, PrometheusFormatsNamesTypesAndCumulativeBuckets) {
  SKIP_WHEN_OBS_OFF();
  MetricsRegistry registry;
  registry.counter("prom.counter-x").add(2);
  Histogram h = registry.histogram("prom.hist", {1.0, 2.0});
  h.observe(0.5);
  h.observe(1.5);
  h.observe(9.0);

  const std::string text = to_prometheus(registry.snapshot());
  // Dots and dashes become underscores under the monohids_ prefix.
  EXPECT_NE(text.find("# TYPE monohids_prom_counter_x counter"), std::string::npos);
  EXPECT_NE(text.find("monohids_prom_counter_x 2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE monohids_prom_hist histogram"), std::string::npos);
  // Buckets are cumulative: le="2" covers both the 0.5 and 1.5 observations.
  EXPECT_NE(text.find("monohids_prom_hist_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("monohids_prom_hist_bucket{le=\"2\"} 2"), std::string::npos);
  EXPECT_NE(text.find("monohids_prom_hist_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find("monohids_prom_hist_count 3"), std::string::npos);
}

TEST(Export, GlobalJsonStreamIsAlwaysWellFormed) {
  // Works in both flavors: OFF builds emit an empty-but-valid document so
  // --metrics-json flags never have to care about the build type.
  std::ostringstream out;
  write_global_json(out);
  const std::string doc = out.str();
  EXPECT_NE(doc.find("\"counters\""), std::string::npos);
  EXPECT_NE(doc.find("\"spans\""), std::string::npos);
  if constexpr (kEnabled) {
    EXPECT_NE(doc.find("\"enabled\": true"), std::string::npos);
  } else {
    EXPECT_NE(doc.find("\"enabled\": false"), std::string::npos);
  }
}

TEST(ObsOffFlavor, SnapshotsAreEmpty) {
  if constexpr (kEnabled) {
    GTEST_SKIP() << "only meaningful with MONOHIDS_OBS=OFF";
  }
  MetricsRegistry registry;
  Counter c = registry.counter("off.counter");
  c.add(5);
  EXPECT_TRUE(registry.snapshot().empty());
  EXPECT_EQ(TraceRing::global().capacity(), 0u);
}

}  // namespace
}  // namespace monohids::obs
