#include "net/flow_table.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace monohids::net {
namespace {

using util::kMicrosPerMinute;
using util::kMicrosPerSecond;

const Ipv4Address kHost = Ipv4Address::parse("10.0.0.1");
const Ipv4Address kServer = Ipv4Address::parse("93.0.0.1");

FiveTuple out_tcp(std::uint16_t sport = 50000, std::uint16_t dport = 80) {
  return {kHost, kServer, sport, dport, Protocol::Tcp};
}

FiveTuple out_udp(std::uint16_t sport = 50000, std::uint16_t dport = 53) {
  return {kHost, kServer, sport, dport, Protocol::Udp};
}

PacketRecord pkt(util::Timestamp t, FiveTuple tuple, TcpFlags flags = TcpFlags::None) {
  return {t, tuple, flags, 0};
}

std::vector<FlowEvent> starts(std::vector<FlowEvent> events) {
  std::erase_if(events, [](const FlowEvent& e) { return e.kind != FlowEventKind::Start; });
  return events;
}

TEST(FlowTable, TcpSynOpensConnection) {
  FlowTable table(kHost);
  table.process(pkt(100, out_tcp(), TcpFlags::Syn));
  const auto events = table.drain_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, FlowEventKind::Start);
  EXPECT_TRUE(events[0].initiated_by_monitored_host);
  EXPECT_EQ(events[0].timestamp, 100u);
  EXPECT_EQ(table.active_flows(), 1u);
}

TEST(FlowTable, StrayTcpPacketDoesNotOpenConnection) {
  FlowTable table(kHost);
  table.process(pkt(100, out_tcp(), TcpFlags::Ack));
  EXPECT_TRUE(table.drain_events().empty());
  EXPECT_EQ(table.active_flows(), 0u);
}

TEST(FlowTable, FullTcpLifecycleEndsWithFin) {
  FlowTable table(kHost);
  const FiveTuple t = out_tcp();
  table.process(pkt(0, t, TcpFlags::Syn));
  table.process(pkt(100, t.reversed(), TcpFlags::Syn | TcpFlags::Ack));
  table.process(pkt(200, t, TcpFlags::Ack));
  table.process(pkt(300, t, TcpFlags::Fin | TcpFlags::Ack));
  table.process(pkt(400, t.reversed(), TcpFlags::Fin | TcpFlags::Ack));
  const auto events = table.drain_events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1].kind, FlowEventKind::End);
  EXPECT_EQ(events[1].end_reason, FlowEndReason::Fin);
  EXPECT_EQ(events[1].packets, 5u);
  EXPECT_EQ(table.active_flows(), 0u);
  EXPECT_EQ(table.stats().flows_ended_fin, 1u);
}

TEST(FlowTable, OneSidedFinKeepsFlowAlive) {
  FlowTable table(kHost);
  const FiveTuple t = out_tcp();
  table.process(pkt(0, t, TcpFlags::Syn));
  table.process(pkt(100, t, TcpFlags::Fin | TcpFlags::Ack));
  (void)table.drain_events();
  EXPECT_EQ(table.active_flows(), 1u);
}

TEST(FlowTable, RstTerminatesImmediately) {
  FlowTable table(kHost);
  const FiveTuple t = out_tcp();
  table.process(pkt(0, t, TcpFlags::Syn));
  table.process(pkt(100, t.reversed(), TcpFlags::Rst));
  const auto events = table.drain_events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1].end_reason, FlowEndReason::Rst);
  EXPECT_EQ(table.stats().flows_ended_rst, 1u);
}

TEST(FlowTable, SynRetransmissionDoesNotDoubleCount) {
  FlowTable table(kHost);
  const FiveTuple t = out_tcp();
  table.process(pkt(0, t, TcpFlags::Syn));
  table.process(pkt(3 * kMicrosPerSecond, t, TcpFlags::Syn));  // retransmit
  EXPECT_EQ(starts(table.drain_events()).size(), 1u);
  EXPECT_EQ(table.stats().flows_created, 1u);
  EXPECT_EQ(table.stats().syn_packets, 2u);  // raw SYNs still counted
}

TEST(FlowTable, SynAckIsNotARawSyn) {
  FlowTable table(kHost);
  const FiveTuple t = out_tcp();
  table.process(pkt(0, t, TcpFlags::Syn));
  table.process(pkt(100, t.reversed(), TcpFlags::Syn | TcpFlags::Ack));
  EXPECT_EQ(table.stats().syn_packets, 1u);
}

TEST(FlowTable, UdpFirstPacketOpensFlow) {
  FlowTable table(kHost);
  table.process(pkt(0, out_udp()));
  table.process(pkt(100, out_udp().reversed()));  // response joins the flow
  const auto events = table.drain_events();
  ASSERT_EQ(starts(events).size(), 1u);
  EXPECT_EQ(table.active_flows(), 1u);
}

TEST(FlowTable, UdpIdleTimeoutEndsFlow) {
  FlowTableConfig config;
  config.udp_idle_timeout = kMicrosPerMinute;
  FlowTable table(kHost, config);
  table.process(pkt(0, out_udp()));
  table.advance_to(2 * kMicrosPerMinute);
  const auto events = table.drain_events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1].end_reason, FlowEndReason::IdleTimeout);
  EXPECT_EQ(table.active_flows(), 0u);
}

TEST(FlowTable, TcpTimeoutIsLongerThanUdp) {
  FlowTableConfig config;  // defaults: tcp 5 min, udp 1 min
  FlowTable table(kHost, config);
  table.process(pkt(0, out_tcp(50000), TcpFlags::Syn));
  table.process(pkt(0, out_udp(50001)));
  table.advance_to(2 * kMicrosPerMinute);
  EXPECT_EQ(table.active_flows(), 1u);  // UDP evicted, TCP still tracked
  table.advance_to(6 * kMicrosPerMinute);
  EXPECT_EQ(table.active_flows(), 0u);
}

TEST(FlowTable, NewUdpFlowAfterTimeoutCountsAgain) {
  FlowTableConfig config;
  config.udp_idle_timeout = kMicrosPerMinute;
  FlowTable table(kHost, config);
  table.process(pkt(0, out_udp()));
  table.advance_to(3 * kMicrosPerMinute);
  table.process(pkt(3 * kMicrosPerMinute + 1, out_udp()));
  EXPECT_EQ(starts(table.drain_events()).size(), 2u);
}

TEST(FlowTable, InboundConnectionIsNotMarkedLocal) {
  FlowTable table(kHost);
  const FiveTuple inbound{kServer, kHost, 40000, 445, Protocol::Tcp};
  table.process(pkt(0, inbound, TcpFlags::Syn));
  const auto events = table.drain_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_FALSE(events[0].initiated_by_monitored_host);
}

TEST(FlowTable, FlushEndsEverything) {
  FlowTable table(kHost);
  table.process(pkt(0, out_tcp(50000), TcpFlags::Syn));
  table.process(pkt(10, out_udp(50001)));
  table.flush(1000);
  const auto events = table.drain_events();
  std::size_t ends = 0;
  for (const auto& e : events) {
    if (e.kind == FlowEventKind::End) {
      ++ends;
      EXPECT_EQ(e.end_reason, FlowEndReason::Flush);
    }
  }
  EXPECT_EQ(ends, 2u);
  EXPECT_EQ(table.active_flows(), 0u);
  // Flushed flows never idled out; they are accounted in their own counter.
  EXPECT_EQ(table.stats().flows_ended_flush, 2u);
  EXPECT_EQ(table.stats().flows_ended_timeout, 0u);
}

TEST(FlowTable, FlushDoesNotAbsorbIdleTimeouts) {
  FlowTableConfig config;
  config.udp_idle_timeout = kMicrosPerMinute;
  FlowTable table(kHost, config);
  table.process(pkt(0, out_udp(50001)));
  table.advance_to(2 * kMicrosPerMinute);  // UDP flow idles out here
  table.process(pkt(2 * kMicrosPerMinute, out_tcp(50000), TcpFlags::Syn));
  table.flush(2 * kMicrosPerMinute + 1);  // only the live TCP flow remains
  EXPECT_EQ(table.stats().flows_ended_timeout, 1u);
  EXPECT_EQ(table.stats().flows_ended_flush, 1u);
}

TEST(FlowTable, RejectsForeignPackets) {
  FlowTable table(kHost);
  const FiveTuple foreign{Ipv4Address::parse("1.1.1.1"), Ipv4Address::parse("2.2.2.2"),
                          1, 2, Protocol::Tcp};
  EXPECT_THROW(table.process(pkt(0, foreign, TcpFlags::Syn)), PreconditionError);
}

TEST(FlowTable, RejectsTimeTravel) {
  FlowTable table(kHost);
  table.process(pkt(100, out_tcp(), TcpFlags::Syn));
  EXPECT_THROW(table.process(pkt(50, out_tcp(50001), TcpFlags::Syn)), PreconditionError);
  EXPECT_THROW(table.advance_to(10), PreconditionError);
}

TEST(FlowTable, StatsCountPackets) {
  FlowTable table(kHost);
  const FiveTuple t = out_tcp();
  table.process(pkt(0, t, TcpFlags::Syn));
  table.process(pkt(100, t.reversed(), TcpFlags::Syn | TcpFlags::Ack));
  table.process(pkt(200, t, TcpFlags::Ack));
  EXPECT_EQ(table.stats().packets_processed, 3u);
  EXPECT_EQ(table.stats().flows_created, 1u);
}

TEST(FlowTable, ManyConcurrentFlows) {
  FlowTable table(kHost);
  for (std::uint16_t i = 0; i < 1000; ++i) {
    table.process(pkt(i, out_tcp(static_cast<std::uint16_t>(40000 + i)), TcpFlags::Syn));
  }
  EXPECT_EQ(table.active_flows(), 1000u);
  EXPECT_EQ(starts(table.drain_events()).size(), 1000u);
}

// Regression for the seed's sweep hazard: expired flows were emitted in hash
// iteration order, which depends on insertion history. Timeout End events
// must come out in (expiry deadline, tuple) order no matter how the flows
// went in.
TEST(FlowTable, SweepOrderIndependentOfInsertionOrder) {
  std::vector<std::uint16_t> ports;
  for (std::uint16_t i = 0; i < 64; ++i) ports.push_back(static_cast<std::uint16_t>(50000 + i));

  std::vector<FlowEvent> baseline;
  for (int perm = 0; perm < 8; ++perm) {
    FlowTableConfig config;
    config.udp_idle_timeout = kMicrosPerMinute;
    FlowTable table(kHost, config);
    // All flows at t=0 (identical deadlines), inserted in a rotated order.
    for (std::size_t i = 0; i < ports.size(); ++i) {
      const std::uint16_t port = ports[(i + static_cast<std::size_t>(perm) * 11) % ports.size()];
      table.process(pkt(0, out_udp(port)));
    }
    (void)table.drain_events();  // discard Starts (insertion-ordered by design)
    table.advance_to(2 * kMicrosPerMinute);
    const std::vector<FlowEvent> ends = table.drain_events();
    ASSERT_EQ(ends.size(), ports.size());
    for (std::size_t i = 1; i < ends.size(); ++i) {
      ASSERT_TRUE(ends[i - 1].tuple < ends[i].tuple) << "permutation " << perm;
    }
    if (perm == 0) {
      baseline = ends;
    } else {
      ASSERT_EQ(ends, baseline) << "permutation " << perm;
    }
  }
}

TEST(FlowTable, ExpectedFlowsHintPreSizesArena) {
  FlowTableConfig config;
  config.expected_flows = 4096;
  FlowTable table(kHost, config);
  const std::size_t capacity = table.slot_capacity();
  EXPECT_GE(capacity, 4096u);  // fits the hint below the max load factor

  // Filling up to the hint must never regrow the arena.
  std::uint32_t created = 0;
  for (std::uint16_t sport = 2000; created < 4096; ++sport) {
    for (std::uint16_t dport = 1; dport <= 64 && created < 4096; ++dport) {
      table.process(pkt(created, out_tcp(sport, dport), TcpFlags::Syn));
      ++created;
    }
  }
  EXPECT_EQ(table.active_flows(), 4096u);
  EXPECT_EQ(table.slot_capacity(), capacity);
}

TEST(FlowTable, MaxLiveFlowsTracksPeakOccupancy) {
  FlowTableConfig config;
  config.udp_idle_timeout = kMicrosPerMinute;
  FlowTable table(kHost, config);
  for (std::uint16_t i = 0; i < 10; ++i) table.process(pkt(0, out_udp(static_cast<std::uint16_t>(50000 + i))));
  EXPECT_EQ(table.stats().max_live_flows, 10u);
  table.advance_to(2 * kMicrosPerMinute);  // all idle out
  EXPECT_EQ(table.active_flows(), 0u);
  for (std::uint16_t i = 0; i < 3; ++i) {
    table.process(pkt(2 * kMicrosPerMinute, out_udp(static_cast<std::uint16_t>(51000 + i))));
  }
  // Peak stays at the high-water mark, not the current occupancy.
  EXPECT_EQ(table.stats().max_live_flows, 10u);
}

}  // namespace
}  // namespace monohids::net
