// Differential tests: the open-addressing FlowTable must be byte-identical
// to ReferenceFlowTable (the original std::unordered_map implementation) on
// arbitrary valid traffic — same FlowEvent stream, same FlowTableStats.
// Randomized traces cover flow creation, FIN/RST teardown, idle-timeout
// sweeps, far time jumps, flush, and same-tuple flow reincarnation.
#include <gtest/gtest.h>

#include <vector>

#include "net/flow_table.hpp"
#include "net/flow_table_ref.hpp"
#include "stats/sampling.hpp"
#include "util/rng.hpp"

namespace monohids::net {
namespace {

const Ipv4Address kHost = Ipv4Address::parse("10.0.0.1");

/// Small peer pool so tuples repeat and flows reincarnate after timeout.
PacketRecord random_packet(util::Xoshiro256& rng, util::Timestamp at) {
  PacketRecord p;
  p.timestamp = at;
  const bool outbound = rng.uniform01() < 0.7;
  const Ipv4Address peer(static_cast<std::uint32_t>(
      (93u << 24) + stats::sample_uniform_int(rng, 0, 40)));
  const auto sport = static_cast<std::uint16_t>(stats::sample_uniform_int(rng, 1024, 1090));
  const auto dport = static_cast<std::uint16_t>(stats::sample_uniform_int(rng, 1, 8));
  p.tuple = outbound ? FiveTuple{kHost, peer, sport, dport, Protocol::Tcp}
                     : FiveTuple{peer, kHost, sport, dport, Protocol::Tcp};
  const double proto = rng.uniform01();
  if (proto < 0.25) p.tuple.protocol = Protocol::Udp;
  if (proto < 0.05) p.tuple.protocol = Protocol::Icmp;
  if (p.tuple.protocol == Protocol::Tcp) {
    const double roll = rng.uniform01();
    if (roll < 0.35) {
      p.tcp_flags = TcpFlags::Syn;
    } else if (roll < 0.45) {
      p.tcp_flags = TcpFlags::Syn | TcpFlags::Ack;
    } else if (roll < 0.65) {
      p.tcp_flags = TcpFlags::Ack;
    } else if (roll < 0.8) {
      p.tcp_flags = TcpFlags::Fin | TcpFlags::Ack;
    } else if (roll < 0.88) {
      p.tcp_flags = TcpFlags::Rst;
    } else {
      p.tcp_flags = TcpFlags::Ack | TcpFlags::Psh;
    }
  }
  p.payload_bytes = static_cast<std::uint16_t>(stats::sample_uniform_int(rng, 0, 1460));
  return p;
}

std::vector<PacketRecord> random_trace(std::uint64_t seed, int packets) {
  util::Xoshiro256 rng(seed);
  std::vector<PacketRecord> trace;
  trace.reserve(static_cast<std::size_t>(packets));
  util::Timestamp now = 0;
  for (int i = 0; i < packets; ++i) {
    now += stats::sample_uniform_int(rng, 0, 3 * util::kMicrosPerSecond);
    // Occasional far jumps so idle timeouts and sweeps engage.
    if (rng.uniform01() < 0.01) now += 7 * util::kMicrosPerMinute;
    trace.push_back(random_packet(rng, now));
  }
  return trace;
}

/// Runs one trace through both implementations and asserts identical event
/// streams and stats, draining at every packet (the strictest comparison:
/// emission order inside each packet's sweep must match too).
void expect_identical(const std::vector<PacketRecord>& trace, const FlowTableConfig& config) {
  FlowTable table(kHost, config);
  ReferenceFlowTable reference(kHost, config);

  for (const PacketRecord& p : trace) {
    table.process(p);
    reference.process(p);
    const std::vector<FlowEvent> expected = reference.drain_events();
    const auto got = table.pending_events();
    ASSERT_EQ(got.size(), expected.size()) << "at packet ts=" << p.timestamp;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(got[i], expected[i]) << "event " << i << " at packet ts=" << p.timestamp;
    }
    table.clear_events();
    ASSERT_EQ(table.active_flows(), reference.active_flows());
  }

  const util::Timestamp eof = trace.empty() ? 1 : trace.back().timestamp + 1;
  table.flush(eof);
  reference.flush(eof);
  ASSERT_EQ(table.drain_events(), reference.drain_events());
  EXPECT_EQ(table.stats(), reference.stats());
  EXPECT_EQ(table.active_flows(), 0u);
}

class FlowTableDifferential : public ::testing::TestWithParam<std::uint64_t> {};

// 250 seeds x 4 configurations = 1000 random differential traces.
TEST_P(FlowTableDifferential, MatchesReferenceOnRandomTraffic) {
  const std::uint64_t seed = GetParam();
  const std::vector<PacketRecord> trace =
      random_trace(seed, /*packets=*/seed % 7 == 0 ? 2500 : 400);

  // Default config.
  expect_identical(trace, FlowTableConfig{});

  // Short timeouts + frequent sweeps: lots of expiry/reincarnation churn.
  FlowTableConfig churn;
  churn.tcp_idle_timeout = 20 * util::kMicrosPerSecond;
  churn.udp_idle_timeout = 5 * util::kMicrosPerSecond;
  churn.sweep_interval = util::kMicrosPerSecond;
  expect_identical(trace, churn);

  // Pre-sized arena: hint far above and far below the real flow count.
  FlowTableConfig hinted = churn;
  hinted.expected_flows = 4096;
  expect_identical(trace, hinted);
  hinted.expected_flows = 2;  // forces mid-trace regrows
  expect_identical(trace, hinted);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowTableDifferential,
                         ::testing::Range<std::uint64_t>(1, 251));

// The arena can outgrow the dense-scan sweep limit mid-trace (no pre-size
// hint), which flips expiry to the timing wheel and arms every live flow at
// rehash time. The randomized traces above never reach that occupancy, so
// this drives it explicitly: thousands of concurrent flows, stale-entry
// rearms, a sweep gap longer than the wheel span, and wheel-driven timeouts
// must all match the reference byte for byte.
TEST(FlowTableDifferential, ScanToWheelTransitionMatchesReference) {
  FlowTableConfig config;
  config.tcp_idle_timeout = 20 * util::kMicrosPerSecond;
  config.udp_idle_timeout = 5 * util::kMicrosPerSecond;
  config.sweep_interval = util::kMicrosPerSecond;

  std::vector<PacketRecord> trace;
  util::Timestamp now = 0;
  const auto tuple_of = [](int i) {
    const Ipv4Address peer(static_cast<std::uint32_t>((93u << 24) + (i & 0xff)));
    return FiveTuple{kHost, peer, static_cast<std::uint16_t>(1024 + i), 80, Protocol::Tcp};
  };
  // 6000 distinct flows in ~18 s (inside the idle timeout): live occupancy
  // crosses the scan-sweep slot limit with the default tiny initial arena.
  for (int i = 0; i < 6000; ++i) {
    PacketRecord p;
    p.timestamp = now;
    p.tuple = tuple_of(i);
    p.tcp_flags = TcpFlags::Syn;
    trace.push_back(p);
    now += 3000;
  }
  // Touch a third of the flows: their armed wheel entries go stale and must
  // rearm when their original bucket is swept.
  for (int i = 0; i < 6000; i += 3) {
    PacketRecord p;
    p.timestamp = now;
    p.tuple = tuple_of(i);
    p.tcp_flags = TcpFlags::Ack;
    trace.push_back(p);
    now += 500;
  }
  // Keepalives on one fresh tuple: each triggers a sweep, draining idle
  // flows through the wheel; the final far jump leaves a gap longer than
  // the wheel span, exercising the one-pass whole-ring resolve.
  for (int i = 0; i < 60; ++i) {
    now += util::kMicrosPerSecond;
    PacketRecord p;
    p.timestamp = now;
    p.tuple = FiveTuple{kHost, Ipv4Address::parse("94.0.0.1"), 60000, 53, Protocol::Udp};
    trace.push_back(p);
  }
  {
    now += 5 * util::kMicrosPerMinute;
    PacketRecord p;
    p.timestamp = now;
    p.tuple = FiveTuple{kHost, Ipv4Address::parse("94.0.0.2"), 60001, 53, Protocol::Udp};
    trace.push_back(p);
  }
  expect_identical(trace, config);
}

// Advancing the clock without packets must expire the same flows in the
// same deterministic order in both implementations.
TEST(FlowTableDifferential, AdvanceToMatchesReference) {
  const std::vector<PacketRecord> trace = random_trace(424242, 600);
  FlowTableConfig config;
  config.sweep_interval = util::kMicrosPerSecond;

  FlowTable table(kHost, config);
  ReferenceFlowTable reference(kHost, config);
  for (const PacketRecord& p : trace) {
    table.process(p);
    reference.process(p);
  }
  // Step time forward in jumps so every flow idles out via advance_to.
  util::Timestamp now = trace.back().timestamp;
  for (int step = 0; step < 20; ++step) {
    now += 45 * util::kMicrosPerSecond;
    table.advance_to(now);
    reference.advance_to(now);
    ASSERT_EQ(table.drain_events(), reference.drain_events()) << "step " << step;
  }
  EXPECT_EQ(table.stats(), reference.stats());
  EXPECT_EQ(table.active_flows(), reference.active_flows());
}

}  // namespace
}  // namespace monohids::net
