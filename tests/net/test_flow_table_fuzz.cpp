// Randomized robustness tests: the flow table must maintain its invariants
// under arbitrary (valid) packet soup — random tuples, flags, orderings of
// flows, interleavings and timeouts.
#include <gtest/gtest.h>

#include <unordered_set>

#include "net/flow_table.hpp"
#include "stats/sampling.hpp"
#include "util/rng.hpp"

namespace monohids::net {
namespace {

const Ipv4Address kHost = Ipv4Address::parse("10.0.0.1");

PacketRecord random_packet(util::Xoshiro256& rng, util::Timestamp at) {
  PacketRecord p;
  p.timestamp = at;
  const bool outbound = rng.uniform01() < 0.7;
  const Ipv4Address peer(static_cast<std::uint32_t>(
      stats::sample_uniform_int(rng, 1u << 24, (200u << 24))));
  const auto sport = static_cast<std::uint16_t>(stats::sample_uniform_int(rng, 1024, 65535));
  const auto dport = static_cast<std::uint16_t>(stats::sample_uniform_int(rng, 1, 65535));
  p.tuple = outbound ? FiveTuple{kHost, peer, sport, dport, Protocol::Tcp}
                     : FiveTuple{peer, kHost, sport, dport, Protocol::Tcp};
  if (rng.uniform01() < 0.3) p.tuple.protocol = Protocol::Udp;
  if (p.tuple.protocol == Protocol::Tcp) {
    const double roll = rng.uniform01();
    if (roll < 0.3) {
      p.tcp_flags = TcpFlags::Syn;
    } else if (roll < 0.4) {
      p.tcp_flags = TcpFlags::Syn | TcpFlags::Ack;
    } else if (roll < 0.6) {
      p.tcp_flags = TcpFlags::Ack;
    } else if (roll < 0.75) {
      p.tcp_flags = TcpFlags::Fin | TcpFlags::Ack;
    } else if (roll < 0.85) {
      p.tcp_flags = TcpFlags::Rst;
    } else {
      p.tcp_flags = TcpFlags::Ack | TcpFlags::Psh;
    }
  }
  return p;
}

class FlowTableFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlowTableFuzz, InvariantsHoldUnderRandomTraffic) {
  util::Xoshiro256 rng(GetParam());
  FlowTable table(kHost);

  util::Timestamp now = 0;
  std::uint64_t starts = 0, ends = 0;
  const int packets = 20000;
  for (int i = 0; i < packets; ++i) {
    now += stats::sample_uniform_int(rng, 0, 2 * util::kMicrosPerSecond);
    // occasionally jump far ahead so timeouts kick in
    if (rng.uniform01() < 0.002) now += 10 * util::kMicrosPerMinute;
    table.process(random_packet(rng, now));
    for (const auto& e : table.drain_events()) {
      if (e.kind == FlowEventKind::Start) ++starts;
      if (e.kind == FlowEventKind::End) ++ends;
      // Every event involves the monitored host and is time-ordered.
      ASSERT_TRUE(e.tuple.src_ip == kHost || e.tuple.dst_ip == kHost);
      ASSERT_LE(e.timestamp, now);
    }
    // Live flows can never exceed created-minus-ended.
    ASSERT_EQ(table.active_flows(), starts - ends);
  }

  table.flush(now + 1);
  for (const auto& e : table.drain_events()) {
    if (e.kind == FlowEventKind::End) ++ends;
  }
  // Conservation: every started flow eventually ends, exactly once.
  EXPECT_EQ(starts, ends);
  EXPECT_EQ(table.active_flows(), 0u);
  EXPECT_EQ(table.stats().flows_created, starts);
  EXPECT_EQ(table.stats().flows_ended_fin + table.stats().flows_ended_rst +
                table.stats().flows_ended_timeout + table.stats().flows_ended_flush,
            ends);
  // The flush only accounts for flows still live at EOF; it must not absorb
  // ends that already happened organically.
  EXPECT_EQ(table.stats().flows_ended_flush,
            starts - table.stats().flows_ended_fin - table.stats().flows_ended_rst -
                table.stats().flows_ended_timeout);
  EXPECT_EQ(table.stats().packets_processed, static_cast<std::uint64_t>(packets));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowTableFuzz, ::testing::Values(1, 2, 3, 4, 5));

TEST(FlowTableFuzz, DrainOrderIsMonotone) {
  util::Xoshiro256 rng(99);
  FlowTable table(kHost);
  util::Timestamp now = 0;
  std::vector<FlowEvent> all;
  for (int i = 0; i < 5000; ++i) {
    now += stats::sample_uniform_int(rng, 0, util::kMicrosPerSecond);
    table.process(random_packet(rng, now));
    for (const auto& e : table.drain_events()) all.push_back(e);
  }
  for (std::size_t i = 1; i < all.size(); ++i) {
    ASSERT_LE(all[i - 1].timestamp, all[i].timestamp);
  }
}

}  // namespace
}  // namespace monohids::net
