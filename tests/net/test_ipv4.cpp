#include "net/ipv4.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "util/error.hpp"

namespace monohids::net {
namespace {

TEST(Ipv4Address, OctetConstructionAndFormatting) {
  const auto a = Ipv4Address::from_octets(10, 1, 2, 3);
  EXPECT_EQ(a.to_string(), "10.1.2.3");
  EXPECT_EQ(a.octet(0), 10);
  EXPECT_EQ(a.octet(3), 3);
  EXPECT_EQ(a.value(), 0x0A010203u);
}

TEST(Ipv4Address, ParseRoundTrip) {
  for (const char* text : {"0.0.0.0", "255.255.255.255", "192.168.1.1", "8.8.8.8"}) {
    EXPECT_EQ(Ipv4Address::parse(text).to_string(), text);
  }
}

TEST(Ipv4Address, ParseRejectsMalformedInput) {
  for (const char* text : {"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "1.2.3.x", "a.b.c.d",
                           "1..2.3", "1.2.3.4 "}) {
    EXPECT_THROW((void)Ipv4Address::parse(text), InputError) << text;
  }
}

TEST(Ipv4Address, OrderingFollowsNumericValue) {
  EXPECT_LT(Ipv4Address::parse("1.0.0.0"), Ipv4Address::parse("2.0.0.0"));
  EXPECT_LT(Ipv4Address::parse("10.0.0.1"), Ipv4Address::parse("10.0.1.0"));
  EXPECT_EQ(Ipv4Address::parse("5.5.5.5"), Ipv4Address::from_octets(5, 5, 5, 5));
}

TEST(Ipv4Address, HashableInUnorderedSet) {
  std::unordered_set<Ipv4Address> set;
  set.insert(Ipv4Address::parse("10.0.0.1"));
  set.insert(Ipv4Address::parse("10.0.0.1"));
  set.insert(Ipv4Address::parse("10.0.0.2"));
  EXPECT_EQ(set.size(), 2u);
}

TEST(Ipv4Prefix, MasksHostBits) {
  const Ipv4Prefix p(Ipv4Address::parse("10.1.2.3"), 16);
  EXPECT_EQ(p.base().to_string(), "10.1.0.0");
  EXPECT_EQ(p.to_string(), "10.1.0.0/16");
}

TEST(Ipv4Prefix, Containment) {
  const auto p = Ipv4Prefix::parse("192.168.0.0/24");
  EXPECT_TRUE(p.contains(Ipv4Address::parse("192.168.0.255")));
  EXPECT_FALSE(p.contains(Ipv4Address::parse("192.168.1.0")));
}

TEST(Ipv4Prefix, SizeAndIndexing) {
  const auto p = Ipv4Prefix::parse("10.0.0.0/30");
  EXPECT_EQ(p.size(), 4u);
  EXPECT_EQ(p.address_at(0).to_string(), "10.0.0.0");
  EXPECT_EQ(p.address_at(3).to_string(), "10.0.0.3");
  EXPECT_THROW((void)p.address_at(4), PreconditionError);
}

TEST(Ipv4Prefix, SlashZeroCoversEverything) {
  const auto p = Ipv4Prefix::parse("0.0.0.0/0");
  EXPECT_EQ(p.size(), 1ull << 32);
  EXPECT_TRUE(p.contains(Ipv4Address::parse("255.255.255.255")));
}

TEST(Ipv4Prefix, SlashThirtyTwoIsOneHost) {
  const auto p = Ipv4Prefix::parse("1.2.3.4/32");
  EXPECT_EQ(p.size(), 1u);
  EXPECT_TRUE(p.contains(Ipv4Address::parse("1.2.3.4")));
  EXPECT_FALSE(p.contains(Ipv4Address::parse("1.2.3.5")));
}

TEST(Ipv4Prefix, ParseRejectsMalformedInput) {
  for (const char* text : {"10.0.0.0", "10.0.0.0/33", "10.0.0.0/-1", "10.0.0.0/x"}) {
    EXPECT_THROW((void)Ipv4Prefix::parse(text), InputError) << text;
  }
}

}  // namespace
}  // namespace monohids::net
