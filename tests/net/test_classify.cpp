#include "net/classify.hpp"

#include <gtest/gtest.h>

namespace monohids::net {
namespace {

FiveTuple make(Protocol proto, std::uint16_t dst_port) {
  return {Ipv4Address::parse("10.0.0.1"), Ipv4Address::parse("93.0.0.1"), 50000, dst_port,
          proto};
}

TEST(Classify, DnsOverUdpAndTcp) {
  EXPECT_EQ(classify(make(Protocol::Udp, ports::kDns)), Service::Dns);
  EXPECT_EQ(classify(make(Protocol::Tcp, ports::kDns)), Service::Dns);
}

TEST(Classify, WebPorts) {
  EXPECT_EQ(classify(make(Protocol::Tcp, ports::kHttp)), Service::Http);
  EXPECT_EQ(classify(make(Protocol::Tcp, ports::kHttps)), Service::Https);
}

TEST(Classify, Smtp) {
  EXPECT_EQ(classify(make(Protocol::Tcp, ports::kSmtp)), Service::Smtp);
}

TEST(Classify, HttpIsTcpOnly) {
  // UDP to port 80 is not HTTP in this model.
  EXPECT_EQ(classify(make(Protocol::Udp, ports::kHttp)), Service::OtherUdp);
}

TEST(Classify, FallbackBuckets) {
  EXPECT_EQ(classify(make(Protocol::Tcp, 5222)), Service::OtherTcp);
  EXPECT_EQ(classify(make(Protocol::Udp, 12345)), Service::OtherUdp);
  EXPECT_EQ(classify(make(Protocol::Icmp, 0)), Service::OtherIcmp);
}

TEST(Classify, SourcePortDoesNotMatter) {
  // Classification keys on the destination port: a reply from port 80 to an
  // ephemeral port is not itself an HTTP connection.
  FiveTuple reply{Ipv4Address::parse("93.0.0.1"), Ipv4Address::parse("10.0.0.1"), 80, 50000,
                  Protocol::Tcp};
  EXPECT_EQ(classify(reply), Service::OtherTcp);
}

TEST(Classify, ServiceNames) {
  EXPECT_EQ(to_string(Service::Dns), "dns");
  EXPECT_EQ(to_string(Service::Http), "http");
  EXPECT_EQ(to_string(Service::OtherUdp), "other-udp");
}

}  // namespace
}  // namespace monohids::net
