#include "net/packet.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace monohids::net {
namespace {

FiveTuple tuple_a() {
  return {Ipv4Address::parse("10.0.0.1"), Ipv4Address::parse("93.0.0.1"), 50000, 80,
          Protocol::Tcp};
}

TEST(TcpFlags, BitwiseOrAndTest) {
  const TcpFlags flags = TcpFlags::Syn | TcpFlags::Ack;
  EXPECT_TRUE(has_flag(flags, TcpFlags::Syn));
  EXPECT_TRUE(has_flag(flags, TcpFlags::Ack));
  EXPECT_FALSE(has_flag(flags, TcpFlags::Fin));
  EXPECT_FALSE(has_flag(TcpFlags::None, TcpFlags::Syn));
}

TEST(FiveTuple, ReversedSwapsEndpoints) {
  const FiveTuple t = tuple_a();
  const FiveTuple r = t.reversed();
  EXPECT_EQ(r.src_ip, t.dst_ip);
  EXPECT_EQ(r.dst_ip, t.src_ip);
  EXPECT_EQ(r.src_port, t.dst_port);
  EXPECT_EQ(r.dst_port, t.src_port);
  EXPECT_EQ(r.protocol, t.protocol);
  EXPECT_EQ(r.reversed(), t);
}

TEST(FiveTuple, EqualityIsFieldwise) {
  FiveTuple a = tuple_a();
  FiveTuple b = tuple_a();
  EXPECT_EQ(a, b);
  b.dst_port = 443;
  EXPECT_NE(a, b);
}

TEST(FiveTuple, HashDistinguishesDirection) {
  const FiveTuple t = tuple_a();
  std::unordered_set<FiveTuple> set;
  set.insert(t);
  set.insert(t.reversed());
  set.insert(t);
  EXPECT_EQ(set.size(), 2u);
}

TEST(FiveTuple, HashSpreadsPorts) {
  std::unordered_set<std::size_t> hashes;
  FiveTuple t = tuple_a();
  std::hash<FiveTuple> h;
  for (std::uint16_t port = 1000; port < 2000; ++port) {
    t.src_port = port;
    hashes.insert(h(t));
  }
  EXPECT_GT(hashes.size(), 990u);  // near-zero collisions over 1000 keys
}

TEST(PacketRecord, OrderingByTimestampFirst) {
  PacketRecord early{100, tuple_a(), TcpFlags::Syn, 0};
  PacketRecord late{200, tuple_a(), TcpFlags::Syn, 0};
  EXPECT_LT(early, late);
}

TEST(Protocol, Names) {
  EXPECT_EQ(to_string(Protocol::Tcp), "tcp");
  EXPECT_EQ(to_string(Protocol::Udp), "udp");
  EXPECT_EQ(to_string(Protocol::Icmp), "icmp");
}

}  // namespace
}  // namespace monohids::net
