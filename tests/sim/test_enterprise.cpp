#include "sim/enterprise.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "hids/evaluator.hpp"
#include "trace/storm.hpp"
#include "util/error.hpp"

namespace monohids::sim {
namespace {

using features::FeatureKind;

const Scenario& small_scenario() {
  static const Scenario scenario = [] {
    ScenarioConfig config;
    config.set_users(30);
    config.set_weeks(2);
    config.set_seed(5);
    return build_scenario(config);
  }();
  return scenario;
}

FeatureAssignments full_diversity_assignments() {
  const hids::PercentileHeuristic p99(0.99);
  return assign_all_features(small_scenario(), 0, hids::FullDiversityGrouper{}, p99);
}

TEST(Enterprise, AssignAllFeaturesCoversEveryFeature) {
  const auto assignments = full_diversity_assignments();
  for (FeatureKind f : features::kAllFeatures) {
    EXPECT_EQ(assignments[features::index_of(f)].threshold_of_user.size(), 30u);
  }
}

TEST(Enterprise, ConsoleTotalsMatchAnalyticCounts) {
  // The operational path (HostHids -> batcher -> console) must agree with
  // the analytic path (exceedance over week distributions) exactly.
  const auto assignments = full_diversity_assignments();
  EnterpriseConfig config;
  config.week = 1;
  const auto result = run_enterprise_week(small_scenario(), assignments, config);

  std::uint64_t analytic = 0;
  for (FeatureKind f : features::kAllFeatures) {
    const auto test = hids::week_distributions(small_scenario().matrices, f, 1);
    for (std::uint32_t u = 0; u < 30; ++u) {
      const double t = assignments[features::index_of(f)].threshold_of_user[u];
      analytic += static_cast<std::uint64_t>(
          std::llround(test[u].exceedance(t) * static_cast<double>(test[u].size())));
    }
  }
  EXPECT_EQ(result.console.total_alerts(), analytic);
}

TEST(Enterprise, PerUserAccountingSumsToTotal) {
  const auto assignments = full_diversity_assignments();
  EnterpriseConfig config;
  config.week = 1;
  const auto result = run_enterprise_week(small_scenario(), assignments, config);
  std::uint64_t sum = 0;
  for (auto a : result.alerts_per_user) sum += a;
  EXPECT_EQ(sum, result.console.total_alerts());
  for (std::uint32_t u = 0; u < 30; ++u) {
    EXPECT_EQ(result.console.alerts_of_user(u), result.alerts_per_user[u]);
  }
}

TEST(Enterprise, AlertsLandInTheScannedWeek) {
  const auto assignments = full_diversity_assignments();
  EnterpriseConfig config;
  config.week = 1;
  const auto result = run_enterprise_week(small_scenario(), assignments, config);
  ASSERT_GT(result.console.total_alerts(), 0u);
  EXPECT_EQ(result.console.alerts_in_week(0), 0u);
  EXPECT_EQ(result.console.alerts_in_week(1), result.console.total_alerts());
}

TEST(Enterprise, AttackOverlayRaisesAlertVolume) {
  const auto assignments = full_diversity_assignments();
  EnterpriseConfig benign;
  benign.week = 1;
  const auto base = run_enterprise_week(small_scenario(), assignments, benign);

  EnterpriseConfig attacked = benign;
  trace::StormConfig storm;
  storm.grid = small_scenario().config.generator.grid;
  attacked.attack = trace::generate_storm_features(storm);
  const auto with_attack = run_enterprise_week(small_scenario(), assignments, attacked);

  EXPECT_GT(with_attack.console.total_alerts(), 2 * base.console.total_alerts());
}

TEST(Enterprise, BatchesAreCounted) {
  const auto assignments = full_diversity_assignments();
  EnterpriseConfig config;
  config.week = 1;
  const auto result = run_enterprise_week(small_scenario(), assignments, config);
  EXPECT_GT(result.total_batches, 0u);
  EXPECT_EQ(result.total_batches, result.console.total_batches());
  // Hourly batching bounds batches per host by hours per week.
  EXPECT_LE(result.total_batches, 30u * 168u);
}

TEST(Enterprise, WeekOutsideHorizonIsAnError) {
  const auto assignments = full_diversity_assignments();
  EnterpriseConfig config;
  config.week = 2;
  EXPECT_THROW((void)run_enterprise_week(small_scenario(), assignments, config),
               PreconditionError);
}

TEST(Enterprise, HomogeneousFloodsConsoleFromFewHosts) {
  const hids::PercentileHeuristic p99(0.99);
  const auto homog =
      assign_all_features(small_scenario(), 0, hids::HomogeneousGrouper{}, p99);
  EnterpriseConfig config;
  config.week = 1;
  const auto result = run_enterprise_week(small_scenario(), homog, config);
  if (result.console.total_alerts() == 0) GTEST_SKIP() << "no alarms in tiny scenario";
  // Most of the console volume comes from a handful of heavy hosts.
  const auto noisy = result.console.noisiest_users(3);
  std::uint64_t top3 = 0;
  for (const auto& [user, count] : noisy) top3 += count;
  EXPECT_GT(top3 * 2, result.console.total_alerts());
}

}  // namespace
}  // namespace monohids::sim
