// Shape tests for the experiment runners on a reduced population (fast);
// the full-scale paper claims live in tests/integration.
#include "sim/experiments.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace monohids::sim {
namespace {

using features::FeatureKind;

const Scenario& shared_scenario() {
  static const Scenario scenario = [] {
    ScenarioConfig config;
    config.set_users(80);
    config.set_weeks(4);
    config.set_seed(42);
    return build_scenario(config);
  }();
  return scenario;
}

TEST(Experiments, CanonicalGroupersInPresentationOrder) {
  const auto groupers = canonical_groupers();
  ASSERT_EQ(groupers.size(), 3u);
  EXPECT_EQ(groupers[0]->name(), "homogeneous");
  EXPECT_EQ(groupers[1]->name(), "full-diversity");
  EXPECT_EQ(groupers[2]->name(), "8-partial");
}

TEST(Experiments, CanonicalRoundsMatchPaperMethodology) {
  const auto rounds = canonical_rounds();
  ASSERT_EQ(rounds.size(), 2u);
  EXPECT_EQ(rounds[0].train_week, 0u);
  EXPECT_EQ(rounds[0].test_week, 1u);
  EXPECT_EQ(rounds[1].train_week, 2u);
  EXPECT_EQ(rounds[1].test_week, 3u);
}

TEST(Experiments, TailDiversitySortedAndSpread) {
  const auto result = tail_diversity(shared_scenario(), FeatureKind::TcpConnections, 0);
  ASSERT_EQ(result.p99_sorted.size(), 80u);
  EXPECT_TRUE(std::is_sorted(result.p99_sorted.begin(), result.p99_sorted.end()));
  // 99.9th percentile dominates the 99th for every user.
  for (std::size_t i = 0; i < result.p99_sorted.size(); ++i) {
    EXPECT_GE(result.p999_sorted[i], result.p99_sorted[i]);
  }
  EXPECT_GT(result.spread_decades, 1.0);
}

TEST(Experiments, FeatureScatterHasPerUserPoints) {
  const auto result = feature_scatter(shared_scenario(), FeatureKind::TcpConnections,
                                      FeatureKind::UdpConnections, 0);
  EXPECT_EQ(result.x.size(), 80u);
  EXPECT_EQ(result.y.size(), 80u);
  for (double v : result.x) EXPECT_GE(v, 0.0);
}

TEST(Experiments, BestUsersDifferPerFeature) {
  const auto tcp = best_users_experiment(shared_scenario(), FeatureKind::TcpConnections, 0);
  const auto udp = best_users_experiment(shared_scenario(), FeatureKind::UdpConnections, 0);
  ASSERT_EQ(tcp.full_diversity.size(), 10u);
  // Table 2's observation: the lists barely overlap across features.
  EXPECT_LT(hids::overlap_count(tcp.full_diversity, udp.full_diversity), 8u);
}

TEST(Experiments, AttackModelBoundedByPopulationMaximum) {
  const auto model = make_attack_model(shared_scenario(), FeatureKind::TcpConnections, 0);
  const auto train =
      hids::week_distributions(shared_scenario().matrices, FeatureKind::TcpConnections, 0);
  const double max_seen = hids::max_observed_value(train);
  EXPECT_NEAR(model.sizes.back(), max_seen, max_seen * 1e-9);
  EXPECT_GE(model.sizes.front(), 1.0);
}

TEST(Experiments, UtilityBoxplotsCoverAllPolicies) {
  const auto result = utility_boxplots(shared_scenario(), FeatureKind::TcpConnections, 0.4);
  ASSERT_EQ(result.policy_names.size(), 3u);
  for (const auto& utilities : result.utilities) {
    ASSERT_EQ(utilities.size(), 80u);
    for (double u : utilities) {
      EXPECT_GE(u, 0.0);
      EXPECT_LE(u, 1.0);
    }
  }
}

TEST(Experiments, WeightSweepDivergesWithW) {
  const auto result = weight_sweep(shared_scenario(), FeatureKind::TcpConnections,
                                   {0.1, 0.5, 0.9});
  ASSERT_EQ(result.mean_utility.size(), 3u);
  const auto& homog = result.mean_utility[0];
  const auto& full = result.mean_utility[1];
  // The gap (full - homog) grows with w (Fig. 3b).
  EXPECT_GT(full[2] - homog[2], full[0] - homog[0]);
}

TEST(Experiments, AlarmTableShapes) {
  const auto result = alarm_rates(shared_scenario(), FeatureKind::TcpConnections);
  ASSERT_EQ(result.heuristic_names.size(), 2u);
  ASSERT_EQ(result.alarms.size(), 2u);
  ASSERT_EQ(result.alarms[0].size(), 3u);
  for (const auto& row : result.alarms) {
    for (double alarms : row) EXPECT_GE(alarms, 0.0);
  }
}

TEST(Experiments, NaiveCurvesMonotoneAndOrdered) {
  const auto result = naive_attack_curves(shared_scenario(), FeatureKind::TcpConnections, 16);
  ASSERT_EQ(result.detection.size(), 3u);
  for (const auto& curve : result.detection) {
    for (std::size_t i = 1; i < curve.size(); ++i) {
      EXPECT_GE(curve[i], curve[i - 1] - 1e-9);
    }
  }
  // Mid-sweep, diversity beats the monoculture on stealthy attacks.
  const std::size_t mid = result.sizes.size() / 2;
  EXPECT_GT(result.detection[1][mid], result.detection[0][mid]);
}

TEST(Experiments, ResourcefulAttackOrdersPolicies) {
  const auto result = resourceful_attack(shared_scenario(), FeatureKind::TcpConnections);
  ASSERT_EQ(result.hidden_volumes.size(), 3u);
  auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  // The monoculture leaves the mimicry attacker far more room.
  EXPECT_GT(median(result.hidden_volumes[0]), 2.0 * median(result.hidden_volumes[1]));
}

TEST(Experiments, StormReplayProducesPerUserOutcomes) {
  const auto result = storm_replay(shared_scenario());
  ASSERT_EQ(result.outcomes.size(), 3u);
  for (const auto& policy : result.outcomes) {
    ASSERT_EQ(policy.size(), 80u);
    for (const auto& o : policy) {
      EXPECT_GE(o.fp_rate, 0.0);
      EXPECT_LE(o.fp_rate, 1.0);
      EXPECT_GE(o.detection_rate, 0.0);
      EXPECT_LE(o.detection_rate, 1.0);
    }
  }
}

TEST(Experiments, GroupingAblationCoversAlternatives) {
  const auto result = grouping_ablation(shared_scenario(), FeatureKind::TcpConnections);
  ASSERT_EQ(result.grouper_names.size(), 5u);
  EXPECT_EQ(result.silhouette_k.size(), 4u);
  // The paper's §5 finding: silhouettes stay low — no natural clusters.
  for (double s : result.silhouettes) EXPECT_LT(s, 0.75);
}

TEST(Experiments, ThresholdDriftShowsInstability) {
  const auto result = threshold_drift(shared_scenario(), FeatureKind::TcpConnections);
  ASSERT_EQ(result.realized_fp.size(), 80u);
  // §6.1: thresholds are NOT stable week to week — many users land away
  // from the 1% target.
  EXPECT_LT(result.fraction_within_2x, 0.95);
  EXPECT_GT(result.median_realized_fp, 0.0);
  EXPECT_LT(result.median_realized_fp, 0.05);
}

TEST(Experiments, CollaborationBeatsSoloDetection) {
  hids::CollaborativeConfig config;
  config.sentinel_count = 8;
  config.quorum = 2;
  const auto curve =
      collaboration_experiment(shared_scenario(), FeatureKind::TcpConnections, config, 12);
  double solo_auc = 0, collab_auc = 0;
  for (std::size_t i = 0; i < curve.sizes.size(); ++i) {
    solo_auc += curve.solo[i];
    collab_auc += curve.collaborative[i];
  }
  EXPECT_GT(collab_auc, solo_auc);
}

}  // namespace
}  // namespace monohids::sim
