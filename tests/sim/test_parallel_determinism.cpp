// Determinism guarantee of the parallel engine: every `threads` value must
// produce bit-identical results, because each user/grid-point computes from
// its own derived RNG stream and writes only its own output slot. These
// tests pin that contract for scenario generation and policy evaluation —
// the two layers that fan out over the thread pool.
#include <gtest/gtest.h>

#include <algorithm>

#include "hids/evaluator.hpp"
#include "hids/attacker.hpp"
#include "sim/analysis_cache.hpp"
#include "sim/scenario.hpp"

namespace monohids::sim {
namespace {

using features::FeatureKind;

ScenarioConfig tiny(unsigned threads) {
  ScenarioConfig config;
  config.set_users(16);
  config.set_weeks(2);
  config.set_seed(404);
  config.threads = threads;
  return config;
}

TEST(ParallelDeterminism, ScenarioIsIdenticalForAnyThreadCount) {
  const auto serial = build_scenario(tiny(1));
  for (unsigned threads : {2u, 4u}) {
    const auto parallel = build_scenario(tiny(threads));
    ASSERT_EQ(parallel.user_count(), serial.user_count());
    for (std::uint32_t u = 0; u < serial.user_count(); ++u) {
      for (FeatureKind f : features::kAllFeatures) {
        const auto va = serial.matrices[u].of(f).values();
        const auto vb = parallel.matrices[u].of(f).values();
        ASSERT_TRUE(std::equal(va.begin(), va.end(), vb.begin(), vb.end()))
            << threads << " threads, user " << u << ", " << features::name_of(f);
      }
    }
  }
}

TEST(ParallelDeterminism, WeekDistributionsMatchSerial) {
  const auto scenario = build_scenario(tiny(1));
  const auto serial = hids::week_distributions(scenario.matrices,
                                               FeatureKind::TcpConnections, 0, 1);
  const auto parallel = hids::week_distributions(scenario.matrices,
                                                 FeatureKind::TcpConnections, 0, 4);
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t u = 0; u < serial.size(); ++u) {
    const auto sa = serial[u].samples();
    const auto sb = parallel[u].samples();
    ASSERT_TRUE(std::equal(sa.begin(), sa.end(), sb.begin(), sb.end()))
        << "user " << u;
  }
}

TEST(ParallelDeterminism, EvaluationOutcomesMatchSerial) {
  const auto scenario = build_scenario(tiny(1));
  const std::vector<hids::EvaluationRound> rounds{{0, 1}};
  hids::AttackModel attack;
  attack.sizes = {5.0, 50.0, 500.0};
  const hids::PercentileHeuristic p99(0.99);
  const hids::KneePartialGrouper grouper;

  const auto serial = hids::evaluate_rounds(scenario.matrices,
                                            FeatureKind::TcpConnections, rounds,
                                            grouper, p99, attack, 1);
  const auto parallel = hids::evaluate_rounds(scenario.matrices,
                                              FeatureKind::TcpConnections, rounds,
                                              grouper, p99, attack, 4);
  ASSERT_EQ(parallel.users.size(), serial.users.size());
  for (std::size_t u = 0; u < serial.users.size(); ++u) {
    ASSERT_EQ(parallel.users[u].threshold, serial.users[u].threshold) << "user " << u;
    ASSERT_EQ(parallel.users[u].group, serial.users[u].group) << "user " << u;
    ASSERT_EQ(parallel.users[u].fp_rate, serial.users[u].fp_rate) << "user " << u;
    ASSERT_EQ(parallel.users[u].fn_rate, serial.users[u].fn_rate) << "user " << u;
    ASSERT_EQ(parallel.users[u].weekly_false_alarms,
              serial.users[u].weekly_false_alarms)
        << "user " << u;
  }
  ASSERT_EQ(parallel.utilities(0.4), serial.utilities(0.4));
}

TEST(ParallelDeterminism, CachedEvaluationMatchesUncachedForAnyThreadCount) {
  const auto scenario = build_scenario(tiny(1));
  const std::vector<hids::EvaluationRound> rounds{{0, 1}};
  hids::AttackModel attack;
  attack.sizes = {5.0, 50.0, 500.0};
  const hids::UtilityHeuristic heuristic(0.4);
  const hids::KneePartialGrouper grouper;

  // Reference: uncached, serial.
  const auto reference = hids::evaluate_rounds(scenario.matrices,
                                               FeatureKind::TcpConnections, rounds,
                                               grouper, heuristic, attack, 1);
  for (unsigned threads : {1u, 2u, 4u}) {
    // Fresh cache per thread count: every artifact is computed at that
    // shard count and must still be bit-identical to the serial uncached
    // run — both on first (cold) and second (fully warm) evaluation.
    AnalysisCache cache(scenario.matrices);
    for (int pass = 0; pass < 2; ++pass) {
      const auto cached = hids::evaluate_rounds(scenario.matrices,
                                                FeatureKind::TcpConnections, rounds,
                                                grouper, heuristic, attack, threads, &cache);
      ASSERT_EQ(cached.users.size(), reference.users.size());
      for (std::size_t u = 0; u < reference.users.size(); ++u) {
        ASSERT_EQ(cached.users[u].threshold, reference.users[u].threshold)
            << threads << " threads, pass " << pass << ", user " << u;
        ASSERT_EQ(cached.users[u].group, reference.users[u].group) << "user " << u;
        ASSERT_EQ(cached.users[u].fp_rate, reference.users[u].fp_rate)
            << threads << " threads, pass " << pass << ", user " << u;
        ASSERT_EQ(cached.users[u].fn_rate, reference.users[u].fn_rate)
            << threads << " threads, pass " << pass << ", user " << u;
        ASSERT_EQ(cached.users[u].weekly_false_alarms,
                  reference.users[u].weekly_false_alarms)
            << "user " << u;
      }
    }
    // Two passes, one round each: the second pass must be all hits.
    EXPECT_GT(cache.counters().hits, 0u) << threads << " threads";
  }
}

TEST(ParallelDeterminism, CachedWeekDistributionsMatchDirectAcrossThreadCounts) {
  const auto scenario = build_scenario(tiny(1));
  const auto direct = hids::week_distributions(scenario.matrices,
                                               FeatureKind::TcpConnections, 0, 1);
  for (unsigned threads : {1u, 2u, 4u}) {
    AnalysisCache cache(scenario.matrices);
    const auto cached = cache.week(FeatureKind::TcpConnections, 0, threads);
    ASSERT_EQ(cached->size(), direct.size());
    for (std::size_t u = 0; u < direct.size(); ++u) {
      const auto sa = (*cached)[u].samples();
      const auto sb = direct[u].samples();
      ASSERT_TRUE(std::equal(sa.begin(), sa.end(), sb.begin(), sb.end()))
          << threads << " threads, user " << u;
    }
  }
}

TEST(ParallelDeterminism, DetectionCurveMatchesSerial) {
  const auto scenario = build_scenario(tiny(1));
  const auto train = hids::week_distributions(scenario.matrices,
                                              FeatureKind::TcpConnections, 0, 1);
  const hids::PercentileHeuristic p99(0.99);
  const auto thresholds =
      hids::assign_thresholds(train, hids::FullDiversityGrouper{}, p99);
  std::vector<double> sizes;
  for (double s = 1.0; s <= 4096.0; s *= 2.0) sizes.push_back(s);

  const auto serial =
      hids::naive_detection_curve(train, thresholds.threshold_of_user, sizes, 1);
  const auto parallel =
      hids::naive_detection_curve(train, thresholds.threshold_of_user, sizes, 4);
  ASSERT_EQ(parallel, serial);
}

}  // namespace
}  // namespace monohids::sim
