#include "sim/management_cost.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace monohids::sim {
namespace {

TEST(ManagementCost, FullDiversityShipsNothingButAuditsEveryone) {
  ManagementCostConfig config;
  const auto costs = management_costs(config, ReportingMode::FullDistribution);
  ASSERT_EQ(costs.size(), 3u);
  const auto& full = costs[1];
  EXPECT_EQ(full.policy, "full-diversity");
  EXPECT_EQ(full.uplink_bytes_per_week, 0u);
  EXPECT_EQ(full.downlink_bytes_per_week, 0u);
  EXPECT_EQ(full.distinct_configurations, 350u);
}

TEST(ManagementCost, CentralizedPoliciesPullEveryDistribution) {
  ManagementCostConfig config;
  const auto costs = management_costs(config, ReportingMode::FullDistribution);
  // 350 hosts x 6 features x 672 bins x 8 bytes
  const std::uint64_t expected = 350ull * 6 * 672 * 8;
  EXPECT_EQ(costs[0].uplink_bytes_per_week, expected);
  EXPECT_EQ(costs[2].uplink_bytes_per_week, expected);
  EXPECT_EQ(costs[0].distinct_configurations, 1u);
  EXPECT_EQ(costs[2].distinct_configurations, 8u);
}

TEST(ManagementCost, SummariesShrinkUplinkSubstantially) {
  ManagementCostConfig config;
  const auto full = management_costs(config, ReportingMode::FullDistribution);
  const auto compact = management_costs(config, ReportingMode::QuantileSummary);
  EXPECT_LT(compact[0].uplink_bytes_per_week * 4, full[0].uplink_bytes_per_week);
  // summary: 128 doubles + count, per host-feature
  EXPECT_EQ(compact[0].uplink_bytes_per_week, 350ull * 6 * (128 * 8 + 8));
}

TEST(ManagementCost, DownlinkScalesWithHostsNotGroups) {
  // Every host receives its (possibly shared) threshold set.
  ManagementCostConfig config;
  const auto costs = management_costs(config, ReportingMode::QuantileSummary);
  EXPECT_EQ(costs[0].downlink_bytes_per_week, 350ull * 6 * 8);
  EXPECT_EQ(costs[2].downlink_bytes_per_week, 350ull * 6 * 8);
}

TEST(ManagementCost, ConfigurableShape) {
  ManagementCostConfig config;
  config.users = 10;
  config.features = 2;
  config.bins_per_week = 100;
  config.partial_groups = 3;
  const auto costs = management_costs(config, ReportingMode::FullDistribution);
  EXPECT_EQ(costs[0].uplink_bytes_per_week, 10ull * 2 * 100 * 8);
  EXPECT_EQ(costs[2].policy, "3-partial");
  EXPECT_EQ(costs[2].distinct_configurations, 3u);
}

TEST(ManagementCost, InvalidInputsAreErrors) {
  ManagementCostConfig config;
  config.users = 0;
  EXPECT_THROW((void)management_costs(config, ReportingMode::FullDistribution),
               PreconditionError);
  EXPECT_THROW((void)management_costs(ManagementCostConfig{}, ReportingMode::None),
               PreconditionError);
}

TEST(ManagementCost, ModeNames) {
  EXPECT_EQ(name_of(ReportingMode::None), "local-only");
  EXPECT_EQ(name_of(ReportingMode::FullDistribution), "full-distribution");
  EXPECT_EQ(name_of(ReportingMode::QuantileSummary), "quantile-summary");
}

}  // namespace
}  // namespace monohids::sim
