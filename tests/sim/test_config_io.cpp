#include "sim/config_io.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace monohids::sim {
namespace {

TEST(ConfigIo, DefaultsRoundTrip) {
  const ScenarioConfig original;
  const std::string text = serialize_scenario_config(original);
  const ScenarioConfig restored = parse_scenario_config(text);
  EXPECT_EQ(restored.population.user_count, original.population.user_count);
  EXPECT_EQ(restored.population.seed, original.population.seed);
  EXPECT_EQ(restored.population.weeks, original.population.weeks);
  EXPECT_DOUBLE_EQ(restored.population.heavy_fraction, original.population.heavy_fraction);
  EXPECT_DOUBLE_EQ(restored.population.weekly_trend, original.population.weekly_trend);
  EXPECT_EQ(restored.generator.grid.width(), original.generator.grid.width());
  EXPECT_DOUBLE_EQ(restored.generator.episode_log_mu, original.generator.episode_log_mu);
}

TEST(ConfigIo, CustomValuesRoundTrip) {
  ScenarioConfig original;
  original.set_users(42);
  original.set_seed(777);
  original.set_weeks(3);
  original.population.heavy_fraction = 0.25;
  original.population.weekly_trend = 0.9;
  original.generator.grid = util::BinGrid::minutes(5);
  const ScenarioConfig restored =
      parse_scenario_config(serialize_scenario_config(original));
  EXPECT_EQ(restored.population.user_count, 42u);
  EXPECT_EQ(restored.population.seed, 777u);
  EXPECT_EQ(restored.population.weeks, 3u);
  EXPECT_EQ(restored.generator.weeks, 3u);
  EXPECT_DOUBLE_EQ(restored.population.heavy_fraction, 0.25);
  EXPECT_EQ(restored.generator.grid.width(), 5 * util::kMicrosPerMinute);
}

TEST(ConfigIo, RoundTripProducesIdenticalScenario) {
  ScenarioConfig original;
  original.set_users(8);
  original.set_weeks(1);
  original.set_seed(99);
  const ScenarioConfig restored =
      parse_scenario_config(serialize_scenario_config(original));
  const auto a = build_scenario(original);
  const auto b = build_scenario(restored);
  for (std::uint32_t u = 0; u < 8; ++u) {
    const auto& sa = a.matrices[u].of(features::FeatureKind::TcpConnections);
    const auto& sb = b.matrices[u].of(features::FeatureKind::TcpConnections);
    for (std::size_t bin = 0; bin < sa.bin_count(); ++bin) {
      ASSERT_DOUBLE_EQ(sa.at(bin), sb.at(bin));
    }
  }
}

TEST(ConfigIo, FidelityRoundTrips) {
  ScenarioConfig original;
  EXPECT_EQ(parse_scenario_config(serialize_scenario_config(original)).fidelity,
            TraceFidelity::Bins);
  original.fidelity = TraceFidelity::Packets;
  EXPECT_EQ(parse_scenario_config(serialize_scenario_config(original)).fidelity,
            TraceFidelity::Packets);
  EXPECT_THROW((void)parse_scenario_config("fidelity = full\n"), InputError);
}

TEST(ConfigIo, MissingKeysKeepDefaults) {
  const ScenarioConfig config = parse_scenario_config("users = 10\n");
  EXPECT_EQ(config.population.user_count, 10u);
  EXPECT_EQ(config.population.weeks, ScenarioConfig{}.population.weeks);
}

TEST(ConfigIo, CommentsAndBlankLinesIgnored) {
  const ScenarioConfig config =
      parse_scenario_config("# hello\n\n   \nusers = 20\n# bye\n");
  EXPECT_EQ(config.population.user_count, 20u);
}

TEST(ConfigIo, UnknownKeyIsAnError) {
  EXPECT_THROW((void)parse_scenario_config("userz = 10\n"), InputError);
}

TEST(ConfigIo, MalformedLinesAreErrors) {
  EXPECT_THROW((void)parse_scenario_config("users\n"), InputError);
  EXPECT_THROW((void)parse_scenario_config("users = ten\n"), InputError);
  EXPECT_THROW((void)parse_scenario_config("users = 0\n"), InputError);
  EXPECT_THROW((void)parse_scenario_config("heavy_fraction = 1.5\n"), InputError);
  EXPECT_THROW((void)parse_scenario_config("bin_minutes = 0\n"), InputError);
}

TEST(ConfigIo, SubnetBaseParses) {
  const ScenarioConfig config = parse_scenario_config("subnet_base = 192.168.0.0\n");
  EXPECT_EQ(config.population.subnet_base.to_string(), "192.168.0.0");
  EXPECT_THROW((void)parse_scenario_config("subnet_base = not-an-ip\n"), InputError);
}

}  // namespace
}  // namespace monohids::sim
