// Fleet-mode contract tests.
//
// The three load-bearing claims:
//   1. Determinism — rows, pooled sketches, thresholds, utilities and
//      console alarm counts are bit-identical for every shard size and
//      thread count (the fold order, not the shard layout, defines them).
//   2. Accuracy — utilities from the compact eps-approximate state stay
//      within the documented utility_error_bound() of the exact pipeline
//      at the paper's 350 users, and per-user FP/CDF queries stay within
//      rank_error_bound().
//   3. Fidelity — the paper's policy ranking (full > partial > homogeneous
//      mean utility) survives the approximation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "hids/evaluator.hpp"
#include "hids/grouping.hpp"
#include "hids/heuristics.hpp"
#include "sim/fleet.hpp"
#include "sim/analysis_cache.hpp"
#include "sim/scenario.hpp"

namespace monohids::sim {
namespace {

using features::FeatureKind;

FleetConfig small_fleet(std::uint32_t users, std::uint32_t shard_size,
                        unsigned threads = 0) {
  FleetConfig config;
  config.set_users(users);
  config.set_seed(42);
  config.set_weeks(2);
  config.shard_size = shard_size;
  config.threads = threads;
  return config;
}

TEST(Fleet, RowsAreAscendingAndSized) {
  const FleetScenario fleet = build_fleet_scenario(small_fleet(40, 16));
  EXPECT_EQ(fleet.user_count(), 40u);
  EXPECT_EQ(fleet.week_count(), 2u);
  EXPECT_EQ(fleet.bins_per_week(), 672u);  // 15-minute bins
  for (FeatureKind f : features::kAllFeatures) {
    for (std::uint32_t w = 0; w < fleet.week_count(); ++w) {
      ASSERT_EQ(fleet.rows(f, w).size(),
                std::size_t{40} * fleet.grid_points());
      for (std::uint32_t u = 0; u < fleet.user_count(); ++u) {
        const auto row = fleet.row(f, w, u);
        EXPECT_TRUE(std::is_sorted(row.begin(), row.end()));
      }
      EXPECT_EQ(fleet.pooled(f, w).count(), std::uint64_t{40} * 672);
    }
  }
  EXPECT_GT(fleet.store_bytes(), 0u);
  EXPECT_GT(fleet.pooled_sketch_bytes(), 0u);
}

TEST(Fleet, ShardAndThreadCountDoNotChangeAnything) {
  // The regression demanded by the issue: shards ∈ {1, 4, 16} (as shard
  // sizes covering 1..N shards) × serial vs parallel workers. Rows and
  // pooled sketches must be bit-identical; thresholds, utilities and
  // console alarm counts follow from them deterministically.
  constexpr std::uint32_t kUsers = 64;
  const FleetScenario reference = build_fleet_scenario(small_fleet(kUsers, kUsers, 1));

  const std::uint32_t shard_sizes[] = {kUsers, kUsers / 4, kUsers / 16};
  const unsigned thread_counts[] = {1, 3};
  for (const std::uint32_t shard_size : shard_sizes) {
    for (const unsigned threads : thread_counts) {
      const FleetScenario fleet =
          build_fleet_scenario(small_fleet(kUsers, shard_size, threads));
      for (FeatureKind f : features::kAllFeatures) {
        for (std::uint32_t w = 0; w < fleet.week_count(); ++w) {
          const auto expect = reference.rows(f, w);
          const auto got = fleet.rows(f, w);
          ASSERT_EQ(got.size(), expect.size());
          for (std::size_t i = 0; i < got.size(); ++i) {
            ASSERT_EQ(got[i], expect[i])
                << "feature " << features::index_of(f) << " week " << w
                << " slot " << i << " shard_size=" << shard_size
                << " threads=" << threads;
          }
          ASSERT_EQ(fleet.pooled(f, w).count(), reference.pooled(f, w).count());
          for (const double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
            ASSERT_EQ(fleet.pooled(f, w).quantile(q),
                      reference.pooled(f, w).quantile(q))
                << "pooled quantile diverged at q=" << q
                << " shard_size=" << shard_size << " threads=" << threads;
          }
        }
      }

      // End-to-end: thresholds → utilities → console alarms, all equal.
      const auto attack =
          fleet.analysis().attack_model(FeatureKind::TcpConnections, 0, 16);
      const auto ref_attack =
          reference.analysis().attack_model(FeatureKind::TcpConnections, 0, 16);
      const hids::KneePartialGrouper grouper;
      const hids::UtilityHeuristic heuristic(0.5);
      const auto outcome = evaluate_fleet_policy(
          fleet, FeatureKind::TcpConnections, {0, 1}, grouper, heuristic, *attack);
      const auto expected = evaluate_fleet_policy(reference,
                                                  FeatureKind::TcpConnections,
                                                  {0, 1}, grouper, heuristic,
                                                  *ref_attack);
      ASSERT_EQ(outcome.users.size(), expected.users.size());
      for (std::size_t u = 0; u < outcome.users.size(); ++u) {
        ASSERT_EQ(outcome.users[u].threshold, expected.users[u].threshold);
        ASSERT_EQ(outcome.users[u].fp_rate, expected.users[u].fp_rate);
        ASSERT_EQ(outcome.users[u].fn_rate, expected.users[u].fn_rate);
        ASSERT_EQ(outcome.users[u].weekly_false_alarms,
                  expected.users[u].weekly_false_alarms);
      }
    }
  }
}

TEST(Fleet, BinTilePartitionDoesNotChangeAnything) {
  // The new v2 invariance axis: the bin-tile partition is a pure execution
  // knob. Rows and pooled sketches must be bit-identical for whole-horizon
  // tiles, week tiles, sub-week tiles and a deliberately non-divisible
  // tile size, serial and threaded.
  constexpr std::uint32_t kUsers = 48;
  const FleetScenario reference = build_fleet_scenario(small_fleet(kUsers, kUsers, 1));
  for (const std::uint32_t tile : {96u, 129u, 672u, 1344u}) {
    FleetConfig config = small_fleet(kUsers, 16, 3);
    config.base.generator.v2_bin_tile = tile;
    const FleetScenario fleet = build_fleet_scenario(config);
    for (FeatureKind f : features::kAllFeatures) {
      for (std::uint32_t w = 0; w < fleet.week_count(); ++w) {
        const auto expect = reference.rows(f, w);
        const auto got = fleet.rows(f, w);
        ASSERT_EQ(got.size(), expect.size());
        for (std::size_t i = 0; i < got.size(); ++i) {
          ASSERT_EQ(got[i], expect[i])
              << "feature " << features::index_of(f) << " week " << w << " slot "
              << i << " tile=" << tile;
        }
        for (const double q : {0.0, 0.5, 0.99, 1.0}) {
          ASSERT_EQ(fleet.pooled(f, w).quantile(q), reference.pooled(f, w).quantile(q))
              << "pooled quantile diverged at q=" << q << " tile=" << tile;
        }
      }
    }
  }
}

TEST(Fleet, CompactRowsStayWithinTheRankErrorBound) {
  // Per-user FP check: the compact view's exceedance at the exact pipeline's
  // threshold must stay within rank_error_bound() of the exact exceedance.
  // The exact side runs on the fleet's own base config so both pipelines
  // share the draw contract (the fleet default is v2) and the bound is the
  // sketch+grid approximation alone, not cross-contract sampling noise.
  FleetConfig config = small_fleet(80, 32);
  const Scenario exact = build_scenario(config.base);
  const FleetScenario fleet = build_fleet_scenario(config);
  const double bound = config.rank_error_bound();

  const auto feature = FeatureKind::TcpConnections;
  const auto exact_week = exact.analysis().week(feature, 1);
  const auto fleet_week = fleet.analysis().week(feature, 1);
  ASSERT_EQ(exact_week->size(), fleet_week->size());
  for (std::size_t u = 0; u < exact_week->size(); ++u) {
    const double t = (*exact_week)[u].quantile(0.99);
    const double exact_fp = (*exact_week)[u].exceedance(t);
    const double fleet_fp = (*fleet_week)[u].exceedance(t);
    EXPECT_LE(std::abs(fleet_fp - exact_fp), bound)
        << "user " << u << ": exact fp " << exact_fp << " vs fleet " << fleet_fp;
  }
}

TEST(Fleet, UtilitiesMatchTheExactPipelineWithinTheStatedBound) {
  // The acceptance criterion at the paper's scale: run the identical
  // (grouper, heuristic, attack) policy through the exact pipeline and the
  // fleet pipeline; mean utility must agree within utility_error_bound().
  constexpr std::uint32_t kUsers = 350;
  FleetConfig config = small_fleet(kUsers, 128);
  const Scenario exact = build_scenario(config.base);
  const FleetScenario fleet = build_fleet_scenario(config);

  const auto feature = FeatureKind::TcpConnections;
  const auto attack = fleet.analysis().attack_model(feature, 0, 32);
  const hids::PercentileHeuristic heuristic(0.99);
  const double w = 0.5;

  const hids::HomogeneousGrouper homogeneous;
  const hids::FullDiversityGrouper full;
  for (const hids::Grouper* grouper :
       {static_cast<const hids::Grouper*>(&homogeneous),
        static_cast<const hids::Grouper*>(&full)}) {
    const auto train = exact.analysis().week(feature, 0);
    const auto test = exact.analysis().week(feature, 1);
    const auto exact_outcome =
        hids::evaluate_policy(*train, *test, *grouper, heuristic, *attack);
    const auto fleet_outcome =
        evaluate_fleet_policy(fleet, feature, {0, 1}, *grouper, heuristic, *attack);
    EXPECT_LE(std::abs(fleet_outcome.mean_utility(w) - exact_outcome.mean_utility(w)),
              config.utility_error_bound())
        << grouper->name() << ": exact " << exact_outcome.mean_utility(w)
        << " vs fleet " << fleet_outcome.mean_utility(w);
  }
}

TEST(Fleet, PolicyRankingSurvivesTheApproximation) {
  // Figure 3's ordering: full diversity > partial diversity > homogeneous
  // mean utility, evaluated entirely on the compact state.
  FleetConfig config = small_fleet(350, 128);
  const FleetScenario fleet = build_fleet_scenario(config);

  const auto feature = FeatureKind::TcpConnections;
  const auto attack = fleet.analysis().attack_model(feature, 0, 32);
  const hids::UtilityHeuristic heuristic(0.5);
  const double w = 0.5;

  const hids::FullDiversityGrouper full;
  const hids::KneePartialGrouper partial;
  const hids::HomogeneousGrouper homogeneous;
  const double u_full =
      evaluate_fleet_policy(fleet, feature, {0, 1}, full, heuristic, *attack)
          .mean_utility(w);
  const double u_partial =
      evaluate_fleet_policy(fleet, feature, {0, 1}, partial, heuristic, *attack)
          .mean_utility(w);
  const double u_homogeneous =
      evaluate_fleet_policy(fleet, feature, {0, 1}, homogeneous, heuristic, *attack)
          .mean_utility(w);
  EXPECT_GT(u_full, u_partial);
  EXPECT_GT(u_partial, u_homogeneous);
}

TEST(Fleet, ConsoleAlarmsAreScaledToRealWeeks) {
  const FleetScenario fleet = build_fleet_scenario(small_fleet(40, 40));
  const auto feature = FeatureKind::TcpConnections;
  const auto attack = fleet.analysis().attack_model(feature, 0, 8);
  const hids::PercentileHeuristic heuristic(0.95);
  const auto outcome = evaluate_fleet_policy(fleet, feature, {0, 1},
                                             hids::FullDiversityGrouper(), heuristic,
                                             *attack);
  for (const auto& user : outcome.users) {
    EXPECT_EQ(user.weekly_false_alarms,
              static_cast<std::uint64_t>(std::llround(
                  user.fp_rate * static_cast<double>(fleet.bins_per_week()))));
  }
}

TEST(Fleet, RejectsDegenerateConfigs) {
  FleetConfig config = small_fleet(10, 0);
  EXPECT_THROW((void)build_fleet_scenario(config), PreconditionError);
  config = small_fleet(10, 4);
  config.grid_points = 1;
  EXPECT_THROW((void)build_fleet_scenario(config), PreconditionError);
  config = small_fleet(10, 4);
  config.sketch_epsilon = 0.7;
  EXPECT_THROW((void)build_fleet_scenario(config), PreconditionError);
}

}  // namespace
}  // namespace monohids::sim
