#include "sim/scenario.hpp"

#include <gtest/gtest.h>

namespace monohids::sim {
namespace {

ScenarioConfig tiny(std::uint32_t users = 12, std::uint32_t weeks = 2) {
  ScenarioConfig config;
  config.set_users(users);
  config.set_weeks(weeks);
  config.set_seed(77);
  return config;
}

TEST(Scenario, BuildsMatricesForEveryUser) {
  const auto scenario = build_scenario(tiny());
  EXPECT_EQ(scenario.user_count(), 12u);
  ASSERT_EQ(scenario.matrices.size(), 12u);
  for (const auto& m : scenario.matrices) {
    EXPECT_EQ(m.of(features::FeatureKind::TcpConnections).bin_count(), 2u * 672u);
  }
}

TEST(Scenario, Deterministic) {
  const auto a = build_scenario(tiny());
  const auto b = build_scenario(tiny());
  for (std::uint32_t u = 0; u < a.user_count(); ++u) {
    const auto& sa = a.matrices[u].of(features::FeatureKind::UdpConnections);
    const auto& sb = b.matrices[u].of(features::FeatureKind::UdpConnections);
    for (std::size_t bin = 0; bin < sa.bin_count(); ++bin) {
      ASSERT_DOUBLE_EQ(sa.at(bin), sb.at(bin));
    }
  }
}

TEST(Scenario, SeedChangesTraffic) {
  auto config_b = tiny();
  config_b.set_seed(78);
  const auto a = build_scenario(tiny());
  const auto b = build_scenario(config_b);
  double total_a = 0, total_b = 0;
  for (std::uint32_t u = 0; u < a.user_count(); ++u) {
    for (double v : a.matrices[u].of(features::FeatureKind::TcpConnections).values()) {
      total_a += v;
    }
    for (double v : b.matrices[u].of(features::FeatureKind::TcpConnections).values()) {
      total_b += v;
    }
  }
  EXPECT_NE(total_a, total_b);
}

TEST(Scenario, SetWeeksKeepsPopulationAndGeneratorInSync) {
  ScenarioConfig config;
  config.set_weeks(3);
  EXPECT_EQ(config.population.weeks, 3u);
  EXPECT_EQ(config.generator.weeks, 3u);
}

TEST(Scenario, PacketFidelityBuildsFromStreamedIngest) {
  ScenarioConfig config = tiny(4, 1);
  config.fidelity = TraceFidelity::Packets;
  const auto scenario = build_scenario(config);
  ASSERT_EQ(scenario.matrices.size(), 4u);

  // Must equal an explicit per-user ingest run — same generator, same
  // streaming pipeline.
  const trace::TraceGenerator generator(config.generator);
  features::PipelineConfig pipeline;
  pipeline.grid = config.generator.grid;
  pipeline.horizon = config.generator.horizon();
  for (std::uint32_t u = 0; u < scenario.user_count(); ++u) {
    features::IngestSession session(scenario.users[u].address, pipeline);
    generator.generate_packets_streamed(scenario.users[u], 0, config.generator.horizon(),
                                        session);
    const features::FeatureMatrix expected = session.finish().matrix;
    for (features::FeatureKind f : features::kAllFeatures) {
      const auto got = scenario.matrices[u].of(f).values();
      const auto want = expected.of(f).values();
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t b = 0; b < want.size(); ++b) {
        ASSERT_EQ(got[b], want[b]) << "user " << u << " bin " << b;
      }
    }
  }
}

TEST(Scenario, PacketFidelityDeterministicAcrossThreadsAndBatches) {
  ScenarioConfig config = tiny(6, 1);
  config.fidelity = TraceFidelity::Packets;
  config.threads = 1;
  const auto serial = build_scenario(config);
  config.threads = 4;
  config.ingest_batch = 777;  // batch size is an execution knob
  const auto parallel = build_scenario(config);
  for (std::uint32_t u = 0; u < serial.user_count(); ++u) {
    for (features::FeatureKind f : features::kAllFeatures) {
      const auto a = serial.matrices[u].of(f).values();
      const auto b = parallel.matrices[u].of(f).values();
      ASSERT_EQ(a.size(), b.size());
      for (std::size_t bin = 0; bin < a.size(); ++bin) {
        ASSERT_EQ(a[bin], b[bin]) << "user " << u << " bin " << bin;
      }
    }
  }
}

TEST(Scenario, EveryUserHasTraffic) {
  const auto scenario = build_scenario(tiny(20, 1));
  for (std::uint32_t u = 0; u < scenario.user_count(); ++u) {
    double total = 0;
    for (double v : scenario.matrices[u].of(features::FeatureKind::TcpConnections).values()) {
      total += v;
    }
    EXPECT_GT(total, 0.0) << "user " << u << " generated no TCP traffic";
  }
}

}  // namespace
}  // namespace monohids::sim
