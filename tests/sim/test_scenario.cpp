#include "sim/scenario.hpp"

#include <gtest/gtest.h>

namespace monohids::sim {
namespace {

ScenarioConfig tiny(std::uint32_t users = 12, std::uint32_t weeks = 2) {
  ScenarioConfig config;
  config.set_users(users);
  config.set_weeks(weeks);
  config.set_seed(77);
  return config;
}

TEST(Scenario, BuildsMatricesForEveryUser) {
  const auto scenario = build_scenario(tiny());
  EXPECT_EQ(scenario.user_count(), 12u);
  ASSERT_EQ(scenario.matrices.size(), 12u);
  for (const auto& m : scenario.matrices) {
    EXPECT_EQ(m.of(features::FeatureKind::TcpConnections).bin_count(), 2u * 672u);
  }
}

TEST(Scenario, Deterministic) {
  const auto a = build_scenario(tiny());
  const auto b = build_scenario(tiny());
  for (std::uint32_t u = 0; u < a.user_count(); ++u) {
    const auto& sa = a.matrices[u].of(features::FeatureKind::UdpConnections);
    const auto& sb = b.matrices[u].of(features::FeatureKind::UdpConnections);
    for (std::size_t bin = 0; bin < sa.bin_count(); ++bin) {
      ASSERT_DOUBLE_EQ(sa.at(bin), sb.at(bin));
    }
  }
}

TEST(Scenario, SeedChangesTraffic) {
  auto config_b = tiny();
  config_b.set_seed(78);
  const auto a = build_scenario(tiny());
  const auto b = build_scenario(config_b);
  double total_a = 0, total_b = 0;
  for (std::uint32_t u = 0; u < a.user_count(); ++u) {
    for (double v : a.matrices[u].of(features::FeatureKind::TcpConnections).values()) {
      total_a += v;
    }
    for (double v : b.matrices[u].of(features::FeatureKind::TcpConnections).values()) {
      total_b += v;
    }
  }
  EXPECT_NE(total_a, total_b);
}

TEST(Scenario, SetWeeksKeepsPopulationAndGeneratorInSync) {
  ScenarioConfig config;
  config.set_weeks(3);
  EXPECT_EQ(config.population.weeks, 3u);
  EXPECT_EQ(config.generator.weeks, 3u);
}

TEST(Scenario, EveryUserHasTraffic) {
  const auto scenario = build_scenario(tiny(20, 1));
  for (std::uint32_t u = 0; u < scenario.user_count(); ++u) {
    double total = 0;
    for (double v : scenario.matrices[u].of(features::FeatureKind::TcpConnections).values()) {
      total += v;
    }
    EXPECT_GT(total, 0.0) << "user " << u << " generated no TCP traffic";
  }
}

}  // namespace
}  // namespace monohids::sim
