// sim::AnalysisCache: memoized week distributions / threshold assignments /
// attack models must be (a) bit-identical to the direct computations,
// (b) served from memory on repeat lookups, (c) keyed finely enough that
// differently-parameterized policies never collide, and (d) safe under
// concurrent lookups.
#include <gtest/gtest.h>

#include <thread>

#include "sim/analysis_cache.hpp"
#include "sim/experiments.hpp"
#include "sim/scenario.hpp"

namespace monohids::sim {
namespace {

using features::FeatureKind;

const Scenario& shared_scenario() {
  static const Scenario scenario = [] {
    ScenarioConfig config;
    config.set_users(20);
    config.set_weeks(2);
    config.set_seed(777);
    return build_scenario(config);
  }();
  return scenario;
}

TEST(AnalysisCache, WeekMatchesDirectComputation) {
  const auto& scenario = shared_scenario();
  AnalysisCache cache(scenario.matrices);
  const auto cached = cache.week(FeatureKind::TcpConnections, 0);
  const auto direct =
      hids::week_distributions(scenario.matrices, FeatureKind::TcpConnections, 0);
  ASSERT_EQ(cached->size(), direct.size());
  for (std::size_t u = 0; u < direct.size(); ++u) {
    const auto a = (*cached)[u].samples();
    const auto b = direct[u].samples();
    ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end())) << "user " << u;
  }
}

TEST(AnalysisCache, RepeatLookupsShareOneResult) {
  AnalysisCache cache(shared_scenario().matrices);
  const auto first = cache.week(FeatureKind::TcpConnections, 0);
  const auto second = cache.week(FeatureKind::TcpConnections, 0);
  EXPECT_EQ(first.get(), second.get());  // same arena, zero rebuild
  const auto counters = cache.counters();
  EXPECT_EQ(counters.misses, 1u);
  EXPECT_EQ(counters.hits, 1u);
}

TEST(AnalysisCache, DistinctKeysAreDistinctEntries) {
  AnalysisCache cache(shared_scenario().matrices);
  const auto a = cache.week(FeatureKind::TcpConnections, 0);
  const auto b = cache.week(FeatureKind::TcpConnections, 1);
  const auto c = cache.week(FeatureKind::DistinctConnections, 0);
  EXPECT_NE(a.get(), b.get());
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(cache.counters().misses, 3u);
}

TEST(AnalysisCache, ThresholdsMatchAssignThresholds) {
  const auto& scenario = shared_scenario();
  AnalysisCache cache(scenario.matrices);
  const hids::KneePartialGrouper grouper;
  const hids::UtilityHeuristic heuristic(0.4);
  hids::AttackModel attack;
  attack.sizes = {2.0, 20.0, 200.0};

  const auto cached =
      cache.thresholds(FeatureKind::TcpConnections, 0, grouper, heuristic, &attack);
  const auto train =
      hids::week_distributions(scenario.matrices, FeatureKind::TcpConnections, 0);
  const auto direct = hids::assign_thresholds(train, grouper, heuristic, &attack);
  EXPECT_EQ(cached->threshold_of_user, direct.threshold_of_user);
  EXPECT_EQ(cached->threshold_of_group, direct.threshold_of_group);
  EXPECT_EQ(cached->groups.group_of_user, direct.groups.group_of_user);

  // Same key again: served from memory.
  const auto again =
      cache.thresholds(FeatureKind::TcpConnections, 0, grouper, heuristic, &attack);
  EXPECT_EQ(cached.get(), again.get());
}

TEST(AnalysisCache, ParameterizedPoliciesDoNotCollide) {
  AnalysisCache cache(shared_scenario().matrices);
  const hids::PercentileHeuristic p99(0.99);
  const hids::PercentileHeuristic p95(0.95);
  const auto a = cache.thresholds(FeatureKind::TcpConnections, 0,
                                  hids::EqualFrequencyGrouper(4), p99, nullptr);
  const auto b = cache.thresholds(FeatureKind::TcpConnections, 0,
                                  hids::EqualFrequencyGrouper(4), p95, nullptr);
  const auto c = cache.thresholds(FeatureKind::TcpConnections, 0,
                                  hids::EqualFrequencyGrouper(4, 0.5), p99, nullptr);
  EXPECT_NE(a->threshold_of_user, b->threshold_of_user);
  EXPECT_NE(a.get(), c.get());  // pivot quantile is part of the key

  // Attack sweep is part of the key for FN-aware heuristics.
  hids::AttackModel small, large;
  small.sizes = {1.0};
  large.sizes = {1.0, 1000.0};
  const hids::UtilityHeuristic utility(0.4);
  const auto d = cache.thresholds(FeatureKind::TcpConnections, 0,
                                  hids::HomogeneousGrouper{}, utility, &small);
  const auto e = cache.thresholds(FeatureKind::TcpConnections, 0,
                                  hids::HomogeneousGrouper{}, utility, &large);
  EXPECT_NE(d.get(), e.get());
}

TEST(AnalysisCache, AttackModelMatchesMakeAttackModel) {
  const auto& scenario = shared_scenario();
  const auto cached = scenario.analysis().attack_model(FeatureKind::TcpConnections, 0);
  const auto direct = make_attack_model(scenario, FeatureKind::TcpConnections, 0);
  EXPECT_EQ(cached->sizes, direct.sizes);
  const auto again = scenario.analysis().attack_model(FeatureKind::TcpConnections, 0);
  EXPECT_EQ(cached.get(), again.get());
}

TEST(AnalysisCache, BypassRecomputesEveryCall) {
  AnalysisCache cache(shared_scenario().matrices);
  cache.set_bypass(true);
  const auto a = cache.week(FeatureKind::TcpConnections, 0);
  const auto b = cache.week(FeatureKind::TcpConnections, 0);
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(cache.counters().hits, 0u);
  const auto sa = (*a)[0].samples();
  const auto sb = (*b)[0].samples();
  EXPECT_TRUE(std::equal(sa.begin(), sa.end(), sb.begin(), sb.end()));
}

TEST(AnalysisCache, ClearDropsEntriesButKeepsHandlesValid) {
  AnalysisCache cache(shared_scenario().matrices);
  const auto before = cache.week(FeatureKind::TcpConnections, 0);
  cache.clear();
  const auto after = cache.week(FeatureKind::TcpConnections, 0);
  EXPECT_NE(before.get(), after.get());
  EXPECT_FALSE((*before)[0].samples().empty());  // old handle still alive
}

TEST(AnalysisCache, ScenarioAccessorIsStableAndInvalidatesOnCopy) {
  const auto& scenario = shared_scenario();
  auto& first = scenario.analysis();
  auto& second = scenario.analysis();
  EXPECT_EQ(&first, &second);

  // A copied scenario has its own matrices; the shared cache handle must
  // not serve lookups against the original's storage.
  const Scenario copy = scenario;
  auto& copy_cache = copy.analysis();
  EXPECT_NE(&copy_cache, &first);
  EXPECT_TRUE(copy_cache.covers(copy.matrices));
  EXPECT_FALSE(copy_cache.covers(scenario.matrices));
}

TEST(AnalysisCache, ConcurrentSameKeyLookupsComputeOnce) {
  AnalysisCache cache(shared_scenario().matrices);
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const AnalysisCache::DistributionSet>> results(kThreads);
  {
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      // threads=1 keeps the inner build serial: the pool is irrelevant to
      // what this test pins (one compute, everyone shares it).
      workers.emplace_back(
          [&, t] { results[t] = cache.week(FeatureKind::TcpConnections, 0, 1); });
    }
    for (auto& w : workers) w.join();
  }
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(results[t].get(), results[0].get());
  }
  EXPECT_EQ(cache.counters().misses, 1u);
  EXPECT_EQ(cache.counters().hits, static_cast<std::uint64_t>(kThreads - 1));
}

}  // namespace
}  // namespace monohids::sim
