#!/usr/bin/env bash
# Overhead regression gate for the observability layer.
#
# Builds micro_ingest twice — MONOHIDS_OBS=ON and OFF — runs the same
# headline workload in both, and fails unless:
#   1. the "# output digest:" lines match (instrumentation must never touch
#      data outputs: bit-identical feature matrices and flow stats), and
#   2. the instrumented streaming headline is within MAX_OVERHEAD_PCT
#      (default 2%) of the uninstrumented one, best-of REPEAT runs.
#
# Usage: scripts/check_obs_overhead.sh [source-dir]
# Env:   MAX_OVERHEAD_PCT (default 2), REPEAT (default 5), BUILD_ROOT
#        (default <source-dir>/build-obs-check), WORKLOAD_ARGS (extra
#        micro_ingest flags, default a ~2.4M-packet headline).
set -euo pipefail

SRC_DIR="${1:-$(pwd)}"
BUILD_ROOT="${BUILD_ROOT:-${SRC_DIR}/build-obs-check}"
MAX_OVERHEAD_PCT="${MAX_OVERHEAD_PCT:-2}"
REPEAT="${REPEAT:-5}"
WORKLOAD_ARGS="${WORKLOAD_ARGS:---flow-rate 500 --flow-seconds 1200 --packets 500000}"

build_flavor() {
  local flavor="$1" obs_value="$2"
  local dir="${BUILD_ROOT}/${flavor}"
  cmake -B "${dir}" -S "${SRC_DIR}" -DCMAKE_BUILD_TYPE=Release \
        "-DMONOHIDS_OBS=${obs_value}" > /dev/null
  cmake --build "${dir}" -j --target micro_ingest > /dev/null
  echo "${dir}"
}

run_flavor() {
  local dir="$1" out="$2"
  # min-speedup 0: this gate measures obs overhead, not the streaming-vs-
  # reference floor (the bench-smoke job owns that).
  # shellcheck disable=SC2086
  "${dir}/bench/micro_ingest" --repeat "${REPEAT}" --min-speedup 0 \
      ${WORKLOAD_ARGS} --json "${out}.json" > "${out}.txt"
}

headline_ms() {
  # Best-of streaming time for the floor-gated synthetic workload.
  python3 - "$1" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1] + ".json"))
print([p["ms"] for p in doc["phases"] if p["name"] == "synth_streaming"][0])
EOF
}

digest_of() {
  grep '# output digest:' "$1.txt" | awk '{print $4}'
}

echo "== building MONOHIDS_OBS=ON and OFF flavors =="
ON_DIR=$(build_flavor on ON)
OFF_DIR=$(build_flavor off OFF)

echo "== running headline workload (repeat=${REPEAT}) =="
run_flavor "${OFF_DIR}" "${BUILD_ROOT}/off"
run_flavor "${ON_DIR}" "${BUILD_ROOT}/on"

ON_DIGEST=$(digest_of "${BUILD_ROOT}/on")
OFF_DIGEST=$(digest_of "${BUILD_ROOT}/off")
ON_MS=$(headline_ms "${BUILD_ROOT}/on")
OFF_MS=$(headline_ms "${BUILD_ROOT}/off")

echo "obs=ON : ${ON_MS} ms   digest ${ON_DIGEST}"
echo "obs=OFF: ${OFF_MS} ms   digest ${OFF_DIGEST}"

if [ -z "${ON_DIGEST}" ] || [ "${ON_DIGEST}" != "${OFF_DIGEST}" ]; then
  echo "FAIL: output digests differ — instrumentation changed data outputs" >&2
  exit 1
fi

python3 - "${ON_MS}" "${OFF_MS}" "${MAX_OVERHEAD_PCT}" <<'EOF'
import sys
on_ms, off_ms, limit = float(sys.argv[1]), float(sys.argv[2]), float(sys.argv[3])
overhead = (on_ms - off_ms) / off_ms * 100.0
print(f"metrics-on overhead: {overhead:+.2f}% (limit {limit:.1f}%)")
if overhead > limit:
    print(f"FAIL: observability overhead {overhead:.2f}% exceeds {limit:.1f}%",
          file=sys.stderr)
    sys.exit(1)
EOF

echo "OK: bit-identical outputs, overhead within ${MAX_OVERHEAD_PCT}%"
