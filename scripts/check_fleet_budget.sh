#!/usr/bin/env bash
# Budget gate for fleet mode (sim::FleetScenario).
#
# Two micro_fleet runs against an existing Release build:
#   1. Scale run at FLEET_USERS hosts with the peak-RSS ceiling enforced
#      (--max-rss-mib): the bounded-memory contract — RSS must not grow
#      with the population beyond the compact store + one resident shard.
#      micro_fleet also exits non-zero if the paper's policy ranking
#      (full > partial > homogeneous) breaks on the compact state.
#   2. Accuracy run at VERIFY_USERS hosts with --verify-exact (no RSS
#      ceiling; the exact pipeline's resident arenas are the memory hog the
#      fleet path exists to avoid): mean utility per policy must stay
#      within MAX_UTILITY_ERR (default: the config's documented
#      2 * (eps + 1/(m-1)) bound) of the exact pipeline.
#
# Both runs use the fleet default draw contract (v2 counter-mode,
# API_TOUR.md §16) unless SCENARIO_VERSION overrides it; a third quick
# accuracy run pins the legacy v1 serial-stream contract so the
# --scenario-version 1 escape hatch keeps working.
#
# Usage: scripts/check_fleet_budget.sh [build-dir]
# Env:   FLEET_USERS (default 10000), MAX_RSS_MIB (default 768),
#        VERIFY_USERS (default 2000), MAX_UTILITY_ERR (default 0 = the
#        documented bound), SHARD_SIZE (default 2048), OUT_DIR (default .),
#        SCENARIO_VERSION (default 2)
set -euo pipefail

BUILD_DIR="${1:-build}"
FLEET_USERS="${FLEET_USERS:-10000}"
MAX_RSS_MIB="${MAX_RSS_MIB:-768}"
VERIFY_USERS="${VERIFY_USERS:-2000}"
MAX_UTILITY_ERR="${MAX_UTILITY_ERR:-0}"
SHARD_SIZE="${SHARD_SIZE:-2048}"
OUT_DIR="${OUT_DIR:-.}"
SCENARIO_VERSION="${SCENARIO_VERSION:-2}"

BIN="${BUILD_DIR}/bench/micro_fleet"
if [ ! -x "${BIN}" ]; then
  echo "FAIL: ${BIN} not built (cmake --build ${BUILD_DIR} --target micro_fleet)" >&2
  exit 1
fi

echo "== fleet scale run: ${FLEET_USERS} hosts, RSS ceiling ${MAX_RSS_MIB} MiB," \
     "scenario v${SCENARIO_VERSION} =="
"${BIN}" --users "${FLEET_USERS}" --weeks 2 --shard-size "${SHARD_SIZE}" \
    --scenario-version "${SCENARIO_VERSION}" \
    --max-rss-mib "${MAX_RSS_MIB}" --json "${OUT_DIR}/BENCH_fleet_smoke.json"

echo "== fleet accuracy run: ${VERIFY_USERS} hosts vs the exact pipeline =="
"${BIN}" --users "${VERIFY_USERS}" --weeks 2 --shard-size "${SHARD_SIZE}" \
    --scenario-version "${SCENARIO_VERSION}" \
    --verify-exact --max-utility-err "${MAX_UTILITY_ERR}" \
    --json "${OUT_DIR}/BENCH_fleet_verify.json"

echo "== fleet accuracy run (legacy v1 contract): ${VERIFY_USERS} hosts =="
"${BIN}" --users "${VERIFY_USERS}" --weeks 2 --shard-size "${SHARD_SIZE}" \
    --scenario-version 1 \
    --verify-exact --max-utility-err "${MAX_UTILITY_ERR}" \
    --json "${OUT_DIR}/BENCH_fleet_verify_v1.json"

echo "OK: RSS within ${MAX_RSS_MIB} MiB at ${FLEET_USERS} hosts;" \
     "sketch utilities within the error bound at ${VERIFY_USERS} hosts (v${SCENARIO_VERSION} and v1)"
