#!/usr/bin/env bash
# Bench-smoke gate for the live capture-to-alarm daemon (hids::Daemon).
#
# One micro_daemon run against an existing Release build. The binary is
# self-verifying (it exits non-zero if the daemon's alarm set diverges from
# the batch pipeline), and this script adds the two operational gates:
#
#   - inline drain throughput must stay above MIN_PKTS_PER_SEC: the pure
#     processing path (flow table -> extractor -> bin scan -> learner) must
#     keep up with capture; a regression here means the agent falls behind
#     live traffic and the bounded queue starts shedding coverage.
#   - Storm time-to-detection must stay under TTD_MAX_MINUTES: a zombie
#     switched on after the warm-up/training weeks must raise its first
#     alert within the bound (the detection-latency contract of fig 5's
#     attack experiment, run through the online path).
#
# Usage: scripts/check_daemon_gate.sh [build-dir]
# Env:   WEEKS (default 3), MIN_PKTS_PER_SEC (default 1000000),
#        TTD_MAX_MINUTES (default 720), OUT_DIR (default .)
set -euo pipefail

BUILD_DIR="${1:-build}"
WEEKS="${WEEKS:-3}"
MIN_PKTS_PER_SEC="${MIN_PKTS_PER_SEC:-1000000}"
TTD_MAX_MINUTES="${TTD_MAX_MINUTES:-720}"
OUT_DIR="${OUT_DIR:-.}"

BIN="${BUILD_DIR}/bench/micro_daemon"
if [ ! -x "${BIN}" ]; then
  echo "FAIL: ${BIN} not built (cmake --build ${BUILD_DIR} --target micro_daemon)" >&2
  exit 1
fi

echo "== daemon smoke: ${WEEKS} weeks, floor ${MIN_PKTS_PER_SEC} pkts/s, TTD <= ${TTD_MAX_MINUTES} min =="
"${BIN}" --weeks "${WEEKS}" \
    --min-pkts-per-sec "${MIN_PKTS_PER_SEC}" \
    --ttd-max-minutes "${TTD_MAX_MINUTES}" \
    --json "${OUT_DIR}/BENCH_daemon_smoke.json"

echo "OK: daemon bit-identical to the batch pipeline, drain above" \
     "${MIN_PKTS_PER_SEC} pkts/s, Storm detected within ${TTD_MAX_MINUTES} minutes"
