// Attacker's-eye view: how much malicious traffic can a bot on an infected
// host send without tripping the HIDS, under each IT policy?
//
// Walks the paper's two threat models (naive and resourceful/mimicry) for a
// single chosen victim and for the whole population, and shows how the
// resourceful attacker's profiling pays off — and how diversity policies
// shrink that payoff.
//
//   ./attacker_evasion [--users N] [--victim ID] [--evasion P]
#include <iostream>

#include "hids/attacker.hpp"
#include "sim/experiments.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace monohids;

  util::CliFlags flags("attacker evasion analysis under monoculture vs diversity");
  flags.add_int("users", 350, "population size");
  flags.add_int("seed", 42, "master seed");
  flags.add_int("victim", 17, "user id of the infected host to examine");
  flags.add_double("evasion", 0.9, "resourceful attacker's target evasion probability");
  if (!flags.parse(argc, argv)) return 0;

  sim::ScenarioConfig config;
  config.set_users(static_cast<std::uint32_t>(flags.get_int("users")));
  config.set_seed(static_cast<std::uint64_t>(flags.get_int("seed")));
  const auto scenario = sim::build_scenario(config);
  const auto victim = static_cast<std::uint32_t>(flags.get_int("victim"));
  if (victim >= scenario.user_count()) {
    std::cerr << "victim id out of range\n";
    return 1;
  }

  const auto feature = features::FeatureKind::TcpConnections;
  const auto train = hids::week_distributions(scenario.matrices, feature, 0);
  const auto test = hids::week_distributions(scenario.matrices, feature, 1);
  const hids::PercentileHeuristic p99(0.99);
  const hids::ResourcefulAttacker attacker{flags.get_double("evasion")};

  std::cout << "Victim host " << victim << ": training-week traffic "
            << "median=" << train[victim].quantile(0.5)
            << ", q99=" << train[victim].quantile(0.99) << " connections/window\n\n";

  util::TextTable table({"policy", "victim threshold", "hidden volume/window",
                         "x of victim's q99", "realized evasion (next week)"});
  table.set_alignment({util::Align::Left, util::Align::Right, util::Align::Right,
                       util::Align::Right, util::Align::Right});
  for (const auto& grouper : sim::canonical_groupers()) {
    const auto assignment = hids::assign_thresholds(train, *grouper, p99);
    const double t = assignment.threshold_of_user[victim];
    const double hidden = attacker.hidden_volume(train[victim], t);
    const double realized =
        hids::ResourcefulAttacker::realized_evasion(test[victim], t, hidden);
    table.add_row({grouper->name(), util::fixed(t, 0), util::fixed(hidden, 0),
                   util::fixed(hidden / std::max(1.0, train[victim].quantile(0.99)), 2),
                   util::fixed(realized, 3)});
  }
  std::cout << table.render();

  // Population view: how much can a botmaster exfiltrate across the fleet?
  std::cout << "\nFleet-wide hidden volume (sum over all infected hosts, per window):\n";
  util::TextTable fleet({"policy", "total hidden volume", "vs full-diversity"});
  fleet.set_alignment({util::Align::Left, util::Align::Right, util::Align::Right});
  std::vector<double> totals;
  for (const auto& grouper : sim::canonical_groupers()) {
    const auto assignment = hids::assign_thresholds(train, *grouper, p99);
    const auto volumes = attacker.hidden_volumes(train, assignment.threshold_of_user);
    double total = 0;
    for (double v : volumes) total += v;
    totals.push_back(total);
  }
  const auto groupers = sim::canonical_groupers();
  for (std::size_t g = 0; g < groupers.size(); ++g) {
    fleet.add_row({groupers[g]->name(), util::fixed(totals[g], 0),
                   util::fixed(totals[g] / std::max(1.0, totals[1]), 2) + "x"});
  }
  std::cout << fleet.render();

  std::cout << "\nA DDoS recruiter that mimics each host's profile can push "
            << util::fixed(totals[0] / std::max(1.0, totals[1]), 1)
            << "x more attack traffic through a monoculture-configured fleet\n"
               "than through per-host thresholds — the paper's Fig. 4(b) point.\n";
  return 0;
}
