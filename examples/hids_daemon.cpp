// Live capture-to-alarm daemon, end to end.
//
// Runs hids::Daemon the way a deployed agent would: packets stream in
// incrementally (a synthetic multi-week trace, optionally with a Storm
// zombie overlay mid-stream, or a real pcap capture), feature bins complete
// as simulated time advances, thresholds re-derive at each week rollover,
// and alerts batch up to the central console. At exit it prints the
// operational counters, the threshold history, and the per-week alert load,
// and can drop a Prometheus textfile for a scrape sidecar.
//
//   ./hids_daemon [--weeks N] [--storm-week W] [--rolling] [--pcap FILE]
//                 [--metrics FILE]
#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <sstream>

#include "hids/daemon.hpp"
#include "obs/export.hpp"
#include "trace/generator.hpp"
#include "trace/population.hpp"
#include "trace/storm.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace monohids;

  util::CliFlags flags("run the live capture-to-alarm daemon over a packet stream");
  flags.add_int("users", 50, "population size to draw the monitored user from");
  flags.add_int("seed", 42, "master seed");
  flags.add_int("user", 7, "user id to monitor");
  flags.add_int("weeks", 3, "trace length in weeks (week 0 is warm-up)");
  flags.add_int("storm-week", -1, "inject a Storm zombie for this week (-1 = clean)");
  flags.add_int("batch", 4096, "ingest batch size in packets");
  flags.add_double("percentile", 0.99, "training percentile for the thresholds");
  flags.add_bool("rolling", false, "sliding-window thresholds instead of weekly rollover");
  flags.add_string("pcap", "", "consume this pcap capture instead of a synthetic trace");
  flags.add_string("metrics", "", "write a Prometheus textfile here at exit");
  if (!flags.parse(argc, argv)) return 0;

  const auto weeks = static_cast<std::uint32_t>(std::max<long long>(1, flags.get_int("weeks")));
  const auto batch = static_cast<std::size_t>(std::max<long long>(1, flags.get_int("batch")));

  trace::PopulationConfig pop;
  pop.user_count = static_cast<std::uint32_t>(flags.get_int("users"));
  pop.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  const auto users = trace::generate_population(pop);
  const auto user_id = static_cast<std::size_t>(flags.get_int("user"));
  if (user_id >= users.size()) {
    std::cerr << "user id out of range\n";
    return 1;
  }
  const trace::UserProfile& user = users[user_id];

  hids::DaemonConfig config;
  config.monitored = user.address;
  config.user_id = user.user_id;
  config.pipeline.horizon = static_cast<util::Duration>(weeks) * util::kMicrosPerWeek;
  config.percentile = flags.get_double("percentile");
  config.mode = flags.get_bool("rolling") ? hids::ThresholdMode::Rolling
                                          : hids::ThresholdMode::WeeklyRollover;
  hids::Daemon daemon(config);

  if (const auto& path = flags.get_string("pcap"); !path.empty()) {
    std::ifstream in(path, std::ios::binary);
    if (!in.good()) {
      std::cerr << "cannot open pcap: " << path << '\n';
      return 1;
    }
    const auto imported = daemon.consume_pcap(in, batch);
    std::cout << "pcap import: " << imported.packet_count << " packets, "
              << imported.skipped_non_ipv4 + imported.skipped_protocol << " skipped";
    if (!imported.stream_error.empty()) {
      std::cout << "  [stream fault: " << imported.stream_error << "]";
    }
    std::cout << '\n';
  } else {
    // Synthetic stream: the user's own traffic, optionally merged with a
    // Storm zombie's packets for one week — the mid-stream infection the
    // detection experiments model.
    const trace::TraceGenerator generator{trace::GeneratorConfig{}};
    auto packets = generator.generate_packets(user, 0, config.pipeline.horizon);
    const auto storm_week = flags.get_int("storm-week");
    if (storm_week >= 0 && static_cast<std::uint32_t>(storm_week) < weeks) {
      trace::StormConfig storm;
      const auto begin = static_cast<util::Timestamp>(storm_week) * util::kMicrosPerWeek;
      // The zombie renders in its own one-week horizon; shift it to the
      // infection week.
      auto zombie =
          trace::generate_storm_packets(storm, user.address, 0, util::kMicrosPerWeek);
      for (net::PacketRecord& p : zombie) p.timestamp += begin;
      auto merged = std::move(packets);
      merged.insert(merged.end(), zombie.begin(), zombie.end());
      std::stable_sort(merged.begin(), merged.end(),
                       [](const net::PacketRecord& a, const net::PacketRecord& b) {
                         return a.timestamp < b.timestamp;
                       });
      packets = std::move(merged);
      std::cout << "injected " << zombie.size() << " Storm packets into week "
                << storm_week << '\n';
    }
    for (std::size_t off = 0; off < packets.size(); off += batch) {
      const std::size_t n = std::min(batch, packets.size() - off);
      daemon.on_batch(std::span<const net::PacketRecord>(packets.data() + off, n));
    }
  }

  const hids::DaemonResult result = daemon.finish();

  std::cout << "\nuser " << user.user_id << " @ " << user.address.to_string() << "  mode="
            << (config.mode == hids::ThresholdMode::Rolling ? "rolling" : "weekly-rollover")
            << "  p" << util::fixed(config.percentile * 100.0, 0) << '\n';
  std::cout << "ingested " << result.stats.packets_ingested << " packets in "
            << result.stats.batches_enqueued << " batches ("
            << result.stats.packets_out_of_order << " out-of-order skipped, "
            << result.stats.batches_dropped << " batches dropped), "
            << result.stats.bins_completed << " bins scanned, " << result.stats.rollovers
            << " threshold rollovers\n";
  std::cout << "flow table: " << result.pipeline.flow_stats.flows_created << " flows, "
            << result.pipeline.flow_stats.syn_packets << " raw SYNs\n\n";

  util::TextTable thresholds({"week", "DNS", "TCP", "SYN", "HTTP", "distinct", "UDP"});
  for (const hids::ThresholdUpdate& update : result.rollovers) {
    std::vector<std::string> row{std::to_string(update.week)};
    for (double t : update.thresholds) {
      row.push_back(std::isfinite(t) ? util::fixed(t, 0) : "inf");
    }
    thresholds.add_row(row);
  }
  std::cout << "thresholds in force per week:\n" << thresholds.render() << '\n';

  util::TextTable alerts({"week", "alerts at console"});
  for (std::uint32_t w = 0; w < weeks; ++w) {
    alerts.add_row({std::to_string(w), std::to_string(result.console.alerts_in_week(w))});
  }
  std::cout << "console: " << result.console.total_alerts() << " alerts in "
            << result.console.total_batches() << " batches\n"
            << alerts.render();

  if (const auto& path = flags.get_string("metrics"); !path.empty()) {
    obs::write_global_prometheus(path);
    std::cout << "\nwrote Prometheus metrics to " << path << '\n';
  }
  return 0;
}
