// Full reproduction report: one command, every experiment.
//
// Runs all of the paper's tables and figures on a freshly built scenario
// and writes a self-contained Markdown report (numbers, orderings, and a
// pass/fail check against each paper claim) to stdout. Archive it together
// with the serialized configuration it prints at the top and the run is
// reproducible forever.
//
//   ./full_report [--users N] [--seed S] > report.md
#include <algorithm>
#include <iostream>

#include "sim/config_io.hpp"
#include "sim/experiments.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace monohids;

double median_of(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

struct Checks {
  int passed = 0;
  int total = 0;

  void check(std::ostream& os, const char* claim, bool ok) {
    os << "- [" << (ok ? 'x' : ' ') << "] " << claim << '\n';
    ++total;
    if (ok) ++passed;
  }
};

}  // namespace

int main(int argc, char** argv) {
  util::CliFlags flags("regenerate every paper experiment as a Markdown report");
  flags.add_int("users", 350, "population size");
  flags.add_int("seed", 42, "master seed");
  if (!flags.parse(argc, argv)) return 0;

  sim::ScenarioConfig config;
  config.set_users(static_cast<std::uint32_t>(flags.get_int("users")));
  config.set_seed(static_cast<std::uint64_t>(flags.get_int("seed")));
  const auto scenario = sim::build_scenario(config);
  std::ostream& os = std::cout;
  Checks checks;

  os << "# monohids reproduction report\n\n"
     << "Scenario configuration (replayable via sim::parse_scenario_config):\n\n```\n"
     << sim::serialize_scenario_config(config) << "```\n\n";

  // Figure 1.
  os << "## Figure 1 — tail diversity\n\n| feature | min p99 | median | max | decades |\n"
        "|---|---|---|---|---|\n";
  double max_spread = 0;
  double dns_spread = 0;
  for (features::FeatureKind f : features::kAllFeatures) {
    const auto r = sim::tail_diversity(scenario, f, 0);
    os << "| " << features::name_of(f) << " | " << r.p99_sorted.front() << " | "
       << r.p99_sorted[r.p99_sorted.size() / 2] << " | " << r.p99_sorted.back() << " | "
       << util::fixed(r.spread_decades, 2) << " |\n";
    max_spread = std::max(max_spread, r.spread_decades);
    if (f == features::FeatureKind::DnsConnections) dns_spread = r.spread_decades;
  }
  os << '\n';
  checks.check(os, "thresholds span multiple decades (paper: 3-4)", max_spread >= 2.4);
  checks.check(os, "DNS among the narrowest features (paper: ~2 decades)",
               dns_spread <= max_spread - 0.5);

  // Table 2.
  const auto tcp_best =
      sim::best_users_experiment(scenario, features::FeatureKind::TcpConnections, 0);
  const auto udp_best =
      sim::best_users_experiment(scenario, features::FeatureKind::UdpConnections, 0);
  const auto overlap_full =
      hids::overlap_count(tcp_best.full_diversity, udp_best.full_diversity);
  os << "\n## Table 2 — best users per alarm type\n\nTCP/UDP sentinel overlap: "
     << overlap_full << " of 10 under full diversity (paper: 2).\n\n";
  checks.check(os, "sentinel lists barely overlap across features (paper: 2/10)",
               overlap_full <= 4);

  // Figure 3(b).
  const auto sweep = sim::weight_sweep(scenario, features::FeatureKind::TcpConnections,
                                       {0.1, 0.5, 0.9});
  os << "\n## Figure 3(b) — utility vs w\n\n| w | homogeneous | full | 8-partial |\n"
        "|---|---|---|---|\n";
  for (std::size_t i = 0; i < sweep.weights.size(); ++i) {
    os << "| " << sweep.weights[i] << " | " << util::fixed(sweep.mean_utility[0][i], 3)
       << " | " << util::fixed(sweep.mean_utility[1][i], 3) << " | "
       << util::fixed(sweep.mean_utility[2][i], 3) << " |\n";
  }
  os << '\n';
  const double gap_low = sweep.mean_utility[1][0] - sweep.mean_utility[0][0];
  const double gap_high = sweep.mean_utility[1][2] - sweep.mean_utility[0][2];
  checks.check(os, "diversity gain grows with w (paper Fig. 3b)", gap_high > gap_low);

  // Table 3.
  const auto alarms = sim::alarm_rates(scenario, features::FeatureKind::TcpConnections);
  os << "\n## Table 3 — weekly console alarms\n\n| heuristic | homogeneous | full | "
        "partial |\n|---|---|---|---|\n";
  for (std::size_t h = 0; h < alarms.heuristic_names.size(); ++h) {
    os << "| " << alarms.heuristic_names[h] << " | " << alarms.alarms[h][0] << " | "
       << alarms.alarms[h][1] << " | " << alarms.alarms[h][2] << " |\n";
  }
  os << '\n';
  checks.check(os, "monoculture floods the console under the 99th-pct heuristic",
               alarms.alarms[0][0] > alarms.alarms[0][1] &&
                   alarms.alarms[0][0] > alarms.alarms[0][2]);
  checks.check(os, "monoculture worst under the utility heuristic too",
               alarms.alarms[1][0] > alarms.alarms[1][1] &&
                   alarms.alarms[1][0] > alarms.alarms[1][2]);

  // Figure 4(a).
  const auto naive =
      sim::naive_attack_curves(scenario, features::FeatureKind::TcpConnections, 30);
  std::size_t idx100 = 0;
  while (idx100 + 1 < naive.sizes.size() && naive.sizes[idx100] < 100.0) ++idx100;
  os << "\n## Figure 4(a) — naive attacker\n\ndetection at attack size ~100: homogeneous "
     << util::fixed(naive.detection[0][idx100], 2) << ", full diversity "
     << util::fixed(naive.detection[1][idx100], 2) << ", 8-partial "
     << util::fixed(naive.detection[2][idx100], 2) << " (paper: ~0.7 vs >0.9).\n\n";
  checks.check(os, "diversity detects stealthy attacks the monoculture misses",
               naive.detection[1][idx100] > naive.detection[0][idx100] + 0.3);

  // Figure 4(b).
  const auto mimicry =
      sim::resourceful_attack(scenario, features::FeatureKind::TcpConnections);
  const double homog_hidden = median_of(mimicry.hidden_volumes[0]);
  const double full_hidden = median_of(mimicry.hidden_volumes[1]);
  os << "\n## Figure 4(b) — resourceful attacker\n\nmedian hidden volume: homogeneous "
     << util::fixed(homog_hidden, 0) << ", full diversity " << util::fixed(full_hidden, 0)
     << " (paper: ~310 vs ~100).\n\n";
  checks.check(os, "diversity shrinks the mimicry attacker's budget severalfold",
               homog_hidden > 3 * full_hidden);

  // Figure 5.
  const auto storm = sim::storm_replay(scenario);
  std::vector<double> full_fp, full_det, homog_det;
  for (const auto& o : storm.outcomes[1]) {
    full_fp.push_back(o.fp_rate);
    full_det.push_back(o.detection_rate);
  }
  for (const auto& o : storm.outcomes[0]) homog_det.push_back(o.detection_rate);
  os << "\n## Figure 5 — Storm replay\n\nfull diversity: median FP "
     << util::fixed(median_of(full_fp), 4) << ", median detection "
     << util::fixed(median_of(full_det), 3) << "; homogeneous median detection "
     << util::fixed(median_of(homog_det), 3) << ".\n\n";
  checks.check(os, "diversity bounds FP near the design point on the real attack",
               median_of(full_fp) < 0.03);
  checks.check(os, "more users detect the zombie under diversity",
               median_of(full_det) > median_of(homog_det));

  // Drift note.
  const auto drift =
      sim::threshold_drift(scenario, features::FeatureKind::TcpConnections);
  os << "\n## §6.1 — threshold stability\n\nmedian realized FP "
     << util::fixed(drift.median_realized_fp * 100, 2) << "% against the 1% target; "
     << util::fixed(drift.fraction_within_2x * 100, 1) << "% of users within 2x.\n\n";
  checks.check(os, "thresholds are not stable week over week",
               drift.fraction_within_2x < 0.95);

  os << "\n---\n\n**" << checks.passed << " / " << checks.total
     << " paper claims reproduced on this run.**\n";
  return checks.passed == checks.total ? 0 : 1;
}
