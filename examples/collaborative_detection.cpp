// Collaborative detection (the paper's §7 future-work idea, implemented).
//
// Different users are naturally sensitive to different attacks (Fig. 2 /
// Table 2). This example picks per-feature sentinel squads — the hosts with
// the lowest personal thresholds — and shows how a small quorum of
// sentinels broadcasting their alarms protects the whole population against
// attacks most individual hosts would never notice.
//
//   ./collaborative_detection [--users N] [--sentinels K] [--quorum Q]
#include <iostream>

#include "sim/experiments.hpp"
#include "util/ascii_chart.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace monohids;

  util::CliFlags flags("collaborative sentinel detection across the enterprise");
  flags.add_int("users", 350, "population size");
  flags.add_int("seed", 42, "master seed");
  flags.add_int("sentinels", 10, "sentinel squad size");
  flags.add_int("quorum", 2, "alarms needed to declare an attack");
  if (!flags.parse(argc, argv)) return 0;

  sim::ScenarioConfig config;
  config.set_users(static_cast<std::uint32_t>(flags.get_int("users")));
  config.set_seed(static_cast<std::uint64_t>(flags.get_int("seed")));
  const auto scenario = sim::build_scenario(config);

  hids::CollaborativeConfig collab;
  collab.sentinel_count = static_cast<std::size_t>(flags.get_int("sentinels"));
  collab.quorum = static_cast<std::uint32_t>(flags.get_int("quorum"));

  // 1. Per-feature sentinel squads differ — show the rosters and overlaps.
  std::cout << "Sentinel squads (lowest-threshold hosts per feature):\n";
  util::TextTable squads({"feature", "sentinel hosts"});
  std::vector<std::vector<std::uint32_t>> rosters;
  for (features::FeatureKind f : features::kAllFeatures) {
    const auto best =
        sim::best_users_experiment(scenario, f, 0, collab.sentinel_count);
    std::string ids;
    for (std::uint32_t u : best.full_diversity) ids += std::to_string(u) + ' ';
    squads.add_row({std::string(features::name_of(f)), ids});
    rosters.push_back(best.full_diversity);
  }
  std::cout << squads.render();

  std::size_t max_overlap = 0;
  for (std::size_t a = 0; a < rosters.size(); ++a) {
    for (std::size_t b = a + 1; b < rosters.size(); ++b) {
      max_overlap = std::max(max_overlap, hids::overlap_count(rosters[a], rosters[b]));
    }
  }
  std::cout << "largest squad overlap between any two features: " << max_overlap
            << " of " << collab.sentinel_count
            << " — every attack type gets its own natural specialists.\n\n";

  // 2. Detection curves: population-mean solo vs sentinel quorum.
  const auto curve = sim::collaboration_experiment(
      scenario, features::FeatureKind::TcpConnections, collab, 36);
  util::Series solo{"solo (population mean)", curve.sizes, curve.solo};
  util::Series quorum{"sentinel quorum", curve.sizes, curve.collaborative};
  util::ChartOptions options;
  options.x_scale = util::Scale::Log10;
  options.x_label = "attack size per window (log scale)";
  options.y_label = "detection probability";
  options.y_min = 0.0;
  options.y_max = 1.0;
  std::cout << util::render_line_chart({solo, quorum}, options);

  // 3. Where does collaboration change the story?
  double best_gain = 0, best_size = 0;
  for (std::size_t i = 0; i < curve.sizes.size(); ++i) {
    const double gain = curve.collaborative[i] - curve.solo[i];
    if (gain > best_gain) {
      best_gain = gain;
      best_size = curve.sizes[i];
    }
  }
  std::cout << "\nlargest collaborative gain: +" << util::fixed(best_gain, 2)
            << " detection probability at attack size ~" << util::fixed(best_size, 0)
            << " connections/window —\nattacks that hide from almost every host "
               "individually get caught by the squad.\n";
  return 0;
}
