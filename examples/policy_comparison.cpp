// Policy comparison: the paper's §6 evaluation loop as an application.
//
// Builds an enterprise scenario, then walks through all three IT policies x
// two threshold heuristics, reporting per-user operating points, console
// alarm load, and who the sentinel users are — the kind of report an IT
// department would want before choosing a HIDS configuration policy.
//
//   ./policy_comparison [--users N] [--seed S] [--feature name] [--w W]
#include <iostream>

#include "sim/experiments.hpp"
#include "stats/boxplot.hpp"
#include "util/ascii_chart.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace monohids;

  util::CliFlags flags("policy comparison: monoculture vs diversity vs 8-partial");
  flags.add_int("users", 350, "population size");
  flags.add_int("seed", 42, "master seed");
  flags.add_string("feature", "num-TCP-connections", "feature to analyze");
  flags.add_double("w", 0.4, "utility weight on false negatives");
  if (!flags.parse(argc, argv)) return 0;

  sim::ScenarioConfig config;
  config.set_users(static_cast<std::uint32_t>(flags.get_int("users")));
  config.set_seed(static_cast<std::uint64_t>(flags.get_int("seed")));
  const auto scenario = sim::build_scenario(config);
  const auto feature = features::parse_feature(flags.get_string("feature"));
  const double w = flags.get_double("w");

  const auto rounds = sim::canonical_rounds();
  const auto attack = sim::make_attack_model(scenario, feature, rounds.front().train_week);

  std::cout << "Enterprise of " << scenario.user_count() << " hosts, feature "
            << features::name_of(feature) << ", thresholds re-learned weekly.\n\n";

  // 1. Policy-by-policy operating points under the survey-favorite
  //    99th-percentile heuristic.
  const hids::PercentileHeuristic p99(0.99);
  util::TextTable operating({"policy", "groups", "mean FP", "median FP", "mean detection",
                             "alarms/wk at console"});
  operating.set_alignment({util::Align::Left, util::Align::Right, util::Align::Right,
                           util::Align::Right, util::Align::Right, util::Align::Right});

  std::vector<util::LabelledBox> utility_boxes;
  for (const auto& grouper : sim::canonical_groupers()) {
    const auto outcome = hids::evaluate_rounds(scenario.matrices, feature, rounds,
                                               *grouper, p99, attack);
    std::vector<double> fp;
    double fp_sum = 0, fn_sum = 0;
    for (const auto& u : outcome.users) {
      fp.push_back(u.fp_rate);
      fp_sum += u.fp_rate;
      fn_sum += u.fn_rate;
    }
    std::sort(fp.begin(), fp.end());
    const auto n = static_cast<double>(outcome.users.size());
    const auto groups = outcome.users.empty() ? 0u : [&] {
      std::uint32_t max_group = 0;
      for (const auto& u : outcome.users) max_group = std::max(max_group, u.group);
      return max_group + 1;
    }();
    operating.add_row({outcome.policy_name, std::to_string(groups),
                       util::fixed(fp_sum / n, 4), util::fixed(fp[fp.size() / 2], 4),
                       util::fixed(1.0 - fn_sum / n, 3),
                       std::to_string(outcome.total_false_alarms())});
    utility_boxes.push_back({outcome.policy_name, stats::box_stats(outcome.utilities(w))});
  }
  std::cout << "99th-percentile heuristic:\n" << operating.render();

  // 2. Utility distributions (what each user actually experiences).
  util::ChartOptions options;
  options.x_label = "per-host utility at w = " + util::fixed(w, 2);
  std::cout << '\n' << util::render_boxplot(utility_boxes, options);

  // 3. Sentinels: the hosts IT should watch for stealthy anomalies.
  const auto best = sim::best_users_experiment(scenario, feature, 0, 10);
  std::cout << "\nsentinel hosts (lowest personal thresholds, full diversity): ";
  for (std::uint32_t u : best.full_diversity) std::cout << u << ' ';
  std::cout << "\n\nReading: the monoculture's single threshold hands light users a"
               "\nblind detector and turns heavy users into alarm floods; both"
               "\ndiversity policies fix both ends at once.\n";
  return 0;
}
