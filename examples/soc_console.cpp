// SOC console simulation: the operational path end to end.
//
// Configures every host's HIDS from a chosen policy, runs a full week of
// traffic through the hosts' detectors and alert batchers into the central
// console — optionally with a Storm zombie wave riding on top — and prints
// the report a security-operations screen would show: alert volume, the
// noisiest hosts, per-feature breakdown, and how the picture changes under
// attack.
//
//   ./soc_console [--users N] [--policy homogeneous|full|partial] [--attack]
#include <iostream>

#include "sim/enterprise.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace monohids;

  util::CliFlags flags("simulate a week at the enterprise SOC console");
  flags.add_int("users", 350, "population size");
  flags.add_int("seed", 42, "master seed");
  flags.add_string("policy", "full", "homogeneous | full | partial");
  flags.add_bool("attack", false, "overlay a Storm zombie on every host");
  if (!flags.parse(argc, argv)) return 0;

  sim::ScenarioConfig config;
  config.set_users(static_cast<std::uint32_t>(flags.get_int("users")));
  config.set_seed(static_cast<std::uint64_t>(flags.get_int("seed")));
  const auto scenario = sim::build_scenario(config);

  std::unique_ptr<hids::Grouper> grouper;
  const std::string& policy = flags.get_string("policy");
  if (policy == "homogeneous") {
    grouper = std::make_unique<hids::HomogeneousGrouper>();
  } else if (policy == "full") {
    grouper = std::make_unique<hids::FullDiversityGrouper>();
  } else if (policy == "partial") {
    grouper = std::make_unique<hids::KneePartialGrouper>();
  } else {
    std::cerr << "unknown policy '" << policy << "'\n";
    return 1;
  }

  const hids::PercentileHeuristic p99(0.99);
  const auto assignments = sim::assign_all_features(scenario, 0, *grouper, p99);

  sim::EnterpriseConfig week;
  week.week = 1;
  if (flags.get_bool("attack")) {
    trace::StormConfig storm;
    storm.grid = scenario.config.generator.grid;
    week.attack = trace::generate_storm_features(storm);
  }
  const auto result = sim::run_enterprise_week(scenario, assignments, week);

  std::cout << "policy: " << grouper->name() << (week.attack ? "  [STORM ACTIVE]" : "")
            << "\nalerts this week: " << result.console.total_alerts() << " in "
            << result.console.total_batches() << " batches from "
            << scenario.user_count() << " hosts\n\n";

  std::cout << "per-feature alert volume:\n";
  util::TextTable features_table({"feature", "alerts"});
  features_table.set_alignment({util::Align::Left, util::Align::Right});
  for (features::FeatureKind f : features::kAllFeatures) {
    features_table.add_row({std::string(features::name_of(f)),
                            std::to_string(result.console.alerts_of_feature(f))});
  }
  std::cout << features_table.render();

  std::cout << "\nnoisiest hosts:\n";
  util::TextTable noisy_table({"host", "alerts", "share"});
  noisy_table.set_alignment({util::Align::Right, util::Align::Right, util::Align::Right});
  const auto total = std::max<std::uint64_t>(1, result.console.total_alerts());
  for (const auto& [user, count] : result.console.noisiest_users(8)) {
    noisy_table.add_row({std::to_string(user), std::to_string(count),
                         util::fixed(100.0 * static_cast<double>(count) /
                                         static_cast<double>(total),
                                     1) +
                             "%"});
  }
  std::cout << noisy_table.render();

  std::cout << "\nTry: --policy homogeneous (watch a handful of heavy hosts drown the"
               "\nconsole) and add --attack to see how much of the zombie's footprint"
               "\neach policy surfaces.\n";
  return 0;
}
