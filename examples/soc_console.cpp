// SOC console simulation: the operational path end to end.
//
// Configures every host's HIDS from a chosen policy, runs a full week of
// traffic through the hosts' detectors and alert batchers into the central
// console — optionally with a Storm zombie wave riding on top — and prints
// the report a security-operations screen would show: alert volume, the
// noisiest hosts, per-feature breakdown, and how the picture changes under
// attack.
//
// A live metrics panel at the bottom surfaces the process's own telemetry
// (obs registry: flow table, ingest, thread pool, analysis cache, console
// alarms), and --metrics-json dumps the full snapshot for dashboards.
//
//   ./soc_console [--users N] [--policy homogeneous|full|partial] [--attack]
//                 [--metrics-json PATH]
#include <iostream>
#include <string_view>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "sim/enterprise.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

/// Renders the subset of the registry the SOC cares about as a table: one
/// section per instrumented subsystem, counters and gauges only (histogram
/// quantiles stay in the JSON snapshot).
void print_metrics_panel(std::ostream& out) {
  using namespace monohids;
  if constexpr (!obs::kEnabled) {
    out << "\n[observability compiled out: re-configure with -DMONOHIDS_OBS=ON]\n";
    return;
  }
  const obs::MetricsSnapshot snapshot = obs::MetricsRegistry::global().snapshot();
  constexpr std::string_view kSections[] = {"flowtable.", "ingest.", "threadpool.",
                                            "cache.",     "console.", "evaluator."};
  util::TextTable table({"metric", "value"});
  table.set_alignment({util::Align::Left, util::Align::Right});
  for (std::string_view prefix : kSections) {
    for (const obs::CounterSample& c : snapshot.counters) {
      if (std::string_view(c.name).starts_with(prefix)) {
        table.add_row({c.name, std::to_string(c.value)});
      }
    }
    for (const obs::GaugeSample& g : snapshot.gauges) {
      if (std::string_view(g.name).starts_with(prefix)) {
        table.add_row({g.name, std::to_string(g.value)});
      }
    }
  }
  out << "\nprocess metrics (obs registry):\n" << table.render();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace monohids;

  util::CliFlags flags("simulate a week at the enterprise SOC console");
  flags.add_int("users", 350, "population size");
  flags.add_int("seed", 42, "master seed");
  flags.add_string("policy", "full", "homogeneous | full | partial");
  flags.add_bool("attack", false, "overlay a Storm zombie on every host");
  flags.add_string("metrics-json", "",
                   "write the full obs metrics snapshot as JSON to this path");
  if (!flags.parse(argc, argv)) return 0;

  sim::ScenarioConfig config;
  config.set_users(static_cast<std::uint32_t>(flags.get_int("users")));
  config.set_seed(static_cast<std::uint64_t>(flags.get_int("seed")));
  // Packet fidelity: run every host's raw trace through connection tracking
  // and the streaming feature extractor — the operational path, and the one
  // the metrics panel below accounts for (flow table + ingest sections).
  config.fidelity = sim::TraceFidelity::Packets;
  const auto scenario = sim::build_scenario(config);

  std::unique_ptr<hids::Grouper> grouper;
  const std::string& policy = flags.get_string("policy");
  if (policy == "homogeneous") {
    grouper = std::make_unique<hids::HomogeneousGrouper>();
  } else if (policy == "full") {
    grouper = std::make_unique<hids::FullDiversityGrouper>();
  } else if (policy == "partial") {
    grouper = std::make_unique<hids::KneePartialGrouper>();
  } else {
    std::cerr << "unknown policy '" << policy << "'\n";
    return 1;
  }

  const hids::PercentileHeuristic p99(0.99);
  const auto assignments = sim::assign_all_features(scenario, 0, *grouper, p99);

  sim::EnterpriseConfig week;
  week.week = 1;
  if (flags.get_bool("attack")) {
    trace::StormConfig storm;
    storm.grid = scenario.config.generator.grid;
    week.attack = trace::generate_storm_features(storm);
  }
  const auto result = sim::run_enterprise_week(scenario, assignments, week);

  std::cout << "policy: " << grouper->name() << (week.attack ? "  [STORM ACTIVE]" : "")
            << "\nalerts this week: " << result.console.total_alerts() << " in "
            << result.console.total_batches() << " batches from "
            << scenario.user_count() << " hosts\n\n";

  std::cout << "per-feature alert volume:\n";
  util::TextTable features_table({"feature", "alerts"});
  features_table.set_alignment({util::Align::Left, util::Align::Right});
  for (features::FeatureKind f : features::kAllFeatures) {
    features_table.add_row({std::string(features::name_of(f)),
                            std::to_string(result.console.alerts_of_feature(f))});
  }
  std::cout << features_table.render();

  std::cout << "\nnoisiest hosts:\n";
  util::TextTable noisy_table({"host", "alerts", "share"});
  noisy_table.set_alignment({util::Align::Right, util::Align::Right, util::Align::Right});
  const auto total = std::max<std::uint64_t>(1, result.console.total_alerts());
  for (const auto& [user, count] : result.console.noisiest_users(8)) {
    noisy_table.add_row({std::to_string(user), std::to_string(count),
                         util::fixed(100.0 * static_cast<double>(count) /
                                         static_cast<double>(total),
                                     1) +
                             "%"});
  }
  std::cout << noisy_table.render();

  print_metrics_panel(std::cout);

  const std::string& metrics_path = flags.get_string("metrics-json");
  if (!metrics_path.empty()) {
    obs::write_global_json(metrics_path);
    std::cout << "\n# metrics written to " << metrics_path << '\n';
  }

  std::cout << "\nTry: --policy homogeneous (watch a handful of heavy hosts drown the"
               "\nconsole) and add --attack to see how much of the zombie's footprint"
               "\neach policy surfaces.\n";
  return 0;
}
