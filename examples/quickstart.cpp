// Quickstart: the library in ~80 lines.
//
// Builds a small enterprise population, learns per-host HIDS thresholds
// under the monoculture (homogeneous) and full-diversity policies, and
// prints each policy's impact on per-user false positives and detection —
// the paper's core contrast.
//
//   ./quickstart [--users N] [--seed S]
#include <iostream>

#include "hids/attacker.hpp"
#include "sim/experiments.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace monohids;

  util::CliFlags flags("monohids quickstart: monoculture vs diversity in 80 lines");
  flags.add_int("users", 60, "population size");
  flags.add_int("seed", 42, "master seed");
  if (!flags.parse(argc, argv)) return 0;

  // 1. Build a scenario: synthetic enterprise users + 5 weeks of per-host
  //    feature time series (15-minute bins, six features).
  sim::ScenarioConfig config;
  config.set_users(static_cast<std::uint32_t>(flags.get_int("users")));
  config.set_seed(static_cast<std::uint64_t>(flags.get_int("seed")));
  const sim::Scenario scenario = sim::build_scenario(config);
  std::cout << "built " << scenario.user_count() << " users x "
            << config.generator.weeks << " weeks\n\n";

  // 2. Learn thresholds on week 1, evaluate on week 2, for the
  //    num-TCP-connections feature under both policies.
  const auto feature = features::FeatureKind::TcpConnections;
  const auto train = hids::week_distributions(scenario.matrices, feature, 0);
  const auto test = hids::week_distributions(scenario.matrices, feature, 1);
  const auto attack = sim::make_attack_model(scenario, feature, 0);
  const hids::PercentileHeuristic heuristic(0.99);  // the IT favorite

  util::TextTable table({"policy", "min T", "median T", "max T", "alarms/wk",
                         "mean FP", "mean detection"});
  table.set_alignment({util::Align::Left, util::Align::Right, util::Align::Right,
                       util::Align::Right, util::Align::Right, util::Align::Right,
                       util::Align::Right});

  const hids::HomogeneousGrouper homogeneous;
  const hids::FullDiversityGrouper diversity;
  for (const hids::Grouper* grouper :
       {static_cast<const hids::Grouper*>(&homogeneous),
        static_cast<const hids::Grouper*>(&diversity)}) {
    const auto outcome = hids::evaluate_policy(train, test, *grouper, heuristic, attack);

    std::vector<double> thresholds;
    double fp = 0.0, fn = 0.0;
    for (const auto& u : outcome.users) {
      thresholds.push_back(u.threshold);
      fp += u.fp_rate;
      fn += u.fn_rate;
    }
    std::sort(thresholds.begin(), thresholds.end());
    const auto n = static_cast<double>(outcome.users.size());
    table.add_row({outcome.policy_name, util::fixed(thresholds.front(), 0),
                   util::fixed(thresholds[thresholds.size() / 2], 0),
                   util::fixed(thresholds.back(), 0),
                   std::to_string(outcome.total_false_alarms()), util::fixed(fp / n, 4),
                   util::fixed(1.0 - fn / n, 3)});
  }
  std::cout << table.render();

  std::cout << "\nThe monoculture hands every host the same threshold: light users"
               "\nlose detection, heavy users flood IT with false alarms. Diversity"
               "\npins each host's false-positive rate at ~1% and detects far more.\n";
  return 0;
}
