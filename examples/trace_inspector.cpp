// Trace inspector: the packet-level substrate end to end.
//
// Generates one user's packet trace for a day (windump-style), runs it
// through connection tracking and Bro-like feature extraction, prints flow
// statistics and the busiest bins, and round-trips the trace through the
// binary on-disk format. Demonstrates the full-fidelity path the
// statistical experiments are built on.
//
//   ./trace_inspector [--user ID] [--day D] [--save FILE] [--csv]
#include <fstream>
#include <iostream>
#include <sstream>

#include "features/pipeline.hpp"
#include "trace/generator.hpp"
#include "trace/population.hpp"
#include "trace/pcap.hpp"
#include "trace/trace_io.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace monohids;

  util::CliFlags flags("inspect one host's generated packet trace");
  flags.add_int("users", 50, "population size to draw the user from");
  flags.add_int("seed", 42, "master seed");
  flags.add_int("user", 7, "user id to inspect");
  flags.add_int("day", 1, "which day of week 1 to render (0 = Monday)");
  flags.add_string("save", "", "write the binary trace to this path");
  flags.add_string("pcap", "", "write a Wireshark-compatible pcap to this path");
  flags.add_bool("csv", false, "dump the first packets as CSV");
  if (!flags.parse(argc, argv)) return 0;

  trace::PopulationConfig pop;
  pop.user_count = static_cast<std::uint32_t>(flags.get_int("users"));
  pop.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  const auto users = trace::generate_population(pop);
  const auto user_id = static_cast<std::size_t>(flags.get_int("user"));
  if (user_id >= users.size()) {
    std::cerr << "user id out of range\n";
    return 1;
  }
  const trace::UserProfile& user = users[user_id];

  std::cout << "user " << user.user_id << " @ " << user.address.to_string()
            << "  archetype=" << trace::name_of(user.archetype)
            << "  intensity=" << util::fixed(user.intensity, 2)
            << (user.heavy_class ? "  [heavy]" : "") << '\n';

  const auto day = static_cast<util::Timestamp>(flags.get_int("day"));
  const trace::TraceGenerator generator{trace::GeneratorConfig{}};
  const auto packets = generator.generate_packets(user, day * util::kMicrosPerDay,
                                                  (day + 1) * util::kMicrosPerDay);
  std::cout << "rendered " << packets.size() << " packets for day " << day << "\n\n";

  // Run the real pipeline over the day.
  features::PipelineConfig pipeline_config;
  pipeline_config.horizon = 7 * util::kMicrosPerDay;
  const auto result = features::extract_features(user.address, packets, pipeline_config);

  std::cout << "flow table: " << result.flow_stats.flows_created << " flows ("
            << result.flow_stats.flows_ended_fin << " FIN, "
            << result.flow_stats.flows_ended_rst << " RST, "
            << result.flow_stats.flows_ended_timeout << " timeout, "
            << result.flow_stats.flows_ended_flush << " flushed at EOF), "
            << result.flow_stats.syn_packets << " raw SYNs\n\n";

  // Busiest bins per feature.
  util::TextTable table({"feature", "total (day)", "busiest bin", "value"});
  table.set_alignment({util::Align::Left, util::Align::Right, util::Align::Right,
                       util::Align::Right});
  const std::size_t first_bin = day * 96, last_bin = (day + 1) * 96;
  for (features::FeatureKind f : features::kAllFeatures) {
    const auto& series = result.matrix.of(f);
    double total = 0, best = 0;
    std::size_t best_bin = first_bin;
    for (std::size_t b = first_bin; b < last_bin; ++b) {
      total += series.at(b);
      if (series.at(b) > best) {
        best = series.at(b);
        best_bin = b;
      }
    }
    const double hour = util::hour_of_day(series.grid().bin_start(best_bin));
    std::ostringstream when;
    when << util::fixed(hour, 2) << "h";
    table.add_row({std::string(features::name_of(f)), util::fixed(total, 0), when.str(),
                   util::fixed(best, 0)});
  }
  std::cout << table.render();

  if (flags.get_bool("csv")) {
    std::cout << "\nfirst packets:\n";
    std::vector<net::PacketRecord> head(packets.begin(),
                                        packets.begin() + std::min<std::size_t>(
                                                              20, packets.size()));
    trace::write_packet_csv(std::cout, head);
  }

  if (const auto& path = flags.get_string("pcap"); !path.empty()) {
    std::ofstream out(path, std::ios::binary);
    trace::write_pcap(out, packets);
    std::cout << "\nwrote " << packets.size() << " packets to " << path
              << " (open it in Wireshark)\n";
  }

  if (const auto& path = flags.get_string("save"); !path.empty()) {
    std::ofstream out(path, std::ios::binary);
    trace::write_packet_trace(out, packets);
    std::cout << "\nwrote " << packets.size() << " packets to " << path << '\n';
    std::ifstream in(path, std::ios::binary);
    const auto restored = trace::read_packet_trace(in);
    std::cout << "round-trip check: " << (restored == packets ? "OK" : "MISMATCH")
              << '\n';
  }
  return 0;
}
