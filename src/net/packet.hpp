// Packet-level primitives: protocols, TCP flags, 5-tuples, packet records.
//
// The trace generator emits PacketRecords (the moral equivalent of the
// windump packet headers the paper collected on each laptop) and the feature
// pipeline consumes them through the flow table — features are computed from
// packets, not synthesized directly.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

#include "net/ipv4.hpp"
#include "util/sim_time.hpp"

namespace monohids::net {

/// Transport protocol (the subset the study's features need).
enum class Protocol : std::uint8_t { Tcp = 6, Udp = 17, Icmp = 1 };

[[nodiscard]] std::string to_string(Protocol p);

/// TCP header flags as a bitmask.
enum class TcpFlags : std::uint8_t {
  None = 0,
  Fin = 1 << 0,
  Syn = 1 << 1,
  Rst = 1 << 2,
  Psh = 1 << 3,
  Ack = 1 << 4,
};

[[nodiscard]] constexpr TcpFlags operator|(TcpFlags a, TcpFlags b) noexcept {
  return static_cast<TcpFlags>(static_cast<std::uint8_t>(a) | static_cast<std::uint8_t>(b));
}
[[nodiscard]] constexpr bool has_flag(TcpFlags flags, TcpFlags bit) noexcept {
  return (static_cast<std::uint8_t>(flags) & static_cast<std::uint8_t>(bit)) != 0;
}

/// Connection 5-tuple. Direction matters: src is the sender of the packet.
struct FiveTuple {
  Ipv4Address src_ip;
  Ipv4Address dst_ip;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  Protocol protocol = Protocol::Tcp;

  /// The same tuple viewed from the other direction.
  [[nodiscard]] FiveTuple reversed() const noexcept {
    return {dst_ip, src_ip, dst_port, src_port, protocol};
  }

  friend constexpr auto operator<=>(const FiveTuple&, const FiveTuple&) noexcept = default;
};

/// One captured packet header (the unit of the synthetic traces).
struct PacketRecord {
  util::Timestamp timestamp = 0;  ///< microseconds since trace start
  FiveTuple tuple;
  TcpFlags tcp_flags = TcpFlags::None;  ///< meaningful only for TCP
  std::uint16_t payload_bytes = 0;

  friend constexpr auto operator<=>(const PacketRecord&, const PacketRecord&) noexcept = default;
};

}  // namespace monohids::net

template <>
struct std::hash<monohids::net::FiveTuple> {
  std::size_t operator()(const monohids::net::FiveTuple& t) const noexcept {
    // 64-bit mix of the tuple fields (FNV-style multiply-xor chain).
    std::uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 0x100000001b3ULL;
    };
    mix(t.src_ip.value());
    mix(t.dst_ip.value());
    mix((std::uint64_t{t.src_port} << 24) | (std::uint64_t{t.dst_port} << 8) |
        static_cast<std::uint64_t>(t.protocol));
    return static_cast<std::size_t>(h);
  }
};
