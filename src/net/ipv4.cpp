#include "net/ipv4.hpp"

#include <charconv>

#include "util/error.hpp"

namespace monohids::net {

Ipv4Address Ipv4Address::parse(std::string_view text) {
  std::uint32_t value = 0;
  std::size_t pos = 0;
  for (int i = 0; i < 4; ++i) {
    if (i > 0) {
      MONOHIDS_ENSURE(pos < text.size() && text[pos] == '.',
                      "malformed IPv4 address: " + std::string(text));
      ++pos;
    }
    unsigned octet = 0;
    const auto* begin = text.data() + pos;
    const auto* end = text.data() + text.size();
    auto [ptr, ec] = std::from_chars(begin, end, octet);
    MONOHIDS_ENSURE(ec == std::errc{} && ptr != begin && octet <= 255,
                    "malformed IPv4 address: " + std::string(text));
    value = (value << 8) | octet;
    pos = static_cast<std::size_t>(ptr - text.data());
  }
  MONOHIDS_ENSURE(pos == text.size(), "trailing characters in IPv4 address: " + std::string(text));
  return Ipv4Address(value);
}

std::string Ipv4Address::to_string() const {
  std::string out;
  out.reserve(15);
  for (int i = 0; i < 4; ++i) {
    if (i > 0) out.push_back('.');
    out += std::to_string(octet(i));
  }
  return out;
}

Ipv4Prefix::Ipv4Prefix(Ipv4Address base, int length) : length_(length) {
  MONOHIDS_EXPECT(length >= 0 && length <= 32, "prefix length must be in [0,32]");
  base_ = Ipv4Address(base.value() & mask());
}

Ipv4Prefix Ipv4Prefix::parse(std::string_view text) {
  const auto slash = text.find('/');
  MONOHIDS_ENSURE(slash != std::string_view::npos, "prefix needs a '/': " + std::string(text));
  const Ipv4Address base = Ipv4Address::parse(text.substr(0, slash));
  int length = 0;
  const auto tail = text.substr(slash + 1);
  auto [ptr, ec] = std::from_chars(tail.data(), tail.data() + tail.size(), length);
  MONOHIDS_ENSURE(ec == std::errc{} && ptr == tail.data() + tail.size() && length >= 0 &&
                      length <= 32,
                  "malformed prefix length: " + std::string(text));
  return Ipv4Prefix(base, length);
}

std::uint32_t Ipv4Prefix::mask() const noexcept {
  return length_ == 0 ? 0 : ~std::uint32_t{0} << (32 - length_);
}

bool Ipv4Prefix::contains(Ipv4Address addr) const noexcept {
  return (addr.value() & mask()) == base_.value();
}

std::uint64_t Ipv4Prefix::size() const noexcept { return std::uint64_t{1} << (32 - length_); }

Ipv4Address Ipv4Prefix::address_at(std::uint64_t index) const {
  MONOHIDS_EXPECT(index < size(), "address index outside prefix");
  return Ipv4Address(base_.value() + static_cast<std::uint32_t>(index));
}

std::string Ipv4Prefix::to_string() const {
  return base_.to_string() + "/" + std::to_string(length_);
}

}  // namespace monohids::net
