#include "net/packet.hpp"

namespace monohids::net {

std::string to_string(Protocol p) {
  switch (p) {
    case Protocol::Tcp: return "tcp";
    case Protocol::Udp: return "udp";
    case Protocol::Icmp: return "icmp";
  }
  return "proto-" + std::to_string(static_cast<int>(p));
}

}  // namespace monohids::net
