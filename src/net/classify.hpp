// Application-service classification.
//
// The Table-1 features distinguish DNS, HTTP and generic TCP/UDP traffic;
// like Bro's default policy (and the commercial HIDS the paper cites), we
// classify flows by destination transport port.
#pragma once

#include "net/packet.hpp"

namespace monohids::net {

/// Well-known service ports used by the classifier and the trace generator.
namespace ports {
inline constexpr std::uint16_t kDns = 53;
inline constexpr std::uint16_t kHttp = 80;
inline constexpr std::uint16_t kHttps = 443;
inline constexpr std::uint16_t kHttpAlt = 8080;
inline constexpr std::uint16_t kSmtp = 25;
}  // namespace ports

/// Application service of a flow, derived from protocol + destination port.
enum class Service : std::uint8_t {
  Dns,        ///< UDP or TCP to port 53
  Http,       ///< TCP to port 80 (the paper's "TCP connections on port 80")
  Https,      ///< TCP to port 443
  Smtp,       ///< TCP to port 25 (Storm spam relays)
  OtherTcp,
  OtherUdp,
  OtherIcmp,
};

/// Defined inline: called once per connection Start in the feature pipeline.
[[nodiscard]] inline Service classify(const FiveTuple& tuple) noexcept {
  switch (tuple.protocol) {
    case Protocol::Tcp:
      switch (tuple.dst_port) {
        case ports::kDns: return Service::Dns;
        case ports::kHttp: return Service::Http;
        case ports::kHttps: return Service::Https;
        case ports::kSmtp: return Service::Smtp;
        default: return Service::OtherTcp;
      }
    case Protocol::Udp:
      return tuple.dst_port == ports::kDns ? Service::Dns : Service::OtherUdp;
    case Protocol::Icmp:
      return Service::OtherIcmp;
  }
  return Service::OtherTcp;
}

[[nodiscard]] std::string to_string(Service s);

}  // namespace monohids::net
