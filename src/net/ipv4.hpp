// IPv4 addresses and prefixes.
//
// The trace substrate addresses hosts the way the original study's packet
// headers did: end hosts live in an enterprise /16, servers and attack
// destinations live in public ranges. Addresses are value types over a
// host-order uint32.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace monohids::net {

/// An IPv4 address (host byte order internally).
class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  explicit constexpr Ipv4Address(std::uint32_t host_order) noexcept : value_(host_order) {}

  /// Builds from dotted octets, e.g. Ipv4Address::from_octets(10, 1, 2, 3).
  static constexpr Ipv4Address from_octets(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                                           std::uint8_t d) noexcept {
    return Ipv4Address((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
                       (std::uint32_t{c} << 8) | std::uint32_t{d});
  }

  /// Parses dotted-quad text; throws InputError on malformed input.
  static Ipv4Address parse(std::string_view text);

  [[nodiscard]] constexpr std::uint32_t value() const noexcept { return value_; }
  [[nodiscard]] constexpr std::uint8_t octet(int i) const noexcept {
    return static_cast<std::uint8_t>(value_ >> (8 * (3 - i)));
  }

  /// Dotted-quad rendering, e.g. "10.1.2.3".
  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(Ipv4Address, Ipv4Address) noexcept = default;

 private:
  std::uint32_t value_ = 0;
};

/// A CIDR prefix, e.g. 10.0.0.0/8.
class Ipv4Prefix {
 public:
  /// `length` in [0, 32]; host bits of `base` are masked off.
  Ipv4Prefix(Ipv4Address base, int length);

  /// Parses "a.b.c.d/len".
  static Ipv4Prefix parse(std::string_view text);

  [[nodiscard]] Ipv4Address base() const noexcept { return base_; }
  [[nodiscard]] int length() const noexcept { return length_; }
  [[nodiscard]] std::uint32_t mask() const noexcept;
  [[nodiscard]] bool contains(Ipv4Address addr) const noexcept;

  /// Number of addresses in the prefix (2^(32-len)), as uint64 to hold /0.
  [[nodiscard]] std::uint64_t size() const noexcept;

  /// The `index`-th address inside the prefix (index < size()).
  [[nodiscard]] Ipv4Address address_at(std::uint64_t index) const;

  [[nodiscard]] std::string to_string() const;

 private:
  Ipv4Address base_;
  int length_;
};

}  // namespace monohids::net

template <>
struct std::hash<monohids::net::Ipv4Address> {
  std::size_t operator()(monohids::net::Ipv4Address a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};
