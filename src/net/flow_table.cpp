#include "net/flow_table.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace monohids::net {

FlowTable::FlowTable(Ipv4Address monitored, FlowTableConfig config)
    : monitored_(monitored), config_(config) {
  MONOHIDS_EXPECT(config_.tcp_idle_timeout > 0 && config_.udp_idle_timeout > 0,
                  "idle timeouts must be positive");
}

void FlowTable::process(const PacketRecord& packet) {
  const FiveTuple& t = packet.tuple;
  MONOHIDS_EXPECT(t.src_ip == monitored_ || t.dst_ip == monitored_,
                  "packet does not involve the monitored host");
  MONOHIDS_EXPECT(packet.timestamp >= clock_, "packets must be time-ordered");
  clock_ = packet.timestamp;
  ++stats_.packets_processed;

  const bool is_tcp = t.protocol == Protocol::Tcp;
  const bool is_syn = is_tcp && has_flag(packet.tcp_flags, TcpFlags::Syn) &&
                      !has_flag(packet.tcp_flags, TcpFlags::Ack);
  if (is_syn) ++stats_.syn_packets;

  sweep(packet.timestamp);

  // Locate the flow under either orientation.
  auto it = flows_.find(t);
  bool from_initiator = true;
  if (it == flows_.end()) {
    it = flows_.find(t.reversed());
    from_initiator = false;
  }

  if (it == flows_.end()) {
    // New flow. For TCP we require a SYN to open a connection; stray non-SYN
    // TCP packets (e.g. late FINs of evicted flows) are counted but do not
    // create a connection Start.
    if (is_tcp && !is_syn) return;
    Flow flow;
    flow.first_seen = packet.timestamp;
    flow.last_seen = packet.timestamp;
    flow.packets = 1;
    flow.initiated_by_monitored = (t.src_ip == monitored_);
    flow.tcp_state = TcpState::SynSent;
    flows_.emplace(t, flow);
    ++stats_.flows_created;
    events_.push_back(FlowEvent{packet.timestamp, t, FlowEventKind::Start, FlowEndReason::None,
                                flow.initiated_by_monitored, 0});
    return;
  }

  Flow& flow = it->second;
  flow.last_seen = packet.timestamp;
  ++flow.packets;

  if (!is_tcp) return;

  if (has_flag(packet.tcp_flags, TcpFlags::Rst)) {
    const FiveTuple key = it->first;
    const Flow ended = flow;
    flows_.erase(it);
    ++stats_.flows_ended_rst;
    end_flow(key, ended, packet.timestamp, FlowEndReason::Rst);
    return;
  }

  if (flow.tcp_state == TcpState::SynSent && has_flag(packet.tcp_flags, TcpFlags::Ack)) {
    flow.tcp_state = TcpState::Established;
  }

  if (has_flag(packet.tcp_flags, TcpFlags::Fin)) {
    flow.tcp_state = TcpState::FinSeen;
    if (from_initiator) {
      flow.fin_from_initiator = true;
    } else {
      flow.fin_from_responder = true;
    }
    if (flow.fin_from_initiator && flow.fin_from_responder) {
      const FiveTuple key = it->first;
      const Flow ended = flow;
      flows_.erase(it);
      ++stats_.flows_ended_fin;
      end_flow(key, ended, packet.timestamp, FlowEndReason::Fin);
    }
  }
}

void FlowTable::advance_to(util::Timestamp now) {
  MONOHIDS_EXPECT(now >= clock_, "clock cannot move backwards");
  clock_ = now;
  sweep(now);
}

void FlowTable::flush(util::Timestamp now) {
  MONOHIDS_EXPECT(now >= clock_, "clock cannot move backwards");
  clock_ = now;
  for (const auto& [key, flow] : flows_) {
    ++stats_.flows_ended_flush;
    end_flow(key, flow, now, FlowEndReason::Flush);
  }
  flows_.clear();
}

void FlowTable::sweep(util::Timestamp now) {
  if (now - last_sweep_ < config_.sweep_interval) return;
  last_sweep_ = now;
  for (auto it = flows_.begin(); it != flows_.end();) {
    const util::Duration timeout = it->first.protocol == Protocol::Tcp
                                       ? config_.tcp_idle_timeout
                                       : config_.udp_idle_timeout;
    if (now - it->second.last_seen >= timeout) {
      ++stats_.flows_ended_timeout;
      end_flow(it->first, it->second, now, FlowEndReason::IdleTimeout);
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }
}

void FlowTable::end_flow(const FiveTuple& key, const Flow& flow, util::Timestamp at,
                         FlowEndReason reason) {
  events_.push_back(FlowEvent{at, key, FlowEventKind::End, reason,
                              flow.initiated_by_monitored, flow.packets});
}

std::vector<FlowEvent> FlowTable::drain_events() {
  std::vector<FlowEvent> out;
  out.swap(events_);
  return out;
}

}  // namespace monohids::net
