#include "net/flow_table.hpp"

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstring>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace monohids::net {

namespace {

/// Registry handles shared by every FlowTable (hundreds of tables run in a
/// parallel scenario build; they all fold into one process-wide series).
/// Values only arrive via publish_metrics() at flush, so contention is one
/// burst per table, not per packet.
struct FlowMetrics {
  obs::Counter packets;
  obs::Counter flows_created;
  obs::Counter ended_fin;
  obs::Counter ended_rst;
  obs::Counter ended_timeout;
  obs::Counter ended_flush;
  obs::Counter syn_packets;
  obs::Counter insert_probe_slots;
  obs::Counter sweeps_scan;
  obs::Counter sweeps_wheel;
  obs::Counter wheel_rearms;
  obs::Counter wheel_orphans;
  obs::Counter flushes;
  obs::Histogram peak_live;
};

FlowMetrics& flow_metrics() {
  auto& registry = obs::MetricsRegistry::global();
  static FlowMetrics m{
      registry.counter("flowtable.packets_total"),
      registry.counter("flowtable.flows_created_total"),
      registry.counter("flowtable.flows_ended_fin_total"),
      registry.counter("flowtable.flows_ended_rst_total"),
      registry.counter("flowtable.flows_ended_timeout_total"),
      registry.counter("flowtable.flows_ended_flush_total"),
      registry.counter("flowtable.syn_packets_total"),
      registry.counter("flowtable.insert_probe_slots_total"),
      registry.counter("flowtable.sweeps_scan_total"),
      registry.counter("flowtable.sweeps_wheel_total"),
      registry.counter("flowtable.wheel_rearms_total"),
      registry.counter("flowtable.wheel_orphans_total"),
      registry.counter("flowtable.flushes_total"),
      registry.histogram("flowtable.peak_live_flows", obs::pow2_buckets(24)),
  };
  return m;
}

/// Minimum slot-arena size. Linear probing wants slack even for tiny tables.
constexpr std::size_t kMinSlots = 16;

/// Largest arena swept by dense tag scan. Beyond this the scan would walk
/// too many empty slots per sweep, so expiry switches to the timing wheel.
constexpr std::size_t kScanSweepMaxSlots = 4096;

/// Grow when live * 4 > capacity * 3 (max load factor 0.75).
[[nodiscard]] constexpr bool over_load(std::size_t live, std::size_t capacity) noexcept {
  return live * 4 > capacity * 3;
}

[[nodiscard]] std::size_t next_pow2(std::size_t v, std::size_t floor) noexcept {
  std::size_t p = floor;
  while (p < v) p <<= 1;
  return p;
}

/// Slot tag: high hash bits, never zero (zero marks an empty slot).
[[nodiscard]] constexpr std::uint8_t tag_of(std::uint64_t hash) noexcept {
  return static_cast<std::uint8_t>((hash >> 56) | 0x80u);
}

}  // namespace

FlowTable::FlowTable(Ipv4Address monitored, FlowTableConfig config)
    : monitored_(monitored), config_(config) {
  MONOHIDS_EXPECT(config_.tcp_idle_timeout > 0 && config_.udp_idle_timeout > 0,
                  "idle timeouts must be positive");
  // expected_flows is a peak-occupancy hint; size so the hint fits under the
  // load-factor ceiling without ever regrowing.
  std::size_t capacity = kMinSlots;
  if (config_.expected_flows > 0) {
    capacity = next_pow2(config_.expected_flows * 4 / 3 + 1, kMinSlots);
  }
  tags_.assign(capacity, 0);
  keys_.resize(capacity);
  flows_.resize(capacity);
  mask_ = capacity - 1;

  // Wheel bucket width: at least the sweep cadence (a sweep then crosses at
  // most one bucket boundary), at least 1/1024 of the longest timeout (caps
  // the ring size), rounded up to a power of two so bucketing is a shift.
  const util::Duration max_timeout =
      std::max(config_.tcp_idle_timeout, config_.udp_idle_timeout);
  const auto want = static_cast<std::uint64_t>(std::max<util::Duration>(
      {config_.sweep_interval, max_timeout / 1024 + 1, 1}));
  wheel_shift_ = want > 1 ? static_cast<std::uint32_t>(std::bit_width(want - 1)) : 0;
  const std::size_t ring = next_pow2(
      (static_cast<std::uint64_t>(max_timeout) >> wheel_shift_) + 3, 4);
  wheel_.resize(ring);
  wheel_mask_ = ring - 1;
  wheel_active_ = capacity > kScanSweepMaxSlots;
}

namespace {

/// Tuple hash over its raw packed fields: one widening multiply (wyhash
/// style), measurably faster than the FNV chain in std::hash<FiveTuple>,
/// which stays as-is for containers that expect it.
[[nodiscard]] std::uint64_t hash_raw(std::uint64_t ips, std::uint32_t ports,
                                     std::uint8_t protocol) noexcept {
  const std::uint64_t a = ips ^ 0x9e3779b97f4a7c15ULL;
  const std::uint64_t b =
      ((std::uint64_t{ports} << 8) | std::uint64_t{protocol}) ^ 0xbf58476d1ce4e5b9ULL;
  const auto m = static_cast<unsigned __int128>(a) * b;
  return static_cast<std::uint64_t>(m) ^ static_cast<std::uint64_t>(m >> 64);
}

}  // namespace

std::uint64_t FlowTable::hash_of(const FiveTuple& key) noexcept {
  // Fields are loaded bytewise via memcpy so the struct's padding bytes
  // never leak into the hash.
  static_assert(sizeof(Ipv4Address) == 4 && offsetof(FiveTuple, dst_ip) == 4 &&
                offsetof(FiveTuple, src_port) == 8 && offsetof(FiveTuple, dst_port) == 10);
  std::uint64_t ips = 0;
  std::uint32_t ports = 0;
  std::memcpy(&ips, &key, 8);
  std::memcpy(&ports, &key.src_port, 4);
  return hash_raw(ips, ports, static_cast<std::uint8_t>(key.protocol));
}

std::size_t FlowTable::find_slot(const FiveTuple& key, std::uint64_t hash) const noexcept {
  std::size_t i = hash & mask_;
  const std::uint8_t tag = tag_of(hash);
  while (true) {
    const std::uint8_t t = tags_[i];
    if (t == tag && keys_[i] == key) return i;
    if (t == 0) return kNpos;
    i = (i + 1) & mask_;
  }
}

std::size_t FlowTable::insert_slot(const FiveTuple& key, std::uint64_t hash) {
  if (over_load(live_ + 1, tags_.size())) rehash(tags_.size() * 2);
  std::size_t i = hash & mask_;
  while (tags_[i] != 0) i = (i + 1) & mask_;
  if constexpr (obs::kEnabled) obs_accum_.insert_probe_slots += (i - (hash & mask_)) & mask_;
  tags_[i] = tag_of(hash);
  keys_[i] = key;
  ++live_;
  stats_.max_live_flows = std::max<std::uint64_t>(stats_.max_live_flows, live_);
  return i;
}

void FlowTable::erase_slot(std::size_t index) {
  // Backward-shift deletion: pull displaced entries into the hole so probe
  // chains stay contiguous with no tombstones.
  std::size_t hole = index;
  std::size_t i = index;
  tags_[hole] = 0;
  while (true) {
    i = (i + 1) & mask_;
    if (tags_[i] == 0) break;
    const std::size_t home = hash_of(keys_[i]) & mask_;
    // The entry at i may fill the hole only if its home does not lie in the
    // cyclic interval (hole, i] — otherwise moving it would break its chain.
    const std::size_t hole_dist = (i - hole) & mask_;
    const std::size_t home_dist = (i - home) & mask_;
    if (home_dist >= hole_dist) {
      tags_[hole] = tags_[i];
      keys_[hole] = keys_[i];
      flows_[hole] = flows_[i];
      tags_[i] = 0;
      hole = i;
    }
  }
  --live_;
}

void FlowTable::rehash(std::size_t new_capacity) {
  std::vector<std::uint8_t> old_tags;
  std::vector<FiveTuple> old_keys;
  std::vector<Flow> old_flows;
  old_tags.swap(tags_);
  old_keys.swap(keys_);
  old_flows.swap(flows_);
  tags_.assign(new_capacity, 0);
  keys_.resize(new_capacity);
  flows_.resize(new_capacity);
  mask_ = new_capacity - 1;
  for (std::size_t s = 0; s < old_tags.size(); ++s) {
    if (old_tags[s] == 0) continue;
    const std::uint64_t hash = hash_of(old_keys[s]);
    std::size_t i = hash & mask_;
    while (tags_[i] != 0) i = (i + 1) & mask_;
    tags_[i] = old_tags[s];
    keys_[i] = old_keys[s];
    flows_[i] = old_flows[s];
  }
  if (!wheel_active_ && new_capacity > kScanSweepMaxSlots) {
    // The arena outgrew the dense-scan sweep: switch to the wheel and arm
    // every live flow. Deadlines already due are clamped to the cursor's
    // bucket so the next sweep still visits them.
    wheel_active_ = true;
    cursor_ = bucket_of(clock_);
    for (std::size_t i = 0; i < tags_.size(); ++i) {
      if (tags_[i] != 0) {
        push_expiry(flows_[i].expiry_deadline, flows_[i].id, keys_[i], hash_of(keys_[i]));
      }
    }
  }
}

util::Duration FlowTable::timeout_for(Protocol protocol) const noexcept {
  return protocol == Protocol::Tcp ? config_.tcp_idle_timeout : config_.udp_idle_timeout;
}

void FlowTable::push_expiry(util::Timestamp deadline, std::uint64_t id, const FiveTuple& key,
                            std::uint64_t hash) {
  // max() guards the scan->wheel transition, where a flow's deadline can
  // already lie behind the cursor; everywhere else bucket_of(deadline) wins.
  const std::uint64_t bucket = std::max(bucket_of(deadline), cursor_);
  wheel_[bucket & wheel_mask_].push_back(ExpiryEntry{deadline, id, hash, key});
  ++wheel_entries_;
}

FlowTable::Probe FlowTable::make_probe(const PacketRecord& packet) const noexcept {
  // Canonicalize the packet's orientation so the flow lives under exactly one
  // key and the lookup is one hash + one probe (a flow matches packets in
  // both directions, so the canonical key must be a function of the
  // unordered endpoint pair — monitored host as source, with the rare
  // self-flow tie broken lexicographically). The selection is branchless on
  // the packed fields: packet direction is data-dependent, so branching on
  // it mispredicts on a large fraction of packets.
  const FiveTuple& t = packet.tuple;
  std::uint64_t ips = 0;
  std::uint32_t ports = 0;
  std::memcpy(&ips, &t, 8);
  std::memcpy(&ports, &t.src_port, 4);
  bool packet_is_canonical = t.src_ip == monitored_;
  if (t.src_ip == t.dst_ip) [[unlikely]] {
    // Self-flow: both orientations name the monitored host; tie-break
    // lexicographically so both directions agree on one canonical key.
    packet_is_canonical = (std::min(t, t.reversed()) == t);
  }
  const std::uint64_t c_ips = packet_is_canonical ? ips : (ips >> 32) | (ips << 32);
  const std::uint32_t c_ports = packet_is_canonical ? ports : (ports >> 16) | (ports << 16);
  Probe probe;
  probe.canon = t;
  std::memcpy(static_cast<void*>(&probe.canon), &c_ips, 8);
  std::memcpy(&probe.canon.src_port, &c_ports, 4);
  probe.hash = hash_raw(c_ips, c_ports, static_cast<std::uint8_t>(t.protocol));
  probe.packet_is_canonical = packet_is_canonical;
  return probe;
}

void FlowTable::process(const PacketRecord& packet) { process_one(packet, make_probe(packet)); }

void FlowTable::process_one(const PacketRecord& packet, const Probe& probe) {
  const FiveTuple& t = packet.tuple;
  MONOHIDS_EXPECT(t.src_ip == monitored_ || t.dst_ip == monitored_,
                  "packet does not involve the monitored host");
  MONOHIDS_EXPECT(packet.timestamp >= clock_, "packets must be time-ordered");
  clock_ = packet.timestamp;
  ++stats_.packets_processed;

  const std::uint8_t flags = static_cast<std::uint8_t>(packet.tcp_flags);
  const bool is_tcp = t.protocol == Protocol::Tcp;
  constexpr std::uint8_t kSynAck =
      static_cast<std::uint8_t>(TcpFlags::Syn) | static_cast<std::uint8_t>(TcpFlags::Ack);
  const bool is_syn = is_tcp && (flags & kSynAck) == static_cast<std::uint8_t>(TcpFlags::Syn);
  stats_.syn_packets += is_syn;

  if (packet.timestamp - last_sweep_ >= config_.sweep_interval) sweep(packet.timestamp);

  const bool packet_is_canonical = probe.packet_is_canonical;
  const FiveTuple& canon = probe.canon;
  const std::uint64_t hash = probe.hash;
  const std::size_t idx = find_slot(canon, hash);

  if (idx == kNpos) {
    // New flow. For TCP we require a SYN to open a connection; stray non-SYN
    // TCP packets (e.g. late FINs of evicted flows) are counted but do not
    // create a connection Start.
    if (is_tcp && !is_syn) return;
    const std::size_t slot = insert_slot(canon, hash);
    Flow& flow = flows_[slot];
    flow.first_seen = packet.timestamp;
    flow.last_seen = packet.timestamp;
    flow.expiry_deadline = packet.timestamp + timeout_for(t.protocol);
    flow.packets = 1;
    flow.id = ++stats_.flows_created;
    flow.initiated_by_monitored = (t.src_ip == monitored_);
    flow.initiator_is_canonical = packet_is_canonical;
    flow.tcp_state = TcpState::SynSent;
    flow.fin_from_initiator = false;
    flow.fin_from_responder = false;
    if (wheel_active_) push_expiry(flow.expiry_deadline, flow.id, canon, hash);
    events_.push_back(FlowEvent{packet.timestamp, t, FlowEventKind::Start,
                                FlowEndReason::None, flow.initiated_by_monitored, 0});
    return;
  }

  Flow& flow = flows_[idx];
  const bool from_initiator = (packet_is_canonical == flow.initiator_is_canonical);
  flow.last_seen = packet.timestamp;
  flow.expiry_deadline = packet.timestamp + timeout_for(t.protocol);
  ++flow.packets;

  if (!is_tcp) return;

  if (flags & static_cast<std::uint8_t>(TcpFlags::Rst)) {
    const FiveTuple key = initiator_tuple(keys_[idx], flow);
    const Flow ended = flow;
    erase_slot(idx);
    ++stats_.flows_ended_rst;
    end_flow(key, ended, packet.timestamp, FlowEndReason::Rst);
    return;
  }

  // The state/FIN updates are written as unconditional selects: which flags
  // a packet carries is data-dependent, so branching on them mispredicts.
  const bool ack = (flags & static_cast<std::uint8_t>(TcpFlags::Ack)) != 0;
  if (flow.tcp_state == TcpState::SynSent && ack) flow.tcp_state = TcpState::Established;

  const bool fin = (flags & static_cast<std::uint8_t>(TcpFlags::Fin)) != 0;
  flow.tcp_state = fin ? TcpState::FinSeen : flow.tcp_state;
  flow.fin_from_initiator = flow.fin_from_initiator || (fin && from_initiator);
  flow.fin_from_responder = flow.fin_from_responder || (fin && !from_initiator);
  if (flow.fin_from_initiator && flow.fin_from_responder) {
    const FiveTuple key = initiator_tuple(keys_[idx], flow);
    const Flow ended = flow;
    erase_slot(idx);
    ++stats_.flows_ended_fin;
    end_flow(key, ended, packet.timestamp, FlowEndReason::Fin);
  }
}

#if defined(__GNUC__)
[[gnu::flatten]]
#endif
void FlowTable::process_batch(std::span<const PacketRecord> batch) {
  // Two regimes, switched on arena size (it can change mid-batch):
  //   - small arena (dense-scan sweep sizes): everything is cache-resident,
  //     so the straight fused loop wins — no stash traffic, full inlining;
  //   - large arena: probes (canonical key + hash) are pure in the packet,
  //     so compute a group ahead and prefetch each packet's home slot before
  //     the serial pass; without this every find_slot eats the L2/L3 miss
  //     latency serially. Preceding table mutations may shift a probed slot
  //     (rehash, backward-shift); the prefetch is a hint, find_slot decides.
  constexpr std::size_t kGroup = 16;
  Probe probes[kGroup];
  std::size_t at = 0;
  while (at < batch.size()) {
    if (tags_.size() <= kScanSweepMaxSlots) {
      process_one(batch[at], make_probe(batch[at]));
      ++at;
      continue;
    }
    const std::size_t n = std::min(kGroup, batch.size() - at);
    for (std::size_t j = 0; j < n; ++j) {
      const Probe probe = make_probe(batch[at + j]);
      const std::size_t home = probe.hash & mask_;
      __builtin_prefetch(&tags_[home]);
      __builtin_prefetch(&keys_[home]);
      __builtin_prefetch(&flows_[home]);
      probes[j] = probe;
    }
    for (std::size_t j = 0; j < n; ++j) process_one(batch[at + j], probes[j]);
    at += n;
  }
}

void FlowTable::advance_to(util::Timestamp now) {
  MONOHIDS_EXPECT(now >= clock_, "clock cannot move backwards");
  clock_ = now;
  sweep(now);
}

void FlowTable::flush(util::Timestamp now) {
  MONOHIDS_EXPECT(now >= clock_, "clock cannot move backwards");
  clock_ = now;
  ended_scratch_.clear();
  for (std::size_t i = 0; i < tags_.size(); ++i) {
    if (tags_[i] != 0) {
      ended_scratch_.emplace_back(initiator_tuple(keys_[i], flows_[i]), flows_[i]);
    }
  }
  // All flush events carry the same timestamp; ascending tuple order keeps
  // the emission deterministic regardless of slot layout.
  std::sort(ended_scratch_.begin(), ended_scratch_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [key, flow] : ended_scratch_) {
    ++stats_.flows_ended_flush;
    end_flow(key, flow, now, FlowEndReason::Flush);
  }
  std::fill(tags_.begin(), tags_.end(), std::uint8_t{0});
  live_ = 0;
  for (auto& bucket : wheel_) bucket.clear();
  wheel_entries_ = 0;
  cursor_ = bucket_of(now);
  publish_metrics();
}

void FlowTable::publish_metrics() {
  if constexpr (!obs::kEnabled) return;
  FlowMetrics& m = flow_metrics();
  m.packets.add(stats_.packets_processed - stats_published_.packets_processed);
  m.flows_created.add(stats_.flows_created - stats_published_.flows_created);
  m.ended_fin.add(stats_.flows_ended_fin - stats_published_.flows_ended_fin);
  m.ended_rst.add(stats_.flows_ended_rst - stats_published_.flows_ended_rst);
  m.ended_timeout.add(stats_.flows_ended_timeout - stats_published_.flows_ended_timeout);
  m.ended_flush.add(stats_.flows_ended_flush - stats_published_.flows_ended_flush);
  m.syn_packets.add(stats_.syn_packets - stats_published_.syn_packets);
  m.insert_probe_slots.add(obs_accum_.insert_probe_slots -
                           obs_published_.insert_probe_slots);
  m.sweeps_scan.add(obs_accum_.sweeps_scan - obs_published_.sweeps_scan);
  m.sweeps_wheel.add(obs_accum_.sweeps_wheel - obs_published_.sweeps_wheel);
  m.wheel_rearms.add(obs_accum_.wheel_rearms - obs_published_.wheel_rearms);
  m.wheel_orphans.add(obs_accum_.wheel_orphans - obs_published_.wheel_orphans);
  m.flushes.inc();
  m.peak_live.observe(static_cast<double>(stats_.max_live_flows));
  stats_published_ = stats_;
  obs_published_ = obs_accum_;
}

void FlowTable::sweep(util::Timestamp now) {
  if (now - last_sweep_ < config_.sweep_interval) return;
  last_sweep_ = now;
  if (wheel_active_) {
    sweep_wheel(now);
  } else {
    sweep_scan(now);
  }
}

void FlowTable::sweep_scan(util::Timestamp now) {
  if constexpr (obs::kEnabled) ++obs_accum_.sweeps_scan;
  if (live_ == 0) return;
  ended_scratch_.clear();
  expired_keys_.clear();
  // Dense tag scan, eight slots per load; only occupied slots (high tag bit
  // set) have their flow deadline checked. The whole tag array is a few
  // cache lines at this arena size, so this beats per-flow expiry entries.
  constexpr std::uint64_t kOccupied = 0x8080808080808080ULL;
  const std::size_t words = tags_.size() / 8;
  for (std::size_t w = 0; w < words; ++w) {
    std::uint64_t word;
    std::memcpy(&word, tags_.data() + w * 8, 8);
    word &= kOccupied;
    while (word != 0) {
      const std::size_t i = w * 8 + static_cast<std::size_t>(std::countr_zero(word)) / 8;
      word &= word - 1;
      const Flow& flow = flows_[i];
      if (flow.expiry_deadline <= now) {
        ended_scratch_.emplace_back(initiator_tuple(keys_[i], flow), flow);
        expired_keys_.push_back(keys_[i]);
      }
    }
  }
  // Erase after the scan: backward-shift deletion moves slots around, so
  // erasing mid-scan could revisit or skip entries.
  for (const FiveTuple& key : expired_keys_) erase_slot(find_slot(key));
  emit_timeouts(now);
}

void FlowTable::sweep_wheel(util::Timestamp now) {
  if constexpr (obs::kEnabled) ++obs_accum_.sweeps_wheel;
  const std::uint64_t target = bucket_of(now);
  if (wheel_entries_ == 0) {
    cursor_ = target;
    return;
  }

  ended_scratch_.clear();
  // Wheel entries sit cold in their buckets while their flows' slots may be
  // anywhere in the arena; prefetching a few entries ahead (stored hash →
  // home slot) overlaps those misses with the serial resolve pass.
  constexpr std::size_t kAhead = 8;
  const auto prefetch_entry = [&](const ExpiryEntry& entry) {
    const std::size_t home = entry.hash & mask_;
    __builtin_prefetch(&tags_[home]);
    __builtin_prefetch(&keys_[home]);
    __builtin_prefetch(&flows_[home]);
  };
  // Resolves one wheel entry against the table. Returns true when the entry
  // leaves its bucket: the flow is gone (orphan entry), expires now, or (if
  // `rearm`) was pushed to the bucket of its advanced deadline.
  const auto resolve = [&](const ExpiryEntry& entry, bool rearm) -> bool {
    const std::size_t idx = find_slot(entry.key, entry.hash);
    if (idx == kNpos || flows_[idx].id != entry.id) {
      if constexpr (obs::kEnabled) ++obs_accum_.wheel_orphans;
      return true;  // flow already gone
    }
    Flow& flow = flows_[idx];
    if (flow.expiry_deadline <= now) {
      // now - last_seen >= timeout: the flow idles out in this sweep.
      ended_scratch_.emplace_back(initiator_tuple(keys_[idx], flow), flow);
      erase_slot(idx);
      return true;
    }
    // The flow saw traffic since this entry was armed; its deadline moved to
    // a strictly future bucket.
    if (rearm) {
      if constexpr (obs::kEnabled) ++obs_accum_.wheel_rearms;
      push_expiry(flow.expiry_deadline, flow.id, entry.key, entry.hash);
    }
    return rearm;
  };
  // Compacts a bucket in place, keeping entries whose flows are still live.
  const auto resolve_in_place = [&](std::vector<ExpiryEntry>& bucket) {
    std::size_t keep = 0;
    for (std::size_t j = 0; j < bucket.size(); ++j) {
      if (j + kAhead < bucket.size()) prefetch_entry(bucket[j + kAhead]);
      const ExpiryEntry entry = bucket[j];
      if (!resolve(entry, /*rearm=*/false)) bucket[keep++] = entry;
    }
    wheel_entries_ -= bucket.size() - keep;
    bucket.resize(keep);
  };

  if (target - cursor_ > wheel_mask_) {
    // Idle gap longer than the wheel span. No sweep ran for over the longest
    // timeout, so every armed deadline is already due; one pass over the
    // ring resolves everything without the cursor walking the gap.
    for (auto& bucket : wheel_) resolve_in_place(bucket);
  } else {
    for (; cursor_ < target; ++cursor_) {
      auto& bucket = wheel_[cursor_ & wheel_mask_];
      // A rearm can alias back into this very bucket when the walk gap plus
      // the timeout spans the ring, so only the first `n` entries belong to
      // this pass — appended ones wait a full revolution (entries are copied
      // out because push_expiry may reallocate the bucket mid-walk).
      const std::size_t n = bucket.size();
      for (std::size_t j = 0; j < n; ++j) {
        if (j + kAhead < n) prefetch_entry(bucket[j + kAhead]);
        const ExpiryEntry entry = bucket[j];
        resolve(entry, /*rearm=*/true);
      }
      wheel_entries_ -= n;
      bucket.erase(bucket.begin(), bucket.begin() + static_cast<std::ptrdiff_t>(n));
    }
    // The bucket containing `now` may hold deadlines still in the future;
    // compact it in place and leave the cursor on it for the next sweep.
    resolve_in_place(wheel_[target & wheel_mask_]);
  }
  cursor_ = target;
  emit_timeouts(now);
}

void FlowTable::emit_timeouts(util::Timestamp now) {
  // Deterministic emission: (expiry deadline, tuple), never wheel/hash order.
  std::sort(ended_scratch_.begin(), ended_scratch_.end(),
            [](const auto& a, const auto& b) {
              if (a.second.expiry_deadline != b.second.expiry_deadline) {
                return a.second.expiry_deadline < b.second.expiry_deadline;
              }
              return a.first < b.first;
            });
  for (const auto& [key, flow] : ended_scratch_) {
    ++stats_.flows_ended_timeout;
    end_flow(key, flow, now, FlowEndReason::IdleTimeout);
  }
}

void FlowTable::end_flow(const FiveTuple& key, const Flow& flow, util::Timestamp at,
                         FlowEndReason reason) {
  events_.push_back(FlowEvent{at, key, FlowEventKind::End, reason,
                              flow.initiated_by_monitored, flow.packets});
}

std::vector<FlowEvent> FlowTable::drain_events() {
  std::vector<FlowEvent> out;
  out.swap(events_);
  return out;
}

}  // namespace monohids::net
