#include "net/classify.hpp"

namespace monohids::net {

std::string to_string(Service s) {
  switch (s) {
    case Service::Dns: return "dns";
    case Service::Http: return "http";
    case Service::Https: return "https";
    case Service::Smtp: return "smtp";
    case Service::OtherTcp: return "other-tcp";
    case Service::OtherUdp: return "other-udp";
    case Service::OtherIcmp: return "other-icmp";
  }
  return "unknown";
}

}  // namespace monohids::net
