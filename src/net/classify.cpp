#include "net/classify.hpp"

namespace monohids::net {

Service classify(const FiveTuple& tuple) noexcept {
  switch (tuple.protocol) {
    case Protocol::Tcp:
      switch (tuple.dst_port) {
        case ports::kDns: return Service::Dns;
        case ports::kHttp: return Service::Http;
        case ports::kHttps: return Service::Https;
        case ports::kSmtp: return Service::Smtp;
        default: return Service::OtherTcp;
      }
    case Protocol::Udp:
      return tuple.dst_port == ports::kDns ? Service::Dns : Service::OtherUdp;
    case Protocol::Icmp:
      return Service::OtherIcmp;
  }
  return Service::OtherTcp;
}

std::string to_string(Service s) {
  switch (s) {
    case Service::Dns: return "dns";
    case Service::Http: return "http";
    case Service::Https: return "https";
    case Service::Smtp: return "smtp";
    case Service::OtherTcp: return "other-tcp";
    case Service::OtherUdp: return "other-udp";
    case Service::OtherIcmp: return "other-icmp";
  }
  return "unknown";
}

}  // namespace monohids::net
