#include "net/flow_table_ref.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace monohids::net {

ReferenceFlowTable::ReferenceFlowTable(Ipv4Address monitored, FlowTableConfig config)
    : monitored_(monitored), config_(config) {
  MONOHIDS_EXPECT(config_.tcp_idle_timeout > 0 && config_.udp_idle_timeout > 0,
                  "idle timeouts must be positive");
  if (config_.expected_flows > 0) flows_.reserve(config_.expected_flows);
}

void ReferenceFlowTable::process(const PacketRecord& packet) {
  const FiveTuple& t = packet.tuple;
  MONOHIDS_EXPECT(t.src_ip == monitored_ || t.dst_ip == monitored_,
                  "packet does not involve the monitored host");
  MONOHIDS_EXPECT(packet.timestamp >= clock_, "packets must be time-ordered");
  clock_ = packet.timestamp;
  ++stats_.packets_processed;

  const bool is_tcp = t.protocol == Protocol::Tcp;
  const bool is_syn = is_tcp && has_flag(packet.tcp_flags, TcpFlags::Syn) &&
                      !has_flag(packet.tcp_flags, TcpFlags::Ack);
  if (is_syn) ++stats_.syn_packets;

  sweep(packet.timestamp);

  auto it = flows_.find(t);
  bool from_initiator = true;
  if (it == flows_.end()) {
    it = flows_.find(t.reversed());
    from_initiator = false;
  }

  if (it == flows_.end()) {
    if (is_tcp && !is_syn) return;
    Flow flow;
    flow.first_seen = packet.timestamp;
    flow.last_seen = packet.timestamp;
    flow.packets = 1;
    flow.initiated_by_monitored = (t.src_ip == monitored_);
    flow.tcp_state = TcpState::SynSent;
    flows_.emplace(t, flow);
    ++stats_.flows_created;
    stats_.max_live_flows = std::max<std::uint64_t>(stats_.max_live_flows, flows_.size());
    events_.push_back(FlowEvent{packet.timestamp, t, FlowEventKind::Start,
                                FlowEndReason::None, flow.initiated_by_monitored, 0});
    return;
  }

  Flow& flow = it->second;
  flow.last_seen = packet.timestamp;
  ++flow.packets;

  if (!is_tcp) return;

  if (has_flag(packet.tcp_flags, TcpFlags::Rst)) {
    const FiveTuple key = it->first;
    const Flow ended = flow;
    flows_.erase(it);
    ++stats_.flows_ended_rst;
    end_flow(key, ended, packet.timestamp, FlowEndReason::Rst);
    return;
  }

  if (flow.tcp_state == TcpState::SynSent && has_flag(packet.tcp_flags, TcpFlags::Ack)) {
    flow.tcp_state = TcpState::Established;
  }

  if (has_flag(packet.tcp_flags, TcpFlags::Fin)) {
    flow.tcp_state = TcpState::FinSeen;
    if (from_initiator) {
      flow.fin_from_initiator = true;
    } else {
      flow.fin_from_responder = true;
    }
    if (flow.fin_from_initiator && flow.fin_from_responder) {
      const FiveTuple key = it->first;
      const Flow ended = flow;
      flows_.erase(it);
      ++stats_.flows_ended_fin;
      end_flow(key, ended, packet.timestamp, FlowEndReason::Fin);
    }
  }
}

void ReferenceFlowTable::advance_to(util::Timestamp now) {
  MONOHIDS_EXPECT(now >= clock_, "clock cannot move backwards");
  clock_ = now;
  sweep(now);
}

void ReferenceFlowTable::flush(util::Timestamp now) {
  MONOHIDS_EXPECT(now >= clock_, "clock cannot move backwards");
  clock_ = now;
  std::vector<std::pair<FiveTuple, Flow>> ended(flows_.begin(), flows_.end());
  std::sort(ended.begin(), ended.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [key, flow] : ended) {
    ++stats_.flows_ended_flush;
    end_flow(key, flow, now, FlowEndReason::Flush);
  }
  flows_.clear();
}

void ReferenceFlowTable::sweep(util::Timestamp now) {
  if (now - last_sweep_ < config_.sweep_interval) return;
  last_sweep_ = now;
  // The O(all flows) rescan the open-addressing table's expiry heap replaces.
  std::vector<std::pair<FiveTuple, Flow>> expired;
  std::vector<util::Timestamp> deadlines;
  for (auto it = flows_.begin(); it != flows_.end();) {
    const util::Duration timeout = it->first.protocol == Protocol::Tcp
                                       ? config_.tcp_idle_timeout
                                       : config_.udp_idle_timeout;
    if (now - it->second.last_seen >= timeout) {
      expired.emplace_back(it->first, it->second);
      deadlines.push_back(it->second.last_seen + timeout);
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }
  // Match FlowTable: (expiry deadline, tuple) order, not map iteration order.
  std::vector<std::size_t> order(expired.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (deadlines[a] != deadlines[b]) return deadlines[a] < deadlines[b];
    return expired[a].first < expired[b].first;
  });
  for (std::size_t i : order) {
    ++stats_.flows_ended_timeout;
    end_flow(expired[i].first, expired[i].second, now, FlowEndReason::IdleTimeout);
  }
}

void ReferenceFlowTable::end_flow(const FiveTuple& key, const Flow& flow, util::Timestamp at,
                                  FlowEndReason reason) {
  events_.push_back(FlowEvent{at, key, FlowEventKind::End, reason,
                              flow.initiated_by_monitored, flow.packets});
}

std::vector<FlowEvent> ReferenceFlowTable::drain_events() {
  std::vector<FlowEvent> out;
  out.swap(events_);
  return out;
}

}  // namespace monohids::net
