// Connection tracking.
//
// Bro turns packets into connections before any feature is counted; this
// flow table is our equivalent. It consumes a time-ordered packet stream
// observed at one end host and emits FlowEvents:
//   - Start: a new connection attempt was initiated (TCP SYN creating a new
//     flow, or the first packet of a new UDP/ICMP flow),
//   - End: the flow terminated (TCP FIN/RST or idle timeout).
// The six study features are all counters over Start events plus raw SYN
// packets, so correctness here decides feature fidelity.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/packet.hpp"

namespace monohids::net {

enum class FlowEventKind : std::uint8_t { Start, End };

/// Why a flow ended (meaningful for End events). Flush marks flows closed
/// administratively at end-of-trace — they never idled out on their own,
/// so they are accounted separately from IdleTimeout.
enum class FlowEndReason : std::uint8_t { None, Fin, Rst, IdleTimeout, Flush };

struct FlowEvent {
  util::Timestamp timestamp = 0;
  FiveTuple tuple;  ///< oriented from the initiator
  FlowEventKind kind = FlowEventKind::Start;
  FlowEndReason end_reason = FlowEndReason::None;
  bool initiated_by_monitored_host = false;
  std::uint64_t packets = 0;  ///< total packets (both directions), End only
};

struct FlowTableConfig {
  util::Duration tcp_idle_timeout = 5 * util::kMicrosPerMinute;
  util::Duration udp_idle_timeout = 1 * util::kMicrosPerMinute;
  /// How often expired flows are swept, in simulated time.
  util::Duration sweep_interval = 30 * util::kMicrosPerSecond;
};

struct FlowTableStats {
  std::uint64_t packets_processed = 0;
  std::uint64_t flows_created = 0;
  std::uint64_t flows_ended_fin = 0;
  std::uint64_t flows_ended_rst = 0;
  std::uint64_t flows_ended_timeout = 0;  ///< idle-timeout expiries only
  std::uint64_t flows_ended_flush = 0;    ///< closed by flush() at trace EOF
  std::uint64_t syn_packets = 0;  ///< raw SYN (non-SYN/ACK) packets seen
};

/// Tracks flows for a single monitored host.
class FlowTable {
 public:
  /// `monitored` is the end host whose HIDS this table serves; packets where
  /// neither endpoint is `monitored` are rejected (PreconditionError).
  FlowTable(Ipv4Address monitored, FlowTableConfig config = {});

  /// Processes one packet. Packets must be fed in non-decreasing timestamp
  /// order. Generated events accumulate until drain_events().
  void process(const PacketRecord& packet);

  /// Advances the clock without a packet (e.g. to the end of the trace) so
  /// idle flows time out.
  void advance_to(util::Timestamp now);

  /// Ends every remaining flow (trace EOF) with Flush reason; counted in
  /// stats().flows_ended_flush, not the idle-timeout stat.
  void flush(util::Timestamp now);

  /// Moves out accumulated events (in emission order) and clears the buffer.
  [[nodiscard]] std::vector<FlowEvent> drain_events();

  [[nodiscard]] const FlowTableStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t active_flows() const noexcept { return flows_.size(); }
  [[nodiscard]] Ipv4Address monitored() const noexcept { return monitored_; }

 private:
  enum class TcpState : std::uint8_t { SynSent, Established, FinSeen };

  struct Flow {
    util::Timestamp first_seen = 0;
    util::Timestamp last_seen = 0;
    std::uint64_t packets = 0;
    bool initiated_by_monitored = false;
    TcpState tcp_state = TcpState::SynSent;  // TCP only
    bool fin_from_initiator = false;
    bool fin_from_responder = false;
  };

  void sweep(util::Timestamp now);
  void end_flow(const FiveTuple& key, const Flow& flow, util::Timestamp at,
                FlowEndReason reason);

  Ipv4Address monitored_;
  FlowTableConfig config_;
  std::unordered_map<FiveTuple, Flow> flows_;  // keyed by initiator-oriented tuple
  std::vector<FlowEvent> events_;
  FlowTableStats stats_;
  util::Timestamp last_sweep_ = 0;
  util::Timestamp clock_ = 0;
};

}  // namespace monohids::net
