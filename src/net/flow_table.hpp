// Connection tracking.
//
// Bro turns packets into connections before any feature is counted; this
// flow table is our equivalent. It consumes a time-ordered packet stream
// observed at one end host and emits FlowEvents:
//   - Start: a new connection attempt was initiated (TCP SYN creating a new
//     flow, or the first packet of a new UDP/ICMP flow),
//   - End: the flow terminated (TCP FIN/RST or idle timeout).
// The six study features are all counters over Start events plus raw SYN
// packets, so correctness here decides feature fidelity.
//
// Internals are built for the streaming ingest hot loop: flows live in an
// open-addressing, linear-probing slot arena (contiguous tag/key/flow
// arrays, backward-shift deletion, no per-flow node allocations; probes
// scan a one-byte tag array so misses rarely touch key storage), and idle
// expiry is driven by a timing wheel of (deadline, flow) entries so arming
// is O(1) and a sweep visits only buckets that are actually due instead of
// rescanning the whole table. Timeout and
// flush End events are emitted in a deterministic (expiry deadline, tuple)
// order that is independent of hash or insertion order; net::ReferenceFlowTable
// (flow_table_ref.hpp) preserves the original std::unordered_map
// implementation as the differential-testing baseline.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/packet.hpp"

namespace monohids::net {

enum class FlowEventKind : std::uint8_t { Start, End };

/// Why a flow ended (meaningful for End events). Flush marks flows closed
/// administratively at end-of-trace — they never idled out on their own,
/// so they are accounted separately from IdleTimeout.
enum class FlowEndReason : std::uint8_t { None, Fin, Rst, IdleTimeout, Flush };

struct FlowEvent {
  util::Timestamp timestamp = 0;
  FiveTuple tuple;  ///< oriented from the initiator
  FlowEventKind kind = FlowEventKind::Start;
  FlowEndReason end_reason = FlowEndReason::None;
  bool initiated_by_monitored_host = false;
  std::uint64_t packets = 0;  ///< total packets (both directions), End only

  friend constexpr bool operator==(const FlowEvent&, const FlowEvent&) noexcept = default;
};

struct FlowTableConfig {
  util::Duration tcp_idle_timeout = 5 * util::kMicrosPerMinute;
  util::Duration udp_idle_timeout = 1 * util::kMicrosPerMinute;
  /// How often expired flows are swept, in simulated time.
  util::Duration sweep_interval = 30 * util::kMicrosPerSecond;
  /// Pre-sizing hint: expected peak live-flow count. The slot arena is
  /// reserved up front so no rehash/regrow storm happens mid-trace; 0 keeps
  /// the small default initial table (current behavior).
  std::size_t expected_flows = 0;
};

struct FlowTableStats {
  std::uint64_t packets_processed = 0;
  std::uint64_t flows_created = 0;
  std::uint64_t flows_ended_fin = 0;
  std::uint64_t flows_ended_rst = 0;
  std::uint64_t flows_ended_timeout = 0;  ///< idle-timeout expiries only
  std::uint64_t flows_ended_flush = 0;    ///< closed by flush() at trace EOF
  std::uint64_t syn_packets = 0;   ///< raw SYN (non-SYN/ACK) packets seen
  std::uint64_t max_live_flows = 0;  ///< peak concurrent flows (occupancy)

  friend constexpr bool operator==(const FlowTableStats&,
                                   const FlowTableStats&) noexcept = default;
};

/// Tracks flows for a single monitored host.
class FlowTable {
 public:
  /// `monitored` is the end host whose HIDS this table serves; packets where
  /// neither endpoint is `monitored` are rejected (PreconditionError).
  FlowTable(Ipv4Address monitored, FlowTableConfig config = {});

  /// Processes one packet. Packets must be fed in non-decreasing timestamp
  /// order. Generated events accumulate until drain_events()/clear_events().
  void process(const PacketRecord& packet);

  /// Processes a time-ordered batch. Equivalent to calling process() per
  /// packet, but the loop lives inside the flow table's translation unit so
  /// the hot path inlines (this is the streaming ingest entry point).
  void process_batch(std::span<const PacketRecord> batch);

  /// Advances the clock without a packet (e.g. to the end of the trace) so
  /// idle flows time out.
  void advance_to(util::Timestamp now);

  /// Ends every remaining flow (trace EOF) with Flush reason; counted in
  /// stats().flows_ended_flush, not the idle-timeout stat. Events are
  /// emitted in ascending tuple order (deterministic).
  void flush(util::Timestamp now);

  /// Moves out accumulated events (in emission order) and clears the buffer.
  [[nodiscard]] std::vector<FlowEvent> drain_events();

  /// Zero-copy view of the accumulated events; pair with clear_events() to
  /// consume without per-packet vector churn (the streaming hot loop).
  [[nodiscard]] std::span<const FlowEvent> pending_events() const noexcept { return events_; }

  /// Clears the event buffer, keeping its capacity.
  void clear_events() noexcept { events_.clear(); }

  [[nodiscard]] const FlowTableStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t active_flows() const noexcept { return live_; }
  /// Current slot-arena size (power of two); exposed for occupancy tests.
  [[nodiscard]] std::size_t slot_capacity() const noexcept { return tags_.size(); }
  [[nodiscard]] Ipv4Address monitored() const noexcept { return monitored_; }

 private:
  enum class TcpState : std::uint8_t { SynSent, Established, FinSeen };

  struct Flow {
    util::Timestamp first_seen = 0;
    util::Timestamp last_seen = 0;
    util::Timestamp expiry_deadline = 0;  ///< last_seen + per-protocol timeout
    std::uint64_t packets = 0;
    std::uint64_t id = 0;  ///< creation ordinal; pairs wheel entries to flows
    bool initiated_by_monitored = false;
    /// True when the initiator sent the canonical orientation (see keys_);
    /// reconstructs the initiator-oriented tuple for End events.
    bool initiator_is_canonical = true;
    TcpState tcp_state = TcpState::SynSent;  // TCP only
    bool fin_from_initiator = false;
    bool fin_from_responder = false;
  };

  /// Lazy expiry-wheel entry: one live entry per flow, re-armed when the
  /// flow's deadline moved past the entry's (packets only bump the cached
  /// deadline; the wheel is touched again only when the stale entry is
  /// visited in its original bucket).
  struct ExpiryEntry {
    util::Timestamp deadline = 0;
    std::uint64_t id = 0;
    std::uint64_t hash = 0;  ///< hash_of(key), kept so sweeps can prefetch
    FiveTuple key;           ///< canonical orientation
  };

  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

  /// Precomputed canonical orientation + hash of one packet's tuple. Pure in
  /// the packet (table-independent), so process_batch can compute a group of
  /// probes ahead and prefetch their slots before the serial per-packet pass.
  struct Probe {
    FiveTuple canon;
    std::uint64_t hash = 0;
    bool packet_is_canonical = true;
  };

  [[nodiscard]] Probe make_probe(const PacketRecord& packet) const noexcept;
  void process_one(const PacketRecord& packet, const Probe& probe);

  [[nodiscard]] static std::uint64_t hash_of(const FiveTuple& key) noexcept;
  [[nodiscard]] std::size_t find_slot(const FiveTuple& key, std::uint64_t hash) const noexcept;
  [[nodiscard]] std::size_t find_slot(const FiveTuple& key) const noexcept {
    return find_slot(key, hash_of(key));
  }
  /// Inserts `key` (must be absent) and returns its slot index.
  std::size_t insert_slot(const FiveTuple& key, std::uint64_t hash);
  /// Backward-shift deletion: erases slot `index` without tombstones.
  void erase_slot(std::size_t index);
  void rehash(std::size_t new_capacity);

  [[nodiscard]] util::Duration timeout_for(Protocol protocol) const noexcept;
  [[nodiscard]] std::uint64_t bucket_of(util::Timestamp at) const noexcept {
    return static_cast<std::uint64_t>(at) >> wheel_shift_;
  }
  /// Reconstructs the initiator-oriented tuple from a stored canonical key.
  [[nodiscard]] static FiveTuple initiator_tuple(const FiveTuple& key, const Flow& flow) {
    return flow.initiator_is_canonical ? key : key.reversed();
  }
  void push_expiry(util::Timestamp deadline, std::uint64_t id, const FiveTuple& key,
                   std::uint64_t hash);
  /// Publishes accumulated observability deltas (since the last publish) to
  /// the process metrics registry. Called from flush(); accumulation is
  /// plain member arithmetic so the packet hot path never touches atomics.
  void publish_metrics();
  void sweep(util::Timestamp now);
  void sweep_scan(util::Timestamp now);
  void sweep_wheel(util::Timestamp now);
  /// Emits the collected ended_scratch_ flows as IdleTimeout events in
  /// deterministic (expiry deadline, initiator tuple) order.
  void emit_timeouts(util::Timestamp now);
  void end_flow(const FiveTuple& key, const Flow& flow, util::Timestamp at,
                FlowEndReason reason);

  Ipv4Address monitored_;
  FlowTableConfig config_;
  // Open-addressing arena, power-of-two size, split into parallel arrays so
  // probing touches one byte per slot (tag 0 = empty, else 0x80 | hash bits)
  // and flow payloads load only on a confirmed hit. Keys are stored in a
  // canonical orientation (monitored host as source; self-flows use the
  // lexicographically smaller direction), so a lookup is one hash and one
  // probe instead of trying both packet orientations.
  std::vector<std::uint8_t> tags_;
  std::vector<FiveTuple> keys_;
  std::vector<Flow> flows_;
  std::size_t mask_ = 0;
  std::size_t live_ = 0;
  // Expiry timing wheel: ring of buckets, each `1 << wheel_shift_` micros of
  // deadline wide; the ring spans the largest idle timeout so an armed
  // deadline never aliases past the sweep cursor. The wheel only runs for
  // large arenas (capacity > kScanSweepMaxSlots); small arenas sweep by a
  // dense tag scan instead, which is cheaper than touching cold per-flow
  // wheel entries and needs no arming on the create path.
  std::vector<std::vector<ExpiryEntry>> wheel_;
  std::uint64_t wheel_mask_ = 0;
  std::uint32_t wheel_shift_ = 0;
  bool wheel_active_ = false;
  std::uint64_t cursor_ = 0;        ///< first wheel bucket not fully swept
  std::size_t wheel_entries_ = 0;   ///< live entries across all buckets
  std::vector<FiveTuple> expired_keys_;  ///< scan-sweep scratch (canonical)
  std::vector<std::pair<FiveTuple, Flow>> ended_scratch_;
  std::vector<FlowEvent> events_;
  FlowTableStats stats_;
  util::Timestamp last_sweep_ = 0;
  util::Timestamp clock_ = 0;

  /// Local observability accumulators (plain integers: each table is driven
  /// by one thread, and the values reach the shared registry only through
  /// publish_metrics()). `published_` mirrors what was already exported so
  /// repeated flushes publish deltas, never double-count.
  struct ObsAccum {
    std::uint64_t insert_probe_slots = 0;  ///< sum of insert displacements
    std::uint64_t sweeps_scan = 0;
    std::uint64_t sweeps_wheel = 0;
    std::uint64_t wheel_rearms = 0;
    std::uint64_t wheel_orphans = 0;  ///< entries whose flow was already gone
  };
  ObsAccum obs_accum_;
  ObsAccum obs_published_;
  FlowTableStats stats_published_;
};

}  // namespace monohids::net
