// Reference connection tracker: the seed std::unordered_map implementation.
//
// This is the behavioral spec for net::FlowTable kept on purpose: a node-
// allocating hash map whose idle sweep rescans every live flow. It emits the
// same deterministic (expiry deadline, tuple)-ordered timeout events and
// tuple-ordered flush events as the open-addressing table, so the two are
// byte-comparable: the randomized differential tests assert identical
// FlowEvent streams and stats, and bench/micro_ingest uses it as the
// map-vs-open-addressing and batch-vs-streaming baseline. Not for
// production paths — use net::FlowTable.
#pragma once

#include <unordered_map>
#include <vector>

#include "net/flow_table.hpp"

namespace monohids::net {

/// Map-based flow tracker with FlowTable's exact observable behavior.
class ReferenceFlowTable {
 public:
  ReferenceFlowTable(Ipv4Address monitored, FlowTableConfig config = {});

  void process(const PacketRecord& packet);
  void advance_to(util::Timestamp now);
  void flush(util::Timestamp now);
  [[nodiscard]] std::vector<FlowEvent> drain_events();

  [[nodiscard]] const FlowTableStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t active_flows() const noexcept { return flows_.size(); }
  [[nodiscard]] Ipv4Address monitored() const noexcept { return monitored_; }

 private:
  enum class TcpState : std::uint8_t { SynSent, Established, FinSeen };

  struct Flow {
    util::Timestamp first_seen = 0;
    util::Timestamp last_seen = 0;
    std::uint64_t packets = 0;
    bool initiated_by_monitored = false;
    TcpState tcp_state = TcpState::SynSent;  // TCP only
    bool fin_from_initiator = false;
    bool fin_from_responder = false;
  };

  void sweep(util::Timestamp now);
  void end_flow(const FiveTuple& key, const Flow& flow, util::Timestamp at,
                FlowEndReason reason);

  Ipv4Address monitored_;
  FlowTableConfig config_;
  std::unordered_map<FiveTuple, Flow> flows_;  // keyed by initiator-oriented tuple
  std::vector<FlowEvent> events_;
  FlowTableStats stats_;
  util::Timestamp last_sweep_ = 0;
  util::Timestamp clock_ = 0;
};

}  // namespace monohids::net
