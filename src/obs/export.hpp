// Metrics/span exporters: JSON snapshot and Prometheus-style text.
//
// Both formats render a MetricsSnapshot deterministically (samples arrive
// name-sorted from the registry), so diffs across runs are meaningful. The
// JSON document also carries the recent span window from the trace ring —
// one scrape answers both "what are the totals" and "what was the process
// just doing". With MONOHIDS_OBS=OFF the exporters still link and emit a
// well-formed (empty) document, so --metrics-json flags work in any build.
#pragma once

#include <iosfwd>
#include <span>
#include <string>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace monohids::obs {

/// Renders a snapshot (plus optional spans) as a JSON document:
/// {"enabled": bool, "counters": {...}, "gauges": {...},
///  "histograms": {...}, "spans": [...]}.
[[nodiscard]] std::string to_json(const MetricsSnapshot& snapshot,
                                  std::span<const SpanSample> spans = {});

/// Renders a snapshot in the Prometheus text exposition format: one
/// "# TYPE" comment per metric, histogram buckets as cumulative
/// `_bucket{le="..."}` samples plus `_sum` and `_count`. Metric names are
/// prefixed "monohids_" and dots become underscores.
[[nodiscard]] std::string to_prometheus(const MetricsSnapshot& snapshot);

/// Snapshots the global registry and trace ring and writes the JSON
/// document to `path`. Throws std::runtime_error when the file cannot be
/// written.
void write_global_json(const std::string& path);

/// Same snapshot, written to a stream (exposed for tests and stdout dumps).
void write_global_json(std::ostream& out);

/// Snapshots the global registry and writes the Prometheus text exposition
/// to `path` / `out` — the scrape-file ops surface a node_exporter-style
/// textfile collector (or a curl'd sidecar) picks up from a long-running
/// daemon. Throws std::runtime_error when the file cannot be written.
void write_global_prometheus(const std::string& path);
void write_global_prometheus(std::ostream& out);

}  // namespace monohids::obs
