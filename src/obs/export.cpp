#include "obs/export.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace monohids::obs {

namespace {

std::string escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    if (c == '"' || c == '\\') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

std::string format_double(double v) {
  if (!std::isfinite(v)) return v > 0 ? "1e999" : "-1e999";  // JSON has no inf
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", v);
  return buffer;
}

/// Prometheus sample name: monohids_ prefix, dots and dashes to underscores.
std::string prom_name(std::string_view name) {
  std::string out = "monohids_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

std::string to_json(const MetricsSnapshot& snapshot, std::span<const SpanSample> spans) {
  std::ostringstream out;
  out << "{\n  \"enabled\": " << (kEnabled ? "true" : "false") << ",\n  \"counters\": {";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    \"" << escape(snapshot.counters[i].name)
        << "\": " << snapshot.counters[i].value;
  }
  out << (snapshot.counters.empty() ? "" : "\n  ") << "},\n  \"gauges\": {";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    \"" << escape(snapshot.gauges[i].name)
        << "\": " << snapshot.gauges[i].value;
  }
  out << (snapshot.gauges.empty() ? "" : "\n  ") << "},\n  \"histograms\": {";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramSample& h = snapshot.histograms[i];
    out << (i == 0 ? "\n" : ",\n") << "    \"" << escape(h.name) << "\": {\"count\": "
        << h.count << ", \"sum\": " << format_double(h.sum) << ", \"p50\": "
        << format_double(h.approx_quantile(0.5)) << ", \"p99\": "
        << format_double(h.approx_quantile(0.99)) << ", \"bounds\": [";
    for (std::size_t b = 0; b < h.bounds.size(); ++b) {
      out << (b == 0 ? "" : ", ") << format_double(h.bounds[b]);
    }
    out << "], \"counts\": [";
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      out << (b == 0 ? "" : ", ") << h.counts[b];
    }
    out << "]}";
  }
  out << (snapshot.histograms.empty() ? "" : "\n  ") << "},\n  \"spans\": [";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    {\"name\": \"" << escape(spans[i].name)
        << "\", \"seq\": " << spans[i].seq << ", \"start_us\": " << spans[i].start_us
        << ", \"duration_us\": " << spans[i].duration_us
        << ", \"thread\": " << spans[i].thread << '}';
  }
  out << (spans.empty() ? "" : "\n  ") << "]\n}\n";
  return out.str();
}

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  for (const CounterSample& c : snapshot.counters) {
    const std::string name = prom_name(c.name);
    out << "# TYPE " << name << " counter\n" << name << ' ' << c.value << '\n';
  }
  for (const GaugeSample& g : snapshot.gauges) {
    const std::string name = prom_name(g.name);
    out << "# TYPE " << name << " gauge\n" << name << ' ' << g.value << '\n';
  }
  for (const HistogramSample& h : snapshot.histograms) {
    const std::string name = prom_name(h.name);
    out << "# TYPE " << name << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      cumulative += h.counts[b];
      const std::string le =
          b < h.bounds.size() ? format_double(h.bounds[b]) : std::string("+Inf");
      out << name << "_bucket{le=\"" << le << "\"} " << cumulative << '\n';
    }
    out << name << "_sum " << format_double(h.sum) << '\n'
        << name << "_count " << h.count << '\n';
  }
  return out.str();
}

void write_global_json(std::ostream& out) {
  const MetricsSnapshot snapshot = MetricsRegistry::global().snapshot();
  const std::vector<SpanSample> spans = TraceRing::global().collect();
  out << to_json(snapshot, spans);
}

void write_global_json(const std::string& path) {
  std::ofstream out(path);
  if (!out.good()) throw std::runtime_error("cannot open metrics JSON path: " + path);
  write_global_json(out);
  if (!out.good()) throw std::runtime_error("failed writing metrics JSON: " + path);
}

void write_global_prometheus(std::ostream& out) {
  out << to_prometheus(MetricsRegistry::global().snapshot());
}

void write_global_prometheus(const std::string& path) {
  std::ofstream out(path);
  if (!out.good()) throw std::runtime_error("cannot open prometheus path: " + path);
  write_global_prometheus(out);
  if (!out.good()) throw std::runtime_error("failed writing prometheus export: " + path);
}

}  // namespace monohids::obs
