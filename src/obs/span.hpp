// RAII span tracing with a bounded in-memory ring.
//
// A span is one timed region of work ("ingest.batch", "cache.build",
// "pool.task") with a static name, a start offset and a duration. Spans are
// recorded into a fixed-capacity global ring — old entries are overwritten,
// so the ring always holds the most recent window of activity and memory is
// bounded no matter how long the process runs. The exporter drains the ring
// into the metrics JSON so a scrape shows not just aggregate counters but
// *what the process was doing* around the scrape.
//
// Concurrency: writers claim a slot with one relaxed fetch_add, then fill
// the slot's fields, each of which is an atomic written relaxed and sealed
// by a release store of the slot's sequence number. A reader validates the
// sequence before and after copying the fields (a per-slot seqlock), so a
// torn read is detected and dropped rather than exported. Everything is
// lock-free; a span record is ~5 relaxed stores — cheap enough for
// batch-granular use, not intended per packet.
//
// With MONOHIDS_OBS=OFF the ScopedTimer body is empty and the ring is a
// stub that records nothing.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace monohids::obs {

/// One exported span. `start_us` counts from the process's first obs clock
/// read (a stable in-process epoch), `seq` is the global claim order.
struct SpanSample {
  std::string name;
  std::uint64_t seq = 0;
  std::uint64_t start_us = 0;
  std::uint64_t duration_us = 0;
  std::uint32_t thread = 0;
};

/// Microseconds since the process-local obs epoch (first call anchors 0).
[[nodiscard]] std::uint64_t now_us() noexcept;

#if MONOHIDS_OBS_ENABLED

/// Bounded lock-free ring of recent spans.
class TraceRing {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  /// The global ring the ScopedTimer writes into.
  static TraceRing& global();

  /// `capacity` is rounded up to a power of two.
  explicit TraceRing(std::size_t capacity = kDefaultCapacity);

  /// Records one completed span. `name` must have static storage duration
  /// (string literals): the ring stores the pointer, not a copy.
  void record(const char* name, std::uint64_t start_us, std::uint64_t duration_us) noexcept;

  /// Copies out currently-valid spans, oldest first. Slots being written
  /// concurrently are skipped. Returns at most capacity() entries.
  [[nodiscard]] std::vector<SpanSample> collect() const;

  /// Number of spans ever recorded (recent capacity() of them retained).
  [[nodiscard]] std::uint64_t recorded() const noexcept {
    return head_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

  /// Empties the ring (concurrent writers may immediately refill it).
  void clear() noexcept;

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

 private:
  struct Slot {
    // seq: 0 = empty; writers store claim*2+1 while filling, claim*2+2 when
    // sealed, so readers can detect in-progress and torn writes.
    std::atomic<std::uint64_t> seq{0};
    std::atomic<const char*> name{nullptr};
    std::atomic<std::uint64_t> start_us{0};
    std::atomic<std::uint64_t> duration_us{0};
    std::atomic<std::uint32_t> thread{0};
  };

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::atomic<std::uint64_t> head_{0};
};

/// RAII span: times its scope with a steady clock and records into the
/// global ring on destruction; optionally also observes the duration (in
/// milliseconds) into a Histogram. `name` must be a string literal (or any
/// static-duration string).
class ScopedTimer {
 public:
  explicit ScopedTimer(const char* name, Histogram histogram = {}) noexcept
      : name_(name), histogram_(histogram), start_us_(now_us()) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    const std::uint64_t duration = now_us() - start_us_;
    TraceRing::global().record(name_, start_us_, duration);
    histogram_.observe(static_cast<double>(duration) / 1000.0);  // ms
  }

  /// Elapsed microseconds so far (the span keeps running).
  [[nodiscard]] std::uint64_t elapsed_us() const noexcept { return now_us() - start_us_; }

 private:
  const char* name_;
  Histogram histogram_;
  std::uint64_t start_us_;
};

#else  // !MONOHIDS_OBS_ENABLED

class TraceRing {
 public:
  static constexpr std::size_t kDefaultCapacity = 0;
  static TraceRing& global();
  explicit TraceRing(std::size_t = kDefaultCapacity) noexcept {}
  void record(const char*, std::uint64_t, std::uint64_t) noexcept {}
  [[nodiscard]] std::vector<SpanSample> collect() const { return {}; }
  [[nodiscard]] std::uint64_t recorded() const noexcept { return 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return 0; }
  void clear() noexcept {}
};

class ScopedTimer {
 public:
  explicit ScopedTimer(const char*, Histogram = {}) noexcept {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  [[nodiscard]] std::uint64_t elapsed_us() const noexcept { return 0; }
};

#endif  // MONOHIDS_OBS_ENABLED

}  // namespace monohids::obs
