// Process-wide metrics registry: counters, gauges, fixed-bucket histograms.
//
// The ROADMAP's production target ("millions of users, fast as the hardware
// allows") needs runtime visibility — flow-table occupancy, cache hit rates,
// thread-pool saturation, per-stage latency — without taxing the hot paths
// that earned the last three PRs their speedups. The design places cost
// where it can be afforded:
//
//   - Handles, not lookups. Call sites hold a Counter/Gauge/Histogram handle
//     (one pointer) obtained once from the registry; the mutation fast path
//     is a single relaxed std::atomic RMW with no name hashing and no locks.
//   - Thread-sharded cells. Each counter owns a small set of cache-line-
//     padded shards; a writing thread picks a stable shard by thread index,
//     so parallel scenario builds and pool workers do not bounce one cache
//     line. A scrape sums the shards (values are eventually consistent:
//     a scrape concurrent with writers sees each increment at most once,
//     never torn).
//   - Batch-granular instrumentation upstream. The per-packet layers
//     (FlowTable, IngestSession) accumulate plain local counters and publish
//     to the registry at batch/flush boundaries, so the per-packet path has
//     no atomics at all — the registry's cost model only has to absorb
//     per-batch and per-task events.
//   - Compile-time off switch. With -DMONOHIDS_OBS=OFF every handle method
//     is an empty inline function and the registry returns inert handles:
//     the instrumentation compiles to nothing (true zero cost), while call
//     sites keep one unconditional shape — no #ifdef at points of use.
//
// Registration is idempotent (same name returns the same metric) and cheap
// but mutex-guarded — do it at construction time, not per event. Metric
// names use dotted lowercase ("flowtable.flows_created"); the exporters
// (obs/export.hpp) map them to JSON keys and Prometheus sample names.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

// MONOHIDS_OBS_ENABLED is injected by CMake (option MONOHIDS_OBS, default
// ON). Standalone consumers of this header (e.g. IDE parses) default to on.
#ifndef MONOHIDS_OBS_ENABLED
#define MONOHIDS_OBS_ENABLED 1
#endif

namespace monohids::obs {

/// True when the library was built with the observability layer compiled in.
inline constexpr bool kEnabled = MONOHIDS_OBS_ENABLED != 0;

/// Upper bound (inclusive) of one histogram bucket; the registry appends an
/// implicit +inf bucket, so `bounds` never needs to cover the full range.
using BucketBounds = std::vector<double>;

// ---------------------------------------------------------------------------
// Snapshot types (defined unconditionally: exporters, benches and tests
// compile in both build flavors; with obs off every snapshot is empty).

struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  std::int64_t value = 0;
};

struct HistogramSample {
  std::string name;
  BucketBounds bounds;                ///< finite upper bounds, ascending
  std::vector<std::uint64_t> counts;  ///< per-bucket counts; size = bounds+1
  std::uint64_t count = 0;            ///< total observations
  double sum = 0.0;                   ///< sum of observed values

  /// Bucket-interpolated quantile estimate (q in [0,1]); 0 when empty.
  [[nodiscard]] double approx_quantile(double q) const;
};

/// One coherent-enough view of every registered metric. Samples are sorted
/// by name so exports are deterministic.
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  [[nodiscard]] bool empty() const noexcept {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
  /// Counter value by exact name (0 when absent) — test/bench convenience.
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const noexcept;
  [[nodiscard]] std::int64_t gauge_value(std::string_view name) const noexcept;
  [[nodiscard]] const HistogramSample* histogram(std::string_view name) const noexcept;
};

#if MONOHIDS_OBS_ENABLED

namespace detail {

/// Shard count for counter/histogram cells. Power of two; a writing thread
/// maps to `thread_ordinal % kShards`. 16 shards * 64 B = 1 KiB per counter.
inline constexpr std::size_t kShards = 16;

struct alignas(64) ShardCell {
  std::atomic<std::uint64_t> value{0};
};

/// Stable per-thread shard index in [0, kShards).
[[nodiscard]] std::size_t shard_index() noexcept;

struct CounterImpl {
  std::string name;
  ShardCell cells[kShards];

  [[nodiscard]] std::uint64_t total() const noexcept {
    std::uint64_t sum = 0;
    for (const ShardCell& c : cells) sum += c.value.load(std::memory_order_relaxed);
    return sum;
  }
};

struct GaugeImpl {
  std::string name;
  std::atomic<std::int64_t> value{0};
  std::atomic<std::int64_t> max_seen{0};
};

struct HistogramImpl {
  std::string name;
  BucketBounds bounds;  ///< ascending finite upper bounds; +inf implicit
  // Sharded (bucket x shard) counts: bucket-major, each bucket row padded by
  // shard cells so two threads observing into the same bucket stay on
  // different cache lines. sum is a C++20 atomic<double> fetch_add.
  std::vector<ShardCell> counts;  ///< size = (bounds.size()+1) * kShards
  std::atomic<double> sum{0.0};

  void observe(double value) noexcept;
};

}  // namespace detail

/// Monotonic counter handle. Default-constructed handles are inert no-ops,
/// so instrumented classes can be built before (or without) registration.
class Counter {
 public:
  Counter() = default;
  void add(std::uint64_t n) noexcept {
    if (impl_ != nullptr) {
      impl_->cells[detail::shard_index()].value.fetch_add(n, std::memory_order_relaxed);
    }
  }
  void inc() noexcept { add(1); }
  [[nodiscard]] bool is_null() const noexcept { return impl_ == nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Counter(detail::CounterImpl* impl) noexcept : impl_(impl) {}
  detail::CounterImpl* impl_ = nullptr;
};

/// Up/down gauge handle (single atomic: gauges are low-frequency). set()
/// also tracks a high-water mark, exported as "<name>.max".
class Gauge {
 public:
  Gauge() = default;
  void set(std::int64_t v) noexcept {
    if (impl_ == nullptr) return;
    impl_->value.store(v, std::memory_order_relaxed);
    std::int64_t seen = impl_->max_seen.load(std::memory_order_relaxed);
    while (v > seen &&
           !impl_->max_seen.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }
  void add(std::int64_t delta) noexcept {
    if (impl_ == nullptr) return;
    const std::int64_t now =
        impl_->value.fetch_add(delta, std::memory_order_relaxed) + delta;
    std::int64_t seen = impl_->max_seen.load(std::memory_order_relaxed);
    while (now > seen &&
           !impl_->max_seen.compare_exchange_weak(seen, now, std::memory_order_relaxed)) {
    }
  }
  void sub(std::int64_t delta) noexcept { add(-delta); }
  [[nodiscard]] bool is_null() const noexcept { return impl_ == nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(detail::GaugeImpl* impl) noexcept : impl_(impl) {}
  detail::GaugeImpl* impl_ = nullptr;
};

/// Fixed-bucket histogram handle. observe() is a short linear scan over the
/// bounds (they are few and cache-resident) plus one sharded fetch_add.
class Histogram {
 public:
  Histogram() = default;
  void observe(double value) noexcept {
    if (impl_ != nullptr) impl_->observe(value);
  }
  [[nodiscard]] bool is_null() const noexcept { return impl_ == nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Histogram(detail::HistogramImpl* impl) noexcept : impl_(impl) {}
  detail::HistogramImpl* impl_ = nullptr;
};

#else  // !MONOHIDS_OBS_ENABLED — inert handles; every method is a no-op the
       // optimizer deletes, so instrumented call sites compile to nothing.

class Counter {
 public:
  void add(std::uint64_t) noexcept {}
  void inc() noexcept {}
  [[nodiscard]] bool is_null() const noexcept { return true; }
};

class Gauge {
 public:
  void set(std::int64_t) noexcept {}
  void add(std::int64_t) noexcept {}
  void sub(std::int64_t) noexcept {}
  [[nodiscard]] bool is_null() const noexcept { return true; }
};

class Histogram {
 public:
  void observe(double) noexcept {}
  [[nodiscard]] bool is_null() const noexcept { return true; }
};

#endif  // MONOHIDS_OBS_ENABLED

/// Latency bucket presets (upper bounds in the named unit).
[[nodiscard]] BucketBounds latency_buckets_ms();
[[nodiscard]] BucketBounds latency_buckets_us();
/// Geometric size buckets 1, 2, 4, ... 2^(count-1).
[[nodiscard]] BucketBounds pow2_buckets(std::size_t count);

/// The process-wide registry. Handles stay valid for the process lifetime
/// (metric storage is never freed, mirroring ThreadPool::shared()'s leak-on-
/// exit policy so flushes from static destructors stay safe). reset() zeroes
/// values but keeps registrations and handles alive — tests use it to
/// isolate measurements.
class MetricsRegistry {
 public:
  /// The singleton every layer publishes into.
  static MetricsRegistry& global();

  /// Registers (or finds) a counter. Same name -> same underlying metric.
  /// A name may be registered as only one kind; a kind mismatch throws.
  Counter counter(const std::string& name);
  Gauge gauge(const std::string& name);
  /// `bounds` must be ascending and non-empty; on re-registration the
  /// original bounds win (callers agree by convention).
  Histogram histogram(const std::string& name, const BucketBounds& bounds);

  /// Aggregates every shard into a sorted snapshot. Safe to call while
  /// writers mutate (values are eventually consistent, never torn).
  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zeroes every counter/gauge/histogram cell; registrations and
  /// outstanding handles remain valid.
  void reset();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Public constructor so tests can run an isolated instance; production
  // code uses global().
  MetricsRegistry();
  ~MetricsRegistry();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace monohids::obs
