#include "obs/span.hpp"

#include <algorithm>
#include <bit>

namespace monohids::obs {

std::uint64_t now_us() noexcept {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - epoch).count());
}

#if MONOHIDS_OBS_ENABLED

namespace {

std::uint32_t thread_ordinal() noexcept {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t ordinal = next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

}  // namespace

TraceRing& TraceRing::global() {
  // Leaked (see MetricsRegistry::global()): spans may be recorded from
  // destructors running during static teardown.
  static TraceRing* ring = new TraceRing();
  return *ring;
}

TraceRing::TraceRing(std::size_t capacity)
    : slots_(std::bit_ceil(std::max<std::size_t>(capacity, 2))) {
  mask_ = slots_.size() - 1;
}

void TraceRing::record(const char* name, std::uint64_t start_us,
                       std::uint64_t duration_us) noexcept {
  const std::uint64_t claim = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[claim & mask_];
  // Per-slot seqlock: odd while writing, even when sealed. The release store
  // of the final (even) sequence publishes the fields; a reader re-checks
  // the sequence after copying, so a wrapped writer is detected.
  slot.seq.store(claim * 2 + 1, std::memory_order_relaxed);
  slot.name.store(name, std::memory_order_relaxed);
  slot.start_us.store(start_us, std::memory_order_relaxed);
  slot.duration_us.store(duration_us, std::memory_order_relaxed);
  slot.thread.store(thread_ordinal(), std::memory_order_relaxed);
  slot.seq.store(claim * 2 + 2, std::memory_order_release);
}

std::vector<SpanSample> TraceRing::collect() const {
  std::vector<SpanSample> out;
  out.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    const std::uint64_t seq_before = slot.seq.load(std::memory_order_acquire);
    if (seq_before == 0 || (seq_before & 1) != 0) continue;  // empty / mid-write
    SpanSample sample;
    const char* name = slot.name.load(std::memory_order_relaxed);
    sample.start_us = slot.start_us.load(std::memory_order_relaxed);
    sample.duration_us = slot.duration_us.load(std::memory_order_relaxed);
    sample.thread = slot.thread.load(std::memory_order_relaxed);
    const std::uint64_t seq_after = slot.seq.load(std::memory_order_acquire);
    if (seq_after != seq_before || name == nullptr) continue;  // torn: drop
    sample.seq = seq_before / 2 - 1;
    sample.name = name;
    out.push_back(std::move(sample));
  }
  std::sort(out.begin(), out.end(),
            [](const SpanSample& a, const SpanSample& b) { return a.seq < b.seq; });
  return out;
}

void TraceRing::clear() noexcept {
  for (Slot& slot : slots_) slot.seq.store(0, std::memory_order_relaxed);
}

#else  // !MONOHIDS_OBS_ENABLED

TraceRing& TraceRing::global() {
  static TraceRing* ring = new TraceRing();
  return *ring;
}

#endif  // MONOHIDS_OBS_ENABLED

}  // namespace monohids::obs
