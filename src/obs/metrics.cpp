#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>
#include <stdexcept>

namespace monohids::obs {

double HistogramSample::approx_quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  double cumulative = 0.0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    const double next = cumulative + static_cast<double>(counts[b]);
    if (next >= target && counts[b] > 0) {
      const double lo = b == 0 ? 0.0 : bounds[b - 1];
      const double hi = b < bounds.size() ? bounds[b] : lo * 2.0;  // open top bucket
      const double frac = (target - cumulative) / static_cast<double>(counts[b]);
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
    cumulative = next;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

std::uint64_t MetricsSnapshot::counter_value(std::string_view name) const noexcept {
  for (const CounterSample& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

std::int64_t MetricsSnapshot::gauge_value(std::string_view name) const noexcept {
  for (const GaugeSample& g : gauges) {
    if (g.name == name) return g.value;
  }
  return 0;
}

const HistogramSample* MetricsSnapshot::histogram(std::string_view name) const noexcept {
  for (const HistogramSample& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

BucketBounds latency_buckets_ms() {
  return {0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000};
}

BucketBounds latency_buckets_us() {
  return {1, 5, 10, 50, 100, 500, 1000, 5000, 10000, 50000, 100000, 500000, 1000000};
}

BucketBounds pow2_buckets(std::size_t count) {
  BucketBounds bounds;
  bounds.reserve(count);
  double v = 1.0;
  for (std::size_t i = 0; i < count; ++i, v *= 2.0) bounds.push_back(v);
  return bounds;
}

#if MONOHIDS_OBS_ENABLED

namespace detail {

std::size_t shard_index() noexcept {
  // Dense per-thread ordinals (not std::thread::id hashes) so a handful of
  // pool workers spread over distinct shards instead of colliding.
  static std::atomic<std::size_t> next_ordinal{0};
  thread_local const std::size_t ordinal =
      next_ordinal.fetch_add(1, std::memory_order_relaxed);
  return ordinal & (kShards - 1);
}

void HistogramImpl::observe(double value) noexcept {
  // Branch-poor linear scan: bounds are few (O(16)) and hot in cache; a
  // binary search's mispredicts would cost more than the walk.
  std::size_t bucket = 0;
  while (bucket < bounds.size() && value > bounds[bucket]) ++bucket;
  counts[bucket * kShards + shard_index()].value.fetch_add(1, std::memory_order_relaxed);
  sum.fetch_add(value, std::memory_order_relaxed);
}

}  // namespace detail

struct MetricsRegistry::Impl {
  // node-based maps: metric storage must never move (handles hold pointers).
  mutable std::mutex mutex;
  std::map<std::string, std::unique_ptr<detail::CounterImpl>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<detail::GaugeImpl>, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<detail::HistogramImpl>, std::less<>> histograms;

  void ensure_unique(const std::string& name, const char* kind) const {
    // Callers hold `mutex`.
    const bool taken = (kind[0] != 'c' && counters.count(name) != 0) ||
                       (kind[0] != 'g' && gauges.count(name) != 0) ||
                       (kind[0] != 'h' && histograms.count(name) != 0);
    if (taken) {
      throw std::logic_error("obs metric '" + name +
                             "' already registered as a different kind than " + kind);
    }
  }
};

MetricsRegistry::MetricsRegistry() : impl_(std::make_unique<Impl>()) {}
MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry& MetricsRegistry::global() {
  // Leaked like ThreadPool::shared(): handles may be flushed from static
  // destructors, so the storage must survive them.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter MetricsRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  auto it = impl_->counters.find(name);
  if (it == impl_->counters.end()) {
    impl_->ensure_unique(name, "counter");
    auto impl = std::make_unique<detail::CounterImpl>();
    impl->name = name;
    it = impl_->counters.emplace(name, std::move(impl)).first;
  }
  return Counter(it->second.get());
}

Gauge MetricsRegistry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  auto it = impl_->gauges.find(name);
  if (it == impl_->gauges.end()) {
    impl_->ensure_unique(name, "gauge");
    auto impl = std::make_unique<detail::GaugeImpl>();
    impl->name = name;
    it = impl_->gauges.emplace(name, std::move(impl)).first;
  }
  return Gauge(it->second.get());
}

Histogram MetricsRegistry::histogram(const std::string& name, const BucketBounds& bounds) {
  if (bounds.empty() || !std::is_sorted(bounds.begin(), bounds.end())) {
    throw std::logic_error("obs histogram '" + name + "' needs ascending bucket bounds");
  }
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  auto it = impl_->histograms.find(name);
  if (it == impl_->histograms.end()) {
    impl_->ensure_unique(name, "histogram");
    auto impl = std::make_unique<detail::HistogramImpl>();
    impl->name = name;
    impl->bounds = bounds;
    impl->counts = std::vector<detail::ShardCell>((bounds.size() + 1) * detail::kShards);
    it = impl_->histograms.emplace(name, std::move(impl)).first;
  }
  return Histogram(it->second.get());
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  snap.counters.reserve(impl_->counters.size());
  for (const auto& [name, impl] : impl_->counters) {
    snap.counters.push_back(CounterSample{name, impl->total()});
  }
  snap.gauges.reserve(impl_->gauges.size() * 2);
  for (const auto& [name, impl] : impl_->gauges) {
    snap.gauges.push_back(GaugeSample{name, impl->value.load(std::memory_order_relaxed)});
    snap.gauges.push_back(
        GaugeSample{name + ".max", impl->max_seen.load(std::memory_order_relaxed)});
  }
  snap.histograms.reserve(impl_->histograms.size());
  for (const auto& [name, impl] : impl_->histograms) {
    HistogramSample h;
    h.name = name;
    h.bounds = impl->bounds;
    h.counts.assign(impl->bounds.size() + 1, 0);
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      for (std::size_t s = 0; s < detail::kShards; ++s) {
        h.counts[b] +=
            impl->counts[b * detail::kShards + s].value.load(std::memory_order_relaxed);
      }
      h.count += h.counts[b];
    }
    h.sum = impl->sum.load(std::memory_order_relaxed);
    snap.histograms.push_back(std::move(h));
  }
  // std::map iteration is already name-sorted; gauges gained ".max" rows in
  // order, so exports are deterministic without a re-sort.
  return snap;
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  for (auto& [name, impl] : impl_->counters) {
    for (auto& cell : impl->cells) cell.value.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, impl] : impl_->gauges) {
    impl->value.store(0, std::memory_order_relaxed);
    impl->max_seen.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, impl] : impl_->histograms) {
    for (auto& cell : impl->counts) cell.value.store(0, std::memory_order_relaxed);
    impl->sum.store(0.0, std::memory_order_relaxed);
  }
}

#else  // !MONOHIDS_OBS_ENABLED

struct MetricsRegistry::Impl {};

MetricsRegistry::MetricsRegistry() = default;
MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter MetricsRegistry::counter(const std::string&) { return Counter{}; }
Gauge MetricsRegistry::gauge(const std::string&) { return Gauge{}; }
Histogram MetricsRegistry::histogram(const std::string&, const BucketBounds&) {
  return Histogram{};
}
MetricsSnapshot MetricsRegistry::snapshot() const { return MetricsSnapshot{}; }
void MetricsRegistry::reset() {}

#endif  // MONOHIDS_OBS_ENABLED

}  // namespace monohids::obs
