#include "trace/trace_io.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <istream>
#include <ostream>

#include "util/csv.hpp"
#include "util/error.hpp"

namespace monohids::trace {

namespace {

constexpr std::array<char, 8> kMagic = {'M', 'H', 'T', 'R', 'A', 'C', 'E', '\0'};

void put_u32(std::ostream& out, std::uint32_t v) {
  std::array<char, 4> buf;
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out.write(buf.data(), buf.size());
}

void put_u64(std::ostream& out, std::uint64_t v) {
  std::array<char, 8> buf;
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out.write(buf.data(), buf.size());
}

std::uint32_t get_u32(std::istream& in) {
  std::array<char, 4> buf;
  in.read(buf.data(), buf.size());
  MONOHIDS_ENSURE(in.good(), "truncated trace file");
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | static_cast<std::uint8_t>(buf[i]);
  return v;
}

std::uint64_t get_u64(std::istream& in) {
  std::array<char, 8> buf;
  in.read(buf.data(), buf.size());
  MONOHIDS_ENSURE(in.good(), "truncated trace file");
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | static_cast<std::uint8_t>(buf[i]);
  return v;
}

/// Validates the magic/version header and returns the record count.
std::uint64_t read_trace_header(std::istream& in) {
  std::array<char, 8> magic;
  in.read(magic.data(), magic.size());
  MONOHIDS_ENSURE(in.good() && magic == kMagic, "not a monohids trace file");
  const std::uint32_t version = get_u32(in);
  MONOHIDS_ENSURE(version == kTraceFormatVersion,
                  "unsupported trace version " + std::to_string(version));
  return get_u64(in);
}

net::PacketRecord get_record(std::istream& in) {
  net::PacketRecord p;
  p.timestamp = get_u64(in);
  p.tuple.src_ip = net::Ipv4Address(get_u32(in));
  p.tuple.dst_ip = net::Ipv4Address(get_u32(in));
  const std::uint32_t ports = get_u32(in);
  p.tuple.src_port = static_cast<std::uint16_t>(ports >> 16);
  p.tuple.dst_port = static_cast<std::uint16_t>(ports & 0xFFFF);
  const std::uint32_t tail = get_u32(in);
  p.tuple.protocol = static_cast<net::Protocol>((tail >> 24) & 0xFF);
  p.tcp_flags = static_cast<net::TcpFlags>((tail >> 16) & 0xFF);
  p.payload_bytes = static_cast<std::uint16_t>(tail & 0xFFFF);
  return p;
}

}  // namespace

void write_packet_trace(std::ostream& out, const std::vector<net::PacketRecord>& packets) {
  out.write(kMagic.data(), kMagic.size());
  put_u32(out, kTraceFormatVersion);
  put_u64(out, packets.size());
  for (const net::PacketRecord& p : packets) {
    put_u64(out, p.timestamp);
    put_u32(out, p.tuple.src_ip.value());
    put_u32(out, p.tuple.dst_ip.value());
    put_u32(out, (std::uint32_t{p.tuple.src_port} << 16) | p.tuple.dst_port);
    put_u32(out, (std::uint32_t{static_cast<std::uint8_t>(p.tuple.protocol)} << 24) |
                     (std::uint32_t{static_cast<std::uint8_t>(p.tcp_flags)} << 16) |
                     p.payload_bytes);
  }
}

std::vector<net::PacketRecord> read_packet_trace(std::istream& in) {
  const std::uint64_t count = read_trace_header(in);
  std::vector<net::PacketRecord> packets;
  // The header's count is untrusted input: reserve only a bounded prefix so
  // a corrupt count fails with "truncated trace file" at the first missing
  // record instead of a gigantic up-front allocation.
  constexpr std::uint64_t kMaxTrustedReserve = 1u << 20;
  packets.reserve(static_cast<std::size_t>(std::min(count, kMaxTrustedReserve)));
  for (std::uint64_t i = 0; i < count; ++i) packets.push_back(get_record(in));
  return packets;
}

std::uint64_t stream_packet_trace(std::istream& in, features::PacketSink& sink,
                                  std::size_t max_batch) {
  const std::uint64_t count = read_trace_header(in);
  features::BatchingAdapter batches(sink, max_batch);
  for (std::uint64_t i = 0; i < count; ++i) batches.push(get_record(in));
  return batches.finish();
}

void write_packet_csv(std::ostream& out, const std::vector<net::PacketRecord>& packets) {
  util::CsvWriter csv(out);
  csv.write_row({"timestamp_us", "src", "dst", "sport", "dport", "proto", "flags", "payload"});
  for (const net::PacketRecord& p : packets) {
    csv.write_row({util::CsvWriter::format(p.timestamp), p.tuple.src_ip.to_string(),
                   p.tuple.dst_ip.to_string(), std::to_string(p.tuple.src_port),
                   std::to_string(p.tuple.dst_port), net::to_string(p.tuple.protocol),
                   std::to_string(static_cast<int>(p.tcp_flags)),
                   std::to_string(p.payload_bytes)});
  }
}

namespace {

net::Protocol parse_protocol(const std::string& text) {
  if (text == "tcp") return net::Protocol::Tcp;
  if (text == "udp") return net::Protocol::Udp;
  if (text == "icmp") return net::Protocol::Icmp;
  throw InputError("unknown protocol in packet CSV: " + text);
}

std::uint64_t parse_u64_field(const std::string& text, const char* what) {
  MONOHIDS_ENSURE(!text.empty(), std::string("empty ") + what + " in packet CSV");
  std::size_t pos = 0;
  std::uint64_t value = 0;
  try {
    value = std::stoull(text, &pos);
  } catch (const std::exception&) {
    throw InputError(std::string("malformed ") + what + " in packet CSV: " + text);
  }
  MONOHIDS_ENSURE(pos == text.size(),
                  std::string("malformed ") + what + " in packet CSV: " + text);
  return value;
}

bool is_packet_csv_header(const std::vector<std::string>& row) {
  return row.size() == 8 && row[0] == "timestamp_us";
}

/// stod with the full diagnostic contract: garbage, trailing junk and empty
/// cells all surface as InputError naming the offending cell, never as a
/// bare std::invalid_argument (or a silently half-parsed value).
double parse_double_field(const std::string& text, std::size_t row, std::size_t column) {
  const auto fail = [&]() -> InputError {
    return InputError("malformed value in feature CSV at row " + std::to_string(row) +
                      ", column " + std::to_string(column) + ": \"" + text + '"');
  };
  if (text.empty()) throw fail();
  std::size_t pos = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &pos);
  } catch (const std::exception&) {
    throw fail();
  }
  if (pos != text.size()) throw fail();
  return value;
}

net::PacketRecord parse_packet_row(const std::vector<std::string>& row) {
  MONOHIDS_ENSURE(row.size() == 8, "packet CSV row has the wrong field count");
  net::PacketRecord p;
  p.timestamp = parse_u64_field(row[0], "timestamp");
  p.tuple.src_ip = net::Ipv4Address::parse(row[1]);
  p.tuple.dst_ip = net::Ipv4Address::parse(row[2]);
  p.tuple.src_port = static_cast<std::uint16_t>(parse_u64_field(row[3], "src port"));
  p.tuple.dst_port = static_cast<std::uint16_t>(parse_u64_field(row[4], "dst port"));
  p.tuple.protocol = parse_protocol(row[5]);
  const auto flags = parse_u64_field(row[6], "flags");
  MONOHIDS_ENSURE(flags <= 0xFF, "TCP flags out of range in packet CSV");
  p.tcp_flags = static_cast<net::TcpFlags>(flags);
  p.payload_bytes = static_cast<std::uint16_t>(parse_u64_field(row[7], "payload"));
  return p;
}

}  // namespace

std::vector<net::PacketRecord> read_packet_csv(std::istream& in) {
  std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  const auto rows = util::csv_parse(text);
  MONOHIDS_ENSURE(!rows.empty(), "packet CSV is empty");
  MONOHIDS_ENSURE(is_packet_csv_header(rows[0]),
                  "packet CSV header does not match the expected format");

  std::vector<net::PacketRecord> packets;
  packets.reserve(rows.size() - 1);
  for (std::size_t r = 1; r < rows.size(); ++r) packets.push_back(parse_packet_row(rows[r]));
  return packets;
}

std::uint64_t stream_packet_csv(std::istream& in, features::PacketSink& sink,
                                std::size_t max_batch) {
  std::string line;
  MONOHIDS_ENSURE(static_cast<bool>(std::getline(in, line)), "packet CSV is empty");
  if (!line.empty() && line.back() == '\r') line.pop_back();
  MONOHIDS_ENSURE(is_packet_csv_header(util::csv_parse_line(line)),
                  "packet CSV header does not match the expected format");

  features::BatchingAdapter batches(sink, max_batch);
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;  // trailing newline / blank line
    batches.push(parse_packet_row(util::csv_parse_line(line)));
  }
  // getline must have stopped at end-of-file; stopping on a stream error
  // (badbit mid-file) would otherwise silently truncate the trace.
  MONOHIDS_ENSURE(in.eof(), "I/O error while streaming packet CSV");
  return batches.finish();
}

void write_feature_csv(std::ostream& out, const features::FeatureMatrix& matrix) {
  util::CsvWriter csv(out);
  std::vector<std::string> header{"bin_start_us"};
  for (features::FeatureKind f : features::kAllFeatures) {
    header.emplace_back(features::name_of(f));
  }
  csv.write_row(header);

  const auto& first = matrix.series.front();
  for (std::size_t b = 0; b < first.bin_count(); ++b) {
    std::vector<std::string> row{util::CsvWriter::format(first.grid().bin_start(b))};
    for (features::FeatureKind f : features::kAllFeatures) {
      row.push_back(util::CsvWriter::format(matrix.of(f).at(b)));
    }
    csv.write_row(row);
  }
}

features::FeatureMatrix read_feature_csv(std::istream& in, util::BinGrid grid) {
  std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  const auto rows = util::csv_parse(text);
  MONOHIDS_ENSURE(rows.size() >= 2, "feature CSV has no data rows");
  MONOHIDS_ENSURE(rows[0].size() == 1 + features::kFeatureCount,
                  "feature CSV has the wrong column count");

  const std::size_t bins = rows.size() - 1;
  const util::Duration horizon = bins * grid.width();
  features::FeatureMatrix matrix;
  for (auto& s : matrix.series) s = features::BinnedSeries(grid, horizon);

  for (std::size_t r = 1; r < rows.size(); ++r) {
    MONOHIDS_ENSURE(rows[r].size() == 1 + features::kFeatureCount,
                    "feature CSV row has the wrong column count");
    for (std::size_t c = 0; c < features::kFeatureCount; ++c) {
      matrix.series[c].set(r - 1, parse_double_field(rows[r][c + 1], r, c + 1));
    }
  }
  return matrix;
}

}  // namespace monohids::trace
