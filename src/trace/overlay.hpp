// Attack overlay: the paper's additive threat model g + b.
//
// The botmaster's traffic adds to whatever the user generates; these
// helpers build attack series b and overlay them on user series g. Constant
// attacks put `size` extra units in every bin of a window (the Fig. 4 naive
// sweep); matrix overlays add a full zombie footprint (the Fig. 5 Storm
// replay, repeated/tiled if the user trace is longer than the attack).
#pragma once

#include "features/time_series.hpp"

namespace monohids::trace {

/// A constant-rate attack of `size` per bin over bins [first_bin, last_bin].
[[nodiscard]] features::BinnedSeries make_constant_attack(util::BinGrid grid,
                                                          util::Duration horizon, double size,
                                                          std::uint64_t first_bin,
                                                          std::uint64_t last_bin);

/// g + b for one feature; shapes must match.
[[nodiscard]] features::BinnedSeries overlay(const features::BinnedSeries& user,
                                             const features::BinnedSeries& attack);

/// Adds attack series b (possibly shorter) onto user series g, tiling b
/// periodically to cover g's horizon — the paper replays the one-week Storm
/// trace over multi-week user traces.
[[nodiscard]] features::BinnedSeries overlay_tiled(const features::BinnedSeries& user,
                                                   const features::BinnedSeries& attack);

/// Tiled overlay across all six features.
[[nodiscard]] features::FeatureMatrix overlay_tiled(const features::FeatureMatrix& user,
                                                    const features::FeatureMatrix& attack);

}  // namespace monohids::trace
