// Diurnal / weekly user-activity model.
//
// The paper's collection ran on laptops that follow their users between
// work, home and travel, so activity never quite stops and weekends still
// carry traffic. This model produces a rate multiplier a(t) in [0, ~1.3]
// from a smooth work-hours curve, an evening bump (home use), a night
// floor (background chatter while the lid is open), weekend damping, and a
// per-user phase shift (early birds vs night owls).
#pragma once

#include "util/sim_time.hpp"

namespace monohids::trace {

struct DiurnalProfile {
  double phase_hours = 0.0;      ///< shifts the whole daily curve (-3..+3 typical)
  double work_level = 1.0;       ///< multiplier during work hours
  double evening_level = 0.45;   ///< multiplier during the evening bump
  double night_floor = 0.04;     ///< background level at night
  double weekend_factor = 0.35;  ///< scales Saturday/Sunday activity
};

/// Activity multiplier at time `t` for the given profile. Continuous in t,
/// periodic over the week, and a pure time translation of the phase-0 curve:
/// activity_at(profile with phase p, t) == activity_at(same profile with
/// phase 0, t - p hours) — the weekend damping follows the shifted clock
/// along with the daily bumps.
[[nodiscard]] double activity_at(const DiurnalProfile& profile, util::Timestamp t) noexcept;

}  // namespace monohids::trace
