// Application session models.
//
// Each end-host behavior is a mix of six application types. A "session" is
// one user-visible action (loading a page, a mail poll, a P2P exchange...).
// Every session type can render itself two ways, guaranteed consistent:
//   - footprint(): the increments it contributes to the six study features
//     (used by the fast bin-level generator), and
//   - emit_packets(): an actual packet exchange whose flow-table/extractor
//     output matches that footprint (used by the full packet-level path and
//     validated by integration tests).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "net/packet.hpp"
#include "util/rng.hpp"

namespace monohids::trace {

enum class AppKind : std::uint8_t {
  Web = 0,      ///< HTTP/HTTPS page loads with DNS resolution
  Dns,          ///< background name lookups (connectivity checks, telemetry)
  Mail,         ///< mail-client polls (IMAP-style long-lived TCP)
  P2p,          ///< UDP peer exchange to many distinct peers
  Interactive,  ///< chat / remote-shell style single TCP connections
  Update,       ///< software-update bursts: many TCP fetches from few CDNs
};

inline constexpr std::size_t kAppCount = 6;

inline constexpr std::array<AppKind, kAppCount> kAllApps = {
    AppKind::Web, AppKind::Dns,        AppKind::Mail,
    AppKind::P2p, AppKind::Interactive, AppKind::Update,
};

[[nodiscard]] constexpr std::size_t index_of(AppKind a) noexcept {
  return static_cast<std::size_t>(a);
}

[[nodiscard]] std::string_view name_of(AppKind a) noexcept;

/// Feature increments contributed by one session. `distinct_draws` is the
/// number of destination-pool draws the session makes; the generator turns
/// draws into expected distinct destinations via the user's pool size.
struct SessionFootprint {
  std::uint32_t tcp_connections = 0;
  std::uint32_t udp_connections = 0;
  std::uint32_t dns_connections = 0;
  std::uint32_t http_connections = 0;
  std::uint32_t syn_packets = 0;
  std::uint32_t distinct_draws = 0;
};

/// Samples the random shape of one session of `kind` (page size, peer count,
/// ...). Deterministic given the RNG state.
[[nodiscard]] SessionFootprint sample_footprint(AppKind kind, util::Xoshiro256& rng);

/// Destination address pools for the packet path. The generator owns one per
/// user; sessions draw servers/peers out of it (Zipf-weighted inside the
/// emitter, so a few popular servers dominate while the tail stays long).
struct DestinationPools {
  net::Ipv4Address dns_server;                 ///< enterprise resolver
  net::Ipv4Address mail_server;                ///< enterprise mail host
  std::vector<net::Ipv4Address> web_servers;   ///< user's browsing pool
  std::vector<net::Ipv4Address> peer_pool;     ///< P2P peers / misc hosts
};

/// Emits the packet exchange of one session with the given sampled
/// footprint, starting near `start`. Packets are appended (unsorted across
/// sessions; the generator sorts the final trace). `src` is the monitored
/// host; ephemeral source ports are drawn from the RNG.
void emit_session_packets(AppKind kind, const SessionFootprint& footprint,
                          util::Timestamp start, net::Ipv4Address src,
                          const DestinationPools& pools, util::Xoshiro256& rng,
                          std::vector<net::PacketRecord>& out);

}  // namespace monohids::trace
