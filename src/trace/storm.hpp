// Storm-botnet zombie workload.
//
// Section 6.2's real-attack experiment overlays a week-long trace collected
// from a live STORM zombie onto every user trace and evaluates detection on
// num-distinct-connections. We cannot ship that proprietary capture, so this
// generator reproduces the zombie's published behavioral signature:
//
//   - continuous Overnet-style UDP peer chatter (probes to a large,
//     churning peer population — many distinct destinations at all hours),
//   - spam-relay campaigns: bursts of SMTP (TCP/25) connections to many
//     distinct mail exchangers, arriving in on/off waves,
//   - periodic DNS MX lookups supporting the spam waves,
//   - short TCP scan phases recruiting new peers.
//
// Unlike user traffic it has no diurnal rhythm — bots do not sleep — which
// is exactly why its distinct-connection footprint both overlaps light
// users' normal range and sticks out against their night-time quiet.
#pragma once

#include "features/time_series.hpp"
#include "net/packet.hpp"
#include "trace/apps.hpp"
#include "util/rng.hpp"

namespace monohids::trace {

struct StormConfig {
  std::uint64_t seed = 1007;
  util::BinGrid grid = util::BinGrid::minutes(15);
  std::uint32_t weeks = 1;  ///< the paper's zombie trace spans one week

  /// Mean UDP peer probes per minute during P2P chatter.
  double p2p_probes_per_minute = 2.5;
  /// Effective size of the churning peer universe.
  std::uint32_t peer_universe = 30000;

  /// Spam waves: mean arrivals per day, mean duration, and relay intensity.
  double spam_waves_per_day = 12.0;
  double spam_wave_mean_minutes = 60.0;
  double spam_relays_per_minute = 28.0;

  /// Scan phases: mean arrivals per day and probe intensity.
  double scan_phases_per_day = 0.7;
  double scan_probes_per_minute = 40.0;
  double scan_phase_mean_minutes = 12.0;
};

/// Renders the zombie's feature matrix (the additive attack term b in
/// g + b). Deterministic given the config.
[[nodiscard]] features::FeatureMatrix generate_storm_features(const StormConfig& config);

/// Renders zombie packets for [begin, end) — used to validate the feature
/// rendering through the real pipeline. `zombie` is the infected host's
/// address.
[[nodiscard]] std::vector<net::PacketRecord> generate_storm_packets(const StormConfig& config,
                                                                    net::Ipv4Address zombie,
                                                                    util::Timestamp begin,
                                                                    util::Timestamp end);

}  // namespace monohids::trace
