// UserProfile is a plain aggregate; this TU anchors the header in the
// library archive.
#include "trace/user_profile.hpp"

namespace monohids::trace {

static_assert(kAppCount == 6);

std::string_view name_of(Archetype a) noexcept {
  switch (a) {
    case Archetype::Browser: return "browser";
    case Archetype::Developer: return "developer";
    case Archetype::Media: return "media";
    case Archetype::MailCentric: return "mail-centric";
    case Archetype::Balanced: return "balanced";
  }
  return "unknown";
}

}  // namespace monohids::trace
