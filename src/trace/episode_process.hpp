// Burst-episode state machine shared by every render path.
//
// Episodes are rare bursty periods (a crawl, a large sync) during which all
// of a user's session rates are multiplied by a sampled factor. The process
// is stepped bin by bin with identical draws in every render path (bin-level
// reference, bin-level batched, packet walk), so all paths share their
// bursts draw for draw.
//
// Pinned semantics (tests/trace/test_episode_process.cpp holds these fixed
// so the batched rate-table path can reproduce them exactly):
//
//   - Expiry is half-open [start, end): a bin starting exactly at the
//     episode's end timestamp is NOT boosted — the multiplier resets to 1
//     before the start draw for that bin.
//   - While an episode is active (multiplier != 1), step() consumes NO
//     draws: the start draw only happens when the process is idle.
//   - An episode start consumes exactly three draws in order: the uniform
//     start draw, the log-normal boost draw (two uniforms via Box–Muller),
//     and the exponential duration draw. The boost draw is consumed even
//     when the 6.0 clamp binds — min(sample, 6.0) draws first, clamps after.
//   - The returned multiplier applies to the whole bin: a bin whose start
//     lies inside [start, end) is boosted in full even if the episode
//     expires mid-bin.
#pragma once

#include <algorithm>
#include <cmath>

#include "stats/sampling.hpp"
#include "trace/user_profile.hpp"
#include "util/rng.hpp"
#include "util/sim_time.hpp"

namespace monohids::trace {

/// Templated on the engine: v1 paths step a Xoshiro256 stream, the v2
/// counter-mode contract steps a Philox4x32 stream (seeded with the
/// episode key, stream 0). The draw semantics above are engine-agnostic —
/// only the draw grain differs.
template <typename Engine = util::Xoshiro256>
class BasicEpisodeProcess {
 public:
  BasicEpisodeProcess(const UserProfile& user, double log_mu, std::uint64_t seed)
      : user_(&user), log_mu_(log_mu), rng_(seed) {}

  /// Multiplier in effect for the bin starting at `bin_start`.
  double step(util::Timestamp bin_start, double bin_hours, double activity) {
    if (bin_start >= episode_end_) multiplier_ = 1.0;
    const double start_probability =
        std::min(1.0, user_->episode_rate_per_hour * activity * bin_hours);
    if (multiplier_ == 1.0 && rng_.uniform01() < start_probability) {
      const stats::LogNormalSampler boost(log_mu_, user_->episode_log_sigma);
      multiplier_ =
          1.0 + std::min(boost.sample(rng_), 6.0) * user_->episode_amplitude;
      const double minutes =
          stats::sample_exponential(rng_, 1.0 / user_->episode_mean_minutes);
      episode_end_ = bin_start + util::from_seconds(minutes * 60.0);
    }
    return multiplier_;
  }

  /// Upper bound on any multiplier this process can return (the boost draw
  /// is clamped at 6.0 before the amplitude scaling).
  [[nodiscard]] double max_multiplier() const noexcept {
    return 1.0 + 6.0 * user_->episode_amplitude;
  }

 private:
  const UserProfile* user_;
  double log_mu_;
  Engine rng_;
  double multiplier_ = 1.0;
  util::Timestamp episode_end_ = 0;
};

/// The v1 process (Xoshiro engine), under its historical name.
using EpisodeProcess = BasicEpisodeProcess<>;

}  // namespace monohids::trace
