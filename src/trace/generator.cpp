#include "trace/generator.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>

#include "obs/metrics.hpp"
#include "stats/sampling.hpp"
#include "trace/episode_process.hpp"
#include "util/error.hpp"

namespace monohids::trace {

using util::Timestamp;

namespace {
std::atomic<bool> g_batched_generation{true};
}  // namespace

bool batched_generation_enabled() noexcept {
  return g_batched_generation.load(std::memory_order_relaxed);
}

void set_batched_generation_enabled(bool enabled) noexcept {
  g_batched_generation.store(enabled, std::memory_order_relaxed);
}

TraceGenerator::TraceGenerator(GeneratorConfig config) : config_(config) {
  MONOHIDS_EXPECT(config_.weeks > 0, "generator horizon must cover at least one week");
}

DestinationPools TraceGenerator::make_pools(const UserProfile& user) const {
  DestinationPools pools;
  pools.dns_server = net::Ipv4Address::from_octets(10, 10, 255, 2);
  pools.mail_server = net::Ipv4Address::from_octets(10, 10, 255, 3);

  util::Xoshiro256 rng(util::derive_seed(user.seed, "pools", 0));
  const std::uint32_t web_count =
      std::max<std::uint32_t>(8, static_cast<std::uint32_t>(user.destination_pool_size * 0.6));
  const std::uint32_t peer_count =
      std::max<std::uint32_t>(8, user.destination_pool_size - web_count);

  pools.web_servers.reserve(web_count);
  for (std::uint32_t i = 0; i < web_count; ++i) {
    // public web space: 93.0.0.0/8-ish spread
    pools.web_servers.push_back(net::Ipv4Address(
        (93u << 24) + static_cast<std::uint32_t>(stats::sample_uniform_int(rng, 0, 0xFFFFFF))));
  }
  pools.peer_pool.reserve(peer_count);
  for (std::uint32_t i = 0; i < peer_count; ++i) {
    pools.peer_pool.push_back(net::Ipv4Address(
        (78u << 24) + static_cast<std::uint32_t>(stats::sample_uniform_int(rng, 0, 0xFFFFFF))));
  }
  return pools;
}

features::FeatureMatrix TraceGenerator::generate_features(const UserProfile& user) const {
  if (config_.scenario_version == ScenarioVersion::V2) return generate_features_v2(user);
  if (batched_generation_enabled()) return generate_features_batched(user);
  return generate_features_reference(user);
}

features::FeatureMatrix TraceGenerator::generate_features_reference(
    const UserProfile& user) const {
  const util::BinGrid grid = config_.grid;
  const util::Duration horizon = config_.horizon();
  features::FeatureMatrix matrix;
  for (auto& s : matrix.series) s = features::BinnedSeries(grid, horizon);

  util::Xoshiro256 rng(util::derive_seed(user.seed, "bins", 0));
  EpisodeProcess episodes(user, config_.episode_log_mu,
                          util::derive_seed(user.seed, "episodes", 0));

  const double bin_hours =
      static_cast<double>(grid.width()) / static_cast<double>(util::kMicrosPerHour);
  const double effective_pool =
      std::max(4.0, config_.distinct_pool_factor * user.destination_pool_size);
  const std::uint64_t bins = grid.bin_count(horizon);

  for (std::uint64_t b = 0; b < bins; ++b) {
    const Timestamp start = grid.bin_start(b);
    const Timestamp mid = start + grid.width() / 2;
    const double act = activity_at(user.diurnal, mid);
    const double boost = episodes.step(start, bin_hours, act);
    const std::uint32_t week = util::week_of(mid);

    double tcp = 0, udp = 0, dns = 0, http = 0, syn = 0;
    double distinct_draws = 0;

    for (AppKind app : kAllApps) {
      const double lambda =
          user.rate_of(app) * act * boost * user.drift(week, app) * bin_hours;
      const std::uint64_t sessions = stats::sample_poisson(rng, lambda);
      for (std::uint64_t s = 0; s < sessions; ++s) {
        const SessionFootprint f = sample_footprint(app, rng);
        tcp += f.tcp_connections;
        udp += f.udp_connections;
        dns += f.dns_connections;
        http += f.http_connections;
        syn += f.syn_packets;
        distinct_draws += f.distinct_draws;
      }
    }
    // Resolver cache: a fraction of lookups never hit the wire. Cached
    // lookups remove both a DNS flow and its UDP flow (same flow).
    const double cached = std::round(dns * user.dns_cache_hit);
    dns -= cached;
    udp -= cached;
    // Cached lookups also stop contributing a destination draw: no packet
    // reaches the resolver.
    distinct_draws = std::max(0.0, distinct_draws - cached);

    using features::FeatureKind;
    matrix.of(FeatureKind::TcpConnections).set(b, tcp);
    matrix.of(FeatureKind::UdpConnections).set(b, udp);
    matrix.of(FeatureKind::DnsConnections).set(b, dns);
    matrix.of(FeatureKind::HttpConnections).set(b, http);
    matrix.of(FeatureKind::TcpSyn).set(b, syn);
    // Distinct destinations: m popularity-weighted draws from a pool of
    // effective size P cover ~P(1 - (1 - 1/P)^m) distinct addresses.
    const double distinct =
        distinct_draws == 0
            ? 0.0
            : effective_pool *
                  (1.0 - std::pow(1.0 - 1.0 / effective_pool, distinct_draws));
    matrix.of(FeatureKind::DistinctConnections).set(b, std::round(distinct));
  }
  return matrix;
}

template <typename BinStart>
void TraceGenerator::walk_packets(const UserProfile& user, Timestamp begin, Timestamp end,
                                  std::vector<net::PacketRecord>& pending,
                                  BinStart&& on_rendered_bin) const {
  MONOHIDS_EXPECT(begin < end, "empty packet range");
  MONOHIDS_EXPECT(end <= config_.horizon(), "range beyond generator horizon");
  // The packet walk shares the v1 "bins" stream draw for draw with the
  // bin-level path; the v2 counter-mode contract has no packet rendering
  // (its draws are keyed per bin, not walked serially).
  MONOHIDS_EXPECT(config_.scenario_version == ScenarioVersion::V1,
                  "packet rendering requires the v1 scenario contract");

  const util::BinGrid grid = config_.grid;
  const DestinationPools pools = make_pools(user);

  // The same bin-walk as generate_features, with identical draws from the
  // "bins" stream — so session counts and footprints match the bin-level
  // trace exactly. Arrival offsets come from a dedicated stream (always
  // consumed, so any [begin,end) window sees the same sessions at the same
  // times); per-packet details (ephemeral ports, jitter) come from a packet
  // stream and may differ between windows.
  util::Xoshiro256 rng(util::derive_seed(user.seed, "bins", 0));
  util::Xoshiro256 arrival_rng(util::derive_seed(user.seed, "arrivals", 0));
  util::Xoshiro256 packet_rng(util::derive_seed(user.seed, "packets", 0));
  EpisodeProcess episodes(user, config_.episode_log_mu,
                          util::derive_seed(user.seed, "episodes", 0));

  const double bin_hours =
      static_cast<double>(grid.width()) / static_cast<double>(util::kMicrosPerHour);

  const std::uint64_t first_bin = grid.bin_of(begin);
  const std::uint64_t last_bin = grid.bin_of(end - 1);
  // Advance the shared RNG streams deterministically through skipped bins so
  // a [begin,end) window reproduces the exact traffic of the full trace.
  for (std::uint64_t b = 0; b <= last_bin; ++b) {
    const Timestamp start = grid.bin_start(b);
    const Timestamp mid = start + grid.width() / 2;
    const double act = activity_at(user.diurnal, mid);
    const double boost = episodes.step(start, bin_hours, act);
    const std::uint32_t week = util::week_of(mid);
    const bool render = b >= first_bin;
    // Every packet emitted from bin b onward has timestamp >= start, so
    // pending packets before `start` are final (the streaming watermark).
    if (render) on_rendered_bin(start);

    for (AppKind app : kAllApps) {
      const double lambda =
          user.rate_of(app) * act * boost * user.drift(week, app) * bin_hours;
      const std::uint64_t sessions = stats::sample_poisson(rng, lambda);
      for (std::uint64_t s = 0; s < sessions; ++s) {
        SessionFootprint f = sample_footprint(app, rng);
        const Timestamp at =
            start + static_cast<util::Duration>(arrival_rng.uniform01() *
                                                static_cast<double>(grid.width() - 1));
        if (!render) continue;
        // Resolver cache, matching the bin-level path statistically.
        std::uint32_t kept_dns = 0;
        for (std::uint32_t d = 0; d < f.dns_connections; ++d) {
          if (packet_rng.uniform01() >= user.dns_cache_hit) ++kept_dns;
        }
        f.udp_connections -= (f.dns_connections - kept_dns);
        f.dns_connections = kept_dns;
        emit_session_packets(app, f, at, user.address, pools, packet_rng, pending);
      }
    }
  }
}

std::vector<net::PacketRecord> TraceGenerator::generate_packets(const UserProfile& user,
                                                                Timestamp begin,
                                                                Timestamp end) const {
  std::vector<net::PacketRecord> out;
  walk_packets(user, begin, end, out, [](Timestamp) {});

  // Total order (timestamp, tuple, flags, payload): equal-timestamp ties are
  // deterministic and identical to the chunk-sorted streamed path.
  std::sort(out.begin(), out.end());
  // Clip: sessions started near the end of the window may spill past `end`,
  // and sessions in begin's bin may have started before `begin`.
  out.erase(std::remove_if(out.begin(), out.end(),
                           [begin, end](const net::PacketRecord& p) {
                             return p.timestamp < begin || p.timestamp >= end;
                           }),
            out.end());
  return out;
}

void TraceGenerator::generate_packets_streamed(const UserProfile& user, Timestamp begin,
                                               Timestamp end, features::PacketSink& sink,
                                               std::size_t max_batch) const {
  MONOHIDS_EXPECT(max_batch > 0, "streamed batch size must be positive");

  std::vector<net::PacketRecord> pending;  // reorder window: ts >= watermark
  std::vector<net::PacketRecord> ready;    // sorted finals awaiting emission
  std::vector<net::PacketRecord> stage;    // staged batch for the sink

  // Batch-granular instrumentation: local tallies published once per user
  // walk, so the per-packet path carries no atomics (obs cost model).
  static obs::Counter packets_streamed =
      obs::MetricsRegistry::global().counter("tracegen.packets_streamed");
  static obs::Histogram reorder_occupancy = obs::MetricsRegistry::global().histogram(
      "tracegen.reorder_window_packets", obs::pow2_buckets(20));
  std::uint64_t staged_total = 0;
  std::size_t peak_pending = 0;

  const auto emit_full_batches = [&](bool emit_tail) {
    std::size_t offset = 0;
    while (stage.size() - offset >= max_batch) {
      sink.on_batch(std::span<const net::PacketRecord>(stage).subspan(offset, max_batch));
      offset += max_batch;
    }
    if (emit_tail && offset < stage.size()) {
      sink.on_batch(std::span<const net::PacketRecord>(stage).subspan(offset));
      offset = stage.size();
    }
    stage.erase(stage.begin(), stage.begin() + static_cast<std::ptrdiff_t>(offset));
  };

  const auto flush_watermark = [&](Timestamp watermark) {
    // Move everything final (ts < watermark) out of the reorder window. The
    // partition splits on timestamp alone, so equal-timestamp ties always
    // stay in one flush group and the per-group total-order sort reproduces
    // the batch path's global sort exactly.
    peak_pending = std::max(peak_pending, pending.size());
    const auto keep = std::partition(pending.begin(), pending.end(),
                                     [watermark](const net::PacketRecord& p) {
                                       return p.timestamp >= watermark;
                                     });
    if (keep == pending.end()) return;
    ready.assign(keep, pending.end());
    pending.erase(keep, pending.end());
    std::sort(ready.begin(), ready.end());
    for (const net::PacketRecord& p : ready) {
      if (p.timestamp < begin || p.timestamp >= end) continue;  // window clip
      stage.push_back(p);
      ++staged_total;
    }
    emit_full_batches(false);
  };

  walk_packets(user, begin, end, pending, flush_watermark);
  // Everything left is final; `end` as watermark clips the spill past it.
  flush_watermark(std::numeric_limits<Timestamp>::max());
  emit_full_batches(true);

  packets_streamed.add(staged_total);
  reorder_occupancy.observe(static_cast<double>(peak_pending));
}

}  // namespace monohids::trace
