// Trace persistence.
//
// Packet traces serialize to a compact binary format (magic + version +
// fixed-width records, little-endian) so generated traces can be archived
// and replayed, and to CSV for interoperability with external tools.
// Feature matrices serialize to CSV (one row per bin, one column per
// feature) — the same shape the paper's Bro post-processing produced.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "features/pipeline.hpp"
#include "features/time_series.hpp"
#include "net/packet.hpp"

namespace monohids::trace {

/// Binary packet-trace format version written by this library.
inline constexpr std::uint32_t kTraceFormatVersion = 1;

/// Writes packets in the binary trace format.
void write_packet_trace(std::ostream& out, const std::vector<net::PacketRecord>& packets);

/// Reads a binary trace; throws InputError on malformed input.
[[nodiscard]] std::vector<net::PacketRecord> read_packet_trace(std::istream& in);

/// Streaming form of read_packet_trace: decodes records straight into `sink`
/// in batches of at most `max_batch` packets, so peak memory is bounded by
/// the batch size instead of the trace length. Returns the packet count.
std::uint64_t stream_packet_trace(std::istream& in, features::PacketSink& sink,
                                  std::size_t max_batch = features::kDefaultIngestBatch);

/// Writes packets as CSV with a header row
/// (timestamp_us,src,dst,sport,dport,proto,flags,payload).
void write_packet_csv(std::ostream& out, const std::vector<net::PacketRecord>& packets);

/// Reads the packet-CSV format back (header required, fields as written by
/// write_packet_csv; protocol accepts "tcp"/"udp"/"icmp"). This is the
/// import path for external traces — convert a pcap with tshark/tcpdump to
/// this CSV shape and the whole pipeline (flows, features, policies) runs
/// on real traffic. Throws InputError on malformed rows.
[[nodiscard]] std::vector<net::PacketRecord> read_packet_csv(std::istream& in);

/// Streaming form of read_packet_csv: parses row by row into `sink` in
/// batches of at most `max_batch` packets. Same format and validation as
/// read_packet_csv (multi-line quoted fields are not supported — the packet
/// CSV shape never produces them). Returns the packet count.
std::uint64_t stream_packet_csv(std::istream& in, features::PacketSink& sink,
                                std::size_t max_batch = features::kDefaultIngestBatch);

/// Writes a feature matrix as CSV: bin_start_us then one column per feature.
void write_feature_csv(std::ostream& out, const features::FeatureMatrix& matrix);

/// Reads a feature-matrix CSV produced by write_feature_csv.
[[nodiscard]] features::FeatureMatrix read_feature_csv(std::istream& in, util::BinGrid grid);

}  // namespace monohids::trace
