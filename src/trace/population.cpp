#include "trace/population.hpp"

#include <algorithm>
#include <cmath>

#include "stats/sampling.hpp"
#include "util/error.hpp"

namespace monohids::trace {

std::array<double, kAppCount> base_session_rates() noexcept {
  std::array<double, kAppCount> rates{};
  rates[index_of(AppKind::Web)] = 26.0;         // page loads per active hour
  rates[index_of(AppKind::Dns)] = 40.0;         // background lookup bursts
  rates[index_of(AppKind::Mail)] = 10.0;         // mail polls
  rates[index_of(AppKind::P2p)] = 2.2;          // most users barely use it
  rates[index_of(AppKind::Interactive)] = 10.0;  // chat / remote shells
  rates[index_of(AppKind::Update)] = 0.3;       // a few update bursts a day
  return rates;
}

namespace {

/// The intensity prefix of a user's profile — the first draws of the
/// per-user "profile" stream, which fix (intensity, heavy_class). Pure
/// keyed function of the stream the caller seeds: both sample_base_profile
/// and the extreme-promotion planning pass resolve it through here, so the
/// planning preview can never drift from the profile draw order (the old
/// arrangement hand-replayed this prefix in two places).
struct IntensityPrefix {
  double intensity = 0.0;    ///< bulk intensity, heavy boost applied
  double total_boost = 1.0;  ///< raw heavy boost draw (1 when not heavy)
  bool heavy = false;
};

IntensityPrefix sample_intensity_prefix(const PopulationConfig& config,
                                        util::Xoshiro256& rng) {
  // Overall intensity: log-normal body plus a heavy-class boost for a
  // ~heavy_fraction subset. This mixture produces the knee in Fig. 1.
  const stats::LogNormalSampler body(config.intensity_log_mu, config.intensity_log_sigma);
  IntensityPrefix prefix;
  prefix.intensity = std::max(0.6, body.sample(rng));  // even idle hosts chatter
  prefix.heavy = rng.uniform01() < config.heavy_fraction;
  if (prefix.heavy) {
    // Heavy users are mostly *episodically* heavy: only a mild bulk boost,
    // with the rest of the heaviness expressed as bigger, more frequent
    // bursts (episode amplitude, derived from total_boost below). This is
    // what lets their 99th-percentile thresholds reach decades above the
    // median user while the population-pooled threshold stays near the
    // mid-bulk (as the paper's Fig. 4(b) numbers imply).
    const stats::LogNormalSampler boost(config.heavy_boost_log_mu,
                                        config.heavy_boost_log_sigma);
    prefix.total_boost = boost.sample(rng);
    prefix.intensity *= std::min(prefix.total_boost, 2.5);
  }
  return prefix;
}

/// Samples one user's full profile (everything except the global extreme
/// post-pass). The draw order here is the population RNG contract; the
/// shared sample_intensity_prefix covers the prefix the planning pass also
/// needs (and the builder-vs-generate regression test pins the rest).
UserProfile sample_base_profile(const PopulationConfig& config,
                                const std::array<double, kAppCount>& base_rates,
                                std::uint32_t id) {
  UserProfile u;
  u.user_id = id;
  u.seed = util::derive_seed(config.seed, "user", id);
  u.address = net::Ipv4Address(config.subnet_base.value() + 1 + id);
  util::Xoshiro256 rng(util::derive_seed(u.seed, "profile", 0));

  const IntensityPrefix prefix = sample_intensity_prefix(config, rng);
  u.intensity = prefix.intensity;
  u.heavy_class = prefix.heavy;
  double episode_amp = 1.0;
  double episode_rate_scale = 1.0;
  if (prefix.heavy) {
    const double bulk_boost = std::min(prefix.total_boost, 2.5);
    episode_amp = 1.0 + 2.0 * (prefix.total_boost / bulk_boost);
    episode_rate_scale = 3.0;
  }

  // Behavioral archetype: which applications dominate. Sampled
  // independently of intensity, archetypes break the cross-feature
  // correlation a single intensity scalar would impose — they create the
  // Fig.-2 corners (TCP-heavy-but-UDP-light users and the reverse).
  const double role_draw = rng.uniform01();
  if (role_draw < 0.40) {
    u.archetype = Archetype::Browser;
  } else if (role_draw < 0.55) {
    u.archetype = Archetype::Developer;
  } else if (role_draw < 0.70) {
    u.archetype = Archetype::Media;
  } else if (role_draw < 0.85) {
    u.archetype = Archetype::MailCentric;
  } else {
    u.archetype = Archetype::Balanced;
  }
  std::array<double, kAppCount> role{1, 1, 1, 1, 1, 1};
  switch (u.archetype) {
    case Archetype::Browser:
      role[index_of(AppKind::Web)] = 2.5;
      role[index_of(AppKind::Dns)] = 1.4;
      role[index_of(AppKind::P2p)] = 0.1;
      break;
    case Archetype::Developer:
      role[index_of(AppKind::Update)] = 7.0;
      role[index_of(AppKind::Interactive)] = 3.5;
      role[index_of(AppKind::Web)] = 0.5;
      role[index_of(AppKind::Dns)] = 0.5;
      role[index_of(AppKind::P2p)] = 0.05;
      break;
    case Archetype::Media:
      role[index_of(AppKind::P2p)] = 9.0;
      role[index_of(AppKind::Web)] = 0.7;
      break;
    case Archetype::MailCentric:
      role[index_of(AppKind::Mail)] = 4.0;
      role[index_of(AppKind::Interactive)] = 2.0;
      role[index_of(AppKind::Web)] = 0.4;
      role[index_of(AppKind::P2p)] = 0.05;
      break;
    case Archetype::Balanced:
      break;
  }

  // Per-app mix: archetype times an independent log-normal weight.
  for (AppKind app : kAllApps) {
    const double sigma =
        app == AppKind::Dns ? config.dns_mix_log_sigma : config.app_mix_log_sigma;
    const stats::LogNormalSampler mix(-sigma * sigma / 2.0, sigma);  // mean 1
    double weight = std::max(0.15, mix.sample(rng)) * role[index_of(app)];
    // Outside the media archetype P2P stays mostly absent.
    if (app == AppKind::P2p && u.archetype != Archetype::Media &&
        rng.uniform01() < 0.6) {
      weight *= 0.02;
    }
    u.session_rate_per_hour[index_of(app)] =
        base_rates[index_of(app)] * u.intensity * weight;
  }

  // Diurnal rhythm: phase jitter, work/evening levels, weekend behavior.
  u.diurnal.phase_hours = (rng.uniform01() - 0.5) * 4.0;
  u.diurnal.work_level = 0.8 + rng.uniform01() * 0.4;
  u.diurnal.evening_level = 0.2 + rng.uniform01() * 0.5;
  u.diurnal.night_floor = 0.02 + rng.uniform01() * 0.05;
  u.diurnal.weekend_factor = 0.15 + rng.uniform01() * 0.5;

  // Burst episodes: heavier users also burst more.
  u.episode_rate_per_hour = (0.01 + rng.uniform01() * 0.03) * episode_rate_scale;
  u.episode_log_sigma = 0.4 + rng.uniform01() * 0.3;
  u.episode_mean_minutes = 10.0 + rng.uniform01() * 30.0;
  u.episode_amplitude = episode_amp;

  // Week-over-week drift (mean-1 log-normal per week per app). Heavy
  // users' workloads are more volatile — endhost profiling studies find
  // power users dominated by bursty bulk activity — so drift sigma grows
  // with intensity. This volatility is what pushes the monoculture's
  // console alarm volume above the diversity policies' (Table 3).
  const double drift_sigma =
      config.weekly_drift_log_sigma * (1.0 + 2.0 * std::log10(1.0 + u.intensity));
  const stats::LogNormalSampler drift(-drift_sigma * drift_sigma / 2.0, drift_sigma);
  u.weekly_drift.resize(config.weeks);
  double trend = 1.0;
  for (std::uint32_t w = 0; w < config.weeks; ++w) {
    for (AppKind app : kAllApps) {
      u.weekly_drift[w][index_of(app)] = trend * drift.sample(rng);
    }
    trend *= config.weekly_trend;
  }

  // Resolver caching: hit rate approaches 1 for busy hosts, so effective
  // DNS traffic grows only ~sqrt(intensity).
  u.dns_cache_hit =
      std::clamp(1.0 - std::pow(std::max(1.0, u.intensity), -0.5), 0.0, 0.95);

  // Destination universe grows with intensity (wide spread: Fig. 1c shows
  // distinct-connection thresholds spanning ~4 decades).
  u.destination_pool_size = static_cast<std::uint32_t>(
      std::clamp(140.0 * std::pow(u.intensity, 1.0) * (0.4 + 1.2 * rng.uniform01()),
                 30.0, 80000.0));

  return u;
}

/// Promotes one user to an extreme host (build server, data-sync power
/// user): bulk-heavy machines whose sustained rates dwarf any
/// population-wide threshold. `rank` is the user's position in the global
/// intensity ordering of heavy users and seeds the promotion RNG.
void apply_extreme_promotion(const PopulationConfig& config, std::uint32_t rank,
                             UserProfile& u) {
  util::Xoshiro256 xrng(util::derive_seed(config.seed, "extreme", rank));
  const stats::LogNormalSampler extreme(config.extreme_boost_log_mu,
                                        config.extreme_boost_log_sigma);
  const double boost = extreme.sample(xrng);
  u.intensity *= boost;
  for (AppKind app : kAllApps) {
    u.session_rate_per_hour[index_of(app)] *= boost;  // sustained, not bursty
  }
  u.episode_amplitude = 1.0;
  u.dns_cache_hit =
      std::clamp(1.0 - std::pow(std::max(1.0, u.intensity), -0.5), 0.0, 0.95);
  u.destination_pool_size = static_cast<std::uint32_t>(std::clamp(
      static_cast<double>(u.destination_pool_size) * boost, 40.0, 80000.0));
}

}  // namespace

PopulationBuilder::PopulationBuilder(PopulationConfig config)
    : config_(config), base_rates_(base_session_rates()) {
  MONOHIDS_EXPECT(config_.user_count > 0, "population must be non-empty");
  MONOHIDS_EXPECT(config_.heavy_fraction >= 0.0 && config_.heavy_fraction <= 1.0,
                  "heavy fraction must be in [0,1]");

  // Planning pass: run, per user, the shared intensity prefix of the
  // profile stream — the draws that fix (intensity, heavy_class), the two
  // fields the extreme-promotion ranking reads. ~3 draws per user instead
  // of a full profile, so planning 1M users costs milliseconds and no
  // profile has to stay resident. Because this is the same function
  // sample_base_profile() starts with, on the same keyed stream, the
  // preview is exact by construction rather than by replayed convention.
  std::vector<std::pair<double, std::uint32_t>> heavy;  // (intensity, id)
  for (std::uint32_t id = 0; id < config_.user_count; ++id) {
    const std::uint64_t user_seed = util::derive_seed(config_.seed, "user", id);
    util::Xoshiro256 rng(util::derive_seed(user_seed, "profile", 0));
    const IntensityPrefix prefix = sample_intensity_prefix(config_, rng);
    if (prefix.heavy) heavy.emplace_back(prefix.intensity, id);
  }

  // Same ordering as the original post-pass: heavy users by descending
  // intensity, ties resolved by the pre-sort order (ascending id).
  std::sort(heavy.begin(), heavy.end(), [](const auto& a, const auto& b) {
    return a.first > b.first;
  });
  const std::size_t extreme_count = std::min<std::size_t>(
      heavy.size(),
      static_cast<std::size_t>(std::llround(config_.extreme_fraction_of_heavy *
                                            config_.heavy_fraction *
                                            config_.user_count)));
  extreme_rank_by_id_.reserve(extreme_count);
  for (std::uint32_t rank = 0; rank < extreme_count; ++rank) {
    extreme_rank_by_id_.emplace_back(heavy[rank].second, rank);
  }
  std::sort(extreme_rank_by_id_.begin(), extreme_rank_by_id_.end());
}

UserProfile PopulationBuilder::build(std::uint32_t id) const {
  MONOHIDS_EXPECT(id < config_.user_count, "user id out of range");
  UserProfile u = sample_base_profile(config_, base_rates_, id);
  const auto it = std::lower_bound(
      extreme_rank_by_id_.begin(), extreme_rank_by_id_.end(), id,
      [](const auto& entry, std::uint32_t key) { return entry.first < key; });
  if (it != extreme_rank_by_id_.end() && it->first == id) {
    apply_extreme_promotion(config_, it->second, u);
  }
  return u;
}

std::vector<UserProfile> generate_population(const PopulationConfig& config) {
  const PopulationBuilder builder(config);
  std::vector<UserProfile> users;
  users.reserve(config.user_count);
  for (std::uint32_t id = 0; id < config.user_count; ++id) {
    users.push_back(builder.build(id));
  }
  return users;
}

}  // namespace monohids::trace
