#include "trace/overlay.hpp"

#include "util/error.hpp"

namespace monohids::trace {

features::BinnedSeries make_constant_attack(util::BinGrid grid, util::Duration horizon,
                                            double size, std::uint64_t first_bin,
                                            std::uint64_t last_bin) {
  MONOHIDS_EXPECT(size >= 0.0, "attack size must be non-negative");
  features::BinnedSeries b(grid, horizon);
  MONOHIDS_EXPECT(first_bin <= last_bin && last_bin < b.bin_count(),
                  "attack window out of range");
  for (std::uint64_t i = first_bin; i <= last_bin; ++i) b.set(i, size);
  return b;
}

features::BinnedSeries overlay(const features::BinnedSeries& user,
                               const features::BinnedSeries& attack) {
  return user + attack;
}

features::BinnedSeries overlay_tiled(const features::BinnedSeries& user,
                                     const features::BinnedSeries& attack) {
  MONOHIDS_EXPECT(user.grid().width() == attack.grid().width(),
                  "user and attack series use different bin widths");
  MONOHIDS_EXPECT(attack.bin_count() > 0, "attack series is empty");
  features::BinnedSeries out = user;
  for (std::size_t i = 0; i < user.bin_count(); ++i) {
    out.set(i, user.at(i) + attack.at(i % attack.bin_count()));
  }
  return out;
}

features::FeatureMatrix overlay_tiled(const features::FeatureMatrix& user,
                                      const features::FeatureMatrix& attack) {
  features::FeatureMatrix out;
  for (features::FeatureKind f : features::kAllFeatures) {
    out.of(f) = overlay_tiled(user.of(f), attack.of(f));
  }
  return out;
}

}  // namespace monohids::trace
