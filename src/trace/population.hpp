// Enterprise population generation.
//
// Replaces the paper's proprietary 350-host dataset. Users are sampled from
// heavy-tailed meta-distributions calibrated so the derived per-feature
// 99th-percentile thresholds qualitatively match Figure 1: 2-4 decades of
// spread for five features, ~2 decades for DNS, and a ~15% heavy-user knee.
// See DESIGN.md §2 for the substitution rationale.
#pragma once

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "trace/user_profile.hpp"

namespace monohids::trace {

struct PopulationConfig {
  std::uint32_t user_count = 350;
  std::uint64_t seed = 42;
  std::uint32_t weeks = 5;  ///< horizon used for weekly drift sampling

  /// Fraction of users in the heavy class (the knee in Fig. 1).
  double heavy_fraction = 0.15;

  /// log-normal intensity meta-distribution for the base (light/medium)
  /// population; heavy users multiply an extra log-normal factor on top.
  double intensity_log_mu = 0.6;
  double intensity_log_sigma = 0.55;
  double heavy_boost_log_mu = 1.2;     ///< e^1.2 ~ 3.3x boost for the knee
  double heavy_boost_log_sigma = 0.4;

  /// A small subset of heavy users are extreme outliers (build machines,
  /// data-sync power users) — the hosts whose bulk traffic dwarfs any
  /// population-wide threshold. Fraction is relative to the heavy class.
  double extreme_fraction_of_heavy = 0.08;
  double extreme_boost_log_mu = 2.7;
  double extreme_boost_log_sigma = 0.35;

  /// Per-app mix variability across users (log-sigma of the per-app weight).
  /// DNS gets a tighter sigma: the paper observes only ~2 decades of DNS
  /// spread vs 3-4 for the other features.
  double app_mix_log_sigma = 0.85;
  double dns_mix_log_sigma = 0.45;

  /// Week-over-week drift log-sigma (threshold instability, §6.1).
  double weekly_drift_log_sigma = 0.07;

  /// Population-wide multiplicative activity trend per week. The paper
  /// observed that a 99th-percentile threshold did "not always reflect a 1%
  /// false positive rate in the next week" — realized per-user FP came in
  /// well under target — which implies test weeks ran lighter than training
  /// weeks. A mild weekly decline (seasonal tail-off across the Q1
  /// collection window) reproduces that asymmetry.
  double weekly_trend = 0.84;

  /// Enterprise address block users are numbered from.
  net::Ipv4Address subnet_base = net::Ipv4Address::from_octets(10, 10, 0, 0);
};

/// Mean session rates per hour (at activity 1.0, intensity 1.0) per app;
/// exposed for tests and ablations.
[[nodiscard]] std::array<double, kAppCount> base_session_rates() noexcept;

/// Random-access population generation for sharded fleet builds.
///
/// Profile sampling is pure per user (its RNG stream is derived from the
/// user id alone), but extreme-host promotion is a *global* post-pass: it
/// ranks all heavy-class users by intensity and boosts the top few. The
/// builder makes that compatible with streaming by running a cheap preview
/// pass at construction — replaying, per user, only the RNG draw prefix
/// that determines (intensity, heavy_class) — to fix the promotion plan up
/// front. After that, build(id) is pure: any shard can materialize any
/// user, in any order, bit-identical to generate_population().
class PopulationBuilder {
 public:
  explicit PopulationBuilder(PopulationConfig config);

  [[nodiscard]] const PopulationConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::uint32_t user_count() const noexcept { return config_.user_count; }
  [[nodiscard]] std::size_t extreme_count() const noexcept {
    return extreme_rank_by_id_.size();
  }

  /// Materializes one user's full profile (including extreme promotion when
  /// the preview plan selected it). Pure: depends only on (config, id).
  [[nodiscard]] UserProfile build(std::uint32_t id) const;

 private:
  PopulationConfig config_;
  std::array<double, kAppCount> base_rates_;
  /// (user id, promotion rank), sorted by user id, for the preview-planned
  /// extreme hosts.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> extreme_rank_by_id_;
};

/// Deterministically generates the population for `config`.
[[nodiscard]] std::vector<UserProfile> generate_population(const PopulationConfig& config);

}  // namespace monohids::trace
