#include "trace/apps.hpp"

#include <algorithm>
#include <cmath>

#include "net/classify.hpp"
#include "stats/sampling.hpp"
#include "util/error.hpp"

namespace monohids::trace {

std::string_view name_of(AppKind a) noexcept {
  switch (a) {
    case AppKind::Web: return "web";
    case AppKind::Dns: return "dns";
    case AppKind::Mail: return "mail";
    case AppKind::P2p: return "p2p";
    case AppKind::Interactive: return "interactive";
    case AppKind::Update: return "update";
  }
  return "unknown";
}

namespace {

/// Pareto-distributed object count with a floor of 1 and a cap; heavy tails
/// here are what make per-user bin-count distributions heavy-tailed.
std::uint32_t pareto_count(util::Xoshiro256& rng, double shape, std::uint32_t cap) {
  const stats::ParetoSampler pareto(1.0, shape);
  const double v = pareto.sample(rng);
  return static_cast<std::uint32_t>(std::min<double>(v, cap));
}

}  // namespace

SessionFootprint sample_footprint(AppKind kind, util::Xoshiro256& rng) {
  SessionFootprint f;
  switch (kind) {
    case AppKind::Web: {
      // One page load: k objects over d domains; ~45% of objects go to
      // HTTPS. A few percent of connection attempts retransmit their SYN.
      const std::uint32_t objects = pareto_count(rng, 2.6, 40);
      // Resolver caching bounds per-page lookups regardless of page size.
      const std::uint32_t domains =
          1 + static_cast<std::uint32_t>(
                  stats::sample_poisson(rng, std::min<double>(objects, 12.0) / 5.0));
      std::uint32_t https = 0;
      for (std::uint32_t i = 0; i < objects; ++i) {
        if (rng.uniform01() < 0.45) ++https;
      }
      f.tcp_connections = objects;
      f.http_connections = objects - https;
      f.dns_connections = domains;
      f.syn_packets = objects;
      for (std::uint32_t i = 0; i < objects; ++i) {
        if (rng.uniform01() < 0.03) ++f.syn_packets;  // SYN retransmission
      }
      f.distinct_draws = objects + 1;  // server picks (with reuse) + resolver
      f.udp_connections = domains;     // the DNS lookups themselves are UDP
      break;
    }
    case AppKind::Dns: {
      // Background lookup burst (connectivity probe, telemetry beacon).
      const std::uint32_t lookups = 1 + static_cast<std::uint32_t>(
                                            stats::sample_poisson(rng, 0.6));
      f.dns_connections = lookups;
      f.udp_connections = lookups;
      f.distinct_draws = 1;
      break;
    }
    case AppKind::Mail: {
      // Mail poll: one TCP connection to the mail host, occasionally a DNS
      // refresh first.
      f.tcp_connections = 1;
      f.syn_packets = 1;
      if (rng.uniform01() < 0.2) {
        f.dns_connections = 1;
        f.udp_connections = 1;
      }
      f.distinct_draws = 1;
      break;
    }
    case AppKind::P2p: {
      // Peer exchange: UDP probes to a heavy-tailed number of peers.
      const std::uint32_t peers = pareto_count(rng, 1.55, 600);
      f.udp_connections = peers;
      f.distinct_draws = peers;
      break;
    }
    case AppKind::Interactive: {
      // Chat / remote shell: a single long-lived TCP connection.
      f.tcp_connections = 1;
      f.syn_packets = 1;
      if (rng.uniform01() < 0.3) {
        f.dns_connections = 1;
        f.udp_connections = 1;
      }
      f.distinct_draws = 1;
      break;
    }
    case AppKind::Update: {
      // Update burst: many TCP fetches concentrated on a couple of CDN
      // hosts — large TCP/SYN counts without many distinct destinations.
      const std::uint32_t fetches = 4 + pareto_count(rng, 2.1, 100);
      f.tcp_connections = fetches;
      f.syn_packets = fetches + static_cast<std::uint32_t>(
                                    stats::sample_poisson(rng, fetches * 0.02));
      f.dns_connections = 1;
      f.udp_connections = 1;
      f.distinct_draws = 2;
      break;
    }
  }
  return f;
}

namespace {

using net::FiveTuple;
using net::PacketRecord;
using net::Protocol;
using net::TcpFlags;

std::uint16_t ephemeral_port(util::Xoshiro256& rng) {
  return static_cast<std::uint16_t>(stats::sample_uniform_int(rng, 49152, 65535));
}

/// Zipf-ish pick: squares a uniform draw so low indices are favored, giving
/// a popular-head / long-tail destination mix without a per-call Zipf table.
net::Ipv4Address pick_weighted(const std::vector<net::Ipv4Address>& pool,
                               util::Xoshiro256& rng) {
  MONOHIDS_EXPECT(!pool.empty(), "destination pool is empty");
  const double u = rng.uniform01();
  const auto idx = static_cast<std::size_t>(u * u * static_cast<double>(pool.size()));
  return pool[std::min(idx, pool.size() - 1)];
}

/// Emits a full TCP connection: SYN / SYN-ACK / ACK, optional data, FIN in
/// both directions. `extra_syns` prepends SYN retransmissions.
void emit_tcp_connection(util::Timestamp start, net::Ipv4Address src, net::Ipv4Address dst,
                         std::uint16_t dst_port, std::uint32_t extra_syns,
                         util::Xoshiro256& rng, std::vector<PacketRecord>& out) {
  const std::uint16_t sport = ephemeral_port(rng);
  const FiveTuple fwd{src, dst, sport, dst_port, Protocol::Tcp};
  const FiveTuple rev = fwd.reversed();
  util::Timestamp t = start;

  for (std::uint32_t i = 0; i < extra_syns; ++i) {
    out.push_back({t, fwd, TcpFlags::Syn, 0});
    t += 3 * util::kMicrosPerSecond;  // retransmission timer
  }
  out.push_back({t, fwd, TcpFlags::Syn, 0});
  t += 20'000;  // ~20 ms RTT
  out.push_back({t, rev, TcpFlags::Syn | TcpFlags::Ack, 0});
  t += 20'000;
  out.push_back({t, fwd, TcpFlags::Ack, 0});
  // a short request/response exchange
  t += 5'000;
  out.push_back({t, fwd, TcpFlags::Ack | TcpFlags::Psh, 400});
  t += 30'000;
  out.push_back({t, rev, TcpFlags::Ack | TcpFlags::Psh, 1400});
  // graceful close
  t += 50'000;
  out.push_back({t, fwd, TcpFlags::Fin | TcpFlags::Ack, 0});
  t += 20'000;
  out.push_back({t, rev, TcpFlags::Fin | TcpFlags::Ack, 0});
  t += 20'000;
  out.push_back({t, fwd, TcpFlags::Ack, 0});
}

/// Emits a UDP request/response pair (DNS lookup or P2P probe).
void emit_udp_exchange(util::Timestamp start, net::Ipv4Address src, net::Ipv4Address dst,
                       std::uint16_t dst_port, util::Xoshiro256& rng,
                       std::vector<PacketRecord>& out) {
  const std::uint16_t sport = ephemeral_port(rng);
  const FiveTuple fwd{src, dst, sport, dst_port, Protocol::Udp};
  out.push_back({start, fwd, TcpFlags::None, 64});
  out.push_back({start + 15'000, fwd.reversed(), TcpFlags::None, 128});
}

}  // namespace

void emit_session_packets(AppKind kind, const SessionFootprint& footprint,
                          util::Timestamp start, net::Ipv4Address src,
                          const DestinationPools& pools, util::Xoshiro256& rng,
                          std::vector<net::PacketRecord>& out) {
  util::Timestamp t = start;

  // DNS lookups first (they precede the connections they resolve).
  for (std::uint32_t i = 0; i < footprint.dns_connections; ++i) {
    emit_udp_exchange(t, src, pools.dns_server, net::ports::kDns, rng, out);
    t += 30'000 + stats::sample_uniform_int(rng, 0, 50'000);
  }

  switch (kind) {
    case AppKind::Web: {
      // http objects to port 80, the rest to 443, spread over the page load.
      std::uint32_t remaining_http = footprint.http_connections;
      std::uint32_t extra_syns = footprint.syn_packets - footprint.tcp_connections;
      for (std::uint32_t i = 0; i < footprint.tcp_connections; ++i) {
        const net::Ipv4Address dst = pick_weighted(pools.web_servers, rng);
        const bool is_http = remaining_http > 0;
        if (is_http) --remaining_http;
        // Spread the sampled retransmission budget over the first
        // connections so the rendered SYN count matches the footprint
        // exactly.
        const std::uint32_t retrans = extra_syns > 0 ? 1 : 0;
        extra_syns -= retrans;
        emit_tcp_connection(t, src, dst,
                            is_http ? net::ports::kHttp : net::ports::kHttps, retrans, rng,
                            out);
        t += 10'000 + stats::sample_uniform_int(rng, 0, 120'000);
      }
      break;
    }
    case AppKind::Dns:
      break;  // lookups already emitted
    case AppKind::Mail:
      emit_tcp_connection(t, src, pools.mail_server, 993, 0, rng, out);
      break;
    case AppKind::P2p: {
      for (std::uint32_t i = 0; i < footprint.udp_connections - footprint.dns_connections;
           ++i) {
        const net::Ipv4Address dst = pick_weighted(pools.peer_pool, rng);
        emit_udp_exchange(t, src, dst,
                          static_cast<std::uint16_t>(
                              stats::sample_uniform_int(rng, 10'000, 40'000)),
                          rng, out);
        t += 2'000 + stats::sample_uniform_int(rng, 0, 20'000);
      }
      break;
    }
    case AppKind::Interactive: {
      const net::Ipv4Address dst = pick_weighted(pools.peer_pool, rng);
      emit_tcp_connection(t, src, dst, 5222, 0, rng, out);
      break;
    }
    case AppKind::Update: {
      std::uint32_t extra_syns = footprint.syn_packets - footprint.tcp_connections;
      // all fetches hit at most two CDN hosts
      const net::Ipv4Address cdn_a = pick_weighted(pools.web_servers, rng);
      const net::Ipv4Address cdn_b = pick_weighted(pools.web_servers, rng);
      for (std::uint32_t i = 0; i < footprint.tcp_connections; ++i) {
        const std::uint32_t retrans = extra_syns > 0 ? 1 : 0;
        extra_syns -= retrans;
        emit_tcp_connection(t, src, (i % 2 == 0) ? cdn_a : cdn_b, net::ports::kHttps,
                            retrans, rng, out);
        t += 5'000 + stats::sample_uniform_int(rng, 0, 40'000);
      }
      break;
    }
  }
}

}  // namespace monohids::trace
