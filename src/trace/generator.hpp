// Trace generation: turns a UserProfile into traffic.
//
// Two render paths, driven by the same stochastic session model:
//
//   - generate_packets(): materializes actual PacketRecords (windump-style)
//     for a time range. Full fidelity; cost scales with traffic volume, so
//     it is used for tests, examples and pipeline validation.
//   - generate_features(): renders per-bin feature counts directly by
//     sampling the same session arrivals and SessionFootprints, skipping
//     packet materialization. This is the path the 350-user, multi-week
//     statistical experiments run on (the paper's analysis is entirely
//     bin-level, so nothing is lost; integration tests check the two paths
//     agree statistically).
//
// Both paths are deterministic functions of (profile, config) — they derive
// all randomness from the user's seed.
#pragma once

#include <vector>

#include "features/pipeline.hpp"
#include "features/time_series.hpp"
#include "net/packet.hpp"
#include "trace/user_profile.hpp"

namespace monohids::trace {

/// Scenario draw contract.
///
/// V1 (the seed contract): every user draws from two serial Xoshiro256
/// streams ("bins", "episodes"); each bin's draws depend on every earlier
/// bin's. Preserved bit-for-bit — seeds quoted in EXPERIMENTS.md keep
/// producing the exact matrices they always did.
///
/// V2 (counter-mode): every (user, bin) cell owns an independent
/// random-access Philox4x32 stream (key derive_seed(user.seed, "v2/bins",
/// 0), stream = bin index), with episode boosts from a serial Philox
/// stream keyed "v2/episodes". Bins render independently and in SIMD-width
/// word blocks, so any tile partition, thread count, shard size or kernel
/// back-end yields the identical matrix. This is the fleet default.
enum class ScenarioVersion : std::uint8_t { V1 = 1, V2 = 2 };

struct GeneratorConfig {
  util::BinGrid grid = util::BinGrid::minutes(15);
  std::uint32_t weeks = 5;  ///< horizon; the paper's traces span 5 weeks

  /// Mean of the burst-episode multiplier's log (multiplier = 1 + lognormal).
  double episode_log_mu = 0.5;

  /// Effective-pool factor for the distinct-destination approximation in the
  /// bin-level path (destination picks are popularity-weighted, so the
  /// effective pool is smaller than the nominal one).
  double distinct_pool_factor = 0.6;

  /// Draw contract for the feature path. V1 stays the default so every
  /// seed-quoted artifact is untouched; fleet mode flips its copy to V2
  /// (see sim::FleetConfig).
  ScenarioVersion scenario_version = ScenarioVersion::V1;

  /// V2 only: bins per render tile inside generate_features (0 = the whole
  /// horizon as one tile). Pure partition knob — the output is tile-size
  /// invariant by the V2 contract; fleet mode uses it to interleave cheap
  /// (user, tile) work items.
  std::uint32_t v2_bin_tile = 0;

  /// Rendered horizon, rounded UP to a whole number of bins. The feature
  /// path always renders bin_count(horizon) full bins; before this was
  /// bin-aligned, a non-divisible grid (e.g. 13-minute bins) made the
  /// feature path render the final partial bin in full while the packet
  /// path clipped at weeks*week — the two paths covered different ranges.
  /// For the default grids (15- or 5-minute bins divide a week) this is
  /// exactly weeks * kMicrosPerWeek.
  [[nodiscard]] util::Duration horizon() const noexcept {
    const util::Duration raw = weeks * util::kMicrosPerWeek;
    const util::Duration width = grid.width();
    return (raw + width - 1) / width * width;
  }
};

/// Global toggle between the batched feature-generation pipeline (default)
/// and the preserved seed per-bin path. Outputs are bit-identical by
/// contract; the toggle exists so benches and the differential suite can
/// A/B the two implementations (mirrors stats::kernels::batching_enabled).
[[nodiscard]] bool batched_generation_enabled() noexcept;
void set_batched_generation_enabled(bool enabled) noexcept;

/// RAII generation-mode toggle for benches/tests.
class ScopedGenerationMode {
 public:
  explicit ScopedGenerationMode(bool batched) : previous_(batched_generation_enabled()) {
    set_batched_generation_enabled(batched);
  }
  ~ScopedGenerationMode() { set_batched_generation_enabled(previous_); }
  ScopedGenerationMode(const ScopedGenerationMode&) = delete;
  ScopedGenerationMode& operator=(const ScopedGenerationMode&) = delete;

 private:
  bool previous_;
};

class TraceGenerator {
 public:
  explicit TraceGenerator(GeneratorConfig config = {});

  [[nodiscard]] const GeneratorConfig& config() const noexcept { return config_; }

  /// Fast path: the user's six binned feature series over the full horizon.
  /// Under ScenarioVersion::V1, dispatches to the batched pipeline
  /// (precomputed rate tables, prepared Poisson rows, SoA staging) unless
  /// batched_generation_enabled() is off; both implementations are
  /// bit-identical draw for draw. Under V2, renders the counter-mode
  /// contract tile by tile (v2_bin_tile).
  [[nodiscard]] features::FeatureMatrix generate_features(const UserProfile& user) const;

  /// V2 only: renders bins [tile_begin, tile_end) of the counter-mode
  /// contract into `matrix` (which must span the full horizon). Tiles of
  /// one user may be rendered in any order, interleaved with other users,
  /// on any thread — each touches only its own bins and the result is
  /// partition-invariant. Defined in batched_generator.cpp.
  void render_features_v2_tile(const UserProfile& user, std::uint64_t tile_begin,
                               std::uint64_t tile_end,
                               features::FeatureMatrix& matrix) const;

  /// The preserved seed implementation of generate_features: one
  /// activity/episode/poisson/footprint round-trip per (bin, app). Kept as
  /// the reference side of the differential suite and the A side of
  /// bench/micro_scenario.
  [[nodiscard]] features::FeatureMatrix generate_features_reference(
      const UserProfile& user) const;

  /// Full path: time-sorted packets for [begin, end). `begin`/`end` must lie
  /// within the horizon, begin < end. Ordering is the total order of
  /// PacketRecord (timestamp, then tuple/flags/payload), so equal-timestamp
  /// ties are deterministic and match the streamed path exactly.
  [[nodiscard]] std::vector<net::PacketRecord> generate_packets(const UserProfile& user,
                                                                util::Timestamp begin,
                                                                util::Timestamp end) const;

  /// Streaming form of generate_packets: pushes the identical packet
  /// sequence into `sink` in time-ordered batches of at most `max_batch`
  /// packets. Peak memory is bounded by the reorder window (sessions that
  /// spill past the current bin) plus one staging batch — it does not scale
  /// with (end - begin). Same determinism guarantees as generate_packets.
  void generate_packets_streamed(const UserProfile& user, util::Timestamp begin,
                                 util::Timestamp end, features::PacketSink& sink,
                                 std::size_t max_batch = kDefaultIngestBatch) const;

  /// Default streamed-batch bound: 64K packets (~1.5 MiB of PacketRecords).
  static constexpr std::size_t kDefaultIngestBatch = features::kDefaultIngestBatch;

  /// The user's deterministic destination pools (shared by the packet path
  /// and by anyone replaying the trace).
  [[nodiscard]] DestinationPools make_pools(const UserProfile& user) const;

 private:
  /// Batched implementation of generate_features; defined in
  /// batched_generator.cpp.
  [[nodiscard]] features::FeatureMatrix generate_features_batched(
      const UserProfile& user) const;

  /// V2 counter-mode implementation of generate_features: the tile loop
  /// over render_features_v2_tile. Defined in batched_generator.cpp.
  [[nodiscard]] features::FeatureMatrix generate_features_v2(const UserProfile& user) const;

  /// Shared bin-walk behind both packet paths: appends rendered session
  /// packets to `pending` and invokes `on_rendered_bin(bin_start)` before
  /// each rendered bin (the streaming watermark). Defined in generator.cpp.
  template <typename BinStart>
  void walk_packets(const UserProfile& user, util::Timestamp begin, util::Timestamp end,
                    std::vector<net::PacketRecord>& pending, BinStart&& on_rendered_bin) const;

  GeneratorConfig config_;
};

}  // namespace monohids::trace
