// Trace generation: turns a UserProfile into traffic.
//
// Two render paths, driven by the same stochastic session model:
//
//   - generate_packets(): materializes actual PacketRecords (windump-style)
//     for a time range. Full fidelity; cost scales with traffic volume, so
//     it is used for tests, examples and pipeline validation.
//   - generate_features(): renders per-bin feature counts directly by
//     sampling the same session arrivals and SessionFootprints, skipping
//     packet materialization. This is the path the 350-user, multi-week
//     statistical experiments run on (the paper's analysis is entirely
//     bin-level, so nothing is lost; integration tests check the two paths
//     agree statistically).
//
// Both paths are deterministic functions of (profile, config) — they derive
// all randomness from the user's seed.
#pragma once

#include <vector>

#include "features/pipeline.hpp"
#include "features/time_series.hpp"
#include "net/packet.hpp"
#include "trace/user_profile.hpp"

namespace monohids::trace {

struct GeneratorConfig {
  util::BinGrid grid = util::BinGrid::minutes(15);
  std::uint32_t weeks = 5;  ///< horizon; the paper's traces span 5 weeks

  /// Mean of the burst-episode multiplier's log (multiplier = 1 + lognormal).
  double episode_log_mu = 0.5;

  /// Effective-pool factor for the distinct-destination approximation in the
  /// bin-level path (destination picks are popularity-weighted, so the
  /// effective pool is smaller than the nominal one).
  double distinct_pool_factor = 0.6;

  [[nodiscard]] util::Duration horizon() const noexcept {
    return weeks * util::kMicrosPerWeek;
  }
};

class TraceGenerator {
 public:
  explicit TraceGenerator(GeneratorConfig config = {});

  [[nodiscard]] const GeneratorConfig& config() const noexcept { return config_; }

  /// Fast path: the user's six binned feature series over the full horizon.
  [[nodiscard]] features::FeatureMatrix generate_features(const UserProfile& user) const;

  /// Full path: time-sorted packets for [begin, end). `begin`/`end` must lie
  /// within the horizon, begin < end.
  [[nodiscard]] std::vector<net::PacketRecord> generate_packets(const UserProfile& user,
                                                                util::Timestamp begin,
                                                                util::Timestamp end) const;

  /// The user's deterministic destination pools (shared by the packet path
  /// and by anyone replaying the trace).
  [[nodiscard]] DestinationPools make_pools(const UserProfile& user) const;

 private:
  /// Burst-episode state machine shared by both paths.
  class EpisodeProcess;

  GeneratorConfig config_;
};

}  // namespace monohids::trace
