// Trace generation: turns a UserProfile into traffic.
//
// Two render paths, driven by the same stochastic session model:
//
//   - generate_packets(): materializes actual PacketRecords (windump-style)
//     for a time range. Full fidelity; cost scales with traffic volume, so
//     it is used for tests, examples and pipeline validation.
//   - generate_features(): renders per-bin feature counts directly by
//     sampling the same session arrivals and SessionFootprints, skipping
//     packet materialization. This is the path the 350-user, multi-week
//     statistical experiments run on (the paper's analysis is entirely
//     bin-level, so nothing is lost; integration tests check the two paths
//     agree statistically).
//
// Both paths are deterministic functions of (profile, config) — they derive
// all randomness from the user's seed.
#pragma once

#include <vector>

#include "features/pipeline.hpp"
#include "features/time_series.hpp"
#include "net/packet.hpp"
#include "trace/user_profile.hpp"

namespace monohids::trace {

struct GeneratorConfig {
  util::BinGrid grid = util::BinGrid::minutes(15);
  std::uint32_t weeks = 5;  ///< horizon; the paper's traces span 5 weeks

  /// Mean of the burst-episode multiplier's log (multiplier = 1 + lognormal).
  double episode_log_mu = 0.5;

  /// Effective-pool factor for the distinct-destination approximation in the
  /// bin-level path (destination picks are popularity-weighted, so the
  /// effective pool is smaller than the nominal one).
  double distinct_pool_factor = 0.6;

  /// Rendered horizon, rounded UP to a whole number of bins. The feature
  /// path always renders bin_count(horizon) full bins; before this was
  /// bin-aligned, a non-divisible grid (e.g. 13-minute bins) made the
  /// feature path render the final partial bin in full while the packet
  /// path clipped at weeks*week — the two paths covered different ranges.
  /// For the default grids (15- or 5-minute bins divide a week) this is
  /// exactly weeks * kMicrosPerWeek.
  [[nodiscard]] util::Duration horizon() const noexcept {
    const util::Duration raw = weeks * util::kMicrosPerWeek;
    const util::Duration width = grid.width();
    return (raw + width - 1) / width * width;
  }
};

/// Global toggle between the batched feature-generation pipeline (default)
/// and the preserved seed per-bin path. Outputs are bit-identical by
/// contract; the toggle exists so benches and the differential suite can
/// A/B the two implementations (mirrors stats::kernels::batching_enabled).
[[nodiscard]] bool batched_generation_enabled() noexcept;
void set_batched_generation_enabled(bool enabled) noexcept;

/// RAII generation-mode toggle for benches/tests.
class ScopedGenerationMode {
 public:
  explicit ScopedGenerationMode(bool batched) : previous_(batched_generation_enabled()) {
    set_batched_generation_enabled(batched);
  }
  ~ScopedGenerationMode() { set_batched_generation_enabled(previous_); }
  ScopedGenerationMode(const ScopedGenerationMode&) = delete;
  ScopedGenerationMode& operator=(const ScopedGenerationMode&) = delete;

 private:
  bool previous_;
};

class TraceGenerator {
 public:
  explicit TraceGenerator(GeneratorConfig config = {});

  [[nodiscard]] const GeneratorConfig& config() const noexcept { return config_; }

  /// Fast path: the user's six binned feature series over the full horizon.
  /// Dispatches to the batched pipeline (precomputed rate tables, prepared
  /// Poisson rows, SoA staging) unless batched_generation_enabled() is off;
  /// both implementations are bit-identical draw for draw.
  [[nodiscard]] features::FeatureMatrix generate_features(const UserProfile& user) const;

  /// The preserved seed implementation of generate_features: one
  /// activity/episode/poisson/footprint round-trip per (bin, app). Kept as
  /// the reference side of the differential suite and the A side of
  /// bench/micro_scenario.
  [[nodiscard]] features::FeatureMatrix generate_features_reference(
      const UserProfile& user) const;

  /// Full path: time-sorted packets for [begin, end). `begin`/`end` must lie
  /// within the horizon, begin < end. Ordering is the total order of
  /// PacketRecord (timestamp, then tuple/flags/payload), so equal-timestamp
  /// ties are deterministic and match the streamed path exactly.
  [[nodiscard]] std::vector<net::PacketRecord> generate_packets(const UserProfile& user,
                                                                util::Timestamp begin,
                                                                util::Timestamp end) const;

  /// Streaming form of generate_packets: pushes the identical packet
  /// sequence into `sink` in time-ordered batches of at most `max_batch`
  /// packets. Peak memory is bounded by the reorder window (sessions that
  /// spill past the current bin) plus one staging batch — it does not scale
  /// with (end - begin). Same determinism guarantees as generate_packets.
  void generate_packets_streamed(const UserProfile& user, util::Timestamp begin,
                                 util::Timestamp end, features::PacketSink& sink,
                                 std::size_t max_batch = kDefaultIngestBatch) const;

  /// Default streamed-batch bound: 64K packets (~1.5 MiB of PacketRecords).
  static constexpr std::size_t kDefaultIngestBatch = features::kDefaultIngestBatch;

  /// The user's deterministic destination pools (shared by the packet path
  /// and by anyone replaying the trace).
  [[nodiscard]] DestinationPools make_pools(const UserProfile& user) const;

 private:
  /// Batched implementation of generate_features; defined in
  /// batched_generator.cpp.
  [[nodiscard]] features::FeatureMatrix generate_features_batched(
      const UserProfile& user) const;

  /// Shared bin-walk behind both packet paths: appends rendered session
  /// packets to `pending` and invokes `on_rendered_bin(bin_start)` before
  /// each rendered bin (the streaming watermark). Defined in generator.cpp.
  template <typename BinStart>
  void walk_packets(const UserProfile& user, util::Timestamp begin, util::Timestamp end,
                    std::vector<net::PacketRecord>& pending, BinStart&& on_rendered_bin) const;

  GeneratorConfig config_;
};

}  // namespace monohids::trace
