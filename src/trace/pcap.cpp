#include "trace/pcap.hpp"

#include <array>
#include <cstring>
#include <istream>
#include <ostream>

#include "util/error.hpp"

namespace monohids::trace {

namespace {

constexpr std::uint32_t kMagicMicro = 0xa1b2c3d4;
constexpr std::uint32_t kMagicNano = 0xa1b23c4d;
constexpr std::uint32_t kMagicMicroSwapped = 0xd4c3b2a1;
constexpr std::uint32_t kMagicNanoSwapped = 0x4d3cb2a1;
constexpr std::uint32_t kLinktypeEthernet = 1;
constexpr std::uint16_t kEthertypeIpv4 = 0x0800;
constexpr std::size_t kEthernetHeader = 14;
constexpr std::size_t kIpv4Header = 20;
constexpr std::size_t kTcpHeader = 20;
constexpr std::size_t kUdpHeader = 8;
constexpr std::size_t kIcmpHeader = 8;

// ------------------------------------------------------------ writing

void put_u16be(std::vector<std::uint8_t>& buf, std::uint16_t v) {
  buf.push_back(static_cast<std::uint8_t>(v >> 8));
  buf.push_back(static_cast<std::uint8_t>(v & 0xFF));
}

void put_u32be(std::vector<std::uint8_t>& buf, std::uint32_t v) {
  buf.push_back(static_cast<std::uint8_t>(v >> 24));
  buf.push_back(static_cast<std::uint8_t>((v >> 16) & 0xFF));
  buf.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
  buf.push_back(static_cast<std::uint8_t>(v & 0xFF));
}

void put_u32le(std::ostream& out, std::uint32_t v) {
  const std::array<char, 4> bytes{
      static_cast<char>(v & 0xFF), static_cast<char>((v >> 8) & 0xFF),
      static_cast<char>((v >> 16) & 0xFF), static_cast<char>((v >> 24) & 0xFF)};
  out.write(bytes.data(), bytes.size());
}

/// Deterministic locally-administered MAC derived from an IPv4 address.
void put_mac(std::vector<std::uint8_t>& buf, net::Ipv4Address ip) {
  buf.push_back(0x02);  // locally administered, unicast
  buf.push_back(0x00);
  for (int i = 0; i < 4; ++i) buf.push_back(ip.octet(i));
}

std::uint8_t tcp_flag_bits(net::TcpFlags flags) {
  // Our flag bit layout matches TCP's low flag bits (FIN=1, SYN=2, RST=4,
  // PSH=8, ACK=16).
  return static_cast<std::uint8_t>(flags);
}

}  // namespace

namespace {

/// Accumulates big-endian 16-bit words into a running RFC 1071 sum; an odd
/// trailing byte is padded with zero as the RFC prescribes.
std::uint32_t ones_complement_sum(const std::uint8_t* data, std::size_t length,
                                  std::uint32_t sum) {
  std::size_t i = 0;
  for (; i + 1 < length; i += 2) {
    sum += static_cast<std::uint32_t>(data[i]) << 8 | data[i + 1];
  }
  if (i < length) sum += static_cast<std::uint32_t>(data[i]) << 8;
  return sum;
}

std::uint16_t fold_checksum(std::uint32_t sum) {
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum & 0xFFFF);
}

}  // namespace

std::uint16_t ipv4_header_checksum(const std::uint8_t* header, std::size_t length) {
  MONOHIDS_EXPECT(length % 2 == 0, "checksum needs an even-length header");
  return fold_checksum(ones_complement_sum(header, length, 0));
}

std::uint16_t ipv4_transport_checksum(net::Ipv4Address src, net::Ipv4Address dst,
                                      std::uint8_t protocol, const std::uint8_t* segment,
                                      std::size_t length) {
  // Pseudo-header: source, destination, zero+protocol, transport length.
  std::uint32_t sum = 0;
  sum += src.value() >> 16;
  sum += src.value() & 0xFFFF;
  sum += dst.value() >> 16;
  sum += dst.value() & 0xFFFF;
  sum += protocol;
  sum += static_cast<std::uint32_t>(length);
  return fold_checksum(ones_complement_sum(segment, length, sum));
}

std::uint16_t icmp_checksum(const std::uint8_t* message, std::size_t length) {
  return fold_checksum(ones_complement_sum(message, length, 0));
}

void write_pcap(std::ostream& out, const std::vector<net::PacketRecord>& packets) {
  // global header
  put_u32le(out, kMagicMicro);
  put_u32le(out, (2u << 16) | 4u);  // version 2.4
  put_u32le(out, 0);                // thiszone
  put_u32le(out, 0);                // sigfigs
  put_u32le(out, 65535);            // snaplen
  put_u32le(out, kLinktypeEthernet);

  std::vector<std::uint8_t> frame;
  for (const net::PacketRecord& p : packets) {
    frame.clear();

    // Ethernet II
    put_mac(frame, p.tuple.dst_ip);
    put_mac(frame, p.tuple.src_ip);
    put_u16be(frame, kEthertypeIpv4);

    // transport header size
    std::size_t l4 = 0;
    std::uint8_t proto = 0;
    switch (p.tuple.protocol) {
      case net::Protocol::Tcp:
        l4 = kTcpHeader;
        proto = 6;
        break;
      case net::Protocol::Udp:
        l4 = kUdpHeader;
        proto = 17;
        break;
      case net::Protocol::Icmp:
        l4 = kIcmpHeader;
        proto = 1;
        break;
    }
    const std::uint16_t ip_total =
        static_cast<std::uint16_t>(kIpv4Header + l4 + p.payload_bytes);

    // IPv4 header
    const std::size_t ip_start = frame.size();
    frame.push_back(0x45);  // version 4, IHL 5
    frame.push_back(0x00);  // DSCP/ECN
    put_u16be(frame, ip_total);
    put_u16be(frame, 0);       // identification
    put_u16be(frame, 0x4000);  // don't fragment
    frame.push_back(64);       // TTL
    frame.push_back(proto);
    put_u16be(frame, 0);  // checksum placeholder
    put_u32be(frame, p.tuple.src_ip.value());
    put_u32be(frame, p.tuple.dst_ip.value());
    const std::uint16_t checksum =
        ipv4_header_checksum(frame.data() + ip_start, kIpv4Header);
    frame[ip_start + 10] = static_cast<std::uint8_t>(checksum >> 8);
    frame[ip_start + 11] = static_cast<std::uint8_t>(checksum & 0xFF);

    // transport header
    switch (p.tuple.protocol) {
      case net::Protocol::Tcp:
        put_u16be(frame, p.tuple.src_port);
        put_u16be(frame, p.tuple.dst_port);
        put_u32be(frame, 0);  // seq
        put_u32be(frame, 0);  // ack
        frame.push_back(0x50);  // data offset 5
        frame.push_back(tcp_flag_bits(p.tcp_flags));
        put_u16be(frame, 65535);  // window
        put_u16be(frame, 0);      // checksum placeholder
        put_u16be(frame, 0);      // urgent
        break;
      case net::Protocol::Udp:
        put_u16be(frame, p.tuple.src_port);
        put_u16be(frame, p.tuple.dst_port);
        put_u16be(frame, static_cast<std::uint16_t>(kUdpHeader + p.payload_bytes));
        put_u16be(frame, 0);  // checksum placeholder
        break;
      case net::Protocol::Icmp:
        frame.push_back(8);  // echo request
        frame.push_back(0);
        put_u16be(frame, 0);  // checksum placeholder
        put_u32be(frame, 0);  // identifier/sequence
        break;
    }
    frame.insert(frame.end(), p.payload_bytes, 0);

    // Fill in the transport checksum now that the (zero) payload is in place:
    // its bytes contribute nothing to the sum but its length enters the
    // pseudo-header, so the checksum must be computed over the full segment.
    const std::size_t l4_start = ip_start + kIpv4Header;
    const std::uint8_t* segment = frame.data() + l4_start;
    const std::size_t segment_len = frame.size() - l4_start;
    switch (p.tuple.protocol) {
      case net::Protocol::Tcp: {
        const std::uint16_t c =
            ipv4_transport_checksum(p.tuple.src_ip, p.tuple.dst_ip, 6, segment,
                                    segment_len);
        frame[l4_start + 16] = static_cast<std::uint8_t>(c >> 8);
        frame[l4_start + 17] = static_cast<std::uint8_t>(c & 0xFF);
        break;
      }
      case net::Protocol::Udp: {
        std::uint16_t c = ipv4_transport_checksum(p.tuple.src_ip, p.tuple.dst_ip,
                                                  17, segment, segment_len);
        if (c == 0) c = 0xFFFF;  // 0 means "no checksum" on the wire
        frame[l4_start + 6] = static_cast<std::uint8_t>(c >> 8);
        frame[l4_start + 7] = static_cast<std::uint8_t>(c & 0xFF);
        break;
      }
      case net::Protocol::Icmp: {
        const std::uint16_t c = icmp_checksum(segment, segment_len);
        frame[l4_start + 2] = static_cast<std::uint8_t>(c >> 8);
        frame[l4_start + 3] = static_cast<std::uint8_t>(c & 0xFF);
        break;
      }
    }

    // record header
    put_u32le(out, static_cast<std::uint32_t>(p.timestamp / 1'000'000));
    put_u32le(out, static_cast<std::uint32_t>(p.timestamp % 1'000'000));
    put_u32le(out, static_cast<std::uint32_t>(frame.size()));  // incl_len
    put_u32le(out, static_cast<std::uint32_t>(frame.size()));  // orig_len
    out.write(reinterpret_cast<const char*>(frame.data()),
              static_cast<std::streamsize>(frame.size()));
  }
}

namespace {

// ------------------------------------------------------------ reading

struct Cursor {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t pos = 0;

  [[nodiscard]] bool has(std::size_t n) const { return pos + n <= size; }
  std::uint8_t u8() { return data[pos++]; }
  std::uint16_t u16be() {
    const std::uint16_t v = static_cast<std::uint16_t>(data[pos] << 8 | data[pos + 1]);
    pos += 2;
    return v;
  }
  std::uint32_t u32be() {
    const std::uint32_t v = static_cast<std::uint32_t>(data[pos]) << 24 |
                            static_cast<std::uint32_t>(data[pos + 1]) << 16 |
                            static_cast<std::uint32_t>(data[pos + 2]) << 8 |
                            static_cast<std::uint32_t>(data[pos + 3]);
    pos += 4;
    return v;
  }
};

std::uint32_t read_u32(std::istream& in, bool swapped, bool& ok) {
  std::array<unsigned char, 4> b{};
  in.read(reinterpret_cast<char*>(b.data()), 4);
  ok = static_cast<bool>(in);
  if (!ok) return 0;
  if (swapped) {
    return static_cast<std::uint32_t>(b[0]) << 24 | static_cast<std::uint32_t>(b[1]) << 16 |
           static_cast<std::uint32_t>(b[2]) << 8 | static_cast<std::uint32_t>(b[3]);
  }
  return static_cast<std::uint32_t>(b[3]) << 24 | static_cast<std::uint32_t>(b[2]) << 16 |
         static_cast<std::uint32_t>(b[1]) << 8 | static_cast<std::uint32_t>(b[0]);
}

/// The shared parse loop behind read_pcap and stream_pcap: fills the stats
/// fields of `result` and hands each parsed packet to `on_packet`. When
/// `recover` is set, an InputError raised after the global header parsed
/// cleanly is captured into result.stream_error instead of propagating, so
/// everything parsed before the fault survives (stream_pcap_recovering).
template <typename OnPacket>
void parse_pcap_stream(std::istream& in, PcapReadResult& result, OnPacket&& on_packet,
                       bool recover = false) {
  bool ok = false;
  const std::uint32_t magic = read_u32(in, /*swapped=*/false, ok);
  MONOHIDS_ENSURE(ok, "pcap stream is empty");
  bool swapped = false;
  switch (magic) {
    case kMagicMicro: break;
    case kMagicNano: result.nanosecond_timestamps = true; break;
    case kMagicMicroSwapped: swapped = true; break;
    case kMagicNanoSwapped:
      swapped = true;
      result.nanosecond_timestamps = true;
      break;
    default:
      throw InputError("not a pcap stream (bad magic)");
  }
  result.byte_swapped = swapped;

  (void)read_u32(in, swapped, ok);  // version
  (void)read_u32(in, swapped, ok);  // thiszone
  (void)read_u32(in, swapped, ok);  // sigfigs
  (void)read_u32(in, swapped, ok);  // snaplen
  const std::uint32_t linktype = read_u32(in, swapped, ok);
  MONOHIDS_ENSURE(ok, "truncated pcap global header");
  MONOHIDS_ENSURE(linktype == kLinktypeEthernet,
                  "unsupported pcap linktype " + std::to_string(linktype) +
                      " (only Ethernet is supported)");

  std::vector<std::uint8_t> frame;
  while (true) {
    const std::uint32_t ts_sec = read_u32(in, swapped, ok);
    if (!ok) break;  // clean EOF
    std::uint32_t ts_frac = 0;
    std::uint32_t incl_len = 0;
    std::uint32_t orig_len = 0;
    try {
      ts_frac = read_u32(in, swapped, ok);
      incl_len = read_u32(in, swapped, ok);
      orig_len = read_u32(in, swapped, ok);
      MONOHIDS_ENSURE(ok, "truncated pcap record header");
      MONOHIDS_ENSURE(incl_len <= 10 * 1024 * 1024, "implausible pcap record length");

      frame.resize(incl_len);
      in.read(reinterpret_cast<char*>(frame.data()), incl_len);
      MONOHIDS_ENSURE(static_cast<bool>(in), "truncated pcap record body");
    } catch (const InputError& e) {
      if (!recover) throw;
      result.stream_error = e.what();
      return;
    }

    Cursor c{frame.data(), frame.size()};
    if (!c.has(kEthernetHeader)) {
      ++result.truncated;
      continue;
    }
    c.pos = 12;  // skip MACs
    const std::uint16_t ethertype = c.u16be();
    if (ethertype != kEthertypeIpv4) {
      ++result.skipped_non_ipv4;
      continue;
    }
    if (!c.has(kIpv4Header)) {
      ++result.truncated;
      continue;
    }
    const std::size_t ip_start = c.pos;
    const std::uint8_t version_ihl = c.u8();
    if ((version_ihl >> 4) != 4) {
      ++result.skipped_non_ipv4;
      continue;
    }
    const std::size_t ihl = static_cast<std::size_t>(version_ihl & 0x0F) * 4;
    c.pos = ip_start + 2;
    const std::uint16_t total_len = c.u16be();
    c.pos = ip_start + 9;
    const std::uint8_t proto = c.u8();
    c.pos = ip_start + 12;
    const std::uint32_t src = c.u32be();
    const std::uint32_t dst = c.u32be();
    c.pos = ip_start + ihl;

    net::PacketRecord p;
    const std::uint64_t micros =
        result.nanosecond_timestamps ? ts_frac / 1000 : ts_frac;
    p.timestamp = static_cast<util::Timestamp>(ts_sec) * 1'000'000 + micros;
    p.tuple.src_ip = net::Ipv4Address(src);
    p.tuple.dst_ip = net::Ipv4Address(dst);

    std::size_t l4 = 0;
    if (proto == 6) {
      p.tuple.protocol = net::Protocol::Tcp;
      if (!c.has(kTcpHeader)) {
        ++result.truncated;
        continue;
      }
      p.tuple.src_port = c.u16be();
      p.tuple.dst_port = c.u16be();
      c.pos += 9;  // seq, ack, data offset
      p.tcp_flags = static_cast<net::TcpFlags>(c.u8() & 0x1F);
      l4 = kTcpHeader;
    } else if (proto == 17) {
      p.tuple.protocol = net::Protocol::Udp;
      if (!c.has(kUdpHeader)) {
        ++result.truncated;
        continue;
      }
      p.tuple.src_port = c.u16be();
      p.tuple.dst_port = c.u16be();
      l4 = kUdpHeader;
    } else if (proto == 1) {
      p.tuple.protocol = net::Protocol::Icmp;
      l4 = kIcmpHeader;
    } else {
      ++result.skipped_protocol;
      continue;
    }

    const std::size_t header_bytes = ihl + l4;
    p.payload_bytes = total_len > header_bytes
                          ? static_cast<std::uint16_t>(total_len - header_bytes)
                          : 0;
    (void)orig_len;
    ++result.packet_count;
    on_packet(p);
  }
}

}  // namespace

PcapReadResult read_pcap(std::istream& in) {
  PcapReadResult result;
  parse_pcap_stream(in, result,
                    [&](const net::PacketRecord& p) { result.packets.push_back(p); });
  return result;
}

PcapReadResult stream_pcap(std::istream& in, features::PacketSink& sink,
                           std::size_t max_batch) {
  PcapReadResult result;
  features::BatchingAdapter batches(sink, max_batch);
  parse_pcap_stream(in, result, [&](const net::PacketRecord& p) { batches.push(p); });
  batches.finish();
  return result;
}

PcapReadResult stream_pcap_recovering(std::istream& in, features::PacketSink& sink,
                                      std::size_t max_batch) {
  PcapReadResult result;
  features::BatchingAdapter batches(sink, max_batch);
  parse_pcap_stream(in, result, [&](const net::PacketRecord& p) { batches.push(p); },
                    /*recover=*/true);
  batches.finish();  // the pre-fault tail still reaches the sink
  return result;
}

}  // namespace monohids::trace
