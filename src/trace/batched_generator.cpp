// Batched implementation of TraceGenerator::generate_features.
//
// The seed path pays per (bin, app) for work that is constant across most
// bins: activity_at (two raised-cosine bumps), exp(-lambda) inside
// sample_poisson, and a virtual-free but allocation-heavy footprint switch
// per session. This path restructures the same computation into stages —
//
//   1. rate tables: activity per bin-of-week (the diurnal curve is weekly
//      periodic, so one week of activity_at calls covers any horizon),
//      episode boosts per bin (the EpisodeProcess stepped exactly as the
//      seed path steps it),
//   2. prepared Poisson rows per (app, bin) through the stats::sampling
//      batch API, with consecutive equal means (night floors, weekend
//      plateaus) sharing one exp,
//   3. one RNG-only session loop per bin that tallies integer footprints
//      into SoA staging buffers, with every footprint decision reduced to
//      integer threshold compares (trace/batched_tables.hpp),
//   4. float post-processing: pure widening through the stats::kernels
//      dispatch layer, then the resolver-cache / distinct-destination math
//      per bin.
//
// Bit-identity contract: the engine draw sequence on the "bins" and
// "episodes" streams is EXACTLY the seed path's — same draws, same order,
// same arithmetic on each — so the resulting FeatureMatrix is bit-identical
// to generate_features_reference for every profile, grid and horizon. The
// randomized differential suite (tests/trace/test_generator_batched.cpp)
// and bench/micro_scenario pin this.
#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

#include "obs/metrics.hpp"
#include "stats/kernels.hpp"
#include "stats/sampling.hpp"
#include "trace/activity.hpp"
#include "trace/batched_tables.hpp"
#include "trace/episode_process.hpp"
#include "trace/generator.hpp"

namespace monohids::trace {

namespace detail {

const FootprintTables& footprint_tables() {
  static const FootprintTables tables;
  return tables;
}

}  // namespace detail

features::FeatureMatrix TraceGenerator::generate_features_batched(
    const UserProfile& user) const {
  using stats::batch::PoissonRow;
  using stats::batch::sample_poisson_prepared;
  using stats::batch::to_unit;

  const util::BinGrid grid = config_.grid;
  const util::Duration horizon = config_.horizon();
  features::FeatureMatrix matrix;
  for (auto& s : matrix.series) s = features::BinnedSeries(grid, horizon);

  util::Xoshiro256 rng(util::derive_seed(user.seed, "bins", 0));
  EpisodeProcess episodes(user, config_.episode_log_mu,
                          util::derive_seed(user.seed, "episodes", 0));

  const double bin_hours =
      static_cast<double>(grid.width()) / static_cast<double>(util::kMicrosPerHour);
  const double effective_pool =
      std::max(4.0, config_.distinct_pool_factor * user.destination_pool_size);
  const std::uint64_t bins = grid.bin_count(horizon);
  // Bin-of-week period when the grid divides a week (the default 15- and
  // 5-minute grids do); 0 selects the generic per-bin fallback.
  const std::uint64_t bins_per_week =
      util::kMicrosPerWeek % grid.width() == 0 ? util::kMicrosPerWeek / grid.width() : 0;

  // --- stage 1: rate tables ----------------------------------------------
  // Activity per bin-of-week (activity_at is weekly periodic), or per bin
  // on grids that do not divide a week.
  std::vector<double> act(bins_per_week != 0 ? std::min(bins_per_week, bins) : bins);
  for (std::uint64_t i = 0; i < act.size(); ++i) {
    const util::Timestamp mid = grid.bin_start(i) + grid.width() / 2;
    act[i] = activity_at(user.diurnal, mid);
  }

  // Episode boost per bin, stepped with the seed path's exact draws. The
  // running bin-of-week counter replaces a 64-bit modulo per bin.
  std::vector<double> boost(bins);
  {
    std::uint64_t bow = 0;
    for (std::uint64_t b = 0; b < bins; ++b) {
      boost[b] = episodes.step(grid.bin_start(b), bin_hours, act[bow]);
      if (++bow == act.size()) bow = 0;
    }
  }

  // Week index per bin for the drift lookup. On divisible grids the week
  // advances exactly when the bin-of-week counter wraps; the generic
  // fallback derives it from each bin's midpoint like the seed path does.
  std::vector<std::uint32_t> week_of_bin;
  if (bins_per_week == 0) {
    week_of_bin.resize(bins);
    for (std::uint64_t b = 0; b < bins; ++b) {
      week_of_bin[b] = util::week_of(grid.bin_start(b) + grid.width() / 2);
    }
  }

  // --- stage 2: prepared Poisson rows per (app, bin) ----------------------
  // Prepared per app (contiguous means keep the run-deduped exp effective),
  // then transposed to bin-major so the session loop below reads one
  // sequential 6-row stripe per bin instead of six parallel streams.
  std::vector<double> means(bins);
  std::vector<PoissonRow> app_rows(bins);
  std::vector<PoissonRow> rows(bins * kAppCount);
  for (std::size_t a = 0; a < kAppCount; ++a) {
    const AppKind app = kAllApps[a];
    const double rate = user.rate_of(app);
    if (bins_per_week != 0) {
      std::uint64_t b = 0, bow = 0;
      std::uint32_t week = 0;
      double drift = user.drift(week, app);
      while (b < bins) {
        means[b] = rate * act[bow] * boost[b] * drift * bin_hours;
        ++b;
        if (++bow == act.size()) {
          bow = 0;
          drift = user.drift(++week, app);
        }
      }
    } else {
      for (std::uint64_t b = 0; b < bins; ++b) {
        means[b] = rate * act[b] * boost[b] * user.drift(week_of_bin[b], app) * bin_hours;
      }
    }
    stats::batch::prepare_poisson_rows(means, app_rows);
    for (std::uint64_t b = 0; b < bins; ++b) rows[b * kAppCount + a] = app_rows[b];
  }

  // --- stage 3: the RNG-only session loop ---------------------------------
  // SoA staging: raw integer tallies per bin. The float post-processing
  // runs as a separate pass, so this loop is pure integer/multiply work and
  // the engine state stays in registers throughout.
  std::vector<std::uint32_t> st_tcp(bins), st_udp(bins), st_dns(bins), st_http(bins),
      st_syn(bins), st_draws(bins);

  const detail::FootprintTables& T = detail::footprint_tables();
  // Hot table values hoisted into locals: the staging stores would
  // otherwise force reloads of every table field each iteration.
  const std::uint64_t web_b0 = T.web_objects.boundary(0);
  const std::uint64_t web_b1 = T.web_objects.boundary(1);
  const std::uint64_t web_b2 = T.web_objects.boundary(2);
  const std::uint64_t t_https = T.https_045, t_retrans = T.syn_retrans_003;
  const std::uint64_t t_mail = T.mail_dns_020, t_inter = T.interactive_dns_030;
  const std::uint64_t dns_threshold = T.dns_threshold;
  const double dns_limit = T.dns_limit;

  // The bin-major stripe: row[b * 6 + index_of(app)], read sequentially.
  constexpr std::size_t kWebRow = index_of(AppKind::Web);
  constexpr std::size_t kDnsRow = index_of(AppKind::Dns);
  constexpr std::size_t kMailRow = index_of(AppKind::Mail);
  constexpr std::size_t kP2pRow = index_of(AppKind::P2p);
  constexpr std::size_t kInterRow = index_of(AppKind::Interactive);
  constexpr std::size_t kUpdateRow = index_of(AppKind::Update);

  std::uint64_t total_sessions = 0;

  for (std::uint64_t b = 0; b < bins; ++b) {
    std::uint64_t n_tcp = 0, n_udp = 0, n_dns = 0, n_http = 0, n_syn = 0, n_draws = 0;
    const PoissonRow* stripe = rows.data() + b * kAppCount;

    {  // Web: objects (Pareto), domains (1 + Poisson), HTTPS and SYN
       // Bernoullis per object — the sample_footprint(Web) draws in order.
      const std::uint64_t sessions = sample_poisson_prepared(rng, stripe[kWebRow]);
      total_sessions += sessions;
      for (std::uint64_t s = 0; s < sessions; ++s) {
        const std::uint64_t mo = rng() >> 11;
        std::uint32_t objects;
        if (mo > web_b2) [[likely]]
          objects = 1 + (mo <= web_b0 ? 1u : 0u) + (mo <= web_b1 ? 1u : 0u);
        else
          objects = T.web_objects.count(mo);
        std::uint32_t domain_extra = 0;
        {
          const std::uint64_t m1 = rng() >> 11;
          if (m1 >= T.web_domain_threshold[objects]) [[unlikely]] {
            const double limit = T.web_domain_limit[objects];
            double product = to_unit(m1);
            do {
              product *= rng.uniform01();
              ++domain_extra;
            } while (product > limit);
          }
        }
        std::uint32_t https, syn_extra;
        if (objects == 1) [[likely]] {
          https = (rng() >> 11) < t_https ? 1u : 0u;
          syn_extra = (rng() >> 11) < t_retrans ? 1u : 0u;
        } else {
          https = 0;
          for (std::uint32_t i = 0; i < objects; ++i)
            https += (rng() >> 11) < t_https ? 1u : 0u;
          syn_extra = 0;
          for (std::uint32_t i = 0; i < objects; ++i)
            syn_extra += (rng() >> 11) < t_retrans ? 1u : 0u;
        }
        n_tcp += objects;
        n_http += objects - https;
        n_dns += 1 + domain_extra;
        n_udp += 1 + domain_extra;
        n_syn += objects + syn_extra;
        n_draws += objects + 1;
      }
    }
    {  // Dns: lookups = 1 + Poisson(0.6).
      const std::uint64_t sessions = sample_poisson_prepared(rng, stripe[kDnsRow]);
      total_sessions += sessions;
      for (std::uint64_t s = 0; s < sessions; ++s) {
        std::uint32_t lookups = 1;
        const std::uint64_t m1 = rng() >> 11;
        if (m1 >= dns_threshold) {
          double product = to_unit(m1);
          do {
            product *= rng.uniform01();
            ++lookups;
          } while (product > dns_limit);
        }
        n_dns += lookups;
        n_udp += lookups;
        n_draws += 1;
      }
    }
    {  // Mail: one connection, 20% DNS refresh.
      const std::uint64_t sessions = sample_poisson_prepared(rng, stripe[kMailRow]);
      total_sessions += sessions;
      n_tcp += sessions;
      n_syn += sessions;
      n_draws += sessions;
      for (std::uint64_t s = 0; s < sessions; ++s) {
        const std::uint32_t hit = (rng() >> 11) < t_mail ? 1u : 0u;
        n_dns += hit;
        n_udp += hit;
      }
    }
    {  // P2p: Pareto peer count.
      const std::uint64_t sessions = sample_poisson_prepared(rng, stripe[kP2pRow]);
      total_sessions += sessions;
      for (std::uint64_t s = 0; s < sessions; ++s) {
        const std::uint32_t peers = T.p2p_peers.count_fast(rng() >> 11);
        n_udp += peers;
        n_draws += peers;
      }
    }
    {  // Interactive: one connection, 30% DNS refresh.
      const std::uint64_t sessions = sample_poisson_prepared(rng, stripe[kInterRow]);
      total_sessions += sessions;
      n_tcp += sessions;
      n_syn += sessions;
      n_draws += sessions;
      for (std::uint64_t s = 0; s < sessions; ++s) {
        const std::uint32_t hit = (rng() >> 11) < t_inter ? 1u : 0u;
        n_dns += hit;
        n_udp += hit;
      }
    }
    {  // Update: 4 + Pareto fetches, Poisson(fetches * 0.02) retransmits.
      const std::uint64_t sessions = sample_poisson_prepared(rng, stripe[kUpdateRow]);
      total_sessions += sessions;
      for (std::uint64_t s = 0; s < sessions; ++s) {
        const std::uint32_t fetches = 4 + T.update_fetches.count_fast(rng() >> 11);
        std::uint32_t retrans = 0;
        const std::uint64_t m1 = rng() >> 11;
        if (m1 >= T.update_syn_threshold[fetches]) {
          const double limit = T.update_syn_limit[fetches];
          double product = to_unit(m1);
          do {
            product *= rng.uniform01();
            ++retrans;
          } while (product > limit);
        }
        n_tcp += fetches;
        n_syn += fetches + retrans;
        n_dns += 1;
        n_udp += 1;
        n_draws += 2;
      }
    }

    st_tcp[b] = static_cast<std::uint32_t>(n_tcp);
    st_udp[b] = static_cast<std::uint32_t>(n_udp);
    st_dns[b] = static_cast<std::uint32_t>(n_dns);
    st_http[b] = static_cast<std::uint32_t>(n_http);
    st_syn[b] = static_cast<std::uint32_t>(n_syn);
    st_draws[b] = static_cast<std::uint32_t>(n_draws);
  }

  // --- stage 4: float post-processing -------------------------------------
  using features::FeatureKind;
  // TCP/HTTP/SYN are pure widenings of their staging tallies: one
  // dispatched kernel pass each (exact, so back-end invariant).
  const auto& kernel_ops = stats::kernels::active();
  kernel_ops.widen_u32(st_tcp, matrix.of(FeatureKind::TcpConnections).values_mut().data());
  kernel_ops.widen_u32(st_http,
                       matrix.of(FeatureKind::HttpConnections).values_mut().data());
  kernel_ops.widen_u32(st_syn, matrix.of(FeatureKind::TcpSyn).values_mut().data());

  // The resolver-cache and distinct-destination math carries per-bin
  // rounding the seed path performs in double — reproduced term for term.
  double* out_udp = matrix.of(FeatureKind::UdpConnections).values_mut().data();
  double* out_dns = matrix.of(FeatureKind::DnsConnections).values_mut().data();
  double* out_distinct = matrix.of(FeatureKind::DistinctConnections).values_mut().data();
  const double pow_base = 1.0 - 1.0 / effective_pool;
  // Distinct-draw totals repeat heavily across bins; memoizing the pow on
  // small integer draw counts removes most of the remaining libm cost.
  std::vector<double> pow_cache(4096, -1.0);
  for (std::uint64_t b = 0; b < bins; ++b) {
    double dns = static_cast<double>(st_dns[b]);
    double udp = static_cast<double>(st_udp[b]);
    double draws = static_cast<double>(st_draws[b]);
    const double cached = std::round(dns * user.dns_cache_hit);
    dns -= cached;
    udp -= cached;
    draws = std::max(0.0, draws - cached);
    out_dns[b] = dns;
    out_udp[b] = udp;
    double distinct = 0.0;
    if (draws != 0.0) {
      double p;
      const auto draws_int = static_cast<std::uint64_t>(draws);
      if (draws == static_cast<double>(draws_int) && draws_int < pow_cache.size()) {
        if (pow_cache[draws_int] < 0.0) pow_cache[draws_int] = std::pow(pow_base, draws);
        p = pow_cache[draws_int];
      } else {
        p = std::pow(pow_base, draws);
      }
      distinct = effective_pool * (1.0 - p);
    }
    out_distinct[b] = std::round(distinct);
  }

  // Batch-granular obs publication: one counter add per stage per user, no
  // atomics anywhere in the loops above.
  static obs::Counter bins_rendered =
      obs::MetricsRegistry::global().counter("tracegen.bins_rendered");
  static obs::Counter sessions_sampled =
      obs::MetricsRegistry::global().counter("tracegen.sessions_sampled");
  static obs::Counter users_batched =
      obs::MetricsRegistry::global().counter("tracegen.users_batched");
  static obs::Histogram staging_bytes = obs::MetricsRegistry::global().histogram(
      "tracegen.staging_bytes", obs::pow2_buckets(28));
  bins_rendered.add(bins);
  sessions_sampled.add(total_sessions);
  users_batched.inc();
  staging_bytes.observe(static_cast<double>(6 * bins * sizeof(std::uint32_t)));

  return matrix;
}

}  // namespace monohids::trace
