// Batched implementation of TraceGenerator::generate_features.
//
// The seed path pays per (bin, app) for work that is constant across most
// bins: activity_at (two raised-cosine bumps), exp(-lambda) inside
// sample_poisson, and a virtual-free but allocation-heavy footprint switch
// per session. This path restructures the same computation into stages —
//
//   1. rate tables: activity per bin-of-week (the diurnal curve is weekly
//      periodic, so one week of activity_at calls covers any horizon),
//      episode boosts per bin (the EpisodeProcess stepped exactly as the
//      seed path steps it),
//   2. prepared Poisson rows per (app, bin) through the stats::sampling
//      batch API, with consecutive equal means (night floors, weekend
//      plateaus) sharing one exp,
//   3. one RNG-only session loop per bin that tallies integer footprints
//      into SoA staging buffers, with every footprint decision reduced to
//      integer threshold compares (trace/batched_tables.hpp),
//   4. float post-processing: pure widening through the stats::kernels
//      dispatch layer, then the resolver-cache / distinct-destination math
//      per bin.
//
// Bit-identity contract: the engine draw sequence on the "bins" and
// "episodes" streams is EXACTLY the seed path's — same draws, same order,
// same arithmetic on each — so the resulting FeatureMatrix is bit-identical
// to generate_features_reference for every profile, grid and horizon. The
// randomized differential suite (tests/trace/test_generator_batched.cpp)
// and bench/micro_scenario pin this.
#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numbers>
#include <vector>

#include "obs/metrics.hpp"
#include "stats/kernels.hpp"
#include "stats/sampling.hpp"
#include "trace/activity.hpp"
#include "trace/batched_tables.hpp"
#include "trace/episode_process.hpp"
#include "trace/generator.hpp"

namespace monohids::trace {

namespace detail {

const FootprintTables& footprint_tables() {
  static const FootprintTables tables;
  return tables;
}

const FootprintTables32& footprint_tables32() {
  static const FootprintTables32 tables;
  return tables;
}

}  // namespace detail

namespace {

// Stage 4, shared by the v1 full-horizon path and the v2 tile renderer:
// widens the integer staging tallies into the matrix rows [first_bin,
// first_bin + n) and applies the resolver-cache / distinct-destination
// math. Term-for-term the seed path's arithmetic — the v1 bit-identity
// contract rides on this helper staying exact.
void finalize_bins(const UserProfile& user, double effective_pool,
                   std::span<const std::uint32_t> st_tcp,
                   std::span<const std::uint32_t> st_udp,
                   std::span<const std::uint32_t> st_dns,
                   std::span<const std::uint32_t> st_http,
                   std::span<const std::uint32_t> st_syn,
                   std::span<const std::uint32_t> st_draws, std::uint64_t first_bin,
                   features::FeatureMatrix& matrix) {
  using features::FeatureKind;
  const std::uint64_t n = st_tcp.size();
  // TCP/HTTP/SYN are pure widenings of their staging tallies: one
  // dispatched kernel pass each (exact, so back-end invariant).
  const auto& kernel_ops = stats::kernels::active();
  kernel_ops.widen_u32(st_tcp,
                       matrix.of(FeatureKind::TcpConnections).values_mut().data() + first_bin);
  kernel_ops.widen_u32(
      st_http, matrix.of(FeatureKind::HttpConnections).values_mut().data() + first_bin);
  kernel_ops.widen_u32(st_syn, matrix.of(FeatureKind::TcpSyn).values_mut().data() + first_bin);

  // The resolver-cache and distinct-destination math carries per-bin
  // rounding the seed path performs in double — reproduced term for term.
  double* out_udp = matrix.of(FeatureKind::UdpConnections).values_mut().data() + first_bin;
  double* out_dns = matrix.of(FeatureKind::DnsConnections).values_mut().data() + first_bin;
  double* out_distinct =
      matrix.of(FeatureKind::DistinctConnections).values_mut().data() + first_bin;
  const double pow_base = 1.0 - 1.0 / effective_pool;
  // Distinct-draw totals repeat heavily across bins; memoizing the pow on
  // small integer draw counts removes most of the remaining libm cost.
  std::vector<double> pow_cache(4096, -1.0);
  for (std::uint64_t b = 0; b < n; ++b) {
    double dns = static_cast<double>(st_dns[b]);
    double udp = static_cast<double>(st_udp[b]);
    double draws = static_cast<double>(st_draws[b]);
    const double cached = std::round(dns * user.dns_cache_hit);
    dns -= cached;
    udp -= cached;
    draws = std::max(0.0, draws - cached);
    out_dns[b] = dns;
    out_udp[b] = udp;
    double distinct = 0.0;
    if (draws != 0.0) {
      double p;
      const auto draws_int = static_cast<std::uint64_t>(draws);
      if (draws == static_cast<double>(draws_int) && draws_int < pow_cache.size()) {
        if (pow_cache[draws_int] < 0.0) pow_cache[draws_int] = std::pow(pow_base, draws);
        p = pow_cache[draws_int];
      } else {
        p = std::pow(pow_base, draws);
      }
      distinct = effective_pool * (1.0 - p);
    }
    out_distinct[b] = std::round(distinct);
  }
}

}  // namespace

features::FeatureMatrix TraceGenerator::generate_features_batched(
    const UserProfile& user) const {
  using stats::batch::PoissonRow;
  using stats::batch::sample_poisson_prepared;
  using stats::batch::to_unit;

  const util::BinGrid grid = config_.grid;
  const util::Duration horizon = config_.horizon();
  features::FeatureMatrix matrix;
  for (auto& s : matrix.series) s = features::BinnedSeries(grid, horizon);

  util::Xoshiro256 rng(util::derive_seed(user.seed, "bins", 0));
  EpisodeProcess episodes(user, config_.episode_log_mu,
                          util::derive_seed(user.seed, "episodes", 0));

  const double bin_hours =
      static_cast<double>(grid.width()) / static_cast<double>(util::kMicrosPerHour);
  const double effective_pool =
      std::max(4.0, config_.distinct_pool_factor * user.destination_pool_size);
  const std::uint64_t bins = grid.bin_count(horizon);
  // Bin-of-week period when the grid divides a week (the default 15- and
  // 5-minute grids do); 0 selects the generic per-bin fallback.
  const std::uint64_t bins_per_week =
      util::kMicrosPerWeek % grid.width() == 0 ? util::kMicrosPerWeek / grid.width() : 0;

  // --- stage 1: rate tables ----------------------------------------------
  // Activity per bin-of-week (activity_at is weekly periodic), or per bin
  // on grids that do not divide a week.
  std::vector<double> act(bins_per_week != 0 ? std::min(bins_per_week, bins) : bins);
  for (std::uint64_t i = 0; i < act.size(); ++i) {
    const util::Timestamp mid = grid.bin_start(i) + grid.width() / 2;
    act[i] = activity_at(user.diurnal, mid);
  }

  // Episode boost per bin, stepped with the seed path's exact draws. The
  // running bin-of-week counter replaces a 64-bit modulo per bin.
  std::vector<double> boost(bins);
  {
    std::uint64_t bow = 0;
    for (std::uint64_t b = 0; b < bins; ++b) {
      boost[b] = episodes.step(grid.bin_start(b), bin_hours, act[bow]);
      if (++bow == act.size()) bow = 0;
    }
  }

  // Week index per bin for the drift lookup. On divisible grids the week
  // advances exactly when the bin-of-week counter wraps; the generic
  // fallback derives it from each bin's midpoint like the seed path does.
  std::vector<std::uint32_t> week_of_bin;
  if (bins_per_week == 0) {
    week_of_bin.resize(bins);
    for (std::uint64_t b = 0; b < bins; ++b) {
      week_of_bin[b] = util::week_of(grid.bin_start(b) + grid.width() / 2);
    }
  }

  // --- stage 2: prepared Poisson rows per (app, bin) ----------------------
  // Prepared per app (contiguous means keep the run-deduped exp effective),
  // then transposed to bin-major so the session loop below reads one
  // sequential 6-row stripe per bin instead of six parallel streams.
  std::vector<double> means(bins);
  std::vector<PoissonRow> app_rows(bins);
  std::vector<PoissonRow> rows(bins * kAppCount);
  for (std::size_t a = 0; a < kAppCount; ++a) {
    const AppKind app = kAllApps[a];
    const double rate = user.rate_of(app);
    if (bins_per_week != 0) {
      std::uint64_t b = 0, bow = 0;
      std::uint32_t week = 0;
      double drift = user.drift(week, app);
      while (b < bins) {
        means[b] = rate * act[bow] * boost[b] * drift * bin_hours;
        ++b;
        if (++bow == act.size()) {
          bow = 0;
          drift = user.drift(++week, app);
        }
      }
    } else {
      for (std::uint64_t b = 0; b < bins; ++b) {
        means[b] = rate * act[b] * boost[b] * user.drift(week_of_bin[b], app) * bin_hours;
      }
    }
    stats::batch::prepare_poisson_rows(means, app_rows);
    for (std::uint64_t b = 0; b < bins; ++b) rows[b * kAppCount + a] = app_rows[b];
  }

  // --- stage 3: the RNG-only session loop ---------------------------------
  // SoA staging: raw integer tallies per bin. The float post-processing
  // runs as a separate pass, so this loop is pure integer/multiply work and
  // the engine state stays in registers throughout.
  std::vector<std::uint32_t> st_tcp(bins), st_udp(bins), st_dns(bins), st_http(bins),
      st_syn(bins), st_draws(bins);

  const detail::FootprintTables& T = detail::footprint_tables();
  // Hot table values hoisted into locals: the staging stores would
  // otherwise force reloads of every table field each iteration.
  const std::uint64_t web_b0 = T.web_objects.boundary(0);
  const std::uint64_t web_b1 = T.web_objects.boundary(1);
  const std::uint64_t web_b2 = T.web_objects.boundary(2);
  const std::uint64_t t_https = T.https_045, t_retrans = T.syn_retrans_003;
  const std::uint64_t t_mail = T.mail_dns_020, t_inter = T.interactive_dns_030;
  const std::uint64_t dns_threshold = T.dns_threshold;
  const double dns_limit = T.dns_limit;

  // The bin-major stripe: row[b * 6 + index_of(app)], read sequentially.
  constexpr std::size_t kWebRow = index_of(AppKind::Web);
  constexpr std::size_t kDnsRow = index_of(AppKind::Dns);
  constexpr std::size_t kMailRow = index_of(AppKind::Mail);
  constexpr std::size_t kP2pRow = index_of(AppKind::P2p);
  constexpr std::size_t kInterRow = index_of(AppKind::Interactive);
  constexpr std::size_t kUpdateRow = index_of(AppKind::Update);

  std::uint64_t total_sessions = 0;

  for (std::uint64_t b = 0; b < bins; ++b) {
    std::uint64_t n_tcp = 0, n_udp = 0, n_dns = 0, n_http = 0, n_syn = 0, n_draws = 0;
    const PoissonRow* stripe = rows.data() + b * kAppCount;

    {  // Web: objects (Pareto), domains (1 + Poisson), HTTPS and SYN
       // Bernoullis per object — the sample_footprint(Web) draws in order.
      const std::uint64_t sessions = sample_poisson_prepared(rng, stripe[kWebRow]);
      total_sessions += sessions;
      for (std::uint64_t s = 0; s < sessions; ++s) {
        const std::uint64_t mo = rng() >> 11;
        std::uint32_t objects;
        if (mo > web_b2) [[likely]]
          objects = 1 + (mo <= web_b0 ? 1u : 0u) + (mo <= web_b1 ? 1u : 0u);
        else
          objects = T.web_objects.count(mo);
        std::uint32_t domain_extra = 0;
        {
          const std::uint64_t m1 = rng() >> 11;
          if (m1 >= T.web_domain_threshold[objects]) [[unlikely]] {
            const double limit = T.web_domain_limit[objects];
            double product = to_unit(m1);
            do {
              product *= rng.uniform01();
              ++domain_extra;
            } while (product > limit);
          }
        }
        std::uint32_t https, syn_extra;
        if (objects == 1) [[likely]] {
          https = (rng() >> 11) < t_https ? 1u : 0u;
          syn_extra = (rng() >> 11) < t_retrans ? 1u : 0u;
        } else {
          https = 0;
          for (std::uint32_t i = 0; i < objects; ++i)
            https += (rng() >> 11) < t_https ? 1u : 0u;
          syn_extra = 0;
          for (std::uint32_t i = 0; i < objects; ++i)
            syn_extra += (rng() >> 11) < t_retrans ? 1u : 0u;
        }
        n_tcp += objects;
        n_http += objects - https;
        n_dns += 1 + domain_extra;
        n_udp += 1 + domain_extra;
        n_syn += objects + syn_extra;
        n_draws += objects + 1;
      }
    }
    {  // Dns: lookups = 1 + Poisson(0.6).
      const std::uint64_t sessions = sample_poisson_prepared(rng, stripe[kDnsRow]);
      total_sessions += sessions;
      for (std::uint64_t s = 0; s < sessions; ++s) {
        std::uint32_t lookups = 1;
        const std::uint64_t m1 = rng() >> 11;
        if (m1 >= dns_threshold) {
          double product = to_unit(m1);
          do {
            product *= rng.uniform01();
            ++lookups;
          } while (product > dns_limit);
        }
        n_dns += lookups;
        n_udp += lookups;
        n_draws += 1;
      }
    }
    {  // Mail: one connection, 20% DNS refresh.
      const std::uint64_t sessions = sample_poisson_prepared(rng, stripe[kMailRow]);
      total_sessions += sessions;
      n_tcp += sessions;
      n_syn += sessions;
      n_draws += sessions;
      for (std::uint64_t s = 0; s < sessions; ++s) {
        const std::uint32_t hit = (rng() >> 11) < t_mail ? 1u : 0u;
        n_dns += hit;
        n_udp += hit;
      }
    }
    {  // P2p: Pareto peer count.
      const std::uint64_t sessions = sample_poisson_prepared(rng, stripe[kP2pRow]);
      total_sessions += sessions;
      for (std::uint64_t s = 0; s < sessions; ++s) {
        const std::uint32_t peers = T.p2p_peers.count_fast(rng() >> 11);
        n_udp += peers;
        n_draws += peers;
      }
    }
    {  // Interactive: one connection, 30% DNS refresh.
      const std::uint64_t sessions = sample_poisson_prepared(rng, stripe[kInterRow]);
      total_sessions += sessions;
      n_tcp += sessions;
      n_syn += sessions;
      n_draws += sessions;
      for (std::uint64_t s = 0; s < sessions; ++s) {
        const std::uint32_t hit = (rng() >> 11) < t_inter ? 1u : 0u;
        n_dns += hit;
        n_udp += hit;
      }
    }
    {  // Update: 4 + Pareto fetches, Poisson(fetches * 0.02) retransmits.
      const std::uint64_t sessions = sample_poisson_prepared(rng, stripe[kUpdateRow]);
      total_sessions += sessions;
      for (std::uint64_t s = 0; s < sessions; ++s) {
        const std::uint32_t fetches = 4 + T.update_fetches.count_fast(rng() >> 11);
        std::uint32_t retrans = 0;
        const std::uint64_t m1 = rng() >> 11;
        if (m1 >= T.update_syn_threshold[fetches]) {
          const double limit = T.update_syn_limit[fetches];
          double product = to_unit(m1);
          do {
            product *= rng.uniform01();
            ++retrans;
          } while (product > limit);
        }
        n_tcp += fetches;
        n_syn += fetches + retrans;
        n_dns += 1;
        n_udp += 1;
        n_draws += 2;
      }
    }

    st_tcp[b] = static_cast<std::uint32_t>(n_tcp);
    st_udp[b] = static_cast<std::uint32_t>(n_udp);
    st_dns[b] = static_cast<std::uint32_t>(n_dns);
    st_http[b] = static_cast<std::uint32_t>(n_http);
    st_syn[b] = static_cast<std::uint32_t>(n_syn);
    st_draws[b] = static_cast<std::uint32_t>(n_draws);
  }

  // --- stage 4: float post-processing (shared helper) ---------------------
  finalize_bins(user, effective_pool, st_tcp, st_udp, st_dns, st_http, st_syn, st_draws,
                0, matrix);

  // Batch-granular obs publication: one counter add per stage per user, no
  // atomics anywhere in the loops above.
  static obs::Counter bins_rendered =
      obs::MetricsRegistry::global().counter("tracegen.bins_rendered");
  static obs::Counter sessions_sampled =
      obs::MetricsRegistry::global().counter("tracegen.sessions_sampled");
  static obs::Counter users_batched =
      obs::MetricsRegistry::global().counter("tracegen.users_batched");
  static obs::Histogram staging_bytes = obs::MetricsRegistry::global().histogram(
      "tracegen.staging_bytes", obs::pow2_buckets(28));
  bins_rendered.add(bins);
  sessions_sampled.add(total_sessions);
  users_batched.inc();
  staging_bytes.observe(static_cast<double>(6 * bins * sizeof(std::uint32_t)));

  return matrix;
}

// ---------------------------------------------------------------------------
// V2 counter-mode renderer.
//
// Draw-key contract (see API_TOUR §16). All streams share one key,
// derive_seed(user.seed, "v2/bins", 0), and EVERY draw consumes exactly
// one 32-bit Philox word:
//
//   - Count channels: stream kV2CountChannel + a (a = app index) holds one
//     word per bin — word b is bin b's COMPLETE session-count draw for app
//     a (exact single-word Poisson inversion below kNormalCutoff32, the
//     one-word inverse-CDF normal above). Laid out bin-major so a whole
//     tile's counts fill in one wide kernel pass per app and reduce in one
//     bulk sweep; a bin whose six counts are all zero (the overwhelming
//     night-time case) is finished without touching its own stream at all.
//   - Bin streams: stream b (b = bin index) holds bin b's remaining draws
//     in a fixed layout, one word per draw, in app order:
//       1. Web: object-count words — S direct Pareto-count words when S <=
//          kParetoDirectCap, else the ParetoSumTable chained-binomial
//          histogram (head words while sessions remain, then one word per
//          value-past-head session); then ONE merged domain-extras Poisson
//          word (mean = sum of min(objects, 12) / 5), one Binomial HTTPS
//          word over total objects, one Binomial SYN-retransmission word;
//       2. Dns: one merged lookup-extras Poisson word (mean 0.6 * S);
//       3. Mail: one Binomial DNS-refresh word;
//       4. P2p: peer-count words (direct / ParetoSumTable as above);
//       5. Interactive: one Binomial DNS-refresh word;
//       6. Update: fetch-count words (direct / ParetoSumTable), then one
//          merged retransmission Poisson word (mean 0.02 * total fetches).
//
// Every merge is exact in distribution because the feature matrix only
// consumes per-bin TOTALS: independent Poissons sum to a Poisson of the
// summed mean, a Bernoulli pass's success total is Binomial(n, p), and a
// sum of iid Pareto counts is a deterministic function of its value
// histogram, which is Multinomial — sampled as chained conditional
// binomials. This removes the v1 contract's per-session serial draw chain
// (the floor that capped the PR6 batched path): an active bin costs
// O(apps + tail sessions) words instead of O(sessions + objects), and the
// only remaining serial FP work is the short inversion walks.
//
// Episode boosts come from a serial Philox stream (key derive_seed(
// user.seed, "v2/episodes", 0), stream 0) stepped from bin 0 with the
// pinned EpisodeProcess semantics. Because streams never interact, any
// tile partition / thread / shard / SIMD back-end renders the identical
// matrix.

namespace {

/// Stream id of app a's count channel (word b = bin b's session-count
/// draw). Offset past the 32-bit bin-index space so count channels and bin
/// streams never collide on any horizon.
constexpr std::uint64_t kV2CountChannel = std::uint64_t{1} << 32;

/// Cursor over one (user, bin) Philox stream, backed by a reused scratch
/// buffer filled in whole blocks through the dispatched philox_fill kernel.
/// Satisfies the 32-bit engine interface of sample_poisson_prepared32.
///
/// The buffer carries a logical end (not the vector's size), so per-bin
/// resets never touch memory and refills never memset: the vector only
/// grows to the high-water mark of the busiest bin and stays there. reset()
/// takes the caller's word estimate so a typical bin is served by ONE
/// kernel fill (the whole point — one wide SIMD pass instead of a cascade
/// of small serial fills). take(n) pointers are valid only until the next
/// cursor call (a refill may reallocate) — callers copy what they need
/// across draws.
class V2Cursor {
 public:
  V2Cursor(std::uint64_t key, std::vector<std::uint32_t>& scratch) noexcept
      : ops_(&stats::kernels::active()), key_(key), buf_(&scratch) {}

  void reset(std::uint64_t stream, std::size_t expect_words) {
    stream_ = stream;
    pos_ = 0;
    end_ = 0;
    fill(std::max<std::size_t>(expect_words, 8));
  }

  std::uint32_t operator()() {
    if (pos_ == end_) [[unlikely]]
      refill(1);
    return (*buf_)[pos_++];
  }

  const std::uint32_t* take(std::size_t n) {
    if (end_ - pos_ < n) [[unlikely]]
      refill(n - (end_ - pos_));
    const std::uint32_t* p = buf_->data() + pos_;
    pos_ += n;
    return p;
  }

 private:
  void refill(std::size_t want) {
    // The estimate undershot: grow by at least a buffer's worth (capped) so
    // pathological bins don't degrade into tiny serial fills.
    fill(std::max(want, std::min<std::size_t>(std::max<std::size_t>(end_, 64), 8192)));
  }

  void fill(std::size_t words) {
    // Round up to whole 4-block vector groups: the AVX2 kernel falls back
    // to scalar for sub-group remainders, and the extra words are free
    // determinism-wise (they sit at fixed counter positions whether or not
    // a bin ever reads them).
    const std::size_t blocks = ((words + 3) / 4 + 3) & ~std::size_t{3};
    if (buf_->size() < end_ + blocks * 4) {
      buf_->resize(std::max(end_ + blocks * 4, buf_->size() * 2));
    }
    ops_->philox_fill(key_, stream_, end_ / 4, buf_->data() + end_, blocks);
    end_ += blocks * 4;
  }

  const stats::kernels::Ops* ops_;
  std::uint64_t key_;
  std::uint64_t stream_ = 0;
  std::vector<std::uint32_t>* buf_;
  std::size_t pos_ = 0;  // next word to hand out
  std::size_t end_ = 0;  // filled words (logical size; <= buf_->size())
};

/// Per-thread scratch reused across tile renders (fleet mode renders
/// millions of tiles; none of these should allocate per tile).
struct V2Scratch {
  std::vector<double> act;
  std::vector<double> boost;
  std::vector<double> means;          // session-count means, app-major
  std::vector<std::uint32_t> words;   // cursor buffer
  std::vector<std::uint32_t> cw;      // count-channel words, app-major
  std::vector<std::uint32_t> cnt;     // session counts, app-major
  std::vector<std::uint8_t> active;   // per-bin any-app-fired flags
  std::vector<std::uint32_t> st_tcp, st_udp, st_dns, st_http, st_syn, st_draws;
};

V2Scratch& v2_scratch() {
  static thread_local V2Scratch scratch;
  return scratch;
}

}  // namespace


void TraceGenerator::render_features_v2_tile(const UserProfile& user,
                                             std::uint64_t tile_begin,
                                             std::uint64_t tile_end,
                                             features::FeatureMatrix& matrix) const {
  using stats::batch::to_unit32;

  const util::BinGrid grid = config_.grid;
  const util::Duration horizon = config_.horizon();
  const std::uint64_t bins = grid.bin_count(horizon);
  MONOHIDS_EXPECT(tile_begin < tile_end && tile_end <= bins, "v2 tile out of range");
  const std::uint64_t tile_bins = tile_end - tile_begin;

  const double bin_hours =
      static_cast<double>(grid.width()) / static_cast<double>(util::kMicrosPerHour);
  const double effective_pool =
      std::max(4.0, config_.distinct_pool_factor * user.destination_pool_size);
  const std::uint64_t bins_per_week =
      util::kMicrosPerWeek % grid.width() == 0 ? util::kMicrosPerWeek / grid.width() : 0;

  V2Scratch& scratch = v2_scratch();

  // --- stage 1: rate tables (same structure as v1, 32-bit grain) ----------
  std::vector<double>& act = scratch.act;
  act.resize(bins_per_week != 0 ? std::min(bins_per_week, bins) : bins);
  for (std::uint64_t i = 0; i < act.size(); ++i) {
    const util::Timestamp mid = grid.bin_start(i) + grid.width() / 2;
    act[i] = activity_at(user.diurnal, mid);
  }

  // Episode boosts: the serial v2 episode stream stepped from bin 0 with
  // the pinned semantics, recording only this tile's bins. Re-stepping the
  // prefix costs ~1 word per idle bin — negligible next to rendering.
  std::vector<double>& boost = scratch.boost;
  boost.resize(tile_bins);
  {
    BasicEpisodeProcess<util::Philox4x32> episodes(
        user, config_.episode_log_mu, util::derive_seed(user.seed, "v2/episodes", 0));
    std::uint64_t bow = 0;
    for (std::uint64_t b = 0; b < tile_end; ++b) {
      const double m = episodes.step(grid.bin_start(b), bin_hours, act[bow]);
      if (b >= tile_begin) boost[b - tile_begin] = m;
      if (++bow == act.size()) bow = 0;
    }
  }

  // --- stage 2: session-count means per (app, tile bin) -------------------
  // Means stay app-major (no bin-major transpose): the count-channel sweep
  // is app-major anyway and the bin loop below only touches active bins'
  // stripes, so six sequential streams beat a 16-byte scatter per row.
  std::vector<double>& means = scratch.means;
  means.resize(tile_bins * kAppCount);
  for (std::size_t a = 0; a < kAppCount; ++a) {
    const AppKind app = kAllApps[a];
    const double rate = user.rate_of(app);
    std::uint64_t bow = tile_begin % act.size();
    std::uint32_t week = static_cast<std::uint32_t>(tile_begin / act.size());
    double drift = user.drift(week, app);
    double* ma = means.data() + a * tile_bins;
    for (std::uint64_t i = 0; i < tile_bins; ++i) {
      if (bins_per_week == 0) {
        const util::Timestamp mid =
            grid.bin_start(tile_begin + i) + grid.width() / 2;
        drift = user.drift(util::week_of(mid), app);
      }
      ma[i] = rate * act[bow] * boost[i] * drift * bin_hours;
      if (++bow == act.size()) {
        bow = 0;
        if (bins_per_week != 0) drift = user.drift(++week, app);
      }
    }
  }

  // --- stage 2.5: count-channel fills + bulk session counts ---------------
  // One wide kernel fill per app covers every bin's count word in this
  // tile; the dispatched poisson_counts kernel resolves each word to its
  // session count (exp_neg12 + one-word inversion, inverse-CDF normal in
  // the heavy regime) in six sequential app passes. The common night-time
  // bin dies here — its own stream is never generated, let alone consumed.
  const stats::kernels::Ops& ops = stats::kernels::active();
  const std::uint64_t key = util::derive_seed(user.seed, "v2/bins", 0);
  const std::uint64_t cw_block0 = tile_begin / 4;
  const std::uint64_t cw_offset = tile_begin - cw_block0 * 4;
  const std::uint64_t cw_blocks = (tile_end + 3) / 4 - cw_block0;
  const std::uint64_t cw_stride = cw_blocks * 4;
  std::vector<std::uint32_t>& cw = scratch.cw;
  cw.resize(cw_stride * kAppCount);
  for (std::size_t a = 0; a < kAppCount; ++a) {
    ops.philox_fill(key, kV2CountChannel + a, cw_block0, cw.data() + a * cw_stride,
                    static_cast<std::size_t>(cw_blocks));
  }
  std::vector<std::uint8_t>& active = scratch.active;
  std::vector<std::uint32_t>& cnt = scratch.cnt;
  active.assign(tile_bins, 0);
  cnt.resize(tile_bins * kAppCount);
  std::uint64_t total_sessions = 0;
  for (std::size_t a = 0; a < kAppCount; ++a) {
    total_sessions +=
        ops.poisson_counts(means.data() + a * tile_bins, cw.data() + a * cw_stride + cw_offset,
                           cnt.data() + a * tile_bins, tile_bins);
  }
  for (std::size_t a = 0; a < kAppCount; ++a) {
    const std::uint32_t* ca = cnt.data() + a * tile_bins;
    for (std::uint64_t i = 0; i < tile_bins; ++i) {
      active[i] |= static_cast<std::uint8_t>(ca[i] != 0);
    }
  }

  // --- stage 3: bulk word consumption per bin -----------------------------
  scratch.st_tcp.assign(tile_bins, 0);
  scratch.st_udp.assign(tile_bins, 0);
  scratch.st_dns.assign(tile_bins, 0);
  scratch.st_http.assign(tile_bins, 0);
  scratch.st_syn.assign(tile_bins, 0);
  scratch.st_draws.assign(tile_bins, 0);

  const detail::FootprintTables32& T = detail::footprint_tables32();
  const std::uint64_t web_b0 = T.web_objects.boundary(0);
  const std::uint64_t web_b1 = T.web_objects.boundary(1);
  const std::uint64_t web_b2 = T.web_objects.boundary(2);

  constexpr std::size_t kWebRow = index_of(AppKind::Web);
  constexpr std::size_t kDnsRow = index_of(AppKind::Dns);
  constexpr std::size_t kMailRow = index_of(AppKind::Mail);
  constexpr std::size_t kP2pRow = index_of(AppKind::P2p);
  constexpr std::size_t kInterRow = index_of(AppKind::Interactive);
  constexpr std::size_t kUpdateRow = index_of(AppKind::Update);
  constexpr std::uint64_t kDirect = detail::FootprintTables32::kParetoDirectCap;

  V2Cursor cur(key, scratch.words);

  for (std::uint64_t i = 0; i < tile_bins; ++i) {
    if (!active[i]) continue;  // staging rows stay zero; no stream touched
    const std::uint64_t s_web = cnt[kWebRow * tile_bins + i];
    const std::uint64_t s_dns = cnt[kDnsRow * tile_bins + i];
    const std::uint64_t s_mail = cnt[kMailRow * tile_bins + i];
    const std::uint64_t s_p2p = cnt[kP2pRow * tile_bins + i];
    const std::uint64_t s_inter = cnt[kInterRow * tile_bins + i];
    const std::uint64_t s_upd = cnt[kUpdateRow * tile_bins + i];

    // Exact-ish word estimate from the known counts (merged draws are one
    // word each; only the multinomial tails are random). Slightly generous
    // so a typical bin is served by the single reset() fill.
    std::size_t est = 8;
    est += s_web <= kDirect ? s_web : 4 + s_web / 16;
    est += s_p2p <= kDirect ? s_p2p : 10 + s_p2p / 8;
    est += s_upd <= kDirect ? s_upd : 10 + s_upd / 16;
    cur.reset(tile_begin + i, est);
    
    std::uint64_t n_tcp = 0, n_udp = 0, n_dns = 0, n_http = 0, n_syn = 0, n_draws = 0;

    if (const std::uint64_t S = s_web; S != 0) {  // Web
      std::uint64_t total_objects = 0, m12 = 0;
      if (S <= kDirect) {
        const std::uint32_t* ow = cur.take(S);
        for (std::uint64_t s = 0; s < S; ++s) {
          const std::uint32_t w = ow[s];
          std::uint32_t o;
          if (w > web_b2) [[likely]]
            o = 1 + (w <= web_b0 ? 1u : 0u) + (w <= web_b1 ? 1u : 0u);
          else
            o = T.web_objects.count(w);
          total_objects += o;
          m12 += std::min<std::uint32_t>(o, 12);
        }
      } else {
        T.web_objects_sum.sample(cur, S, total_objects, m12);
      }
      // The merged domain draw needs only the sufficient statistic m12;
      // the Bernoulli passes over objects collapse to one Binomial word.
      const std::uint64_t domain_extra = T.domain_sum.sample(cur(), m12);
      const std::uint64_t https = T.https_045.sample(cur(), total_objects);
      const std::uint64_t syn_extra = T.syn_retrans_003.sample(cur(), total_objects);
      n_tcp += total_objects;
      n_http += total_objects - https;
      n_dns += S + domain_extra;
      n_udp += S + domain_extra;
      n_syn += total_objects + syn_extra;
      n_draws += total_objects + S;
    }
    if (const std::uint64_t S = s_dns; S != 0) {  // Dns
      const std::uint64_t extra = T.dns_sum.sample(cur(), S);
      n_dns += S + extra;
      n_udp += S + extra;
      n_draws += S;
    }
    if (const std::uint64_t S = s_mail; S != 0) {  // Mail
      const std::uint64_t hits = T.mail_dns_020.sample(cur(), S);
      n_tcp += S;
      n_syn += S;
      n_draws += S;
      n_dns += hits;
      n_udp += hits;
    }
    if (const std::uint64_t S = s_p2p; S != 0) {  // P2p
      std::uint64_t peers = 0, unused = 0;
      if (S <= kDirect) {
        const std::uint32_t* pw = cur.take(S);
        for (std::uint64_t s = 0; s < S; ++s) peers += T.p2p_peers.count_fast(pw[s]);
      } else {
        T.p2p_peers_sum.sample(cur, S, peers, unused);
      }
      n_udp += peers;
      n_draws += peers;
    }
    if (const std::uint64_t S = s_inter; S != 0) {  // Interactive
      const std::uint64_t hits = T.interactive_dns_030.sample(cur(), S);
      n_tcp += S;
      n_syn += S;
      n_draws += S;
      n_dns += hits;
      n_udp += hits;
    }
    if (const std::uint64_t S = s_upd; S != 0) {  // Update
      std::uint64_t pareto_fetches = 0, unused = 0;
      if (S <= kDirect) {
        const std::uint32_t* fw = cur.take(S);
        for (std::uint64_t s = 0; s < S; ++s) {
          pareto_fetches += T.update_fetches.count_fast(fw[s]);
        }
      } else {
        T.update_fetches_sum.sample(cur, S, pareto_fetches, unused);
      }
      const std::uint64_t total_fetches = 4 * S + pareto_fetches;
      const std::uint64_t retrans = T.update_sum.sample(cur(), total_fetches);
      n_tcp += total_fetches;
      n_syn += total_fetches + retrans;
      n_dns += S;
      n_udp += S;
      n_draws += 2 * S;
    }

    scratch.st_tcp[i] = static_cast<std::uint32_t>(n_tcp);
    scratch.st_udp[i] = static_cast<std::uint32_t>(n_udp);
    scratch.st_dns[i] = static_cast<std::uint32_t>(n_dns);
    scratch.st_http[i] = static_cast<std::uint32_t>(n_http);
    scratch.st_syn[i] = static_cast<std::uint32_t>(n_syn);
    scratch.st_draws[i] = static_cast<std::uint32_t>(n_draws);
  }

  // --- stage 4: float post-processing (shared helper) ---------------------
  finalize_bins(user, effective_pool, scratch.st_tcp, scratch.st_udp, scratch.st_dns,
                scratch.st_http, scratch.st_syn, scratch.st_draws, tile_begin, matrix);

  static obs::Counter bins_rendered =
      obs::MetricsRegistry::global().counter("tracegen.bins_rendered");
  static obs::Counter sessions_sampled =
      obs::MetricsRegistry::global().counter("tracegen.sessions_sampled");
  static obs::Counter v2_tiles =
      obs::MetricsRegistry::global().counter("tracegen.v2_tiles_rendered");
  bins_rendered.add(tile_bins);
  sessions_sampled.add(total_sessions);
  v2_tiles.inc();
}

features::FeatureMatrix TraceGenerator::generate_features_v2(const UserProfile& user) const {
  const util::BinGrid grid = config_.grid;
  const util::Duration horizon = config_.horizon();
  features::FeatureMatrix matrix;
  for (auto& s : matrix.series) s = features::BinnedSeries(grid, horizon);

  const std::uint64_t bins = grid.bin_count(horizon);
  const std::uint64_t tile = config_.v2_bin_tile == 0 ? bins : config_.v2_bin_tile;
  for (std::uint64_t b = 0; b < bins; b += tile) {
    render_features_v2_tile(user, b, std::min(bins, b + tile), matrix);
  }
  return matrix;
}

}  // namespace monohids::trace
