#include "trace/activity.hpp"

#include <cmath>

namespace monohids::trace {

namespace {
/// Smooth bump centered at `center` with half-width `width` (raised cosine).
double bump(double hour, double center, double width) noexcept {
  double d = std::fabs(hour - center);
  if (d > 12.0) d = 24.0 - d;  // wrap around midnight
  if (d >= width) return 0.0;
  return 0.5 * (1.0 + std::cos(d / width * 3.14159265358979323846));
}
}  // namespace

double activity_at(const DiurnalProfile& profile, util::Timestamp t) noexcept {
  double hour = util::hour_of_day(t) - profile.phase_hours;
  if (hour < 0.0) hour += 24.0;
  if (hour >= 24.0) hour -= 24.0;

  // Work plateau 9:00-17:30 (two overlapping bumps give a plateau with soft
  // shoulders), evening bump around 20:30.
  const double work = profile.work_level *
                      std::min(1.0, bump(hour, 11.0, 4.5) + bump(hour, 15.5, 4.5));
  const double evening = profile.evening_level * bump(hour, 20.5, 3.0);
  double level = profile.night_floor + std::max(work, evening);

  // The phase shift translates the user's whole week, weekend included: a
  // night owl's Friday evening (already past wall-clock midnight) must not
  // be weekend-damped. Evaluate the weekend predicate on the same shifted
  // clock as the daily curve. One week is added before subtracting so a
  // positive shift cannot underflow the unsigned timestamp; day-of-week is
  // week-periodic, so the added week never changes the answer.
  const util::Timestamp shifted =
      t + util::kMicrosPerWeek -
      static_cast<util::Timestamp>(
          std::llround(profile.phase_hours * static_cast<double>(util::kMicrosPerHour)));
  if (util::is_weekend(shifted)) level *= profile.weekend_factor;
  return level;
}

}  // namespace monohids::trace
