// Precomputed draw tables for the batched generation pipeline.
//
// Every footprint draw in apps.cpp bottoms out in one of three shapes: a
// capped Pareto count (pow), a small-mean Poisson count (exp + product
// chain) or a Bernoulli test against a fixed probability. All of their
// libm-dependent constants are fixed by the model, so they are computed
// once per process and reduced to exact integer thresholds on the raw
// engine words (see stats/sampling.hpp's batch API for the exactness
// argument). The batched bin loop then contains no libm calls at all.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "stats/sampling.hpp"

namespace monohids::trace::detail {

struct FootprintTables {
  // Capped Pareto counts: web page objects, P2P peers, update fetches.
  stats::batch::ParetoCountTable web_objects{2.6, 40};
  stats::batch::ParetoCountTable p2p_peers{1.55, 600};
  stats::batch::ParetoCountTable update_fetches{2.1, 100};

  // Web per-page domain count: 1 + Poisson(min(objects, 12) / 5), one row
  // per possible object count.
  double web_domain_limit[41];
  std::uint64_t web_domain_threshold[41];

  // Background DNS burst: 1 + Poisson(0.6).
  double dns_limit;
  std::uint64_t dns_threshold;

  // Update SYN retransmissions: Poisson(fetches * 0.02), fetches in 5..104.
  double update_syn_limit[105];
  std::uint64_t update_syn_threshold[105];

  // Bernoulli thresholds: HTTPS share, SYN retransmission, mail DNS
  // refresh, interactive DNS refresh.
  std::uint64_t https_045;
  std::uint64_t syn_retrans_003;
  std::uint64_t mail_dns_020;
  std::uint64_t interactive_dns_030;

  FootprintTables() {
    using stats::batch::bernoulli_threshold;
    using stats::batch::knuth_zero_threshold;
    for (std::uint32_t objects = 1; objects <= 40; ++objects) {
      web_domain_limit[objects] =
          std::exp(-(std::min<double>(objects, 12.0) / 5.0));
      web_domain_threshold[objects] = knuth_zero_threshold(web_domain_limit[objects]);
    }
    dns_limit = std::exp(-0.6);
    dns_threshold = knuth_zero_threshold(dns_limit);
    for (std::uint32_t fetches = 5; fetches <= 104; ++fetches) {
      update_syn_limit[fetches] = std::exp(-(static_cast<double>(fetches) * 0.02));
      update_syn_threshold[fetches] = knuth_zero_threshold(update_syn_limit[fetches]);
    }
    https_045 = bernoulli_threshold(0.45);
    syn_retrans_003 = bernoulli_threshold(0.03);
    mail_dns_020 = bernoulli_threshold(0.2);
    interactive_dns_030 = bernoulli_threshold(0.3);
  }
};

/// The process-wide table set (immutable after construction, so sharing
/// across generator threads is free).
[[nodiscard]] const FootprintTables& footprint_tables();

/// Exact sampler for the SUM of S iid capped-Pareto counts, in O(support)
/// words instead of O(S). The feature matrix only consumes per-bin totals
/// (total web objects, total P2P peers, total update fetches), so the
/// per-session count draws collapse into the value HISTOGRAM: (k_1 ...
/// k_cap) ~ Multinomial(S, p_v), sampled as the standard chain of
/// conditional binomials k_v ~ Binomial(S - k_1 - ... - k_(v-1),
/// P(X = v) / P(X >= v)). The head values (1..head) cover all but a few
/// percent of the mass for the shapes in use, so the chain stops there and
/// the remaining sessions — all conditioned on X > head — draw their value
/// individually from the rescaled tail of the same word-space table.
///
/// The value probabilities come straight from the 32-bit word-space
/// boundaries (P(X >= v+1) = (boundary(v-1) + 1) / 2^32), so the marginal
/// distribution of the total matches the per-draw table path exactly (up
/// to the documented binomial normal-approximation regime).
class ParetoSumTable {
 public:
  ParetoSumTable(const stats::batch::ParetoCountTable& table, std::uint32_t head)
      : table_(&table), head_(head), cap_(table.cap()) {
    MONOHIDS_EXPECT(head >= 1 && head + 1 < cap_, "Pareto-sum head out of range");
    tail_bound_ = table.boundary(head - 1);  // words <= bound mean X > head
    double p_ge_v = 1.0;                     // P(X >= 1)
    head_binom_.reserve(head);
    for (std::uint32_t v = 1; v <= head; ++v) {
      const double p_ge_next =
          static_cast<double>(table.boundary(v - 1) + 1) * 0x1.0p-32;
      head_binom_.emplace_back((p_ge_v - p_ge_next) / p_ge_v);
      p_ge_v = p_ge_next;
    }
  }

  /// Draws the histogram from the word source (head conditional-binomial
  /// words while sessions remain, then one word per X > head session) and
  /// accumulates the total count and the min(value, 12) total (the web
  /// domain-extras sufficient statistic; callers that don't need it ignore
  /// it). Word footprint: at most head + (# sessions with X > head).
  template <typename WordSource>
  void sample(WordSource& next_word, std::uint64_t sessions, std::uint64_t& total,
              std::uint64_t& min12_total) const {
    std::uint64_t rem = sessions;
    for (std::uint32_t v = 1; v <= head_ && rem != 0; ++v) {
      const std::uint64_t k = head_binom_[v - 1].sample(next_word(), rem);
      total += k * v;
      min12_total += k * std::min<std::uint64_t>(v, 12);
      rem -= k;
    }
    for (std::uint64_t s = 0; s < rem; ++s) {
      // Rescale the word into the X > head region of the table's word
      // space, then resume the boundary scan past the head.
      const std::uint64_t scaled =
          (static_cast<std::uint64_t>(next_word()) * (tail_bound_ + 1)) >> 32;
      std::uint32_t k = head_ + 1;
      while (k < cap_ && scaled <= table_->boundary(k - 1)) ++k;
      total += k;
      min12_total += std::min<std::uint32_t>(k, 12);
    }
  }

 private:
  const stats::batch::ParetoCountTable* table_;
  std::uint32_t head_, cap_;
  std::uint64_t tail_bound_;
  std::vector<stats::batch::BinomialCdf> head_binom_;
};

/// The same footprint model in the v2 counter-mode draw grain: raw 32-bit
/// Philox words, EVERY draw exactly one word. Three reductions get it
/// there (all exact in distribution; the feature matrix only consumes
/// per-bin totals):
///
///  - Poisson sums merge: domain extras, DNS lookup bursts and update
///    retransmissions are sums of independent per-session Poissons, which
///    is Poisson of the summed mean. The summed means are integer-granular
///    (an integer sufficient statistic times a model constant), so one
///    precomputed threshold row per integer covers every bin
///    (stats::batch::PoissonSumCdf — the draw is an integer row scan);
///    past the row cap the mean clears stats::batch::kNormalCutoff32 and
///    the draw switches to the one-word inverse-CDF normal.
///  - Bernoulli passes merge: per-object HTTPS and SYN-retransmission
///    tests and per-session mail/interactive DNS refreshes become one
///    Binomial(n, p) word (stats::batch::BinomialCdf, same row-scan
///    grain).
///  - Per-session Pareto counts merge: the session-count sums become
///    chained-binomial multinomial histograms (ParetoSumTable) past a
///    small direct-draw regime.
struct FootprintTables32 {
  stats::batch::ParetoCountTable web_objects{2.6, 40, 32};
  stats::batch::ParetoCountTable p2p_peers{1.55, 600, 32};
  stats::batch::ParetoCountTable update_fetches{2.1, 100, 32};

  /// Multinomial-head sizes: P(X > head) is ~2.7% for the web-object shape
  /// and ~4% / ~1.3% for the heavier P2P / update shapes with head 8, so
  /// the per-draw tail stays a few percent of sessions.
  ParetoSumTable web_objects_sum{web_objects, 3};
  ParetoSumTable p2p_peers_sum{p2p_peers, 8};
  ParetoSumTable update_fetches_sum{update_fetches, 8};

  /// Below this session count the renderer draws Pareto counts directly
  /// (one word per session): the multinomial chain's fixed head words
  /// would cost more than the sessions themselves.
  static constexpr std::uint64_t kParetoDirectCap = 8;

  /// Poisson-sum draw tables, one threshold row per integer sufficient
  /// statistic (index 0 encodes mean 0 — callers index unconditionally):
  ///  - web domain extras: mean m/5 with m = sum of min(objects, 12);
  ///    rows up to m = 59 (m >= 60 means mean >= kNormalCutoff32),
  ///  - background DNS lookup extras: mean 0.6 * S over S sessions,
  ///  - update SYN retransmissions: mean 0.02 * F over F total fetches.
  stats::batch::PoissonSumCdf domain_sum{1.0 / 5.0, 60};
  stats::batch::PoissonSumCdf dns_sum{0.6, 20};
  stats::batch::PoissonSumCdf update_sum{0.02, 600};

  stats::batch::BinomialCdf https_045{0.45};
  stats::batch::BinomialCdf syn_retrans_003{0.03};
  stats::batch::BinomialCdf mail_dns_020{0.2};
  stats::batch::BinomialCdf interactive_dns_030{0.3};
};

/// The process-wide v2 table set.
[[nodiscard]] const FootprintTables32& footprint_tables32();

}  // namespace monohids::trace::detail
