// Precomputed draw tables for the batched generation pipeline.
//
// Every footprint draw in apps.cpp bottoms out in one of three shapes: a
// capped Pareto count (pow), a small-mean Poisson count (exp + product
// chain) or a Bernoulli test against a fixed probability. All of their
// libm-dependent constants are fixed by the model, so they are computed
// once per process and reduced to exact integer thresholds on the raw
// engine words (see stats/sampling.hpp's batch API for the exactness
// argument). The batched bin loop then contains no libm calls at all.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "stats/sampling.hpp"

namespace monohids::trace::detail {

struct FootprintTables {
  // Capped Pareto counts: web page objects, P2P peers, update fetches.
  stats::batch::ParetoCountTable web_objects{2.6, 40};
  stats::batch::ParetoCountTable p2p_peers{1.55, 600};
  stats::batch::ParetoCountTable update_fetches{2.1, 100};

  // Web per-page domain count: 1 + Poisson(min(objects, 12) / 5), one row
  // per possible object count.
  double web_domain_limit[41];
  std::uint64_t web_domain_threshold[41];

  // Background DNS burst: 1 + Poisson(0.6).
  double dns_limit;
  std::uint64_t dns_threshold;

  // Update SYN retransmissions: Poisson(fetches * 0.02), fetches in 5..104.
  double update_syn_limit[105];
  std::uint64_t update_syn_threshold[105];

  // Bernoulli thresholds: HTTPS share, SYN retransmission, mail DNS
  // refresh, interactive DNS refresh.
  std::uint64_t https_045;
  std::uint64_t syn_retrans_003;
  std::uint64_t mail_dns_020;
  std::uint64_t interactive_dns_030;

  FootprintTables() {
    using stats::batch::bernoulli_threshold;
    using stats::batch::knuth_zero_threshold;
    for (std::uint32_t objects = 1; objects <= 40; ++objects) {
      web_domain_limit[objects] =
          std::exp(-(std::min<double>(objects, 12.0) / 5.0));
      web_domain_threshold[objects] = knuth_zero_threshold(web_domain_limit[objects]);
    }
    dns_limit = std::exp(-0.6);
    dns_threshold = knuth_zero_threshold(dns_limit);
    for (std::uint32_t fetches = 5; fetches <= 104; ++fetches) {
      update_syn_limit[fetches] = std::exp(-(static_cast<double>(fetches) * 0.02));
      update_syn_threshold[fetches] = knuth_zero_threshold(update_syn_limit[fetches]);
    }
    https_045 = bernoulli_threshold(0.45);
    syn_retrans_003 = bernoulli_threshold(0.03);
    mail_dns_020 = bernoulli_threshold(0.2);
    interactive_dns_030 = bernoulli_threshold(0.3);
  }
};

/// The process-wide table set (immutable after construction, so sharing
/// across generator threads is free).
[[nodiscard]] const FootprintTables& footprint_tables();

}  // namespace monohids::trace::detail
