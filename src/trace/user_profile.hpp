// Per-user behavioral profile.
//
// A UserProfile is the synthetic stand-in for one of the paper's 350
// volunteers: everything the generators need to reproduce that user's
// traffic for any week — overall intensity (the heavy-tailed quantity that
// drives Figure 1's threshold diversity), a per-application rate mix (whose
// independence across users produces Figure 2's TCP-heavy vs UDP-heavy
// corners), a diurnal rhythm, burst-episode parameters, week-to-week drift
// (the threshold instability of §6.1), and a destination-pool size (which
// bounds distinct-destination counts).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "net/ipv4.hpp"
#include "trace/activity.hpp"
#include "trace/apps.hpp"

namespace monohids::trace {

/// Behavioral role of a user: which applications dominate their traffic.
/// Orthogonal to overall intensity, archetypes are what create the paper's
/// Figure-2 corners (TCP-heavy-but-UDP-light users and vice versa).
enum class Archetype : std::uint8_t {
  Browser = 0,     ///< web-dominated knowledge worker
  Developer,       ///< build/update/interactive heavy, light browsing
  Media,           ///< P2P / streaming heavy (UDP-dominated)
  MailCentric,     ///< mail + chat, little bulk traffic
  Balanced,        ///< no dominant application
};

[[nodiscard]] std::string_view name_of(Archetype a) noexcept;

struct UserProfile {
  std::uint32_t user_id = 0;
  net::Ipv4Address address;   ///< the laptop's enterprise address
  std::uint64_t seed = 0;     ///< root of this user's private RNG streams

  Archetype archetype = Archetype::Balanced;
  bool heavy_class = false;   ///< member of the top-~15% heavy population
  double intensity = 1.0;     ///< overall traffic scale (log-normal across users)

  /// Sessions per hour at activity level 1.0, per application.
  std::array<double, kAppCount> session_rate_per_hour{};

  DiurnalProfile diurnal;

  /// Burst episodes (crawls, big syncs): arrival rate per active hour and
  /// the log-sigma of the episode's rate multiplier.
  double episode_rate_per_hour = 0.1;
  double episode_log_sigma = 1.0;
  double episode_mean_minutes = 20.0;

  /// Extra amplitude multiplier applied to burst episodes. Heavy users in
  /// enterprise traces are mostly *episodically* heavy: their tails (the
  /// Fig. 1 thresholds) dwarf their bulk rates. 1.0 for ordinary users.
  double episode_amplitude = 1.0;

  /// Multiplicative rate drift per (week, app): models non-stationarity.
  std::vector<std::array<double, kAppCount>> weekly_drift;

  /// OS resolver-cache hit rate: the fraction of DNS lookups answered
  /// locally (no packet, no DNS/UDP flow). Grows with host intensity —
  /// busy machines mostly re-resolve cached names — which is what keeps the
  /// paper's DNS feature to ~2 decades of spread while others span 3-4.
  double dns_cache_hit = 0.0;

  /// Size of the user's destination universe (servers + peers).
  std::uint32_t destination_pool_size = 400;

  [[nodiscard]] double rate_of(AppKind app) const noexcept {
    return session_rate_per_hour[index_of(app)];
  }

  /// Drift multiplier for (week, app); 1.0 past the configured horizon.
  [[nodiscard]] double drift(std::uint32_t week, AppKind app) const noexcept {
    if (week >= weekly_drift.size()) return 1.0;
    return weekly_drift[week][index_of(app)];
  }
};

}  // namespace monohids::trace
