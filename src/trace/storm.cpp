#include "trace/storm.hpp"

#include <algorithm>
#include <cmath>

#include "net/classify.hpp"
#include "stats/sampling.hpp"
#include "util/error.hpp"

namespace monohids::trace {

namespace {

using util::Timestamp;

/// On/off wave process (spam campaigns, scan phases) stepped per bin.
class WaveProcess {
 public:
  WaveProcess(double waves_per_day, double mean_minutes, std::uint64_t seed)
      : rate_per_hour_(waves_per_day / 24.0), mean_minutes_(mean_minutes), rng_(seed) {}

  /// Fraction of the bin spent inside a wave (0 = off, 1 = fully on).
  double step(Timestamp bin_start, double bin_hours) {
    const Timestamp bin_end = bin_start + util::from_seconds(bin_hours * 3600.0);
    if (!active_ && rng_.uniform01() < std::min(1.0, rate_per_hour_ * bin_hours)) {
      active_ = true;
      const double minutes = stats::sample_exponential(rng_, 1.0 / mean_minutes_);
      wave_end_ = bin_start + util::from_seconds(minutes * 60.0);
    }
    if (!active_) return 0.0;
    if (wave_end_ >= bin_end) return 1.0;
    const double fraction = static_cast<double>(wave_end_ - bin_start) /
                            static_cast<double>(bin_end - bin_start);
    active_ = false;
    return std::max(0.0, fraction);
  }

 private:
  double rate_per_hour_;
  double mean_minutes_;
  util::Xoshiro256 rng_;
  bool active_ = false;
  Timestamp wave_end_ = 0;
};

struct BinLoads {
  double p2p_probes = 0;
  double spam_relays = 0;
  double scan_probes = 0;
};

/// Samples per-bin event counts; shared by both render paths so the packet
/// trace and the feature matrix describe the same attack.
class StormProcess {
 public:
  explicit StormProcess(const StormConfig& config)
      : config_(config),
        spam_waves_(config.spam_waves_per_day, config.spam_wave_mean_minutes,
                    util::derive_seed(config.seed, "spam-waves", 0)),
        scan_phases_(config.scan_phases_per_day, config.scan_phase_mean_minutes,
                     util::derive_seed(config.seed, "scan-phases", 0)),
        rng_(util::derive_seed(config.seed, "loads", 0)) {}

  BinLoads step(Timestamp bin_start, double bin_minutes) {
    const double bin_hours = bin_minutes / 60.0;
    BinLoads loads;
    loads.p2p_probes = static_cast<double>(
        stats::sample_poisson(rng_, config_.p2p_probes_per_minute * bin_minutes));
    const double spam_on = spam_waves_.step(bin_start, bin_hours);
    if (spam_on > 0.0) {
      loads.spam_relays = static_cast<double>(stats::sample_poisson(
          rng_, config_.spam_relays_per_minute * bin_minutes * spam_on));
    }
    const double scan_on = scan_phases_.step(bin_start, bin_hours);
    if (scan_on > 0.0) {
      loads.scan_probes = static_cast<double>(stats::sample_poisson(
          rng_, config_.scan_probes_per_minute * bin_minutes * scan_on));
    }
    return loads;
  }

 private:
  StormConfig config_;
  WaveProcess spam_waves_;
  WaveProcess scan_phases_;
  util::Xoshiro256 rng_;
};

}  // namespace

features::FeatureMatrix generate_storm_features(const StormConfig& config) {
  MONOHIDS_EXPECT(config.weeks > 0, "storm horizon must be at least one week");
  const util::BinGrid grid = config.grid;
  const util::Duration horizon = config.weeks * util::kMicrosPerWeek;
  const double bin_minutes =
      static_cast<double>(grid.width()) / static_cast<double>(util::kMicrosPerMinute);

  features::FeatureMatrix matrix;
  for (auto& s : matrix.series) s = features::BinnedSeries(grid, horizon);

  StormProcess process(config);
  const double universe = static_cast<double>(config.peer_universe);
  const std::uint64_t bins = grid.bin_count(horizon);

  for (std::uint64_t b = 0; b < bins; ++b) {
    const BinLoads loads = process.step(grid.bin_start(b), bin_minutes);

    const double udp = loads.p2p_probes;
    const double tcp = loads.spam_relays + loads.scan_probes;
    // Spam targets are often dead MXs and scans are mostly unanswered, so
    // SYN retransmissions inflate the raw SYN count ~30%.
    const double syn = std::round(tcp * 1.3);
    const double dns = std::round(loads.spam_relays * 0.3);  // MX lookups
    const double draws = loads.p2p_probes + loads.spam_relays + loads.scan_probes;
    const double distinct =
        draws == 0 ? 0.0 : universe * (1.0 - std::pow(1.0 - 1.0 / universe, draws));

    using features::FeatureKind;
    matrix.of(FeatureKind::UdpConnections).set(b, udp);
    matrix.of(FeatureKind::TcpConnections).set(b, tcp);
    matrix.of(FeatureKind::TcpSyn).set(b, syn);
    matrix.of(FeatureKind::DnsConnections).set(b, dns);
    matrix.of(FeatureKind::DistinctConnections).set(b, std::round(distinct));
    // HTTP stays zero: Storm did not attack over HTTP.
  }
  return matrix;
}

std::vector<net::PacketRecord> generate_storm_packets(const StormConfig& config,
                                                      net::Ipv4Address zombie,
                                                      Timestamp begin, Timestamp end) {
  MONOHIDS_EXPECT(begin < end, "empty packet range");
  const util::BinGrid grid = config.grid;
  const util::Duration horizon = config.weeks * util::kMicrosPerWeek;
  MONOHIDS_EXPECT(end <= horizon, "range beyond storm horizon");
  const double bin_minutes =
      static_cast<double>(grid.width()) / static_cast<double>(util::kMicrosPerMinute);

  StormProcess process(config);
  util::Xoshiro256 rng(util::derive_seed(config.seed, "packets", 0));
  std::vector<net::PacketRecord> out;

  auto random_peer = [&] {
    return net::Ipv4Address(static_cast<std::uint32_t>(
        stats::sample_uniform_int(rng, 1u << 24, (200u << 24) - 1)));
  };
  auto offset_in_bin = [&](Timestamp bin_start) {
    return bin_start + static_cast<util::Duration>(
                           rng.uniform01() * static_cast<double>(grid.width() - 1));
  };

  const std::uint64_t last_bin = grid.bin_of(end - 1);
  for (std::uint64_t b = 0; b <= last_bin; ++b) {
    const Timestamp start = grid.bin_start(b);
    const BinLoads loads = process.step(start, bin_minutes);
    if (start + grid.width() <= begin) continue;  // wave state already advanced

    for (double i = 0; i < loads.p2p_probes; ++i) {
      const Timestamp at = offset_in_bin(start);
      const net::FiveTuple t{zombie, random_peer(),
                             static_cast<std::uint16_t>(
                                 stats::sample_uniform_int(rng, 1025, 65535)),
                             static_cast<std::uint16_t>(
                                 stats::sample_uniform_int(rng, 10000, 30000)),
                             net::Protocol::Udp};
      out.push_back({at, t, net::TcpFlags::None, 25});
    }
    for (double i = 0; i < loads.spam_relays; ++i) {
      // SMTP connection attempt; ~40% of MXs never answer (SYN + retransmit
      // only), the rest complete a short relay exchange.
      const Timestamp at = offset_in_bin(start);
      const net::FiveTuple t{zombie, random_peer(),
                             static_cast<std::uint16_t>(
                                 stats::sample_uniform_int(rng, 1025, 65535)),
                             net::ports::kSmtp, net::Protocol::Tcp};
      out.push_back({at, t, net::TcpFlags::Syn, 0});
      if (rng.uniform01() < 0.4) {
        out.push_back({at + 3 * util::kMicrosPerSecond, t, net::TcpFlags::Syn, 0});
      } else {
        out.push_back({at + 30'000, t.reversed(),
                       net::TcpFlags::Syn | net::TcpFlags::Ack, 0});
        out.push_back({at + 60'000, t, net::TcpFlags::Ack | net::TcpFlags::Psh, 900});
        out.push_back({at + 200'000, t, net::TcpFlags::Fin | net::TcpFlags::Ack, 0});
        out.push_back({at + 230'000, t.reversed(),
                       net::TcpFlags::Fin | net::TcpFlags::Ack, 0});
      }
    }
    for (double i = 0; i < loads.scan_probes; ++i) {
      const Timestamp at = offset_in_bin(start);
      const net::FiveTuple t{zombie, random_peer(),
                             static_cast<std::uint16_t>(
                                 stats::sample_uniform_int(rng, 1025, 65535)),
                             static_cast<std::uint16_t>(
                                 stats::sample_uniform_int(rng, 1, 1024)),
                             net::Protocol::Tcp};
      out.push_back({at, t, net::TcpFlags::Syn, 0});
    }
  }

  std::sort(out.begin(), out.end(), [](const net::PacketRecord& a, const net::PacketRecord& b) {
    return a.timestamp < b.timestamp;
  });
  out.erase(std::remove_if(out.begin(), out.end(),
                           [begin, end](const net::PacketRecord& p) {
                             return p.timestamp < begin || p.timestamp >= end;
                           }),
            out.end());
  return out;
}

}  // namespace monohids::trace
