// libpcap-format trace export/import.
//
// write_pcap() renders PacketRecords as a classic pcap file (Ethernet II /
// IPv4 / TCP|UDP|ICMP with correct lengths and valid IPv4 header and
// TCP/UDP/ICMP checksums), so a synthetic enterprise trace opens directly
// in Wireshark/tcpdump with no "checksum error" noise;
// read_pcap() parses real captures (either byte order, micro- or
// nanosecond timestamps) back into PacketRecords, so the whole pipeline —
// flow table, features, policies — runs on actual traffic without any
// conversion step. Non-IPv4 frames are counted and skipped.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "features/pipeline.hpp"
#include "net/packet.hpp"

namespace monohids::trace {

/// Import statistics alongside the parsed packets.
struct PcapReadResult {
  std::vector<net::PacketRecord> packets;
  std::uint64_t packet_count = 0;       ///< parsed packets (== packets.size() for read_pcap)
  std::uint64_t skipped_non_ipv4 = 0;   ///< frames with another ethertype
  std::uint64_t skipped_protocol = 0;   ///< IPv4 but not TCP/UDP/ICMP
  std::uint64_t truncated = 0;          ///< snaplen cut into the headers
  bool nanosecond_timestamps = false;
  bool byte_swapped = false;
  /// Only set by stream_pcap_recovering: the diagnostic of the mid-stream
  /// fault that stopped the import early (empty = clean EOF).
  std::string stream_error;
};

/// Writes a pcap file (linktype Ethernet, microsecond timestamps).
/// Payload bytes are rendered as zeros — headers carry all the information
/// the study uses. Timestamps are microseconds from trace start.
void write_pcap(std::ostream& out, const std::vector<net::PacketRecord>& packets);

/// Parses a pcap stream. Throws InputError on malformed files; tolerates
/// unknown upper protocols by skipping (counted in the result).
[[nodiscard]] PcapReadResult read_pcap(std::istream& in);

/// Streaming form of read_pcap: pushes parsed packets into `sink` in batches
/// of at most `max_batch`, so importing a multi-gigabyte capture never
/// materializes it. The returned result carries the import statistics with
/// `packets` left empty (`packet_count` holds the parsed total). Same
/// validation and skip behavior as read_pcap.
PcapReadResult stream_pcap(std::istream& in, features::PacketSink& sink,
                           std::size_t max_batch = features::kDefaultIngestBatch);

/// Fault-tolerant stream_pcap for long-running consumers (the live daemon):
/// a truncated or corrupt record mid-stream stops the import gracefully
/// instead of throwing — every packet parsed before the fault is still
/// flushed to `sink`, and the diagnostic lands in the result's
/// `stream_error` field. A capture whose global header is already
/// malformed (bad magic, unsupported linktype, truncated header) throws
/// InputError exactly like stream_pcap: there is nothing to recover.
PcapReadResult stream_pcap_recovering(std::istream& in, features::PacketSink& sink,
                                      std::size_t max_batch = features::kDefaultIngestBatch);

/// RFC 1071 checksum over a 16-bit-aligned header (exposed for tests).
[[nodiscard]] std::uint16_t ipv4_header_checksum(const std::uint8_t* header,
                                                 std::size_t length);

/// RFC 1071 checksum of a TCP (protocol 6) or UDP (protocol 17) segment with
/// the IPv4 pseudo-header prepended (exposed for tests). `segment` spans the
/// transport header plus payload; odd lengths are zero-padded per the RFC.
/// Callers writing UDP must map a computed 0 to 0xFFFF on the wire.
[[nodiscard]] std::uint16_t ipv4_transport_checksum(net::Ipv4Address src,
                                                    net::Ipv4Address dst,
                                                    std::uint8_t protocol,
                                                    const std::uint8_t* segment,
                                                    std::size_t length);

/// RFC 1071 checksum over an ICMP message (no pseudo-header).
[[nodiscard]] std::uint16_t icmp_checksum(const std::uint8_t* message,
                                          std::size_t length);

}  // namespace monohids::trace
