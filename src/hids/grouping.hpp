// Grouping policies (paper §4: the second policy component).
//
// A Grouper partitions the user population; all hosts in a group share one
// threshold computed from their pooled traffic. The paper's three scenarios:
//   - Homogeneous: one group (the IT monoculture),
//   - Full diversity: every host its own group,
//   - Partial diversity: a small number of groups; the paper's heuristic
//     splits the top 15% "heavy" users from the bottom 85% at the Fig. 1
//     knee and subdivides each side into 4 quantile groups (8-partial).
// Two alternative groupers (k-means, equal frequency) implement the paper's
// future-work question of whether the partial-diversity result is robust to
// the grouping method.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "stats/empirical.hpp"
#include "util/rng.hpp"

namespace monohids::hids {

/// Partition of users into groups.
struct GroupAssignment {
  std::vector<std::uint32_t> group_of_user;  // user index -> group id
  std::uint32_t group_count = 0;

  [[nodiscard]] std::vector<std::vector<std::uint32_t>> members() const;
};

class Grouper {
 public:
  virtual ~Grouper() = default;

  /// Partitions users given their per-user training distributions.
  [[nodiscard]] virtual GroupAssignment assign(
      std::span<const stats::EmpiricalDistribution> users) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Identity string for memoization (sim::AnalysisCache): two groupers
  /// with the same cache_key MUST produce identical partitions on identical
  /// input. Defaults to name(); parameterized groupers whose display name
  /// omits configuration override it to append every parameter.
  [[nodiscard]] virtual std::string cache_key() const { return name(); }
};

/// Everybody in one group — the monoculture baseline.
class HomogeneousGrouper final : public Grouper {
 public:
  [[nodiscard]] GroupAssignment assign(
      std::span<const stats::EmpiricalDistribution> users) const override;
  [[nodiscard]] std::string name() const override { return "homogeneous"; }
};

/// Every user their own group.
class FullDiversityGrouper final : public Grouper {
 public:
  [[nodiscard]] GroupAssignment assign(
      std::span<const stats::EmpiricalDistribution> users) const override;
  [[nodiscard]] std::string name() const override { return "full-diversity"; }
};

/// The paper's partial-diversity heuristic: order users by the
/// `pivot_quantile` of their training distribution, split at
/// `top_fraction`, then subdivide the heavy side into `top_groups` and the
/// light side into `bottom_groups` equal-frequency groups
/// (defaults reproduce the paper's 8-partial policy).
class KneePartialGrouper final : public Grouper {
 public:
  explicit KneePartialGrouper(double top_fraction = 0.15, std::uint32_t top_groups = 4,
                              std::uint32_t bottom_groups = 4, double pivot_quantile = 0.99);
  [[nodiscard]] GroupAssignment assign(
      std::span<const stats::EmpiricalDistribution> users) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::string cache_key() const override;

 private:
  double top_fraction_;
  std::uint32_t top_groups_;
  std::uint32_t bottom_groups_;
  double pivot_quantile_;
};

/// k-means over log10 of the pivot-quantile values (the paper tried this
/// and found no natural separation; provided for the ablation).
class KMeansGrouper final : public Grouper {
 public:
  KMeansGrouper(std::uint32_t k, double pivot_quantile = 0.99, std::uint64_t seed = 17);
  [[nodiscard]] GroupAssignment assign(
      std::span<const stats::EmpiricalDistribution> users) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::string cache_key() const override;

 private:
  std::uint32_t k_;
  double pivot_quantile_;
  std::uint64_t seed_;
};

/// k equal-frequency buckets of the pivot-quantile ordering.
class EqualFrequencyGrouper final : public Grouper {
 public:
  explicit EqualFrequencyGrouper(std::uint32_t k, double pivot_quantile = 0.99);
  [[nodiscard]] GroupAssignment assign(
      std::span<const stats::EmpiricalDistribution> users) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::string cache_key() const override;

 private:
  std::uint32_t k_;
  double pivot_quantile_;
};

}  // namespace monohids::hids
