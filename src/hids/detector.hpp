// The per-host anomaly detector.
//
// One ThresholdDetector watches one feature on one host: an alarm fires for
// every bin whose observed count strictly exceeds the threshold (the paper's
// alarm condition g + b > T). A HostHids bundles the six per-feature
// detectors of one host and streams alarms to an alert sink, mirroring the
// commercial behavioral HIDS the paper models.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>

#include "features/time_series.hpp"
#include "hids/alerts.hpp"

namespace monohids::hids {

class ThresholdDetector {
 public:
  ThresholdDetector() = default;
  explicit ThresholdDetector(double threshold) : threshold_(threshold) {}

  [[nodiscard]] double threshold() const noexcept { return threshold_; }
  void set_threshold(double t) noexcept { threshold_ = t; }

  /// Alarm predicate for one bin value.
  [[nodiscard]] bool alarms(double value) const noexcept { return value > threshold_; }

  /// Number of alarming bins in a series slice.
  [[nodiscard]] std::uint64_t count_alarms(std::span<const double> bins) const noexcept;

  /// Fraction of alarming bins (0 for an empty slice).
  [[nodiscard]] double alarm_rate(std::span<const double> bins) const noexcept;

 private:
  double threshold_ = 0.0;
};

/// All six detectors of one monitored host.
class HostHids {
 public:
  using AlertSink = std::function<void(const Alert&)>;

  /// `user_id` identifies the host in emitted alerts.
  explicit HostHids(std::uint32_t user_id);

  void configure(features::FeatureKind feature, double threshold);
  [[nodiscard]] const ThresholdDetector& detector(features::FeatureKind f) const {
    return detectors_[features::index_of(f)];
  }

  /// Scans a full feature matrix and emits an Alert for every alarming
  /// (feature, bin) pair. Returns the number of alerts emitted.
  std::uint64_t scan(const features::FeatureMatrix& observed, const AlertSink& sink) const;

  /// Scans only bins [first_bin, last_bin) — e.g. one week of a longer
  /// trace. Alert timestamps stay absolute.
  std::uint64_t scan_range(const features::FeatureMatrix& observed, std::size_t first_bin,
                           std::size_t last_bin, const AlertSink& sink) const;

 private:
  std::uint32_t user_id_;
  std::array<ThresholdDetector, features::kFeatureCount> detectors_;
};

}  // namespace monohids::hids
